"""Figure 2: dynamic-instruction comparison, software vs hardware FP32."""

from conftest import report_once

from repro.eval import fig2_instruction_mix


def test_fig2(benchmark):
    result = benchmark(fig2_instruction_mix)
    report_once(result)
    assert result.measured["sw_over_hw_ratio"] > 3.0
