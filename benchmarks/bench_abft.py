"""ABFT guard overhead: checksum-verified GEMM vs the plain driver.

Not a paper figure: this regression-guards the resilience layer the same
way ``bench_parallel.py`` guards the orchestration layer. The checksum
verification is ``O(MN + MK + KN)`` work against the ``O(MNK)`` GEMM, so
the fault-free overhead must stay a small multiple of the plain run and
shrink as the problem grows. Three properties are measured on the same
operands:

* **Bit-identity** — the guarded fault-free result equals the unguarded
  one exactly, for FP32 and FP32C (asserted, not just reported).
* **Overhead curve** — guarded vs plain wall time across a shape sweep.
  Acceptance: overhead ≤ ``MAX_OVERHEAD``× at the largest shape (waived
  in smoke mode, where shapes are toy-sized and fixed costs dominate).
* **Recovery cost** — one injected accumulator fault: the guard must
  detect it and return the bit-exact clean result; the
  detect-and-recompute run's cost is reported alongside.

Results land in ``BENCH_abft.json`` at the repo root.
``REPRO_BENCH_SMOKE=1`` shrinks the shapes so the suite doubles as a CI
smoke test.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.gemm.tiled import TiledGEMM
from repro.mxu import M3XU, FaultSpec, FaultStage, FaultyM3XU
from repro.mxu.modes import MXUMode

from conftest import bench_print

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").strip() not in ("", "0")

#: (M, N, K) sweep — sized so the largest shape amortises the guard's
#: fixed per-call costs without making the suite slow.
SHAPES = [(16, 16, 16), (32, 32, 32)] if SMOKE else [
    (32, 32, 32), (64, 64, 64), (128, 96, 128)
]
#: Fault-free guarded/plain ratio ceiling at the largest shape.
MAX_OVERHEAD = 3.0

_DATA: dict = {"smoke": SMOKE, "overhead": [], "recovery": {}}
_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_abft.json"


@pytest.fixture(scope="module", autouse=True)
def _write_json():
    yield
    _JSON_PATH.write_text(json.dumps(_DATA, indent=2))
    bench_print(f"\nABFT guard overhead written to {_JSON_PATH.name}:")
    for r in _DATA["overhead"]:
        bench_print(
            f"  {r['mode']:5s} {r['m']}x{r['n']}x{r['k']:<4d}"
            f"  plain {r['plain_s'] * 1e3:8.1f} ms"
            f" / guarded {r['guarded_s'] * 1e3:8.1f} ms"
            f" = {r['overhead']:.2f}x  (identical: {r['identical']})"
        )
    rec = _DATA["recovery"]
    if rec:
        bench_print(
            f"  recovery: detected={rec['detected']}"
            f" recomputed_tiles={rec['recomputed_tiles']}"
            f" clean-identical={rec['identical']}"
            f"  ({rec['time_s'] * 1e3:.1f} ms)"
        )


def _operands(m: int, n: int, k: int, mode: MXUMode, seed: int = 7):
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1, 1, (m, k))
    b = rng.uniform(-1, 1, (k, n))
    if mode is MXUMode.FP32C:
        a = a + 1j * rng.uniform(-1, 1, (m, k))
        b = b + 1j * rng.uniform(-1, 1, (k, n))
    return a, b


def _best_of(fn, repeats: int = 3) -> tuple[float, np.ndarray]:
    best, out = np.inf, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


@pytest.mark.parametrize("mode", [MXUMode.FP32, MXUMode.FP32C],
                         ids=["fp32", "fp32c"])
def test_guard_overhead(mode):
    unit = M3XU()
    for m, n, k in SHAPES:
        a, b = _operands(m, n, k, mode)
        plain = TiledGEMM(unit, mode, abft=False)
        guarded = TiledGEMM(unit, mode, abft=True)
        t_plain, ref = _best_of(lambda: plain.run(a, b, 0.0))
        t_guard, out = _best_of(lambda: guarded.run(a, b, 0.0))
        identical = bool(np.array_equal(ref, out))
        assert identical, f"guarded {mode} result diverged at {m}x{n}x{k}"
        assert guarded.abft_report is not None
        assert not guarded.abft_report.detected  # zero false alarms
        _DATA["overhead"].append({
            "mode": mode.value, "m": m, "n": n, "k": k,
            "plain_s": t_plain, "guarded_s": t_guard,
            "overhead": t_guard / t_plain, "identical": identical,
        })
    if not SMOKE and mode is MXUMode.FP32:
        largest = [r for r in _DATA["overhead"] if r["mode"] == mode.value][-1]
        assert largest["overhead"] <= MAX_OVERHEAD, (
            f"fault-free ABFT overhead {largest['overhead']:.2f}x exceeds "
            f"{MAX_OVERHEAD}x at the largest shape"
        )


def test_guard_recovery_cost():
    m, n, k = SHAPES[-1]
    a, b = _operands(m, n, k, MXUMode.FP32)
    clean = TiledGEMM(M3XU(), MXUMode.FP32, abft=False).run(a, b, 0.0)

    spec = FaultSpec(stage=FaultStage.ACCUMULATOR, bit=28, seed=13)
    guarded = TiledGEMM(FaultyM3XU(spec, M3XU()), MXUMode.FP32, abft=True)
    t0 = time.perf_counter()
    out = guarded.run(a, b, 0.0)
    elapsed = time.perf_counter() - t0

    report = guarded.abft_report
    identical = bool(np.array_equal(out, clean))
    detected = bool(report is not None and report.detected)
    # A high-order accumulator bit flip is far outside tolerance: the
    # guard must catch it, and the recomputed result must be bit-exact.
    assert detected and identical
    _DATA["recovery"] = {
        "detected": detected,
        "recomputed_tiles": report.recomputed_tiles,
        "identical": identical,
        "time_s": elapsed,
    }
