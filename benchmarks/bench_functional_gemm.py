"""Throughput of the functional (bit-accurate) GEMM implementations.

Not a paper figure: this measures the *simulator's own* speed, which is
what bounds how large the functional accuracy studies can go.
"""

import numpy as np
import pytest

from repro.gemm import (
    cgemm_simt,
    eehc_sgemm_3xbf16,
    mxu_cgemm,
    mxu_sgemm,
    sgemm_simt,
    tensorop_sgemm_3xtf32,
)
from repro.types import FP32, quantize, quantize_complex

_N = 48


@pytest.fixture(scope="module")
def operands():
    rng = np.random.default_rng(2)
    a = quantize(rng.normal(size=(_N, _N)), FP32)
    b = quantize(rng.normal(size=(_N, _N)), FP32)
    return a, b


@pytest.fixture(scope="module")
def complex_operands():
    rng = np.random.default_rng(3)
    a = quantize_complex(rng.normal(size=(_N, _N)) + 1j * rng.normal(size=(_N, _N)), FP32)
    b = quantize_complex(rng.normal(size=(_N, _N)) + 1j * rng.normal(size=(_N, _N)), FP32)
    return a, b


def test_m3xu_sgemm_functional(benchmark, operands):
    a, b = operands
    d = benchmark(mxu_sgemm, a, b)
    assert np.allclose(d, a @ b, rtol=1e-4, atol=1e-5)


def test_simt_sgemm_functional(benchmark, operands):
    a, b = operands
    d = benchmark(sgemm_simt, a, b)
    assert np.allclose(d, a @ b, rtol=1e-4, atol=1e-5)


def test_3xtf32_sgemm_functional(benchmark, operands):
    a, b = operands
    d = benchmark(tensorop_sgemm_3xtf32, a, b)
    assert np.allclose(d, a @ b, rtol=1e-3, atol=1e-4)


def test_3xbf16_sgemm_functional(benchmark, operands):
    a, b = operands
    d = benchmark(eehc_sgemm_3xbf16, a, b)
    assert np.allclose(d, a @ b, rtol=3e-2, atol=1e-2)


def test_m3xu_cgemm_functional(benchmark, complex_operands):
    a, b = complex_operands
    d = benchmark(mxu_cgemm, a, b)
    assert np.allclose(d, a @ b, rtol=1e-4, atol=1e-4)


def test_simt_cgemm_functional(benchmark, complex_operands):
    a, b = complex_operands
    d = benchmark(cgemm_simt, a, b)
    assert np.allclose(d, a @ b, rtol=1e-4, atol=1e-4)
