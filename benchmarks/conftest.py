"""Benchmark-suite fixtures.

Every ``bench_*`` module regenerates one of the paper's tables/figures:
the benchmark measures the model's runtime, and the reproduced rows plus
the paper-vs-measured comparison are emitted in the terminal summary
(after pytest-benchmark's own table), where pytest never captures them —
so ``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` records
the regenerated artifacts.
"""

from __future__ import annotations

import pytest

_REPORT_BLOCKS: list[str] = []


def bench_print(text: str) -> None:
    """Queue a line for the end-of-run report section."""
    _REPORT_BLOCKS.append(text)


def report_once(result) -> None:
    """Queue an ExperimentResult block (called once per module)."""
    _REPORT_BLOCKS.append("\n" + result.render())


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORT_BLOCKS:
        return
    terminalreporter.write_sep("=", "regenerated paper tables & figures")
    for block in _REPORT_BLOCKS:
        for line in block.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def gpu():
    from repro.gpusim import a100_emulation

    return a100_emulation()
