"""Section V-B numerical-exactness study as a benchmark."""

from conftest import report_once

from repro.eval import accuracy_claims


def test_accuracy_claims(benchmark):
    result = benchmark(accuracy_claims)
    report_once(result)
    assert result.measured["m3xu_bits_minus_fp32_bits"] >= 0.0
    assert result.measured["m3xu_bits_minus_3xbf16_bits"] >= 1.0
