"""2-D convolution (the paper's third critical kernel): perf + functional."""

from conftest import bench_print

import numpy as np

from repro.apps.conv import conv2d_direct, conv2d_im2col, conv_speedups


def test_conv_speedups(benchmark):
    rows = benchmark(conv_speedups)
    bench_print("\n== 2-D convolution: M3XU speedup over SIMT im2col ==")
    for s, sp in rows:
        bench_print(f"  {s.c:4d}ch {s.h:3d}x{s.w:<3d} k{s.kh}x{s.kw}: {sp:4.2f}x")
    assert all(1.5 < sp < 4.6 for _, sp in rows)


def test_conv_functional_m3xu(benchmark):
    from repro.gemm import mxu_sgemm

    rng = np.random.default_rng(4)
    x = rng.normal(size=(1, 8, 16, 16))
    w = rng.normal(size=(8, 8, 3, 3))
    out = benchmark(
        conv2d_im2col, x, w, 1, 1, lambda a, b: mxu_sgemm(a, b)
    )
    ref = conv2d_direct(x, w, stride=1, padding=1)
    assert np.allclose(out, ref, rtol=1e-4, atol=1e-4)
