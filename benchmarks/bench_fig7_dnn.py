"""Figure 7: single-iteration CNN training latency."""

from conftest import report_once

from repro.eval import fig7_dnn


def test_fig7(benchmark):
    result = benchmark(fig7_dnn)
    report_once(result)
    m = result.measured
    # Calibrated fractions must reproduce the measured profile exactly.
    assert abs(m["bwd_frac.VGG16"] - 0.396) < 0.02
    assert abs(m["bwd_frac.ResNet50"] - 0.391) < 0.02
    assert abs(m["bwd_frac.AlexNet"] - 0.465) < 0.02
    # M3XU accelerates training on every network.
    assert m["dnn_speedup_avg"] > 1.15
