"""Figure 5: relative energy vs FP32-MXU and %% of theoretical peak."""

from conftest import report_once

from repro.eval import fig5_energy_and_peak


def test_fig5(benchmark):
    result = benchmark(fig5_energy_and_peak)
    report_once(result)
    m = result.measured
    # M3XU must beat the FP32-MXU on energy for both precisions...
    assert m["energy.M3XU_sgemm_pipelined"] < 1.0
    assert m["energy.M3XU_cgemm_pipelined"] < 1.0
    # ...the non-pipelined variant must be the most frugal M3XU...
    assert m["energy.M3XU_sgemm"] < m["energy.M3XU_sgemm_pipelined"]
    # ...and the peak fractions must bracket the paper's 94% / 63% split.
    assert m["peak.M3XU_sgemm_pipelined"] > 90.0
    assert m["peak.cutlass_tensorop_sgemm"] < 70.0
