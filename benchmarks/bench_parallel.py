"""Engine v2 scaling: warm persistent pool vs per-call pool, cache hit vs miss.

Not a paper figure: this regression-guards the orchestration layer the
same way ``bench_hotpath.py`` guards the per-GEMM fast path. Three
questions are measured on the same operands, with bit-identity asserted
between every configuration:

* **Pool scaling** — batched FP32 GEMM at ``workers ∈ {1, 2, 4}``
  through the v1 per-call engine (``fresh_pool=True``: executor spawned
  and torn down inside the call) and through the warm persistent pool.
  Acceptance: at ``workers=4`` the warm pool is ≥ 1.3× the per-call
  engine on this machine.
* **Cache** — a first (cold) ``run_all()`` vs a second in the same
  process. Acceptance: the cached sweep is ≥ 10× faster, and
  ``use_cache=False`` reproduces the cold results bit-identically.
* **Bit-level strong scaling** — the sharded whole-chain bit-level GEMM
  (:func:`repro.mxu.parallel_bitlevel.sharded_bitlevel_gemm`) at
  ``workers ∈ {1, 2, 4, cpu_count}``. No speed floor (the CI box may be
  single-core, where extra workers only add transport overhead); the
  contract asserted is bit-identity to the serial chain at *every*
  worker count, with the wall-time curve recorded for machines that do
  have cores to scale onto.

Results land in ``BENCH_parallel.json`` at the repo root.
``REPRO_BENCH_SMOKE=1`` shrinks the shapes so the suite doubles as a CI
smoke test (bit-identity still asserted; speed floors waived at toy
sizes).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import parallel
from repro.cache import DEFAULT_CACHE
from repro.eval.runner import render_report, run_all
from repro.gemm.batched import batched_mxu_sgemm
from repro.mxu.parallel_bitlevel import resolve_bitlevel_chunk, sharded_bitlevel_gemm
from repro.types.formats import FP32
from repro.types.quantize import quantize

from conftest import bench_print

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").strip() not in ("", "0")

#: Batched FP32 GEMM shape (batch, N) — sized so per-call pool spawn and
#: operand pickling are a visible fraction of the call.
BATCH, N = (6, 24) if SMOKE else (16, 48)
WORKER_GRID = [1, 2, 4]

#: Square bit-level GEMM size for the strong-scaling sweep — big enough
#: that the chain kernel dominates the pool/transport overhead.
BITLEVEL_N = 32 if SMOKE else 128

_DATA: dict = {"smoke": SMOKE, "pool": [], "cache": {}, "bitlevel": []}
_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"


@pytest.fixture(scope="module", autouse=True)
def _write_json():
    parallel.shutdown()  # count pool spawns from a clean slate
    yield
    parallel.shutdown()
    _JSON_PATH.write_text(json.dumps(_DATA, indent=2))
    bench_print(f"\nparallel-engine curves written to {_JSON_PATH.name}:")
    for r in _DATA["pool"]:
        bench_print(
            f"  workers={r['workers']}  per-call {r['percall_s'] * 1e3:8.1f} ms"
            f" / warm {r['warm_s'] * 1e3:8.1f} ms = {r['warm_speedup']:.2f}x"
        )
    c = _DATA["cache"]
    if c:
        bench_print(
            f"  run_all  cold {c['first_s'] * 1e3:8.1f} ms"
            f" / cached {c['second_s'] * 1e3:8.1f} ms = {c['speedup']:.0f}x"
            f"  (no-cache bit-identical: {c['nocache_identical']})"
        )
    for r in _DATA["bitlevel"]:
        bench_print(
            f"  bitlevel {r['shape']}  workers={r['workers']}"
            f"  {r['wall_s'] * 1e3:8.1f} ms  ({r['vs_serial']:.2f}x vs serial)"
        )


def _best_of(fn, repeats: int = 3) -> tuple[float, np.ndarray]:
    best, out = np.inf, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def test_pool_scaling(benchmark):
    rng = np.random.default_rng(21)
    a = rng.standard_normal((BATCH, N, N))
    b = rng.standard_normal((BATCH, N, N))
    reference = batched_mxu_sgemm(a, b, workers=1)

    for w in WORKER_GRID:
        percall_s, got_cold = _best_of(
            lambda w=w: batched_mxu_sgemm(a, b, workers=w, fresh_pool=True)
        )
        parallel.shutdown()
        batched_mxu_sgemm(a, b, workers=w)  # prime the persistent pool
        spawns_before = parallel.pool_info()["spawns"]
        warm_s, got_warm = _best_of(lambda w=w: batched_mxu_sgemm(a, b, workers=w))
        assert parallel.pool_info()["spawns"] == spawns_before, (
            f"warm timing at workers={w} respawned the pool"
        )
        assert got_cold.tobytes() == reference.tobytes()
        assert got_warm.tobytes() == reference.tobytes()
        _DATA["pool"].append(
            {
                "workers": w,
                "shape": f"{BATCH}x{N}^3",
                "percall_s": percall_s,
                "warm_s": warm_s,
                "warm_speedup": percall_s / warm_s,
            }
        )

    # pytest-benchmark record of the headline configuration (warm, w=4).
    got = benchmark.pedantic(
        batched_mxu_sgemm, args=(a, b), kwargs={"workers": 4}, rounds=3, iterations=1
    )
    assert got.tobytes() == reference.tobytes()

    at4 = next(r for r in _DATA["pool"] if r["workers"] == 4)
    if not SMOKE:
        assert at4["warm_speedup"] >= 1.3, (
            f"warm pool only {at4['warm_speedup']:.2f}x over the per-call engine "
            f"at workers=4 (required >= 1.3x)"
        )


def test_bitlevel_strong_scaling(benchmark):
    """Sharded bit-level GEMM wall time vs worker count, bit-identical."""
    n = BITLEVEL_N
    rng = np.random.default_rng(23)
    a = quantize(rng.standard_normal((n, n)), FP32)
    b = quantize(rng.standard_normal((n, n)), FP32)
    reference = sharded_bitlevel_gemm(a, b, engine="vector", workers=1)

    grid = sorted({1, 2, 4, os.cpu_count() or 1})
    serial_s = None
    for w in grid:
        parallel.shutdown()
        if w > 1:  # prime the persistent pool so spawn cost isn't timed
            sharded_bitlevel_gemm(a, b, engine="vector", workers=w)
        wall_s, got = _best_of(
            lambda w=w: sharded_bitlevel_gemm(a, b, engine="vector", workers=w)
        )
        assert got.tobytes() == reference.tobytes(), (
            f"sharded bit-level GEMM diverged from serial at workers={w}"
        )
        if serial_s is None:
            serial_s = wall_s
        _DATA["bitlevel"].append(
            {
                "workers": w,
                "shape": f"{n}x{n}x{n}",
                "engine": "bitlevel:vector",
                "chunk": resolve_bitlevel_chunk(),
                "wall_s": wall_s,
                "vs_serial": serial_s / wall_s,
            }
        )

    got = benchmark.pedantic(
        sharded_bitlevel_gemm, args=(a, b),
        kwargs={"engine": "vector", "workers": grid[-1]},
        rounds=3, iterations=1,
    )
    assert got.tobytes() == reference.tobytes()


def test_cache_hit_vs_miss():
    DEFAULT_CACHE.clear()
    first_s, first = _best_of(lambda: run_all(workers=1), repeats=1)
    second_s, second = _best_of(lambda: run_all(workers=1), repeats=3)
    text_first = render_report(first)
    assert render_report(second) == text_first

    nocache_s, cold = _best_of(
        lambda: run_all(workers=1, use_cache=False), repeats=1
    )
    identical = render_report(cold) == text_first
    assert identical, "use_cache=False diverged from the cached results"

    speedup = first_s / second_s
    _DATA["cache"] = {
        "experiments": len(first),
        "first_s": first_s,
        "second_s": second_s,
        "nocache_s": nocache_s,
        "speedup": speedup,
        "nocache_identical": identical,
    }
    if not SMOKE:
        assert speedup >= 10.0, (
            f"cached run_all only {speedup:.1f}x faster than cold (required >= 10x)"
        )
