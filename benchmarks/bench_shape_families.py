"""Beyond Figure 4: M3XU speedup across rectangular GEMM shape families."""

from conftest import bench_print

from repro.kernels import SHAPE_FAMILIES, family_speedups


def test_shape_families(benchmark):
    def run():
        return {name: family_speedups(name) for name in SHAPE_FAMILIES}

    rows = benchmark(run)
    bench_print("\n== M3XU speedup by GEMM shape family ==")
    for name, sps in rows.items():
        desc = SHAPE_FAMILIES[name].description
        vals = "  ".join(f"{str(p):>22s}:{sp:5.2f}x" for p, sp in sps)
        bench_print(f"  {name:12s} ({desc})\n    {vals}")
    assert max(sp for _, sp in rows["square"]) > 3.7
