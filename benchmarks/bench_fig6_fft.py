"""Figure 6: FFT speedup over cuFFT (plus a functional FFT benchmark)."""

import numpy as np
from conftest import report_once

from repro.apps.fft import gemm_fft
from repro.eval import fig6_fft


def test_fig6_model(benchmark):
    result = benchmark(fig6_fft)
    report_once(result)
    assert abs(result.measured["m3xu_fft_max"] - 1.99) < 0.12
    assert abs(result.measured["m3xu_fft_avg"] - 1.52) < 0.15


def test_fig6_functional_gemm_fft(benchmark):
    """Throughput of the actual GEMM-FFT implementation (reference CGEMM)."""
    rng = np.random.default_rng(0)
    x = rng.normal(size=4096) + 1j * rng.normal(size=4096)
    out = benchmark(gemm_fft, x)
    ref = np.fft.fft(x)
    assert np.max(np.abs(out - ref)) < 1e-8 * np.max(np.abs(ref)) * 4096
