"""Figure 8: MRF dictionary-generation speedup (plus a functional EPG run)."""

import numpy as np
from conftest import report_once

from repro.apps.mrf import AtomGrid, FispSequence, generate_dictionary
from repro.eval import fig8_mrf


def test_fig8_model(benchmark):
    result = benchmark(fig8_mrf)
    report_once(result)
    assert abs(result.measured["mrf_speedup_max"] - 1.26) < 0.08


def test_fig8_functional_epg(benchmark):
    """Throughput of the EPG dictionary generator itself."""
    grid = AtomGrid.standard(12, 12)
    seq = FispSequence.standard(120)
    d = benchmark(generate_dictionary, grid, seq)
    assert d.n_atoms == grid.n_atoms
    assert np.all(np.isfinite(d.signals))
