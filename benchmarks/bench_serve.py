"""Serving-layer load test: latency and shedding under a 3-level ramp.

Not a paper figure: this regression-guards the serving layer the same
way ``bench_abft.py`` guards the resilience layer. A self-hosted
:class:`~repro.serve.server.GemmServer` (fault injection enabled) is
driven through three open-loop load levels — comfortable, near
saturation, and far past it — plus a fault campaign, and three
properties are asserted on the results:

* **Zero undetected SDCs** — every ``OK`` response is checked against a
  float64 reference by the load generator; a silently corrupt served
  result fails the benchmark at any load level.
* **Structured overload** — the overload level must produce structured
  rejections (``queue_full``/``overload``), never hangs: every request
  sent is accounted for and the level completes in bounded time.
* **Bounded tail latency** — p95 at every level stays under the
  request deadline plus the server's grace window.

Results land in ``BENCH_serve.json`` at the repo root.
``REPRO_BENCH_SMOKE=1`` shrinks the levels so the suite doubles as the
CI smoke test.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import parallel
from repro.mxu.split_cache import DEFAULT_SPLIT_CACHE, SPLIT_CACHE_ENV, \
    split_cache_probe
from repro.serve import LoadgenConfig, run_loadgen
from repro.serve.client import AsyncConnection
from repro.serve.records import percentile
from repro.serve.server import GemmServer, ServeConfig, encode_array

from conftest import bench_print

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").strip() not in ("", "0")

#: Per-level duration and the open-loop ramp (requests/second). The top
#: level is far beyond single-executor capacity by construction.
DURATION_S = 2.0 if SMOKE else 5.0
RAMP = [20.0, 120.0, 600.0] if SMOKE else [30.0, 200.0, 1000.0]
DEADLINE_MS = 1500.0
#: p95 acceptance: deadline + the server's 5 s response-grace window.
MAX_P95_MS = DEADLINE_MS + 5000.0
#: Fault campaign settings (closed loop, so every fault gets resolved).
FAULT_RATE = 0.25
FAULT_DURATION_S = 3.0 if SMOKE else 6.0

#: Fixed-weights workload: one A operand repeated across the whole
#: request stream, streaming skinny B panels (the serving pattern the
#: operand split cache is built for).
FW_N, FW_P, FW_REQS = (32, 4, 6) if SMOKE else (256, 8, 16)

_DATA: dict = {"smoke": SMOKE, "ramp": [], "faults": {}, "fixed_weights": {}}
_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"


@pytest.fixture(scope="module", autouse=True)
def _write_json():
    yield
    _JSON_PATH.write_text(json.dumps(_DATA, indent=2))
    bench_print(f"\nServing load ramp written to {_JSON_PATH.name}:")
    for level in _DATA["ramp"]:
        bench_print(
            f"  {level['rate']:6.0f} rps: sent {level['sent']:5d}"
            f"  served {level['served']:5d}"
            f"  shed {level['shed_rate'] * 100:5.1f}%"
            f"  p50 {level['p50_latency_ms']:7.1f} ms"
            f"  p95 {level['p95_latency_ms']:7.1f} ms"
            f"  sdc {level['sdc_count']}"
        )
    faults = _DATA["faults"]
    if faults:
        bench_print(
            f"  faults: sent {faults['faults_sent']}"
            f" outcomes {faults['outcomes']}"
            f" sdc {faults['sdc_count']}"
        )
    fw = _DATA["fixed_weights"]
    if fw:
        bench_print(
            f"  fixed-weights: split-cache hit rate {fw['hit_rate']:.2f}"
            f"  p50 {fw['cold_p50_ms']:.1f} -> {fw['warm_p50_ms']:.1f} ms"
            f"  p95 {fw['cold_p95_ms']:.1f} -> {fw['warm_p95_ms']:.1f} ms"
        )


def test_load_ramp_sheds_structurally_with_bounded_p95():
    for i, rate in enumerate(RAMP):
        report = run_loadgen(LoadgenConfig(
            duration_s=DURATION_S, mode="open", rate=rate, concurrency=4,
            size=12, seed=100 + i, deadline_ms=DEADLINE_MS,
        ))
        rejected = report["outcomes"].get("REJECTED", 0)
        level = {
            "rate": rate,
            "sent": report["sent"],
            "served": report["served"],
            "rejected": rejected,
            "shed_rate": rejected / max(report["sent"], 1),
            "reasons": report["reasons"],
            "p50_latency_ms": report["p50_latency_ms"],
            "p95_latency_ms": report["p95_latency_ms"],
            "throughput_rps": report["throughput_rps"],
            "sdc_count": report["sdc_count"],
            "elapsed_s": report["elapsed_s"],
        }
        _DATA["ramp"].append(level)

        assert report["sdc_count"] == 0, f"SDC at {rate} rps: {report['sdc_ids']}"
        # No hangs: everything sent is answered or accounted as lost,
        # and the level finishes in bounded time.
        assert sum(report["outcomes"].values()) == report["sent"]
        assert report["elapsed_s"] < DURATION_S + 60.0
        if report["served"]:
            assert report["p95_latency_ms"] < MAX_P95_MS

    # The ramp's top level must overload the server into structured
    # shedding — otherwise the benchmark is not exercising admission
    # control at all.
    top = _DATA["ramp"][-1]
    assert top["rejected"] > 0, "overload level produced no rejections"
    assert set(top["reasons"]) <= {
        "queue_full", "overload", "deadline", "worker_lost", "execution",
        "circuit_open",
    }


def test_fault_campaign_zero_undetected_sdc():
    report = run_loadgen(LoadgenConfig(
        duration_s=FAULT_DURATION_S, mode="closed", concurrency=3,
        size=10, seed=7, deadline_ms=2500.0, fault_rate=FAULT_RATE,
    ))
    _DATA["faults"] = {
        "sent": report["sent"],
        "outcomes": report["outcomes"],
        "reasons": report["reasons"],
        "faults_sent": report["faults_sent"],
        "sdc_count": report["sdc_count"],
        "p95_latency_ms": report["p95_latency_ms"],
        "elapsed_s": report["elapsed_s"],
    }
    assert report["sent"] > 0 and report["outcomes"].get("OK", 0) > 0
    assert report["sdc_count"] == 0, f"undetected SDCs: {report['sdc_ids']}"
    assert sum(report["outcomes"].values()) == report["sent"]
    assert report["elapsed_s"] < FAULT_DURATION_S + 60.0


def _drive_fixed_weights(n: int, p: int, reqs: int) -> tuple[list[float], dict]:
    """Serve ``reqs`` GEMMs sharing one A against streaming B panels.

    Returns per-request latencies (ms) and the server's final stats.
    """

    async def drive() -> tuple[list[float], dict]:
        server = GemmServer(ServeConfig(port=0, max_queue=32, workers=1))
        await server.start()
        try:
            conn = await AsyncConnection.open(server.config.host, server.port)
            try:
                rng = np.random.default_rng(31)
                a = encode_array(rng.standard_normal((n, n)))
                latencies: list[float] = []
                for _ in range(reqs):
                    b = encode_array(rng.standard_normal((n, p)))
                    t0 = time.monotonic()
                    response = await conn.request(
                        {"op": "gemm", "a": a, "b": b, "deadline_ms": 30_000.0}
                    )
                    latencies.append((time.monotonic() - t0) * 1e3)
                    assert response["status"] == "OK", response
                stats = (await conn.request({"op": "stats"}))["result"]
            finally:
                await conn.close()
        finally:
            await server.stop()
        return latencies, stats

    return asyncio.run(drive())


def test_fixed_weights_split_cache():
    """Fixed-weights serving: repeat-A requests must hit the split cache.

    The same workload runs twice — cold with ``REPRO_SPLIT_CACHE=0``
    (every request re-splits A) and warm with the cache on — and the
    recorded deltas show what the operand split cache buys the serving
    layer when the *result* cache can't help (B streams, so no response
    is ever a repeat). Deadline-bearing requests execute inside the
    (1-wide) pool, so the cache that serves them is the *worker's*
    resident copy; it is probed through the same pool after the warm
    run, and must have hit on every request after the worker's first
    sight of A. The pool is respawned between phases so the workers
    inherit the right ``REPRO_SPLIT_CACHE`` and start cold.
    """
    os.environ[SPLIT_CACHE_ENV] = "0"
    try:
        parallel.shutdown()  # respawn workers with the cache disabled
        DEFAULT_SPLIT_CACHE.clear()
        cold_lat, _ = _drive_fixed_weights(FW_N, FW_P, FW_REQS)
    finally:
        os.environ.pop(SPLIT_CACHE_ENV, None)

    parallel.shutdown()  # respawn workers with the cache enabled, cold
    DEFAULT_SPLIT_CACHE.clear()
    warm_lat, stats = _drive_fixed_weights(FW_N, FW_P, FW_REQS)
    split = parallel.parallel_map(
        split_cache_probe, [None], workers=1, timeout=60.0
    )[0]
    parallel.shutdown()

    assert stats["split_cache"]["enabled"], stats["split_cache"]
    assert split["enabled"] and split["hits"] >= FW_REQS - 1, split
    # Every request after the first re-presents the same A bytes; each
    # must come back from the worker's cache (B panels all miss).
    repeat_hit_rate = min(split["hits"] / max(FW_REQS - 1, 1), 1.0)
    _DATA["fixed_weights"] = {
        "shape": f"{FW_N}x{FW_N}x{FW_P}",
        "requests": FW_REQS,
        "hits": split["hits"],
        "misses": split["misses"],
        "hit_rate": split["hits"] / max(split["hits"] + split["misses"], 1),
        "repeat_hit_rate": repeat_hit_rate,
        "cold_p50_ms": percentile(cold_lat, 50.0),
        "cold_p95_ms": percentile(cold_lat, 95.0),
        "warm_p50_ms": percentile(warm_lat, 50.0),
        "warm_p95_ms": percentile(warm_lat, 95.0),
    }
    assert repeat_hit_rate == 1.0, _DATA["fixed_weights"]
