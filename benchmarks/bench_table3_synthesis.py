"""Table III: relative area / cycle time / power of the five designs."""

from conftest import report_once

from repro.eval import table3_synthesis


def test_table3(benchmark):
    result = benchmark(table3_synthesis)
    report_once(result)
    for key, ref in result.paper.items():
        assert abs(result.measured[key] - ref) / ref < 0.10, key
