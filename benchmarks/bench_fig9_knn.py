"""Figure 9: kNN speedup heatmap (plus a functional kNN benchmark)."""

import numpy as np
from conftest import report_once

from repro.apps.knn import knn_search
from repro.eval import fig9_knn


def test_fig9_model(benchmark):
    result = benchmark(fig9_knn)
    report_once(result)
    assert abs(result.measured["knn_speedup_max"] - 1.8) < 0.1


def test_fig9_functional_knn(benchmark):
    rng = np.random.default_rng(1)
    q = rng.normal(size=(256, 64))
    r = rng.normal(size=(2048, 64))
    idx, dist = benchmark(knn_search, q, r, 16)
    assert idx.shape == (256, 16)
    assert np.all(np.diff(dist, axis=1) >= 0)
