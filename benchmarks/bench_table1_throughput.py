"""Table I + Section II-B: peak throughput and feed-bandwidth arithmetic."""

from conftest import report_once

from repro.eval import table1_throughput


def test_table1(benchmark):
    result = benchmark(table1_throughput)
    report_once(result)
    # A benchmark is also an acceptance check: peaks must match Table I.
    for key, ref in result.paper.items():
        assert abs(result.measured[key] - ref) / ref < 0.01, key
