"""Ablation benches for the design choices DESIGN.md calls out.

* Accumulator width: 48-bit (M3XU) vs 27-bit truncating (baseline TC) vs
  ideal — quantifies why "correct double-precision" accumulation is the
  cheap part of the exactness claim.
* Pipelined vs non-pipelined data-assignment stage: the Table III
  area/clock trade as seen by the GEMM kernels.
* Split-K: the kernel heuristic's effect on backward-pass (wgrad) shapes.
"""

from conftest import bench_print

import numpy as np
import pytest

from repro.arith import aligned_sum
from repro.kernels import SGEMM_KERNELS, GemmProblem
from repro.types.rounding import RoundingMode


def test_ablation_accumulator_width(benchmark):
    """Error vs accumulator width for M3XU-style lane products."""
    rng = np.random.default_rng(7)
    from repro.types import FP32, quantize, split_fp32_m3xu

    a = quantize(rng.normal(size=(512, 4)), FP32)
    b = quantize(rng.normal(size=(512, 4)), FP32)
    ah, al = split_fp32_m3xu(a)
    bh, bl = split_fp32_m3xu(b)
    lanes = np.concatenate([ah * bh, al * bl, ah * bl, al * bh], axis=-1)

    def run():
        exact = lanes.sum(axis=-1)
        errs = {}
        for bits in (24, 27, 36, 48):
            got = aligned_sum(lanes, acc_bits=bits, mode=RoundingMode.TOWARD_ZERO)
            errs[bits] = float(np.max(np.abs(got - exact) / np.maximum(np.abs(exact), 1e-30)))
        return errs

    errs = benchmark(run)
    bench_print("\n== Ablation: accumulator width (max rel error vs exact) ==")
    for bits, e in errs.items():
        bench_print(f"  {bits}-bit: {e:.3e}")
    # Wider accumulators are monotonically no worse; 48-bit is FP32-exact.
    assert errs[48] <= errs[27] <= errs[24]
    assert errs[48] < 1e-10


def test_ablation_pipelining(benchmark, gpu):
    """Pipelined vs non-pipelined M3XU across the Figure 4 sweep."""
    sizes = [1024, 4096, 16384]

    def run():
        out = {}
        for s in sizes:
            p = GemmProblem(s, s, s)
            t_p = SGEMM_KERNELS["M3XU_sgemm_pipelined"].time(p, gpu)
            t_np = SGEMM_KERNELS["M3XU_sgemm"].time(p, gpu)
            out[s] = t_np / t_p
        return out

    ratios = benchmark(run)
    bench_print("\n== Ablation: data-assignment pipelining (non-pipelined/pipelined time) ==")
    for s, r in ratios.items():
        bench_print(f"  {s}^3: {r:.3f}x")
    # The clock stretch (1.21x) should dominate at compute-bound sizes.
    assert ratios[16384] == pytest.approx(1.21, rel=0.05)


def test_ablation_split_k(benchmark, gpu):
    """Split-K benefit on a wgrad-shaped problem."""
    from repro.gpusim import estimate_time
    from repro.gpusim.tiling import TileConfig
    from repro.kernels.base import gemm_kernel_spec
    from repro.kernels.constants import TC_UTIL_M3XU

    p = GemmProblem(512, 128, 100352)

    def run():
        out = {}
        for split in (1, 4, 16, 64):
            spec = gemm_kernel_spec(
                f"splitk{split}", p, gpu,
                tile=TileConfig(tb_m=128, tb_n=64, tb_k=32),
                tc_mode="m3xu_fp32", tc_macs=p.macs, macs_per_mma=1024,
                tc_util=TC_UTIL_M3XU, split_k=split,
            )
            out[split] = estimate_time(spec, gpu).total_s
        return out

    times = benchmark(run)
    bench_print("\n== Ablation: split-K on wgrad shape 512x128x100352 ==")
    for s, t in times.items():
        bench_print(f"  split_k={s:3d}: {t*1e3:7.3f} ms")
    assert min(times[4], times[16], times[64]) < times[1]


def test_ablation_mainloop_pipeline_depth(benchmark, gpu):
    """Software-pipeline depth via the cycle-approximate mainloop simulator
    (independent cross-check of the analytic model)."""
    from repro.gpusim import simulate_gemm_cta

    def run():
        out = {}
        for stages in (1, 2, 3, 4):
            res, t = simulate_gemm_cta(4096, 4096, 4096, gpu, stages=stages)
            out[stages] = (t, res.efficiency)
        return out

    rows = benchmark(run)
    bench_print("\n== Ablation: mainloop software-pipeline depth (4K^3 M3XU GEMM) ==")
    for stages, (t, eff) in rows.items():
        bench_print(f"  stages={stages}: {t*1e3:6.2f} ms  tensor-pipe eff={eff:.2f}")
    assert rows[1][0] > rows[2][0]
    assert abs(rows[3][0] - rows[2][0]) / rows[2][0] < 0.05
