"""Benchmark regression gate: fresh BENCH_*.json vs the committed baseline.

The bench suites (``bench_hotpath.py``, ``bench_parallel.py``,
``bench_serve.py``) write machine-readable measurement tables to the
repo root, and those tables are committed — so every checkout carries
the last accepted performance envelope. This tool re-reads the fresh
working-tree tables, pulls the committed baselines out of git
(``git show <ref>:<file>``), aligns the rows, and fails when a
measurement regresses past tolerance:

* **time-like** metrics (keys ending ``_s`` / ``_ms``) are bounded from
  above: ``fresh <= baseline * tolerance``;
* **ratio-like** metrics (``speedup``, ``warm_speedup``, ``vs_serial``,
  ``hit_rate``, ``repeat_hit_rate``, ``throughput_rps``) are bounded
  from below: ``fresh >= baseline / tolerance``;
* everything else (counters, shapes, flags) is compared structurally:
  every baseline key must still exist with the same JSON type. New keys
  and new rows in the fresh tables are always allowed.

Rows inside lists are aligned by their identity key (``name``,
``workers`` or ``rate``) so reordering or appending rows never
misattributes a measurement. When the smoke flags of baseline and fresh
disagree (CI smoke run against full committed numbers, or vice versa)
the numeric checks are skipped and only the structural comparison runs
— toy shapes are not comparable to full ones.

Exit codes: 0 all within tolerance, 1 regression, 2 usage/IO trouble.

Usage::

    python benchmarks/bench_regression.py [--ref HEAD] [--tolerance 1.75]
                                          [BENCH_hotpath.json ...]

``make bench-check`` runs it with the defaults.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The committed measurement tables guarded by default.
DEFAULT_FILES = ("BENCH_hotpath.json", "BENCH_parallel.json", "BENCH_serve.json")

#: Headroom factor. Wall times flutter with machine load; the committed
#: numbers are best-of-N, so honest regressions blow well past this.
DEFAULT_TOLERANCE = 1.75

#: Serving latencies include queueing under deliberate overload — far
#: noisier than kernel wall times, so they get extra headroom.
FILE_TOLERANCE = {"BENCH_serve.json": 3.0}

#: Metrics where *smaller* is a regression (checked as lower bounds).
RATIO_KEYS = frozenset(
    ("speedup", "warm_speedup", "vs_serial", "hit_rate", "repeat_hit_rate",
     "throughput_rps")
)

#: List-row identity keys, in lookup order.
IDENTITY_KEYS = ("name", "workers", "rate")


def _is_time_key(key: str) -> bool:
    return key.endswith("_s") or key.endswith("_ms")


def _row_key(row: object, index: int) -> object:
    if isinstance(row, dict):
        for key in IDENTITY_KEYS:
            if key in row:
                return (key, row[key])
    return ("index", index)


def _compare(
    baseline: object, fresh: object, path: str, tol: float, numeric: bool
) -> list[str]:
    """All regressions found under one aligned (baseline, fresh) node."""
    problems: list[str] = []
    if isinstance(baseline, dict):
        if not isinstance(fresh, dict):
            return [f"{path}: baseline is an object, fresh is {type(fresh).__name__}"]
        for key, base_value in baseline.items():
            if key not in fresh:
                problems.append(f"{path}.{key}: present in baseline, missing fresh")
                continue
            problems += _compare(base_value, fresh[key], f"{path}.{key}", tol, numeric)
        return problems
    if isinstance(baseline, list):
        if not isinstance(fresh, list):
            return [f"{path}: baseline is a list, fresh is {type(fresh).__name__}"]
        fresh_rows = {_row_key(row, i): row for i, row in enumerate(fresh)}
        for i, base_row in enumerate(baseline):
            key = _row_key(base_row, i)
            if key not in fresh_rows:
                problems.append(f"{path}[{key[1]!r}]: baseline row missing fresh")
                continue
            problems += _compare(
                base_row, fresh_rows[key], f"{path}[{key[1]!r}]", tol, numeric
            )
        return problems
    # Leaves. Numeric policy applies only to measurement keys; all other
    # leaves just need to keep their JSON type.
    leaf_key = path.rsplit(".", 1)[-1]
    if (
        numeric
        and isinstance(baseline, (int, float))
        and not isinstance(baseline, bool)
        and isinstance(fresh, (int, float))
        and not isinstance(fresh, bool)
        and baseline > 0
    ):
        if _is_time_key(leaf_key) and fresh > baseline * tol:
            problems.append(
                f"{path}: {fresh:.6g} exceeds baseline {baseline:.6g} "
                f"x tolerance {tol:g}"
            )
        elif leaf_key in RATIO_KEYS and fresh < baseline / tol:
            problems.append(
                f"{path}: {fresh:.6g} below baseline {baseline:.6g} "
                f"/ tolerance {tol:g}"
            )
    return problems


def _load_baseline(ref: str, name: str) -> dict | None:
    """The committed table at ``ref``, or ``None`` when not in the ref."""
    proc = subprocess.run(
        ["git", "-C", str(REPO_ROOT), "show", f"{ref}:{name}"],
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return None
    return json.loads(proc.stdout)


def check_file(name: str, ref: str, tolerance: float | None) -> list[str]:
    """Regressions in one fresh table against its committed baseline."""
    fresh_path = REPO_ROOT / name
    if not fresh_path.exists():
        return [f"{name}: fresh table missing (run the bench suite first)"]
    fresh = json.loads(fresh_path.read_text())
    baseline = _load_baseline(ref, name)
    if baseline is None:
        print(f"  {name}: no baseline at {ref} (new table) — skipped")
        return []
    tol = tolerance if tolerance is not None else FILE_TOLERANCE.get(
        name, DEFAULT_TOLERANCE
    )
    numeric = bool(baseline.get("smoke")) == bool(fresh.get("smoke"))
    mode = f"numeric (tolerance {tol:g}x)" if numeric else "structural only"
    print(f"  {name}: baseline {ref}, {mode}")
    return [f"{name}{p[1:] if p.startswith('$') else p}" for p in
            _compare(baseline, fresh, "$", tol, numeric)]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", default=None,
                        help=f"tables to check (default: {', '.join(DEFAULT_FILES)})")
    parser.add_argument("--ref", default="HEAD",
                        help="git ref holding the baseline tables (default HEAD)")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="override the per-file tolerance factor")
    args = parser.parse_args(argv)
    if args.tolerance is not None and args.tolerance < 1.0:
        parser.error("--tolerance must be >= 1.0")

    files = args.files or list(DEFAULT_FILES)
    print(f"bench-check: comparing {len(files)} table(s) against {args.ref}")
    problems: list[str] = []
    try:
        for name in files:
            problems += check_file(name, args.ref, args.tolerance)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench-check: cannot read tables: {exc}", file=sys.stderr)
        return 2
    if problems:
        print(f"bench-check: {len(problems)} regression(s):", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print("bench-check: all measurements within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
