"""Figure 4: SGEMM/CGEMM speedups over SIMT, 1K^3 to 16K^3."""

from conftest import report_once

from repro.eval import fig4_gemm_speedups


def test_fig4(benchmark):
    result = benchmark(fig4_gemm_speedups)
    report_once(result)
    m = result.measured
    assert abs(m["sgemm_m3xu_max"] - 3.89) < 0.15
    assert abs(m["cgemm_m3xu_max"] - 3.82) < 0.20
    assert m["sgemm_alternatives_max"] < 3.1
