"""Section III-C: cross-architecture peak projections (Ampere/Hopper/CDNA)."""

from conftest import report_once

from repro.eval import section3c_projections


def test_section3c(benchmark):
    result = benchmark(section3c_projections)
    report_once(result)
    m = result.measured
    assert abs(m["a100_advantage"] - 4.0) < 0.05
    assert abs(m["h100_m3xu_tflops"] - 248.0) < 8.0
    assert abs(m["mi100_advantage"] - 2.0) < 0.05
