"""Hot-path speed: fused/plan fast path vs the legacy reference pipeline.

Not a paper figure: this regression-guards the emulator's own execution
engine. Each case times the legacy pipeline (``fastpath=False`` +
``use_plan=False`` / ``_batched_legacy``) against the default fast path
on the same operands, asserts the results are bit-identical, checks the
acceptance speedups (>=3x on the 512^3 FP32 single GEMM, >=2x on batched
FP32C) and writes the measurements to ``BENCH_hotpath.json`` at the repo
root for machine consumption.

Every timing — fast *and* legacy — is best-of-3 ``time.perf_counter``
wall time, so the JSON deltas are comparable across runs and PRs instead
of being hostage to one noisy measurement.

``REPRO_BENCH_SMOKE=1`` shrinks every shape so the suite doubles as a CI
smoke test (bit-identity still asserted; speedup thresholds waived at toy
sizes).

The ``bitlevel_vector`` cases time the vectorized bit-level datapath
(:mod:`repro.mxu.vectorized`) against the scalar ``BitAccumulator``
oracle. The scalar engine is far too slow for the full shapes, so it is
timed on a slice (columns of the GEMM / a prefix of the campaign trials),
asserted bit-identical there, and extrapolated linearly — the per-element
work is constant, and the ``extrapolated`` flag in the JSON says so.
"""

from __future__ import annotations

import json
import os
import time
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np
import pytest

from repro import parallel
from repro.gemm.batched import _batched_legacy, batched_mxu_cgemm, batched_mxu_sgemm
from repro.gemm.tiled import TiledGEMM
from repro.mxu.m3xu import M3XU
from repro.mxu.modes import MXUMode
from repro.mxu.parallel_bitlevel import resolve_bitlevel_chunk, sharded_bitlevel_gemm
from repro.mxu.split_cache import DEFAULT_SPLIT_CACHE, SPLIT_CACHE_ENV
from repro.mxu.vectorized import BitLevelMXU
from repro.parallel import resolve_workers
from repro.resilience.campaign import BITLEVEL_STAGES, CampaignConfig, run_campaign
from repro.types.formats import FP32
from repro.types.quantize import quantize, quantize_complex

from conftest import bench_print

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").strip() not in ("", "0")

#: (single FP32 N, single FP32C N, batched FP32 (B, N), batched FP32C (B, N))
if SMOKE:
    SGEMM_N, CGEMM_N = 64, 48
    BATCH_S, BATCH_C = (8, 24), (6, 16)
    BITLEVEL_N, BITLEVEL_COLS = 24, 2
    CAMPAIGN_TRIALS, CAMPAIGN_SLICE, CAMPAIGN_DIM = 5, 5, 16
    SPLITC_B, SPLITC_N, SPLITC_P = 6, 48, 4
else:
    SGEMM_N, CGEMM_N = 512, 256
    BATCH_S, BATCH_C = (32, 64), (24, 48)
    BITLEVEL_N, BITLEVEL_COLS = 256, 2
    CAMPAIGN_TRIALS, CAMPAIGN_SLICE, CAMPAIGN_DIM = 200, 20, 32
    SPLITC_B, SPLITC_N, SPLITC_P = 16, 512, 8

_RESULTS: list[dict] = []
_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"


@pytest.fixture(scope="module", autouse=True)
def _write_json():
    yield
    _JSON_PATH.write_text(json.dumps({"smoke": SMOKE, "results": _RESULTS}, indent=2))
    bench_print(f"\nhot-path speedups written to {_JSON_PATH.name}:")
    for r in _RESULTS:
        bench_print(
            f"  {r['name']:<16} {r['shape']:<16} legacy {r['legacy_s']:.3f}s"
            f" / fast {r['fast_s']:.3f}s = {r['speedup']:.1f}x"
        )


def _timed(fn, repeats: int = 3) -> tuple[float, np.ndarray]:
    """Min-of-N wall time and the (last) result."""
    best, out = np.inf, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _record(name: str, shape: str, mode: str, legacy_s: float, fast_s: float,
            min_speedup: float, *, engine: str = "m3xu",
            workers: int | None = None, chunk: int | None = None) -> None:
    speedup = legacy_s / fast_s
    _RESULTS.append({
        "name": name, "shape": shape, "mode": mode,
        "engine": engine,
        "workers": resolve_workers(workers),
        "chunk": chunk,
        "legacy_s": legacy_s, "fast_s": fast_s, "speedup": speedup,
    })
    if not SMOKE:
        assert speedup >= min_speedup, (
            f"{name}: fast path only {speedup:.2f}x over legacy "
            f"(required >= {min_speedup}x)"
        )


#: Scalar bit-level oracle timings, keyed by (n, cols) — the oracle slice
#: is expensive, and both bit-level GEMM rows must compare against the
#: *same* measurement so their speedups are mutually consistent.
_SCALAR_SLICE: dict[tuple[int, int], tuple[float, np.ndarray]] = {}


def _scalar_slice(a: np.ndarray, b: np.ndarray, cols: int) -> tuple[float, np.ndarray]:
    key = (a.shape[0], cols)
    if key not in _SCALAR_SLICE:
        driver = TiledGEMM(BitLevelMXU(engine="scalar"), MXUMode.FP32)
        _SCALAR_SLICE[key] = _timed(lambda: driver.run(a, b[:, :cols]), repeats=1)
    return _SCALAR_SLICE[key]


def test_sgemm_single(benchmark):
    n = SGEMM_N
    rng = np.random.default_rng(11)
    a = quantize(rng.standard_normal((n, n)), FP32)
    b = quantize(rng.standard_normal((n, n)), FP32)
    fast_driver = TiledGEMM(M3XU(), MXUMode.FP32)
    legacy_driver = TiledGEMM(M3XU(fastpath=False), MXUMode.FP32, use_plan=False)

    got = benchmark.pedantic(fast_driver.run, args=(a, b), rounds=3, iterations=1)
    fast_s, _ = _timed(lambda: fast_driver.run(a, b))
    legacy_s, want = _timed(lambda: legacy_driver.run(a, b))

    assert got.tobytes() == want.tobytes()
    _record("mxu_sgemm", f"{n}x{n}x{n}", "fp32", legacy_s, fast_s, 3.0)


def test_cgemm_single(benchmark):
    n = CGEMM_N
    rng = np.random.default_rng(12)
    a = quantize_complex(
        rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n)), FP32
    )
    b = quantize_complex(
        rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n)), FP32
    )
    fast_driver = TiledGEMM(M3XU(), MXUMode.FP32C)
    legacy_driver = TiledGEMM(M3XU(fastpath=False), MXUMode.FP32C, use_plan=False)

    got = benchmark.pedantic(fast_driver.run, args=(a, b), rounds=3, iterations=1)
    fast_s, _ = _timed(lambda: fast_driver.run(a, b))
    legacy_s, want = _timed(lambda: legacy_driver.run(a, b))

    assert got.tobytes() == want.tobytes()
    _record("mxu_cgemm", f"{n}x{n}x{n}", "fp32c", legacy_s, fast_s, 2.0)


def test_sgemm_batched(benchmark):
    bsz, n = BATCH_S
    rng = np.random.default_rng(13)
    a = rng.standard_normal((bsz, n, n))
    b = rng.standard_normal((bsz, n, n))

    got = benchmark.pedantic(batched_mxu_sgemm, args=(a, b), rounds=3, iterations=1)
    fast_s, _ = _timed(lambda: batched_mxu_sgemm(a, b))
    aq, bq = quantize(a, FP32), quantize(b, FP32)
    legacy_s, want = _timed(
        lambda: _batched_legacy(aq, bq, MXUMode.FP32, M3XU(fastpath=False))
    )

    assert got.tobytes() == want.tobytes()
    _record("batched_sgemm", f"{bsz}x{n}^3", "fp32", legacy_s, fast_s, 2.0)


def test_cgemm_batched(benchmark):
    bsz, n = BATCH_C
    rng = np.random.default_rng(14)
    a = rng.standard_normal((bsz, n, n)) + 1j * rng.standard_normal((bsz, n, n))
    b = rng.standard_normal((bsz, n, n)) + 1j * rng.standard_normal((bsz, n, n))

    got = benchmark.pedantic(batched_mxu_cgemm, args=(a, b), rounds=3, iterations=1)
    fast_s, _ = _timed(lambda: batched_mxu_cgemm(a, b))
    aq = quantize_complex(a, FP32)
    bq = quantize_complex(b, FP32)
    legacy_s, want = _timed(
        lambda: _batched_legacy(aq, bq, MXUMode.FP32C, M3XU(fastpath=False))
    )

    assert got.tobytes() == want.tobytes()
    _record("batched_cgemm", f"{bsz}x{n}^3", "fp32c", legacy_s, fast_s, 2.0)


def test_bitlevel_sgemm(benchmark):
    """Vectorized vs scalar bit-level datapath on a full bit-level GEMM.

    The vector engine runs the whole N^3 GEMM; the scalar oracle is timed
    on ``BITLEVEL_COLS`` columns of the same problem (bit-identity
    asserted on that slice) and extrapolated to the full width.
    """
    n, cols = BITLEVEL_N, BITLEVEL_COLS
    rng = np.random.default_rng(15)
    a = quantize(rng.standard_normal((n, n)), FP32)
    b = quantize(rng.standard_normal((n, n)), FP32)
    vector_driver = TiledGEMM(BitLevelMXU(engine="vector"), MXUMode.FP32)

    got = benchmark.pedantic(vector_driver.run, args=(a, b), rounds=3, iterations=1)
    fast_s, _ = _timed(lambda: vector_driver.run(a, b))
    slice_s, want_slice = _scalar_slice(a, b, cols)
    legacy_s = slice_s * (n / cols)

    # Bit-identity on the timed slice, before anything reaches the JSON.
    assert got[:, :cols].tobytes() == want_slice.tobytes()
    _record("bitlevel_vector_sgemm", f"{n}x{n}x{n}", "fp32",
            legacy_s, fast_s, 10.0, engine="bitlevel:vector")
    _RESULTS[-1]["extrapolated"] = f"scalar timed on {cols}/{n} columns"


def test_bitlevel_parallel(benchmark):
    """The sharded whole-chain driver vs the scalar oracle — the headline.

    ``sharded_bitlevel_gemm`` composes the vector engine's batched
    K-chain kernel with the worker pool (serial in-process when
    ``REPRO_WORKERS`` <= 1, as on single-core CI). The scalar oracle is
    timed on a column slice of the same operands, asserted bit-identical
    on that slice, and extrapolated to the full width.
    """
    n, cols = BITLEVEL_N, BITLEVEL_COLS
    rng = np.random.default_rng(15)
    a = quantize(rng.standard_normal((n, n)), FP32)
    b = quantize(rng.standard_normal((n, n)), FP32)

    def run() -> np.ndarray:
        return sharded_bitlevel_gemm(a, b, engine="vector")

    got = benchmark.pedantic(run, rounds=3, iterations=1)
    fast_s, _ = _timed(run)
    slice_s, want_slice = _scalar_slice(a, b, cols)
    legacy_s = slice_s * (n / cols)

    # Bit-identity on the timed slice, before anything reaches the JSON.
    assert got[:, :cols].tobytes() == want_slice.tobytes()
    _record("bitlevel_parallel", f"{n}x{n}x{n}", "fp32",
            legacy_s, fast_s, 100.0, engine="bitlevel:vector",
            chunk=resolve_bitlevel_chunk())
    _RESULTS[-1]["extrapolated"] = f"scalar timed on {cols}/{n} columns"


def test_bitlevel_campaign(benchmark):
    """Vectorized vs scalar bit-level engine under a full fault campaign.

    Both engines run the same seeded campaign config; the scalar engine
    covers a trial prefix (records asserted identical on it) and its time
    is extrapolated to the full trial count.
    """
    trials, sl, d = CAMPAIGN_TRIALS, CAMPAIGN_SLICE, CAMPAIGN_DIM
    cfg = CampaignConfig(
        trials=trials, m=d, n=d, k=d, engine="bitlevel", stages=BITLEVEL_STAGES)
    cfg_slice = CampaignConfig(
        trials=sl, m=d, n=d, k=d, engine="bitlevel", stages=BITLEVEL_STAGES)

    os.environ["REPRO_BITLEVEL"] = "vector"
    try:
        vec_result = benchmark.pedantic(run_campaign, args=(cfg,), rounds=1,
                                        iterations=1)
        fast_s, vec_result = _timed(lambda: run_campaign(cfg))
        os.environ["REPRO_BITLEVEL"] = "scalar"
        slice_s, scalar_result = _timed(lambda: run_campaign(cfg_slice), repeats=1)
    finally:
        os.environ.pop("REPRO_BITLEVEL", None)
    legacy_s = slice_s * (trials / sl)

    # The seeded trial prefix must be engine-independent, record for record.
    assert scalar_result.records == vec_result.records[:sl]
    assert vec_result.undetected_sdc == 0
    _record("bitlevel_vector_campaign", f"{trials}x({d}x{d}x{d})", "fp32",
            legacy_s, fast_s, 10.0, engine="bitlevel:vector")
    _RESULTS[-1]["extrapolated"] = f"scalar timed on {sl}/{trials} trials"


def test_split_cache_repeated_operand(benchmark):
    """Warm operand split cache vs cold split on a repeated-A workload.

    The fixed-weights serving pattern: a batch of ``SPLITC_B`` GEMMs
    sharing one A operand (a stack of byte-identical slices) against
    streaming skinny B panels. Cold disables ``REPRO_SPLIT_CACHE`` so
    every call re-quantises and re-splits the full 3-D stack; warm lets
    :class:`~repro.gemm.plan.OperandSplit` dedupe the identical slices
    to one cached 2-D split broadcast across the batch. Bit-identity is
    asserted between the two timed paths before anything reaches the
    JSON, and the arena-hygiene contract — zero leaked shared-memory
    segments after ``parallel.shutdown()`` — is proven by name.
    """
    bsz, n, p = SPLITC_B, SPLITC_N, SPLITC_P
    rng = np.random.default_rng(21)
    a = np.stack([quantize(rng.standard_normal((n, n)), FP32)] * bsz)
    b = rng.standard_normal((bsz, n, p))

    os.environ[SPLIT_CACHE_ENV] = "0"
    try:
        DEFAULT_SPLIT_CACHE.clear()
        cold_s, want = _timed(lambda: batched_mxu_sgemm(a, b))
    finally:
        os.environ.pop(SPLIT_CACHE_ENV, None)

    DEFAULT_SPLIT_CACHE.clear()
    batched_mxu_sgemm(a, b)  # populate the cache once
    got = benchmark.pedantic(batched_mxu_sgemm, args=(a, b), rounds=3, iterations=1)
    warm_s, got_timed = _timed(lambda: batched_mxu_sgemm(a, b))

    # Bit-identity on the timed slice, before anything reaches the JSON.
    assert got.tobytes() == want.tobytes()
    assert got_timed.tobytes() == want.tobytes()
    info = DEFAULT_SPLIT_CACHE.info()
    assert info["hits"] > 0, "warm batched GEMM never hit the split cache"
    _record("split_cache_batched", f"{bsz}x({n}x{n}x{p})", "fp32",
            cold_s, warm_s, 3.0)
    _RESULTS[-1]["split_cache"] = {"hits": info["hits"], "misses": info["misses"]}

    # Arena hygiene: publish a segment through the sharded bit-level
    # path, then prove shutdown() unlinks it — attaching by name must
    # fail for every segment the arena ever held.
    an = 24 if SMOKE else 48
    aq = quantize(rng.standard_normal((an, an)), FP32)
    bq = quantize(rng.standard_normal((an, an)), FP32)
    fresh = sharded_bitlevel_gemm(aq, bq, engine="vector", workers=2, chunk=an // 2)
    assert fresh.tobytes() == sharded_bitlevel_gemm(
        aq, bq, engine="vector", workers=1
    ).tobytes()
    names = parallel.arena_info()["segments"]
    assert names, "sharded dispatch never published to the operand arena"
    parallel.shutdown()
    assert parallel.arena_info()["entries"] == 0
    for name in names:
        with pytest.raises(FileNotFoundError):
            # repro: allow[FS303] the attach must raise — this is the
            # zero-leaked-segments assertion itself.
            shared_memory.SharedMemory(name=name)
