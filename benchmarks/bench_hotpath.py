"""Hot-path speed: fused/plan fast path vs the legacy reference pipeline.

Not a paper figure: this regression-guards the emulator's own execution
engine. Each case times the legacy pipeline (``fastpath=False`` +
``use_plan=False`` / ``_batched_legacy``) against the default fast path
on the same operands, asserts the results are bit-identical, checks the
acceptance speedups (>=3x on the 512^3 FP32 single GEMM, >=2x on batched
FP32C) and writes the measurements to ``BENCH_hotpath.json`` at the repo
root for machine consumption.

Every timing — fast *and* legacy — is best-of-3 ``time.perf_counter``
wall time, so the JSON deltas are comparable across runs and PRs instead
of being hostage to one noisy measurement.

``REPRO_BENCH_SMOKE=1`` shrinks every shape so the suite doubles as a CI
smoke test (bit-identity still asserted; speedup thresholds waived at toy
sizes).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.gemm.batched import _batched_legacy, batched_mxu_cgemm, batched_mxu_sgemm
from repro.gemm.tiled import TiledGEMM
from repro.mxu.m3xu import M3XU
from repro.mxu.modes import MXUMode
from repro.types.formats import FP32
from repro.types.quantize import quantize, quantize_complex

from conftest import bench_print

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").strip() not in ("", "0")

#: (single FP32 N, single FP32C N, batched FP32 (B, N), batched FP32C (B, N))
if SMOKE:
    SGEMM_N, CGEMM_N = 64, 48
    BATCH_S, BATCH_C = (8, 24), (6, 16)
else:
    SGEMM_N, CGEMM_N = 512, 256
    BATCH_S, BATCH_C = (32, 64), (24, 48)

_RESULTS: list[dict] = []
_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"


@pytest.fixture(scope="module", autouse=True)
def _write_json():
    yield
    _JSON_PATH.write_text(json.dumps({"smoke": SMOKE, "results": _RESULTS}, indent=2))
    bench_print(f"\nhot-path speedups written to {_JSON_PATH.name}:")
    for r in _RESULTS:
        bench_print(
            f"  {r['name']:<16} {r['shape']:<16} legacy {r['legacy_s']:.3f}s"
            f" / fast {r['fast_s']:.3f}s = {r['speedup']:.1f}x"
        )


def _timed(fn, repeats: int = 3) -> tuple[float, np.ndarray]:
    """Min-of-N wall time and the (last) result."""
    best, out = np.inf, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _record(name: str, shape: str, mode: str, legacy_s: float, fast_s: float,
            min_speedup: float) -> None:
    speedup = legacy_s / fast_s
    _RESULTS.append({
        "name": name, "shape": shape, "mode": mode,
        "legacy_s": legacy_s, "fast_s": fast_s, "speedup": speedup,
    })
    if not SMOKE:
        assert speedup >= min_speedup, (
            f"{name}: fast path only {speedup:.2f}x over legacy "
            f"(required >= {min_speedup}x)"
        )


def test_sgemm_single(benchmark):
    n = SGEMM_N
    rng = np.random.default_rng(11)
    a = quantize(rng.standard_normal((n, n)), FP32)
    b = quantize(rng.standard_normal((n, n)), FP32)
    fast_driver = TiledGEMM(M3XU(), MXUMode.FP32)
    legacy_driver = TiledGEMM(M3XU(fastpath=False), MXUMode.FP32, use_plan=False)

    got = benchmark.pedantic(fast_driver.run, args=(a, b), rounds=3, iterations=1)
    fast_s, _ = _timed(lambda: fast_driver.run(a, b))
    legacy_s, want = _timed(lambda: legacy_driver.run(a, b))

    assert got.tobytes() == want.tobytes()
    _record("mxu_sgemm", f"{n}x{n}x{n}", "fp32", legacy_s, fast_s, 3.0)


def test_cgemm_single(benchmark):
    n = CGEMM_N
    rng = np.random.default_rng(12)
    a = quantize_complex(
        rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n)), FP32
    )
    b = quantize_complex(
        rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n)), FP32
    )
    fast_driver = TiledGEMM(M3XU(), MXUMode.FP32C)
    legacy_driver = TiledGEMM(M3XU(fastpath=False), MXUMode.FP32C, use_plan=False)

    got = benchmark.pedantic(fast_driver.run, args=(a, b), rounds=3, iterations=1)
    fast_s, _ = _timed(lambda: fast_driver.run(a, b))
    legacy_s, want = _timed(lambda: legacy_driver.run(a, b))

    assert got.tobytes() == want.tobytes()
    _record("mxu_cgemm", f"{n}x{n}x{n}", "fp32c", legacy_s, fast_s, 2.0)


def test_sgemm_batched(benchmark):
    bsz, n = BATCH_S
    rng = np.random.default_rng(13)
    a = rng.standard_normal((bsz, n, n))
    b = rng.standard_normal((bsz, n, n))

    got = benchmark.pedantic(batched_mxu_sgemm, args=(a, b), rounds=3, iterations=1)
    fast_s, _ = _timed(lambda: batched_mxu_sgemm(a, b))
    aq, bq = quantize(a, FP32), quantize(b, FP32)
    legacy_s, want = _timed(
        lambda: _batched_legacy(aq, bq, MXUMode.FP32, M3XU(fastpath=False))
    )

    assert got.tobytes() == want.tobytes()
    _record("batched_sgemm", f"{bsz}x{n}^3", "fp32", legacy_s, fast_s, 2.0)


def test_cgemm_batched(benchmark):
    bsz, n = BATCH_C
    rng = np.random.default_rng(14)
    a = rng.standard_normal((bsz, n, n)) + 1j * rng.standard_normal((bsz, n, n))
    b = rng.standard_normal((bsz, n, n)) + 1j * rng.standard_normal((bsz, n, n))

    got = benchmark.pedantic(batched_mxu_cgemm, args=(a, b), rounds=3, iterations=1)
    fast_s, _ = _timed(lambda: batched_mxu_cgemm(a, b))
    aq = quantize_complex(a, FP32)
    bq = quantize_complex(b, FP32)
    legacy_s, want = _timed(
        lambda: _batched_legacy(aq, bq, MXUMode.FP32C, M3XU(fastpath=False))
    )

    assert got.tobytes() == want.tobytes()
    _record("batched_cgemm", f"{bsz}x{n}^3", "fp32c", legacy_s, fast_s, 2.0)
