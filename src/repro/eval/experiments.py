"""One runner per paper table/figure, with paper-reference comparisons.

Every function returns an :class:`ExperimentResult` holding the series it
computed plus the paper's headline numbers, so the benchmark harness and
EXPERIMENTS.md generation share one source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..accuracy.study import cgemm_accuracy_study, sgemm_accuracy_study
from ..cache import memoize
from ..apps.dnn.training import figure7
from ..apps.fft.perf import fft_speedups
from ..apps.knn.perf import figure9
from ..apps.mrf.perf import figure8
from ..gpusim.config import a100, a100_emulation, h100, mi100, required_feed_bandwidth
from ..gpusim.energy import EnergyModel, estimate_energy
from ..gpusim.instrmix import APPROACHES, tile_instruction_breakdown
from ..gpusim.kernelmodel import estimate_time
from ..kernels.base import GemmProblem
from ..kernels.registry import CGEMM_KERNELS, SGEMM_KERNELS
from ..synthesis.report import PAPER_TABLE3, synthesis_table

__all__ = [
    "ExperimentResult",
    "table1_throughput",
    "section3c_projections",
    "fig2_instruction_mix",
    "table3_synthesis",
    "fig4_gemm_speedups",
    "fig5_energy_and_peak",
    "fig6_fft",
    "fig7_dnn",
    "fig8_mrf",
    "fig9_knn",
    "accuracy_claims",
    "GEMM_SIZES",
]

#: Figure 4 problem sizes: "ranging from 1Kx1Kx1K to 16Kx16Kx16K".
GEMM_SIZES = [1024, 2048, 4096, 8192, 16384]


@dataclass
class ExperimentResult:
    """A computed experiment with its paper reference points."""

    experiment: str
    rows: list[dict[str, Any]]
    paper: dict[str, float]
    measured: dict[str, float]
    notes: str = ""

    def render(self) -> str:
        """Human-readable report block."""
        lines = [f"== {self.experiment} =="]
        for row in self.rows:
            lines.append("  " + "  ".join(f"{k}={_fmt(v)}" for k, v in row.items()))
        lines.append("  paper vs measured:")
        for key, pval in self.paper.items():
            mval = self.measured.get(key, float("nan"))
            lines.append(f"    {key:34s} paper={_fmt(pval):>8s} ours={_fmt(mval):>8s}")
        if self.notes:
            lines.append(f"  note: {self.notes}")
        return "\n".join(lines)


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        if v == 0 or (1e-3 < abs(v) < 1e5):
            return f"{v:.3g}"
        return f"{v:.2e}"
    return str(v)


# ----------------------------------------------------------------------
# Table I + Section II-B
# ----------------------------------------------------------------------
def table1_throughput() -> ExperimentResult:
    """A100 peak throughput per data path + the feed-bandwidth formula."""
    gpu = a100()
    paths = ["fp32", "fp16", "bf16", "tf32_tc", "fp16_tc", "bf16_tc"]
    rows = [{"path": p, "tflops": gpu.peak_tflops(p)} for p in paths]
    feed = required_feed_bandwidth(gpu, 8, 4, 8, 16)
    measured = {f"{p}_tflops": gpu.peak_tflops(p) for p in paths}
    measured["feed_bw_tbs"] = feed / 1e12
    paper = {
        "fp32_tflops": 19.5,
        "fp16_tflops": 78.0,
        "bf16_tflops": 39.0,
        "tf32_tc_tflops": 156.0,
        "fp16_tc_tflops": 312.0,
        "bf16_tc_tflops": 312.0,
        "feed_bw_tbs": 156.0,
    }
    return ExperimentResult("Table I: A100 peak throughput", rows, paper, measured)


def section3c_projections() -> ExperimentResult:
    """Section III-C: M3XU's peak advantage on Ampere, Hopper and CDNA."""
    rows = []
    measured = {}
    for gpu in (a100(), h100(), mi100()):
        adv = gpu.peak_tflops("m3xu_fp32") / gpu.peak_tflops("fp32")
        rows.append(
            {
                "gpu": gpu.name,
                "m3xu_fp32_tflops": gpu.peak_tflops("m3xu_fp32"),
                "advantage_over_simt": adv,
            }
        )
        measured[f"{gpu.name}_advantage"] = adv
        measured[f"{gpu.name}_m3xu_tflops"] = gpu.peak_tflops("m3xu_fp32")
    paper = {
        "a100_advantage": 4.0,       # "4x performance advantage over FP32 CUDA cores"
        "a100_m3xu_tflops": 78.0,    # "equivalent to 78 TFLOPS on ... Ampere"
        "h100_m3xu_tflops": 248.0,   # "or 248 TFLOPS on the Hopper architecture"
        "mi100_advantage": 2.0,      # "a 2x advantage over SIMT cores on those GPUs"
    }
    return ExperimentResult(
        "Section III-C: cross-architecture projections", rows, paper, measured
    )


# ----------------------------------------------------------------------
# Figure 2
# ----------------------------------------------------------------------
def fig2_instruction_mix() -> ExperimentResult:
    """Warp instructions per logical FP32 warp-tile MMA, by approach."""
    rows = []
    measured = {}
    for ap in APPROACHES:
        b = tile_instruction_breakdown(ap)
        rows.append(
            {
                "approach": ap,
                "loads": b.loads,
                "stores": b.stores,
                "split_arith": b.split_arith,
                "mma": b.mma,
                "total": b.total,
            }
        )
        measured[f"{ap}_total"] = b.total
    paper = {
        # Qualitative figure: hardware needs no split instructions and
        # fewer loads/stores than software (Section II-C.1).
        "m3xu_total": measured["m3xu_total"],
        "sw_over_hw_ratio": measured["3xbf16_total"] / measured["m3xu_total"],
    }
    return ExperimentResult(
        "Figure 2: SW vs HW instruction streams",
        rows,
        paper,
        {
            "m3xu_total": measured["m3xu_total"],
            "sw_over_hw_ratio": measured["3xbf16_total"] / measured["m3xu_total"],
        },
        notes="Figure 2 is qualitative; the ratio quantifies its claim.",
    )


# ----------------------------------------------------------------------
# Table III
# ----------------------------------------------------------------------
def table3_synthesis() -> ExperimentResult:
    rows = []
    paper: dict[str, float] = {}
    measured: dict[str, float] = {}
    for r in synthesis_table():
        rows.append(
            {"design": r.design, "area": r.area, "cycle": r.cycle, "power": r.power}
        )
        ref = PAPER_TABLE3[r.design]
        for metric in ("area", "cycle", "power"):
            paper[f"{r.design}.{metric}"] = ref[metric]
            measured[f"{r.design}.{metric}"] = getattr(r, metric)
    return ExperimentResult("Table III: synthesis (relative)", rows, paper, measured)


# ----------------------------------------------------------------------
# Figure 4
# ----------------------------------------------------------------------
@memoize
def fig4_gemm_speedups(sizes: list[int] | None = None) -> ExperimentResult:
    """SGEMM + CGEMM speedups over the SIMT baselines across sizes.

    Memoised per size list: repeated report renders and sweeps replay
    the cached rows (``use_cache=False`` recomputes).
    """
    gpu = a100_emulation()
    sizes = sizes or GEMM_SIZES
    rows = []
    series: dict[str, list[float]] = {}
    base_s = SGEMM_KERNELS["cutlass_simt_sgemm"]
    base_c = CGEMM_KERNELS["cutlass_simt_cgemm"]
    for s in sizes:
        p = GemmProblem(s, s, s)
        pc = GemmProblem(s, s, s, complex=True)
        t0 = base_s.time(p, gpu)
        t0c = base_c.time(pc, gpu)
        row: dict[str, Any] = {"size": s}
        for name, k in SGEMM_KERNELS.items():
            if name == "baseline_MXU_sgemm":
                continue
            sp = t0 / k.time(p, gpu)
            row[name] = sp
            series.setdefault(name, []).append(sp)
        for name, k in CGEMM_KERNELS.items():
            if name == "baseline_MXU_cgemm":
                continue
            sp = t0c / k.time(pc, gpu)
            row[name] = sp
            series.setdefault(name, []).append(sp)
        rows.append(row)

    def avg(name: str) -> float:
        return float(np.mean(series[name]))

    def mx(name: str) -> float:
        return float(np.max(series[name]))

    measured = {
        "sgemm_m3xu_avg": avg("M3XU_sgemm_pipelined"),
        "sgemm_m3xu_max": mx("M3XU_sgemm_pipelined"),
        "sgemm_m3xu_nonpipelined_avg": avg("M3XU_sgemm"),
        "sgemm_alternatives_max": max(
            mx("cutlass_tensorop_sgemm"), mx("EEHC_sgemm_fp32B")
        ),
        "cgemm_m3xu_avg": avg("M3XU_cgemm_pipelined"),
        "cgemm_m3xu_max": mx("M3XU_cgemm_pipelined"),
        "cgemm_m3xu_nonpipelined_avg": avg("M3XU_cgemm"),
        "cgemm_tensorop_max": mx("cutlass_tensorop_cgemm"),
    }
    paper = {
        "sgemm_m3xu_avg": 3.64,
        "sgemm_m3xu_max": 3.89,
        "sgemm_m3xu_nonpipelined_avg": 3.35,
        "sgemm_alternatives_max": 2.67,
        "cgemm_m3xu_avg": 3.51,
        "cgemm_m3xu_max": 3.82,
        "cgemm_m3xu_nonpipelined_avg": 3.51,
        "cgemm_tensorop_max": 2.1,
    }
    return ExperimentResult(
        "Figure 4: GEMM speedups over SIMT", rows, paper, measured,
        notes="speedup saturates above 8K^3, as in the paper",
    )


# ----------------------------------------------------------------------
# Figure 5
# ----------------------------------------------------------------------
@memoize
def fig5_energy_and_peak(size: int = 8192) -> ExperimentResult:
    """Relative energy vs the FP32-MXU references + %% of theoretical peak.

    Memoised per problem size, like :func:`fig4_gemm_speedups`.
    """
    gpu = a100_emulation()
    model = EnergyModel()
    p = GemmProblem(size, size, size)
    pc = GemmProblem(size, size, size, complex=True)

    def energy(kernels, name, problem):
        k = kernels[name]
        total = 0.0
        for spec in k.build(problem, gpu):
            t = estimate_time(spec, gpu)
            mode = k.energy_mode_override if spec.work.tc_macs else None
            total += estimate_energy(spec, gpu, model, t, tc_mode_override=mode).total_j
        return total

    e_ref_s = energy(SGEMM_KERNELS, "baseline_MXU_sgemm", p)
    e_ref_c = energy(CGEMM_KERNELS, "baseline_MXU_cgemm", pc)
    rows = []
    measured = {}
    for name in ("M3XU_sgemm_pipelined", "M3XU_sgemm", "cutlass_tensorop_sgemm", "EEHC_sgemm_fp32B"):
        rel = energy(SGEMM_KERNELS, name, p) / e_ref_s
        rows.append({"kernel": name, "rel_energy_vs_fp32mxu": rel})
        measured[f"energy.{name}"] = rel
    for name in ("M3XU_cgemm_pipelined", "M3XU_cgemm", "cutlass_tensorop_cgemm"):
        rel = energy(CGEMM_KERNELS, name, pc) / e_ref_c
        rows.append({"kernel": name, "rel_energy_vs_fp32mxu": rel})
        measured[f"energy.{name}"] = rel

    # % of theoretical peak (Fig 5c/d): targets are 25% / 6.25% of FP16 TOPS.
    target_s = gpu.peak_tflops("m3xu_fp32")
    target_c = gpu.peak_tflops("m3xu_fp32c")
    for name in ("M3XU_sgemm_pipelined", "cutlass_tensorop_sgemm", "EEHC_sgemm_fp32B"):
        frac = SGEMM_KERNELS[name].tflops(p, gpu) / target_s
        rows.append({"kernel": name, "pct_of_target": 100 * frac})
        measured[f"peak.{name}"] = 100 * frac
    frac_c = CGEMM_KERNELS["M3XU_cgemm_pipelined"].tflops(pc, gpu) / target_c
    rows.append({"kernel": "M3XU_cgemm_pipelined", "pct_of_target": 100 * frac_c})
    measured["peak.M3XU_cgemm_pipelined"] = 100 * frac_c

    paper = {
        "energy.M3XU_sgemm_pipelined": 0.39,   # "61% lower than FP32-MXU"
        "energy.M3XU_sgemm": 0.29,             # non-pipelined: "71% lower"
        "energy.M3XU_cgemm_pipelined": 0.43,   # "57% lower"
        "energy.M3XU_cgemm": 0.32,             # "68% lower"
        "peak.M3XU_sgemm_pipelined": 94.0,     # ">94% of theoretical"
        "peak.M3XU_cgemm_pipelined": 94.0,
        "peak.cutlass_tensorop_sgemm": 63.0,   # "up to 63% of the target"
        "peak.EEHC_sgemm_fp32B": 63.0,
    }
    return ExperimentResult("Figure 5: energy and % of peak", rows, paper, measured)


# ----------------------------------------------------------------------
# Figures 6-9
# ----------------------------------------------------------------------
def fig6_fft() -> ExperimentResult:
    perf = fft_speedups()
    rows = [
        {"n": r.n, "m3xu_speedup": r.m3xu_speedup, "tcfft_speedup": r.tcfft_speedup}
        for r in perf
    ]
    sp = [r.m3xu_speedup for r in perf]
    tc = [r.tcfft_speedup for r in perf]
    measured = {
        "m3xu_fft_max": float(np.max(sp)),
        "m3xu_fft_avg": float(np.mean(sp)),
        "tcfft_avg": float(np.mean(tc)),
    }
    paper = {"m3xu_fft_max": 1.99, "m3xu_fft_avg": 1.52, "tcfft_avg": 1.0}
    return ExperimentResult("Figure 6: FFT speedup over cuFFT", rows, paper, measured)


def fig7_dnn() -> ExperimentResult:
    data = figure7()
    rows = []
    measured = {}
    speedups = []
    for net, d in data.items():
        base, ours = d["mixed_precision"], d["m3xu"]
        sp = base.total_s / ours.total_s
        speedups.append(sp)
        rows.append(
            {
                "network": net,
                "baseline_ms": base.total_s * 1e3,
                "m3xu_ms": ours.total_s * 1e3,
                "speedup": sp,
                "bwd_fraction": base.backward_fraction,
                "bwd_speedup": base.backward_s / ours.backward_s,
            }
        )
        measured[f"bwd_frac.{net}"] = base.backward_fraction
    measured["dnn_speedup_avg"] = float(np.mean(speedups))
    measured["bwd_speedup_max"] = max(r["bwd_speedup"] for r in rows)
    paper = {
        "dnn_speedup_avg": 1.65,
        "bwd_speedup_max": 3.6,
        "bwd_frac.VGG16": 0.396,
        "bwd_frac.ResNet50": 0.391,
        "bwd_frac.AlexNet": 0.465,
    }
    return ExperimentResult(
        "Figure 7: CNN training latency", rows, paper, measured,
        notes=(
            "backward fractions are calibrated to the paper's profile; the "
            "end-to-end gap traces to memory-bound backward layers our "
            "kernel model keeps at ~1x (see EXPERIMENTS.md)"
        ),
    )


def fig8_mrf() -> ExperimentResult:
    perf = figure8()
    rows = [
        {"atoms": r.n_atoms, "speedup": r.speedup, "cgemm_fraction": r.cgemm_fraction}
        for r in perf
    ]
    measured = {
        "mrf_speedup_max": max(r.speedup for r in perf),
        "cgemm_fraction_large": perf[-1].cgemm_fraction,
    }
    paper = {"mrf_speedup_max": 1.26, "cgemm_fraction_large": 0.22}
    return ExperimentResult(
        "Figure 8: MRF dictionary generation", rows, paper, measured
    )


def fig9_knn() -> ExperimentResult:
    perf = figure9()
    rows = [
        {"points": r.n_points, "dim": r.dim, "speedup": r.speedup} for r in perf
    ]
    measured = {"knn_speedup_max": max(r.speedup for r in perf)}
    paper = {"knn_speedup_max": 1.8}
    return ExperimentResult("Figure 9: kNN speedup heatmap", rows, paper, measured)


# ----------------------------------------------------------------------
# Section V-B numerical claims
# ----------------------------------------------------------------------
def accuracy_claims() -> ExperimentResult:
    sres = {r.name: r for r in sgemm_accuracy_study()}
    cres = {r.name: r for r in cgemm_accuracy_study()}
    rows = [
        {"impl": r.name, "matching_bits": r.matching_bits, "max_rel": r.max_rel_error}
        for r in list(sres.values()) + list(cres.values())
    ]
    measured = {
        "m3xu_bits_minus_fp32_bits": sres["m3xu_fp32"].matching_bits
        - sres["fp32_simt"].matching_bits,
        "m3xu_bits_minus_3xbf16_bits": sres["m3xu_fp32"].matching_bits
        - sres["3xbf16"].matching_bits,
        "m3xu_c_bits_minus_fp32c_bits": cres["m3xu_fp32c"].matching_bits
        - cres["fp32c_simt"].matching_bits,
    }
    paper = {
        "m3xu_bits_minus_fp32_bits": 0.0,       # "no additional error"
        "m3xu_bits_minus_3xbf16_bits": 1.0,     # "one to several bits" lost
        "m3xu_c_bits_minus_fp32c_bits": 0.0,
    }
    return ExperimentResult(
        "Section V-B: numerical exactness", rows, paper, measured,
        notes=">= 0 measured means M3XU is at least as accurate as FP32 SIMT",
    )
