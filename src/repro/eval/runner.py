"""Run every experiment and render the full paper-vs-measured report.

Experiments are independent of each other, so :func:`run_all` can fan
them out across worker processes (``workers=N`` or ``REPRO_WORKERS``);
results are reassembled in experiment order and identical for every
worker count.

Results are also content-addressed through :mod:`repro.cache`: a second
``run_all`` (or report render) in the same process — or across
processes when ``REPRO_CACHE_DIR`` is set — replays cached experiment
results instead of recomputing them. ``use_cache=False`` (CLI:
``--no-cache``; env: ``REPRO_CACHE=0``) forces the cold path, which is
bit-identical by construction.

On top of the cache sits the crash-tolerance layer
(:mod:`repro.resilience.checkpoint`): with ``REPRO_CHECKPOINT_DIR`` set
(or an explicit ``checkpoint=`` target), every completed experiment is
appended to a JSONL journal *as it finishes* — not when the sweep ends —
so a ``run_all`` killed mid-flight loses only the in-flight work.
``resume=True`` (CLI: ``--resume``) replays the journal's surviving
entries (validated by per-record checksum and keyed by the same
code-salted content address the cache uses, so stale journals are
ignored) and computes only what is missing; the resumed sweep's results
are bit-identical to an uninterrupted run. Per-task ``retries`` /
``timeout`` compose via :func:`repro.parallel.parallel_map`.
"""

from __future__ import annotations

from typing import Callable

from ..cache import CODE_SALT, DEFAULT_CACHE, cache_enabled, stable_digest
from ..parallel import parallel_map
from ..resilience.checkpoint import CheckpointJournal
from .experiments import (
    ExperimentResult,
    accuracy_claims,
    fig2_instruction_mix,
    fig4_gemm_speedups,
    fig5_energy_and_peak,
    fig6_fft,
    fig7_dnn,
    fig8_mrf,
    fig9_knn,
    section3c_projections,
    table1_throughput,
    table3_synthesis,
)

__all__ = ["ALL_EXPERIMENTS", "register_experiment", "run_all", "render_report"]

ALL_EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "table1": table1_throughput,
    "section3c": section3c_projections,
    "fig2": fig2_instruction_mix,
    "table3": table3_synthesis,
    "fig4": fig4_gemm_speedups,
    "fig5": fig5_energy_and_peak,
    "fig6": fig6_fft,
    "fig7": fig7_dnn,
    "fig8": fig8_mrf,
    "fig9": fig9_knn,
    "accuracy": accuracy_claims,
}


def register_experiment(name: str, fn: Callable[[], ExperimentResult]) -> None:
    """Register an additional experiment (used by tests and extensions).

    The function must be picklable (module-level) for parallel runs; the
    experiment's cache/journal key folds the function in, so replacing an
    implementation invalidates previously journaled results for *name*.
    """
    ALL_EXPERIMENTS[name] = fn


def _run_experiment(name: str) -> ExperimentResult:
    """Module-level (picklable) single-experiment entry point."""
    return ALL_EXPERIMENTS[name]()


def _experiment_key(name: str) -> str:
    """Content address of one experiment: its name, the function that
    computes it, and the cache code salt."""
    return stable_digest(CODE_SALT, "experiment", name, ALL_EXPERIMENTS[name])


_MISS = object()


def run_all(
    only: list[str] | None = None,
    workers: int | None = None,
    use_cache: bool | None = None,
    checkpoint: "str | CheckpointJournal | None" = None,
    resume: bool = False,
    retries: int | None = None,
    timeout: float | None = None,
) -> dict[str, ExperimentResult]:
    """Execute the selected (default: all) experiments.

    Cached results are replayed where available (same keys, same code
    salt); only the misses are computed — fanned out across *workers*
    processes when requested — then stored for the next sweep.

    *checkpoint* (or ``REPRO_CHECKPOINT_DIR``) names a journal that
    records every completed experiment durably as it finishes;
    ``resume=True`` replays its validated entries before computing the
    remainder, so an interrupted sweep continues instead of restarting.
    *retries*/*timeout* harden each experiment task (see
    :func:`repro.parallel.parallel_map`).
    """
    names = only or list(ALL_EXPERIMENTS)
    caching = cache_enabled() if use_cache is None else use_cache
    journal = CheckpointJournal.resolve(checkpoint)
    results: dict[str, ExperimentResult] = {}

    if resume and journal is not None:
        for name, (key, value) in journal.load().items():
            # A journal entry only counts when its content address still
            # matches: same experiment, same code, same salt.
            if name in names and key == _experiment_key(name):
                results[name] = value

    missing: list[str] = []
    for name in names:
        if name in results:
            continue
        hit = DEFAULT_CACHE.get(_experiment_key(name), _MISS) if caching else _MISS
        if hit is _MISS:
            missing.append(name)
        else:
            results[name] = hit
            if journal is not None:
                journal.append(name, _experiment_key(name), hit)

    if missing:

        def record(index: int, result: ExperimentResult) -> None:
            name = missing[index]
            if caching:
                DEFAULT_CACHE.put(_experiment_key(name), result)
            if journal is not None:
                journal.append(name, _experiment_key(name), result)

        computed = parallel_map(
            _run_experiment,
            missing,
            workers=workers,
            chunk_size=1,
            retries=retries,
            timeout=timeout,
            on_result=record,
        )
        for name, result in zip(missing, computed):
            results[name] = result
    return {name: results[name] for name in names}


def render_report(results: dict[str, ExperimentResult] | None = None) -> str:
    """The full text report (what EXPERIMENTS.md summarises)."""
    if results is None:  # an explicit empty selection renders empty
        results = run_all()
    return "\n\n".join(r.render() for r in results.values())


if __name__ == "__main__":  # pragma: no cover
    print(render_report())
