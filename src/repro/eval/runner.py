"""Run every experiment and render the full paper-vs-measured report.

Experiments are independent of each other, so :func:`run_all` can fan
them out across worker processes (``workers=N`` or ``REPRO_WORKERS``);
results are reassembled in experiment order and identical for every
worker count.
"""

from __future__ import annotations

from typing import Callable

from ..parallel import parallel_map
from .experiments import (
    ExperimentResult,
    accuracy_claims,
    fig2_instruction_mix,
    fig4_gemm_speedups,
    fig5_energy_and_peak,
    fig6_fft,
    fig7_dnn,
    fig8_mrf,
    fig9_knn,
    section3c_projections,
    table1_throughput,
    table3_synthesis,
)

__all__ = ["ALL_EXPERIMENTS", "run_all", "render_report"]

ALL_EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "table1": table1_throughput,
    "section3c": section3c_projections,
    "fig2": fig2_instruction_mix,
    "table3": table3_synthesis,
    "fig4": fig4_gemm_speedups,
    "fig5": fig5_energy_and_peak,
    "fig6": fig6_fft,
    "fig7": fig7_dnn,
    "fig8": fig8_mrf,
    "fig9": fig9_knn,
    "accuracy": accuracy_claims,
}


def _run_experiment(name: str) -> ExperimentResult:
    """Module-level (picklable) single-experiment entry point."""
    return ALL_EXPERIMENTS[name]()


def run_all(
    only: list[str] | None = None, workers: int | None = None
) -> dict[str, ExperimentResult]:
    """Execute the selected (default: all) experiments."""
    names = only or list(ALL_EXPERIMENTS)
    results = parallel_map(_run_experiment, names, workers=workers, chunk_size=1)
    return dict(zip(names, results))


def render_report(results: dict[str, ExperimentResult] | None = None) -> str:
    """The full text report (what EXPERIMENTS.md summarises)."""
    results = results or run_all()
    return "\n\n".join(r.render() for r in results.values())


if __name__ == "__main__":  # pragma: no cover
    print(render_report())
