"""Export experiment results as CSV / JSON artifacts.

The benchmark harness prints human-readable reports; downstream plotting
or regression tracking wants machine-readable artifacts. ``export_csv``
writes one CSV per experiment's row table, ``export_json`` a single JSON
document with rows + paper-vs-measured per experiment.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from .experiments import ExperimentResult

__all__ = ["export_csv", "export_json", "rows_to_csv_text"]


def rows_to_csv_text(result: ExperimentResult) -> str:
    """Render one experiment's row table as CSV text."""
    if not result.rows:
        return ""
    # Union of keys across rows, first-row order first.
    fields = list(result.rows[0])
    for row in result.rows[1:]:
        for k in row:
            if k not in fields:
                fields.append(k)
    import io

    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=fields, restval="")
    writer.writeheader()
    for row in result.rows:
        writer.writerow(row)
    return buf.getvalue()


def export_csv(
    results: dict[str, ExperimentResult], out_dir: str | Path
) -> list[Path]:
    """Write ``<name>.csv`` per experiment; returns the written paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written = []
    for name, result in results.items():
        path = out / f"{name}.csv"
        path.write_text(rows_to_csv_text(result))
        written.append(path)
    return written


def export_json(
    results: dict[str, ExperimentResult], path: str | Path
) -> Path:
    """Write all experiments (rows + paper/measured/notes) as one JSON."""
    doc = {
        name: {
            "experiment": r.experiment,
            "rows": r.rows,
            "paper": r.paper,
            "measured": r.measured,
            "notes": r.notes,
        }
        for name, r in results.items()
    }
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(doc, indent=2, default=float))
    return p
