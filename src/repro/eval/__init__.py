"""Per-table/figure experiment runners (the reproduction's front door)."""

from .experiments import (
    GEMM_SIZES,
    ExperimentResult,
    accuracy_claims,
    fig2_instruction_mix,
    fig4_gemm_speedups,
    fig5_energy_and_peak,
    fig6_fft,
    fig7_dnn,
    fig8_mrf,
    fig9_knn,
    section3c_projections,
    table1_throughput,
    table3_synthesis,
)
from .export import export_csv, export_json, rows_to_csv_text
from .runner import ALL_EXPERIMENTS, register_experiment, render_report, run_all

__all__ = [
    "ExperimentResult",
    "GEMM_SIZES",
    "table1_throughput",
    "section3c_projections",
    "fig2_instruction_mix",
    "table3_synthesis",
    "fig4_gemm_speedups",
    "fig5_energy_and_peak",
    "fig6_fft",
    "fig7_dnn",
    "fig8_mrf",
    "fig9_knn",
    "accuracy_claims",
    "ALL_EXPERIMENTS",
    "register_experiment",
    "run_all",
    "render_report",
    "export_csv",
    "export_json",
    "rows_to_csv_text",
]
