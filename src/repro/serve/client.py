"""Clients for the GEMM service, plus the fault-injecting load generator.

:class:`ServeClient` is the simple blocking client (one request on the
wire at a time). :class:`AsyncConnection` pipelines: requests are sent
as they come and a background reader matches responses by ``id``, so a
single connection can hold many requests in flight — which is what lets
the open-loop load generator actually overload the server instead of
self-throttling.

:func:`run_loadgen` drives a server (optionally self-hosted in-process)
through a configurable mix of GEMM/FFT/MRF requests with injected faults
(worker kills, poisoned datapaths, stalls) and checks every ``OK``
response against a float64 reference — an undetected silent data
corruption (SDC) in a served result is the one unacceptable outcome, and
the report counts them explicitly so CI can assert zero.
"""

from __future__ import annotations

import asyncio
import json
import socket
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .records import percentile
from .server import GemmServer, ServeConfig, decode_array, encode_array

__all__ = [
    "ServeClient",
    "AsyncConnection",
    "LoadgenConfig",
    "run_loadgen",
    "run_loadgen_async",
]


class ServeClient:
    """Blocking line-delimited JSON client (one request in flight)."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")
        self._seq = 0

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        self._seq += 1
        payload = dict(payload)
        payload.setdefault("id", f"c{self._seq}")
        self._sock.sendall((json.dumps(payload) + "\n").encode())
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = json.loads(line)
        assert isinstance(response, dict)
        return response

    # -- convenience wrappers ------------------------------------------
    def gemm(self, a: np.ndarray, b: np.ndarray, **extra: Any) -> dict[str, Any]:
        op = "cgemm" if np.iscomplexobj(a) or np.iscomplexobj(b) else "gemm"
        return self.request(
            {"op": op, "a": encode_array(np.asarray(a)),
             "b": encode_array(np.asarray(b)), **extra}
        )

    def fft(self, x: np.ndarray, **extra: Any) -> dict[str, Any]:
        return self.request({"op": "fft", "x": encode_array(np.asarray(x)), **extra})

    def ping(self) -> dict[str, Any]:
        return self.request({"op": "ping"})

    def stats(self) -> dict[str, Any]:
        return self.request({"op": "stats"})

    def shutdown(self) -> dict[str, Any]:
        return self.request({"op": "shutdown"})

    def result(self, response: dict[str, Any]) -> np.ndarray:
        """Decode an ``OK`` response's result array (raises otherwise)."""
        if response.get("status") != "OK":
            raise RuntimeError(
                f"request {response.get('id')} failed: "
                f"{response.get('status')}/{response.get('reason')}"
            )
        return decode_array(response["result"], max_elements=1 << 62)

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class AsyncConnection:
    """Pipelined asyncio client connection; responses matched by id."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._pending: dict[str, asyncio.Future[dict[str, Any]]] = {}
        self._seq = 0
        self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())

    @classmethod
    async def open(cls, host: str, port: int) -> "AsyncConnection":
        from .server import STREAM_LIMIT

        reader, writer = await asyncio.open_connection(host, port, limit=STREAM_LIMIT)
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    response = json.loads(line)
                except json.JSONDecodeError:
                    continue
                future = self._pending.pop(str(response.get("id")), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (ConnectionResetError, asyncio.IncompleteReadError, OSError):
            pass
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(ConnectionError("connection closed"))
            self._pending.clear()

    async def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        if self._reader_task.done():
            raise ConnectionError("connection closed")
        self._seq += 1
        payload = dict(payload)
        request_id = str(payload.setdefault("id", f"p{id(self):x}-{self._seq}"))
        future: asyncio.Future[dict[str, Any]] = (
            asyncio.get_running_loop().create_future()
        )
        self._pending[request_id] = future
        self._writer.write((json.dumps(payload) + "\n").encode())
        await self._writer.drain()
        return await future

    def in_flight(self) -> int:
        return len(self._pending)

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


# ----------------------------------------------------------------------
# Load generation
# ----------------------------------------------------------------------
@dataclass
class LoadgenConfig:
    """One load level against one server."""

    host: str = "127.0.0.1"
    port: int = 0
    duration_s: float = 5.0
    #: ``closed``: *concurrency* workers each keep one request in
    #: flight. ``open``: requests dispatched at *rate*/s regardless of
    #: completions (pipelined over *concurrency* connections) — the mode
    #: that can actually push the server into overload.
    mode: str = "closed"
    concurrency: int = 4
    rate: float = 50.0  # open-loop dispatch rate (requests/second)
    deadline_ms: float = 2_000.0
    #: Square-GEMM dimension for generated requests.
    size: int = 16
    #: Op mix weights (gemm, cgemm, fft, mrf).
    mix: tuple[float, float, float, float] = (0.7, 0.15, 0.1, 0.05)
    #: Fraction of requests carrying an injected fault.
    fault_rate: float = 0.0
    #: Fault-kind weights (stall, kill_worker, poison).
    fault_mix: tuple[float, float, float] = (0.3, 0.3, 0.4)
    stall_ms: float = 4_000.0
    seed: int = 0
    #: Hard cap so a stuck server cannot hang the generator.
    max_requests: int = 100_000

    def __post_init__(self) -> None:
        if self.mode not in ("closed", "open"):
            raise ValueError(f"loadgen mode {self.mode!r} not in ('closed', 'open')")
        if self.concurrency < 1 or self.size < 2 or self.duration_s <= 0:
            raise ValueError("concurrency >= 1, size >= 2, duration > 0 required")


@dataclass
class _LoadState:
    """Shared accumulator across generator workers."""

    latencies_ms: list[float] = field(default_factory=list)
    outcomes: dict[str, int] = field(default_factory=dict)
    reasons: dict[str, int] = field(default_factory=dict)
    sdc: int = 0
    sdc_ids: list[str] = field(default_factory=list)
    faults_sent: dict[str, int] = field(default_factory=dict)
    sent: int = 0
    degraded: int = 0
    cached: int = 0
    batched: int = 0

    def note(self, response: dict[str, Any], latency_ms: float) -> None:
        status = str(response.get("status", "LOST"))
        self.outcomes[status] = self.outcomes.get(status, 0) + 1
        reason = response.get("reason")
        if reason:
            self.reasons[str(reason)] = self.reasons.get(str(reason), 0) + 1
        if status == "OK":
            self.latencies_ms.append(latency_ms)
            self.degraded += bool(response.get("degraded"))
            self.cached += bool(response.get("cached"))
            self.batched += bool(response.get("batched"))


def _make_request(
    rng: np.random.Generator, cfg: LoadgenConfig, seq: int
) -> tuple[dict[str, Any], np.ndarray]:
    """One generated request plus its float64 reference result."""
    n = cfg.size
    ops = ("gemm", "cgemm", "fft", "mrf")
    op = ops[int(rng.choice(4, p=np.asarray(cfg.mix) / sum(cfg.mix)))]
    request: dict[str, Any] = {"id": f"lg-{seq}", "op": op,
                               "deadline_ms": cfg.deadline_ms}
    if op == "gemm":
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        request["a"], request["b"] = encode_array(a), encode_array(b)
        ref = a.astype(np.float32).astype(np.float64) @ (
            b.astype(np.float32).astype(np.float64)
        )
    elif op == "cgemm":
        a = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
        b = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
        request["a"], request["b"] = encode_array(a), encode_array(b)
        a32 = a.astype(np.complex64).astype(np.complex128)
        b32 = b.astype(np.complex64).astype(np.complex128)
        ref = a32 @ b32
    elif op == "fft":
        n_fft = 1 << max((n - 1).bit_length(), 1)  # fft needs a power of two
        x = rng.standard_normal(n_fft) + 1j * rng.standard_normal(n_fft)
        request["x"] = encode_array(x)
        ref = np.asarray(np.fft.fft(x))
    else:  # mrf
        a = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
        b = rng.standard_normal((2, n)) + 1j * rng.standard_normal((2, n))
        request["a"], request["b"] = encode_array(a), encode_array(b)
        ref = np.abs(np.conj(a) @ b.T)
    if cfg.fault_rate > 0 and rng.random() < cfg.fault_rate:
        kinds = ("stall", "kill_worker", "poison")
        weights = np.asarray(cfg.fault_mix) / sum(cfg.fault_mix)
        kind = kinds[int(rng.choice(3, p=weights))]
        fault: dict[str, Any] = {"kind": kind, "seed": int(rng.integers(2**31 - 1))}
        if kind == "stall":
            fault["ms"] = cfg.stall_ms
        request["fault"] = fault
    return request, ref


def _sdc_tolerance(op: str, k: int, ref: np.ndarray) -> float:
    """Detection threshold: generous for accumulated FP32 roundoff,
    far below any real datapath corruption."""
    scale = float(np.max(np.abs(ref))) if ref.size else 1.0
    stages = 4 * k if op != "fft" else 64 * k
    return max(stages * 2.0**-23 * max(scale, 1.0), 1e-9)


def _check_sdc(
    request: dict[str, Any], response: dict[str, Any], ref: np.ndarray
) -> bool:
    """True if an OK response silently disagrees with the reference."""
    try:
        got = decode_array(response["result"], max_elements=1 << 62)
    except (KeyError, ValueError):
        return True  # an OK response without a decodable result is corrupt
    if got.shape != ref.shape:
        return True
    k = int(request.get("_k") or ref.shape[-1])
    tol = _sdc_tolerance(str(request.get("op")), k, ref)
    return bool(np.max(np.abs(got - ref)) > tol)


async def _run_level(cfg: LoadgenConfig, state: _LoadState) -> None:
    conns = [
        await AsyncConnection.open(cfg.host, cfg.port)
        for _ in range(cfg.concurrency)
    ]
    rng = np.random.default_rng(cfg.seed)
    t_end = time.monotonic() + cfg.duration_s
    tasks: list[asyncio.Task[None]] = []

    async def one(conn: AsyncConnection, seq: int) -> None:
        request, ref = _make_request(rng, cfg, seq)
        fault = request.get("fault")
        if fault:
            kind = str(fault["kind"])
            state.faults_sent[kind] = state.faults_sent.get(kind, 0) + 1
        t0 = time.monotonic()
        try:
            response = await conn.request(request)
        except (ConnectionError, OSError):
            state.outcomes["LOST"] = state.outcomes.get("LOST", 0) + 1
            return
        latency_ms = (time.monotonic() - t0) * 1e3
        state.note(response, latency_ms)
        if response.get("status") == "OK" and not fault:
            # Poisoned requests are checked too — ABFT must have repaired
            # them — but stalls/kills may legitimately return late OKs.
            if _check_sdc(request, response, ref):
                state.sdc += 1
                state.sdc_ids.append(str(request["id"]))
        elif response.get("status") == "OK" and fault and fault["kind"] == "poison":
            if _check_sdc(request, response, ref):
                state.sdc += 1
                state.sdc_ids.append(str(request["id"]))

    try:
        if cfg.mode == "closed":
            async def worker(conn: AsyncConnection, offset: int) -> None:
                seq = offset
                while time.monotonic() < t_end and state.sent < cfg.max_requests:
                    state.sent += 1
                    await one(conn, seq)
                    seq += cfg.concurrency

            await asyncio.gather(
                *(worker(conn, i) for i, conn in enumerate(conns))
            )
        else:
            interval = 1.0 / max(cfg.rate, 1e-3)
            seq = 0
            next_send = time.monotonic()
            while time.monotonic() < t_end and state.sent < cfg.max_requests:
                state.sent += 1
                conn = conns[seq % len(conns)]
                tasks.append(asyncio.get_running_loop().create_task(one(conn, seq)))
                seq += 1
                next_send += interval
                delay = next_send - time.monotonic()
                if delay > 0:
                    await asyncio.sleep(delay)
        if tasks:
            done, pending = await asyncio.wait(
                tasks, timeout=cfg.deadline_ms / 1e3 + 10.0
            )
            for task in pending:
                task.cancel()
                state.outcomes["LOST"] = state.outcomes.get("LOST", 0) + 1
    finally:
        for conn in conns:
            await conn.close()


async def run_loadgen_async(
    cfg: LoadgenConfig, server: GemmServer | None = None
) -> dict[str, Any]:
    """Run one load level inside the current event loop; returns the
    report dict.

    With ``server=None`` and ``cfg.port == 0`` a throwaway in-process
    server (fault injection enabled) is hosted for the duration — the
    self-contained smoke-test mode. Passing a started
    :class:`GemmServer`, or a nonzero ``cfg.port``, drives that target
    instead.
    """
    own_server: GemmServer | None = None
    run_cfg = cfg
    if server is not None:
        run_cfg = LoadgenConfig(**{**cfg.__dict__, "port": server.port,
                                   "host": server.config.host})
    elif cfg.port == 0:
        own_server = GemmServer(
            ServeConfig(port=0, fault_injection=True, max_queue=32)
        )
        await own_server.start()
        run_cfg = LoadgenConfig(**{**cfg.__dict__, "port": own_server.port,
                                   "host": own_server.config.host})
    state = _LoadState()
    t0 = time.monotonic()
    try:
        await _run_level(run_cfg, state)
    finally:
        elapsed = time.monotonic() - t0
        if own_server is not None:
            await own_server.stop()
    ok = state.outcomes.get("OK", 0)
    return {
        "config": {
            "mode": run_cfg.mode,
            "duration_s": run_cfg.duration_s,
            "concurrency": run_cfg.concurrency,
            "rate": run_cfg.rate if run_cfg.mode == "open" else None,
            "size": run_cfg.size,
            "fault_rate": run_cfg.fault_rate,
            "seed": run_cfg.seed,
        },
        "sent": state.sent,
        "outcomes": dict(sorted(state.outcomes.items())),
        "reasons": dict(sorted(state.reasons.items())),
        "faults_sent": dict(sorted(state.faults_sent.items())),
        "served": ok,
        "degraded": state.degraded,
        "cached": state.cached,
        "batched": state.batched,
        "throughput_rps": ok / max(elapsed, 1e-9),
        "p50_latency_ms": percentile(state.latencies_ms, 50.0),
        "p95_latency_ms": percentile(state.latencies_ms, 95.0),
        "max_latency_ms": max(state.latencies_ms, default=0.0),
        "sdc_count": state.sdc,
        "sdc_ids": state.sdc_ids[:10],
        "elapsed_s": elapsed,
    }


def run_loadgen(
    cfg: LoadgenConfig, server: GemmServer | None = None
) -> dict[str, Any]:
    """Synchronous wrapper around :func:`run_loadgen_async` (CLI entry)."""
    return asyncio.run(run_loadgen_async(cfg, server))
