"""GEMM-as-a-service: fault-aware async serving for the emulated datapath.

The serving layer turns the repo's bit-exact GEMM/FFT/MRF stack into a
long-running service with explicit robustness semantics: admission
control and backpressure (:mod:`.admission`), request coalescing onto
the batched entry points (:mod:`.batcher`), a degradation ladder and a
pool circuit breaker (:mod:`.degrade`), per-request deadline propagation
into the worker pool, and one ``run_table.csv`` row per request
(:mod:`.records`). See :mod:`.server` for the protocol and
:mod:`.client` for clients plus the fault-injecting load generator.
"""

from .admission import AdmissionController, TokenBucket
from .batcher import Batcher, BatchKey, PendingJob
from .client import (
    AsyncConnection,
    LoadgenConfig,
    ServeClient,
    run_loadgen,
    run_loadgen_async,
)
from .degrade import CircuitBreaker, DegradeLevel, DegradePolicy
from .records import RUN_TABLE_COLUMNS, RequestRecord, RunTable, percentile
from .server import GemmServer, ServeConfig, serve_forever

__all__ = [
    "AdmissionController",
    "TokenBucket",
    "Batcher",
    "BatchKey",
    "PendingJob",
    "AsyncConnection",
    "LoadgenConfig",
    "ServeClient",
    "run_loadgen",
    "run_loadgen_async",
    "CircuitBreaker",
    "DegradeLevel",
    "DegradePolicy",
    "RUN_TABLE_COLUMNS",
    "RequestRecord",
    "RunTable",
    "percentile",
    "GemmServer",
    "ServeConfig",
    "serve_forever",
]
