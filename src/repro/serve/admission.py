"""Admission control: token-bucket rate limiting + queue-depth backpressure.

The serving layer's first line of defence. Overload is handled at the
door, before any memory or compute is committed to a request:

* A **token bucket** bounds the sustained admission rate (``rate``
  requests/second, with a ``burst``-deep reservoir so short spikes ride
  through). A dry bucket sheds the request with the structured reason
  ``"overload"``.
* **Queue-depth backpressure** bounds the number of admitted-but-not-
  finished requests. A full queue sheds with ``"queue_full"`` — the
  queue can never grow without bound, so a slow pool degrades into fast
  rejections instead of unbounded memory growth and timeout cascades.

Both checks are deterministic given a clock: the bucket refills by
elapsed time, not by a background thread, so tests can drive it with a
fake clock.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

__all__ = ["TokenBucket", "AdmissionController"]


class TokenBucket:
    """Classic token bucket; refill computed lazily from the clock."""

    def __init__(
        self,
        rate: float,
        burst: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be > 0 requests/second")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, self.rate)
        if self.burst < 1.0:
            raise ValueError("burst must allow at least one request")
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()
        self._lock = threading.Lock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    def try_take(self, n: float = 1.0) -> bool:
        """Take *n* tokens if available; never blocks."""
        with self._lock:
            self._refill()
            if self._tokens >= n:
                self._tokens -= n
                return True
            return False

    @property
    def tokens(self) -> float:
        with self._lock:
            self._refill()
            return self._tokens


class AdmissionController:
    """Admit-or-shed decision plus in-flight accounting.

    ``admit()`` returns ``None`` to admit or a structured rejection
    reason. Every admitted request must be balanced by ``release()``
    (the server does this in a ``finally``), which is what keeps the
    queue-depth signal truthful.
    """

    def __init__(
        self,
        rate: float | None = None,
        burst: float | None = None,
        max_queue: int = 64,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.max_queue = int(max_queue)
        self.bucket = TokenBucket(rate, burst, clock) if rate else None
        self._in_flight = 0
        self._lock = threading.Lock()
        self.admitted = 0
        self.rejected_overload = 0
        self.rejected_queue = 0

    def admit(self) -> str | None:
        """``None`` when admitted (in-flight count incremented), else the
        rejection reason (``"overload"`` | ``"queue_full"``)."""
        with self._lock:
            if self._in_flight >= self.max_queue:
                self.rejected_queue += 1
                return "queue_full"
            if self.bucket is not None and not self.bucket.try_take():
                self.rejected_overload += 1
                return "overload"
            self._in_flight += 1
            self.admitted += 1
            return None

    def release(self) -> None:
        with self._lock:
            self._in_flight = max(0, self._in_flight - 1)

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def pressure(self, exclude_self: bool = False) -> float:
        """Queue occupancy in [0, 1] — the degradation ladder's input.

        ``exclude_self=True`` reports the occupancy *around* one admitted
        request (its own slot subtracted): the load a request is deciding
        under should not include the request itself, or a lone request on
        a small queue would look like full pressure.
        """
        with self._lock:
            n = self._in_flight - (1 if exclude_self else 0)
            return max(n, 0) / self.max_queue

    def info(self) -> dict[str, Any]:
        with self._lock:
            return {
                "in_flight": self._in_flight,
                "max_queue": self.max_queue,
                "admitted": self.admitted,
                "rejected_overload": self.rejected_overload,
                "rejected_queue": self.rejected_queue,
                "rate": self.bucket.rate if self.bucket else None,
                "burst": self.bucket.burst if self.bucket else None,
            }
