"""Graceful degradation: the quality ladder and the pool circuit breaker.

Under pressure the server trades result *assurance* for latency in
explicit, tagged steps rather than falling over. The ladder, from full
fidelity down:

``NORMAL`` (0)
    Full pipeline: cache hits are ABFT re-verified, execution fans out
    through the worker pool, per-request deadlines enforced by killing
    hung workers.
``NO_REVERIFY`` (1)
    Cache hits are served without ABFT re-verification (the entry was
    verified when it was stored); misses still run the full pipeline.
``SERIAL`` (2)
    Execution falls back from the pool fan-out to serial in-process
    compute (``workers=1``, no pool dispatch) — the right call when the
    pool itself is the suspect (circuit open) or respawn churn would add
    more latency than serial compute costs.
``REFERENCE`` (3)
    The request is served from the FP32 numpy reference instead of the
    emulated datapath and tagged ``degraded=true`` — numerically honest
    (it is *more* accurate than the emulation, but it is not the bits
    the service contract promises), orders of magnitude cheaper, and
    clearly labelled so the client can decide whether to keep it.

Every response carries its level; the ladder never silently changes
meaning. :class:`AbftUncorrectedError` is *not* a degradation — it
always fails the single request it hit (never the server): returning a
result the guard could not repair would be the one unforgivable lie.

The **circuit breaker** guards the pool: consecutive broken-pool /
timeout events (from the health counters in
:func:`repro.parallel.pool_info` plus the server's own observations)
trip it OPEN; while OPEN, requests skip the pool (level >= SERIAL).
After a cooldown it admits a single HALF_OPEN probe back through the
pool — success closes the circuit, failure re-opens it with a fresh
cooldown. The classic pattern, sized for a process pool instead of a
remote dependency.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from enum import IntEnum
from typing import Any, Callable

__all__ = ["DegradeLevel", "CircuitBreaker", "DegradePolicy"]


class DegradeLevel(IntEnum):
    NORMAL = 0
    NO_REVERIFY = 1
    SERIAL = 2
    REFERENCE = 3


class CircuitBreaker:
    """CLOSED -> OPEN -> HALF_OPEN -> CLOSED breaker around the pool."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = int(threshold)
        self.cooldown = float(cooldown)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._streak = 0
        self._opened_at = 0.0
        self._probing = False
        self.trips = 0
        self.recoveries = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    def _effective_state(self) -> str:
        if self._state == self.OPEN and (
            self._clock() - self._opened_at >= self.cooldown
        ):
            self._state = self.HALF_OPEN
            self._probing = False
        return self._state

    def allow_pool(self) -> bool:
        """May this request use the worker pool?

        CLOSED: yes. OPEN: no. HALF_OPEN: exactly one in-flight probe is
        let through; everyone else stays off the pool until the probe
        reports back.
        """
        with self._lock:
            state = self._effective_state()
            if state == self.CLOSED:
                return True
            if state == self.HALF_OPEN and not self._probing:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        """A pool round-trip completed cleanly."""
        with self._lock:
            state = self._effective_state()
            self._streak = 0
            self._probing = False
            if state in (self.HALF_OPEN, self.OPEN):
                self._state = self.CLOSED
                self.recoveries += 1

    def record_failure(self, kind: str = "broken-pool") -> None:
        """A pool round-trip broke (``broken-pool`` | ``timeout``)."""
        with self._lock:
            state = self._effective_state()
            self._streak += 1
            if state == self.HALF_OPEN:
                # The probe failed: straight back to OPEN, fresh cooldown.
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._probing = False
                self.trips += 1
            elif state == self.CLOSED and self._streak >= self.threshold:
                self._state = self.OPEN
                self._opened_at = self._clock()
                self.trips += 1

    def record_events(self, failures: int) -> None:
        """Fold in *failures* pool-health events observed externally
        (e.g. a delta of ``pool_info()['broken_events']``)."""
        for _ in range(max(0, failures)):
            self.record_failure()

    def info(self) -> dict[str, Any]:
        with self._lock:
            return {
                "state": self._effective_state(),
                "streak": self._streak,
                "threshold": self.threshold,
                "cooldown": self.cooldown,
                "trips": self.trips,
                "recoveries": self.recoveries,
            }


@dataclass
class DegradePolicy:
    """Maps load pressure + breaker state to a :class:`DegradeLevel`.

    ``mode`` is one of:

    * ``"auto"`` — the ladder engages by queue pressure and breaker
      state (the default).
    * ``"off"`` — never degrade; overload is handled purely by admission
      control, and a broken pool surfaces as request errors.
    * ``"0" .. "3"`` — pin a fixed level (useful for tests and for
      operating through a known-bad pool).

    Thresholds are queue-occupancy fractions: at or above
    ``no_reverify_at`` cache hits stop being re-verified, at
    ``serial_at`` execution goes serial, at ``reference_at`` requests
    are served from the FP32 reference.
    """

    mode: str = "auto"
    no_reverify_at: float = 0.5
    serial_at: float = 0.75
    reference_at: float = 0.9

    def __post_init__(self) -> None:
        valid = {"auto", "off", "0", "1", "2", "3"}
        if self.mode not in valid:
            raise ValueError(f"degrade mode {self.mode!r} not in {sorted(valid)}")
        if not 0.0 <= self.no_reverify_at <= self.serial_at <= self.reference_at:
            raise ValueError("degrade thresholds must be ordered in [0, 1]")

    def decide(self, pressure: float, breaker_state: str) -> DegradeLevel:
        if self.mode == "off":
            return DegradeLevel.NORMAL
        if self.mode in ("0", "1", "2", "3"):
            return DegradeLevel(int(self.mode))
        level = DegradeLevel.NORMAL
        if pressure >= self.reference_at:
            level = DegradeLevel.REFERENCE
        elif pressure >= self.serial_at:
            level = DegradeLevel.SERIAL
        elif pressure >= self.no_reverify_at:
            level = DegradeLevel.NO_REVERIFY
        if breaker_state == CircuitBreaker.OPEN:
            # The pool is out of service: at least serial execution.
            level = max(level, DegradeLevel.SERIAL)
        return level
