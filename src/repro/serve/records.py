"""Per-request serving records and the ``run_table.csv``-shaped artifact.

Every request the server touches — served, shed, or failed — produces
exactly one :class:`RequestRecord`. The accumulated table is the
analyzable artifact of a load test: one CSV row per request with
latency, outcome, degradation level and retry count, plus a summary with
the p50/p95 latency, throughput and failure/shed rates that the load
generator and ``benchmarks/bench_serve.py`` assert against.

The column set mirrors the ``run_table.csv`` shape of the serving-
experiment artifact referenced by the ROADMAP (one row per request;
throughput/latency/failure-rate aggregates derived from it), adapted to
the GEMM-service domain: the "system size" columns are the GEMM shape,
and the degradation columns record how far down the ladder the request
was served.
"""

from __future__ import annotations

import csv
import os
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any

__all__ = [
    "RUN_TABLE_COLUMNS",
    "RequestRecord",
    "RunTable",
    "percentile",
]

#: CSV column order — one row per request.
RUN_TABLE_COLUMNS = [
    "request_id",
    "op",
    "m",
    "n",
    "k",
    "batch",
    "outcome",
    "reason",
    "degrade_level",
    "degraded",
    "cached",
    "batched",
    "retries",
    "queue_ms",
    "service_ms",
    "latency_ms",
    "t_submit",
]


def percentile(values: list[float], q: float) -> float:
    """The *q*-th percentile (0..100) by linear interpolation.

    Deterministic and stdlib-only so the summary does not depend on
    numpy being importable in an analysis context.
    """
    if not values:
        return 0.0
    data = sorted(values)
    if len(data) == 1:
        return data[0]
    pos = (len(data) - 1) * (q / 100.0)
    lo = int(pos)
    hi = min(lo + 1, len(data) - 1)
    frac = pos - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


@dataclass
class RequestRecord:
    """One request's lifecycle, in ``run_table.csv`` column order."""

    request_id: str
    op: str
    m: int = 0
    n: int = 0
    k: int = 0
    batch: int = 1
    #: ``OK`` | ``REJECTED`` | ``ERROR``
    outcome: str = "OK"
    #: Structured reason for non-OK outcomes (``overload``,
    #: ``queue_full``, ``deadline``, ``worker_lost``,
    #: ``abft_uncorrected``, ``bad_request`` ...).
    reason: str = ""
    degrade_level: int = 0
    degraded: bool = False
    cached: bool = False
    batched: bool = False
    retries: int = 0
    queue_ms: float = 0.0
    service_ms: float = 0.0
    latency_ms: float = 0.0
    t_submit: float = field(default_factory=time.time)

    def to_row(self) -> dict[str, Any]:
        row = asdict(self)
        return {col: row[col] for col in RUN_TABLE_COLUMNS}


class RunTable:
    """Thread-safe accumulator of :class:`RequestRecord` rows."""

    def __init__(self) -> None:
        self._rows: list[RequestRecord] = []
        self._lock = threading.Lock()
        self._t0 = time.monotonic()

    def add(self, record: RequestRecord) -> None:
        with self._lock:
            self._rows.append(record)

    def __len__(self) -> int:
        with self._lock:
            return len(self._rows)

    def rows(self) -> list[RequestRecord]:
        with self._lock:
            return list(self._rows)

    def write_csv(self, path: str | os.PathLike) -> int:
        """Write one row per request; returns the row count."""
        rows = self.rows()
        with open(path, "w", newline="", encoding="utf-8") as fh:
            writer = csv.DictWriter(fh, fieldnames=RUN_TABLE_COLUMNS)
            writer.writeheader()
            for record in rows:
                writer.writerow(record.to_row())
        return len(rows)

    def summary(self) -> dict[str, Any]:
        """Aggregates over the table: counts, rates, latency percentiles.

        ``shed_rate`` counts structured rejections (admission control
        doing its job); ``failure_rate`` counts errors — a shed request
        is *not* a failure, which is the whole point of load shedding.
        """
        rows = self.rows()
        elapsed = max(time.monotonic() - self._t0, 1e-9)
        served = [r for r in rows if r.outcome == "OK"]
        rejected = [r for r in rows if r.outcome == "REJECTED"]
        errored = [r for r in rows if r.outcome == "ERROR"]
        latencies = [r.latency_ms for r in served]
        n = len(rows)
        return {
            "request_count": n,
            "served": len(served),
            "rejected": len(rejected),
            "errored": len(errored),
            "throughput_rps": len(served) / elapsed,
            "avg_latency_ms": sum(latencies) / len(latencies) if latencies else 0.0,
            "p50_latency_ms": percentile(latencies, 50.0),
            "p95_latency_ms": percentile(latencies, 95.0),
            "failure_rate": len(errored) / n if n else 0.0,
            "shed_rate": len(rejected) / n if n else 0.0,
            "degraded_rate": (
                sum(1 for r in served if r.degraded) / len(served) if served else 0.0
            ),
            "cached": sum(1 for r in served if r.cached),
            "batched": sum(1 for r in served if r.batched),
            "retries": sum(r.retries for r in rows),
        }
