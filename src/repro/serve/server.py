"""GEMM-as-a-service: the fault-aware asyncio serving front end.

``GemmServer`` accepts GEMM/FFT/MRF jobs over a line-delimited JSON
protocol (one request object per line, one response object per line,
matched by ``id``; responses may arrive out of order), and executes them
on the repo's emulation stack with the full robustness kit engaged:

* **Admission control** (:mod:`repro.serve.admission`): token-bucket
  rate limiting plus queue-depth backpressure. Overload produces
  structured ``REJECTED`` responses (``overload`` / ``queue_full``)
  instead of hangs or unbounded queues.
* **Coalescing** (:mod:`repro.serve.batcher`): shape/dtype-compatible
  small GEMMs are stacked into one batched GEMM on the split-plan cache
  (:func:`repro.gemm.batched.batched_mxu_sgemm` and friends) —
  bit-identical per matrix to a lone request.
* **Content-addressed cache** (:mod:`repro.cache`): repeat payloads are
  served from the cache; at full fidelity the cached result is ABFT
  re-verified before it leaves the building.
* **Deadlines**: each request's remaining budget propagates into
  :func:`repro.parallel.parallel_map` timeouts, so a hung worker is
  killed and the pool respawned instead of the request hanging.
* **Circuit breaker + degradation ladder**
  (:mod:`repro.serve.degrade`): consecutive broken-pool/timeout events
  (observed through the health counters in
  :func:`repro.parallel.pool_info`) trip the breaker; under pressure the
  server sheds assurance level by level down to tagged FP32-reference
  results, and :class:`~repro.resilience.abft.AbftUncorrectedError`
  always fails the one request it hit, never the server.

Every request leaves one ``run_table.csv``-shaped
:class:`~repro.serve.records.RequestRecord` behind for analysis.

Request schema (all arrays as nested JSON lists; complex values as
``{"re": ..., "im": ...}``)::

    {"id": "r1", "op": "gemm", "a": [[...]], "b": [[...]],
     "deadline_ms": 500, "fault": {"kind": "stall", "ms": 2000}}

Ops: ``gemm`` (FP32 ``A @ B``), ``cgemm`` (FP32C), ``fft`` (1-D GEMM-FFT
of ``x``), ``mrf`` (dictionary-match correlation scores), ``ping``,
``stats``, ``shutdown`` (honoured only with ``allow_shutdown=True``).
``fault`` is honoured only when the server runs with
``fault_injection=True`` (the load-test configuration) and exercises the
resilience machinery: ``kill_worker`` SIGKILLs the executing pool
worker, ``stall`` sleeps past the deadline inside the worker,
``poison`` runs the GEMM on a transient-fault datapath behind the ABFT
guard.
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import tempfile
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .. import parallel
from ..cache import ResultCache, stable_digest
from ..gemm.batched import batched_mxu_cgemm, batched_mxu_sgemm
from ..gemm.tiled import TiledGEMM
from ..mxu.m3xu import M3XU
from ..mxu.modes import MXUMode
from ..mxu.split_cache import DEFAULT_SPLIT_CACHE
from ..resilience.abft import AbftUncorrectedError, guarded_gemm, resolve_abft
from ..resilience.failures import TaskFailure
from ..types.formats import FP32
from ..types.quantize import quantize, quantize_complex
from .admission import AdmissionController
from .batcher import Batcher, BatchKey, PendingJob
from .degrade import CircuitBreaker, DegradeLevel, DegradePolicy
from .records import RequestRecord, RunTable

__all__ = ["ServeConfig", "GemmServer", "serve_forever"]

#: Environment knobs (CLI flags and explicit config win over these).
PORT_ENV = "REPRO_SERVE_PORT"
HOST_ENV = "REPRO_SERVE_HOST"
MAX_QUEUE_ENV = "REPRO_SERVE_MAX_QUEUE"
DEADLINE_ENV = "REPRO_SERVE_DEADLINE_MS"
DEGRADE_ENV = "REPRO_SERVE_DEGRADE"
RATE_ENV = "REPRO_SERVE_RATE"

#: Upper bound on any injected stall, so even an in-process stall (pool
#: circuit open) keeps the executor thread's occupancy bounded.
MAX_STALL_MS = 30_000.0

#: Stream-reader line limit. Sized to fit a ``max_elements`` complex
#: operand pair in JSON with headroom; an over-limit line is a protocol
#: violation and closes the connection (it cannot be resynchronized).
STREAM_LIMIT = 128 * 1024 * 1024

_COMPUTE_OPS = ("gemm", "cgemm", "fft", "mrf")


def _env(name: str, kind: type, fallback: Any) -> Any:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return fallback
    try:
        return kind(raw)
    except ValueError:
        return fallback


@dataclass
class ServeConfig:
    """Everything one ``GemmServer`` needs, resolvable from the
    ``REPRO_SERVE_*`` environment via :meth:`from_env`."""

    host: str = "127.0.0.1"
    port: int = 0  # 0: ephemeral — read ``server.port`` after start()
    #: Admitted-but-unfinished request ceiling (queue-depth backpressure).
    max_queue: int = 64
    #: Default per-request deadline; a request may lower (never raise
    #: above ``max_deadline_ms``) it with its own ``deadline_ms``.
    deadline_ms: float = 10_000.0
    max_deadline_ms: float = 60_000.0
    #: Token-bucket admission rate in requests/second (0 disables).
    rate: float = 0.0
    burst: float | None = None
    #: Degradation policy mode: ``auto`` | ``off`` | ``"0"``-``"3"``.
    degrade: str = "auto"
    #: Coalescing window.
    batch_max: int = 8
    batch_wait_ms: float = 2.0
    #: Pool fan-out width for batched execution (None: ``REPRO_WORKERS``).
    workers: int | None = None
    #: Retries for pool-routed work (None: ``REPRO_RETRIES``).
    retries: int | None = 1
    #: ABFT guard for served results (None: ``REPRO_ABFT`` gate).
    abft: bool | None = None
    #: Circuit breaker: consecutive pool failures to trip, and cooldown
    #: seconds before a half-open probe.
    breaker_threshold: int = 3
    breaker_cooldown: float = 1.0
    #: Honour per-request ``fault`` directives (load tests only).
    fault_injection: bool = False
    #: Honour the ``shutdown`` op from clients.
    allow_shutdown: bool = False
    #: Result-cache entries kept in memory.
    cache_size: int = 512
    #: Reject operands above this element count (robustness: a huge
    #: payload must shed, not OOM the server).
    max_elements: int = 1 << 20

    @classmethod
    def from_env(cls, **overrides: Any) -> "ServeConfig":
        cfg = cls(
            host=_env(HOST_ENV, str, cls.host),
            port=_env(PORT_ENV, int, cls.port),
            max_queue=max(1, _env(MAX_QUEUE_ENV, int, cls.max_queue)),
            deadline_ms=_env(DEADLINE_ENV, float, cls.deadline_ms),
            rate=_env(RATE_ENV, float, cls.rate),
            degrade=_env(DEGRADE_ENV, str, cls.degrade),
        )
        for name, value in overrides.items():
            if value is not None:
                setattr(cfg, name, value)
        return cfg


# ----------------------------------------------------------------------
# Wire encoding
# ----------------------------------------------------------------------
def encode_array(x: np.ndarray) -> Any:
    """ndarray -> JSON-serializable nested lists (complex split re/im)."""
    if np.iscomplexobj(x):
        return {"re": x.real.tolist(), "im": x.imag.tolist()}
    return x.tolist()


def decode_array(obj: Any, max_elements: int) -> np.ndarray:
    """Inverse of :func:`encode_array`, with size/type validation."""
    if obj is None:
        raise ValueError("missing operand")
    try:
        if isinstance(obj, dict):
            if set(obj) != {"re", "im"}:
                raise ValueError("complex arrays must be {'re': ..., 'im': ...}")
            re = np.asarray(obj["re"], dtype=np.float64)
            im = np.asarray(obj["im"], dtype=np.float64)
            if re.shape != im.shape:
                raise ValueError("re/im shape mismatch")
            x: np.ndarray = re + 1j * im
        else:
            x = np.asarray(obj, dtype=np.float64)
    except TypeError as exc:
        raise ValueError(f"non-numeric operand: {exc}") from exc
    if x.size == 0:
        raise ValueError("empty operand")
    if x.size > max_elements:
        raise ValueError(f"operand of {x.size} elements exceeds the "
                         f"{max_elements}-element service limit")
    if not np.all(np.isfinite(np.abs(x))):
        raise ValueError("operands must be finite")
    return x


# ----------------------------------------------------------------------
# Worker-side execution (module-level: must pickle into pool workers)
# ----------------------------------------------------------------------
def _build_unit(fault: dict[str, Any] | None) -> M3XU | Any:
    if fault and fault.get("kind") == "poison":
        from ..mxu.faults import FaultSpec, FaultStage, FaultyM3XU

        spec = FaultSpec.random(
            np.random.default_rng(int(fault.get("seed", 0))),
            FaultStage.ACCUMULATOR,
        )
        return FaultyM3XU(spec)
    return M3XU()


def _apply_preexec_fault(fault: dict[str, Any] | None) -> None:
    if not fault:
        return
    kind = fault.get("kind")
    if kind == "stall":
        time.sleep(min(float(fault.get("ms", 1000.0)), MAX_STALL_MS) / 1e3)
    elif kind == "kill_worker":
        marker = pathlib.Path(fault["marker"])
        if not marker.exists():
            # First attempt: die like a segfaulting worker. The marker
            # file makes the retry attempt succeed, so the request
            # demonstrates recovery, not a permanent black hole.
            try:
                marker.write_text("1")
            except OSError:
                pass
            os._exit(23)


def _exec_job(payload: dict[str, Any]) -> np.ndarray:
    """Execute one job (possibly fault-injected) — runs in a pool worker
    for deadline-enforced requests, in-process for degraded ones."""
    fault = payload.get("fault")
    _apply_preexec_fault(fault)
    unit = _build_unit(fault)
    poisoned = bool(fault and fault.get("kind") == "poison")
    # A poisoned request always runs guarded: the ABFT guard correcting
    # (or refusing to return) the corrupted result is the contract.
    abft = True if poisoned else bool(payload.get("abft", False))
    op = payload["op"]
    if op == "gemm":
        # repro: allow[AS604] runs inside the pool worker; the deadline is
        # enforced by the outer parallel_map that shipped this job, and a
        # nested fan-out collapses to the serial in-worker path anyway.
        return batched_mxu_sgemm(payload["a"], payload["b"], mxu=unit, abft=abft)
    if op == "cgemm":
        # repro: allow[AS604] same contract as the gemm branch above: the
        # outer parallel_map deadline covers this nested (serial) call.
        return batched_mxu_cgemm(payload["a"], payload["b"], mxu=unit, abft=abft)
    if op == "fft":
        from ..apps.fft import gemm_fft

        def cgemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
            return TiledGEMM(unit, MXUMode.FP32C, abft=abft).run(a, b, 0.0)

        return gemm_fft(payload["x"], cgemm=cgemm)
    if op == "mrf":
        def cgemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
            return TiledGEMM(unit, MXUMode.FP32C, abft=abft).run(a, b, 0.0)

        corr = cgemm(np.conj(payload["a"]), payload["b"].T)
        return np.abs(corr)
    raise ValueError(f"unknown op {op!r}")


def _reference_result(payload: dict[str, Any]) -> np.ndarray:
    """The FP32 numpy reference — the degradation ladder's last rung."""
    op = payload["op"]
    if op == "gemm":
        a32 = payload["a"].astype(np.float32)
        b32 = payload["b"].astype(np.float32)
        return np.asarray(a32 @ b32, dtype=np.float64)
    if op == "cgemm":
        a64 = payload["a"].astype(np.complex64)
        b64 = payload["b"].astype(np.complex64)
        return np.asarray(a64 @ b64, dtype=np.complex128)
    if op == "fft":
        return np.asarray(np.fft.fft(payload["x"]), dtype=np.complex128)
    if op == "mrf":
        return np.abs(np.conj(payload["a"]) @ payload["b"].T)
    raise ValueError(f"unknown op {op!r}")


# ----------------------------------------------------------------------
# The server
# ----------------------------------------------------------------------
@dataclass
class _JobOutcome:
    """What a compute path hands back through a job's future."""

    value: np.ndarray
    cached: bool = False
    batched: bool = False
    retries: int = 0


@dataclass
class _Job:
    """Parsed, admitted request on its way through the pipeline."""

    request_id: str
    op: str
    payload: dict[str, Any]
    deadline: float  # absolute monotonic deadline
    record: RequestRecord
    level: DegradeLevel = DegradeLevel.NORMAL
    t_admit: float = field(default_factory=time.monotonic)


class GemmServer:
    """The asyncio GEMM service. ``await start()``; ``await stop()``."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        cfg = self.config
        self.admission = AdmissionController(
            rate=cfg.rate or None, burst=cfg.burst, max_queue=cfg.max_queue
        )
        self.breaker = CircuitBreaker(
            threshold=cfg.breaker_threshold, cooldown=cfg.breaker_cooldown
        )
        self.policy = DegradePolicy(mode=cfg.degrade)
        self.cache = ResultCache(maxsize=cfg.cache_size)
        self.run_table = RunTable()
        self.batcher = Batcher(
            self._flush_batch,
            max_batch=cfg.batch_max,
            max_wait=cfg.batch_wait_ms / 1e3,
        )
        self.degrade_counts = {int(level): 0 for level in DegradeLevel}
        self._server: asyncio.base_events.Server | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-exec"
        )
        self._closing = False
        self._stopped = asyncio.Event()
        self._request_seq = 0
        self._inflight: set[asyncio.Task[None]] = set()
        self._connections: set[asyncio.StreamWriter] = set()
        self._fault_dir: tempfile.TemporaryDirectory[str] | None = None
        self._stop_task: asyncio.Task[None] | None = None
        self._abft_on = resolve_abft(cfg.abft)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            return self.config.port
        return int(self._server.sockets[0].getsockname()[1])

    async def start(self) -> None:
        if self.config.fault_injection:
            self._fault_dir = tempfile.TemporaryDirectory(prefix="repro-serve-fault-")
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=STREAM_LIMIT,
        )

    async def serve_forever(self) -> None:
        """Run until :meth:`stop` (e.g. via the ``shutdown`` op)."""
        assert self._server is not None, "call start() first"
        await self._stopped.wait()

    async def stop(self, drain: float = 10.0) -> None:
        """Graceful shutdown: stop admitting, drain, release resources.

        Bounded: in-flight work gets *drain* seconds, then the server
        closes regardless — a shutdown can be late, never hung.
        """
        if self._closing:
            self._stopped.set()
            return
        self._closing = True
        try:
            await asyncio.wait_for(self._drain(), timeout=drain)
        except asyncio.TimeoutError:
            for task in list(self._inflight):
                task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._connections):
            try:
                writer.close()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        await asyncio.sleep(0)  # let connection handlers observe EOF
        self._executor.shutdown(wait=False, cancel_futures=True)
        if self._fault_dir is not None:
            self._fault_dir.cleanup()
            self._fault_dir = None
        self._stopped.set()

    async def _drain(self) -> None:
        await self.batcher.drain()
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)

    # ------------------------------------------------------------------
    # Connection + protocol plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        self._connections.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.IncompleteReadError):
                    break
                except ValueError:
                    # Line beyond the stream limit: the framing cannot be
                    # recovered, so the connection is dropped (the client
                    # sees EOF, never a hang).
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.get_running_loop().create_task(
                    self._handle_line(line, writer, write_lock)
                )
                self._inflight.add(task)
                task.add_done_callback(self._inflight.discard)
        except asyncio.CancelledError:
            pass  # loop teardown mid-read: close the socket quietly
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _handle_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        response = await self._process_line(line)
        payload = (json.dumps(response, separators=(",", ":")) + "\n").encode()
        async with write_lock:
            try:
                writer.write(payload)
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass  # client went away; the record is already written

    async def _process_line(self, line: bytes) -> dict[str, Any]:
        t0 = time.monotonic()
        self._request_seq += 1
        fallback_id = f"srv-{self._request_seq}"
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except (json.JSONDecodeError, UnicodeDecodeError, ValueError) as exc:
            return self._finish_error(
                RequestRecord(request_id=fallback_id, op="?"),
                t0, "bad_request", f"unparseable request: {exc}",
            )
        request_id = str(request.get("id", fallback_id))
        op = str(request.get("op", ""))

        if op == "ping":
            return {"id": request_id, "status": "OK", "result": "pong"}
        if op == "stats":
            return {"id": request_id, "status": "OK", "result": self.stats()}
        if op == "shutdown":
            if not self.config.allow_shutdown:
                return {"id": request_id, "status": "ERROR",
                        "reason": "shutdown_not_allowed"}
            # Keep a strong reference: asyncio holds running tasks only
            # weakly, and the drain must outlive this handler returning.
            self._stop_task = asyncio.get_running_loop().create_task(
                self.stop()
            )
            return {"id": request_id, "status": "OK", "result": "stopping"}

        record = RequestRecord(request_id=request_id, op=op)
        if op not in _COMPUTE_OPS:
            return self._finish_error(record, t0, "bad_request",
                                      f"unknown op {op!r}")
        if self._closing:
            return self._finish_rejected(record, t0, "shutting_down")

        # ---- admission: shed at the door, before decoding operands ----
        reason = self.admission.admit()
        if reason is not None:
            return self._finish_rejected(record, t0, reason)
        try:
            return await self._admitted(request, record, t0)
        finally:
            self.admission.release()

    # ------------------------------------------------------------------
    # Admitted-request pipeline
    # ------------------------------------------------------------------
    async def _admitted(
        self, request: dict[str, Any], record: RequestRecord, t0: float
    ) -> dict[str, Any]:
        try:
            payload = self._parse_payload(request, record)
        except ValueError as exc:
            return self._finish_error(record, t0, "bad_request", str(exc))

        deadline_ms = float(request.get("deadline_ms") or self.config.deadline_ms)
        deadline_ms = min(max(deadline_ms, 1.0), self.config.max_deadline_ms)
        deadline = t0 + deadline_ms / 1e3

        level = self.policy.decide(
            self.admission.pressure(exclude_self=True), self.breaker.state
        )
        self.degrade_counts[int(level)] += 1
        job = _Job(
            request_id=record.request_id,
            op=record.op,
            payload=payload,
            deadline=deadline,
            record=record,
            level=level,
        )
        record.degrade_level = int(level)
        record.degraded = level >= DegradeLevel.REFERENCE

        future: asyncio.Future[Any] = asyncio.get_running_loop().create_future()
        if self._batchable(job):
            key = BatchKey(
                op=job.op,
                m=payload["a"].shape[-2],
                k=payload["a"].shape[-1],
                n=payload["b"].shape[-1],
                level=int(level),
                abft=self._abft_on,
            )
            self.batcher.submit(PendingJob(key, payload, future, deadline))
        else:
            key = BatchKey(job.op, 0, 0, 0, int(level), self._abft_on)
            task = asyncio.get_running_loop().create_task(
                self._flush_batch(key, [PendingJob(key, payload, future, deadline)])
            )
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)

        try:
            result = await asyncio.wait_for(
                future, timeout=max(deadline - time.monotonic(), 0.0) + 5.0
            )
        except asyncio.TimeoutError:
            return self._finish_error(record, t0, "deadline",
                                      "request exceeded its deadline")
        except AbftUncorrectedError:
            return self._finish_error(
                record, t0, "abft_uncorrected",
                "ABFT guard could not repair the result; request failed "
                "rather than returning corrupt data",
            )
        except _JobFailed as exc:
            record.retries = exc.retries
            return self._finish_error(record, t0, exc.reason, exc.detail)
        except Exception as exc:  # repro: allow[RH403] request-level firewall
            return self._finish_error(record, t0, "internal",
                                      f"{type(exc).__name__}: {exc}")
        if isinstance(result, _JobOutcome):
            record.cached = result.cached
            record.batched = result.batched
            record.retries = result.retries
            result = result.value
        return self._finish_ok(record, t0, result)

    def _parse_payload(
        self, request: dict[str, Any], record: RequestRecord
    ) -> dict[str, Any]:
        cfg = self.config
        op = record.op
        fault = request.get("fault") if cfg.fault_injection else None
        if fault is not None:
            fault = dict(fault)
            if fault.get("kind") not in ("stall", "kill_worker", "poison"):
                raise ValueError(f"unknown fault kind {fault.get('kind')!r}")
            if fault.get("kind") == "kill_worker":
                assert self._fault_dir is not None
                fault["marker"] = os.path.join(
                    self._fault_dir.name, f"kill-{record.request_id}-{uuid.uuid4().hex}"
                )
        payload: dict[str, Any] = {"op": op, "fault": fault, "abft": self._abft_on}
        if op in ("gemm", "cgemm"):
            a = decode_array(request.get("a"), cfg.max_elements)
            b = decode_array(request.get("b"), cfg.max_elements)
            if a.ndim != 2 or b.ndim != 2:
                raise ValueError("gemm operands must be 2-D matrices")
            if a.shape[1] != b.shape[0]:
                raise ValueError(f"K mismatch: A{a.shape} @ B{b.shape}")
            if op == "gemm":
                if np.iscomplexobj(a) or np.iscomplexobj(b):
                    raise ValueError("op 'gemm' takes real operands; use 'cgemm'")
                a, b = quantize(a.real, FP32), quantize(b.real, FP32)
            else:
                a = quantize_complex(a.astype(np.complex128), FP32)
                b = quantize_complex(b.astype(np.complex128), FP32)
            payload["a"], payload["b"] = a, b
            record.m, record.k = a.shape
            record.n = b.shape[1]
        elif op == "fft":
            x = decode_array(request.get("x"), cfg.max_elements)
            x = np.asarray(x, dtype=np.complex128)
            n = x.shape[-1]
            if n < 2 or (n & (n - 1)) != 0:
                raise ValueError("fft length must be a power of two >= 2")
            payload["x"] = x
            record.m, record.n, record.k = x.size // n, n, n
        elif op == "mrf":
            a = decode_array(request.get("a"), cfg.max_elements)
            b = decode_array(request.get("b"), cfg.max_elements)
            if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
                raise ValueError(
                    "mrf expects dictionary (A, T) and voxels (V, T) operands"
                )
            payload["a"] = np.asarray(a, dtype=np.complex128)
            payload["b"] = np.asarray(b, dtype=np.complex128)
            record.m, record.k, record.n = a.shape[0], a.shape[1], b.shape[0]
        return payload

    def _batchable(self, job: _Job) -> bool:
        return (
            job.op in ("gemm", "cgemm")
            and job.payload.get("fault") is None
            and job.level <= DegradeLevel.NO_REVERIFY
            and self.config.batch_max > 1
        )

    # ------------------------------------------------------------------
    # Execution (batch flush -> executor thread -> pool)
    # ------------------------------------------------------------------
    async def _flush_batch(self, key: BatchKey, jobs: list[PendingJob]) -> None:
        loop = asyncio.get_running_loop()
        try:
            results = await loop.run_in_executor(
                self._executor, self._compute_batch, key, jobs
            )
        except Exception as exc:  # repro: allow[RH403] futures carry failures
            for job in jobs:
                if not job.future.done():
                    job.future.set_exception(exc)
            return
        for job, result in zip(jobs, results):
            if job.future.done():
                continue
            if isinstance(result, BaseException):
                job.future.set_exception(result)
            else:
                job.future.set_result(result)

    def _compute_batch(
        self, key: BatchKey, jobs: list[PendingJob]
    ) -> list[Any]:
        """Runs on the single executor thread: cache, batch, dispatch.

        Returns one :class:`_JobOutcome` or exception per job, in order.
        """
        level = DegradeLevel(key.level)
        results: list[Any] = [None] * len(jobs)

        # -- content-addressed cache: repeat payloads never recompute --
        misses: list[int] = []
        for i, job in enumerate(jobs):
            cached = self._cache_get(job, level)
            if cached is not None:
                results[i] = _JobOutcome(cached, cached=True)
            else:
                misses.append(i)
        if not misses:
            return results

        if level >= DegradeLevel.REFERENCE:
            for i in misses:
                results[i] = self._safe(_reference_result, jobs[i].payload)
            return results

        batchable = (
            key.op in ("gemm", "cgemm")
            and all(jobs[i].payload.get("fault") is None for i in misses)
        )
        if batchable:
            self._run_batched(key, jobs, misses, results, level)
        else:
            for i in misses:
                results[i] = self._run_single(jobs[i], level)

        for i in misses:
            if isinstance(results[i], _JobOutcome) and not results[i].cached:
                self._cache_put(jobs[i], results[i].value)
        return results

    def _run_batched(
        self,
        key: BatchKey,
        jobs: list[PendingJob],
        misses: list[int],
        results: list[Any],
        level: DegradeLevel,
    ) -> None:
        """Coalesced execution on the batched entry points.

        The per-request deadline propagates as the pool task timeout —
        the batch inherits the *tightest* member deadline, so a
        coalesced request can never be held past its budget by its
        batchmates.
        """
        stack_a = np.stack([jobs[i].payload["a"] for i in misses])
        stack_b = np.stack([jobs[i].payload["b"] for i in misses])
        entry = batched_mxu_sgemm if key.op == "gemm" else batched_mxu_cgemm
        remaining = min(jobs[i].deadline for i in misses) - time.monotonic()
        if remaining <= 0.0:
            for i in misses:
                results[i] = _JobFailed("deadline", "expired while queued")
            return
        use_pool = level < DegradeLevel.SERIAL and self.breaker.allow_pool()
        before = parallel.pool_info()
        try:
            if use_pool:
                out = entry(
                    stack_a, stack_b,
                    workers=self.config.workers,
                    abft=self._abft_on,
                    timeout=remaining,
                    retries=self.config.retries,
                )
            else:
                out = entry(stack_a, stack_b, workers=1, abft=self._abft_on)
        except AbftUncorrectedError as exc:
            for i in misses:
                results[i] = exc
            return
        except Exception as exc:  # repro: allow[RH403] mapped to per-request failures
            if use_pool:
                self._observe_pool(before, ok=False)
            failure = self._classify(exc)
            for i in misses:
                results[i] = failure
            return
        retries = 0
        if use_pool:
            retries = self._observe_pool(before, ok=True)
        coalesced = len(misses) > 1
        for slot, i in enumerate(misses):
            results[i] = _JobOutcome(out[slot], batched=coalesced, retries=retries)

    def _run_single(self, job: PendingJob, level: DegradeLevel) -> Any:
        """One non-coalescable job (fault-injected, fft, mrf)."""
        payload = dict(job.payload)
        fault = payload.get("fault")
        remaining = job.deadline - time.monotonic()
        if remaining <= 0.0:
            return _JobFailed("deadline", "expired while queued")
        if payload["op"] in ("gemm", "cgemm"):
            payload = dict(payload)
            payload["a"] = payload["a"][None, ...]
            payload["b"] = payload["b"][None, ...]
            unbatch = True
        else:
            unbatch = False

        use_pool = level < DegradeLevel.SERIAL and self.breaker.allow_pool()
        if not use_pool and fault is not None and fault.get("kind") == "kill_worker":
            # Never run a worker-kill in-process: that would kill the
            # server. With the pool out of service the request sheds.
            return _JobFailed("circuit_open", "pool unavailable for fault job")
        if fault is not None and fault.get("kind") == "stall" and not use_pool:
            # In-process stalls stay bounded by the deadline.
            fault = dict(fault)
            fault["ms"] = min(float(fault.get("ms", 0.0)), remaining * 1e3)
            payload["fault"] = fault

        before = parallel.pool_info()
        retries = 0
        try:
            if use_pool:
                got = parallel.parallel_map(
                    _exec_job,
                    [payload],
                    workers=1,
                    timeout=remaining,
                    retries=self.config.retries,
                    return_failures=True,
                )[0]
                if isinstance(got, TaskFailure):
                    self._observe_pool(before, ok=False)
                    failed = self._classify_failure(got)
                    failed.retries = max(got.attempts - 1, 0)
                    return failed
                retries = self._observe_pool(before, ok=True)
                out = got
            else:
                out = _exec_job(payload)
                if time.monotonic() > job.deadline:
                    return _JobFailed("deadline", "deadline passed during "
                                                  "in-process execution")
        except AbftUncorrectedError as exc:
            return exc
        except Exception as exc:  # repro: allow[RH403] per-request firewall
            if use_pool:
                self._observe_pool(before, ok=False)
            return self._classify(exc)
        value = out[0] if unbatch else out
        return _JobOutcome(np.asarray(value), retries=retries)

    # ------------------------------------------------------------------
    # Failure classification + breaker feeding
    # ------------------------------------------------------------------
    def _observe_pool(self, before: dict[str, Any], ok: bool) -> int:
        """Feed the circuit breaker from the pool health counters.

        Returns the retry-count delta so the caller can attribute
        recovered attempts to the request record.
        """
        after = parallel.pool_info()
        if ok:
            self.breaker.record_success()
        else:
            events = (after["broken_events"] - before["broken_events"]) + (
                after["timeout_events"] - before["timeout_events"]
            )
            self.breaker.record_events(max(events, 1))
        return max(int(after["task_retries"] - before["task_retries"]), 0)

    def _classify_failure(self, failure: TaskFailure) -> Any:
        if failure.error_type == "AbftUncorrectedError":
            return _JobFailed("abft_uncorrected", failure.message)
        if failure.cause == "timeout":
            return _JobFailed("deadline", str(failure))
        if failure.cause == "broken-pool":
            return _JobFailed("worker_lost", str(failure))
        return _JobFailed("execution", str(failure))

    def _classify(self, exc: BaseException) -> "_JobFailed":
        from concurrent.futures.process import BrokenProcessPool

        from ..resilience.failures import ParallelTaskError

        if isinstance(exc, ParallelTaskError) and exc.failures:
            classified = self._classify_failure(exc.failures[0])
            if isinstance(classified, _JobFailed):
                return classified
        if isinstance(exc, BrokenProcessPool):
            return _JobFailed("worker_lost", str(exc))
        return _JobFailed("execution", f"{type(exc).__name__}: {exc}")

    def _safe(self, fn: Any, payload: dict[str, Any]) -> Any:
        try:
            return _JobOutcome(np.asarray(fn(payload)))
        except Exception as exc:  # repro: allow[RH403] per-request firewall
            return _JobFailed("execution", f"{type(exc).__name__}: {exc}")

    # ------------------------------------------------------------------
    # Cache
    # ------------------------------------------------------------------
    def _cache_key(self, job: PendingJob) -> str | None:
        payload = job.payload
        if payload.get("fault") is not None:
            return None
        op = payload["op"]
        if op in ("gemm", "cgemm"):
            return stable_digest("serve", op, self._abft_on,
                                 payload["a"], payload["b"])
        if op == "fft":
            return stable_digest("serve", op, self._abft_on, payload["x"])
        if op == "mrf":
            return stable_digest("serve", op, self._abft_on,
                                 payload["a"], payload["b"])
        return None

    def _cache_get(self, job: PendingJob, level: DegradeLevel) -> np.ndarray | None:
        if level >= DegradeLevel.REFERENCE:
            return None  # reference results are not full-fidelity: no cache
        key = self._cache_key(job)
        if key is None:
            return None
        hit = self.cache.get(key)
        if hit is None:
            return None
        if (
            level == DegradeLevel.NORMAL
            and self._abft_on
            and job.payload["op"] in ("gemm", "cgemm")
        ):
            # Full fidelity: re-verify the cached bytes before serving.
            # Under pressure (level >= NO_REVERIFY) this step is shed.
            try:
                hit = self._reverify(job.payload, hit)
            except AbftUncorrectedError:
                return None  # drop the poisoned entry; recompute fresh
        return hit

    def _reverify(self, payload: dict[str, Any], out: np.ndarray) -> np.ndarray:
        mode = MXUMode.FP32 if payload["op"] == "gemm" else MXUMode.FP32C
        a, b = payload["a"], payload["b"]

        def compute(aa: np.ndarray, bb: np.ndarray, cc: np.ndarray) -> np.ndarray:
            return TiledGEMM(M3XU(), mode).run(aa, bb, 0.0)

        zero = np.zeros((a.shape[0], b.shape[1]), dtype=out.dtype)
        verified, _report = guarded_gemm(
            compute, a, b, zero, roundoff=2.0**-23, out=out
        )
        return verified

    def _cache_put(self, job: PendingJob, result: Any) -> None:
        if not isinstance(result, np.ndarray):
            return
        key = self._cache_key(job)
        if key is not None:
            self.cache.put(key, result)

    # ------------------------------------------------------------------
    # Response finalization
    # ------------------------------------------------------------------
    def _finish_ok(
        self, record: RequestRecord, t0: float, result: Any
    ) -> dict[str, Any]:
        record.outcome = "OK"
        record.latency_ms = (time.monotonic() - t0) * 1e3
        record.service_ms = record.latency_ms
        self.run_table.add(record)
        return {
            "id": record.request_id,
            "status": "OK",
            "result": encode_array(np.asarray(result)),
            "degraded": record.degraded,
            "degrade_level": record.degrade_level,
            "cached": record.cached,
            "batched": record.batched,
            "latency_ms": record.latency_ms,
        }

    def _finish_rejected(
        self, record: RequestRecord, t0: float, reason: str
    ) -> dict[str, Any]:
        record.outcome = "REJECTED"
        record.reason = reason
        record.latency_ms = (time.monotonic() - t0) * 1e3
        self.run_table.add(record)
        return {
            "id": record.request_id,
            "status": "REJECTED",
            "reason": reason,
            "latency_ms": record.latency_ms,
        }

    def _finish_error(
        self, record: RequestRecord, t0: float, reason: str, detail: str
    ) -> dict[str, Any]:
        record.outcome = "ERROR"
        record.reason = reason
        record.latency_ms = (time.monotonic() - t0) * 1e3
        self.run_table.add(record)
        return {
            "id": record.request_id,
            "status": "ERROR",
            "reason": reason,
            "detail": detail,
            "degrade_level": record.degrade_level,
            "latency_ms": record.latency_ms,
        }

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        return {
            "admission": self.admission.info(),
            "breaker": self.breaker.info(),
            "pool": parallel.pool_info(),
            "cache": self.cache.info(),
            "split_cache": DEFAULT_SPLIT_CACHE.info(),
            "batcher": self.batcher.info(),
            "degrade_counts": {str(k): v for k, v in self.degrade_counts.items()},
            "summary": self.run_table.summary(),
            "closing": self._closing,
        }


class _JobFailed(Exception):
    """Internal: a structured per-request failure (reason + detail)."""

    def __init__(self, reason: str, detail: str = "") -> None:
        super().__init__(detail or reason)
        self.reason = reason
        self.detail = detail
        self.retries = 0


async def serve_forever(config: ServeConfig | None = None) -> None:
    """Start a server and run until shut down (the CLI entry point)."""
    server = GemmServer(config)
    await server.start()
    try:
        await server.serve_forever()
    finally:
        await server.stop()
