"""Request coalescing: compatible small GEMMs become one batched GEMM.

The serving workload is dominated by many small, identically shaped
GEMMs (FFT radix stages, EPG recursions, fingerprint matches). Executing
them one pool round-trip each wastes the batch axis the batched entry
points (:mod:`repro.gemm.batched`) were built for: one
:class:`~repro.gemm.plan.GemmPlan` over the whole stack splits each
operand once and fans the batch across workers.

The batcher groups pending jobs by :class:`BatchKey` — op, GEMM shape,
dtype kind and execution class (degrade level, ABFT flag) — and flushes
a group when it reaches ``max_batch`` jobs or its oldest job has waited
``max_wait`` seconds, whichever comes first. Batching is a pure
scheduling transform: the batched entry points are bit-identical per
matrix to the single-GEMM driver, so a coalesced request returns exactly
the bytes it would have alone (asserted in ``tests/serve/``).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, NamedTuple

__all__ = ["BatchKey", "PendingJob", "Batcher"]


class BatchKey(NamedTuple):
    """Compatibility class: jobs sharing a key may share a batched GEMM."""

    op: str
    m: int
    k: int
    n: int
    #: Execution class — degrade level and ABFT flag must match so every
    #: job in the batch gets the assurance its response claims.
    level: int
    abft: bool


@dataclass
class PendingJob:
    """One admitted request waiting for execution."""

    key: BatchKey
    payload: dict[str, Any]
    future: "asyncio.Future[Any]"
    deadline: float  # absolute time.monotonic() deadline
    enqueued: float = field(default_factory=time.monotonic)


class Batcher:
    """Shape/dtype-compatible coalescing with a bounded wait window.

    ``flush_cb(key, jobs)`` is awaited for every flushed group; it must
    resolve each job's future. The batcher owns only grouping and
    timing — execution, degradation and failure semantics live in the
    server.
    """

    def __init__(
        self,
        flush_cb: Callable[[BatchKey, list[PendingJob]], Awaitable[None]],
        max_batch: int = 8,
        max_wait: float = 0.002,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self._flush_cb = flush_cb
        self.max_batch = int(max_batch)
        self.max_wait = max(0.0, float(max_wait))
        self._buckets: dict[BatchKey, list[PendingJob]] = {}
        self._timers: dict[BatchKey, asyncio.TimerHandle] = {}
        self._tasks: set[asyncio.Task[None]] = set()
        self.flushes = 0
        self.coalesced = 0

    # ------------------------------------------------------------------
    def submit(self, job: PendingJob) -> None:
        """Enqueue one job; flushes its group when full, else arms the
        wait-window timer on the group's first job."""
        bucket = self._buckets.setdefault(job.key, [])
        bucket.append(job)
        if len(bucket) >= self.max_batch:
            self._flush(job.key)
        elif len(bucket) == 1:
            if self.max_wait <= 0.0:
                self._flush(job.key)
            else:
                loop = asyncio.get_running_loop()
                self._timers[job.key] = loop.call_later(
                    self.max_wait, self._flush, job.key
                )

    def _flush(self, key: BatchKey) -> None:
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        jobs = self._buckets.pop(key, [])
        if not jobs:
            return
        self.flushes += 1
        if len(jobs) > 1:
            self.coalesced += len(jobs)
        task = asyncio.get_running_loop().create_task(self._run_flush(key, jobs))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run_flush(self, key: BatchKey, jobs: list[PendingJob]) -> None:
        try:
            await self._flush_cb(key, jobs)
        except Exception as exc:  # repro: allow[RH403] futures carry the failure
            for job in jobs:
                if not job.future.done():
                    job.future.set_exception(exc)

    # ------------------------------------------------------------------
    def pending(self) -> int:
        return sum(len(b) for b in self._buckets.values())

    async def drain(self) -> None:
        """Flush everything and wait for in-flight flush tasks."""
        for key in list(self._buckets):
            self._flush(key)
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    def info(self) -> dict[str, Any]:
        return {
            "pending": self.pending(),
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait * 1e3,
            "flushes": self.flushes,
            "coalesced": self.coalesced,
        }
