"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``report [names...] [--workers N] [--no-cache] [--resume] ...``
    Regenerate paper tables/figures (default: all) and print the
    paper-vs-measured report. Results are served from the content-
    addressed cache when available; ``--no-cache`` (or ``REPRO_CACHE=0``)
    forces a bit-identical cold recomputation. ``--checkpoint-dir``
    (or ``REPRO_CHECKPOINT_DIR``) journals every completed experiment;
    ``--resume`` replays a prior journal after an interrupted run.
    ``--retries`` / ``--task-timeout`` harden individual experiments.
``campaign [--trials N] [--mode fp32|fp32c] ...``
    Run the randomized datapath fault-injection campaign through the
    ABFT-guarded GEMM and print the outcome table. Exits nonzero if any
    injected fault caused silent data corruption that escaped the guard.
``gemm --m --n --k [--complex] [--kernel ...]``
    Model one GEMM on every (or one) Table IV kernel.
``synthesis``
    Print the Table III synthesis model.
``accuracy``
    Run the Section V-B exactness study.
``design-space``
    Tabulate the Section IV-C higher-bitwidth design points.
``peaks [--gpu a100|h100|mi100]``
    Print the device peak-throughput table (Table I).
``lint [paths...] [--fix] [--json] [--list-rules] [--graph OUT] [--sarif OUT]``
    Run the repo's static-analysis rule packs (precision-safety,
    determinism, fork-safety, resilience hygiene, exactness-flow,
    async-safety) over the given paths (default: ``src``). ``--graph``
    dumps the interprocedural call graph as JSON; ``--sarif`` writes
    SARIF 2.1.0 for CI annotations. Exits 0 when clean (warnings
    allowed), 1 on any error-severity finding, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="M3XU reproduction: models, experiments, reports.",
    )
    sub = p.add_subparsers(dest="command", required=True)

    rep = sub.add_parser("report", help="regenerate paper tables/figures")
    rep.add_argument("names", nargs="*", help="experiment names (default: all)")
    rep.add_argument("--workers", type=int, default=None,
                     help="worker processes (default: REPRO_WORKERS or serial)")
    rep.add_argument("--no-cache", action="store_true", dest="no_cache",
                     help="bypass the result cache (bit-identical, just slower)")
    rep.add_argument("--checkpoint-dir", default=None, dest="checkpoint_dir",
                     help="journal completed experiments here "
                          "(default: REPRO_CHECKPOINT_DIR)")
    rep.add_argument("--resume", action="store_true",
                     help="replay the checkpoint journal before computing")
    rep.add_argument("--retries", type=int, default=None,
                     help="retries per failed experiment (default: REPRO_RETRIES)")
    rep.add_argument("--task-timeout", type=float, default=None, dest="task_timeout",
                     help="per-experiment timeout in seconds "
                          "(default: REPRO_TASK_TIMEOUT)")

    gemm = sub.add_parser("gemm", help="model one GEMM problem")
    gemm.add_argument("--m", type=int, required=True)
    gemm.add_argument("--n", type=int, required=True)
    gemm.add_argument("--k", type=int, required=True)
    gemm.add_argument("--complex", action="store_true", dest="is_complex")
    gemm.add_argument("--kernel", default=None, help="single kernel name")
    gemm.add_argument("--gpu", default="a100_emulation",
                      choices=["a100", "a100_emulation", "h100", "mi100"])

    sub.add_parser("synthesis", help="print the Table III model")
    acc = sub.add_parser("accuracy", help="run the Section V-B study")
    acc.add_argument("--no-cache", action="store_true", dest="no_cache",
                     help="bypass the result cache")
    sub.add_parser("design-space", help="Section IV-C design points")

    peaks = sub.add_parser("peaks", help="device peak throughput (Table I)")
    peaks.add_argument("--gpu", default="a100",
                       choices=["a100", "a100_emulation", "h100", "mi100"])

    camp = sub.add_parser("campaign",
                          help="randomized fault-injection campaign vs ABFT")
    camp.add_argument("--trials", type=int, default=200,
                      help="injected faults (default: 200)")
    camp.add_argument("--seed", type=int, default=2024)
    camp.add_argument("--mode", default="fp32", choices=["fp32", "fp32c"])
    camp.add_argument("--m", type=int, default=24)
    camp.add_argument("--n", type=int, default=20)
    camp.add_argument("--k", type=int, default=24)
    camp.add_argument("--tile", type=int, default=8,
                      help="ABFT checksum tile edge")
    camp.add_argument("--engine", default="m3xu", choices=["m3xu", "bitlevel"],
                      help="'bitlevel' runs the true split/multiply/shift/"
                           "accumulate datapath (REPRO_BITLEVEL selects "
                           "vector or scalar) and adds product-stage faults")

    srv = sub.add_parser("serve",
                         help="run the GEMM-as-a-service front end "
                              "(line-delimited JSON over TCP)")
    srv.add_argument("--host", default=None,
                     help="bind address (default: REPRO_SERVE_HOST or "
                          "127.0.0.1)")
    srv.add_argument("--port", type=int, default=None,
                     help="TCP port, 0 for ephemeral (default: "
                          "REPRO_SERVE_PORT or 8135)")
    srv.add_argument("--max-queue", type=int, default=None, dest="max_queue",
                     help="admitted-but-unfinished request ceiling "
                          "(default: REPRO_SERVE_MAX_QUEUE or 64)")
    srv.add_argument("--rate", type=float, default=None,
                     help="token-bucket admission rate in req/s "
                          "(default: REPRO_SERVE_RATE; 0 disables)")
    srv.add_argument("--deadline-ms", type=float, default=None,
                     dest="deadline_ms",
                     help="default per-request deadline "
                          "(default: REPRO_SERVE_DEADLINE_MS or 10000)")
    srv.add_argument("--degrade", default=None,
                     choices=["auto", "off", "0", "1", "2", "3"],
                     help="degradation policy (default: REPRO_SERVE_DEGRADE "
                          "or auto)")
    srv.add_argument("--workers", type=int, default=None,
                     help="pool fan-out width (default: REPRO_WORKERS)")
    srv.add_argument("--abft", action="store_true", default=None,
                     help="force the ABFT guard on served results "
                          "(default: REPRO_ABFT gate)")
    srv.add_argument("--fault-injection", action="store_true", default=None,
                     dest="fault_injection",
                     help="honour per-request fault directives (load "
                          "tests only)")
    srv.add_argument("--allow-shutdown", action="store_true", default=None,
                     dest="allow_shutdown",
                     help="honour the remote 'shutdown' op")
    srv.add_argument("--run-table", default=None, dest="run_table",
                     help="write the per-request run_table.csv here on exit")

    lg = sub.add_parser("loadgen",
                        help="drive a server with generated load + "
                             "injected faults; checks every OK result "
                             "against a float64 reference (SDC detector)")
    lg.add_argument("--host", default="127.0.0.1")
    lg.add_argument("--port", type=int, default=0,
                    help="target server port; 0 self-hosts a throwaway "
                         "in-process server with fault injection enabled")
    lg.add_argument("--duration", type=float, default=10.0,
                    help="seconds per load level")
    lg.add_argument("--mode", default="closed", choices=["closed", "open"],
                    help="closed: N workers, one request in flight each; "
                         "open: dispatch at --rate regardless of "
                         "completions")
    lg.add_argument("--concurrency", type=int, default=4)
    lg.add_argument("--rate", type=float, default=50.0,
                    help="open-loop dispatch rate (req/s)")
    lg.add_argument("--size", type=int, default=16,
                    help="square-GEMM dimension of generated requests")
    lg.add_argument("--deadline-ms", type=float, default=2000.0,
                    dest="deadline_ms")
    lg.add_argument("--fault-rate", type=float, default=0.0,
                    dest="fault_rate",
                    help="fraction of requests carrying an injected fault "
                         "(worker kill / stall / poisoned datapath)")
    lg.add_argument("--seed", type=int, default=0)
    lg.add_argument("--json", action="store_true", dest="as_json",
                    help="machine-readable report on stdout")

    lint = sub.add_parser("lint",
                          help="run the precision/determinism/fork-safety "
                               "static analysis")
    lint.add_argument("paths", nargs="*", default=None,
                      help="files or directories (default: src)")
    lint.add_argument("--fix", action="store_true",
                      help="apply safe autofixes, then re-lint")
    lint.add_argument("--json", action="store_true", dest="as_json",
                      help="machine-readable findings on stdout")
    lint.add_argument("--list-rules", action="store_true", dest="list_rules",
                      help="print every registered rule and exit")
    lint.add_argument("--graph", metavar="OUT.json", default=None,
                      dest="graph_out",
                      help="dump the project call graph (symbol table + "
                           "typed edges) to a JSON file")
    lint.add_argument("--sarif", metavar="OUT.sarif", default=None,
                      dest="sarif_out",
                      help="write findings as SARIF 2.1.0 for CI "
                           "annotation upload")
    return p


def _get_gpu(name: str):
    from . import gpusim

    return getattr(gpusim, name)()


def _cmd_report(args) -> int:
    from .eval import ALL_EXPERIMENTS, render_report, run_all

    unknown = [n for n in args.names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments {unknown}; available: {sorted(ALL_EXPERIMENTS)}")
        return 2
    if args.no_cache:
        # Through the environment so worker processes and nested
        # memoised calls (fig4/fig5, accuracy studies) see it too.
        import os

        os.environ["REPRO_CACHE"] = "0"
    results = run_all(
        args.names or None,
        workers=args.workers,
        checkpoint=args.checkpoint_dir,
        resume=args.resume,
        retries=args.retries,
        timeout=args.task_timeout,
    )
    print(render_report(results))
    return 0


def _cmd_gemm(args) -> int:
    from .kernels import ALL_KERNELS, CGEMM_KERNELS, SGEMM_KERNELS, GemmProblem

    gpu = _get_gpu(args.gpu)
    problem = GemmProblem(args.m, args.n, args.k, complex=args.is_complex)
    pool = CGEMM_KERNELS if args.is_complex else SGEMM_KERNELS
    if args.kernel:
        if args.kernel not in ALL_KERNELS:
            print(f"unknown kernel {args.kernel!r}; known: {sorted(ALL_KERNELS)}")
            return 2
        pool = {args.kernel: ALL_KERNELS[args.kernel]}
    print(f"GEMM {problem} on {gpu.name}:")
    base_time = None
    for name, kernel in pool.items():
        t = kernel.time(problem, gpu)
        if base_time is None:
            base_time = t
        print(
            f"  {name:26s} {t * 1e3:10.3f} ms  {kernel.tflops(problem, gpu):7.1f} TFLOPS"
            f"  ({base_time / t:5.2f}x)"
        )
    return 0


def _cmd_synthesis(_args) -> int:
    from .synthesis import PAPER_TABLE3, synthesis_table

    print(f"{'design':20s} {'area':>6s} {'cycle':>6s} {'power':>6s}   (paper)")
    for r in synthesis_table():
        ref = PAPER_TABLE3[r.design]
        print(
            f"{r.design:20s} {r.area:6.2f} {r.cycle:6.2f} {r.power:6.2f}   "
            f"({ref['area']:.2f}/{ref['cycle']:.2f}/{ref['power']:.2f})"
        )
    return 0


def _cmd_accuracy(args) -> int:
    from .accuracy import cgemm_accuracy_study, sgemm_accuracy_study

    if args.no_cache:
        import os

        os.environ["REPRO_CACHE"] = "0"
    print("FP32 GEMM implementations vs float64 reference:")
    for r in sgemm_accuracy_study():
        print(f"  {r.name:12s} matching_bits={r.matching_bits:5.1f}  "
              f"max_rel={r.max_rel_error:.2e}")
    print("FP32C GEMM implementations vs complex128 reference:")
    for r in cgemm_accuracy_study():
        print(f"  {r.name:12s} matching_bits={r.matching_bits:5.1f}  "
              f"max_rel={r.max_rel_error:.2e}")
    return 0


def _cmd_design_space(_args) -> int:
    from .mxu import design_space

    print(f"{'point':12s} {'slices':>6s} {'steps':>6s} {'tput':>8s} {'bits':>6s}")
    for p in design_space():
        print(
            f"{p.name:12s} {p.n_slices:6d} {p.steps:6d} "
            f"{p.throughput_fraction:8.4f} {p.matching_bits:6.1f}"
        )
    return 0


def _cmd_peaks(args) -> int:
    gpu = _get_gpu(args.gpu)
    print(f"{gpu.name}: peak throughput")
    for path in ("fp32", "fp16", "bf16", "tf32_tc", "fp16_tc", "bf16_tc",
                 "m3xu_fp32", "m3xu_fp32c"):
        print(f"  {path:12s} {gpu.peak_tflops(path):8.1f} TFLOPS")
    return 0


def _cmd_campaign(args) -> int:
    from .resilience.campaign import (
        BITLEVEL_STAGES,
        CLASSIC_STAGES,
        CampaignConfig,
        run_campaign,
    )

    engine = getattr(args, "engine", "m3xu")
    config = CampaignConfig(
        trials=args.trials,
        seed=args.seed,
        mode=args.mode,
        m=args.m,
        n=args.n,
        k=args.k,
        tile=args.tile,
        engine=engine,
        stages=BITLEVEL_STAGES if engine == "bitlevel" else CLASSIC_STAGES,
    )
    result = run_campaign(config)
    print(result.render())
    if result.undetected_sdc:
        print(f"FAIL: {result.undetected_sdc} fault(s) escaped the ABFT guard",
              file=sys.stderr)
        return 1
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .analysis import all_rules, apply_fixes, lint_paths, load_config

    if args.list_rules:
        for rule in all_rules():
            severity = rule.default_severity.value
            fix = " [fixable]" if rule.fixable else ""
            print(f"{rule.rule_id}  {rule.pack:20s} {severity:7s} "
                  f"{rule.summary}{fix}")
        return 0

    paths = [Path(p) for p in (args.paths or ["src"])]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"repro lint: no such path(s): {missing}", file=sys.stderr)
        return 2
    cfg = load_config(paths[0])
    report = lint_paths(list(paths), cfg)
    if args.fix:
        applied = apply_fixes(report)
        if applied:
            print(f"applied {applied} fix(es); re-linting", file=sys.stderr)
        report = lint_paths(list(paths), cfg)
    if args.graph_out:
        Path(args.graph_out).write_text(
            report.project.to_json(), encoding="utf-8"
        )
        print(f"repro lint: call graph written to {args.graph_out}",
              file=sys.stderr)
    if args.sarif_out:
        from .analysis import render_sarif

        Path(args.sarif_out).write_text(
            render_sarif(report), encoding="utf-8"
        )
        print(f"repro lint: SARIF written to {args.sarif_out}",
              file=sys.stderr)
    if args.as_json:
        print(json.dumps(
            {
                "findings": [f.to_dict() for f in report.findings],
                "files_checked": report.files_checked,
                "parse_errors": report.parse_errors,
                "exit_code": report.exit_code,
            },
            indent=2,
        ))
    else:
        print(report.render())
    return report.exit_code


def _cmd_serve(args) -> int:
    import asyncio

    from .serve import GemmServer, ServeConfig

    cfg = ServeConfig.from_env(
        host=args.host,
        max_queue=args.max_queue,
        rate=args.rate,
        deadline_ms=args.deadline_ms,
        degrade=args.degrade,
        workers=args.workers,
        abft=args.abft,
        fault_injection=args.fault_injection,
        allow_shutdown=args.allow_shutdown,
    )
    if args.port is not None:
        cfg.port = args.port
    elif cfg.port == 0:
        cfg.port = 8135

    server = GemmServer(cfg)

    async def _run() -> int:
        await server.start()
        print(f"repro serve: listening on {cfg.host}:{server.port} "
              f"(degrade={cfg.degrade}, max_queue={cfg.max_queue}, "
              f"fault_injection={cfg.fault_injection})")
        try:
            await server.serve_forever()
        finally:
            await server.stop()
        return 0

    try:
        code = asyncio.run(_run())
    finally:
        # The CSV write is blocking file I/O: it runs after the event
        # loop has exited, never on it (AS601) — and in a finally so an
        # interrupt still flushes the table (the exit-130 contract keeps
        # run tables and journals intact).
        if args.run_table:
            rows = server.run_table.write_csv(args.run_table)
            print(f"repro serve: wrote {rows} rows to {args.run_table}")
    return code


def _cmd_loadgen(args) -> int:
    import json

    from .serve import LoadgenConfig, run_loadgen

    cfg = LoadgenConfig(
        host=args.host,
        port=args.port,
        duration_s=args.duration,
        mode=args.mode,
        concurrency=args.concurrency,
        rate=args.rate,
        size=args.size,
        deadline_ms=args.deadline_ms,
        fault_rate=args.fault_rate,
        seed=args.seed,
    )
    report = run_loadgen(cfg)
    if args.as_json:
        print(json.dumps(report, indent=2))
    else:
        print(f"loadgen: sent={report['sent']} outcomes={report['outcomes']} "
              f"reasons={report['reasons']}")
        print(f"loadgen: p50={report['p50_latency_ms']:.1f}ms "
              f"p95={report['p95_latency_ms']:.1f}ms "
              f"throughput={report['throughput_rps']:.1f}rps")
        print(f"loadgen: faults={report['faults_sent']} "
              f"sdc_count={report['sdc_count']}")
    # An undetected SDC is the one unacceptable outcome.
    return 1 if report["sdc_count"] else 0


_COMMANDS = {
    "report": _cmd_report,
    "gemm": _cmd_gemm,
    "synthesis": _cmd_synthesis,
    "accuracy": _cmd_accuracy,
    "design-space": _cmd_design_space,
    "peaks": _cmd_peaks,
    "campaign": _cmd_campaign,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
    "lint": _cmd_lint,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Dispatch one CLI invocation.

    Exit codes: ``0`` success; ``1`` execution failure (an experiment or
    campaign failed); ``2`` usage error (argparse or unknown names);
    ``130`` interrupted (SIGINT) — no traceback, and any checkpoint
    journal retains everything completed before the interrupt (each
    record is flushed and fsynced as it is appended).
    """
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except KeyboardInterrupt:
        print("repro: interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:  # e.g. `repro report | head`
        return 0
    except Exception as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
