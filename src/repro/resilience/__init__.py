"""Resilience subsystem: fault-tolerant execution, checkpointing, ABFT.

Four layers, one theme — a long numerical campaign must survive its
environment:

- :mod:`repro.resilience.failures` — structured task failures and the
  retry/timeout policy consumed by :func:`repro.parallel.parallel_map`.
- :mod:`repro.resilience.checkpoint` — crash-tolerant JSONL journal
  behind ``run_all --resume`` and ``REPRO_CHECKPOINT_DIR``.
- :mod:`repro.resilience.abft` — Huang–Abraham row/column checksum
  guards adapted to rounded emulated arithmetic, wrapped around the
  tiled GEMM drivers (``REPRO_ABFT=1`` / ``abft=True``).
- :mod:`repro.resilience.campaign` — randomized datapath
  fault-injection campaigns that demonstrate inject → detect → recover
  end to end (imported lazily: it drives the GEMM stack, which itself
  imports the ABFT guard from here).
"""

from __future__ import annotations

from .abft import (
    ABFT_ENV,
    AbftConfig,
    AbftReport,
    AbftUncorrectedError,
    Detection,
    abft_info,
    element_tolerance,
    guarded_gemm,
    resolve_abft,
    sdc_threshold,
)
from .checkpoint import CHECKPOINT_ENV, CheckpointJournal
from .failures import (
    BACKOFF_ENV,
    RETRIES_ENV,
    TIMEOUT_ENV,
    ParallelTaskError,
    RetryPolicy,
    TaskFailure,
    resolve_policy,
)

__all__ = [
    "ABFT_ENV",
    "AbftConfig",
    "AbftReport",
    "AbftUncorrectedError",
    "Detection",
    "abft_info",
    "element_tolerance",
    "guarded_gemm",
    "resolve_abft",
    "sdc_threshold",
    "CHECKPOINT_ENV",
    "CheckpointJournal",
    "BACKOFF_ENV",
    "RETRIES_ENV",
    "TIMEOUT_ENV",
    "ParallelTaskError",
    "RetryPolicy",
    "TaskFailure",
    "resolve_policy",
    # lazy (see __getattr__): the campaign engine pulls in the GEMM stack
    "CampaignConfig",
    "CampaignResult",
    "Outcome",
    "TrialRecord",
    "run_campaign",
]

_CAMPAIGN_NAMES = frozenset(
    {"CampaignConfig", "CampaignResult", "Outcome", "TrialRecord", "run_campaign"}
)


def __getattr__(name: str) -> object:
    if name in _CAMPAIGN_NAMES:
        from . import campaign

        return getattr(campaign, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
