"""Algorithm-based fault tolerance (ABFT) for the emulated GEMM paths.

The classic Huang–Abraham scheme protects ``C = A @ B`` with row/column
checksums: corruption of any single output element perturbs exactly one
row checksum and one column checksum, so an O(n^2) comparison detects
and *localises* silent data corruption that a long multi-step emulated
reduction would otherwise propagate everywhere. This module adapts the
scheme to the functional MXU pipelines, whose results are *rounded* —
checksum equality is therefore tested against a rigorous rounding
tolerance rather than exactly.

How the guard works, per GEMM:

1. The guarded result is computed through the (possibly faulty) MXU
   path as usual.
2. The output is partitioned into ``tile x tile`` blocks. For each
   block, the measured row sums ``sum_j C[i, j]`` are compared against
   reference checksums ``A[i, :] @ (sum_j B[:, j]) + sum_j C0[i, j]``
   evaluated in float64 (one small matmul per tile column — O(MK)
   work, negligible next to the emulated GEMM), and likewise for
   column sums. The checksum datapath is independent of the MXU model,
   playing the role of ABFT's checksum unit.
3. The comparison tolerance is the sum over the block of per-element
   rounding radii ``eps[i, j] = safety * u * (K * rowmax|A|_i *
   colmax|B|_j + |C0[i, j]|)`` with ``u`` the unit roundoff of the
   mode (2^-23 for FP32 outputs). A fault whose effect on any element
   exceeds twice the block tolerance *provably* trips a row or column
   residual; smaller upsets are below the model's legitimate rounding
   noise and are classified as masked.
4. Flagged blocks are recomputed through the same MXU path (restricted
   to the block's rows and columns — bit-identical element-wise, since
   every output element's reduction is independent) and re-verified,
   up to ``max_rounds`` times. A transient upset therefore heals
   transparently; a persistent one raises
   :class:`AbftUncorrectedError` instead of returning corrupt data.

Enable globally with ``REPRO_ABFT=1`` or per-driver with
``TiledGEMM(..., abft=True)`` / ``batched_mxu_sgemm(..., abft=True)``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

__all__ = [
    "ABFT_ENV",
    "resolve_abft",
    "AbftConfig",
    "Detection",
    "AbftReport",
    "AbftUncorrectedError",
    "element_tolerance",
    "sdc_threshold",
    "guarded_gemm",
]

#: Environment switch: ``REPRO_ABFT=1`` guards every TiledGEMM/batched GEMM.
ABFT_ENV = "REPRO_ABFT"


def resolve_abft(flag: bool | None = None) -> bool:
    """Whether ABFT guarding is on: explicit *flag* wins, else the
    ``REPRO_ABFT`` environment gate (default off)."""
    if flag is not None:
        return bool(flag)
    return os.environ.get(ABFT_ENV, "").strip().lower() in ("1", "true", "on")


@dataclass(frozen=True)
class AbftConfig:
    """Guard parameters.

    Parameters
    ----------
    tile:
        Output-block edge for checksum localisation. Smaller tiles
        localise more precisely (and recompute less on detection) at
        slightly higher checksum cost.
    safety:
        Inflation applied over the rigorous per-element rounding radius.
        Raising it trades detection sensitivity for zero false alarms.
    max_rounds:
        Recompute-and-reverify rounds before a persistent corruption is
        escalated as :class:`AbftUncorrectedError`.
    """

    tile: int = 32
    safety: float = 8.0
    max_rounds: int = 3

    def __post_init__(self) -> None:
        if self.tile < 1:
            raise ValueError("tile must be >= 1")
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")


@dataclass(frozen=True)
class Detection:
    """One flagged output block: where, and which checksums tripped."""

    tile: tuple[int, int]  # (tile-row, tile-col) coordinates
    rows: tuple[int, ...]  # absolute output rows with tripped row checksums
    cols: tuple[int, ...]  # absolute output cols with tripped col checksums
    worst_residual: float  # largest |measured - reference| in the block


@dataclass
class AbftReport:
    """What the guard saw while protecting one GEMM."""

    shape: tuple[int, int]
    tile: int
    checks: int = 0
    detections: list[Detection] = field(default_factory=list)
    recompute_rounds: int = 0
    recomputed_tiles: int = 0

    @property
    def detected(self) -> bool:
        return bool(self.detections)


class AbftUncorrectedError(RuntimeError):
    """Corruption persisted through every recompute round — the fault is
    not transient, and the result cannot be trusted."""

    def __init__(self, report: AbftReport):
        self.report = report
        tiles = sorted({d.tile for d in report.detections})
        super().__init__(
            f"ABFT: corruption persisted after {report.recompute_rounds} "
            f"recompute round(s) in output tiles {tiles}"
        )


# ----------------------------------------------------------------------
# Tolerances
# ----------------------------------------------------------------------
def element_tolerance(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    roundoff: float,
    safety: float,
) -> np.ndarray:
    """Per-element rounding radius of the emulated ``A @ B + C``.

    ``|exact[i, j]| <= K * rowmax|A|_i * colmax|B|_j + |C[i, j]|`` bounds
    the magnitude every rounding error is relative to; multiplying by the
    mode's unit roundoff and the safety factor yields a radius that the
    fault-free emulated result provably stays inside.
    """
    k = a.shape[-1]
    arow = np.abs(a).max(axis=-1)  # (M,)
    bcol = np.abs(b).max(axis=-2)  # (N,)
    scale = k * arow[:, None] * bcol[None, :] + np.abs(c)
    return safety * roundoff * scale


def _tile_starts(n: int, tile: int) -> np.ndarray:
    return np.arange(0, n, tile)


def _block_tolerances(
    eps: np.ndarray, tile: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Row/col checksum tolerances per block: ``tol_rows[i, tj]`` bounds
    the legitimate residual of row *i*'s checksum within tile column
    *tj*, and ``tol_cols[ti, j]`` the transpose counterpart."""
    row_starts = _tile_starts(eps.shape[0], tile)
    col_starts = _tile_starts(eps.shape[1], tile)
    tol_rows = np.add.reduceat(eps, col_starts, axis=1)  # (M, nTj)
    tol_cols = np.add.reduceat(eps, row_starts, axis=0)  # (nTi, N)
    return row_starts, col_starts, tol_rows, tol_cols


def sdc_threshold(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    roundoff: float,
    config: AbftConfig | None = None,
) -> np.ndarray:
    """Per-element silent-data-corruption threshold under this guard.

    An element whose error exceeds ``2 * (tol_row + tol_col)`` of its
    block *cannot* escape detection: the checksum residual it induces
    (at least the error minus the block's legitimate rounding, itself
    bounded by the block tolerance) exceeds the detection threshold on
    its row or its column. The campaign engine classifies outcomes with
    exactly this bound, which is what makes "0 undetected SDC" a
    theorem the randomized campaign then checks empirically.
    """
    cfg = config or AbftConfig()
    eps = element_tolerance(a, b, c, roundoff, cfg.safety)
    row_starts, col_starts, tol_rows, tol_cols = _block_tolerances(eps, cfg.tile)
    col_widths = np.diff(np.append(col_starts, eps.shape[1]))
    row_widths = np.diff(np.append(row_starts, eps.shape[0]))
    per_elem_row = np.repeat(tol_rows, col_widths, axis=1)  # (M, N)
    per_elem_col = np.repeat(tol_cols, row_widths, axis=0)  # (M, N)
    return 2.0 * (per_elem_row + per_elem_col)


# ----------------------------------------------------------------------
# Verification + recovery
# ----------------------------------------------------------------------
def _verify(
    out: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    eps: np.ndarray,
    tile: int,
) -> list[Detection]:
    """Checksum every ``tile x tile`` output block; return the flagged ones."""
    row_starts, col_starts, tol_rows, tol_cols = _block_tolerances(eps, tile)

    # NaN/Inf corruption in ``out`` is expected input here, not a numeric
    # accident — keep numpy's invalid/overflow warnings out of the logs.
    with np.errstate(invalid="ignore", over="ignore"):
        # Row checksums, all tile columns at once: one (M, K) @ (K, nTj)
        # matmul.
        b_colsums = np.add.reduceat(b, col_starts, axis=1)
        want_rows = a @ b_colsums + np.add.reduceat(c, col_starts, axis=1)
        got_rows = np.add.reduceat(out, col_starts, axis=1)
        # ``~(residual <= tol)`` (not ``residual > tol``) so NaN corruption
        # — where every comparison is False — is flagged, never waved
        # through.
        row_bad = ~(np.abs(got_rows - want_rows) <= tol_rows)  # (M, nTj)

        # Column checksums: (nTi, K) @ (K, N).
        a_rowsums = np.add.reduceat(a, row_starts, axis=0)
        want_cols = a_rowsums @ b + np.add.reduceat(c, row_starts, axis=0)
        got_cols = np.add.reduceat(out, row_starts, axis=0)
        col_bad = ~(np.abs(got_cols - want_cols) <= tol_cols)  # (nTi, N)

    detections: list[Detection] = []
    m, n = out.shape
    for ti, r0 in enumerate(row_starts):
        r1 = min(r0 + tile, m)
        for tj, c0 in enumerate(col_starts):
            c1 = min(c0 + tile, n)
            rows = np.nonzero(row_bad[r0:r1, tj])[0] + r0
            cols = np.nonzero(col_bad[ti, c0:c1])[0] + c0
            if rows.size == 0 and cols.size == 0:
                continue
            residuals = [
                np.abs(got_rows[rows, tj] - want_rows[rows, tj]),
                np.abs(got_cols[ti, cols] - want_cols[ti, cols]),
            ]
            worst = float(max((r.max() for r in residuals if r.size), default=0.0))
            detections.append(
                Detection(
                    tile=(ti, tj),
                    rows=tuple(int(r) for r in rows),
                    cols=tuple(int(col) for col in cols),
                    worst_residual=worst,
                )
            )
    return detections


def guarded_gemm(
    compute: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    *,
    roundoff: float,
    config: AbftConfig | None = None,
    out: np.ndarray | None = None,
) -> tuple[np.ndarray, AbftReport]:
    """Run ``compute(A, B, C)`` under checksum guard with tile recompute.

    Parameters
    ----------
    compute:
        The GEMM kernel. Must also accept row/column-restricted operands
        — ``compute(a[r0:r1], b[:, c0:c1], c[r0:r1, c0:c1])`` — and be
        element-wise deterministic on them (true of every per-element
        reduction in this package), so recomputed tiles are bit-identical
        to a clean full run.
    a, b, c:
        Operands *as the kernel consumes them* (already quantised to the
        mode's register formats), with ``c`` broadcast to the output
        shape. The checksum reference is evaluated on exactly these
        values in float64.
    roundoff:
        Unit roundoff of the mode (``2**-23`` for FP32 results).
    out:
        Optional precomputed ``compute(a, b, c)`` result (used by the
        batched guard to verify a result the parallel engine already
        produced).

    Returns
    -------
    (result, report):
        The verified (possibly partially recomputed) result, and the
        guard's :class:`AbftReport`.
    """
    cfg = config or AbftConfig()
    c = np.broadcast_to(c, (a.shape[0], b.shape[1]))
    if out is None:
        out = compute(a, b, c)
    eps = element_tolerance(a, b, c, roundoff, cfg.safety)
    report = AbftReport(shape=(a.shape[0], b.shape[1]), tile=cfg.tile)
    copied = False
    for round_idx in range(cfg.max_rounds + 1):
        flagged = _verify(out, a, b, c, eps, cfg.tile)
        report.checks += 1
        if not flagged:
            return out, report
        report.detections.extend(flagged)
        if round_idx == cfg.max_rounds:
            raise AbftUncorrectedError(report)
        if not copied:  # never mutate the kernel's own return buffer
            out = np.array(out, copy=True)
            copied = True
        m, n = out.shape
        for det in flagged:
            r0 = det.tile[0] * cfg.tile
            c0 = det.tile[1] * cfg.tile
            r1, c1 = min(r0 + cfg.tile, m), min(c0 + cfg.tile, n)
            out[r0:r1, c0:c1] = compute(a[r0:r1], b[:, c0:c1], c[r0:r1, c0:c1])
        report.recomputed_tiles += len(flagged)
        report.recompute_rounds += 1
    raise AssertionError("unreachable")  # pragma: no cover


def abft_info() -> dict[str, Any]:
    """Introspection convenience for docs/tests: current gate + defaults."""
    cfg = AbftConfig()
    return {
        "enabled": resolve_abft(),
        "tile": cfg.tile,
        "safety": cfg.safety,
        "max_rounds": cfg.max_rounds,
    }
