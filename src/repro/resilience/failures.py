"""Structured task-failure records and the retry policy knobs.

This is the leaf module of :mod:`repro.resilience`: it defines the
vocabulary the resilient execution engine (:mod:`repro.parallel`) speaks
— what a failed task looks like after its retries are exhausted, and how
timeouts/retries/backoff are resolved from explicit arguments or the
environment. It deliberately imports nothing from the rest of the
package so :mod:`repro.parallel` can depend on it without cycles.

Environment knobs (all optional; explicit arguments win):

``REPRO_TASK_TIMEOUT``
    Per-task wall-clock budget in seconds (float). A task still running
    past it is abandoned: its worker process is terminated, the pool is
    respawned, and the task is retried or reported as failed.
``REPRO_RETRIES``
    How many times a failed (raised / timed out / pool-crashed) task is
    retried after its first attempt. Default 0: one attempt, exactly the
    pre-resilience behaviour.
``REPRO_RETRY_BACKOFF``
    Base delay in seconds between retry rounds. The actual delay grows
    exponentially with the attempt number and carries multiplicative
    jitter so retrying workers do not stampede in lockstep.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from random import Random

__all__ = [
    "TIMEOUT_ENV",
    "RETRIES_ENV",
    "BACKOFF_ENV",
    "TaskFailure",
    "ParallelTaskError",
    "RetryPolicy",
    "resolve_policy",
]

#: Environment variable: per-task timeout in seconds (unset: no timeout).
TIMEOUT_ENV = "REPRO_TASK_TIMEOUT"

#: Environment variable: retries per task after the first attempt.
RETRIES_ENV = "REPRO_RETRIES"

#: Environment variable: base retry backoff in seconds.
BACKOFF_ENV = "REPRO_RETRY_BACKOFF"

#: Default base backoff between retry rounds (seconds).
DEFAULT_BACKOFF = 0.05

#: Backoff growth is capped here so deep retry chains stay responsive.
MAX_BACKOFF = 5.0


@dataclass(frozen=True)
class TaskFailure:
    """One task's terminal failure, after every allowed attempt.

    Returned in-place of a result by ``parallel_map(...,
    return_failures=True)`` and carried by :class:`ParallelTaskError`
    otherwise — either way the caller learns *which* task failed, how
    many times it was tried, and why, instead of an opaque raise.
    """

    index: int
    attempts: int
    cause: str  # "exception" | "timeout" | "broken-pool"
    error_type: str = ""
    message: str = ""

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        what = self.error_type or self.cause
        detail = f": {self.message}" if self.message else ""
        return (
            f"task {self.index} failed after {self.attempts} "
            f"attempt{'s' if self.attempts != 1 else ''} ({what}{detail})"
        )

    @classmethod
    def from_exception(cls, index: int, attempts: int, exc: BaseException) -> "TaskFailure":
        return cls(
            index=index,
            attempts=attempts,
            cause="exception",
            error_type=type(exc).__name__,
            message=str(exc),
        )


class ParallelTaskError(RuntimeError):
    """Raised when tasks fail terminally and failures were not requested
    as values. Carries the full :class:`TaskFailure` list."""

    def __init__(self, failures: list[TaskFailure]):
        self.failures = list(failures)
        head = "; ".join(str(f) for f in self.failures[:3])
        more = f" (+{len(self.failures) - 3} more)" if len(self.failures) > 3 else ""
        super().__init__(
            f"{len(self.failures)} of the parallel tasks failed terminally: {head}{more}"
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Resolved resilience parameters for one ``parallel_map`` call.

    ``retries`` counts *additional* attempts after the first, so every
    task runs at most ``retries + 1`` times. ``timeout=None`` disables
    the per-task deadline. The policy is inert (``active`` false) at the
    defaults, which keeps the fast path bit-for-bit untouched.
    """

    retries: int = 0
    timeout: float | None = None
    backoff: float = DEFAULT_BACKOFF
    jitter: float = 0.25
    #: Seed for the jitter RNG. Jitter only spaces retries in time — it
    #: never touches data — but an unseeded RNG would still make failure
    #: schedules unreplayable, so it is threaded explicitly like every
    #: other random source in the repo (lint rule DT203).
    seed: int = 2024

    @property
    def active(self) -> bool:
        return self.retries > 0 or self.timeout is not None

    def jitter_rng(self) -> Random:
        """A fresh, deterministically seeded jitter source for one
        ``parallel_map`` call."""
        return Random(self.seed)

    def delay(self, attempt: int, rng: Random) -> float:
        """Backoff before retrying a task that has run *attempt* times:
        exponential in the attempt count, capped, with jitter."""
        base = min(self.backoff * (2.0 ** max(attempt - 1, 0)), MAX_BACKOFF)
        return base * (1.0 + self.jitter * rng.random())

    def schedule(self, attempts: int | None = None) -> list[float]:
        """The full retry-delay schedule from a fresh :meth:`jitter_rng`.

        Deterministic for a given seed: two calls — or two processes, or
        the same process before and after a pool respawn — produce the
        same list, which is what makes failure timelines replayable.
        """
        n = self.retries if attempts is None else attempts
        rng = self.jitter_rng()
        return [self.delay(attempt, rng) for attempt in range(1, n + 1)]


def _env_number(
    env: str,
    kind: type[int] | type[float],
    fallback: float | None,
    minimum: float | None = None,
) -> float | None:
    raw = os.environ.get(env, "").strip()
    if not raw:
        return fallback
    try:
        value = kind(raw)
    except ValueError:
        warnings.warn(
            f"{env}={raw!r} is not a valid {kind.__name__}; using the default",
            RuntimeWarning,
            stacklevel=3,
        )
        return fallback
    if minimum is not None and value < minimum:
        return fallback
    return value


def resolve_policy(
    timeout: float | None = None,
    retries: int | None = None,
    backoff: float | None = None,
    seed: int | None = None,
) -> RetryPolicy:
    """Resolve a :class:`RetryPolicy` from explicit arguments, falling
    back to the ``REPRO_TASK_TIMEOUT`` / ``REPRO_RETRIES`` /
    ``REPRO_RETRY_BACKOFF`` environment knobs, then the inert defaults.

    ``timeout <= 0`` disables the deadline; negative retries clamp to 0.
    ``seed`` controls the retry-jitter RNG (timing only, never data).
    """
    if timeout is None:
        timeout = _env_number(TIMEOUT_ENV, float, None)
    if timeout is not None and timeout <= 0:
        timeout = None
    if retries is None:
        retries = _env_number(RETRIES_ENV, int, 0)
    retries = max(0, int(retries))
    if backoff is None:
        backoff = _env_number(BACKOFF_ENV, float, DEFAULT_BACKOFF)
    backoff = max(0.0, float(backoff))
    if seed is None:
        return RetryPolicy(retries=retries, timeout=timeout, backoff=backoff)
    return RetryPolicy(
        retries=retries, timeout=timeout, backoff=backoff, seed=int(seed)
    )
