"""Randomized datapath fault-injection campaigns through the ABFT guard.

The paper's Table III flow validates the M3XU datapath with RTL-level
fault checking; this engine is the software analogue at system scale. A
campaign arms one transient single-bit/single-stage upset per trial —
uniformly across the operand buffers, the accumulation register, the
shift-align stage and the sign-flip stage (:class:`~repro.mxu.faults.
FaultStage`) — runs the fault through an ABFT-guarded GEMM, and
classifies the outcome against the fault-free reference:

``MASKED``
    The final output differs from the clean result by less than the
    per-element SDC threshold (twice the guard's block checksum
    tolerance — indistinguishable from legitimate rounding noise).
``DETECTED_CORRECTED``
    The guard's checksums tripped, the affected tile(s) were recomputed,
    and the final output is back within the masked envelope (for
    transient faults: bit-identical to clean).
``DETECTED_UNCORRECTED``
    The guard detected corruption but recompute could not clear it
    (a persistent fault): surfaced as a raise, never as silent data.
``CRASH``
    The datapath itself refused to continue: a fault drove an
    intermediate chunk result (or an operand) to ±inf/NaN, and the
    bit-level engine's finite-operand contract rejected it
    (:class:`~repro.mxu.vectorized.NonFiniteOperandError`). Like
    ``DETECTED_UNCORRECTED`` this is a detected unrecoverable error —
    loud, never silent data — and it can only occur on the
    ``bitlevel`` engine (the value-level model propagates non-finite
    values IEEE-style instead).
``SDC``
    The final output is corrupted beyond the threshold. ``SDC`` with no
    detection event is *undetected SDC* — the one outcome the guard
    exists to rule out, and :attr:`CampaignResult.undetected_sdc` is the
    headline the acceptance test pins to zero.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..mxu.faults import FaultSpec, FaultStage
from .abft import AbftConfig, AbftUncorrectedError, sdc_threshold

__all__ = [
    "Outcome",
    "CampaignConfig",
    "TrialRecord",
    "CampaignResult",
    "run_campaign",
    "CLASSIC_STAGES",
    "BITLEVEL_STAGES",
]

#: The output-side stages every engine supports (the pre-PRODUCT default,
#: pinned explicitly so seeded campaign results are stable across enum
#: growth).
CLASSIC_STAGES: tuple[FaultStage, ...] = (
    FaultStage.OPERAND,
    FaultStage.ACCUMULATOR,
    FaultStage.SHIFT_ALIGN,
    FaultStage.SIGN_FLIP,
)

#: Stage mix for the bit-level engine: the classic four plus in-datapath
#: multiplier-product upsets.
BITLEVEL_STAGES: tuple[FaultStage, ...] = CLASSIC_STAGES + (FaultStage.PRODUCT,)


class Outcome(enum.Enum):
    MASKED = "masked"
    DETECTED_CORRECTED = "detected_corrected"
    DETECTED_UNCORRECTED = "detected_uncorrected"
    CRASH = "crash"
    SDC = "sdc"


@dataclass(frozen=True)
class CampaignConfig:
    """One campaign's shape, sites, engine, and guard parameters."""

    trials: int = 200
    seed: int = 2024
    m: int = 24
    n: int = 20
    k: int = 24
    mode: str = "fp32"  #: "fp32" or "fp32c"
    stages: tuple[FaultStage, ...] = CLASSIC_STAGES
    tile: int = 8
    safety: float = 8.0
    #: "m3xu" runs the value-level model; "bitlevel" runs the true
    #: split/multiply/shift/accumulate datapath (vector or scalar per
    #: ``REPRO_BITLEVEL``), which also unlocks PRODUCT-stage faults.
    engine: str = "m3xu"

    def __post_init__(self) -> None:
        if self.mode not in ("fp32", "fp32c"):
            raise ValueError(f"unsupported campaign mode {self.mode!r}")
        if not self.stages:
            raise ValueError("campaign needs at least one fault stage")
        if self.engine not in ("m3xu", "bitlevel"):
            raise ValueError(f"unsupported campaign engine {self.engine!r}")
        if FaultStage.PRODUCT in self.stages and self.engine != "bitlevel":
            raise ValueError(
                "product-stage faults need engine='bitlevel' — the "
                "value-level model has no product significands to corrupt"
            )


@dataclass(frozen=True, eq=False)
class TrialRecord:
    """One trial: what was injected, what the guard saw, how it ended.

    ``max_abs_error`` is NaN for outcomes with no comparable output
    (``DETECTED_UNCORRECTED``, ``CRASH``); record equality treats those
    NaNs as equal so engine-parity checks can compare records directly.
    """

    trial: int
    stage: str
    detail: str
    outcome: Outcome
    detected: bool
    recomputed_tiles: int
    max_abs_error: float

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TrialRecord):
            return NotImplemented
        mine, theirs = self.max_abs_error, other.max_abs_error
        return (
            (self.trial, self.stage, self.detail, self.outcome,
             self.detected, self.recomputed_tiles)
            == (other.trial, other.stage, other.detail, other.outcome,
                other.detected, other.recomputed_tiles)
            and (mine == theirs or (mine != mine and theirs != theirs))
        )

    def __hash__(self) -> int:
        # Python >= 3.10 hashes each NaN object by id; fold every NaN to
        # one surrogate so records equal under __eq__ hash equal too.
        err = self.max_abs_error
        return hash(
            (self.trial, self.stage, self.detail, self.outcome,
             self.detected, self.recomputed_tiles,
             None if err != err else err)
        )


@dataclass
class CampaignResult:
    """Aggregated campaign outcomes plus the per-trial records."""

    config: CampaignConfig
    records: list[TrialRecord] = field(default_factory=list)

    @property
    def counts(self) -> dict[str, int]:
        out = {o.value: 0 for o in Outcome}
        for r in self.records:
            out[r.outcome.value] += 1
        return out

    @property
    def undetected_sdc(self) -> int:
        """Silent corruptions that escaped the guard — must be zero."""
        return sum(
            1 for r in self.records if r.outcome is Outcome.SDC and not r.detected
        )

    def by_stage(self) -> dict[str, dict[str, int]]:
        out: dict[str, dict[str, int]] = {}
        for r in self.records:
            out.setdefault(r.stage, {o.value: 0 for o in Outcome})
            out[r.stage][r.outcome.value] += 1
        return out

    def summary(self) -> dict[str, Any]:
        return {
            "trials": len(self.records),
            "mode": self.config.mode,
            "engine": self.config.engine,
            "shape": [self.config.m, self.config.k, self.config.n],
            "counts": self.counts,
            "by_stage": self.by_stage(),
            "undetected_sdc": self.undetected_sdc,
        }

    def render(self) -> str:
        lines = [
            f"fault-injection campaign: {len(self.records)} trials, "
            f"{self.config.mode} GEMM "
            f"{self.config.m}x{self.config.k}x{self.config.n}, "
            f"engine={self.config.engine}, ABFT tile={self.config.tile}"
        ]
        header = f"  {'stage':14s}" + "".join(f"{o.value:>22s}" for o in Outcome)
        lines.append(header)
        for stage, counts in sorted(self.by_stage().items()):
            row = f"  {stage:14s}" + "".join(
                f"{counts[o.value]:22d}" for o in Outcome
            )
            lines.append(row)
        lines.append(f"  undetected SDC events: {self.undetected_sdc}")
        return "\n".join(lines)


def _operands(
    rng: np.random.Generator, config: CampaignConfig
) -> tuple[np.ndarray, np.ndarray]:
    shape_a, shape_b = (config.m, config.k), (config.k, config.n)
    a = rng.uniform(-2.0, 2.0, size=shape_a)
    b = rng.uniform(-2.0, 2.0, size=shape_b)
    if config.mode == "fp32c":
        a = a + 1j * rng.uniform(-2.0, 2.0, size=shape_a)
        b = b + 1j * rng.uniform(-2.0, 2.0, size=shape_b)
    return a, b


def run_campaign(config: CampaignConfig | None = None) -> CampaignResult:
    """Run the randomized campaign; see the module docstring for the
    outcome taxonomy. Deterministic for a given config (seeded)."""
    # Deferred imports: this module is reachable from repro.gemm.tiled via
    # the resilience package, so pulling the GEMM stack in at import time
    # would be circular.
    from ..gemm.tiled import TiledGEMM
    from ..mxu.faults import FaultyM3XU
    from ..mxu.m3xu import M3XU
    from ..mxu.modes import MXUMode
    from ..mxu.vectorized import BitLevelMXU, NonFiniteOperandError
    from ..types.formats import FP32
    from ..types.quantize import quantize, quantize_complex

    cfg = config or CampaignConfig()
    mode = MXUMode.FP32 if cfg.mode == "fp32" else MXUMode.FP32C
    abft_cfg = AbftConfig(tile=cfg.tile, safety=cfg.safety)
    rng = np.random.default_rng(cfg.seed)
    result = CampaignResult(config=cfg)

    def make_unit() -> "M3XU | BitLevelMXU":
        # The golden run and every faulty trial execute the same engine,
        # so the clean reference is bit-identical to a fault-free trial.
        return BitLevelMXU() if cfg.engine == "bitlevel" else M3XU()

    clean_driver = TiledGEMM(make_unit(), mode, abft=False)
    n_calls = -(-cfg.k // int(clean_driver.k_chunk))  # MMAs per GEMM

    for trial in range(cfg.trials):
        a, b = _operands(rng, cfg)
        clean = clean_driver.run(a, b)

        # The SDC threshold is evaluated on exactly the operands the
        # guard checksums: the register-format-quantised values.
        if mode is MXUMode.FP32C:
            aq = quantize_complex(np.asarray(a, dtype=np.complex128), FP32)
            bq = quantize_complex(np.asarray(b, dtype=np.complex128), FP32)
        else:
            aq = quantize(np.asarray(a, dtype=np.float64), FP32)
            bq = quantize(np.asarray(b, dtype=np.float64), FP32)
        zero_c = np.zeros((cfg.m, cfg.n))
        threshold = sdc_threshold(aq, bq, zero_c, 2.0**-23, abft_cfg)

        stage = cfg.stages[trial % len(cfg.stages)]
        spec = FaultSpec.random(rng, stage, n_calls=n_calls)
        unit = FaultyM3XU(spec, make_unit())
        guarded = TiledGEMM(unit, mode, abft=True, abft_config=abft_cfg)

        detected = False
        recomputed = 0
        try:
            out = guarded.run(a, b)
        except AbftUncorrectedError as exc:
            report = exc.report
            record = TrialRecord(
                trial=trial,
                stage=stage.value,
                detail=(unit.injected or spec).describe(),
                outcome=Outcome.DETECTED_UNCORRECTED,
                detected=True,
                recomputed_tiles=report.recomputed_tiles,
                max_abs_error=float("nan"),
            )
            result.records.append(record)
            continue
        except NonFiniteOperandError:
            # The fault pushed a chunk output (or an operand) out of the
            # finite domain and the bit-level datapath rejected it. Loud
            # and deterministic in both engines (the validation lives in
            # the shared field-extraction front end), so it classifies as
            # a detected unrecoverable outcome, never silent data.
            result.records.append(
                TrialRecord(
                    trial=trial,
                    stage=stage.value,
                    detail=(unit.injected or spec).describe(),
                    outcome=Outcome.CRASH,
                    detected=True,
                    recomputed_tiles=0,
                    max_abs_error=float("nan"),
                )
            )
            continue

        report = guarded.abft_report
        if report is not None:
            detected = report.detected
            recomputed = report.recomputed_tiles
        err = np.abs(out - clean)
        # ``~(err <= thr)`` so NaN corruption counts as beyond-threshold.
        beyond = bool(np.any(~(err <= threshold)))
        if beyond:
            outcome = Outcome.SDC
        elif detected:
            outcome = Outcome.DETECTED_CORRECTED
        else:
            outcome = Outcome.MASKED
        result.records.append(
            TrialRecord(
                trial=trial,
                stage=stage.value,
                detail=(unit.injected or spec).describe(),
                outcome=outcome,
                detected=detected,
                recomputed_tiles=recomputed,
                max_abs_error=float(np.max(err[np.isfinite(err)], initial=0.0)),
            )
        )
    return result
