"""Checkpoint journal: crash-tolerant progress records for long sweeps.

``run_all`` over every experiment is the longest-running entry point in
the package; a crash (OOM-killed worker, SIGKILL on a preempted node, a
plain ``KeyboardInterrupt``) used to throw away every completed
experiment. The journal fixes that: each completed unit of work is
appended to a JSONL file — one self-validating line per result, flushed
and fsynced immediately — so an interrupted sweep resumes from exactly
the set of results that were durably recorded.

Record format (one JSON object per line)::

    {"name": ..., "key": ..., "sha256": ..., "blob": <base64 pickle>}

``key`` is the caller's content address for the unit (for ``run_all``:
the experiment key, which folds in :data:`repro.cache.CODE_SALT` — so a
journal written by older numerics can never resurface stale results).
``sha256`` covers the pickled payload; a line truncated by the crash
that the journal exists to survive, or otherwise corrupted, fails JSON
parsing or the checksum and is skipped on load rather than poisoning
the resume.

The journal location is the ``REPRO_CHECKPOINT_DIR`` environment
variable or an explicit directory/file path; when neither is set,
journaling is off and callers behave exactly as before.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Any

__all__ = ["CHECKPOINT_ENV", "CheckpointJournal"]

#: Environment variable naming the journal directory (unset: no journal).
CHECKPOINT_ENV = "REPRO_CHECKPOINT_DIR"


class CheckpointJournal:
    """Append-only JSONL journal of completed work units."""

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        #: Lines skipped by the last :meth:`load` (truncated / corrupted).
        self.skipped_lines = 0

    # ------------------------------------------------------------------
    @classmethod
    def resolve(
        cls,
        target: "str | os.PathLike | CheckpointJournal | None" = None,
        name: str = "run_all",
    ) -> "CheckpointJournal | None":
        """The journal for *target*, or ``None`` when journaling is off.

        *target* may be an existing journal (returned as-is), a ``.jsonl``
        file path, or a directory (the journal becomes
        ``<dir>/<name>.jsonl``). With no target, ``REPRO_CHECKPOINT_DIR``
        is consulted; unset means no journaling.
        """
        if isinstance(target, CheckpointJournal):
            return target
        root = str(target) if target is not None else ""
        if not root:
            root = os.environ.get(CHECKPOINT_ENV, "").strip()
        if not root:
            return None
        path = Path(root)
        if path.suffix == ".jsonl":
            return cls(path)
        return cls(path / f"{name}.jsonl")

    # ------------------------------------------------------------------
    def append(self, name: str, key: str, value: Any) -> None:
        """Durably record one completed unit (flushed + fsynced).

        Missing parent directories are created on the way (a journal
        pointed at a fresh ``REPRO_CHECKPOINT_DIR`` must not require a
        separate mkdir step); the first append after the file is created
        also fsyncs the directory entry so the journal *name* survives a
        crash, not just its bytes.
        """
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        record = {
            "name": name,
            "key": key,
            "sha256": hashlib.sha256(blob).hexdigest(),
            "blob": base64.b64encode(blob).decode("ascii"),
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        created = not self.path.exists()
        with open(self.path, "a", encoding="ascii") as fh:
            fh.write(json.dumps(record, separators=(",", ":")) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        if created:
            self._fsync_dir()

    def rotate(self) -> "Path | None":
        """Retire the current journal to a numbered sibling.

        The live file is renamed to the first free
        ``<name>.jsonl.<n>`` (n = 1, 2, ...) and the *directory entry* is
        fsynced afterwards, so the rename itself is durable — a crash
        right after rotation cannot resurrect the old name with torn
        contents. Missing parent directories are created first (rotating
        a journal that was configured but never written is a no-op
        returning ``None``).
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if not self.path.exists():
            return None
        n = 1
        while (target := self.path.with_name(f"{self.path.name}.{n}")).exists():
            n += 1
        os.replace(self.path, target)
        self._fsync_dir()
        return target

    def _fsync_dir(self) -> None:
        """Flush the parent directory entry (rename/create durability)."""
        try:
            fd = os.open(self.path.parent, os.O_RDONLY)
        except OSError:  # pragma: no cover - e.g. non-POSIX directory fd
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def load(self) -> dict[str, tuple[str, Any]]:
        """All valid journal entries as ``{name: (key, value)}``.

        Later entries for a name win (a re-run appends fresh results).
        Unparseable or checksum-failing lines — the torn tail of a kill
        mid-append, bit rot — are counted in :attr:`skipped_lines` and
        skipped; resume never trusts a record it cannot verify.
        """
        self.skipped_lines = 0
        entries: dict[str, tuple[str, Any]] = {}
        if not self.path.is_file():
            return entries
        try:
            text = self.path.read_text(encoding="ascii", errors="replace")
        except OSError:
            return entries
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                blob = base64.b64decode(record["blob"], validate=True)
                if hashlib.sha256(blob).hexdigest() != record["sha256"]:
                    raise ValueError("payload checksum mismatch")
                value = pickle.loads(blob)
                name, key = record["name"], record["key"]
            except Exception:
                self.skipped_lines += 1
                continue
            entries[str(name)] = (str(key), value)
        return entries

    def clear(self) -> None:
        """Delete the journal file (no-op when absent)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CheckpointJournal({str(self.path)!r})"
