"""Content-addressed result cache for experiments and studies.

Repeated ``run_all`` sweeps and report renders recompute byte-identical
results: every experiment is a pure function of its configuration, the
operands are seeded, and the functional models are deterministic. This
module memoises those results behind a stable content address so a
second sweep in the same process (or, opted in, across processes) is
near-free.

Keys are a SHA-256 digest over a canonical encoding of

* the target's qualified name (``module.qualname``),
* a code-version salt (:data:`CODE_SALT` — bump it whenever numerics
  change so stale entries can never resurface), and
* the call's configuration/operands (ints, floats, strings, ndarrays,
  enums, callables-by-name, and containers thereof).

Storage is two-layer: an in-memory LRU always on, plus an opt-in
on-disk layer rooted at ``REPRO_CACHE_DIR``. Entries are stored
*pickled* and unpickled per hit, so callers can mutate what they get
back without corrupting the cache. ``REPRO_CACHE=0`` (CLI: an explicit
``use_cache=False`` / ``--no-cache``) bypasses every layer; the cold
path is bit-identical because cached values were produced by exactly
the code that would otherwise run.
"""

from __future__ import annotations

import functools
import hashlib
import inspect
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from enum import Enum
from pathlib import Path
from typing import Any, Callable

import numpy as np

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_ENV",
    "CODE_SALT",
    "cache_enabled",
    "stable_digest",
    "ResultCache",
    "DEFAULT_CACHE",
    "memoize",
]

#: Environment variable naming the on-disk cache root (unset: memory only).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable gating the whole cache (``0``/``false``/``off``).
CACHE_ENV = "REPRO_CACHE"

#: Version salt folded into every key. Bump on numerics-affecting changes.
CODE_SALT = "repro-cache-v1"

_MISS = object()


def cache_enabled() -> bool:
    """Whether caching is globally enabled (the ``REPRO_CACHE`` gate)."""
    return os.environ.get(CACHE_ENV, "").strip().lower() not in ("0", "false", "off")


# ----------------------------------------------------------------------
# Stable content addressing
# ----------------------------------------------------------------------
def _feed(h: "hashlib._Hash", obj: Any) -> None:
    """Canonical type-tagged encoding of *obj* into hash *h*.

    Tags prevent cross-type collisions (``1`` vs ``1.0`` vs ``"1"``);
    containers encode length + elements; dict/set entries are sorted by
    their own digests so insertion order is irrelevant.
    """
    if obj is None:
        h.update(b"N")
    elif isinstance(obj, bool):
        h.update(b"b1" if obj else b"b0")
    elif isinstance(obj, int):
        raw = obj.to_bytes((obj.bit_length() + 15) // 8 + 1, "little", signed=True)
        h.update(b"i%d:" % len(raw) + raw)
    elif isinstance(obj, float):
        h.update(b"f" + np.float64(obj).tobytes())
    elif isinstance(obj, complex):
        h.update(b"c" + np.complex128(obj).tobytes())
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        h.update(b"s%d:" % len(raw) + raw)
    elif isinstance(obj, (bytes, bytearray)):
        h.update(b"y%d:" % len(obj) + bytes(obj))
    elif isinstance(obj, np.ndarray):
        h.update(b"a" + obj.dtype.str.encode("ascii"))
        _feed(h, obj.shape)
        h.update(np.ascontiguousarray(obj).tobytes())
    elif isinstance(obj, np.generic):
        h.update(b"g" + obj.dtype.str.encode("ascii") + obj.tobytes())
    elif isinstance(obj, Enum):
        _feed(h, (type(obj).__qualname__, obj.name))
    elif isinstance(obj, (tuple, list)):
        h.update(b"T" if isinstance(obj, tuple) else b"L")
        h.update(b"%d:" % len(obj))
        for el in obj:
            _feed(h, el)
    elif isinstance(obj, (dict, set, frozenset)):
        entries = obj.items() if isinstance(obj, dict) else ((e,) for e in obj)
        digests = sorted(stable_digest(*entry) for entry in entries)
        h.update(b"D%d:" % len(digests))
        for d in digests:
            h.update(d.encode("ascii"))
    elif callable(obj):
        name = f"{getattr(obj, '__module__', '?')}.{getattr(obj, '__qualname__', repr(obj))}"
        h.update(b"F")
        _feed(h, name)
    else:
        # Last resort: type-qualified pickle. Deterministic for the
        # plain dataclasses/config objects that reach the cache.
        h.update(b"P")
        _feed(h, type(obj).__qualname__)
        h.update(pickle.dumps(obj, protocol=4))


def stable_digest(*objs: Any) -> str:
    """Hex SHA-256 of the canonical encoding of *objs*."""
    h = hashlib.sha256()
    for obj in objs:
        _feed(h, obj)
    return h.hexdigest()


# ----------------------------------------------------------------------
# The cache proper
# ----------------------------------------------------------------------
class ResultCache:
    """Two-layer (memory LRU + optional disk) pickled-value store."""

    def __init__(self, maxsize: int = 256, directory: str | os.PathLike | None = None):
        self.maxsize = maxsize
        self.directory = directory
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        #: Disk writes that landed on an already-existing entry — i.e. a
        #: concurrent (or earlier) writer stored the same key. The
        #: tmp-file + ``os.replace`` protocol makes each such collision
        #: harmless: a reader sees either the old complete pickle or the
        #: new complete pickle, never a torn mixture.
        self.collisions = 0
        self._mem: OrderedDict[str, bytes] = OrderedDict()
        self._lock = threading.Lock()

    def _disk_dir(self) -> Path | None:
        root = self.directory or os.environ.get(CACHE_DIR_ENV, "").strip()
        return Path(root) if root else None

    def _disk_path(self, key: str) -> Path | None:
        root = self._disk_dir()
        return root / f"{key}.pkl" if root else None

    def get(self, key: str, default: Any = None) -> Any:
        """The cached value for *key* (unpickled fresh), else *default*.

        A corrupted entry — a disk file truncated by a crash mid-write on
        a non-atomic filesystem, bit rot, or a stale pickle referencing a
        class that no longer unpickles — is treated as a miss: the bad
        bytes are evicted (memory entry dropped, disk file unlinked) so
        the value is recomputed and re-stored cleanly instead of the
        same poisoned blob crashing every future read.
        """
        from_disk = False
        with self._lock:
            blob = self._mem.get(key)
            if blob is not None:
                self._mem.move_to_end(key)
        path = self._disk_path(key)
        if blob is None and path is not None and path.is_file():
            try:
                blob = path.read_bytes()
                from_disk = True
            except OSError:
                blob = None
        if blob is None:
            self.misses += 1
            return default
        try:
            value = pickle.loads(blob)
        except (
            pickle.UnpicklingError,
            EOFError,
            ValueError,
            IndexError,
            KeyError,
            AttributeError,
            ImportError,
            TypeError,
            MemoryError,
        ):
            self.corrupt += 1
            self.misses += 1
            with self._lock:
                self._mem.pop(key, None)
            if from_disk and path is not None:
                try:
                    path.unlink()
                except OSError:
                    pass
            return default
        if from_disk:
            self._remember(key, blob)
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Store *value* under *key* in memory and (if configured) disk."""
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        self._remember(key, blob)
        path = self._disk_path(key)
        if path is not None:
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
                with os.fdopen(fd, "wb") as fh:
                    fh.write(blob)
                if path.exists():
                    # Another writer (process or thread) beat us to this
                    # key; the atomic replace below prevents any reader
                    # from ever seeing a torn mixture of the two writes.
                    with self._lock:
                        self.collisions += 1
                os.replace(tmp, path)  # atomic: readers never see partials
            except OSError:
                pass  # disk layer is best-effort

    def _remember(self, key: str, blob: bytes) -> None:
        with self._lock:
            self._mem[key] = blob
            self._mem.move_to_end(key)
            while len(self._mem) > self.maxsize:
                self._mem.popitem(last=False)

    def clear(self, memory: bool = True, disk: bool = False) -> None:
        if memory:
            with self._lock:
                self._mem.clear()
            self.hits = self.misses = self.corrupt = self.collisions = 0
        if disk:
            root = self._disk_dir()
            if root is not None and root.is_dir():
                for path in root.glob("*.pkl"):
                    try:
                        path.unlink()
                    except OSError:
                        pass

    def info(self) -> dict[str, Any]:
        root = self._disk_dir()
        return {
            "entries": len(self._mem),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "collisions": self.collisions,
            "disk_dir": str(root) if root else None,
        }


#: The process-wide cache every memoised entry point shares.
DEFAULT_CACHE = ResultCache()


# ----------------------------------------------------------------------
# Memoisation decorator
# ----------------------------------------------------------------------
def memoize(
    fn: Callable | None = None,
    *,
    salt: str = "",
    ignore: tuple[str, ...] = (),
    cache: ResultCache | None = None,
) -> Callable:
    """Memoise *fn* through the content-addressed cache.

    The key covers the function's qualified name, :data:`CODE_SALT`,
    *salt*, and the bound call arguments (defaults applied) minus any
    parameter named in *ignore* — list there the knobs that cannot
    change the result, e.g. ``workers``. The wrapper grows a reserved
    ``use_cache`` keyword: ``False`` bypasses the cache for that call
    (``None`` defers to the ``REPRO_CACHE`` gate).
    """

    def deco(f: Callable) -> Callable:
        qualname = f"{f.__module__}.{f.__qualname__}"
        sig = inspect.signature(f)
        store = cache if cache is not None else DEFAULT_CACHE

        @functools.wraps(f)
        def wrapper(*args: Any, use_cache: bool | None = None, **kwargs: Any) -> Any:
            if use_cache is False or (use_cache is None and not cache_enabled()):
                return f(*args, **kwargs)
            bound = sig.bind(*args, **kwargs)
            bound.apply_defaults()
            keyed = {
                name: val
                for name, val in bound.arguments.items()
                if name not in ignore
            }
            key = stable_digest(CODE_SALT, salt, qualname, keyed)
            hit = store.get(key, _MISS)
            if hit is not _MISS:
                return hit
            out = f(*args, **kwargs)
            store.put(key, out)
            return out

        wrapper.__wrapped__ = f
        return wrapper

    return deco(fn) if fn is not None else deco
