"""Process-based parallel execution engine for the functional models (v2).

The emulation workloads are embarrassingly parallel at three natural
grains: independent matrices of a batched GEMM, independent GEMM
implementations of an accuracy sweep, and independent experiments of the
full paper report. This module provides the one executor they all share.

Work is distributed with a :class:`concurrent.futures.ProcessPoolExecutor`
(numpy releases the GIL only inside BLAS; everything else in the emulator
is Python-driven, so threads do not help). The contract every caller
relies on:

* ``workers=1`` (the default) runs serially in-process — no executor, no
  pickling, byte-identical to the pre-parallel code path.
* ``workers=N`` splits the work into deterministic, ordered chunks and
  reassembles results in submission order, so outputs are identical for
  every worker count.
* The ``REPRO_WORKERS`` environment variable overrides the default for
  callers that do not pass an explicit worker count (``0`` or a negative
  value selects ``os.cpu_count()``).

Engine v2 adds two throughput features on top of that contract, neither
of which changes a single output bit:

**Persistent worker pool.** The executor is created lazily on the first
parallel call and reused by every subsequent one, so batched GEMM loops,
``run_all`` and the accuracy sweeps stop paying process spawn + teardown
per call. :func:`shutdown` releases it explicitly (also registered with
``atexit``); a process that forks after the pool exists gets a fresh pool
of its own on first use (the inherited handle owns no worker processes).
``parallel_map(..., fresh_pool=True)`` restores the v1 pool-per-call
behaviour — kept for benchmarking the difference. Inside a pool worker,
:func:`parallel_map` always runs serially: the grains nest (``run_all``
dispatches accuracy studies that are themselves parallel callers), and
one level of process fan-out is all a machine has cores for.

**Zero-copy operand transfer.** ndarrays at or above
:data:`SHM_MIN_BYTES` (override: ``REPRO_SHM_MIN_BYTES``; ``0`` disables)
inside a work item are shipped through POSIX shared memory instead of
being pickled through the result pipes: the parent copies each array into
a :class:`multiprocessing.shared_memory.SharedMemory` segment once, the
worker maps it and hands ``fn`` an ndarray view of identical bytes. Small
payloads keep the plain pickle path. Values are byte-for-byte what the
serial path sees, so results remain bit-identical.

**Resilient execution (v3).** ``parallel_map`` optionally runs under a
:class:`~repro.resilience.failures.RetryPolicy`: a per-task wall-clock
``timeout`` (hung workers are terminated and the pool respawned), bounded
``retries`` with exponential backoff + jitter, and automatic pool respawn
when a worker dies (``BrokenProcessPool``). Tasks that still fail after
every allowed attempt surface as structured
:class:`~repro.resilience.failures.TaskFailure` records — in place of
their results with ``return_failures=True``, or carried by a single
:class:`~repro.resilience.failures.ParallelTaskError` otherwise. The
policy defaults resolve from ``REPRO_TASK_TIMEOUT`` / ``REPRO_RETRIES`` /
``REPRO_RETRY_BACKOFF`` and are inert when unset, leaving the fast paths
bit-for-bit untouched; an ``on_result`` callback observes each completed
task (index, result) as soon as it is produced, which is what the
checkpoint journal hooks into.
"""

from __future__ import annotations

import atexit
import os
import time
import warnings
from collections import deque
from concurrent.futures import CancelledError, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Callable, Iterable, Sequence, TypeVar

import numpy as np

from .resilience.failures import (
    ParallelTaskError,
    RetryPolicy,
    TaskFailure,
    resolve_policy,
)

__all__ = [
    "WORKERS_ENV",
    "SHM_ENV",
    "SHM_MIN_BYTES",
    "ARENA_ENV",
    "ARENA_MAX_BYTES",
    "resolve_workers",
    "resolve_shm_threshold",
    "resolve_arena_max_bytes",
    "split_ranges",
    "parallel_map",
    "shutdown",
    "pool_info",
    "in_worker",
    "ArenaHandle",
    "arena_publish",
    "arena_pin",
    "arena_unpin",
    "arena_fetch",
    "arena_clear",
    "arena_info",
    "arena_worker_info",
    "ParallelTaskError",
    "TaskFailure",
]

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"

#: Environment variable overriding the shared-memory size threshold.
SHM_ENV = "REPRO_SHM_MIN_BYTES"

#: Default minimum ndarray payload (bytes) routed through shared memory.
SHM_MIN_BYTES = 1 << 20

#: Environment variable bounding the operand arena (bytes; ``<= 0`` disables).
ARENA_ENV = "REPRO_ARENA_MAX_BYTES"

#: Default operand-arena byte bound — parent registry and each worker's
#: attach LRU alike. 256 MiB holds dozens of serving-sized split planes.
ARENA_MAX_BYTES = 1 << 28

_T = TypeVar("_T")
_R = TypeVar("_R")


def resolve_workers(workers: int | None = None) -> int:
    """Resolve an effective worker count.

    Explicit ``workers`` wins; otherwise ``REPRO_WORKERS`` is consulted;
    otherwise 1 (serial). ``0`` or negative values select the machine's
    CPU count. An unparseable ``REPRO_WORKERS`` value warns and falls
    back to serial.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            warnings.warn(
                f"{WORKERS_ENV}={raw!r} is not an integer; running serially",
                RuntimeWarning,
                stacklevel=2,
            )
            return 1
    if workers <= 0:
        return os.cpu_count() or 1
    return workers


def resolve_shm_threshold(threshold: int | None = None) -> int:
    """Effective shared-memory size threshold in bytes (``0`` disables).

    Explicit ``threshold`` wins; otherwise ``REPRO_SHM_MIN_BYTES`` is
    consulted; otherwise :data:`SHM_MIN_BYTES`. Negative values and
    unparseable environment overrides (after a warning) disable the
    shared-memory path entirely.
    """
    if threshold is None:
        raw = os.environ.get(SHM_ENV, "").strip()
        if not raw:
            return SHM_MIN_BYTES
        try:
            threshold = int(raw)
        except ValueError:
            warnings.warn(
                f"{SHM_ENV}={raw!r} is not an integer; shared memory disabled",
                RuntimeWarning,
                stacklevel=2,
            )
            return 0
    return max(0, threshold)


def resolve_arena_max_bytes(limit: int | None = None) -> int:
    """Effective operand-arena byte bound (``0`` disables the arena).

    Explicit ``limit`` wins; otherwise ``REPRO_ARENA_MAX_BYTES`` is
    consulted; otherwise :data:`ARENA_MAX_BYTES`. Negative values
    disable the arena; an unparseable environment override warns and
    falls back to the default, mirroring ``REPRO_WORKERS``.
    """
    if limit is None:
        raw = os.environ.get(ARENA_ENV, "").strip()
        if not raw:
            return ARENA_MAX_BYTES
        try:
            limit = int(raw)
        except ValueError:
            warnings.warn(
                f"{ARENA_ENV}={raw!r} is not an integer; using the default "
                f"({ARENA_MAX_BYTES} bytes)",
                RuntimeWarning,
                stacklevel=2,
            )
            return ARENA_MAX_BYTES
    return max(0, int(limit))


def split_ranges(n: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into at most *parts* contiguous ``(start, stop)``
    ranges of near-equal size (deterministic, order-preserving)."""
    if n <= 0:
        return []
    parts = max(1, min(parts, n))
    base, extra = divmod(n, parts)
    ranges: list[tuple[int, int]] = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


# ----------------------------------------------------------------------
# Persistent pool lifecycle
# ----------------------------------------------------------------------
_pool: ProcessPoolExecutor | None = None
_pool_workers: int = 0
_pool_pid: int = -1
_pool_spawns: int = 0

# Health counters (monotonic per process). They feed the serving layer's
# circuit breaker (:mod:`repro.serve.degrade`): a run of consecutive
# broken-pool / timeout events is the signal that the pool — not any one
# request — is sick. ``_pool_failure_streak`` counts events since the
# last successful pool round-trip; successes reset it.
_broken_events: int = 0
_timeout_events: int = 0
_task_retries: int = 0
_pool_failure_streak: int = 0


def _note_pool_event(kind: str) -> None:
    """Record one pool-health event (``"broken"`` | ``"timeout"`` |
    ``"retry"`` | ``"ok"``) in the process-wide counters."""
    global _broken_events, _timeout_events, _task_retries, _pool_failure_streak
    if kind == "broken":
        _broken_events += 1
        _pool_failure_streak += 1
    elif kind == "timeout":
        _timeout_events += 1
        _pool_failure_streak += 1
    elif kind == "retry":
        _task_retries += 1
    elif kind == "ok":
        _pool_failure_streak = 0

#: True inside a pool worker process. Nested ``parallel_map`` calls there
#: run serially: a task that fans out again (``run_all`` dispatching an
#: accuracy study which itself consults ``REPRO_WORKERS``) would otherwise
#: fork a grandchild pool from a forked worker, which deadlocks on the
#: executor queues inherited mid-operation.
_in_worker = False


def _mark_worker() -> None:
    """Executor initializer: flag this process as a pool worker."""
    global _in_worker
    _in_worker = True


def in_worker() -> bool:
    """True inside a pool worker process. Callers that would otherwise
    fan out (and publish operands to the arena) collapse to the serial
    in-process path there — nested parallelism never touches the pool or
    the arena."""
    return _in_worker


def _get_pool(n_workers: int) -> ProcessPoolExecutor:
    """The shared executor, (re)created lazily.

    A pool is discarded (without joining — the workers are not ours) when
    this process turns out to be a fork of the pool's creator, and
    replaced when a caller needs more workers than it holds. A wider pool
    serves narrower requests as-is: ``Executor.map`` output order does
    not depend on how many workers drain the queue.
    """
    global _pool, _pool_workers, _pool_pid, _pool_spawns
    if _pool is not None and _pool_pid != os.getpid():
        _pool = None
    if _pool is not None and _pool_workers < n_workers:
        _pool.shutdown(wait=True)
        _pool = None
    if _pool is None:
        # Start the shared-memory resource tracker *before* forking the
        # workers. Forked workers then inherit it, so a worker attaching
        # a segment (per-call transport or arena) registers into the
        # parent's tracker — a set-level no-op — instead of spawning a
        # private tracker that would warn about (and try to reap)
        # segments the parent still owns.
        resource_tracker.ensure_running()
        _pool = ProcessPoolExecutor(max_workers=n_workers, initializer=_mark_worker)
        _pool_workers = n_workers
        _pool_pid = os.getpid()
        _pool_spawns += 1
    return _pool


def shutdown(wait: bool = True) -> None:
    """Release the persistent pool and the operand arena (no-op when
    neither is live).

    Safe to call at any time; the next :func:`parallel_map` that needs an
    executor simply creates a fresh one, and the next publisher repopulates
    the arena. Every arena segment is unlinked — pinned or not — so a
    clean shutdown leaks nothing into ``/dev/shm``. Registered with
    ``atexit``.
    """
    global _pool
    if _pool is not None and _pool_pid == os.getpid():
        _pool.shutdown(wait=wait)
    _pool = None
    arena_clear(force=True)


atexit.register(shutdown)


def _terminate_pool() -> None:
    """Forcibly retire the persistent pool, killing its workers.

    Used by the resilient path when a task exceeds its deadline: a hung
    worker cannot be cancelled through the executor API, so its process
    is terminated outright and the executor discarded. The next
    :func:`_get_pool` call respawns a clean pool.
    """
    global _pool
    if _pool is not None and _pool_pid == os.getpid():
        pool = _pool
        _pool = None
        for proc in list(getattr(pool, "_processes", {}).values()):
            try:
                proc.terminate()
            # repro: allow[RH403] terminating an already-dead worker
            except Exception:  # pragma: no cover - already dead
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        # repro: allow[RH403] last-resort teardown of a broken executor
        except Exception:  # pragma: no cover - broken executor teardown
            pass
    else:
        _pool = None
    # Respawn boundary: retire unpinned arena segments. Pinned entries
    # (an in-flight call's operands) survive so retried tasks can still
    # attach by name from the fresh pool's workers.
    arena_clear(force=False)


def pool_info() -> dict[str, Any]:
    """Introspection for tests, benchmarks and the serving layer: pool
    liveness, width, how many executors this process has created, and the
    health counters (broken-pool events, per-task timeouts, retries, and
    the consecutive-failure streak since the last healthy round-trip)."""
    alive = _pool is not None and _pool_pid == os.getpid()
    return {
        "alive": alive,
        "workers": _pool_workers if alive else 0,
        "spawns": _pool_spawns,
        "broken_events": _broken_events,
        "timeout_events": _timeout_events,
        "task_retries": _task_retries,
        "failure_streak": _pool_failure_streak,
        "arena": arena_info(),
    }


# ----------------------------------------------------------------------
# Zero-copy operand transfer
# ----------------------------------------------------------------------
class _ShmRef:
    """Pickle-friendly handle to an ndarray parked in shared memory."""

    __slots__ = ("name", "shape", "dtype_str")

    def __init__(self, name: str, shape: tuple[int, ...], dtype_str: str):
        self.name = name
        self.shape = shape
        self.dtype_str = dtype_str

    def __getstate__(self) -> tuple[str, tuple[int, ...], str]:
        return (self.name, self.shape, self.dtype_str)

    def __setstate__(self, state: tuple[str, tuple[int, ...], str]) -> None:
        self.name, self.shape, self.dtype_str = state


def _attach_readonly(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment without adopting ownership of it.

    The parent creates and unlinks every segment. On Python >= 3.13
    ``track=False`` keeps the attach out of resource tracking entirely.
    Older versions register on attach — but pool workers share the
    parent's resource-tracker process, where the name is already
    registered, so the duplicate add is a no-op and the parent's
    ``unlink`` retires the registration exactly once. (Unregistering by
    hand here would strip the *parent's* entry and make that unlink
    KeyError inside the tracker.)
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track= parameter
        return shared_memory.SharedMemory(name=name)


def _encode_item(obj: Any, threshold: int, segments: list) -> Any:
    """Replace large ndarrays in *obj* with shared-memory refs.

    Walks tuples/lists/dicts; anything else passes through to pickle.
    Created segments are appended to *segments* for the caller to
    release once results are in.
    """
    if (
        isinstance(obj, np.ndarray)
        and obj.dtype != object
        and obj.nbytes >= threshold
    ):
        seg = shared_memory.SharedMemory(create=True, size=obj.nbytes)
        np.ndarray(obj.shape, dtype=obj.dtype, buffer=seg.buf)[...] = obj
        segments.append(seg)
        return _ShmRef(seg.name, obj.shape, obj.dtype.str)
    if isinstance(obj, tuple):
        return tuple(_encode_item(o, threshold, segments) for o in obj)
    if isinstance(obj, list):
        return [_encode_item(o, threshold, segments) for o in obj]
    if isinstance(obj, dict):
        return {k: _encode_item(v, threshold, segments) for k, v in obj.items()}
    return obj


def _decode_item(obj: Any, attached: list) -> Any:
    """Inverse of :func:`_encode_item`, mapping refs to ndarray views."""
    if isinstance(obj, _ShmRef):
        seg = _attach_readonly(obj.name)
        attached.append(seg)
        return np.ndarray(obj.shape, dtype=np.dtype(obj.dtype_str), buffer=seg.buf)
    if isinstance(obj, tuple):
        return tuple(_decode_item(o, attached) for o in obj)
    if isinstance(obj, list):
        return [_decode_item(o, attached) for o in obj]
    if isinstance(obj, dict):
        return {k: _decode_item(v, attached) for k, v in obj.items()}
    return obj


def _detach_result(obj: Any, attached: list) -> Any:
    """Copy any part of a result that aliases a mapped segment.

    The segment is unmapped before the result is pickled back, so a
    view escaping through the return value must be materialised first.
    """
    if isinstance(obj, np.ndarray):
        views = [
            np.ndarray(seg.size, dtype=np.uint8, buffer=seg.buf) for seg in attached
        ]
        if any(np.shares_memory(obj, v) for v in views):
            return obj.copy()
        return obj
    if isinstance(obj, tuple):
        return tuple(_detach_result(o, attached) for o in obj)
    if isinstance(obj, list):
        return [_detach_result(o, attached) for o in obj]
    if isinstance(obj, dict):
        return {k: _detach_result(v, attached) for k, v in obj.items()}
    return obj


class _ShmTask:
    """Worker-side callable: decode the item, run ``fn``, unmap."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable):
        self.fn = fn

    def __call__(self, item: Any) -> Any:
        attached: list = []
        try:
            out = self.fn(_decode_item(item, attached))
            return _detach_result(out, attached)
        finally:
            for seg in attached:
                seg.close()


def _release(segments: list) -> None:
    for seg in segments:
        seg.close()
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already reaped
            pass


# ----------------------------------------------------------------------
# Operand arena: content-addressed shared-memory segments
# ----------------------------------------------------------------------
# The per-call transport above copies every large operand into a fresh
# segment per parallel_map invocation. The arena is the complement for
# operands that *recur* — a serving weight matrix, the repeated A of a
# batched sweep: the parent publishes the operand's pre-split planes
# once under their content digest, task payloads carry a pickled
# :class:`ArenaHandle` (a name plus a plane manifest) instead of arrays,
# and each worker keeps a digest -> segment LRU so a repeated operand is
# mapped once per worker, not copied once per task.
#
# Ownership is the transport's parent-creates/parent-unlinks discipline:
# entries are refcounted (publishers pin around their parallel_map),
# evicted only at refcount zero when the byte bound needs the room,
# unlinked wholesale on :func:`shutdown` and (unpinned only) on a pool
# respawn. Content addressing makes stale worker mappings harmless: the
# same digest always names the same bytes, and a segment stays mapped
# (POSIX keeps unlinked memory alive) until the worker LRU drops it.


class ArenaHandle:
    """Pickle-friendly content address of planes parked in the arena.

    ``planes`` maps the segment layout: ``(name, shape, dtype str,
    byte offset)`` per plane, offsets 64-byte aligned.
    """

    __slots__ = ("key", "name", "planes")

    def __init__(
        self,
        key: str,
        name: str,
        planes: tuple[tuple[str, tuple[int, ...], str, int], ...],
    ):
        self.key = key
        self.name = name
        self.planes = planes

    def __getstate__(self) -> tuple:
        return (self.key, self.name, self.planes)

    def __setstate__(self, state: tuple) -> None:
        self.key, self.name, self.planes = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArenaHandle({self.key!r}, {self.name!r}, {len(self.planes)} planes)"


class _ArenaEntry:
    __slots__ = ("seg", "handle", "nbytes", "refs")

    def __init__(
        self, seg: shared_memory.SharedMemory, handle: ArenaHandle, nbytes: int
    ):
        self.seg = seg
        self.handle = handle
        self.nbytes = nbytes
        self.refs = 0


# Parent-side registry (publisher process). Keyed by content digest;
# insertion order is the LRU order.
_arena: "dict[str, _ArenaEntry]" = {}
_arena_pid: int = -1
_arena_bytes: int = 0
_arena_publishes: int = 0
_arena_reuses: int = 0
_arena_evictions: int = 0
_arena_unlinks: int = 0

# Worker-side attach LRU (per process).
_worker_arena: "dict[str, tuple[shared_memory.SharedMemory, dict[str, np.ndarray], int]]" = {}
_worker_arena_bytes: int = 0
_worker_attaches: int = 0
_worker_hits: int = 0
_worker_evictions: int = 0


def _arena_reset_if_forked() -> None:
    """Drop a registry inherited across a fork without unlinking.

    The segments belong to the forking parent — it unlinks them; the
    child merely forgets its references and starts an arena of its own.
    """
    global _arena_pid, _arena_bytes  # repro: allow[FS304] fork-local reset by design
    if _arena_pid != os.getpid():
        _arena.clear()  # repro: allow[FS304] child forgets the parent's refs
        _arena_bytes = 0
        _arena_pid = os.getpid()


def _arena_views(
    seg: shared_memory.SharedMemory, handle: ArenaHandle
) -> dict[str, np.ndarray]:
    """Read-only ndarray views of one segment's planes."""
    out: dict[str, np.ndarray] = {}
    for name, shape, dtype_str, offset in handle.planes:
        arr = np.ndarray(
            shape, dtype=np.dtype(dtype_str), buffer=seg.buf, offset=offset
        )
        arr.flags.writeable = False
        out[name] = arr
    return out


def _arena_drop(key: str, unlink: bool) -> None:
    global _arena_bytes, _arena_unlinks  # repro: allow[FS304] parent-side only
    entry = _arena.pop(key)  # repro: allow[FS304] parent-side registry
    _arena_bytes -= entry.nbytes
    entry.seg.close()
    if unlink:
        try:
            entry.seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already reaped
            pass
        _arena_unlinks += 1


def arena_publish(key: str, planes: dict[str, np.ndarray]) -> ArenaHandle | None:
    """Publish *planes* once under content address *key*.

    Returns the (existing or new) :class:`ArenaHandle`, or ``None`` when
    the arena is disabled (``REPRO_ARENA_MAX_BYTES <= 0``), the planes
    exceed the whole byte bound, or the caller is a pool worker (nested
    calls never touch the arena) — callers fall back to shipping arrays.
    Publishing evicts least-recently-used unpinned entries as needed.
    """
    # repro: allow[FS304] worker-guarded: the _in_worker test below
    # returns before any mutation when called from a pool worker.
    global _arena_bytes, _arena_publishes, _arena_reuses, _arena_evictions
    limit = resolve_arena_max_bytes()
    if limit <= 0 or _in_worker:
        return None
    _arena_reset_if_forked()
    entry = _arena.get(key)
    if entry is not None:
        # Re-insertion refreshes LRU position (parent-side only).
        _arena.pop(key)  # repro: allow[FS304] worker-guarded
        _arena[key] = entry  # repro: allow[FS304] worker-guarded
        _arena_reuses += 1
        return entry.handle

    layout: list[tuple[str, np.ndarray, int]] = []
    offset = 0
    for name, arr in planes.items():
        arr = np.ascontiguousarray(arr)
        layout.append((name, arr, offset))
        offset += -(-arr.nbytes // 64) * 64
    total = max(offset, 1)
    if total > limit:
        return None
    for old_key in [
        k for k, e in _arena.items() if e.refs <= 0
    ]:
        if _arena_bytes + total <= limit:
            break
        _arena_drop(old_key, unlink=True)
        _arena_evictions += 1
    if _arena_bytes + total > limit:
        # Pinned entries hold the remaining bytes: the bound is hard, so
        # the caller falls back to shipping arrays for this dispatch.
        return None
    seg = shared_memory.SharedMemory(create=True, size=total)
    for name, arr, off in layout:
        np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf, offset=off)[...] = arr
    handle = ArenaHandle(
        key, seg.name, tuple((n, a.shape, a.dtype.str, o) for n, a, o in layout)
    )
    _arena[key] = _ArenaEntry(seg, handle, total)  # repro: allow[FS304] worker-guarded
    _arena_bytes += total
    _arena_publishes += 1
    return handle


def arena_pin(handle: ArenaHandle) -> None:
    """Guard *handle*'s segment against eviction (publisher-side).

    Publishers pin around the ``parallel_map`` that ships the handle and
    unpin in a ``finally`` — a pinned entry survives pool respawns and
    byte-bound pressure, so retried tasks can always re-attach.
    """
    if _arena_pid == os.getpid():
        entry = _arena.get(handle.key)
        if entry is not None:
            entry.refs += 1


def arena_unpin(handle: ArenaHandle) -> None:
    """Release one :func:`arena_pin` on *handle*."""
    if _arena_pid == os.getpid():
        entry = _arena.get(handle.key)
        if entry is not None and entry.refs > 0:
            entry.refs -= 1


def arena_fetch(handle: ArenaHandle) -> dict[str, np.ndarray]:
    """Resolve *handle* to read-only plane views of identical bytes.

    In the publisher process this reads the registry directly (no extra
    mapping); in a pool worker it attaches the named segment lazily and
    caches the mapping in the per-process LRU, evicting older segments
    past ``REPRO_ARENA_MAX_BYTES``. Raises ``KeyError`` for an unlinked
    (stale) handle — the resilient path retries after a republish.
    """
    if _in_worker:
        return _worker_fetch(handle)
    _arena_reset_if_forked()
    entry = _arena.get(handle.key)
    if entry is None:
        raise KeyError(f"arena entry {handle.key!r} is not published")
    _arena.pop(handle.key)  # repro: allow[FS304] parent branch: LRU refresh
    _arena[handle.key] = entry  # repro: allow[FS304] parent branch: LRU refresh
    return _arena_views(entry.seg, handle)


def _worker_fetch(handle: ArenaHandle) -> dict[str, np.ndarray]:
    # repro: allow[FS304] per-worker attach LRU by design: a miss
    # re-attaches the same published bytes, so every view is identical
    # at every worker count — only the attach/hit counters diverge.
    global _worker_arena_bytes, _worker_attaches, _worker_hits, _worker_evictions
    hit = _worker_arena.get(handle.key)
    if hit is not None:
        _worker_arena.pop(handle.key)  # repro: allow[FS304] worker-local LRU
        _worker_arena[handle.key] = hit  # repro: allow[FS304] worker-local LRU
        _worker_hits += 1
        return hit[1]
    seg = _attach_readonly(handle.name)
    views = _arena_views(seg, handle)
    _worker_arena[handle.key] = (seg, views, seg.size)  # repro: allow[FS304] worker-local LRU
    _worker_arena_bytes += seg.size
    _worker_attaches += 1
    limit = resolve_arena_max_bytes()
    # Never evict the segment just fetched: its views are live for the
    # duration of the current task, and closing a mapped segment would
    # invalidate them mid-chain.
    for key in [k for k in _worker_arena if k != handle.key]:
        if _worker_arena_bytes <= limit:
            break
        old_seg, _, old_bytes = _worker_arena.pop(key)  # repro: allow[FS304] worker-local LRU
        _worker_arena_bytes -= old_bytes
        old_seg.close()
        _worker_evictions += 1
    return views


def arena_clear(force: bool = False) -> None:
    """Unlink arena segments (all of them with ``force``, else only the
    unpinned). Worker-side mappings stay valid until their LRU drops
    them — POSIX keeps unlinked segments alive while mapped."""
    global _arena_bytes
    if _arena_pid != os.getpid():
        # Forked copy: the references are not ours to unlink.
        _arena.clear()
        _arena_bytes = 0
        return
    for key in list(_arena):
        if force or _arena[key].refs <= 0:
            _arena_drop(key, unlink=True)


def arena_info() -> dict[str, Any]:
    """Publisher-side arena introspection (also in ``pool_info()``)."""
    live = _arena_pid == os.getpid()
    return {
        "entries": len(_arena) if live else 0,
        "bytes": _arena_bytes if live else 0,
        "pinned": sum(1 for e in _arena.values() if e.refs > 0) if live else 0,
        "segments": sorted(e.handle.name for e in _arena.values()) if live else [],
        "limit": resolve_arena_max_bytes(),
        "publishes": _arena_publishes,
        "reuses": _arena_reuses,
        "evictions": _arena_evictions,
        "unlinks": _arena_unlinks,
    }


def arena_worker_info() -> dict[str, Any]:
    """This process's attach-side counters (meaningful inside workers;
    ship it through ``parallel_map`` to probe the pool)."""
    return {
        "in_worker": _in_worker,
        "entries": len(_worker_arena),
        "bytes": _worker_arena_bytes,
        "attaches": _worker_attaches,
        "hits": _worker_hits,
        "evictions": _worker_evictions,
    }


def _arena_probe(_item: Any) -> dict[str, Any]:
    """Module-level (pickleable) task fn returning the executing
    process's :func:`arena_worker_info` — test/benchmark support."""
    return arena_worker_info()


# ----------------------------------------------------------------------
# Failure bookkeeping
# ----------------------------------------------------------------------
def _annotate(exc: BaseException, index: int) -> None:
    """Name the failing task on the exception (PEP 678 note) so a raise
    escaping ``parallel_map`` identifies *which* item is responsible
    without wrapping — the original exception type must survive."""
    add_note = getattr(exc, "add_note", None)
    if add_note is not None:
        try:
            add_note(f"[repro.parallel] task {index} failed in parallel_map")
        except TypeError:  # pragma: no cover - exotic exception classes
            pass


def _serial_plain(
    fn: Callable[[_T], _R],
    work: Sequence[_T],
    on_result: Callable[[int, Any], None] | None,
) -> list[_R]:
    """The pre-resilience serial path, plus annotation + streaming."""
    results: list[_R] = []
    for i, item in enumerate(work):
        try:
            out = fn(item)
        except Exception as exc:
            _annotate(exc, i)
            raise
        results.append(out)
        if on_result is not None:
            on_result(i, out)
    return results


def _serial_resilient(
    fn: Callable[[_T], _R],
    work: Sequence[_T],
    policy: RetryPolicy,
    on_result: Callable[[int, Any], None] | None,
    return_failures: bool,
) -> list[Any]:
    """In-process retry loop (used at ``workers=1`` and inside pool
    workers, where a wall-clock deadline cannot be enforced)."""
    results: list[Any] = [None] * len(work)
    failures: list[TaskFailure] = []
    rng = policy.jitter_rng()
    for i, item in enumerate(work):
        attempt = 0
        while True:
            attempt += 1
            try:
                out = fn(item)
            except Exception as exc:
                if attempt <= policy.retries:
                    time.sleep(policy.delay(attempt, rng))
                    continue
                _annotate(exc, i)
                failure = TaskFailure.from_exception(i, attempt, exc)
                if return_failures:
                    results[i] = failure
                    failures.append(failure)
                    break
                raise ParallelTaskError([failure]) from exc
            results[i] = out
            if on_result is not None:
                on_result(i, out)
            break
    return results


def _resilient_map(
    call: Callable[[Any], Any],
    payload: Sequence[Any],
    n_workers: int,
    policy: RetryPolicy,
    on_result: Callable[[int, Any], None] | None,
    return_failures: bool,
) -> list[Any]:
    """Pool execution with per-task deadline, retry, and pool respawn.

    Work is dispatched in rounds of at most ``n_workers`` single-task
    submissions, so every task in a round starts (almost) immediately and
    one ``wait(timeout)`` bounds each task's wall clock. A round that
    times out terminates the hung workers and respawns the pool; a worker
    death (``BrokenProcessPool``) likewise retires the executor. Either
    way the affected tasks are retried until their attempt budget runs
    out, then recorded as :class:`TaskFailure`.
    """
    n = len(payload)
    results: list[Any] = [None] * n
    attempts = [0] * n
    failures: dict[int, TaskFailure] = {}
    queue: deque[int] = deque(range(n))
    retry_delay: dict[int, float] = {}
    rng = policy.jitter_rng()

    def account(index: int, cause: str, exc: BaseException | None) -> None:
        attempts[index] += 1
        if cause == "broken-pool":
            _note_pool_event("broken")
        elif cause == "timeout":
            _note_pool_event("timeout")
        if attempts[index] <= policy.retries:
            _note_pool_event("retry")
            queue.append(index)
            retry_delay[index] = policy.delay(attempts[index], rng)
        elif exc is not None:
            failures[index] = TaskFailure.from_exception(index, attempts[index], exc)
        else:
            failures[index] = TaskFailure(
                index=index, attempts=attempts[index], cause=cause
            )

    while queue:
        batch = [queue.popleft() for _ in range(min(len(queue), n_workers))]
        pause = max((retry_delay.pop(i, 0.0) for i in batch), default=0.0)
        if pause > 0.0:
            time.sleep(pause)
        pool_broken = False
        futures: dict[Any, int] = {}
        try:
            pool = _get_pool(n_workers)
            for i in batch:
                futures[pool.submit(call, payload[i])] = i
        except BrokenProcessPool:
            pool_broken = True
            submitted = set(futures.values())
            for i in batch:
                if i not in submitted:
                    account(i, "broken-pool", None)
        finished, hung = wait(futures, timeout=policy.timeout)
        for future in finished:
            i = futures[future]
            try:
                out = future.result()
            except (BrokenProcessPool, CancelledError):
                pool_broken = True
                account(i, "broken-pool", None)
            except Exception as exc:
                account(i, "exception", exc)
            else:
                results[i] = out
                _note_pool_event("ok")
                if on_result is not None:
                    on_result(i, out)
        if hung:
            # Deadline exceeded: the workers running these tasks are
            # stuck in user code and cannot be cancelled — kill them.
            for future in hung:
                account(futures[future], "timeout", None)
            _terminate_pool()
        elif pool_broken:
            _terminate_pool()

    if failures:
        ordered = [failures[i] for i in sorted(failures)]
        if not return_failures:
            raise ParallelTaskError(ordered)
        for failure in ordered:
            results[failure.index] = failure
    return results


# ----------------------------------------------------------------------
# The one entry point
# ----------------------------------------------------------------------
def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
    shm_threshold: int | None = None,
    fresh_pool: bool = False,
    timeout: float | None = None,
    retries: int | None = None,
    backoff: float | None = None,
    return_failures: bool = False,
    on_result: Callable[[int, Any], None] | None = None,
) -> list[_R]:
    """Map *fn* over *items*, preserving order.

    Serial for ``workers <= 1`` (or a single item), and always serial
    when called from inside a pool worker — nested parallelism collapses
    to the (bit-identical) serial path instead of forking pools from
    forked workers. Otherwise fans out over the persistent process pool
    with chunked work units. *fn* and
    the items must be picklable in the parallel case (module-level
    functions and plain data/numpy arrays are). ndarrays of at least
    *shm_threshold* bytes (default :func:`resolve_shm_threshold`) travel
    via shared memory instead of pickle; ``fresh_pool=True`` forces a
    private single-use executor (the v1 engine, kept for comparison).

    Resilience (all optional; defaults resolve from the environment and
    are inert when unset — see :func:`repro.resilience.resolve_policy`):

    ``timeout``
        Per-task wall-clock budget in seconds. Enforced through the
        process pool (hung workers are terminated, the pool respawned),
        so a timeout routes execution through the pool even at
        ``workers=1``. Not enforceable inside a nested (in-worker) call.
    ``retries``
        Extra attempts per failed/timed-out/pool-crashed task, with
        exponential backoff + jitter between rounds.
    ``return_failures``
        Return terminal :class:`TaskFailure` records in place of the
        failed tasks' results instead of raising
        :class:`ParallelTaskError`.
    ``on_result``
        ``on_result(index, result)`` observes every completed task as
        soon as its result is available (the checkpoint journal hook).

    When the resolved policy is active, work is dispatched one task per
    submission (no chunking) so failures are attributed to exact items;
    the inert-policy fast paths are unchanged down to the last bit.
    """
    work: Sequence[_T] = list(items)
    if not work:
        return []
    n_workers = resolve_workers(workers)
    policy = resolve_policy(timeout, retries, backoff)
    resilient = policy.active or return_failures

    if _in_worker:
        if resilient:
            return _serial_resilient(fn, work, policy, on_result, return_failures)
        return _serial_plain(fn, work, on_result)
    if not resilient and (n_workers <= 1 or len(work) <= 1):
        return _serial_plain(fn, work, on_result)
    if resilient and policy.timeout is None and (n_workers <= 1 or len(work) <= 1):
        return _serial_resilient(fn, work, policy, on_result, return_failures)
    n_workers = max(1, min(n_workers, len(work)))
    if chunk_size is None:
        # ~4 chunks per worker bounds both scheduling overhead and tail
        # imbalance without tuning per workload.
        chunk_size = max(1, -(-len(work) // (n_workers * 4)))

    threshold = resolve_shm_threshold(shm_threshold)
    segments: list = []
    payload: Sequence[Any] = work
    call: Callable[[Any], _R] = fn
    try:
        if threshold > 0:
            encoded = [_encode_item(item, threshold, segments) for item in work]
            if segments:  # only wrap when something actually moved to shm
                payload, call = encoded, _ShmTask(fn)
        if resilient:
            return _resilient_map(
                call, payload, n_workers, policy, on_result, return_failures
            )
        if fresh_pool:
            resource_tracker.ensure_running()
            with ProcessPoolExecutor(
                max_workers=n_workers, initializer=_mark_worker
            ) as pool:
                return _drain(pool.map(call, payload, chunksize=chunk_size), on_result)
        try:
            pool = _get_pool(n_workers)
            out = _drain(pool.map(call, payload, chunksize=chunk_size), on_result)
            _note_pool_event("ok")
            return out
        except BrokenProcessPool:
            # A dead worker poisons the whole executor: drop it so the
            # next call starts from a clean pool, then let callers see
            # the failure.
            _note_pool_event("broken")
            shutdown(wait=False)
            raise
    finally:
        _release(segments)


def _drain(
    result_iter: Iterable[_R], on_result: Callable[[int, Any], None] | None
) -> list[_R]:
    """Collect ``Executor.map`` output in order, streaming to *on_result*
    and naming the failing task when the iterator raises."""
    results: list[_R] = []
    try:
        for out in result_iter:
            results.append(out)
            if on_result is not None:
                on_result(len(results) - 1, out)
    except BrokenProcessPool:
        raise
    except Exception as exc:
        _annotate(exc, len(results))
        raise
    return results
