"""Process-based parallel execution engine for the functional models.

The emulation workloads are embarrassingly parallel at three natural
grains: independent matrices of a batched GEMM, independent GEMM
implementations of an accuracy sweep, and independent experiments of the
full paper report. This module provides the one executor they all share.

Work is distributed with a :class:`concurrent.futures.ProcessPoolExecutor`
(numpy releases the GIL only inside BLAS; everything else in the emulator
is Python-driven, so threads do not help). The contract every caller
relies on:

* ``workers=1`` (the default) runs serially in-process — no executor, no
  pickling, byte-identical to the pre-parallel code path.
* ``workers=N`` splits the work into deterministic, ordered chunks and
  reassembles results in submission order, so outputs are identical for
  every worker count.
* The ``REPRO_WORKERS`` environment variable overrides the default for
  callers that do not pass an explicit worker count (``0`` or a negative
  value selects ``os.cpu_count()``).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = [
    "WORKERS_ENV",
    "resolve_workers",
    "split_ranges",
    "parallel_map",
]

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"

_T = TypeVar("_T")
_R = TypeVar("_R")


def resolve_workers(workers: int | None = None) -> int:
    """Resolve an effective worker count.

    Explicit ``workers`` wins; otherwise ``REPRO_WORKERS`` is consulted;
    otherwise 1 (serial). ``0`` or negative values select the machine's
    CPU count.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            return 1
    if workers <= 0:
        return os.cpu_count() or 1
    return workers


def split_ranges(n: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into at most *parts* contiguous ``(start, stop)``
    ranges of near-equal size (deterministic, order-preserving)."""
    if n <= 0:
        return []
    parts = max(1, min(parts, n))
    base, extra = divmod(n, parts)
    ranges: list[tuple[int, int]] = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
) -> list[_R]:
    """Map *fn* over *items*, preserving order.

    Serial for ``workers <= 1`` (or a single item); otherwise fans out over
    a process pool with chunked work units. *fn* and the items must be
    picklable in the parallel case (module-level functions and plain
    data/numpy arrays are).
    """
    work: Sequence[_T] = list(items)
    n_workers = resolve_workers(workers)
    if n_workers <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    n_workers = min(n_workers, len(work))
    if chunk_size is None:
        # ~4 chunks per worker bounds both scheduling overhead and tail
        # imbalance without tuning per workload.
        chunk_size = max(1, -(-len(work) // (n_workers * 4)))
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        return list(pool.map(fn, work, chunksize=chunk_size))
