"""Async-safety rules (AS6xx): static race/hang detection for repro.serve.

The serving layer runs three thread contexts: the asyncio event loop,
the single compute-executor thread feeding the process pool, and the
forked pool workers. These rules use the project call graph to check
the contracts between them:

* AS601 — a blocking call (``time.sleep``, ``open``, ``parallel_map``,
  subprocess) reachable from a coroutine *without* an executor hop
  stalls every connection the loop is serving.
* AS602 — a ``create_task``/``ensure_future`` result that is neither
  awaited nor stored is garbage-collectable mid-flight and its
  exceptions vanish.
* AS603 — server state mutated from both the event loop and the
  executor thread without a lock (or a lock-guarded class) races.
* AS604 — a serve-side call into the pool fan-out that drops the
  ``timeout=`` deadline turns a hung worker into a hung request.
* AS605 — calling a coroutine function without ``await`` (or wrapping
  it in a task) silently does nothing.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator

from ..config import LintConfig
from ..context import ModuleContext
from ..findings import Finding
from ..graph import ProjectContext
from ..registry import Rule, register
from .forksafety import _MUTATING_METHODS

_TASK_SPAWNERS = {"create_task", "ensure_future"}

#: Method basenames that mutate their receiver (superset of the
#: fork-safety list: includes the serve-layer verbs).
_STATE_MUTATORS = _MUTATING_METHODS | {
    "put", "record", "increment", "push", "set", "reset",
}


def _basename(dotted: str | None) -> str:
    return dotted.rsplit(".", 1)[-1] if dotted else ""


def _module_has_async(ctx: ModuleContext) -> bool:
    return any(
        isinstance(node, ast.AsyncFunctionDef) for node in ast.walk(ctx.tree)
    )


def _is_blocking(dotted: str, cfg: LintConfig) -> bool:
    return dotted in cfg.blocking_calls or _basename(dotted) in cfg.parallel_entrypoints


@register
class BlockingCallInCoroutine(Rule):
    """AS601: blocking call reachable from a coroutine without an
    executor hop.

    Checked transitively over the call graph: an ``async def`` may call
    sync helpers, but if any helper on the path performs blocking I/O
    or enters the pool, the event loop stalls for its full duration.
    Edges through ``run_in_executor``/``to_thread``/``submit`` change
    threads and end the search; awaited coroutines are reported at
    their own ``async def``, not re-attributed to every caller.
    """

    rule_id = "AS601"
    pack = "async-safety"
    summary = "blocking call reachable from a coroutine"

    def applies_to(self, ctx: ModuleContext, cfg: LintConfig) -> bool:
        return ctx.project is not None and _module_has_async(ctx)

    def check(self, ctx: ModuleContext, cfg: LintConfig) -> Iterator[Finding]:
        project = ctx.project
        assert project is not None
        for info in project.async_functions(ctx):
            reported: set[str] = set()
            reach = project.reachable(
                [info.qual],
                kinds=("call",),
                stop=lambda q: (
                    q in project.functions and project.functions[q].is_async
                ),
            )
            for qual, path in sorted(reach.items()):
                target = project.functions.get(qual)
                if target is None:
                    continue
                if target.is_async and qual != info.qual:
                    continue  # not expanded: reported at its own def
                for site in project.edges_from(qual):
                    if site.kind != "call":
                        continue
                    if not _is_blocking(site.callee, cfg):
                        continue
                    if site.callee in reported:
                        continue
                    reported.add(site.callee)
                    chain = " -> ".join(
                        _basename(q) for q in [*path, site.callee]
                    )
                    yield self.finding(
                        ctx,
                        info.node.lineno,
                        info.node.col_offset,
                        f"coroutine {info.name!r} reaches blocking call "
                        f"{_basename(site.callee)}() "
                        f"({site.ctx.rel_path}:{site.line}) without an "
                        f"executor hop [{chain}]; route it through "
                        "run_in_executor on the compute executor",
                        cfg,
                    )


@register
class OrphanTask(Rule):
    """AS602: ``create_task`` result neither awaited nor stored.

    asyncio keeps only a weak reference to running tasks: an unstored
    task can be garbage-collected mid-flight, and its exception is
    swallowed with only a late "Task exception was never retrieved"
    log. Store the handle (and discard it on completion) or await it.
    """

    rule_id = "AS602"
    pack = "async-safety"
    summary = "create_task result neither awaited nor stored"

    def check(self, ctx: ModuleContext, cfg: LintConfig) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = None
            if isinstance(node.func, ast.Attribute):
                name = node.func.attr
            elif isinstance(node.func, ast.Name):
                name = node.func.id
            if name not in _TASK_SPAWNERS:
                continue
            if isinstance(ctx.parent(node), ast.Expr):
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"{name}() result is neither awaited nor stored; the "
                    "task may be garbage-collected mid-flight and its "
                    "exception is lost — keep a reference",
                    cfg,
                )


@dataclass
class _MutationSite:
    cls: str
    attr: str
    fn: str
    node: ast.AST
    ctx: ModuleContext


@dataclass
class _Sides:
    loop_fns: set[str] = field(default_factory=set)
    exec_fns: set[str] = field(default_factory=set)


def _thread_sides(project: ProjectContext) -> _Sides:
    """Which functions may run on the event loop vs the executor thread.

    Loop side: every coroutine plus everything sync it reaches through
    plain calls and callback refs. Executor side: every function handed
    to ``run_in_executor``/``submit``/``to_thread`` or shipped to the
    pool, plus its own call/ref closure.
    """
    sides = _Sides()
    loop_seeds = [f.qual for f in project.functions.values() if f.is_async]
    exec_seeds = [
        site.callee
        for site in project.calls
        if site.kind in ("executor", "task")
    ]
    sides.loop_fns = set(
        project.reachable(loop_seeds, kinds=("call", "ref"))
    )
    sides.exec_fns = set(
        project.reachable(exec_seeds, kinds=("call", "ref"))
    )
    return sides


def _mutation_sites(project: ProjectContext, ctx_filter: set[str]) -> list[_MutationSite]:
    """All ``self.X`` mutations in methods of classes in serve modules."""
    sites: list[_MutationSite] = []
    for info in project.functions.values():
        if info.cls is None or info.name == "__init__":
            continue
        if info.ctx.rel_path not in ctx_filter:
            continue
        for node in ast.walk(info.node):
            attr = _mutated_self_attr(node)
            if attr is not None:
                sites.append(
                    _MutationSite(info.cls, attr, info.qual, node, info.ctx)
                )
    return sites


def _self_attr_root(expr: ast.expr) -> str | None:
    """``self.X`` / ``self.X[k]`` / ``self.X.Y`` -> ``X``."""
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            return expr.attr
        expr = expr.value
    return None


def _mutated_self_attr(node: ast.AST) -> str | None:
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if isinstance(target, ast.Attribute):
                if isinstance(target.value, ast.Name) and target.value.id == "self":
                    return target.attr
            elif isinstance(target, ast.Subscript):
                attr = _self_attr_root(target)
                if attr is not None:
                    return attr
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in _STATE_MUTATORS:
            attr = _self_attr_root(node.func.value)
            if attr is not None:
                return attr
    return None


@register
class SharedStateRace(Rule):
    """AS603: server state mutated from both the loop and the executor.

    The serving layer's documented handoff is: state classes that cross
    threads carry their own ``threading.Lock`` (admission, breaker,
    degrade, cache); everything else belongs to exactly one thread.
    A ``self.X`` attribute mutated both by loop-side and executor-side
    methods, where neither the owning class nor the attribute's class
    constructs a lock, is a data race.
    """

    rule_id = "AS603"
    pack = "async-safety"
    summary = "shared server state mutated from both threads without a lock"

    def applies_to(self, ctx: ModuleContext, cfg: LintConfig) -> bool:
        return ctx.project is not None and cfg.is_serve(ctx.rel_path)

    def check(self, ctx: ModuleContext, cfg: LintConfig) -> Iterator[Finding]:
        project = ctx.project
        assert project is not None
        hits = project.cached("as603", lambda: self._scan(project, cfg))
        for site, loop_fns, exec_fns in hits:
            if site.ctx is not ctx:
                continue
            yield self.finding(
                ctx,
                getattr(site.node, "lineno", 0),
                getattr(site.node, "col_offset", 0),
                f"attribute {site.attr!r} of {_basename(site.cls)} is "
                f"mutated from both the event loop "
                f"({', '.join(sorted(loop_fns))}) and the executor thread "
                f"({', '.join(sorted(exec_fns))}) without a lock; give the "
                "state class its own threading.Lock or confine it to one "
                "thread",
                cfg,
            )

    @staticmethod
    def _scan(
        project: ProjectContext, cfg: LintConfig
    ) -> list[tuple[_MutationSite, set[str], set[str]]]:
        serve_files = {
            ctx.rel_path
            for ctx in project.modules.values()
            if cfg.is_serve(ctx.rel_path)
        }
        sides = _thread_sides(project)
        sites = _mutation_sites(project, serve_files)

        by_attr: dict[tuple[str, str], list[_MutationSite]] = {}
        for site in sites:
            by_attr.setdefault((site.cls, site.attr), []).append(site)

        hits: list[tuple[_MutationSite, set[str], set[str]]] = []
        for (cls_qual, attr), group in sorted(by_attr.items()):
            cls = project.classes.get(cls_qual)
            if cls is None or cls.has_lock:
                continue
            attr_cls = project.classes.get(cls.attr_types.get(attr, ""))
            if attr_cls is not None and attr_cls.has_lock:
                continue
            loop_fns = {
                _basename(s.fn) for s in group if s.fn in sides.loop_fns
            }
            exec_fns = {
                _basename(s.fn) for s in group if s.fn in sides.exec_fns
            }
            if not (loop_fns and exec_fns):
                continue
            for site in group:
                if site.fn in sides.exec_fns or loop_fns == exec_fns:
                    hits.append((site, loop_fns, exec_fns))
        return hits


def _pool_reaching(project: ProjectContext, cfg: LintConfig) -> set[str]:
    """Functions that transitively call a parallel entrypoint."""
    seeds: set[str] = set()
    for site in project.calls:
        if site.kind == "call" and _basename(site.callee) in cfg.parallel_entrypoints:
            if site.caller in project.functions:
                seeds.add(site.caller)
    out = set(seeds)
    queue = deque(seeds)
    while queue:
        cur = queue.popleft()
        for site in project.callers_of(cur):
            if (
                site.kind == "call"
                and site.caller in project.functions
                and site.caller not in out
            ):
                out.add(site.caller)
                queue.append(site.caller)
    return out


@register
class MissingDeadlinePropagation(Rule):
    """AS604: pool fan-out call in the serving layer without a deadline.

    ``parallel_map``'s ``timeout=`` is the only mechanism that turns a
    hung worker into a killed worker instead of a hung request — the
    serving layer must propagate its per-request deadline into *every*
    call that can reach the pool (directly or through a
    timeout-accepting wrapper like ``batched_mxu_sgemm``).
    """

    rule_id = "AS604"
    pack = "async-safety"
    summary = "pool fan-out without timeout propagation in serve path"

    def applies_to(self, ctx: ModuleContext, cfg: LintConfig) -> bool:
        return ctx.project is not None and cfg.is_serve(ctx.rel_path)

    def check(self, ctx: ModuleContext, cfg: LintConfig) -> Iterator[Finding]:
        project = ctx.project
        assert project is not None
        reaching = project.cached(
            "as604.pool_reaching", lambda: _pool_reaching(project, cfg)
        )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = project.resolve_call(ctx, node) or ""
            basename = _basename(resolved)
            direct = basename in cfg.parallel_entrypoints
            if not direct:
                info = project.function(resolved)
                if (
                    info is None
                    or "timeout" not in info.params
                    or resolved not in reaching
                ):
                    continue
            kw_names = {kw.arg for kw in node.keywords}
            if None in kw_names:  # **kwargs may carry the deadline
                continue
            if "timeout" in kw_names or "deadline" in kw_names:
                continue
            yield self.finding(
                ctx,
                node.lineno,
                node.col_offset,
                f"{basename}() can reach the process pool but no "
                "timeout= is passed; a hung worker becomes a hung "
                "request — propagate the request deadline",
                cfg,
            )


@register
class UnawaitedCoroutine(Rule):
    """AS605: coroutine function called like a plain function.

    Calling an ``async def`` returns a coroutine object and runs
    nothing; as a bare expression statement the work is silently
    dropped (RuntimeWarning at best). Await it or hand it to
    ``create_task``/``gather``.
    """

    rule_id = "AS605"
    pack = "async-safety"
    summary = "coroutine called without await"

    def applies_to(self, ctx: ModuleContext, cfg: LintConfig) -> bool:
        return ctx.project is not None and _module_has_async(ctx)

    def check(self, ctx: ModuleContext, cfg: LintConfig) -> Iterator[Finding]:
        project = ctx.project
        assert project is not None
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(ctx.parent(node), ast.Expr):
                continue
            resolved = project.resolve_call(ctx, node)
            info = project.function(resolved or "")
            if info is not None and info.is_async:
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"coroutine {info.name!r} is called but never awaited; "
                    "the call only builds a coroutine object — await it or "
                    "wrap it in create_task",
                    cfg,
                )
