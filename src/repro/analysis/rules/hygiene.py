"""Resilience-hygiene rules (RH4xx).

The resilience subsystem (PR 2/3) is built on a discipline: failures are
classified, corrupted bytes are treated as cache misses, and nothing is
silently swallowed. These rules keep new code on that discipline.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..config import LintConfig
from ..context import ModuleContext
from ..findings import Finding
from ..registry import Rule, register


@register
class BareExcept(Rule):
    """RH401: bare ``except:``.

    Catches ``SystemExit``/``KeyboardInterrupt`` too, which breaks the
    CLI's exit-code contract (130 on SIGINT with the journal intact).
    ``except Exception:`` is the widest net the codebase permits.
    Autofixable.
    """

    rule_id = "RH401"
    pack = "resilience-hygiene"
    summary = "bare except: catches SystemExit/KeyboardInterrupt"
    fixable = True

    def check(self, ctx: ModuleContext, cfg: LintConfig) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    "bare except: also catches SystemExit and "
                    "KeyboardInterrupt; catch Exception (or narrower)",
                    cfg,
                )

    def fix(
        self, ctx: ModuleContext, finding: Finding
    ) -> tuple[int, str, str] | None:
        line = ctx.lines[finding.line - 1]
        if "except:" not in line:
            return None
        return finding.line, line, line.replace("except:", "except Exception:", 1)


@register
class UnguardedPickleLoad(Rule):
    """RH402: ``pickle.load(s)`` outside the corruption-handling wrappers.

    Cache blobs and checkpoint journals can be torn, bit-rotted, or
    written by an older class layout; ``repro.cache`` and
    ``repro.resilience.checkpoint`` unpickle behind integrity checks and
    treat any failure as a miss. Raw ``pickle.load`` anywhere else
    reintroduces the crash-on-corruption failure mode (and an arbitrary
    code execution surface on untrusted bytes).
    """

    rule_id = "RH402"
    pack = "resilience-hygiene"
    summary = "pickle.load(s) outside the corruption-handling wrappers"

    def check(self, ctx: ModuleContext, cfg: LintConfig) -> Iterator[Finding]:
        if cfg.is_pickle_wrapper(ctx.rel_path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.dotted_name(node.func) or ""
            if dotted in ("pickle.load", "pickle.loads"):
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"{dotted} on raw bytes; route through repro.cache / "
                    "repro.resilience.checkpoint so corruption is a miss, "
                    "not a crash",
                    cfg,
                )


@register
class SilentExceptionSwallow(Rule):
    """RH403: ``except Exception: pass`` (or bare-body ``...``).

    A handler that swallows everything and does nothing erases the
    evidence the resilience subsystem classifies failures from. Narrow
    the exception, log, or re-raise; intentional last-resort teardown
    guards carry an inline allow with the reason.
    """

    rule_id = "RH403"
    pack = "resilience-hygiene"
    summary = "broad except handler with empty body"

    _BROAD = {"Exception", "BaseException"}

    def check(self, ctx: ModuleContext, cfg: LintConfig) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is not None:
                name = (
                    node.type.id
                    if isinstance(node.type, ast.Name)
                    else getattr(node.type, "attr", None)
                )
                if name not in self._BROAD:
                    continue
            if all(
                isinstance(stmt, ast.Pass)
                or (
                    isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)
                    and stmt.value.value is Ellipsis
                )
                for stmt in node.body
            ):
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    "broad except with an empty body swallows the failure "
                    "evidence; narrow it, log, or re-raise",
                    cfg,
                )
