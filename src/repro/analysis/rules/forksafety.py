"""Fork-safety rules (FS3xx).

:func:`repro.parallel.parallel_map` ships tasks to forked worker
processes: the callable must be picklable (module-level, no closure
state), must not mutate module-level state (the mutation happens in the
child and silently vanishes), and every shared-memory segment must be
released on all paths or the segment leaks until reboot.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from ..config import LintConfig
from ..context import ModuleContext
from ..findings import Finding
from ..registry import Rule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph import ProjectContext

_MUTATING_METHODS = {
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "remove", "discard", "clear", "appendleft", "extendleft",
}


def _parallel_calls(ctx: ModuleContext, cfg: LintConfig) -> Iterator[ast.Call]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = None
        if isinstance(node.func, ast.Name):
            name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            name = node.func.attr
        if name in cfg.parallel_entrypoints:
            yield node


def _nested_function_names(ctx: ModuleContext) -> set[str]:
    """Names of functions defined inside another function (unpicklable)."""
    nested: set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if ctx.enclosing_function(node) is not None:
                nested.add(node.name)
    return nested


def _module_level_functions(ctx: ModuleContext) -> dict[str, ast.FunctionDef]:
    return {
        node.name: node
        for node in ctx.tree.body
        if isinstance(node, ast.FunctionDef)
    }


def _module_level_mutables(ctx: ModuleContext) -> set[str]:
    """Module-level names bound to mutable literals (list/dict/set calls
    or displays) — the state a forked worker must not mutate."""
    mutables: set[str] = set()
    for node in ctx.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        is_mutable = isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in {"list", "dict", "set", "deque", "defaultdict", "Counter", "OrderedDict", "bytearray"}
        )
        if not is_mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                mutables.add(target.id)
    return mutables


@register
class UnpicklableTask(Rule):
    """FS301: lambda or nested function submitted to ``parallel_map``.

    Worker payloads cross a pickle boundary; lambdas and closures do not
    pickle, and the failure surfaces only when ``workers > 1`` — i.e. in
    production, not in the serial test run. Task callables must be
    module-level functions.
    """

    rule_id = "FS301"
    pack = "fork-safety"
    summary = "unpicklable callable passed to parallel_map"

    def check(self, ctx: ModuleContext, cfg: LintConfig) -> Iterator[Finding]:
        nested = _nested_function_names(ctx)
        for call in _parallel_calls(ctx, cfg):
            if not call.args:
                continue
            task = call.args[0]
            if isinstance(task, ast.Lambda):
                yield self.finding(
                    ctx,
                    task.lineno,
                    task.col_offset,
                    "lambda passed to parallel_map does not pickle; use a "
                    "module-level function",
                    cfg,
                )
            elif isinstance(task, ast.Name) and task.id in nested:
                yield self.finding(
                    ctx,
                    task.lineno,
                    task.col_offset,
                    f"nested function {task.id!r} passed to parallel_map "
                    "does not pickle (closure); hoist it to module level",
                    cfg,
                )


@register
class WorkerGlobalMutation(Rule):
    """FS302: a parallel task function mutates module-level state.

    The mutation happens in the forked child and is invisible to the
    parent — results that "worked serially" silently diverge under
    ``REPRO_WORKERS > 1``. Flags ``global`` rebinding and in-place
    mutation (``.append``/``[k] = v``/``+=``) of module-level mutables
    inside any function submitted to ``parallel_map`` in the same module.
    """

    rule_id = "FS302"
    pack = "fork-safety"
    summary = "parallel task mutates module-level state"

    def check(self, ctx: ModuleContext, cfg: LintConfig) -> Iterator[Finding]:
        module_fns = _module_level_functions(ctx)
        task_names = {
            call.args[0].id
            for call in _parallel_calls(ctx, cfg)
            if call.args and isinstance(call.args[0], ast.Name)
        }
        mutables = _module_level_mutables(ctx)
        for name in sorted(task_names):
            fn = module_fns.get(name)
            if fn is None:
                continue
            yield from self._check_task(ctx, cfg, fn, mutables)

    def _check_task(
        self,
        ctx: ModuleContext,
        cfg: LintConfig,
        fn: ast.FunctionDef,
        mutables: set[str],
    ) -> Iterator[Finding]:
        local_shadows = {
            arg.arg for arg in [*fn.args.args, *fn.args.kwonlyargs, *fn.args.posonlyargs]
        }
        for node in ast.walk(fn):
            if isinstance(node, ast.Global):
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"task {fn.name!r} rebinds module globals "
                    f"({', '.join(node.names)}); the write happens in the "
                    "forked worker and is lost",
                    cfg,
                )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                base = node.func.value
                if (
                    node.func.attr in _MUTATING_METHODS
                    and isinstance(base, ast.Name)
                    and base.id in mutables
                    and base.id not in local_shadows
                ):
                    yield self._mutation(ctx, cfg, fn, node, base.id)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in mutables
                        and target.value.id not in local_shadows
                    ):
                        yield self._mutation(ctx, cfg, fn, node, target.value.id)

    def _mutation(
        self,
        ctx: ModuleContext,
        cfg: LintConfig,
        fn: ast.FunctionDef,
        node: ast.AST,
        name: str,
    ) -> Finding:
        return self.finding(
            ctx,
            node.lineno,
            node.col_offset,
            f"task {fn.name!r} mutates module-level {name!r}; forked "
            "workers mutate a copy, so the result is fork-count dependent",
            cfg,
        )


@register
class SharedMemoryLifecycle(Rule):
    """FS303: every ``SharedMemory`` attach/create pairs with a release.

    A segment that is neither returned to the caller, handed to a
    tracking collection, nor closed in a ``finally`` leaks a POSIX
    shared-memory object until reboot when any path between create and
    close raises. Accepted lifecycles, checked lexically within the
    enclosing function:

    * ``return SharedMemory(...)`` — ownership escapes to the caller;
    * ``seg = SharedMemory(...)`` later ``<list>.append(seg)`` or
      ``return seg`` — ownership transferred to a tracked collection;
    * ``seg = SharedMemory(...)`` later ``registry[key] = seg`` or
      ``registry[key] = Entry(seg, ...)`` — ownership transferred to a
      keyed registry (possibly wrapped in a record type) whose owner is
      responsible for the unlink;
    * ``seg = SharedMemory(...)`` with ``seg.close()`` (or ``unlink``)
      inside a ``finally`` block of the same function.
    """

    rule_id = "FS303"
    pack = "fork-safety"
    summary = "SharedMemory segment without a paired close/unlink"

    def check(self, ctx: ModuleContext, cfg: LintConfig) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.dotted_name(node.func) or ""
            if not dotted.endswith("SharedMemory"):
                continue
            if self._escapes_via_return(ctx, node):
                continue
            bound = self._bound_name(ctx, node)
            fn = ctx.enclosing_function(node)
            if bound is not None and fn is not None and self._released(fn, bound):
                continue
            yield self.finding(
                ctx,
                node.lineno,
                node.col_offset,
                "SharedMemory handle is neither returned, handed to a "
                "tracking collection, nor closed in a finally — the "
                "segment leaks if any subsequent path raises",
                cfg,
            )

    @staticmethod
    def _escapes_via_return(ctx: ModuleContext, node: ast.Call) -> bool:
        parent = ctx.parent(node)
        return isinstance(parent, ast.Return)

    @staticmethod
    def _bound_name(ctx: ModuleContext, node: ast.Call) -> str | None:
        parent = ctx.parent(node)
        if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
            target = parent.targets[0]
            if isinstance(target, ast.Name):
                return target.id
        if isinstance(parent, ast.AnnAssign) and isinstance(parent.target, ast.Name):
            return parent.target.id
        return None

    @staticmethod
    def _released(fn: ast.FunctionDef | ast.AsyncFunctionDef, name: str) -> bool:
        for sub in ast.walk(fn):
            # Ownership transfer: <collection>.append(name) / return name.
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in {"append", "add", "appendleft"}
                and any(
                    isinstance(arg, ast.Name) and arg.id == name
                    for arg in sub.args
                )
            ):
                return True
            if (
                isinstance(sub, ast.Return)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == name
            ):
                return True
            # Keyed registry: registry[key] = name, bare or wrapped in a
            # record constructor (registry[key] = Entry(name, ...)).
            if (
                isinstance(sub, ast.Assign)
                and len(sub.targets) == 1
                and isinstance(sub.targets[0], ast.Subscript)
            ):
                value = sub.value
                if isinstance(value, ast.Name) and value.id == name:
                    return True
                if isinstance(value, ast.Call) and any(
                    isinstance(arg, ast.Name) and arg.id == name
                    for arg in [*value.args, *(kw.value for kw in value.keywords)]
                ):
                    return True
            # Release on the unwind path: finally { name.close()/unlink() }.
            if isinstance(sub, ast.Try) and sub.finalbody:
                for stmt in sub.finalbody:
                    for call in ast.walk(stmt):
                        if (
                            isinstance(call, ast.Call)
                            and isinstance(call.func, ast.Attribute)
                            and call.func.attr in {"close", "unlink"}
                            and isinstance(call.func.value, ast.Name)
                            and call.func.value.id == name
                        ):
                            return True
        return False


def _fn_mutation_sites(
    ctx: ModuleContext, fn: ast.FunctionDef | ast.AsyncFunctionDef
) -> Iterator[tuple[ast.AST, str]]:
    """``(node, name)`` for every module-global mutation inside *fn*."""
    mutables = _module_level_mutables(ctx)
    shadows = {
        arg.arg
        for arg in [*fn.args.args, *fn.args.kwonlyargs, *fn.args.posonlyargs]
    }
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            yield node, ", ".join(node.names)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            base = node.func.value
            if (
                node.func.attr in _MUTATING_METHODS
                and isinstance(base, ast.Name)
                and base.id in mutables
                and base.id not in shadows
            ):
                yield node, base.id
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in mutables
                    and target.value.id not in shadows
                ):
                    yield node, target.value.id


def _fs304_scan(
    project: "ProjectContext", cfg: LintConfig
) -> list[tuple[ast.AST, ModuleContext, str]]:
    """``(parallel-call node, its ctx, message)`` per transitive mutation."""
    hits: list[tuple[ast.AST, ModuleContext, str]] = []
    seen: set[tuple[int, str, int]] = set()
    for site in project.calls:
        if site.kind != "task":
            continue
        task = project.functions.get(site.callee)
        if task is None:
            continue
        reach = project.reachable(
            [site.callee],
            kinds=("call", "ref"),
            stop=lambda q: q.rsplit(".", 1)[-1] in cfg.parallel_entrypoints,
        )
        for qual, path in sorted(reach.items()):
            if len(path) < 2:
                continue  # depth 0 is FS302's one-hop territory
            fn = project.functions.get(qual)
            if fn is None or fn.name in cfg.parallel_entrypoints:
                continue
            for node, name in _fn_mutation_sites(fn.ctx, fn.node):
                line = getattr(node, "lineno", 0)
                if fn.ctx.is_allowed("FS304", line) or fn.ctx.is_allowed(
                    "FS302", line
                ):
                    continue
                key = (id(site.node), qual, line)
                if key in seen:
                    continue
                seen.add(key)
                chain = " -> ".join(q.rsplit(".", 1)[-1] for q in path)
                hits.append(
                    (
                        site.node,
                        site.ctx,
                        f"task {task.name!r} transitively mutates "
                        f"module-level {name!r} in {fn.name}() "
                        f"({fn.ctx.rel_path}:{line}) via [{chain}]; the "
                        "write happens in the forked worker and is lost",
                    )
                )
    return hits


@register
class TransitiveWorkerMutation(Rule):
    """FS304: a parallel task reaches module-global mutation transitively.

    FS302 sees one hop: the task function's own body. Worker code paths
    are deeper — the task calls helpers (possibly in other modules) that
    mutate module-level caches or counters, and that state diverges
    silently between the parent and the forked children. This rule
    follows the call graph (including functions passed as values) from
    every ``parallel_map`` task; a chain that re-enters a parallel
    entrypoint stops there (nested fan-out collapses to the serial path
    inside a worker, and the pool internals manage their own globals).

    A genuinely fork-safe mutation (e.g. a per-worker memo cache whose
    misses recompute bit-identically) is suppressed at the *mutation
    site* with ``# repro: allow[FS304] <reason>`` — one annotation
    covers every fan-out that reaches it.
    """

    rule_id = "FS304"
    pack = "fork-safety"
    summary = "parallel task transitively mutates module-level state"

    def applies_to(self, ctx: ModuleContext, cfg: LintConfig) -> bool:
        return ctx.project is not None

    def check(self, ctx: ModuleContext, cfg: LintConfig) -> Iterator[Finding]:
        project = ctx.project
        assert project is not None
        hits = project.cached("fs304", lambda: _fs304_scan(project, cfg))
        for node, site_ctx, message in hits:
            if site_ctx is not ctx:
                continue
            yield self.finding(
                ctx,
                getattr(node, "lineno", 0),
                getattr(node, "col_offset", 0),
                message,
                cfg,
            )
