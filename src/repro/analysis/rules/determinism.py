"""Determinism rules (DT2xx).

Every emulation result in this repo is asserted bit-identical across
worker counts, cache states, and resumed checkpoints — which only holds
if no code path consumes entropy the caller did not seed. Fault
injection in particular must thread an explicit seed (the campaign
engine replays trials from it).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..config import LintConfig
from ..context import ModuleContext
from ..findings import Finding
from ..registry import Rule, register

#: Legacy global-state numpy RNG entry points (shared hidden state).
_NP_GLOBAL_FNS = {
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "seed", "uniform",
    "normal", "standard_normal", "binomial", "poisson", "bytes",
}

#: stdlib ``random`` module-level functions (shared hidden state).
_STDLIB_RANDOM_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular", "seed", "getrandbits", "randbytes",
}


def _is_unseeded_call(node: ast.Call) -> bool:
    """No positional seed argument, or an explicit ``None`` seed."""
    if not node.args and not node.keywords:
        return True
    if node.args:
        first = node.args[0]
        return isinstance(first, ast.Constant) and first.value is None
    for kw in node.keywords:
        if kw.arg == "seed":
            return isinstance(kw.value, ast.Constant) and kw.value.value is None
    return True  # only non-seed keywords given


@register
class UnseededGenerator(Rule):
    """DT201: ``np.random.default_rng()`` without an explicit seed.

    An unseeded generator pulls OS entropy, so two runs of the same
    emulation or fault campaign produce different results and the
    bit-identical replay guarantees (cache, checkpoint resume, ABFT
    recomputation) silently stop being testable.
    """

    rule_id = "DT201"
    pack = "determinism"
    summary = "unseeded np.random.default_rng()"

    def check(self, ctx: ModuleContext, cfg: LintConfig) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.dotted_name(node.func) or ""
            if dotted in ("numpy.random.default_rng", "numpy.random.Generator"):
                if dotted.endswith("default_rng") and _is_unseeded_call(node):
                    yield self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        "default_rng() without an explicit seed breaks "
                        "bit-identical replay; thread a seed parameter",
                        cfg,
                    )


@register
class GlobalNumpyRandom(Rule):
    """DT202: legacy ``np.random.*`` global-state functions.

    The module-level numpy RNG is hidden shared state: unseeded it is
    nondeterministic, seeded it is a fork-safety hazard (workers inherit
    identical state). Use ``np.random.default_rng(seed)`` instances.
    """

    rule_id = "DT202"
    pack = "determinism"
    summary = "legacy global-state np.random.* call"

    def check(self, ctx: ModuleContext, cfg: LintConfig) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.dotted_name(node.func) or ""
            parts = dotted.split(".")
            if (
                len(parts) == 3
                and parts[0] == "numpy"
                and parts[1] == "random"
                and parts[2] in _NP_GLOBAL_FNS
            ):
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"np.random.{parts[2]} uses hidden global RNG state; "
                    "use np.random.default_rng(seed) instances",
                    cfg,
                )


@register
class StdlibRandom(Rule):
    """DT203: stdlib ``random`` module functions / unseeded ``Random()``.

    Module-level ``random.*`` draws from interpreter-global state, and a
    bare ``Random()`` seeds from OS entropy — both unreproducible. Even
    timing decisions (retry jitter) are seeded in this repo so failure
    schedules replay exactly.
    """

    rule_id = "DT203"
    pack = "determinism"
    summary = "stdlib random.* global state or unseeded Random()"

    def check(self, ctx: ModuleContext, cfg: LintConfig) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.dotted_name(node.func) or ""
            parts = dotted.split(".")
            if dotted.startswith("random.") and len(parts) == 2:
                if parts[1] in _STDLIB_RANDOM_FNS:
                    yield self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"random.{parts[1]} uses interpreter-global RNG "
                        "state; use a seeded random.Random instance",
                        cfg,
                    )
                elif parts[1] == "Random" and not node.args and not node.keywords:
                    yield self._unseeded(ctx, cfg, node)
            elif dotted == "random.Random" or (
                isinstance(node.func, ast.Name)
                and ctx.imports.get(node.func.id) == "random.Random"
            ):
                if not node.args and not node.keywords:
                    yield self._unseeded(ctx, cfg, node)

    def _unseeded(
        self, ctx: ModuleContext, cfg: LintConfig, node: ast.Call
    ) -> Finding:
        return self.finding(
            ctx,
            node.lineno,
            node.col_offset,
            "Random() without a seed pulls OS entropy; pass an explicit "
            "seed so schedules replay deterministically",
            cfg,
        )
