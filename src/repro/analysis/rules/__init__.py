"""Rule packs. Importing this package registers every rule.

* ``PS1xx`` precision-safety (:mod:`.precision`)
* ``DT2xx`` determinism (:mod:`.determinism`)
* ``FS3xx`` fork-safety (:mod:`.forksafety`)
* ``RH4xx`` resilience hygiene (:mod:`.hygiene`)
* ``XF5xx`` exactness-flow taint (:mod:`.exactflow`)
* ``AS6xx`` async-safety (:mod:`.asyncsafety`)
"""

from __future__ import annotations

from . import (
    asyncsafety,
    determinism,
    exactflow,
    forksafety,
    hygiene,
    precision,
)

__all__ = [
    "precision",
    "determinism",
    "forksafety",
    "hygiene",
    "exactflow",
    "asyncsafety",
]
