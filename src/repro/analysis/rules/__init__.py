"""Rule packs. Importing this package registers every rule.

* ``PS1xx`` precision-safety (:mod:`.precision`)
* ``DT2xx`` determinism (:mod:`.determinism`)
* ``FS3xx`` fork-safety (:mod:`.forksafety`)
* ``RH4xx`` resilience hygiene (:mod:`.hygiene`)
"""

from __future__ import annotations

from . import determinism, forksafety, hygiene, precision

__all__ = ["precision", "determinism", "forksafety", "hygiene"]
