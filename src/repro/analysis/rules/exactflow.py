"""Exactness-flow rules (XF5xx): interprocedural taint findings.

Thin reporting shims over :class:`repro.analysis.flow.ExactFlow` — the
taint engine runs once per lint run (cached on the project context) and
each rule surfaces its own sink class in the modules it owns. The rules
need a project call graph; ``lint_file`` builds a single-module project,
so same-file interprocedural flows still report when linting one file.
"""

from __future__ import annotations

from typing import Iterator

from ..config import LintConfig
from ..context import ModuleContext
from ..findings import Finding
from ..flow import ExactFlow
from ..registry import Rule, register


def _flow(ctx: ModuleContext, cfg: LintConfig) -> ExactFlow | None:
    if ctx.project is None:
        return None
    return ctx.project.cached("exactflow", lambda: ExactFlow(ctx.project, cfg))


class _ExactFlowRule(Rule):
    """Shared scope gate + hit-to-finding plumbing."""

    pack = "exactness-flow"
    advice: str = ""

    def applies_to(self, ctx: ModuleContext, cfg: LintConfig) -> bool:
        return ctx.project is not None and cfg.is_exact_flow(ctx.rel_path)

    def check(self, ctx: ModuleContext, cfg: LintConfig) -> Iterator[Finding]:
        flow = _flow(ctx, cfg)
        if flow is None:
            return
        for hit in flow.hits:
            if hit.ctx_path != ctx.path or hit.rule_id != self.rule_id:
                continue
            if self._suppressed(ctx, cfg, hit.line):
                continue
            yield self.finding(
                ctx,
                hit.line,
                hit.col,
                f"exact value from {hit.origin} reaches {hit.sink}; "
                f"{self.advice}",
                cfg,
            )

    def _suppressed(self, ctx: ModuleContext, cfg: LintConfig, line: int) -> bool:
        """Rule-specific extra suppression hook."""
        return False


@register
class ExactValueFloatCast(_ExactFlowRule):
    """XF501: ``float()`` on an exact-domain value.

    A ``float()`` cast collapses the multi-word exact representation to
    one double rounding step the datapath never specified. Exact values
    leave the domain only through ``repro.types.quantize``.
    """

    rule_id = "XF501"
    summary = "float() cast on an exact-domain value"
    advice = (
        "round through repro.types.quantize instead of a float() cast"
    )


@register
class ExactValueNarrowingCast(_ExactFlowRule):
    """XF502: float32/float16 cast outside the quantize API.

    ``np.float32(x)`` / ``x.astype(np.float32)`` rounds with whatever
    mode numpy picked, not the documented RNE quantization, and drops
    the sticky/guard information the windowed accumulators preserve.
    """

    rule_id = "XF502"
    summary = "np.float32/np.float16 cast on an exact-domain value"
    advice = "use quantize(x, FP32) — the sanctioned narrowing"

    def _suppressed(self, ctx: ModuleContext, cfg: LintConfig, line: int) -> bool:
        # A cast the PS105 allowlist has vetted as exact-by-construction
        # (values provably narrower than the float32 significand) is not
        # a lossy sink — honoring the existing annotation keeps one
        # allowlist for both the syntactic and the flow-based rule.
        return ctx.is_allowed("PS105", line) or cfg.is_path_allowed(
            "PS105", ctx.rel_path
        )


@register
class ExactValueUnorderedSum(_ExactFlowRule):
    """XF503: ``sum()``/``np.sum`` on exact-domain values.

    Float summation order changes the result; the paper's reduction is
    the shift-aligned windowed accumulate. Summing lane products or
    window words with ``sum()`` silently reintroduces order dependence.
    """

    rule_id = "XF503"
    summary = "unordered sum() over exact-domain values"
    advice = (
        "use aligned_sum_groups / segmented_windowed_sum for the "
        "reduction"
    )


@register
class ExactValueNonRNERounding(_ExactFlowRule):
    """XF504: non round-to-nearest-even rounding on an exact value.

    ``round``/``floor``/``ceil``/``trunc`` round away from the RNE
    contract (PAPER.md Eq. 9); ``np.rint`` and ``quantize`` are the only
    sanctioned roundings.
    """

    rule_id = "XF504"
    summary = "non-RNE rounding on an exact-domain value"
    advice = "only np.rint / quantize may round exact values (RNE)"


@register
class ExactValueLossyArithmetic(_ExactFlowRule):
    """XF505: natively lossy arithmetic on an exact value.

    True division, ``**`` and transcendental numpy calls all round their
    float result; the exact pipeline stays in the integer/split domain
    until an explicit quantize.
    """

    rule_id = "XF505"
    summary = "lossy native arithmetic on an exact-domain value"
    advice = (
        "keep the computation in the integer/split domain or quantize "
        "first"
    )
