"""Precision-safety rules (PS1xx).

The bit-exact modules carry every value as a float64 *container* whose
bit pattern is controlled end to end: operand splits are exact 12-bit
slices (PAPER.md Eq. 3-5), products are exact in float64, and every
rounding routes through :func:`repro.types.quantize` /
:mod:`repro.types.rounding`. Arithmetic through Python ``float()`` or
``math.*`` introduces double roundings these modules must never perform;
float equality against inexact literals silently depends on
representation; and a shift amount that escapes the 48-bit accumulation
window breaks the Eq. 6-9 alignment argument.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..config import LintConfig
from ..context import ModuleContext, fold_int
from ..findings import Finding
from ..registry import Rule, register

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.Pow, ast.Mod, ast.FloorDiv)

#: Maximum shift amount before the int64 adder model itself overflows
#: (see ``aligned_sum``: W + log2(K) + 2 must stay <= 63).
_INT64_SHIFT_LIMIT = 64


def _is_float_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
    )


def _is_math_ref(ctx: ModuleContext, node: ast.expr) -> str | None:
    """The ``math.<attr>`` attribute name when *node* references one."""
    if isinstance(node, ast.Call):
        node = node.func
    dotted = ctx.dotted_name(node)
    if dotted and dotted.startswith("math.") and dotted.count(".") == 1:
        return dotted.split(".", 1)[1]
    return None


class _BitExactRule(Rule):
    """Base for rules scoped to the configured bit-exact modules."""

    def applies_to(self, ctx: ModuleContext, cfg: LintConfig) -> bool:
        return cfg.is_bit_exact(ctx.rel_path)


@register
class FloatArithmetic(_BitExactRule):
    """PS101: arithmetic through bare ``float()`` in a bit-exact module.

    ``float(x) * y`` rounds ``x`` to double *before* the operation; the
    bit-exact modules must keep values in their container format and
    round only through ``types.quantize``/``types.rounding``. Sites that
    are provably exact (e.g. products of small integers and powers of
    two) carry an inline ``# repro: allow[PS101]`` with the proof.
    """

    rule_id = "PS101"
    pack = "precision-safety"
    summary = "bare float() operand in arithmetic inside a bit-exact module"

    def check(self, ctx: ModuleContext, cfg: LintConfig) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.BinOp) and isinstance(node.op, _ARITH_OPS)):
                continue
            for operand in (node.left, node.right):
                if _is_float_call(operand):
                    yield self.finding(
                        ctx,
                        operand.lineno,
                        operand.col_offset,
                        "arithmetic on a bare float() cast; keep the value "
                        "in its container format and round via "
                        "types.quantize/types.rounding",
                        cfg,
                    )


@register
class MathModuleArithmetic(_BitExactRule):
    """PS102: ``math.*`` arithmetic in a bit-exact module.

    ``math.sqrt``/``math.exp``/``math.fsum`` and friends round to double
    with no format control. Integer-valued helpers (``math.ceil``,
    ``math.comb``, ...) and constants are allowed — the set is
    configurable via ``math_allowed``.
    """

    rule_id = "PS102"
    pack = "precision-safety"
    summary = "rounding math.* call inside a bit-exact module"

    def check(self, ctx: ModuleContext, cfg: LintConfig) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Call, ast.Attribute)):
                continue
            if isinstance(node, ast.Attribute) and isinstance(
                ctx.parent(node), ast.Call
            ):
                continue  # reported at the Call node
            attr = _is_math_ref(ctx, node)
            if attr is not None and attr not in cfg.math_allowed:
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"math.{attr} rounds through Python floats; route "
                    "rounding through types.quantize/types.rounding "
                    "(or add to math_allowed if integer-exact)",
                    cfg,
                )


@register
class InexactFloatEquality(Rule):
    """PS103: ``==``/``!=`` against a float literal that is not its text.

    ``x == 0.25`` is exact: the literal parses to precisely the written
    value. ``x == 0.1`` is not — the comparison is against the nearest
    double to 0.1, so the check silently depends on representation and
    almost always means a tolerance was intended. The rule flags only
    literals whose decimal text differs from their parsed double value
    (plus anything outside the configured ``exact_float_literals``
    escape hatch, which always passes).
    """

    rule_id = "PS103"
    pack = "precision-safety"
    summary = "float equality against an inexact literal"

    def check(self, ctx: ModuleContext, cfg: LintConfig) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, (lhs, rhs) in zip(node.ops, zip(operands, operands[1:])):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (lhs, rhs):
                    literal = _float_literal(ctx, side)
                    if literal is None:
                        continue
                    value, text = literal
                    if value in cfg.exact_float_literals:
                        continue
                    if _text_is_exact(text, value):
                        continue
                    yield self.finding(
                        ctx,
                        side.lineno,
                        side.col_offset,
                        f"==/!= against {text} compares the nearest double "
                        f"({value!r}), not the written value; use an exact "
                        "literal or an explicit tolerance",
                        cfg,
                    )


def _float_literal(
    ctx: ModuleContext, node: ast.expr
) -> tuple[float, str] | None:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _float_literal(ctx, node.operand)
        return None if inner is None else (-inner[0], "-" + inner[1])
    if isinstance(node, ast.Constant) and type(node.value) is float:
        text = ast.get_source_segment(ctx.source, node) or repr(node.value)
        return node.value, text
    return None


def _text_is_exact(text: str, value: float) -> bool:
    """Whether the decimal literal *text* is exactly the double *value*."""
    import math
    from decimal import Decimal, InvalidOperation
    from fractions import Fraction

    if not math.isfinite(value):
        return False
    try:
        written = Fraction(Decimal(text.replace("_", "")))
    except (InvalidOperation, ValueError):
        return False
    return written == Fraction(value)


@register
class ShiftWindow(_BitExactRule):
    """PS104: constant-foldable shift amounts vs the accumulation window.

    Two checks, both by constant-folding against module-level integer
    constants (``_SLICE_BITS = 12`` etc.):

    * any ``<<``/``>>`` amount must satisfy ``0 <= n < 64`` (the int64
      adder model of ``aligned_sum`` leaves no headroom past that);
    * accumulator *step schedules* — list literals of ``(a_part, b_part,
      weight_shift)`` tuples assigned to a ``*schedule*`` name — must
      keep ``weight_shift + 2*slice_bits`` within the 48-bit window read
      from ``repro.arith.accumulator.M3XU_ACC_BITS`` (Fig. 3(b): the
      H*H lane lands shifted 24 bits with a 24-bit product below it).
    """

    rule_id = "PS104"
    pack = "precision-safety"
    summary = "shift amount escapes the accumulator window"

    def check(self, ctx: ModuleContext, cfg: LintConfig) -> Iterator[Finding]:
        env = ctx.int_constants
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.LShift, ast.RShift)
            ):
                amount = fold_int(node.right, env)
                if amount is not None and not (0 <= amount < _INT64_SHIFT_LIMIT):
                    yield self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"shift by {amount} escapes the int64 adder model "
                        f"(need 0 <= n < {_INT64_SHIFT_LIMIT})",
                        cfg,
                    )
            elif isinstance(node, ast.Assign):
                yield from self._check_schedule(ctx, cfg, node, env)

    def _check_schedule(
        self,
        ctx: ModuleContext,
        cfg: LintConfig,
        node: ast.Assign,
        env: dict[str, int],
    ) -> Iterable[Finding]:
        names = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if not any("schedule" in name.lower() for name in names):
            return
        if not isinstance(node.value, ast.List):
            return
        window = cfg.acc_window_bits
        product_bits = 2 * cfg.slice_bits
        for elt in node.value.elts:
            if not (isinstance(elt, ast.Tuple) and len(elt.elts) >= 3):
                continue
            shift = fold_int(elt.elts[2], env)
            if shift is None:
                continue
            if shift < 0 or shift + product_bits > window:
                yield self.finding(
                    ctx,
                    elt.lineno,
                    elt.col_offset,
                    f"schedule weight_shift={shift} plus the "
                    f"{product_bits}-bit product escapes the "
                    f"{window}-bit accumulation window",
                    cfg,
                )


@register
class SinglePrecisionCast(_BitExactRule):
    """PS105: native single/half-precision numpy casts in bit-exact code.

    ``np.float32(x)``, ``astype(np.float32)`` and ``dtype=np.float32``
    round outside ``types.quantize`` *and* put subsequent arithmetic on
    the native float32 path, whose per-op rounding the models do not
    control. The bit-exact modules keep float64 containers and quantize
    explicitly; this is the "implicit promotion/demotion" failure mode
    that passes tier-1 until a shape exposes it.
    """

    rule_id = "PS105"
    pack = "precision-safety"
    summary = "native float32/float16 cast inside a bit-exact module"

    _BAD = {"float32", "float16", "single", "half"}

    def check(self, ctx: ModuleContext, cfg: LintConfig) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                dotted = ctx.dotted_name(node.func) or ""
                if dotted.startswith("numpy.") and dotted.split(".")[-1] in self._BAD:
                    yield self._emit(ctx, cfg, node)
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "astype"
                    and node.args
                    and self._names_bad_dtype(ctx, node.args[0])
                ):
                    yield self._emit(ctx, cfg, node)
                for kw in getattr(node, "keywords", []):
                    if kw.arg == "dtype" and self._names_bad_dtype(ctx, kw.value):
                        yield self._emit(ctx, cfg, kw.value)

    def _names_bad_dtype(self, ctx: ModuleContext, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value in self._BAD
        dotted = ctx.dotted_name(node) or ""
        return dotted.startswith("numpy.") and dotted.split(".")[-1] in self._BAD

    def _emit(self, ctx: ModuleContext, cfg: LintConfig, node: ast.expr) -> Finding:
        return self.finding(
            ctx,
            node.lineno,
            node.col_offset,
            "native float32/float16 cast bypasses types.quantize; keep the "
            "float64 container and quantize explicitly",
            cfg,
        )
