"""SARIF 2.1.0 export for ``repro lint --sarif``.

The static-analysis interchange format GitHub code scanning and most
CI annotation tooling consume. One run, one driver (``repro-lint``),
every registered rule listed with its summary, one result per finding.
Parse errors surface as tool-level notifications so a broken file fails
visibly in dashboards, not just via the exit code.
"""

from __future__ import annotations

import json

from .engine import LintReport
from .findings import Severity
from .registry import all_rules

__all__ = ["to_sarif", "render_sarif"]

_SARIF_VERSION = "2.1.0"
_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.OFF: "none",
}


def to_sarif(report: LintReport) -> dict:
    """Build the SARIF log object for one lint run."""
    rules = [
        {
            "id": rule.rule_id,
            "name": type(rule).__name__,
            "shortDescription": {"text": rule.summary},
            "properties": {"pack": rule.pack},
            "defaultConfiguration": {
                "level": _LEVELS[rule.default_severity]
            },
        }
        for rule in all_rules()
    ]
    rule_index = {entry["id"]: i for i, entry in enumerate(rules)}

    results = [
        {
            "ruleId": finding.rule_id,
            "ruleIndex": rule_index.get(finding.rule_id, -1),
            "level": _LEVELS[finding.severity],
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        for finding in report.findings
    ]

    notifications = [
        {
            "level": "error",
            "message": {"text": f"parse error in {path}"},
        }
        for path in report.parse_errors
    ]

    return {
        "$schema": _SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://github.com/m3xu-repro/m3xu-repro"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
                "invocations": [
                    {
                        "executionSuccessful": not report.parse_errors,
                        "toolExecutionNotifications": notifications,
                    }
                ],
            }
        ],
    }


def render_sarif(report: LintReport) -> str:
    return json.dumps(to_sarif(report), indent=2)
