"""Finding records produced by the lint rules."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace


class Severity(enum.Enum):
    """How a finding affects the ``repro lint`` exit code.

    ``ERROR`` findings fail the run (exit 1); ``WARNING`` findings are
    reported but do not; ``OFF`` disables a rule entirely.
    """

    ERROR = "error"
    WARNING = "warning"
    OFF = "off"

    @classmethod
    def parse(cls, value: str) -> "Severity":
        try:
            return cls(value.strip().lower())
        except ValueError:
            raise ValueError(
                f"unknown severity {value!r}; expected one of "
                f"{[s.value for s in cls]}"
            ) from None


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    Renders as ``file:line:col: RULE-ID severity: message`` — the format
    editors and CI log scrapers already understand.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    severity: Severity = Severity.ERROR
    #: True when the owning rule can rewrite the offending source safely.
    fixable: bool = field(default=False, compare=False)

    def with_severity(self, severity: Severity) -> "Finding":
        return replace(self, severity=severity)

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} {self.severity.value}: {self.message}"
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule_id": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
            "fixable": self.fixable,
        }


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Stable report order: by file, then line, then column, then rule."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule_id))
