"""Exactness-flow analysis: taint tracking for the bit-exact domain.

The M3XU datapath's intermediates — significand splits, lane products,
shift-aligned 48-bit window sums, per-part MMA results — are *exact*:
every bit is meaningful and any native float rounding silently destroys
the paper's bit-identity contract. This module tracks those values
through assignments, containers, arithmetic, returns, and **function
boundaries** (the per-function PS1xx rules cannot follow a value through
a helper) and reports where an exact value reaches a lossy sink:

========  ==========================================================
XF501     ``float()`` cast on an exact value
XF502     ``np.float32``/``np.float16``/``astype`` cast outside the
          ``quantize`` API
XF503     unordered ``sum()``/``np.sum`` where the aligned/windowed
          accumulators are required
XF504     non round-to-nearest-even rounding (``round``, ``floor``,
          ``ceil``, ``trunc``; ``np.rint`` is RNE and exempt)
XF505     natively lossy arithmetic (true division, ``**``,
          ``np.divide``/``np.sqrt``/``np.exp``/...)
========  ==========================================================

Sources and sanitizers come from :class:`~repro.analysis.config
.LintConfig` (``exact_sources``, ``exact_source_methods``,
``exact_sanitizers``): passing a value through ``quantize`` /
``quantize_complex`` re-enters the ordinary float domain and ends the
taint. Taint propagates project-wide; *findings* are only reported in
the configured ``exact_flow`` path scope, and never inside the source
functions themselves (their bodies are the sanctioned implementations).

The engine is a flow-insensitive-per-round, interprocedural fixed
point: each round analyzes every function with the current summaries
(which functions return exact values, which parameters receive exact
arguments) and stops when no summary changes. Known limitations, by
design: taint through ``self.attr`` stores, closures, and ``**kwargs``
is not tracked.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from .config import LintConfig
from .graph import FunctionInfo, ProjectContext

__all__ = ["ExactFlow", "FlowHit"]

#: Calls that forward their (array) argument unchanged bit-for-bit.
_PASSTHROUGH = {
    "asarray", "ascontiguousarray", "array", "stack", "concatenate",
    "hstack", "vstack", "reshape", "transpose", "squeeze", "ravel",
    "copy", "abs", "absolute", "negative", "zeros_like", "empty_like",
}

_F32_CASTS = {"numpy.float32", "numpy.float16", "numpy.half", "numpy.single"}
_F32_DTYPE_STRINGS = {"float32", "float16", "f4", "f2", "half", "single", "<f4", "<f2"}
_SUM_CALLS = {"numpy.sum", "numpy.nansum"}
_ROUNDING_CALLS = {
    "round", "math.floor", "math.ceil", "math.trunc",
    "numpy.floor", "numpy.ceil", "numpy.trunc", "numpy.round",
    "numpy.around", "numpy.fix",
}
_LOSSY_CALLS = {
    "numpy.divide", "numpy.true_divide", "numpy.power", "numpy.float_power",
    "numpy.sqrt", "numpy.exp", "numpy.expm1", "numpy.log", "numpy.log1p",
    "numpy.log2", "numpy.log10", "numpy.reciprocal",
}


@dataclass(frozen=True)
class FlowHit:
    """One exact-value-reaches-lossy-sink finding, pre-severity."""

    rule_id: str
    ctx_path: str          # ModuleContext.path — identity key for rules
    line: int
    col: int
    origin: str            # where the exact value came from
    sink: str              # human description of the lossy operation


@dataclass
class _Summary:
    """Interprocedural knowledge about one function."""

    return_origin: str | None = None
    param_taint: dict[str, str] = field(default_factory=dict)


class ExactFlow:
    """Run the taint analysis over a whole project once per lint run."""

    def __init__(self, project: ProjectContext, cfg: LintConfig) -> None:
        self.project = project
        self.cfg = cfg
        self.sources = set(cfg.exact_sources)
        self.source_methods = set(cfg.exact_source_methods)
        self.sanitizers = set(cfg.exact_sanitizers)
        self.summaries: dict[str, _Summary] = {}
        self.hits: list[FlowHit] = []
        self._run()

    # ------------------------------------------------------------------

    def _run(self) -> None:
        functions = list(self.project.functions.values())
        for info in functions:
            self.summaries[info.qual] = _Summary()

        for _ in range(10):
            changed = False
            for info in functions:
                analysis = _FunctionPass(self, info, collect=False)
                analysis.run()
                changed |= self._merge(info, analysis)
            if not changed:
                break

        seen: set[tuple[str, int, int, str]] = set()
        for info in functions:
            if not self._collect_in(info):
                continue
            analysis = _FunctionPass(self, info, collect=True)
            analysis.run()
            for hit in analysis.hits:
                key = (hit.ctx_path, hit.line, hit.col, hit.rule_id)
                if key not in seen:
                    seen.add(key)
                    self.hits.append(hit)

    def _collect_in(self, info: FunctionInfo) -> bool:
        if not self.cfg.is_exact_flow(info.ctx.rel_path):
            return False
        # A source's own body is the sanctioned implementation.
        if info.qual in self.sources or info.name in self.source_methods:
            return False
        return True

    def _merge(self, info: FunctionInfo, analysis: "_FunctionPass") -> bool:
        changed = False
        summary = self.summaries[info.qual]
        if analysis.return_origin and summary.return_origin is None:
            summary.return_origin = analysis.return_origin
            changed = True
        for callee, taints in analysis.callee_taints.items():
            target = self.summaries.get(callee)
            if target is None:
                continue
            for param, origin in taints.items():
                if param not in target.param_taint:
                    target.param_taint[param] = origin
                    changed = True
        return changed


class _FunctionPass:
    """One forward taint pass over a single function body."""

    def __init__(self, flow: ExactFlow, info: FunctionInfo, collect: bool) -> None:
        self.flow = flow
        self.info = info
        self.collect = collect
        self.ctx = info.ctx
        self.scope = flow.project.scope_of(info.qual)
        self.env: dict[str, str] = dict(
            flow.summaries[info.qual].param_taint
        )
        self.return_origin: str | None = None
        self.callee_taints: dict[str, dict[str, str]] = {}
        self.hits: list[FlowHit] = []

    def run(self) -> None:
        # Two passes over the body approximate loop-carried taint.
        for _ in range(2):
            for stmt in self.info.node.body:
                self._stmt(stmt)

    # ------------------------------------------------------------------
    # statements

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested defs are analyzed as their own functions
        if isinstance(stmt, ast.Assign):
            origin = self._expr(stmt.value)
            for target in stmt.targets:
                self._bind(target, origin, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self._expr(stmt.value), stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            origin = self._expr(stmt.value)
            if isinstance(stmt.target, ast.Name):
                existing = self.env.get(stmt.target.id)
                if origin or existing:
                    self.env[stmt.target.id] = origin or existing  # type: ignore[assignment]
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                origin = self._expr(stmt.value)
                if origin and self.return_origin is None:
                    self.return_origin = origin
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            origin = self._expr(stmt.iter)
            if origin:
                self._bind(stmt.target, origin, stmt.iter)
            for sub in [*stmt.body, *stmt.orelse]:
                self._stmt(sub)
        elif isinstance(stmt, (ast.While, ast.If)):
            self._expr(stmt.test)
            for sub in [*stmt.body, *stmt.orelse]:
                self._stmt(sub)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                origin = self._expr(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, origin, item.context_expr)
            for sub in stmt.body:
                self._stmt(sub)
        elif isinstance(stmt, ast.Try):
            for sub in [*stmt.body, *stmt.orelse, *stmt.finalbody]:
                self._stmt(sub)
            for handler in stmt.handlers:
                for sub in handler.body:
                    self._stmt(sub)
        elif isinstance(stmt, ast.Expr):
            self._expr(stmt.value)
        elif isinstance(stmt, (ast.Assert, ast.Raise, ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child)

    def _bind(self, target: ast.expr, origin: str | None, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            if origin:
                self.env[target.id] = origin
            else:
                self.env.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            elts = target.elts
            values = value.elts if isinstance(value, (ast.Tuple, ast.List)) and len(
                value.elts
            ) == len(elts) else None
            for i, elt in enumerate(elts):
                sub = self._expr(values[i]) if values is not None else origin
                self._bind(elt, sub, value)
        elif isinstance(target, ast.Subscript):
            # Writing a tainted value into a container taints the container.
            if origin and isinstance(target.value, ast.Name):
                self.env[target.value.id] = origin
        elif isinstance(target, ast.Starred):
            self._bind(target.value, origin, value)
        # self.attr stores are not tracked (documented limitation).

    # ------------------------------------------------------------------
    # expressions

    def _expr(self, expr: ast.expr | None) -> str | None:
        """Taint origin of *expr* (``None`` = not exact), firing sink
        checks along the way when ``collect`` is on."""
        if expr is None:
            return None
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            return self._expr(expr.value)
        if isinstance(expr, ast.Subscript):
            self._expr(expr.slice)
            return self._expr(expr.value)
        if isinstance(expr, ast.Starred):
            return self._expr(expr.value)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            origin = None
            for elt in expr.elts:
                origin = self._expr(elt) or origin
            return origin
        if isinstance(expr, ast.Dict):
            origin = None
            for key in expr.keys:
                if key is not None:
                    self._expr(key)
            for value in expr.values:
                origin = self._expr(value) or origin
            return origin
        if isinstance(expr, ast.BinOp):
            return self._binop(expr)
        if isinstance(expr, ast.BoolOp):
            origin = None
            for value in expr.values:
                origin = self._expr(value) or origin
            return origin
        if isinstance(expr, ast.UnaryOp):
            return self._expr(expr.operand)
        if isinstance(expr, ast.IfExp):
            self._expr(expr.test)
            return self._expr(expr.body) or self._expr(expr.orelse)
        if isinstance(expr, ast.Compare):
            self._expr(expr.left)
            for comp in expr.comparators:
                self._expr(comp)
            return None  # booleans carry no exactness
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.Await):
            return self._expr(expr.value)
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            origin = None
            for gen in expr.generators:
                origin = self._expr(gen.iter) or origin
            elt_origin = self._expr(expr.elt)
            return elt_origin or origin
        if isinstance(expr, ast.DictComp):
            origin = None
            for gen in expr.generators:
                origin = self._expr(gen.iter) or origin
            self._expr(expr.key)
            return self._expr(expr.value) or origin
        if isinstance(expr, ast.NamedExpr):
            origin = self._expr(expr.value)
            self._bind(expr.target, origin, expr.value)
            return origin
        return None

    def _binop(self, expr: ast.BinOp) -> str | None:
        left = self._expr(expr.left)
        right = self._expr(expr.right)
        origin = left or right
        if origin and isinstance(expr.op, (ast.Div, ast.Pow)):
            op = "/" if isinstance(expr.op, ast.Div) else "**"
            self._hit(
                "XF505", expr, origin,
                f"native `{op}` arithmetic",
            )
            return None  # the value has left the exact domain
        return origin

    # ------------------------------------------------------------------
    # calls: sources, sanitizers, sinks, passthrough, interprocedural

    def _call(self, call: ast.Call) -> str | None:
        resolved = self.flow.project.resolve(self.ctx, call.func, self.scope) or ""
        basename = resolved.rsplit(".", 1)[-1] if resolved else ""
        if not basename and isinstance(call.func, ast.Attribute):
            # chains rooted in an unresolvable value (a call result, a
            # subscript): the method name is still meaningful.
            basename = call.func.attr
        arg_origins = [self._expr(arg) for arg in call.args]
        kw_origins = {
            kw.arg: self._expr(kw.value) for kw in call.keywords
        }
        any_origin = next(
            (o for o in [*arg_origins, *kw_origins.values()] if o), None
        )
        receiver = (
            self._expr(call.func.value)
            if isinstance(call.func, ast.Attribute)
            else None
        )

        # Sanitizers end the taint: the value is deliberately rounded.
        if basename in self.flow.sanitizers:
            return None

        # Sink checks (only meaningful when something exact is involved).
        if any_origin or receiver:
            fired = self._check_sinks(
                call, resolved, basename, any_origin, receiver, kw_origins
            )
            if fired:
                return None

        # Sources: the call *produces* an exact-domain value.
        if resolved in self.flow.sources:
            return f"{basename}() ({self.ctx.rel_path}:{call.lineno})"
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in self.flow.source_methods
        ):
            return f".{call.func.attr}() ({self.ctx.rel_path}:{call.lineno})"

        # Interprocedural: hand argument taint to a known callee ...
        info = self.flow.project.function(resolved)
        if info is not None:
            self._propagate_args(call, info, arg_origins, kw_origins)
            summary = self.flow.summaries.get(resolved)
            if summary is not None and summary.return_origin:
                return f"{summary.return_origin} via {basename}()"

        # ... and passthrough calls keep the taint of their argument.
        if basename in _PASSTHROUGH and any_origin:
            return any_origin
        if receiver and isinstance(call.func, ast.Attribute):
            # method on a tainted receiver: result stays in the domain
            # (.copy()/.reshape()/.real/...). Sinks were checked above.
            return receiver
        return None

    def _propagate_args(
        self,
        call: ast.Call,
        info: FunctionInfo,
        arg_origins: list[str | None],
        kw_origins: dict[str | None, str | None],
    ) -> None:
        params = info.params
        offset = 0
        if info.is_method and isinstance(call.func, ast.Attribute):
            offset = 1  # skip `self`
        taints: dict[str, str] = {}
        for i, origin in enumerate(arg_origins):
            if origin is None:
                continue
            idx = i + offset
            if idx < len(params):
                taints[params[idx]] = (
                    f"{origin}, via parameter {params[idx]!r} of {info.name}()"
                )
        for name, origin in kw_origins.items():
            if origin is not None and name is not None and name in params:
                taints[name] = (
                    f"{origin}, via parameter {name!r} of {info.name}()"
                )
        if taints:
            self.callee_taints.setdefault(info.qual, {}).update(taints)

    # ------------------------------------------------------------------
    # sinks

    def _check_sinks(
        self,
        call: ast.Call,
        resolved: str,
        basename: str,
        any_origin: str | None,
        receiver: str | None,
        kw_origins: dict[str | None, str | None],
    ) -> bool:
        origin = any_origin or receiver or ""
        if resolved == "float" and any_origin:
            self._hit("XF501", call, any_origin, "float() cast")
            return True
        if resolved in _F32_CASTS and any_origin:
            self._hit("XF502", call, any_origin, f"{resolved}() cast")
            return True
        if basename == "astype" and receiver and self._is_f32_dtype(call):
            self._hit("XF502", call, receiver, ".astype(float32/float16) cast")
            return True
        if (
            resolved in {"numpy.array", "numpy.asarray"}
            and any_origin
            and self._is_f32_dtype(call)
        ):
            self._hit("XF502", call, any_origin, f"{basename}(..., dtype=float32) cast")
            return True
        if resolved == "sum" and any_origin:
            self._hit("XF503", call, any_origin, "builtin sum()")
            return True
        if resolved in _SUM_CALLS and any_origin:
            self._hit("XF503", call, any_origin, f"{resolved}()")
            return True
        if basename == "sum" and receiver:
            self._hit("XF503", call, receiver, ".sum()")
            return True
        if resolved in _ROUNDING_CALLS and any_origin:
            self._hit("XF504", call, any_origin, f"{resolved}()")
            return True
        if resolved in _LOSSY_CALLS and (any_origin or receiver):
            self._hit("XF505", call, origin, f"{resolved}()")
            return True
        return False

    def _is_f32_dtype(self, call: ast.Call) -> bool:
        candidates: list[ast.expr] = list(call.args)
        candidates.extend(
            kw.value for kw in call.keywords if kw.arg == "dtype"
        )
        for cand in candidates:
            if isinstance(cand, ast.Constant) and cand.value in _F32_DTYPE_STRINGS:
                return True
            if isinstance(cand, (ast.Name, ast.Attribute)):
                dotted = self.flow.project.resolve(self.ctx, cand, self.scope)
                if dotted in _F32_CASTS:
                    return True
        return False

    def _hit(self, rule_id: str, node: ast.AST, origin: str, sink: str) -> None:
        if not self.collect:
            return
        self.hits.append(
            FlowHit(
                rule_id=rule_id,
                ctx_path=self.ctx.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                origin=origin,
                sink=sink,
            )
        )


def iter_hits(flow: ExactFlow, ctx_path: str, rule_id: str) -> Iterator[FlowHit]:
    for hit in flow.hits:
        if hit.ctx_path == ctx_path and hit.rule_id == rule_id:
            yield hit
