"""Static-analysis subsystem: the invariants behind ``repro lint``.

The reproduction's correctness rests on properties no general-purpose
linter checks:

* **Precision safety** — the bit-exact modules (:mod:`repro.types`,
  :mod:`repro.arith`, :mod:`repro.mxu`) must never round through Python
  floats or ``math.*`` arithmetic; all format rounding routes through
  :func:`repro.types.quantize` / :mod:`repro.types.rounding`, float
  equality is restricted to an exact-comparison allowlist, and every
  constant-foldable accumulator shift must fit the 48-bit window
  (PAPER.md Eq. 3-9: exact 12-bit splits, 48-bit shifted accumulation).
* **Determinism** — emulation and campaign paths must thread explicit
  seeds; an unseeded RNG makes results unreproducible.
* **Fork safety** — everything shipped through
  :func:`repro.parallel.parallel_map` must be picklable, must not mutate
  module-level state, and every shared-memory segment must be released
  on all paths.
* **Resilience hygiene** — no bare ``except``; ``pickle.load`` on cache
  or checkpoint bytes only inside the corruption-handling wrappers.

:func:`lint_paths` runs every registered rule over a file tree and
returns structured :class:`Finding` records; the ``repro lint`` CLI
subcommand wraps it with CI-grade exit codes. Rules live in
:mod:`repro.analysis.rules` and register themselves via
:func:`repro.analysis.registry.register`.
"""

from __future__ import annotations

from .config import LintConfig, load_config
from .engine import LintReport, apply_fixes, lint_file, lint_paths
from .findings import Finding, Severity
from .flow import ExactFlow
from .graph import ProjectContext, build_project, module_name_for
from .registry import Rule, all_rules, get_rule
from .sarif import render_sarif, to_sarif

__all__ = [
    "Finding",
    "Severity",
    "LintConfig",
    "load_config",
    "LintReport",
    "lint_file",
    "lint_paths",
    "apply_fixes",
    "Rule",
    "all_rules",
    "get_rule",
    "ProjectContext",
    "build_project",
    "module_name_for",
    "ExactFlow",
    "to_sarif",
    "render_sarif",
]
