"""Lint configuration: ``[tool.repro.lint]`` in ``pyproject.toml``.

Everything has a working default, so the analyzer runs unconfigured on
any checkout; the pyproject table overrides module scopes, the exact
float-comparison allowlist, per-rule severities, and per-rule path
allowlists. Example::

    [tool.repro.lint]
    bit_exact = ["repro/types/", "repro/arith/", "repro/mxu/"]
    exact_float_literals = [0.0, 1.0, -1.0, 2.0]

    [tool.repro.lint.severity]
    DT202 = "warning"     # or "off"

    [tool.repro.lint.allow]
    PS101 = ["repro/arith/exact.py"]   # path-fragment allowlist
"""

from __future__ import annotations

import ast
import tomllib
from dataclasses import dataclass, field
from pathlib import Path

from .findings import Severity

__all__ = ["LintConfig", "load_config", "DEFAULT_ACC_WINDOW_BITS"]

#: Fallback accumulation-window width when ``repro.arith.accumulator``
#: cannot be located (Section IV-A: 48-bit registers).
DEFAULT_ACC_WINDOW_BITS = 48

#: Multiplier-input slice width (Section IV-A: 12-bit significands).
DEFAULT_SLICE_BITS = 12

#: ``math`` attributes that never smuggle a rounding into a bit-exact
#: module: integer-valued helpers and constants.
DEFAULT_MATH_ALLOWED = frozenset(
    {"ceil", "floor", "trunc", "comb", "perm", "factorial", "gcd", "lcm",
     "isqrt", "inf", "nan", "pi", "e", "isfinite", "isnan", "isinf",
     "copysign", "frexp", "ldexp"}
)

#: Float literals whose ``==``/``!=`` comparison is exact by construction
#: (signed zero and small powers of two used as sentinels).
DEFAULT_EXACT_FLOATS = frozenset({0.0, 1.0, -1.0, 2.0, -2.0, 0.5})

#: Qualified names whose results live in the bit-exact domain: the split /
#: lane-product / windowed-accumulate intermediates of the M3XU datapath.
#: Anything flowing out of these must stay exact until it passes through
#: ``quantize``/``quantize_complex`` (the sanctioned rounding API).
DEFAULT_EXACT_SOURCES = (
    "repro.arith.accumulator.aligned_sum",
    "repro.arith.accumulator.aligned_sum_groups",
    "repro.arith.accumulator.sequential_windowed_sum",
    "repro.arith.accumulator.segmented_windowed_sum",
    "repro.arith.accumulator.segmented_windowed_sum_f32",
    "repro.arith.accumulator.int_window_to_float",
    "repro.arith.exact.exact_dot",
    "repro.mxu.bitlevel.split_fp32_bits",
    "repro.mxu.bitlevel.bit_level_fp32_dot",
    "repro.mxu.bitlevel.bit_level_fp32c_dot",
    "repro.mxu.vectorized.split_fp32_fields",
    "repro.mxu.vectorized.fp32_bit_fields",
    "repro.mxu.dataflow.lane_products",
    "repro.mxu.fused.grouped_lane_products",
)

#: Method basenames whose results are exact-domain intermediates on any
#: receiver (the per-part MMA decomposition of every MXU model).
DEFAULT_EXACT_SOURCE_METHODS = ("mma_parts",)

#: Call basenames that *launder* exactness: the sanctioned rounding API.
#: A value that has passed through these is an ordinary float again.
DEFAULT_EXACT_SANITIZERS = ("quantize", "quantize_complex")

#: Call names (resolved through imports) that block the calling thread —
#: reaching one of these from a coroutine without an executor hop stalls
#: the event loop (AS601). Parallel entrypoints are blocking implicitly.
DEFAULT_BLOCKING_CALLS = (
    "time.sleep",
    "open",
    "os.system",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "socket.create_connection",
    "urllib.request.urlopen",
)


@dataclass(frozen=True)
class LintConfig:
    """Resolved configuration for one lint run."""

    #: Path fragments naming the bit-exact modules (PS rules).
    bit_exact: tuple[str, ...] = ("repro/types/", "repro/arith/", "repro/mxu/")
    #: Path fragments allowed to call ``pickle.load(s)`` (RH402) — the
    #: corruption-handling wrappers from the cache/checkpoint subsystems.
    pickle_wrappers: tuple[str, ...] = (
        "repro/cache.py",
        "repro/resilience/checkpoint.py",
    )
    #: Names resolving to the parallel fan-out entry point (FS rules).
    parallel_entrypoints: tuple[str, ...] = ("parallel_map",)
    #: Path fragments where exactness-flow findings are *reported* (XF
    #: rules); taint still propagates project-wide.
    exact_flow: tuple[str, ...] = (
        "repro/types/", "repro/arith/", "repro/mxu/", "repro/gemm/",
        "repro/resilience/", "repro/serve/",
    )
    #: Qualified names producing exact-domain values (XF taint sources).
    exact_sources: tuple[str, ...] = DEFAULT_EXACT_SOURCES
    #: Method basenames producing exact-domain values on any receiver.
    exact_source_methods: tuple[str, ...] = DEFAULT_EXACT_SOURCE_METHODS
    #: Call basenames that launder exactness (sanctioned rounding API).
    exact_sanitizers: tuple[str, ...] = DEFAULT_EXACT_SANITIZERS
    #: Path fragments naming the asyncio serving layer (AS rules).
    serve_paths: tuple[str, ...] = ("repro/serve/",)
    #: Resolved call names that block the calling thread (AS601).
    blocking_calls: tuple[str, ...] = DEFAULT_BLOCKING_CALLS
    exact_float_literals: frozenset[float] = DEFAULT_EXACT_FLOATS
    math_allowed: frozenset[str] = DEFAULT_MATH_ALLOWED
    acc_window_bits: int = DEFAULT_ACC_WINDOW_BITS
    slice_bits: int = DEFAULT_SLICE_BITS
    #: rule-id -> severity override.
    severity: dict[str, Severity] = field(default_factory=dict)
    #: rule-id -> path fragments where the rule is suppressed.
    allow: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def rule_severity(self, rule_id: str, default: Severity) -> Severity:
        return self.severity.get(rule_id, default)

    def is_bit_exact(self, rel_path: str) -> bool:
        norm = rel_path.replace("\\", "/")
        return any(frag in norm for frag in self.bit_exact)

    def is_pickle_wrapper(self, rel_path: str) -> bool:
        norm = rel_path.replace("\\", "/")
        return any(frag in norm for frag in self.pickle_wrappers)

    def is_exact_flow(self, rel_path: str) -> bool:
        norm = rel_path.replace("\\", "/")
        return any(frag in norm for frag in self.exact_flow)

    def is_serve(self, rel_path: str) -> bool:
        norm = rel_path.replace("\\", "/")
        return any(frag in norm for frag in self.serve_paths)

    def is_path_allowed(self, rule_id: str, rel_path: str) -> bool:
        norm = rel_path.replace("\\", "/")
        return any(frag in norm for frag in self.allow.get(rule_id, ()))


def _find_pyproject(start: Path) -> Path | None:
    for candidate in [start, *start.parents]:
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def _acc_window_from_source(pyproject: Path) -> int:
    """Read ``M3XU_ACC_BITS`` straight out of ``repro.arith.accumulator``.

    The lint invariant must track the constant the models actually use,
    not a copy that can drift; parsed statically so linting never imports
    (and therefore never executes) the code under analysis.
    """
    source = pyproject.parent / "src" / "repro" / "arith" / "accumulator.py"
    if not source.is_file():
        return DEFAULT_ACC_WINDOW_BITS
    try:
        tree = ast.parse(source.read_text(encoding="utf-8"))
    except SyntaxError:
        return DEFAULT_ACC_WINDOW_BITS
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "M3XU_ACC_BITS"
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, int)
        ):
            return node.value.value
    return DEFAULT_ACC_WINDOW_BITS


def load_config(start: Path | str | None = None) -> LintConfig:
    """Load the lint configuration for the tree containing *start*.

    Walks up to the nearest ``pyproject.toml``; missing file or missing
    ``[tool.repro.lint]`` table yields the defaults.
    """
    start_path = Path(start) if start is not None else Path.cwd()
    if start_path.is_file():
        start_path = start_path.parent
    pyproject = _find_pyproject(start_path.resolve())
    if pyproject is None:
        return LintConfig()

    with open(pyproject, "rb") as fh:
        data = tomllib.load(fh)
    table = data.get("tool", {}).get("repro", {}).get("lint", {})

    severity = {
        rule: Severity.parse(value)
        for rule, value in table.get("severity", {}).items()
    }
    allow = {
        rule: tuple(paths) for rule, paths in table.get("allow", {}).items()
    }
    defaults = LintConfig()
    return LintConfig(
        bit_exact=tuple(table.get("bit_exact", defaults.bit_exact)),
        pickle_wrappers=tuple(
            table.get("pickle_wrappers", defaults.pickle_wrappers)
        ),
        parallel_entrypoints=tuple(
            table.get("parallel_entrypoints", defaults.parallel_entrypoints)
        ),
        exact_flow=tuple(table.get("exact_flow", defaults.exact_flow)),
        exact_sources=tuple(
            table.get("exact_sources", defaults.exact_sources)
        ),
        exact_source_methods=tuple(
            table.get("exact_source_methods", defaults.exact_source_methods)
        ),
        exact_sanitizers=tuple(
            table.get("exact_sanitizers", defaults.exact_sanitizers)
        ),
        serve_paths=tuple(table.get("serve_paths", defaults.serve_paths)),
        blocking_calls=tuple(
            table.get("blocking_calls", defaults.blocking_calls)
        ),
        exact_float_literals=frozenset(
            float(x) for x in table.get(
                "exact_float_literals", defaults.exact_float_literals
            )
        ),
        math_allowed=frozenset(
            table.get("math_allowed", defaults.math_allowed)
        ),
        acc_window_bits=int(
            table.get("acc_window_bits", _acc_window_from_source(pyproject))
        ),
        slice_bits=int(table.get("slice_bits", defaults.slice_bits)),
        severity=severity,
        allow=allow,
    )
