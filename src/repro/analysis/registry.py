"""Rule base class and registry.

A rule subclasses :class:`Rule`, sets its class attributes, implements
``check``, and registers itself with the :func:`register` decorator::

    @register
    class BareExcept(Rule):
        rule_id = "RH401"
        pack = "resilience-hygiene"
        summary = "bare ``except:`` swallows SystemExit/KeyboardInterrupt"

        def check(self, ctx, cfg):
            ...yield findings...

Rule ids are namespaced by pack: ``PS`` precision-safety, ``DT``
determinism, ``FS`` fork-safety, ``RH`` resilience hygiene.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .config import LintConfig
from .context import ModuleContext
from .findings import Finding, Severity

__all__ = ["Rule", "register", "all_rules", "get_rule"]

_REGISTRY: dict[str, "Rule"] = {}


class Rule:
    """One statically-checkable invariant."""

    rule_id: str = ""
    pack: str = ""
    summary: str = ""
    default_severity: Severity = Severity.ERROR
    #: True when :meth:`fix` can rewrite offending lines safely.
    fixable: bool = False

    def applies_to(self, ctx: ModuleContext, cfg: LintConfig) -> bool:
        """Whether this rule scans *ctx* at all (scope gate)."""
        return True

    def check(
        self, ctx: ModuleContext, cfg: LintConfig
    ) -> Iterable[Finding]:  # pragma: no cover - abstract
        raise NotImplementedError

    def fix(
        self, ctx: ModuleContext, finding: Finding
    ) -> tuple[int, str, str] | None:
        """Optional safe autofix: ``(line_no, old_line, new_line)``.

        Only called when :attr:`fixable` is True; returning ``None``
        declines to fix this particular finding.
        """
        return None

    def finding(
        self,
        ctx: ModuleContext,
        line: int,
        col: int,
        message: str,
        cfg: LintConfig,
    ) -> Finding:
        """Build a finding with the configured severity for this rule."""
        return Finding(
            path=ctx.path,
            line=line,
            col=col,
            rule_id=self.rule_id,
            message=message,
            severity=cfg.rule_severity(self.rule_id, self.default_severity),
            fixable=self.fixable,
        )


def register(cls: type[Rule]) -> type[Rule]:
    rule = cls()
    if not rule.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule
    return cls


def _ensure_loaded() -> None:
    # Importing the rules package populates the registry as a side effect.
    from . import rules  # noqa: F401


def all_rules() -> Iterator[Rule]:
    _ensure_loaded()
    for rule_id in sorted(_REGISTRY):
        yield _REGISTRY[rule_id]


def get_rule(rule_id: str) -> Rule:
    _ensure_loaded()
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {sorted(_REGISTRY)}"
        ) from None
