"""Per-module analysis context shared by every rule.

One :class:`ModuleContext` is built per file: the parsed AST, a
child->parent node map, the module's constant environment (simple
``NAME = <int>`` bindings, for constant-folding shift amounts), the
imported-name table, and the inline ``# repro: allow[RULE-ID]``
suppression comments.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .graph import ProjectContext

__all__ = ["ModuleContext", "build_context", "fold_int"]

#: ``# repro: allow[PS101]`` or ``# repro: allow[PS101,FS303]: reason``.
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Z0-9,\s*]+)\]", re.IGNORECASE)


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one source file."""

    path: str                    # as given on the command line
    rel_path: str                # normalised, for scope/allowlist matching
    source: str
    tree: ast.Module
    lines: list[str]
    #: child node -> parent node, for structural context queries.
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)
    #: module-level integer constants (``_SLICE_BITS = 12``).
    int_constants: dict[str, int] = field(default_factory=dict)
    #: local name -> dotted origin (``quantize`` -> ``repro.types.quantize``).
    imports: dict[str, str] = field(default_factory=dict)
    #: line number -> set of rule ids suppressed there ("*" = all).
    allows: dict[int, set[str]] = field(default_factory=dict)
    #: dotted module name (``repro.serve.server``) when the file sits in a
    #: package; the bare stem otherwise. Filled in by the project builder.
    module_name: str = ""
    #: project-wide symbol table / call graph for the current lint run;
    #: ``None`` when a rule is run outside :func:`~.engine.lint_paths`.
    project: "ProjectContext | None" = field(default=None, repr=False)

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self.parents.get(node)

    def is_allowed(self, rule_id: str, line: int) -> bool:
        """Inline suppression on the finding's line or in the contiguous
        comment block immediately above it.

        The upward scan steps over decorator lines so that an allow
        comment placed above ``@decorator`` still attaches to findings
        anchored at the decorated ``def`` below it (only single-line
        decorators are stepped over; a decorator call split across lines
        ends the block).
        """
        if self._matches(rule_id, line):
            return True
        ln = line - 1
        while 1 <= ln <= len(self.lines):
            stripped = self.lines[ln - 1].lstrip()
            if stripped.startswith("#"):
                if self._matches(rule_id, ln):
                    return True
            elif not stripped.startswith("@"):
                break
            ln -= 1
        return False

    def _matches(self, rule_id: str, line: int) -> bool:
        ids = self.allows.get(line)
        return bool(ids) and ("*" in ids or rule_id in ids)

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        cur = self.parents.get(node)
        while cur is not None:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return cur
            cur = self.parents.get(cur)
        return None

    def dotted_name(self, node: ast.AST) -> str | None:
        """``a.b.c`` for Name/Attribute chains, resolved through imports."""
        parts: list[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        root = self.imports.get(cur.id, cur.id)
        parts.append(root)
        return ".".join(reversed(parts))


def _collect_allows(source: str) -> dict[int, set[str]]:
    allows: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _ALLOW_RE.search(tok.string)
            if match:
                ids = {
                    part.strip().upper() if part.strip() != "*" else "*"
                    for part in match.group(1).split(",")
                    if part.strip()
                }
                allows.setdefault(tok.start[0], set()).update(ids)
    except tokenize.TokenError:  # pragma: no cover - unterminated strings
        pass
    return allows


def _collect_imports(tree: ast.Module) -> dict[str, str]:
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return imports


def _collect_int_constants(tree: ast.Module) -> dict[str, int]:
    consts: dict[str, int] = {}
    for node in tree.body:
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        if (
            isinstance(target, ast.Name)
            and isinstance(value, ast.Constant)
            and type(value.value) is int
        ):
            consts[target.id] = value.value
    return consts


def fold_int(node: ast.expr, env: dict[str, int]) -> int | None:
    """Constant-fold *node* to an int, or ``None`` when not foldable.

    Handles literals, module-level constant names, unary +/-, and the
    arithmetic/shift binary operators — enough to evaluate every shift
    amount and schedule entry in the bit-exact modules.
    """
    if isinstance(node, ast.Constant) and type(node.value) is int:
        return node.value
    if isinstance(node, ast.Name):
        return env.get(node.id)
    if isinstance(node, ast.UnaryOp):
        operand = fold_int(node.operand, env)
        if operand is None:
            return None
        if isinstance(node.op, ast.USub):
            return -operand
        if isinstance(node.op, ast.UAdd):
            return operand
        if isinstance(node.op, ast.Invert):
            return ~operand
        return None
    if isinstance(node, ast.BinOp):
        left = fold_int(node.left, env)
        right = fold_int(node.right, env)
        if left is None or right is None:
            return None
        try:
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.FloorDiv):
                return left // right
            if isinstance(node.op, ast.Mod):
                return left % right
            if isinstance(node.op, ast.LShift):
                return left << right
            if isinstance(node.op, ast.RShift):
                return left >> right
            if isinstance(node.op, ast.Pow) and right >= 0:
                return left**right
        except (ValueError, ZeroDivisionError, OverflowError):
            return None
    return None


def build_context(path: str, rel_path: str, source: str) -> ModuleContext:
    tree = ast.parse(source, filename=path)
    ctx = ModuleContext(
        path=path,
        rel_path=rel_path.replace("\\", "/"),
        source=source,
        tree=tree,
        lines=source.splitlines(),
        int_constants=_collect_int_constants(tree),
        imports=_collect_imports(tree),
        allows=_collect_allows(source),
    )
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            ctx.parents[child] = parent
    return ctx
