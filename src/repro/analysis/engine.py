"""Lint engine: file discovery, rule execution, suppression, autofix."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from .config import LintConfig, load_config
from .context import ModuleContext, build_context
from .findings import Finding, Severity, sort_findings
from .graph import build_project
from .registry import all_rules, get_rule

__all__ = ["LintReport", "lint_file", "lint_paths", "apply_fixes", "iter_python_files"]

#: Directory names never descended into.
_SKIP_DIRS = {
    "__pycache__", ".git", ".venv", "venv", "build", "dist",
    ".mypy_cache", ".ruff_cache", ".pytest_cache", "node_modules",
}


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: list[str] = field(default_factory=list)
    #: project symbol table / call graph of the run (``--graph`` export).
    project: object | None = field(default=None, repr=False, compare=False)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def exit_code(self) -> int:
        """CI contract: 0 clean (warnings allowed), 1 on any error."""
        return 1 if self.errors or self.parse_errors else 0

    def render(self) -> str:
        lines = [f.render() for f in self.findings]
        lines.extend(f"{path}: parse error" for path in self.parse_errors)
        n_err, n_warn = len(self.errors), len(self.warnings)
        lines.append(
            f"{self.files_checked} file(s) checked: "
            f"{n_err} error(s), {n_warn} warning(s)"
        )
        return "\n".join(lines)


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Every ``.py`` file under *paths* (files pass through), sorted."""
    files: set[Path] = set()
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            files.add(path)
        elif path.is_dir():
            for sub in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    files.add(sub)
    return sorted(files)


def _rel_path(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _run_rules(ctx: ModuleContext, cfg: LintConfig) -> list[Finding]:
    findings: list[Finding] = []
    for rule in all_rules():
        severity = cfg.rule_severity(rule.rule_id, rule.default_severity)
        if severity is Severity.OFF:
            continue
        if cfg.is_path_allowed(rule.rule_id, ctx.rel_path):
            continue
        if not rule.applies_to(ctx, cfg):
            continue
        for finding in rule.check(ctx, cfg):
            if ctx.is_allowed(finding.rule_id, finding.line):
                continue
            # Normalize to the *effective* severity so reports (--json,
            # --sarif) match exit-code behavior even when a rule built
            # its Finding directly instead of via Rule.finding().
            if finding.severity is not severity:
                finding = finding.with_severity(severity)
            findings.append(finding)
    return findings


def lint_file(
    path: Path | str, cfg: LintConfig | None = None
) -> list[Finding]:
    """Lint one file; raises ``SyntaxError`` on unparseable source.

    A single-module project is built so interprocedural rules still see
    same-file flows; use :func:`lint_paths` for cross-module analysis.
    """
    path = Path(path)
    if cfg is None:
        cfg = load_config(path)
    source = path.read_text(encoding="utf-8")
    ctx = build_context(str(path), _rel_path(path), source)
    build_project([ctx], entrypoints=cfg.parallel_entrypoints)
    return sort_findings(_run_rules(ctx, cfg))


def lint_paths(
    paths: list[Path | str], cfg: LintConfig | None = None
) -> LintReport:
    """Lint every Python file under *paths*.

    All files are parsed first and a project-wide symbol table / call
    graph is built over them (``ctx.project``), so the interprocedural
    packs (XF/AS/FS304) see every cross-module edge of the run.
    """
    resolved = [Path(p) for p in paths]
    if cfg is None:
        cfg = load_config(resolved[0] if resolved else None)
    report = LintReport()
    contexts: list[ModuleContext] = []
    for path in iter_python_files(resolved):
        report.files_checked += 1
        try:
            source = path.read_text(encoding="utf-8")
            contexts.append(build_context(str(path), _rel_path(path), source))
        except SyntaxError:
            report.parse_errors.append(str(path))
    report.project = build_project(
        contexts, entrypoints=cfg.parallel_entrypoints
    )
    for ctx in contexts:
        report.findings.extend(_run_rules(ctx, cfg))
    report.findings = sort_findings(report.findings)
    return report


def apply_fixes(report: LintReport) -> int:
    """Rewrite files for every fixable finding; returns the fix count.

    Fixes are applied bottom-up per file so earlier line numbers stay
    valid, and each fix is a single-line textual replacement the owning
    rule vouches for.
    """
    by_file: dict[str, list[Finding]] = {}
    for finding in report.findings:
        if finding.fixable:
            by_file.setdefault(finding.path, []).append(finding)

    applied = 0
    for path, findings in by_file.items():
        source = Path(path).read_text(encoding="utf-8")
        ctx = build_context(path, _rel_path(Path(path)), source)
        lines = source.splitlines(keepends=True)
        for finding in sorted(findings, key=lambda f: -f.line):
            rule = get_rule(finding.rule_id)
            fix = rule.fix(ctx, finding)
            if fix is None:
                continue
            line_no, old, new = fix
            stripped = lines[line_no - 1].rstrip("\r\n")
            if stripped != old:
                continue  # file drifted since the report was built
            ending = lines[line_no - 1][len(stripped):]
            lines[line_no - 1] = new + ending
            applied += 1
        Path(path).write_text("".join(lines), encoding="utf-8")
    return applied
