"""Project-wide symbol table and call graph: the interprocedural backbone.

Built once per lint run over every file in the run and attached to each
:class:`~repro.analysis.context.ModuleContext` as ``ctx.project``, so
rules can ask questions a single-file pass cannot answer:

* *Which function does this call resolve to?* — imports (including
  relative imports and ``__init__`` re-export chains), module-level
  defs, methods reached through ``self``/``cls``, attributes whose type
  was inferred from ``self.x = ClassName(...)``, and locals assigned
  from known constructors are all resolved to qualified names.
* *What is reachable from here?* — BFS over typed edges. Edge kinds:
  ``call`` (direct invocation), ``ref`` (a function passed as a value —
  a callback that may run later), ``executor`` (handed to
  ``run_in_executor``/``submit``/``to_thread``: runs on the compute
  thread, not the event loop), and ``task`` (submitted to a parallel
  entrypoint: runs in a forked worker process). Rules pick which kinds
  to traverse, which is what lets AS601 stop at the executor boundary
  and FS304 follow a task closure into the worker.
* *Which classes are lock-guarded?* — any class whose body constructs a
  ``threading``/``asyncio`` lock is treated as having a documented
  cross-thread handoff (AS603).

Everything is resolved statically from the ASTs already parsed for the
per-module rules; the analyzed code is never imported or executed.
"""

from __future__ import annotations

import ast
import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

from .context import ModuleContext

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "CallSite",
    "ProjectContext",
    "build_project",
    "module_name_for",
]

#: Lock constructors whose presence in a class body marks the class as
#: having an explicit cross-thread handoff discipline.
_LOCK_FACTORIES = {
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
    "asyncio.Lock", "asyncio.Condition", "asyncio.Semaphore",
    "multiprocessing.Lock", "multiprocessing.RLock",
}

#: Call basenames that hand their callable argument to another thread.
_EXECUTOR_HOPS = {"run_in_executor", "to_thread", "submit"}

#: Call basenames that schedule (rather than invoke) their argument.
_SCHEDULERS = {"create_task", "ensure_future", "call_soon", "call_later",
               "call_at", "add_done_callback"}


def module_name_for(path: Path) -> str:
    """Dotted module name derived from the package structure on disk.

    Walks up while ``__init__.py`` exists, so ``src/repro/serve/server.py``
    becomes ``repro.serve.server`` regardless of the lint invocation's
    working directory. A bare script resolves to its stem.
    """
    path = Path(path)
    parts: list[str] = [] if path.stem == "__init__" else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.insert(0, parent.name)
        new_parent = parent.parent
        if new_parent == parent:  # filesystem root
            break
        parent = new_parent
    return ".".join(parts) if parts else path.stem


@dataclass
class FunctionInfo:
    """One function or method definition anywhere in the project."""

    qual: str
    module: str
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    ctx: ModuleContext
    #: Qualified name of the owning class for methods.
    cls: str | None = None
    #: Qualified name of the enclosing function for nested defs.
    nested_in: str | None = None

    @property
    def is_async(self) -> bool:
        return isinstance(self.node, ast.AsyncFunctionDef)

    @property
    def params(self) -> list[str]:
        a = self.node.args
        return [p.arg for p in [*a.posonlyargs, *a.args, *a.kwonlyargs]]

    @property
    def is_method(self) -> bool:
        return self.cls is not None


@dataclass
class ClassInfo:
    """One class definition: methods, inferred attribute types, bases."""

    qual: str
    module: str
    node: ast.ClassDef
    ctx: ModuleContext
    bases: list[str] = field(default_factory=list)
    #: method name -> function qual.
    methods: dict[str, str] = field(default_factory=dict)
    #: ``self.X`` attribute name -> inferred class qual.
    attr_types: dict[str, str] = field(default_factory=dict)
    #: True when the class body constructs a threading/asyncio lock.
    has_lock: bool = False


@dataclass
class CallSite:
    """One typed edge of the call graph, anchored at a source location."""

    caller: str            # qual of the enclosing function, or ``mod.<module>``
    callee: str            # resolved qualified (or external dotted) name
    kind: str              # "call" | "ref" | "executor" | "task"
    node: ast.AST
    ctx: ModuleContext

    @property
    def line(self) -> int:
        return getattr(self.node, "lineno", 0)

    @property
    def col(self) -> int:
        return getattr(self.node, "col_offset", 0)


@dataclass
class _Scope:
    """Name-resolution environment inside one function body."""

    self_cls: str | None = None
    #: local variable -> class qual (``v = ClassName(...)``).
    local_types: dict[str, str] = field(default_factory=dict)
    #: locally-defined nested function name -> qual.
    local_fns: dict[str, str] = field(default_factory=dict)


class ProjectContext:
    """Symbol table + call graph for every module of one lint run."""

    def __init__(self, entrypoints: Iterable[str] = ("parallel_map",)) -> None:
        self.entrypoints = tuple(entrypoints)
        self.modules: dict[str, ModuleContext] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.calls: list[CallSite] = []
        #: per-module resolved import table (relative imports expanded).
        self.import_map: dict[str, dict[str, str]] = {}
        self._edges: dict[str, list[CallSite]] = {}
        self._rev_edges: dict[str, list[CallSite]] = {}
        self._fn_by_node: dict[ast.AST, str] = {}
        self._scopes: dict[str, _Scope] = {}
        self._cache: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # shared per-run analysis cache (flow/async results are project-wide)

    def cached(self, key: str, factory: Callable[[], Any]) -> Any:
        if key not in self._cache:
            self._cache[key] = factory()
        return self._cache[key]

    # ------------------------------------------------------------------
    # lookups

    def function(self, qual: str) -> FunctionInfo | None:
        return self.functions.get(qual)

    def enclosing_qual(self, ctx: ModuleContext, node: ast.AST) -> str:
        """Qual of the function containing *node* (``mod.<module>`` at
        module toplevel)."""
        fn = ctx.enclosing_function(node)
        if fn is not None and fn in self._fn_by_node:
            return self._fn_by_node[fn]
        return f"{ctx.module_name}.<module>"

    def scope_of(self, qual: str) -> _Scope:
        return self._scopes.get(qual, _Scope())

    def edges_from(self, qual: str) -> list[CallSite]:
        return self._edges.get(qual, [])

    def callers_of(self, qual: str) -> list[CallSite]:
        return self._rev_edges.get(qual, [])

    def async_functions(self, ctx: ModuleContext | None = None) -> Iterator[FunctionInfo]:
        for info in self.functions.values():
            if info.is_async and (ctx is None or info.ctx is ctx):
                yield info

    # ------------------------------------------------------------------
    # name resolution

    def canonical(self, dotted: str, _depth: int = 0) -> str:
        """Chase ``__init__`` re-exports: ``repro.gemm.TiledGEMM`` ->
        ``repro.gemm.tiled.TiledGEMM``."""
        if _depth > 16 or not dotted:
            return dotted
        if (
            dotted in self.functions
            or dotted in self.classes
            or dotted in self.modules
        ):
            return dotted
        head, _, tail = dotted.rpartition(".")
        if not head:
            return dotted
        if head in self.modules:
            redirect = self.import_map.get(head, {}).get(tail)
            if redirect is not None:
                return self.canonical(redirect, _depth + 1)
            return dotted
        chased = self.canonical(head, _depth + 1)
        if chased != head:
            return self.canonical(f"{chased}.{tail}", _depth + 1)
        return dotted

    def _attr_of(self, qual: str, attr: str, _depth: int = 0) -> str | None:
        """Resolve one attribute step against a known entity."""
        if _depth > 16:
            return None
        cls = self.classes.get(qual)
        if cls is not None:
            if attr in cls.methods:
                return cls.methods[attr]
            if attr in cls.attr_types:
                return cls.attr_types[attr]
            for base in cls.bases:
                found = self._attr_of(base, attr, _depth + 1)
                if found is not None and (
                    found in self.functions or found in self.classes
                ):
                    return found
            return None
        return None

    def resolve(
        self,
        ctx: ModuleContext,
        expr: ast.expr,
        scope: _Scope | None = None,
    ) -> str | None:
        """Resolve a Name/Attribute (or call-of-constructor) chain to a
        qualified project name or an external dotted name."""
        scope = scope or _Scope()
        attrs: list[str] = []
        cur: ast.expr = expr
        while isinstance(cur, ast.Attribute):
            attrs.append(cur.attr)
            cur = cur.value
        attrs.reverse()

        base: str | None
        if isinstance(cur, ast.Name):
            base = self._resolve_root(ctx, cur.id, scope)
        elif isinstance(cur, ast.Call):
            # ``ClassName(...).method`` — type of the constructed value.
            inner = self.resolve(ctx, cur.func, scope)
            base = inner if inner in self.classes else None
        else:
            return None
        if base is None:
            return None

        qual = base
        for i, attr in enumerate(attrs):
            step = self._attr_of(qual, attr)
            if step is None:
                return self.canonical(".".join([qual, *attrs[i:]]))
            qual = step
        return qual

    def _resolve_root(self, ctx: ModuleContext, name: str, scope: _Scope) -> str:
        if name in ("self", "cls") and scope.self_cls:
            return scope.self_cls
        if name in scope.local_fns:
            return scope.local_fns[name]
        if name in scope.local_types:
            return scope.local_types[name]
        mod = ctx.module_name
        local = f"{mod}.{name}"
        if local in self.functions or local in self.classes:
            return local
        imported = self.import_map.get(mod, {}).get(name)
        if imported is not None:
            return self.canonical(imported)
        return name

    def resolve_call(self, ctx: ModuleContext, call: ast.Call) -> str | None:
        """Resolve the callee of *call* using the scope of its enclosing
        function (convenience for rules walking a module AST)."""
        qual = self.enclosing_qual(ctx, call)
        return self.resolve(ctx, call.func, self._scopes.get(qual))

    # ------------------------------------------------------------------
    # reachability

    def reachable(
        self,
        starts: Iterable[str],
        kinds: tuple[str, ...] = ("call",),
        stop: Callable[[str], bool] | None = None,
    ) -> dict[str, tuple[str, ...]]:
        """BFS over edges of the given kinds.

        Returns reached qual -> path of quals from the nearest start.
        ``stop(qual)`` prevents *expanding* a node (it is still reported
        as reached) — how AS601 avoids re-attributing an awaited
        coroutine's own blocking calls to its caller.
        """
        seen: dict[str, tuple[str, ...]] = {}
        queue: deque[str] = deque()
        for start in starts:
            if start not in seen:
                seen[start] = (start,)
                queue.append(start)
        while queue:
            cur = queue.popleft()
            if stop is not None and len(seen[cur]) > 1 and stop(cur):
                continue
            for site in self._edges.get(cur, ()):
                if site.kind not in kinds:
                    continue
                if site.callee in seen:
                    continue
                seen[site.callee] = seen[cur] + (site.callee,)
                if site.callee in self.functions:
                    queue.append(site.callee)
        return seen

    # ------------------------------------------------------------------
    # export

    def to_json(self) -> str:
        nodes = [
            {
                "qual": info.qual,
                "module": info.module,
                "file": info.ctx.rel_path,
                "line": info.node.lineno,
                "async": info.is_async,
                "class": info.cls,
            }
            for _, info in sorted(self.functions.items())
        ]
        edges = [
            {
                "caller": site.caller,
                "callee": site.callee,
                "kind": site.kind,
                "file": site.ctx.rel_path,
                "line": site.line,
            }
            for site in self.calls
        ]
        return json.dumps(
            {
                "modules": sorted(self.modules),
                "functions": nodes,
                "edges": edges,
            },
            indent=2,
        )

    # ------------------------------------------------------------------
    # construction

    def _add_edge(self, site: CallSite) -> None:
        self.calls.append(site)
        self._edges.setdefault(site.caller, []).append(site)
        self._rev_edges.setdefault(site.callee, []).append(site)


def _resolve_import_base(module_name: str, is_package: bool, node: ast.ImportFrom) -> str:
    """Absolute dotted base for an ``ImportFrom`` (relative levels expanded)."""
    if node.level == 0:
        return node.module or ""
    parts = module_name.split(".") if module_name else []
    anchor = parts if is_package else parts[:-1]
    cut = len(anchor) - (node.level - 1)
    anchor = anchor[: max(cut, 0)]
    base = ".".join(anchor)
    if node.module:
        base = f"{base}.{node.module}" if base else node.module
    return base


def _collect_import_map(ctx: ModuleContext, is_package: bool) -> dict[str, str]:
    imports: dict[str, str] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    imports[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_import_base(ctx.module_name, is_package, node)
            for alias in node.names:
                if alias.name == "*":
                    continue
                target = f"{base}.{alias.name}" if base else alias.name
                imports[alias.asname or alias.name] = target
    return imports


def _infer_type(
    project: ProjectContext,
    ctx: ModuleContext,
    expr: ast.expr,
    scope: _Scope,
    _depth: int = 0,
) -> str | None:
    """Class qual of *expr*'s value, for the constructor patterns the
    serving layer actually uses (``X()``, ``a or X()``, ``a if c else X()``)."""
    if _depth > 8:
        return None
    if isinstance(expr, ast.Call):
        qual = project.resolve(ctx, expr.func, scope)
        return qual if qual in project.classes else None
    if isinstance(expr, ast.BoolOp):
        for value in expr.values:
            found = _infer_type(project, ctx, value, scope, _depth + 1)
            if found:
                return found
        return None
    if isinstance(expr, ast.IfExp):
        return _infer_type(project, ctx, expr.body, scope, _depth + 1) or _infer_type(
            project, ctx, expr.orelse, scope, _depth + 1
        )
    if isinstance(expr, (ast.Name, ast.Attribute)):
        qual = project.resolve(ctx, expr, scope)
        if qual in project.classes:
            # ``self.x = other.attr`` where attr's type is known.
            return qual
    return None


def _collect_defs(project: ProjectContext, ctx: ModuleContext) -> None:
    """First pass: register every function, method and class."""

    def visit(body: list[ast.stmt], prefix: str, cls: str | None, nested_in: str | None) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}.{node.name}"
                info = FunctionInfo(
                    qual=qual,
                    module=ctx.module_name,
                    name=node.name,
                    node=node,
                    ctx=ctx,
                    cls=cls,
                    nested_in=nested_in,
                )
                # First definition wins (overloads/ifdefs keep the first).
                project.functions.setdefault(qual, info)
                project._fn_by_node[node] = qual
                if cls is not None:
                    project.classes[cls].methods.setdefault(node.name, qual)
                visit(node.body, qual, None, qual)
            elif isinstance(node, ast.ClassDef):
                qual = f"{prefix}.{node.name}"
                project.classes.setdefault(
                    qual,
                    ClassInfo(qual=qual, module=ctx.module_name, node=node, ctx=ctx),
                )
                visit(node.body, qual, qual, nested_in)
            elif isinstance(node, (ast.If, ast.Try)):
                # defs guarded by TYPE_CHECKING / import fallbacks.
                for sub in ast.iter_child_nodes(node):
                    if isinstance(sub, ast.stmt):
                        visit([sub], prefix, cls, nested_in)

    visit(ctx.tree.body, ctx.module_name, None, None)


def _finish_classes(project: ProjectContext, ctx: ModuleContext) -> None:
    """Second pass: bases, lock detection, ``self.X`` attribute types."""
    for cls in project.classes.values():
        if cls.ctx is not ctx:
            continue
        for base in cls.node.bases:
            resolved = project.resolve(ctx, base) if isinstance(
                base, (ast.Name, ast.Attribute)
            ) else None
            if resolved:
                cls.bases.append(resolved)
        scope = _Scope(self_cls=cls.qual)
        for node in ast.walk(cls.node):
            if isinstance(node, ast.Call):
                dotted = project.resolve(ctx, node.func, scope)
                if dotted in _LOCK_FACTORIES:
                    cls.has_lock = True
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and value is not None
            ):
                inferred = _infer_type(project, ctx, value, scope)
                if inferred:
                    cls.attr_types.setdefault(target.attr, inferred)


def _build_scope(project: ProjectContext, info: FunctionInfo) -> _Scope:
    scope = _Scope(self_cls=info.cls)
    for node in ast.walk(info.node):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not info.node:
            qual = project._fn_by_node.get(node)
            if qual is not None and project.functions[qual].nested_in == info.qual:
                scope.local_fns[node.name] = qual
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                inferred = _infer_type(project, info.ctx, node.value, scope)
                if inferred:
                    scope.local_types.setdefault(target.id, inferred)
    return scope


def _callable_args(call: ast.Call) -> Iterator[ast.expr]:
    """Argument expressions of *call* that may carry a function value."""
    for arg in call.args:
        yield arg.value if isinstance(arg, ast.Starred) else arg
    for kw in call.keywords:
        if kw.value is not None:
            yield kw.value


def _collect_edges(project: ProjectContext, ctx: ModuleContext) -> None:
    for call in ast.walk(ctx.tree):
        if not isinstance(call, ast.Call):
            continue
        caller = project.enclosing_qual(ctx, call)
        scope = project.scope_of(caller)
        callee = project.resolve(ctx, call.func, scope)
        basename = callee.rsplit(".", 1)[-1] if callee else ""
        if callee:
            project._add_edge(CallSite(caller, callee, "call", call, ctx))

        # Callable handed to another thread: run_in_executor(ex, fn, ...)
        # and friends. The function runs executor-side, not loop-side.
        if basename in _EXECUTOR_HOPS:
            idx = 1 if basename == "run_in_executor" else 0
            if len(call.args) > idx:
                target = project.resolve(ctx, call.args[idx], scope)
                if target in project.functions:
                    project._add_edge(
                        CallSite(caller, target, "executor", call, ctx)
                    )
            continue

        # Callable shipped to a forked worker via a parallel entrypoint.
        if basename in project.entrypoints and call.args:
            target = project.resolve(ctx, call.args[0], scope)
            if target in project.functions:
                project._add_edge(CallSite(caller, target, "task", call, ctx))
            continue

        # Any other function passed as a value (callbacks, schedulers):
        # a "ref" edge — the function may run later in the same thread
        # context as the caller.
        for arg in _callable_args(call):
            if isinstance(arg, (ast.Name, ast.Attribute)):
                target = project.resolve(ctx, arg, scope)
                if target in project.functions and target != callee:
                    project._add_edge(CallSite(caller, target, "ref", call, ctx))


def build_project(
    contexts: Iterable[ModuleContext],
    entrypoints: Iterable[str] = ("parallel_map",),
) -> ProjectContext:
    """Build the symbol table + call graph and attach it to every context."""
    project = ProjectContext(entrypoints=entrypoints)
    ctx_list = list(contexts)

    for ctx in ctx_list:
        if not ctx.module_name:
            ctx.module_name = module_name_for(Path(ctx.path))
        # Duplicate module names (two fixture trees): last one wins in the
        # module table, but functions keep per-file identity via ctx.
        project.modules[ctx.module_name] = ctx

    for ctx in ctx_list:
        is_package = Path(ctx.path).stem == "__init__"
        project.import_map[ctx.module_name] = _collect_import_map(ctx, is_package)

    for ctx in ctx_list:
        _collect_defs(project, ctx)
    for ctx in ctx_list:
        _finish_classes(project, ctx)
    for info in project.functions.values():
        project._scopes[info.qual] = _build_scope(project, info)
    for ctx in ctx_list:
        _collect_edges(project, ctx)

    for ctx in ctx_list:
        ctx.project = project
    return project
