"""Vectorised quantisation of float64 arrays to arbitrary formats.

The numeric models in this package keep every value as a float64 that is
*exactly representable* in the format it claims to be. :func:`quantize`
is the enforcement point: it rounds an arbitrary float64 array to the
target :class:`~repro.types.formats.FloatFormat` (round-to-nearest-even by
default, matching IEEE conversion hardware), handling subnormals, overflow
to infinity, and NaN propagation.

This is the model of every down-conversion in the paper's pipelines:

* FP32 -> TF32 inside a Tensor Core TF32 MMA (13 mantissa bits dropped),
* FP32 -> BF16 for the EEHC software scheme,
* FP64 -> FP32 result write-back,
* FP32 -> FP16 for mixed-precision forward passes.
"""

from __future__ import annotations

import numpy as np

from .formats import FP16, FP32, FP64, FloatFormat
from .rounding import RoundingMode

__all__ = ["quantize", "representable", "quantize_complex"]


def _quantize_generic(
    x: np.ndarray, fmt: FloatFormat, mode: RoundingMode
) -> np.ndarray:
    """Grid-rounding implementation for arbitrary formats.

    For each finite value the representable grid spacing (ulp) is derived
    from the clamped exponent; the value is scaled onto that grid with
    ``np.ldexp`` (exact), rounded, and scaled back.
    """
    out = np.array(x, dtype=np.float64, copy=True)
    finite = np.isfinite(out) & (out != 0.0)
    if not np.any(finite):
        return out

    v = out[finite]
    # |v| = m * 2**e with m in [0.5, 1)  =>  unbiased exponent E = e - 1.
    _, e = np.frexp(np.abs(v))
    exp = e.astype(np.int64) - 1
    # Below the normal range the grid stops shrinking: subnormal spacing.
    exp_eff = np.maximum(exp, fmt.emin)
    ulp_exp = exp_eff - fmt.mantissa_bits

    scaled = np.ldexp(v, -ulp_exp)
    if mode is RoundingMode.NEAREST_EVEN:
        snapped = np.rint(scaled)  # rint = round half to even
    else:
        snapped = np.trunc(scaled)
    q = np.ldexp(snapped, ulp_exp)

    # Overflow handling: anything that rounded past the largest finite
    # value becomes +/-inf (this matches RNE conversion: the rounding above
    # already decided between max and the next grid point, 2**(emax+1)).
    over = np.abs(q) > fmt.max_value
    if np.any(over):
        if mode is RoundingMode.NEAREST_EVEN:
            q[over] = np.copysign(np.inf, q[over])
        else:
            q[over] = np.copysign(fmt.max_value, q[over])

    out[finite] = q
    return out


def quantize(
    x: np.ndarray | float,
    fmt: FloatFormat,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> np.ndarray:
    """Round *x* to the nearest value representable in *fmt*.

    Parameters
    ----------
    x:
        Input values (any real dtype; converted to float64).
    fmt:
        Target format.
    mode:
        Rounding mode; RNE by default.

    Returns
    -------
    np.ndarray
        float64 array of the same shape whose every element is exactly
        representable in *fmt* (or ±inf / NaN).
    """
    x = np.asarray(x, dtype=np.float64)
    # Fast paths through native dtypes (bit-exact IEEE conversions). The
    # overflow-to-inf these casts perform is exactly the wanted semantics,
    # so the overflow warning is silenced.
    if mode is RoundingMode.NEAREST_EVEN:
        with np.errstate(over="ignore"):
            if fmt == FP64:
                return x.copy()
            if fmt == FP32:
                # repro: allow[PS105] quantize IS the rounding enforcement
                # point; the astype round-trip is the hardware RNE
                # conversion, cross-validated against _quantize_generic.
                return x.astype(np.float32).astype(np.float64)
            if fmt == FP16:
                # repro: allow[PS105] same as the FP32 fast path above
                return x.astype(np.float16).astype(np.float64)
    return _quantize_generic(x, fmt, mode)


def quantize_complex(
    x: np.ndarray,
    fmt: FloatFormat,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> np.ndarray:
    """Quantise the real and imaginary parts of a complex array to *fmt*.

    This models the interleaved FP32C layout of Section IV-B: a complex
    number is a pair of independent reals, each stored in *fmt*.
    """
    x = np.asarray(x, dtype=np.complex128)
    return quantize(x.real, fmt, mode) + 1j * quantize(x.imag, fmt, mode)


def representable(x: np.ndarray | float, fmt: FloatFormat) -> np.ndarray:
    """Elementwise test: is the value exactly representable in *fmt*?

    NaN and ±inf count as representable (they exist in every IEEE format).
    """
    x = np.asarray(x, dtype=np.float64)
    q = quantize(x, fmt)
    same = (q == x) | ~np.isfinite(x)
    # NaN != NaN, so patch those in explicitly.
    return same | np.isnan(x)
