"""Error metrics used throughout the accuracy studies.

The paper's central numerical claim (Section V-B) is that M3XU introduces
*no additional error* relative to conventional FP32 ALUs, while the
software alternatives lose "between one and several bits of precision".
These metrics quantify exactly that: ulp distance in a target format,
relative error, and "matching mantissa bits".
"""

from __future__ import annotations

import numpy as np

from .formats import FloatFormat

__all__ = ["ulp_error", "relative_error", "max_relative_error", "matching_bits"]


def ulp_error(
    approx: np.ndarray, exact: np.ndarray, fmt: FloatFormat
) -> np.ndarray:
    """Elementwise |approx - exact| measured in ulps of *fmt* at *exact*.

    The ulp is evaluated at the exponent of the exact value (clamped to the
    subnormal spacing below the normal range), the conventional definition
    for accuracy studies. Exact zeros with non-zero approximations report
    the error in units of the smallest subnormal.
    """
    approx = np.asarray(approx, dtype=np.float64)
    exact = np.asarray(exact, dtype=np.float64)
    nonzero = exact != 0.0
    _, e = np.frexp(np.abs(np.where(nonzero, exact, 1.0)))
    exp = np.maximum(e.astype(np.int64) - 1, fmt.emin)
    ulp = np.ldexp(1.0, (exp - fmt.mantissa_bits).astype(np.int64))
    ulp = np.where(nonzero, ulp, fmt.min_subnormal)
    return np.abs(approx - exact) / ulp


def relative_error(approx: np.ndarray, exact: np.ndarray) -> np.ndarray:
    """Elementwise relative error, with exact zeros mapped to absolute error."""
    approx = np.asarray(approx, dtype=np.float64)
    exact = np.asarray(exact, dtype=np.float64)
    denom = np.where(exact != 0.0, np.abs(exact), 1.0)
    return np.abs(approx - exact) / denom


def max_relative_error(approx: np.ndarray, exact: np.ndarray) -> float:
    """Maximum relative error over the array (ignoring non-finite refs)."""
    approx = np.asarray(approx, dtype=np.float64)
    exact = np.asarray(exact, dtype=np.float64)
    mask = np.isfinite(exact) & np.isfinite(approx)
    if not np.any(mask):
        return np.nan
    return float(np.max(relative_error(approx[mask], exact[mask])))


def matching_bits(approx: np.ndarray, exact: np.ndarray) -> float:
    """Average number of correct significand bits: -log2(max rel. error).

    Conventionally reported by mixed-precision GEMM papers (e.g. the EEHC
    and Ootomo baselines). Caps at 53 (float64 resolution of the reference).
    """
    err = max_relative_error(approx, exact)
    if np.isnan(err):
        return np.nan
    if err == 0.0:
        return 53.0
    return float(min(53.0, -np.log2(err)))
