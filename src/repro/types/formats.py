"""Floating-point format descriptors.

Every numeric model in this package is parameterised by a
:class:`FloatFormat`, a frozen description of an IEEE-754-style binary
floating-point format: one sign bit, ``exponent_bits`` exponent bits with the
usual bias, and ``mantissa_bits`` *explicit* fraction bits (the hidden
leading 1 is implied for normal numbers).

The formats that matter to the paper:

========  ==============  =====================================
Name      (s, e, m)       Role in the paper
========  ==============  =====================================
FP16      (1, 5, 10)      baseline Tensor Core input type
BF16      (1, 8, 7)       baseline input type; EEHC split base
TF32      (1, 8, 10)      Tensor Core "FP32-ish" input type
FP32      (1, 8, 23)      the precision M3XU adds natively
FP64      (1, 11, 52)     accumulator standard / M3XU extension
M3XU_IN   (1, 8, 11)      M3XU multiplier input: 12-bit mantissa
                          including the hidden bit (11 explicit)
========  ==============  =====================================

``M3XU_IN`` encodes the paper's requirement (Section IV-A) that each input
buffer entry hold a 1-bit sign, an 8-bit exponent and **12 bits of
mantissa** (hidden bit included), i.e. one more mantissa bit than the
(1, 8, 10+hidden=11) union format of existing Tensor Cores.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

__all__ = [
    "FloatFormat",
    "FP8_E4M3",
    "FP8_E5M2",
    "FP16",
    "BF16",
    "TF32",
    "FP32",
    "FP64",
    "M3XU_IN",
    "TENSORCORE_IN",
    "FORMATS",
    "format_by_name",
]


@dataclass(frozen=True)
class FloatFormat:
    """An IEEE-754-style binary floating-point format.

    Parameters
    ----------
    name:
        Human-readable identifier, e.g. ``"fp32"``.
    exponent_bits:
        Width of the biased exponent field.
    mantissa_bits:
        Number of *explicit* fraction bits (excludes the hidden bit).
    """

    name: str
    exponent_bits: int
    mantissa_bits: int

    def __post_init__(self) -> None:
        if self.exponent_bits < 2:
            raise ValueError(f"exponent_bits must be >= 2, got {self.exponent_bits}")
        if self.mantissa_bits < 1:
            raise ValueError(f"mantissa_bits must be >= 1, got {self.mantissa_bits}")
        if self.exponent_bits > 11 or self.mantissa_bits > 52:
            raise ValueError(
                "formats wider than FP64 cannot be represented exactly by the "
                f"float64-backed models: {self!r}"
            )

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------
    @property
    def total_bits(self) -> int:
        """Storage width in bits (sign + exponent + explicit mantissa)."""
        return 1 + self.exponent_bits + self.mantissa_bits

    @property
    def significand_bits(self) -> int:
        """Significand width including the hidden bit."""
        return self.mantissa_bits + 1

    @property
    def bias(self) -> int:
        """The IEEE exponent bias, ``2**(e-1) - 1``."""
        return (1 << (self.exponent_bits - 1)) - 1

    @property
    def emax(self) -> int:
        """Maximum unbiased exponent of a normal number."""
        return self.bias

    @property
    def emin(self) -> int:
        """Minimum unbiased exponent of a normal number."""
        return 1 - self.bias

    @property
    def max_value(self) -> float:
        """Largest finite representable magnitude."""
        frac = 2.0 - 2.0 ** (-self.mantissa_bits)
        return frac * 2.0**self.emax

    @property
    def min_normal(self) -> float:
        """Smallest positive normal magnitude."""
        return 2.0**self.emin

    @property
    def min_subnormal(self) -> float:
        """Smallest positive subnormal magnitude."""
        return 2.0 ** (self.emin - self.mantissa_bits)

    @property
    def machine_epsilon(self) -> float:
        """Distance from 1.0 to the next representable value."""
        return 2.0 ** (-self.mantissa_bits)

    # ------------------------------------------------------------------
    # Relationships between formats
    # ------------------------------------------------------------------
    def contains(self, other: "FloatFormat") -> bool:
        """True when every finite value of *other* is representable here."""
        return (
            self.exponent_bits >= other.exponent_bits
            and self.mantissa_bits >= other.mantissa_bits
        )

    def ulp(self, exponent: int) -> float:
        """The unit in the last place for values with the given unbiased
        exponent (normal range)."""
        return 2.0 ** (exponent - self.mantissa_bits)

    def with_name(self, name: str) -> "FloatFormat":
        """A copy of this format under a different name."""
        return dataclasses.replace(self, name=name)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}(1,{self.exponent_bits},{self.mantissa_bits})"


FP16 = FloatFormat("fp16", exponent_bits=5, mantissa_bits=10)
BF16 = FloatFormat("bf16", exponent_bits=8, mantissa_bits=7)
TF32 = FloatFormat("tf32", exponent_bits=8, mantissa_bits=10)
FP32 = FloatFormat("fp32", exponent_bits=8, mantissa_bits=23)
FP64 = FloatFormat("fp64", exponent_bits=11, mantissa_bits=52)

#: Input format of a single M3XU multiplier lane: 12-bit significand
#: (11 explicit fraction bits + hidden bit) with the full FP32 exponent.
M3XU_IN = FloatFormat("m3xu_in", exponent_bits=8, mantissa_bits=11)

#: 8-bit formats (OCP FP8): candidates for the Section IV-C "8-bit
#: multipliers" design option when composing wider datatypes.
FP8_E4M3 = FloatFormat("fp8_e4m3", exponent_bits=4, mantissa_bits=3)
FP8_E5M2 = FloatFormat("fp8_e5m2", exponent_bits=5, mantissa_bits=2)

#: The union input format of a baseline Ampere-class Tensor Core
#: dot-product unit: 8-bit exponent (covers BF16/TF32), 11-bit significand
#: (covers FP16/TF32's 10 explicit bits + hidden bit).
TENSORCORE_IN = FloatFormat("tensorcore_in", exponent_bits=8, mantissa_bits=10)

FORMATS: dict[str, FloatFormat] = {
    f.name: f
    for f in (FP16, BF16, TF32, FP32, FP64, M3XU_IN, TENSORCORE_IN, FP8_E4M3, FP8_E5M2)
}


def format_by_name(name: str) -> FloatFormat:
    """Look up one of the predefined formats by (case-insensitive) name."""
    try:
        return FORMATS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown format {name!r}; known formats: {sorted(FORMATS)}"
        ) from None
