"""Rounding primitives shared by the quantisation and arithmetic models.

All hardware modelled in this package rounds to nearest, ties to even
(RNE) unless stated otherwise; truncation (round toward zero) is used by
the operand-splitting data paths, where the "low" part carries exactly the
truncated-away bits.
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = ["RoundingMode", "round_significand", "round_significand_scalar"]


class RoundingMode(enum.Enum):
    """Rounding modes supported by the models."""

    #: Round to nearest, ties to even — IEEE default, used by FP units.
    NEAREST_EVEN = "rne"
    #: Truncate (round toward zero) — used by operand splitters and by the
    #: "discard low bits" behaviour of TF32-style downconversion paths.
    TOWARD_ZERO = "rtz"


def round_significand(
    sig: np.ndarray, shift: np.ndarray | int, mode: RoundingMode
) -> np.ndarray:
    """Round away the low ``shift`` bits of non-negative integer significands.

    Parameters
    ----------
    sig:
        Non-negative integer significands, any integer dtype (worked on as
        ``int64``; callers must ensure no overflow: ``sig < 2**62``).
    shift:
        Number of low-order bits to remove (scalar or array, >= 0). A shift
        of 0 returns ``sig`` unchanged; shifts >= 63 round the whole value
        away (result 0 or 1 depending on magnitude for RNE).
    mode:
        The rounding mode.

    Returns
    -------
    np.ndarray
        ``round(sig / 2**shift)`` under the requested mode, as ``int64``.

    Notes
    -----
    RNE on integers: let ``q = sig >> shift`` and ``r = sig & mask``. Round
    up when ``r > half`` or (``r == half`` and ``q`` odd).
    """
    sig = np.asarray(sig, dtype=np.int64)
    shift = np.asarray(shift, dtype=np.int64)
    if np.any(shift < 0):
        raise ValueError("shift must be non-negative")
    if np.any(sig < 0):
        raise ValueError("significands must be non-negative")
    # Clip to avoid undefined behaviour of >> 64; shifts this large mean the
    # entire value is below the rounding point.
    big = shift >= 62
    eff = np.where(big, 0, shift)
    q = sig >> eff
    if mode is RoundingMode.TOWARD_ZERO:
        return np.where(big, 0, q)
    mask = (np.int64(1) << eff) - 1
    r = sig & mask
    half = np.int64(1) << np.maximum(eff - 1, 0)
    has_half = eff > 0
    round_up = has_half & ((r > half) | ((r == half) & ((q & 1) == 1)))
    out = q + round_up.astype(np.int64)
    # For absurdly large shifts everything rounds to zero (magnitudes in this
    # codebase never sit exactly at the half point of a 62-bit shift).
    return np.where(big, 0, out)


def round_significand_scalar(sig: int, shift: int, mode: RoundingMode) -> int:
    """Arbitrary-precision scalar version of :func:`round_significand`.

    Used by the exact integer reference path, where significands may exceed
    64 bits.
    """
    if shift < 0:
        raise ValueError("shift must be non-negative")
    if sig < 0:
        raise ValueError("significands must be non-negative")
    if shift == 0:
        return sig
    q, r = divmod(sig, 1 << shift)
    if mode is RoundingMode.TOWARD_ZERO:
        return q
    half = 1 << (shift - 1)
    if r > half or (r == half and (q & 1)):
        return q + 1
    return q
