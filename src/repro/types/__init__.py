"""Floating-point formats, quantisation, bit codecs and operand splits."""

from .formats import (
    BF16,
    FP8_E4M3,
    FP8_E5M2,
    FP16,
    FP32,
    FP64,
    FORMATS,
    M3XU_IN,
    TENSORCORE_IN,
    TF32,
    FloatFormat,
    format_by_name,
)
from .rounding import RoundingMode, round_significand, round_significand_scalar
from .quantize import quantize, quantize_complex, representable
from .bits import decode, decode_fields, encode, encode_fields
from .decompose import (
    deinterleave_complex,
    interleave_complex,
    split_complex,
    split_fp32_m3xu,
    split_n_parts,
    split_round_residual,
)
from .errors import matching_bits, max_relative_error, relative_error, ulp_error

__all__ = [
    "FloatFormat",
    "FP16",
    "BF16",
    "FP8_E4M3",
    "FP8_E5M2",
    "TF32",
    "FP32",
    "FP64",
    "M3XU_IN",
    "TENSORCORE_IN",
    "FORMATS",
    "format_by_name",
    "RoundingMode",
    "round_significand",
    "round_significand_scalar",
    "quantize",
    "quantize_complex",
    "representable",
    "encode",
    "decode",
    "encode_fields",
    "decode_fields",
    "split_fp32_m3xu",
    "split_round_residual",
    "split_n_parts",
    "split_complex",
    "interleave_complex",
    "deinterleave_complex",
    "ulp_error",
    "relative_error",
    "max_relative_error",
    "matching_bits",
]
