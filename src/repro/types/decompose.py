"""Operand decompositions (the mathematical heart of the paper).

Section III derives that a ``2p``-bit GEMM can be computed on a ``p``-bit
MXU by splitting each operand into high/low parts (Eq. 3) and re-assigning
which part feeds which multiplier on each step (Eq. 4-8); complex GEMM
splits into real/imaginary parts the same way (Eq. 9). This module holds
every split used anywhere in the reproduction:

* :func:`split_fp32_m3xu` — the hardware split of Fig. 3(a): mantissa bits
  ``m[22:12]`` (plus the hidden bit) become the high part, ``m[11:0]`` the
  low part; both parts reuse the operand's sign and 8-bit exponent. The
  split is *exact*: ``hi + lo == x``.
* :func:`split_round_residual` — the software-scheme split used by
  CUTLASS 3xTF32 and EEHC 3xBF16: ``hi = rne(x, base)``,
  ``lo = rne(x - hi, base)``. Not exact in general (the residual itself is
  rounded), which is why those schemes lose precision.
* :func:`split_n_parts` — generic n-way truncation split for the FP64
  extension of Section IV-C.
* complex interleaving helpers for the FP32C layout of Section IV-B.
"""

from __future__ import annotations

import numpy as np

from .bits import decode, encode
from .formats import FP32, FloatFormat
from .quantize import quantize

__all__ = [
    "split_fp32_m3xu",
    "split_round_residual",
    "split_n_parts",
    "split_complex",
    "interleave_complex",
    "deinterleave_complex",
]


def split_fp32_m3xu(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split FP32 values into M3XU high/low multiplier inputs (Fig. 3a).

    The data-assignment stage zeroes the low 12 mantissa bits to form the
    high part (hidden bit + 11 explicit bits -> a 12-bit significand) and
    the low part is the exact remainder (the low 12 mantissa bits at their
    original binary weight, i.e. an unnormalised 12-bit significand sharing
    the operand's exponent).

    Parameters
    ----------
    x:
        float64 array of values exactly representable in FP32
        (quantise first if unsure). NaN/inf flow through in the high part.

    Returns
    -------
    (hi, lo):
        float64 arrays with ``hi + lo == x`` exactly for finite inputs;
        ``hi`` has <= 12 significant bits, ``lo`` has <= 12 significant bits.
    """
    x = np.asarray(x, dtype=np.float64)
    bits = encode(x, FP32)
    hi_bits = bits & ~np.uint64(0xFFF)  # zero mantissa bits m[11:0]
    hi = decode(hi_bits, FP32)
    finite = np.isfinite(x)
    lo = np.where(finite, x - np.where(finite, hi, 0.0), 0.0)
    return hi, lo


def split_round_residual(
    x: np.ndarray, base: FloatFormat, n_terms: int = 2
) -> list[np.ndarray]:
    """Software-scheme split: repeated round-to-*base* + residual.

    This is the decomposition that the paper's software baselines perform
    with explicit instructions (Fig. 2): ``t0 = rne(x)``,
    ``t1 = rne(x - t0)``, ... Each term is representable in *base*; the
    final residual (information the scheme loses) is discarded.

    Returns a list of ``n_terms`` float64 arrays, most significant first.
    """
    if n_terms < 1:
        raise ValueError("n_terms must be >= 1")
    x = np.asarray(x, dtype=np.float64)
    terms: list[np.ndarray] = []
    rem = x
    for _ in range(n_terms):
        t = quantize(rem, base)
        # Residuals of non-finite values are meaningless; keep them in the
        # leading term only.
        t = np.where(np.isfinite(rem), t, rem if not terms else 0.0)
        terms.append(t)
        rem = np.where(np.isfinite(rem), rem - t, 0.0)
    return terms


def split_n_parts(x: np.ndarray, part_bits: int, n_parts: int) -> list[np.ndarray]:
    """Split significands into *n_parts* truncated slices of *part_bits* bits.

    Generalisation of :func:`split_fp32_m3xu` used for the FP64 extension
    (Section IV-C): part ``i`` holds significand bits
    ``[i*part_bits, (i+1)*part_bits)`` counted from the most significant
    end, at their original binary weight. The split is exact when
    ``n_parts * part_bits`` covers the significand width of the source
    values; otherwise the last part absorbs nothing beyond its width and
    the remainder is dropped (callers choose coverage).

    Returns a list of float64 arrays, most significant first, whose sum
    reconstructs *x* up to the covered width.
    """
    if part_bits < 1 or n_parts < 1:
        raise ValueError("part_bits and n_parts must be >= 1")
    x = np.asarray(x, dtype=np.float64)
    finite = np.isfinite(x)
    _, e = np.frexp(np.abs(np.where(finite, x, 1.0)))
    exp = e.astype(np.int64) - 1  # |x| in [2^exp, 2^(exp+1))
    parts: list[np.ndarray] = []
    rem = np.where(finite, x, 0.0)
    for i in range(n_parts):
        # Truncate the remainder onto the grid of the i-th slice.
        grid = exp - (i + 1) * part_bits + 1
        scaled = np.ldexp(rem, -grid)
        part = np.ldexp(np.trunc(scaled), grid)
        parts.append(np.where(finite, part, np.where(np.isnan(x), np.nan, x) if i == 0 else 0.0))
        rem = rem - part
    return parts


def split_complex(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split a complex array into (real, imag) float64 arrays (Eq. 9)."""
    x = np.asarray(x, dtype=np.complex128)
    return np.ascontiguousarray(x.real), np.ascontiguousarray(x.imag)


def interleave_complex(x: np.ndarray) -> np.ndarray:
    """Pack complex matrices into the interleaved real layout of §IV-B.

    An ``m x n`` complex matrix becomes an ``m x 2n`` real matrix where
    columns ``2j`` and ``2j+1`` hold the real and imaginary part of column
    ``j`` — "a pair of consecutive elements store a complex number's real
    and imaginary parts". (An 8x4 FP32 tile therefore carries a 4x4 FP32C
    tile when both dimensions interleave; the row dimension is handled by
    the MXU tile mapping.)
    """
    x = np.asarray(x, dtype=np.complex128)
    m, n = x.shape
    out = np.empty((m, 2 * n), dtype=np.float64)
    out[:, 0::2] = x.real
    out[:, 1::2] = x.imag
    return out


def deinterleave_complex(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`interleave_complex`."""
    x = np.asarray(x, dtype=np.float64)
    m, n2 = x.shape
    if n2 % 2:
        raise ValueError("interleaved matrix must have an even column count")
    return x[:, 0::2] + 1j * x[:, 1::2]
