"""Bit-level encode/decode between float64 values and format bit patterns.

The data-assignment stage of M3XU (Fig. 3a) is specified at the bit level:
it wires the sign, the 8 exponent bits and slices of the 23-bit mantissa of
an FP32 register operand into multiplier input buffers. This module gives
the models (and their tests) a faithful view of those bit fields.

Values representable in a format round-trip exactly through
``encode``/``decode``; values that are not representable must be
:func:`~repro.types.quantize.quantize`-d first (``encode`` raises
otherwise, to catch modelling bugs early).
"""

from __future__ import annotations

import numpy as np

from .formats import FloatFormat
from .quantize import representable

__all__ = ["encode", "decode", "decode_fields", "encode_fields"]


def encode(x: np.ndarray | float, fmt: FloatFormat) -> np.ndarray:
    """Encode representable float64 values into *fmt* bit patterns.

    Returns
    -------
    np.ndarray
        ``uint64`` array of bit patterns laid out as
        ``[sign | exponent | mantissa]`` in the low ``fmt.total_bits`` bits.

    Raises
    ------
    ValueError
        If any finite element is not exactly representable in *fmt*.
    """
    x = np.asarray(x, dtype=np.float64)
    if not bool(np.all(representable(x, fmt))):
        raise ValueError(f"input contains values not representable in {fmt}")

    sign = (np.signbit(x)).astype(np.uint64)
    out = np.zeros(x.shape, dtype=np.uint64)

    nan = np.isnan(x)
    inf = np.isinf(x)
    zero = x == 0.0
    finite = ~(nan | inf | zero)

    exp_all_ones = np.uint64((1 << fmt.exponent_bits) - 1)
    mant_shift = np.uint64(fmt.mantissa_bits)
    exp_shift = exp_all_ones << mant_shift

    # Specials -------------------------------------------------------------
    out[inf] = exp_shift
    # Canonical quiet NaN: exponent all ones, mantissa MSB set.
    out[nan] = exp_shift | (np.uint64(1) << np.uint64(fmt.mantissa_bits - 1))

    # Finite non-zero -------------------------------------------------------
    if np.any(finite):
        v = np.abs(x[finite])
        _, e = np.frexp(v)
        exp = e.astype(np.int64) - 1  # unbiased exponent, |v| in [2^exp, 2^(exp+1))
        is_norm = exp >= fmt.emin
        exp_eff = np.maximum(exp, fmt.emin)
        # significand as integer: v = sig * 2**(exp_eff - mantissa_bits)
        sig = np.ldexp(v, fmt.mantissa_bits - exp_eff)
        sig_int = np.rint(sig).astype(np.int64)
        if not np.all(np.ldexp(sig_int.astype(np.float64), exp_eff - fmt.mantissa_bits) == v):
            raise AssertionError("internal encode error: non-integral significand")
        biased = np.where(is_norm, exp_eff + fmt.bias, 0).astype(np.uint64)
        hidden = np.int64(1) << np.int64(fmt.mantissa_bits)
        mant = np.where(is_norm, sig_int - hidden, sig_int).astype(np.uint64)
        out[finite] = (biased << mant_shift) | mant

    out |= sign << np.uint64(fmt.total_bits - 1)
    return out


def decode(bits: np.ndarray, fmt: FloatFormat) -> np.ndarray:
    """Decode *fmt* bit patterns (``uint64``) into float64 values."""
    bits = np.asarray(bits, dtype=np.uint64)
    sign, biased, mant = decode_fields(bits, fmt)

    exp_all_ones = (1 << fmt.exponent_bits) - 1
    out = np.empty(bits.shape, dtype=np.float64)

    is_special = biased == exp_all_ones
    is_sub = biased == 0

    # Normal numbers: (1 + mant/2^m) * 2^(biased - bias)
    sig = np.where(is_sub, mant, mant + (np.int64(1) << np.int64(fmt.mantissa_bits)))
    exp = np.where(is_sub, fmt.emin, biased.astype(np.int64) - fmt.bias)
    out = np.ldexp(sig.astype(np.float64), (exp - fmt.mantissa_bits).astype(np.int64))

    out[is_special & (mant == 0)] = np.inf
    out[is_special & (mant != 0)] = np.nan
    return np.where(sign == 1, -out, out)


def decode_fields(
    bits: np.ndarray, fmt: FloatFormat
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split bit patterns into ``(sign, biased_exponent, mantissa)`` int64 arrays."""
    bits = np.asarray(bits, dtype=np.uint64)
    mant_mask = np.uint64((1 << fmt.mantissa_bits) - 1)
    exp_mask = np.uint64((1 << fmt.exponent_bits) - 1)
    mant = (bits & mant_mask).astype(np.int64)
    biased = ((bits >> np.uint64(fmt.mantissa_bits)) & exp_mask).astype(np.int64)
    sign = ((bits >> np.uint64(fmt.total_bits - 1)) & np.uint64(1)).astype(np.int64)
    return sign, biased, mant


def encode_fields(
    sign: np.ndarray, biased_exp: np.ndarray, mantissa: np.ndarray, fmt: FloatFormat
) -> np.ndarray:
    """Assemble ``(sign, biased_exponent, mantissa)`` fields into bit patterns."""
    sign = np.asarray(sign, dtype=np.uint64)
    biased = np.asarray(biased_exp, dtype=np.uint64)
    mant = np.asarray(mantissa, dtype=np.uint64)
    if np.any(mant >> np.uint64(fmt.mantissa_bits)):
        raise ValueError("mantissa field overflows the format width")
    if np.any(biased >> np.uint64(fmt.exponent_bits)):
        raise ValueError("exponent field overflows the format width")
    return (
        (sign << np.uint64(fmt.total_bits - 1))
        | (biased << np.uint64(fmt.mantissa_bits))
        | mant
    )
