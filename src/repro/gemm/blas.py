"""BLAS-style GEMM front-end over the functional backends.

Real users call ``sgemm``/``cgemm`` with transpose flags and alpha/beta
scaling (the paper's Eq. 1 is GEMM "with a scaling factor as 1"); this
module provides that complete interface over any backend so existing
BLAS-shaped code ports to the M3XU models unchanged — the paper's
"seamlessly upgrade existing systems without programmers' efforts"
contract, at the API level.

Scaling is applied in FP32 (one extra rounding per element, as the
epilogue of a real kernel would), after the backend's GEMM.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..types.formats import FP32
from ..types.quantize import quantize, quantize_complex
from .reference import cgemm_simt, sgemm_simt
from .tiled import mxu_cgemm, mxu_sgemm

__all__ = ["sgemm", "cgemm", "SGEMM_BACKENDS", "CGEMM_BACKENDS"]

SGEMM_BACKENDS: dict[str, Callable] = {
    "m3xu": mxu_sgemm,
    "simt": sgemm_simt,
}

CGEMM_BACKENDS: dict[str, Callable] = {
    "m3xu": mxu_cgemm,
    "simt": cgemm_simt,
}


def _apply_trans(x: np.ndarray, trans: str, conj_ok: bool) -> np.ndarray:
    t = trans.upper()
    if t == "N":
        return x
    if t == "T":
        return np.swapaxes(x, -1, -2)
    if t == "C" and conj_ok:
        return np.conj(np.swapaxes(x, -1, -2))
    raise ValueError(f"invalid transpose flag {trans!r}")


def sgemm(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | float = 0.0,
    alpha: float = 1.0,
    beta: float = 1.0,
    transa: str = "N",
    transb: str = "N",
    backend: str = "m3xu",
) -> np.ndarray:
    """``D = alpha * op(A) @ op(B) + beta * C`` in FP32 semantics.

    ``backend`` selects the functional implementation (``"m3xu"`` or
    ``"simt"``); transpose flags are ``"N"``/``"T"``.
    """
    try:
        fn = SGEMM_BACKENDS[backend]
    except KeyError:
        raise KeyError(f"unknown backend {backend!r}; known: {sorted(SGEMM_BACKENDS)}") from None
    a_op = _apply_trans(np.asarray(a, dtype=np.float64), transa, conj_ok=False)
    b_op = _apply_trans(np.asarray(b, dtype=np.float64), transb, conj_ok=False)
    prod = fn(a_op, b_op, 0.0)
    out = quantize(np.float64(alpha) * prod, FP32)
    c_arr = quantize(np.asarray(c, dtype=np.float64), FP32)
    if beta != 0.0:
        out = quantize(out + quantize(np.float64(beta) * c_arr, FP32), FP32)
    return out


def cgemm(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | complex = 0.0,
    alpha: complex = 1.0,
    beta: complex = 1.0,
    transa: str = "N",
    transb: str = "N",
    backend: str = "m3xu",
) -> np.ndarray:
    """``D = alpha * op(A) @ op(B) + beta * C`` on FP32C semantics.

    Transpose flags add ``"C"`` (conjugate transpose).
    """
    try:
        fn = CGEMM_BACKENDS[backend]
    except KeyError:
        raise KeyError(f"unknown backend {backend!r}; known: {sorted(CGEMM_BACKENDS)}") from None
    a_op = _apply_trans(np.asarray(a, dtype=np.complex128), transa, conj_ok=True)
    b_op = _apply_trans(np.asarray(b, dtype=np.complex128), transb, conj_ok=True)
    prod = fn(a_op, b_op, 0.0)
    out = quantize_complex(np.complex128(alpha) * prod, FP32)
    c_arr = quantize_complex(np.asarray(c, dtype=np.complex128), FP32)
    if beta != 0.0:
        out = quantize_complex(out + quantize_complex(np.complex128(beta) * c_arr, FP32), FP32)
    return out
