"""Host-level tiled GEMM driver over MXU MMA instructions.

A GEMM of arbitrary K is executed as a chain of instruction-sized K-chunks;
between chunks the running total lives in FP32 accumulator registers (the
C operand of the next MMA), so each chunk boundary is an FP32 rounding
point — the numerically significant part of mapping GEMM onto an MXU.
The M/N dimensions are purely data-parallel across dot-product units and
are therefore processed whole (tiling them would not change a single bit).

By default the driver builds a :class:`~repro.gemm.plan.GemmPlan` so each
operand is quantised and decomposed exactly once per GEMM instead of once
per K-chunk (bit-identical; see :mod:`repro.gemm.plan`). ``use_plan=False``
restores the legacy per-chunk path, also used for MXU models that do not
expose the ``mma_parts`` entry point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from ..mxu.baseline import TensorCoreMXU
from ..mxu.m3xu import M3XU
from ..mxu.modes import MXUMode, step_plan
from ..mxu.parallel_bitlevel import sharded_bitlevel_gemm
from ..mxu.vectorized import BitLevelMXU
from ..resilience.abft import (
    AbftConfig,
    AbftReport,
    AbftUncorrectedError,
    guarded_gemm,
    resolve_abft,
)
from ..types.formats import FP32, FP64
from ..types.quantize import quantize, quantize_complex
from .plan import GemmPlan

__all__ = ["MXULike", "TiledGEMM", "mxu_sgemm", "mxu_cgemm", "tensorcore_gemm"]


class MXULike(Protocol):
    """Anything exposing the MMA contract of the functional MXU models."""

    def mma(
        self, a: np.ndarray, b: np.ndarray, c: np.ndarray | float, mode: MXUMode
    ) -> np.ndarray: ...


@dataclass
class TiledGEMM:
    """GEMM driver binding an MXU model to a mode.

    Parameters
    ----------
    mxu:
        The MXU functional model executing each MMA.
    mode:
        Operating mode (decides the instruction K and input handling).
    k_chunk:
        K elements consumed per MMA instruction. Defaults to the MXU's
        instruction tile K for the mode.
    use_plan:
        Resolve operand splits once per GEMM (default). ``False`` forces
        the legacy per-chunk quantise+split path (bit-identical, slower).
    abft:
        Guard every :meth:`run` with ABFT row/column checksums
        (:mod:`repro.resilience.abft`). ``None`` (default) defers to the
        ``REPRO_ABFT`` environment gate; the guarded result is
        bit-identical to the unguarded one on a fault-free datapath.
    abft_config:
        Guard parameters (tile size, tolerance safety, recompute rounds).
    fused:
        ``True`` (default) runs the value-level model (with its BLAS fast
        path where proven equivalent). ``False`` routes every MMA through
        the bit-level split/multiply/shift/accumulate datapath
        (:class:`~repro.mxu.vectorized.BitLevelMXU`): an ``M3XU`` model is
        swapped for the bit-level engine selected by ``REPRO_BITLEVEL``;
        a model already exposing ``bitlevel`` capability is kept as-is;
        anything else raises. ABFT tile recomputation inherits the same
        engine because the guard re-invokes this driver's own compute.
    workers:
        Worker count for the sharded bit-level path (plain
        :class:`~repro.mxu.vectorized.BitLevelMXU` only). ``None`` defers
        to ``REPRO_WORKERS``; every worker count is bit-identical to
        serial. Ignored by value-level models and fault-injecting
        wrappers, which keep the per-MMA path.
    bitlevel_chunk:
        Output-column block size for the sharded bit-level path
        (``None`` defers to ``REPRO_BITLEVEL_CHUNK``); a pure
        performance knob, never a rounding boundary.
    """

    mxu: MXULike
    mode: MXUMode
    k_chunk: int | None = None
    use_plan: bool = True
    abft: bool | None = None
    abft_config: AbftConfig | None = None
    fused: bool = True
    workers: int | None = None
    bitlevel_chunk: int | None = None
    #: The last guarded run's :class:`~repro.resilience.abft.AbftReport`
    #: (``None`` when the guard is off or :meth:`run` has not executed).
    abft_report: AbftReport | None = field(default=None, init=False, compare=False)

    def __post_init__(self) -> None:
        if not self.fused and not getattr(self.mxu, "bitlevel", False):
            if isinstance(self.mxu, M3XU):
                self.mxu = BitLevelMXU()
            else:
                raise ValueError(
                    "fused=False requires a bit-level capable MXU model; "
                    f"{type(self.mxu).__name__} does not expose one"
                )
        if self.k_chunk is None:
            self.k_chunk = self.mxu.config.tile(self.mode).k  # type: ignore[attr-defined]
        if self.k_chunk < 1:
            raise ValueError("k_chunk must be >= 1")

    def run(
        self, a: np.ndarray, b: np.ndarray, c: np.ndarray | float = 0.0
    ) -> np.ndarray:
        """Compute ``A @ B + C`` by chaining MMA instructions along K."""
        if resolve_abft(self.abft):
            return self._run_guarded(a, b, c)
        return self._run_plain(a, b, c)

    def _run_plain(
        self, a: np.ndarray, b: np.ndarray, c: np.ndarray | float = 0.0
    ) -> np.ndarray:
        # Plain bit-level models take the column-sharded driver (bit-identical
        # to the per-MMA chain at every worker count). Subclasses and
        # fault-injecting wrappers keep the per-MMA path so their hooks see
        # every instruction.
        if type(self.mxu) is BitLevelMXU:
            return sharded_bitlevel_gemm(
                a,
                b,
                c,
                self.mode,
                engine=self.mxu.engine,
                acc_bits=self.mxu.acc_bits,
                rounding=self.mxu.rounding,
                k_chunk=int(self.k_chunk),
                workers=self.workers,
                chunk=self.bitlevel_chunk,
            )
        if self.use_plan and hasattr(self.mxu, "mma_parts"):
            plan = GemmPlan.build(a, b, self.mode, int(self.k_chunk))
            return self.run_plan(plan, c)
        return self._run_legacy(a, b, c)

    def _run_guarded(
        self, a: np.ndarray, b: np.ndarray, c: np.ndarray | float
    ) -> np.ndarray:
        """ABFT-guarded run: checksum-verify, localise, recompute.

        Operands are quantised to the mode's register formats *first* so
        the float64 checksum reference sees exactly the values the MMA
        datapath consumes (re-quantisation inside :meth:`_run_plain` is
        idempotent, keeping the guarded result bit-identical to an
        unguarded run).
        """
        self.abft_report = None
        in_fmt = step_plan(self.mode).input_format
        out_fmt = FP64 if self.mode is MXUMode.FP64 else FP32
        if self.mode is MXUMode.FP32C:
            aq = quantize_complex(np.asarray(a, dtype=np.complex128), FP32)
            bq = quantize_complex(np.asarray(b, dtype=np.complex128), FP32)
            c_arr = quantize_complex(np.asarray(c, dtype=np.complex128), FP32)
        else:
            aq = quantize(np.asarray(a, dtype=np.float64), in_fmt)
            bq = quantize(np.asarray(b, dtype=np.float64), in_fmt)
            # Matches _initial_acc/_run_legacy: C enters via FP32 registers.
            c_arr = quantize(np.asarray(c, dtype=np.float64), FP32)
        roundoff = 2.0 ** -min(in_fmt.mantissa_bits, out_fmt.mantissa_bits)
        try:
            result, report = guarded_gemm(
                self._run_plain,
                aq,
                bq,
                c_arr,
                roundoff=roundoff,
                config=self.abft_config,
            )
        except AbftUncorrectedError as exc:
            self.abft_report = exc.report
            raise
        self.abft_report = report
        return result

    def run_plan(self, plan: GemmPlan, c: np.ndarray | float = 0.0) -> np.ndarray:
        """Execute a pre-resolved :class:`~repro.gemm.plan.GemmPlan`."""
        if plan.mode is not self.mode:
            raise ValueError(f"plan mode {plan.mode} != driver mode {self.mode}")
        acc = self._initial_acc(c, plan.out_shape)
        for ch in plan.chunks():
            acc = self.mxu.mma_parts(  # type: ignore[attr-defined]
                ch.a, ch.b, ch.a_parts, ch.b_parts, acc, self.mode, c_quantized=True
            )
        return acc

    def _initial_acc(
        self, c: np.ndarray | float, out_shape: tuple[int, ...]
    ) -> np.ndarray:
        if self.mode is MXUMode.FP32C:
            return np.broadcast_to(
                quantize_complex(np.asarray(c, dtype=np.complex128), FP32), out_shape
            ).copy()
        return np.broadcast_to(
            quantize(np.asarray(c, dtype=np.float64), FP32), out_shape
        ).copy()

    def _run_legacy(
        self, a: np.ndarray, b: np.ndarray, c: np.ndarray | float
    ) -> np.ndarray:
        is_complex = self.mode is MXUMode.FP32C
        if is_complex:
            a = quantize_complex(np.asarray(a), FP32)
            b = quantize_complex(np.asarray(b), FP32)
            acc = np.broadcast_to(
                quantize_complex(np.asarray(c, dtype=np.complex128), FP32),
                (a.shape[0], b.shape[1]),
            ).copy()
        else:
            a = np.asarray(a, dtype=np.float64)
            b = np.asarray(b, dtype=np.float64)
            if self.mode is MXUMode.FP32:
                # FP32 register operands: quantise on the way in.
                a = quantize(a, FP32)
                b = quantize(b, FP32)
            acc = np.broadcast_to(
                quantize(np.asarray(c, dtype=np.float64), FP32),
                (a.shape[0], b.shape[1]),
            ).copy()
        k_total = a.shape[1]
        if b.shape[0] != k_total:
            raise ValueError(f"K mismatch: A{a.shape} @ B{b.shape}")
        step = int(self.k_chunk)
        for k0 in range(0, k_total, step):
            acc = self.mxu.mma(a[:, k0 : k0 + step], b[k0 : k0 + step, :], acc, self.mode)
        return acc


def mxu_sgemm(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | float = 0.0,
    mxu: M3XU | None = None,
    abft: bool | None = None,
    fused: bool = True,
    workers: int | None = None,
) -> np.ndarray:
    """FP32 GEMM on M3XU hardware (the functional ``M3XU_sgemm`` kernel).

    ``fused=False`` executes the true bit-level datapath (engine chosen
    by ``REPRO_BITLEVEL``) instead of the value-level model; that path is
    column-sharded over ``workers`` pool workers (``REPRO_WORKERS`` by
    default) with a bit-identical result at every worker count.
    """
    return TiledGEMM(
        mxu or M3XU(), MXUMode.FP32, abft=abft, fused=fused, workers=workers
    ).run(a, b, c)


def mxu_cgemm(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | complex = 0.0,
    mxu: M3XU | None = None,
    abft: bool | None = None,
    fused: bool = True,
    workers: int | None = None,
) -> np.ndarray:
    """FP32C GEMM on M3XU hardware (the functional ``M3XU_cgemm`` kernel).

    ``fused=False`` executes the true bit-level datapath (engine chosen
    by ``REPRO_BITLEVEL``) instead of the value-level model; that path is
    column-sharded over ``workers`` pool workers (``REPRO_WORKERS`` by
    default) with a bit-identical result at every worker count.
    """
    return TiledGEMM(
        mxu or M3XU(), MXUMode.FP32C, abft=abft, fused=fused, workers=workers
    ).run(a, b, c)


def tensorcore_gemm(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | float,
    mode: MXUMode,
    mxu: TensorCoreMXU | None = None,
) -> np.ndarray:
    """Low-precision GEMM on the baseline Tensor Core (FP16/BF16/TF32).

    Inputs are quantised to the mode's format by the MMA model — this is
    where TF32's 13 dropped mantissa bits (and FP16's range limits) bite.
    """
    return TiledGEMM(mxu or TensorCoreMXU(), mode).run(a, b, c)
