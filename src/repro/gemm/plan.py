"""Split-plan caching: resolve operand decompositions once per GEMM.

The legacy driver re-derived every operand slice inside the K-chunk loop:
each ``M3XU.mma`` call re-quantised its chunk and re-ran
:func:`~repro.mxu.dataflow.resolve_parts` on it, so an FP32 GEMM with
``K/4`` chunks paid the hi/lo mantissa split ``K/4`` times per operand —
pure allocation churn, since every split in
:mod:`repro.types.decompose` is elementwise and therefore commutes with
K-slicing. A :class:`GemmPlan` performs the quantisation and the split
exactly once on the whole matrices and hands pre-split slices (views, no
copies) to each MMA through the MXU models' ``mma_parts`` entry point.

Bit-exactness: slicing a split equals splitting a slice, element for
element, so a plan-driven GEMM is bit-identical to the legacy per-chunk
path. The equivalence property suite asserts this across modes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

from ..mxu.dataflow import resolve_parts
from ..mxu.modes import MXUMode, step_plan
from ..mxu.split_cache import (
    DEFAULT_SPLIT_CACHE,
    SPLIT_CACHE_MIN_BYTES,
    SplitCache,
    operand_digest,
    resolve_split_cache,
)
from ..types.formats import FP32
from ..types.quantize import quantize, quantize_complex

__all__ = ["OperandSplit", "PlannedChunk", "GemmPlan"]

_SINGLE_STEP = (MXUMode.FP16, MXUMode.BF16, MXUMode.TF32)


@dataclass(frozen=True)
class OperandSplit:
    """One GEMM operand, register-quantised and decomposed once for a mode.

    Parameters
    ----------
    mode:
        Operating mode the split was resolved for.
    dense:
        The quantised operand values (float64, or complex128 for FP32C) —
        what the legacy driver would have fed ``mma`` chunk by chunk.
    parts:
        ``resolve_parts(dense, mode)``: part label -> float64 array of the
        operand's shape.
    """

    mode: MXUMode
    dense: np.ndarray
    parts: Mapping[str, np.ndarray]

    @classmethod
    def build(
        cls,
        x: np.ndarray,
        mode: MXUMode,
        *,
        use_cache: bool | None = None,
        cache: SplitCache | None = None,
    ) -> "OperandSplit":
        """Quantise *x* as the tiled driver would and split it once.

        With the split cache enabled (``REPRO_SPLIT_CACHE``, default on;
        ``use_cache`` overrides), repeated builds of byte-identical
        operands return the cached decomposition instead of re-deriving
        it, and a batched operand whose slices are all byte-identical —
        the serving layer's coalesced fixed-weights pattern — is split
        *once* in 2-D and broadcast across the batch. Both shortcuts are
        bit-identical to the cold path: every split in
        :mod:`repro.types.decompose` is elementwise, so splitting a
        stack of identical slices equals stacking one slice's split.
        Cached arrays are read-only.
        """
        arr = np.asarray(
            x, dtype=np.complex128 if mode is MXUMode.FP32C else np.float64
        )
        if not resolve_split_cache(use_cache) or arr.nbytes < SPLIT_CACHE_MIN_BYTES:
            return cls._split(arr, mode)
        store = cache if cache is not None else DEFAULT_SPLIT_CACHE
        if arr.ndim > 2:
            lead = int(np.prod(arr.shape[:-2]))
            flat = arr.reshape((lead,) + arr.shape[-2:])
            if lead and flat[0].nbytes >= SPLIT_CACHE_MIN_BYTES:
                first = operand_digest(flat[0], mode.value)
                if all(
                    operand_digest(flat[i], mode.value) == first
                    for i in range(1, lead)
                ):
                    base = cls._cached_2d(flat[0], mode, first, store)
                    return cls(
                        mode=mode,
                        dense=np.broadcast_to(base.dense, arr.shape),
                        parts={
                            name: np.broadcast_to(p, arr.shape)
                            for name, p in base.parts.items()
                        },
                    )
            return cls._split(arr, mode)
        return cls._cached_2d(arr, mode, operand_digest(arr, mode.value), store)

    @classmethod
    def _cached_2d(
        cls, arr: np.ndarray, mode: MXUMode, digest: str, store: SplitCache
    ) -> "OperandSplit":
        key = f"{digest}:operand-split"
        hit = store.get(key)
        if hit is not None:
            return hit
        return store.put(key, cls._split(arr, mode))

    @classmethod
    def _split(cls, arr: np.ndarray, mode: MXUMode) -> "OperandSplit":
        """The uncached build: quantise then decompose, no shortcuts."""
        if mode is MXUMode.FP32C:
            dense = quantize_complex(arr, FP32)
        elif mode is MXUMode.FP32:
            dense = quantize(arr, FP32)
        else:
            dense = arr
        parts = resolve_parts(dense, mode)
        if mode in _SINGLE_STEP:
            # Single-step modes quantise inside resolve_parts; keep the
            # dense view consistent with what the multipliers consume.
            dense = parts["X"]
        return cls(mode=mode, dense=dense, parts=parts)

    @property
    def k(self) -> int:
        """Contraction extent (last axis of an A operand)."""
        return self.dense.shape[-1]


@dataclass(frozen=True)
class PlannedChunk:
    """Pre-split operand slices for one MMA instruction (views, no copies)."""

    a: np.ndarray
    b: np.ndarray
    a_parts: Mapping[str, np.ndarray]
    b_parts: Mapping[str, np.ndarray]


class GemmPlan:
    """Pre-resolved execution plan for one ``A @ B`` pair.

    Splits both operands once (see :class:`OperandSplit`) and serves
    per-chunk slices to the driver loop. Operands may carry matching
    leading batch dimensions: A is ``(..., M, K)``, B is ``(..., K, N)``.
    """

    def __init__(self, a_split: OperandSplit, b_split: OperandSplit, k_chunk: int):
        if a_split.mode is not b_split.mode:
            raise ValueError(
                f"operand splits disagree on mode: {a_split.mode} vs {b_split.mode}"
            )
        if a_split.dense.shape[-1] != b_split.dense.shape[-2]:
            raise ValueError(
                f"K mismatch: A{a_split.dense.shape} @ B{b_split.dense.shape}"
            )
        if k_chunk < 1:
            raise ValueError("k_chunk must be >= 1")
        self.mode = a_split.mode
        self.a_split = a_split
        self.b_split = b_split
        self.k_chunk = int(k_chunk)

    @classmethod
    def build(
        cls, a: np.ndarray, b: np.ndarray, mode: MXUMode, k_chunk: int
    ) -> "GemmPlan":
        return cls(OperandSplit.build(a, mode), OperandSplit.build(b, mode), k_chunk)

    # ------------------------------------------------------------------
    @property
    def k_total(self) -> int:
        return self.a_split.dense.shape[-1]

    @property
    def out_shape(self) -> tuple[int, ...]:
        a, b = self.a_split.dense, self.b_split.dense
        return np.broadcast_shapes(a.shape[:-2], b.shape[:-2]) + (
            a.shape[-2],
            b.shape[-1],
        )

    @property
    def n_chunks(self) -> int:
        return -(-self.k_total // self.k_chunk)

    def steps_per_chunk(self) -> int:
        """MXU steps (cycles) one chunk's MMA instruction takes."""
        return step_plan(self.mode).n_steps

    def chunks(self) -> Iterator[PlannedChunk]:
        """Yield the K-chunks in execution order as pre-split slices."""
        for k0 in range(0, self.k_total, self.k_chunk):
            k1 = min(k0 + self.k_chunk, self.k_total)
            yield PlannedChunk(
                a=self.a_split.dense[..., :, k0:k1],
                b=self.b_split.dense[..., k0:k1, :],
                a_parts={
                    name: p[..., :, k0:k1] for name, p in self.a_split.parts.items()
                },
                b_parts={
                    name: p[..., k0:k1, :] for name, p in self.b_split.parts.items()
                },
            )
