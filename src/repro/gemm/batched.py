"""Batched GEMM on the MXU functional models.

Batched small GEMMs are the execution pattern of the FFT stages (many
radix-matrix multiplies), the EPG recursion and the quantum simulator —
"embarrassingly parallel matrix operations" in the paper's words. The
batch axis maps across dot-product units, so numerics per matrix are
identical to the single-GEMM driver; this module provides the batched
entry points and a strided view helper.
"""

from __future__ import annotations

import numpy as np

from ..mxu.m3xu import M3XU
from ..mxu.modes import MXUMode
from ..types.formats import FP32
from ..types.quantize import quantize, quantize_complex

__all__ = ["batched_mxu_sgemm", "batched_mxu_cgemm", "strided_batch_view"]


def _batched(a: np.ndarray, b: np.ndarray, mode: MXUMode, mxu: M3XU | None) -> np.ndarray:
    unit = mxu or M3XU()
    if a.ndim != 3 or b.ndim != 3:
        raise ValueError("batched GEMM expects 3-D operands (batch, rows, cols)")
    if a.shape[0] != b.shape[0]:
        raise ValueError(f"batch mismatch: {a.shape[0]} vs {b.shape[0]}")
    if a.shape[2] != b.shape[1]:
        raise ValueError(f"K mismatch: A{a.shape} @ B{b.shape}")
    k = a.shape[2]
    chunk = unit.config.tile(mode).k
    if mode is MXUMode.FP32C:
        acc = np.zeros((a.shape[0], a.shape[1], b.shape[2]), dtype=np.complex128)
    else:
        acc = np.zeros((a.shape[0], a.shape[1], b.shape[2]))
    for k0 in range(0, k, chunk):
        acc = unit.mma(a[:, :, k0 : k0 + chunk], b[:, k0 : k0 + chunk, :], acc, mode)
    return acc


def batched_mxu_sgemm(
    a: np.ndarray, b: np.ndarray, mxu: M3XU | None = None
) -> np.ndarray:
    """FP32 batched GEMM: ``(B, M, K) @ (B, K, N) -> (B, M, N)``."""
    a = quantize(np.asarray(a, dtype=np.float64), FP32)
    b = quantize(np.asarray(b, dtype=np.float64), FP32)
    return _batched(a, b, MXUMode.FP32, mxu)


def batched_mxu_cgemm(
    a: np.ndarray, b: np.ndarray, mxu: M3XU | None = None
) -> np.ndarray:
    """FP32C batched GEMM over complex128 operands."""
    a = quantize_complex(np.asarray(a, dtype=np.complex128), FP32)
    b = quantize_complex(np.asarray(b, dtype=np.complex128), FP32)
    return _batched(a, b, MXUMode.FP32C, mxu)


def strided_batch_view(x: np.ndarray, rows: int, cols: int) -> np.ndarray:
    """Reshape a contiguous matrix-panel buffer into a (B, rows, cols)
    batch without copying — the layout batched kernels consume."""
    x = np.ascontiguousarray(x)
    if x.size % (rows * cols):
        raise ValueError(f"buffer of {x.size} elements is not a whole number "
                         f"of {rows}x{cols} matrices")
    return x.reshape(-1, rows, cols)
