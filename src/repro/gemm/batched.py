"""Batched GEMM on the MXU functional models.

Batched small GEMMs are the execution pattern of the FFT stages (many
radix-matrix multiplies), the EPG recursion and the quantum simulator —
"embarrassingly parallel matrix operations" in the paper's words. The
batch axis maps across dot-product units, so numerics per matrix are
identical to the single-GEMM driver; this module provides the batched
entry points and a strided view helper.

Execution builds one :class:`~repro.gemm.plan.GemmPlan` over the whole
batch (operands split once, not once per K-chunk) and can fan the batch
axis out across worker processes (``workers=N`` or ``REPRO_WORKERS``).
Each matrix's reduction is anchored independently, so results are
bit-identical for every worker count and to the legacy per-chunk path.

The fan-out rides the v2 engine: the worker pool persists across calls
(no spawn cost per batch) and operand slices above the shared-memory
threshold travel zero-copy instead of through pickle. ``fresh_pool=True``
restores the v1 pool-per-call engine for comparison benchmarks.
"""

from __future__ import annotations

import numpy as np

from ..mxu.m3xu import M3XU
from ..mxu.modes import MXUMode
from ..parallel import parallel_map, resolve_workers, split_ranges
from ..resilience.abft import guarded_gemm, resolve_abft
from ..types.formats import FP32
from ..types.quantize import quantize, quantize_complex
from .plan import GemmPlan

__all__ = ["batched_mxu_sgemm", "batched_mxu_cgemm", "strided_batch_view"]


def _check_batched(a: np.ndarray, b: np.ndarray) -> None:
    if a.ndim != 3 or b.ndim != 3:
        raise ValueError("batched GEMM expects 3-D operands (batch, rows, cols)")
    if a.shape[0] != b.shape[0]:
        raise ValueError(f"batch mismatch: {a.shape[0]} vs {b.shape[0]}")
    if a.shape[2] != b.shape[1]:
        raise ValueError(f"K mismatch: A{a.shape} @ B{b.shape}")


def _init_acc(a: np.ndarray, b: np.ndarray, mode: MXUMode) -> np.ndarray:
    shape = (a.shape[0], a.shape[1], b.shape[2])
    if mode is MXUMode.FP32C:
        return np.zeros(shape, dtype=np.complex128)
    return np.zeros(shape)


def _batched_serial(
    a: np.ndarray, b: np.ndarray, mode: MXUMode, unit: M3XU
) -> np.ndarray:
    """Plan-driven batched GEMM over one contiguous batch slice."""
    acc = _init_acc(a, b, mode)
    plan = GemmPlan.build(a, b, mode, unit.config.tile(mode).k)
    for ch in plan.chunks():
        acc = unit.mma_parts(
            ch.a, ch.b, ch.a_parts, ch.b_parts, acc, mode, c_quantized=True
        )
    return acc


def _batched_worker(
    args: tuple[np.ndarray, np.ndarray, MXUMode, M3XU],
) -> np.ndarray:
    a, b, mode, unit = args
    return _batched_serial(a, b, mode, unit)


def _batched(
    a: np.ndarray,
    b: np.ndarray,
    mode: MXUMode,
    mxu: M3XU | None,
    workers: int | None = None,
    fresh_pool: bool = False,
    abft: bool | None = None,
    timeout: float | None = None,
    retries: int | None = None,
) -> np.ndarray:
    unit = mxu or M3XU()
    _check_batched(a, b)
    n_workers = resolve_workers(workers)
    has_deadline = timeout is not None and timeout > 0
    # Stateful units (e.g. the one-shot fault wrapper) must see the whole
    # batch as one call sequence — fanning out would run a pickled copy of
    # the unit per worker, firing its state machine once per slice against
    # slice-local indices. A deadline always routes through parallel_map
    # (the timeout is enforced by killing hung pool workers), even for a
    # single-slice batch.
    if not has_deadline and (
        n_workers <= 1 or a.shape[0] <= 1 or getattr(unit, "requires_serial", False)
    ):
        out = _batched_serial(a, b, mode, unit)
    else:
        if getattr(unit, "requires_serial", False):
            n_workers = 1
        ranges = split_ranges(a.shape[0], n_workers)
        pieces = parallel_map(
            _batched_worker,
            [(a[lo:hi], b[lo:hi], mode, unit) for lo, hi in ranges],
            workers=n_workers,
            chunk_size=1,
            fresh_pool=fresh_pool,
            timeout=timeout,
            retries=retries,
        )
        out = np.concatenate(pieces, axis=0)
    if resolve_abft(abft):
        out = _verify_batch(out, a, b, mode, unit)
    return out


def _verify_batch(
    out: np.ndarray, a: np.ndarray, b: np.ndarray, mode: MXUMode, unit: M3XU
) -> np.ndarray:
    """ABFT-check every matrix of an already computed batch result.

    The parallel engine produced *out*; the guard only verifies checksums
    against the quantised operands and recomputes flagged tiles (through
    the serial per-matrix path, bit-identical element-wise), so the
    fan-out's throughput is preserved on the fault-free path.
    """
    for i in range(a.shape[0]):

        def compute(aa: np.ndarray, bb: np.ndarray, cc: np.ndarray) -> np.ndarray:
            # Batched entry points carry no C operand (cc is exact zero).
            return _batched_serial(aa[None, ...], bb[None, ...], mode, unit)[0]

        zero = np.zeros((a.shape[1], b.shape[2]), dtype=out.dtype)
        verified, _report = guarded_gemm(
            compute, a[i], b[i], zero, roundoff=2.0**-23, out=out[i]
        )
        if verified is not out[i]:
            out[i] = verified
    return out


def _batched_legacy(
    a: np.ndarray, b: np.ndarray, mode: MXUMode, mxu: M3XU | None = None
) -> np.ndarray:
    """Pre-plan reference loop (kept for cross-validation and benchmarks)."""
    unit = mxu or M3XU()
    _check_batched(a, b)
    k = a.shape[2]
    chunk = unit.config.tile(mode).k
    acc = _init_acc(a, b, mode)
    for k0 in range(0, k, chunk):
        acc = unit.mma(a[:, :, k0 : k0 + chunk], b[:, k0 : k0 + chunk, :], acc, mode)
    return acc


def batched_mxu_sgemm(
    a: np.ndarray,
    b: np.ndarray,
    mxu: M3XU | None = None,
    workers: int | None = None,
    fresh_pool: bool = False,
    abft: bool | None = None,
    timeout: float | None = None,
    retries: int | None = None,
) -> np.ndarray:
    """FP32 batched GEMM: ``(B, M, K) @ (B, K, N) -> (B, M, N)``.

    ``abft=True`` (or ``REPRO_ABFT=1``) checksum-verifies every matrix of
    the result and transparently recomputes corrupted tiles. ``timeout``
    is a per-slice wall-clock deadline in seconds enforced through
    :func:`repro.parallel.parallel_map` (hung workers are killed, the
    pool respawned); ``retries`` bounds re-attempts — the serving layer's
    per-request deadline propagates through these.
    """
    a = quantize(np.asarray(a, dtype=np.float64), FP32)
    b = quantize(np.asarray(b, dtype=np.float64), FP32)
    return _batched(a, b, MXUMode.FP32, mxu, workers, fresh_pool, abft,
                    timeout, retries)


def batched_mxu_cgemm(
    a: np.ndarray,
    b: np.ndarray,
    mxu: M3XU | None = None,
    workers: int | None = None,
    fresh_pool: bool = False,
    abft: bool | None = None,
    timeout: float | None = None,
    retries: int | None = None,
) -> np.ndarray:
    """FP32C batched GEMM over complex128 operands (``abft=True`` /
    ``REPRO_ABFT=1`` adds per-matrix checksum verification; ``timeout`` /
    ``retries`` propagate a wall-clock deadline into the pool fan-out as
    in :func:`batched_mxu_sgemm`)."""
    a = quantize_complex(np.asarray(a, dtype=np.complex128), FP32)
    b = quantize_complex(np.asarray(b, dtype=np.complex128), FP32)
    return _batched(a, b, MXUMode.FP32C, mxu, workers, fresh_pool, abft,
                    timeout, retries)


def strided_batch_view(x: np.ndarray, rows: int, cols: int) -> np.ndarray:
    """Reshape a contiguous matrix-panel buffer into a (B, rows, cols)
    batch without copying — the layout batched kernels consume."""
    x = np.ascontiguousarray(x)
    if x.size % (rows * cols):
        raise ValueError(f"buffer of {x.size} elements is not a whole number "
                         f"of {rows}x{cols} matrices")
    return x.reshape(-1, rows, cols)
