"""Software emulation schemes: FP32(-complex) GEMM on low-precision MXUs.

These are the functional models of the paper's software baselines
(Table IV and Section II-C.1): the input matrices are decomposed into
low-precision terms with explicit instructions, several low-precision
tensor-core GEMMs are launched, and the partial results are combined —
"software alternatives unavoidably have to decouple values and compensate
for potential precision losses."

* :func:`tensorop_sgemm_3xtf32` — ``cutlass_tensorop_sgemm``: 3 TF32
  GEMMs (hi*hi, hi*lo, lo*hi; CUTLASS "omitted the 4th GEMM on two
  low-order portions of the FP32 inputs to reach better performance").
* :func:`eehc_sgemm_3xbf16` — ``EEHC_sgemm_fp32B`` [Ma et al., ICS'22]:
  the same 3-GEMM scheme on BF16 splits.
* :func:`markidis_sgemm_4xfp16` — the classic 4-GEMM FP16 scheme
  [Markidis et al.] kept as an ablation (FP16's 5-bit exponent also
  limits range).
* :func:`cgemm_via_4_real` — the standard 4-real-GEMM complex
  decomposition used by all software complex baselines (Section VII).
* :func:`tensorop_cgemm_3xtf32` — ``cutlass_tensorop_cgemm``: the complex
  decomposition with each real GEMM performed by the 3xTF32 scheme.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..mxu.baseline import TensorCoreMXU
from ..mxu.modes import MXUMode
from ..types.decompose import split_round_residual
from ..types.formats import BF16, FP16, FP32, TF32, FloatFormat
from ..types.quantize import quantize
from .plan import GemmPlan, OperandSplit
from .tiled import TiledGEMM

__all__ = [
    "split_gemm",
    "tensorop_sgemm_3xtf32",
    "eehc_sgemm_3xbf16",
    "markidis_sgemm_4xfp16",
    "cgemm_via_4_real",
    "tensorop_cgemm_3xtf32",
    "fp16_tensorcore_sgemm",
]

RealGEMM = Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]


def split_gemm(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | float,
    base: FloatFormat,
    mode: MXUMode,
    n_gemms: int,
    mxu: TensorCoreMXU | None = None,
) -> np.ndarray:
    """Generic k-GEMM residual-split emulation of FP32 GEMM.

    Splits ``A = A0 + A1`` and ``B = B0 + B1`` (round + rounded residual in
    *base*) and accumulates the cross products from least to most
    significant — the ordering the real kernels use so that small terms
    are not absorbed before the large ones arrive:

    * ``n_gemms = 3``: ``A0*B1``, ``A1*B0``, ``A0*B0`` (drops ``A1*B1``)
    * ``n_gemms = 4``: adds ``A1*B1`` first.

    Every GEMM runs on the baseline tensor core in *mode* with FP32
    accumulation chained through C.
    """
    if n_gemms not in (3, 4):
        raise ValueError("n_gemms must be 3 or 4")
    a = quantize(a, FP32)
    b = quantize(b, FP32)
    a0, a1 = split_round_residual(a, base, 2)
    b0, b1 = split_round_residual(b, base, 2)
    driver = TiledGEMM(mxu or TensorCoreMXU(), mode)
    acc = np.broadcast_to(
        quantize(np.asarray(c, dtype=np.float64), FP32), (a.shape[0], b.shape[1])
    ).copy()
    if driver.use_plan and hasattr(driver.mxu, "mma_parts"):
        # Each split term participates in two of the GEMMs; resolve every
        # operand decomposition once and share it across the plans.
        k_chunk = int(driver.k_chunk)
        sa0, sa1 = (OperandSplit.build(x, mode) for x in (a0, a1))
        sb0, sb1 = (OperandSplit.build(x, mode) for x in (b0, b1))
        pairs = ([(sa1, sb1)] if n_gemms == 4 else []) + [
            (sa0, sb1), (sa1, sb0), (sa0, sb0)
        ]
        for sa, sb in pairs:
            acc = driver.run_plan(GemmPlan(sa, sb, k_chunk), acc)
        return acc
    if n_gemms == 4:
        acc = driver.run(a1, b1, acc)
    acc = driver.run(a0, b1, acc)
    acc = driver.run(a1, b0, acc)
    acc = driver.run(a0, b0, acc)
    return acc


def tensorop_sgemm_3xtf32(
    a: np.ndarray, b: np.ndarray, c: np.ndarray | float = 0.0,
    mxu: TensorCoreMXU | None = None,
) -> np.ndarray:
    """``cutlass_tensorop_sgemm``: FP32 GEMM as 3 TF32 tensor-core GEMMs."""
    return split_gemm(a, b, c, TF32, MXUMode.TF32, 3, mxu)


def eehc_sgemm_3xbf16(
    a: np.ndarray, b: np.ndarray, c: np.ndarray | float = 0.0,
    mxu: TensorCoreMXU | None = None,
) -> np.ndarray:
    """``EEHC_sgemm_fp32B``: FP32 GEMM as 3 BF16 tensor-core GEMMs."""
    return split_gemm(a, b, c, BF16, MXUMode.BF16, 3, mxu)


def markidis_sgemm_4xfp16(
    a: np.ndarray, b: np.ndarray, c: np.ndarray | float = 0.0,
    mxu: TensorCoreMXU | None = None,
) -> np.ndarray:
    """4-GEMM FP16 recovery scheme (ablation; range-limited by FP16)."""
    return split_gemm(a, b, c, FP16, MXUMode.FP16, 4, mxu)


def fp16_tensorcore_sgemm(
    a: np.ndarray, b: np.ndarray, c: np.ndarray | float = 0.0,
    mxu: TensorCoreMXU | None = None,
) -> np.ndarray:
    """Plain FP16 tensor-core GEMM of FP32 data (no recovery).

    The fast-but-wrong option the kNN case study measures against: "the
    reduced precision will produce meaningless computation results for
    input data with extremely small values."
    """
    return TiledGEMM(mxu or TensorCoreMXU(), MXUMode.FP16).run(a, b, c)


def cgemm_via_4_real(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | complex,
    real_gemm: RealGEMM,
) -> np.ndarray:
    """Complex GEMM as four real GEMMs (Section VII: "existing projects
    must perform four matrix multiplications ... for complex numbers").

    ``Re = Ar*Br - Ai*Bi``, ``Im = Ar*Bi + Ai*Br``; the subtraction is a
    negated accumulation through C, matching the kernels' epilogues.
    """
    a = np.asarray(a, dtype=np.complex128)
    b = np.asarray(b, dtype=np.complex128)
    c = np.asarray(c, dtype=np.complex128)
    ar, ai = a.real.copy(), a.imag.copy()
    br, bi = b.real.copy(), b.imag.copy()
    m, n = a.shape[0], b.shape[1]
    cr = np.broadcast_to(quantize(c.real, FP32), (m, n)).copy()
    ci = np.broadcast_to(quantize(c.imag, FP32), (m, n)).copy()
    re = real_gemm(ar, br, cr)
    re = real_gemm(-ai, bi, re)
    im = real_gemm(ar, bi, ci)
    im = real_gemm(ai, br, im)
    return re + 1j * im


def tensorop_cgemm_3xtf32(
    a: np.ndarray, b: np.ndarray, c: np.ndarray | complex = 0.0,
    mxu: TensorCoreMXU | None = None,
) -> np.ndarray:
    """``cutlass_tensorop_cgemm``: complex GEMM, each real part by 3xTF32."""
    def real_gemm(x: np.ndarray, y: np.ndarray, z: np.ndarray) -> np.ndarray:
        return tensorop_sgemm_3xtf32(x, y, z, mxu)

    return cgemm_via_4_real(a, b, c, real_gemm)
