"""GEMM drivers: references, MXU-tiled execution, software schemes."""

from .blas import CGEMM_BACKENDS, SGEMM_BACKENDS, cgemm, sgemm
from .batched import batched_mxu_cgemm, batched_mxu_sgemm, strided_batch_view
from .reference import cgemm_fp64, cgemm_simt, gemm_fp64, sgemm_simt
from .schemes import (
    cgemm_via_4_real,
    eehc_sgemm_3xbf16,
    fp16_tensorcore_sgemm,
    markidis_sgemm_4xfp16,
    split_gemm,
    tensorop_cgemm_3xtf32,
    tensorop_sgemm_3xtf32,
)
from .tiled import TiledGEMM, mxu_cgemm, mxu_sgemm, tensorcore_gemm

__all__ = [
    "gemm_fp64",
    "cgemm_fp64",
    "sgemm_simt",
    "cgemm_simt",
    "TiledGEMM",
    "mxu_sgemm",
    "mxu_cgemm",
    "tensorcore_gemm",
    "split_gemm",
    "tensorop_sgemm_3xtf32",
    "eehc_sgemm_3xbf16",
    "markidis_sgemm_4xfp16",
    "fp16_tensorcore_sgemm",
    "cgemm_via_4_real",
    "tensorop_cgemm_3xtf32",
    "batched_mxu_sgemm",
    "batched_mxu_cgemm",
    "strided_batch_view",
    "sgemm",
    "cgemm",
    "SGEMM_BACKENDS",
    "CGEMM_BACKENDS",
]
