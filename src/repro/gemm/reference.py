"""Reference GEMM implementations.

Two levels of ground truth:

* :func:`gemm_fp64` / :func:`cgemm_fp64` — float64 matmul, the numerical
  reference every accuracy study measures against.
* :func:`sgemm_simt` / :func:`cgemm_simt` — the functional model of the
  paper's *performance baseline*, ``cutlass_simt_sgemm``/``_cgemm``: FP32
  CUDA-core kernels, i.e. per-element FP32 FMA chains over K. These are
  also the *numerical* baseline for the paper's exactness claim ("M3XU
  instructions introduce no additional error compared to conventional
  FP32 ALUs").
"""

from __future__ import annotations

import numpy as np

from ..arith.dotproduct import fma_chain_dot
from ..types.formats import FP32
from ..types.quantize import quantize

__all__ = ["gemm_fp64", "cgemm_fp64", "sgemm_simt", "cgemm_simt"]


def gemm_fp64(a: np.ndarray, b: np.ndarray, c: np.ndarray | float = 0.0) -> np.ndarray:
    """Float64 GEMM reference: ``A @ B + C``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return a @ b + np.asarray(c, dtype=np.float64)


def cgemm_fp64(a: np.ndarray, b: np.ndarray, c: np.ndarray | complex = 0.0) -> np.ndarray:
    """Complex128 GEMM reference."""
    a = np.asarray(a, dtype=np.complex128)
    b = np.asarray(b, dtype=np.complex128)
    return a @ b + np.asarray(c, dtype=np.complex128)


def sgemm_simt(
    a: np.ndarray, b: np.ndarray, c: np.ndarray | float = 0.0
) -> np.ndarray:
    """FP32 SIMT-core GEMM: one FP32-rounded FMA per K element.

    ``d[i, j] = fma(a[i, K-1], b[K-1, j], ... fma(a[i, 0], b[0, j], c[i, j]))``
    — the accumulation order of a CUDA-core K-loop. Inputs are quantised to
    FP32 on entry (the kernels read FP32 registers).
    """
    a = quantize(a, FP32)
    b = quantize(b, FP32)
    c = quantize(np.asarray(c, dtype=np.float64), FP32)
    # fma_chain_dot reduces the last axis: arrange (M, N, K) broadcast.
    return fma_chain_dot(a[:, None, :], np.swapaxes(b, 0, 1)[None, :, :], c, FP32)


def cgemm_simt(
    a: np.ndarray, b: np.ndarray, c: np.ndarray | complex = 0.0
) -> np.ndarray:
    """FP32C SIMT-core GEMM: complex MACs from scalar FP32 FMAs.

    Per K element each output accumulates four FP32 FMAs, the schedule a
    compiler emits for ``acc += a*b`` on complex floats:

    ``re = fma(-ai, bi, fma(ar, br, re));  im = fma(ai, br, fma(ar, bi, im))``
    """
    a = np.asarray(a, dtype=np.complex128)
    b = np.asarray(b, dtype=np.complex128)
    ar = quantize(a.real, FP32)
    ai = quantize(a.imag, FP32)
    br = quantize(b.real, FP32)
    bi = quantize(b.imag, FP32)
    c = np.asarray(c, dtype=np.complex128)
    re = np.broadcast_to(quantize(c.real, FP32), (a.shape[0], b.shape[1])).copy()
    im = np.broadcast_to(quantize(c.imag, FP32), (a.shape[0], b.shape[1])).copy()
    for k in range(a.shape[1]):
        ark = ar[:, k][:, None]
        aik = ai[:, k][:, None]
        brk = br[k][None, :]
        bik = bi[k][None, :]
        re = quantize(re + ark * brk, FP32)
        re = quantize(re - aik * bik, FP32)
        im = quantize(im + ark * bik, FP32)
        im = quantize(im + aik * brk, FP32)
    return re + 1j * im
