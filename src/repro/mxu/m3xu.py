"""Functional model of M3XU: the multi-mode matrix unit (Section IV).

:class:`M3XU` extends the baseline Tensor Core with three multi-step
modes, all built on the same 12-bit-significand multiplier lanes:

* ``FP32`` — 2 steps per MMA, exact hi/lo mantissa decomposition (Eq. 3-8).
  All four partial products per operand pair are exact and the 48-bit
  shifted accumulation holds their aligned sum, so the MMA result is the
  correctly rounded FP32 dot product in all but one corner: an FP32
  midpoint tie broken only by bits below the 48-bit window rounds to even
  instead (still within half an ulp of the exact value, and FP32 FMA
  chains lose those bits too). This realises — and slightly sharpens —
  the paper's "the computation result of M3XU is exactly the same as
  FP32" claim (Section V-B); tests assert both the half-ulp bound and
  never-worse-than-SIMT.
* ``FP32C`` — 4 steps per MMA over the real/imaginary x high/low split
  (Eq. 9), with the sign-flip datapath subtracting the imag*imag products.
* ``FP64`` — the Section IV-C sketch: 4 steps over 27-bit operand slices.

One MMA = exact lane products -> wide aligned accumulation (48-bit model)
-> single rounding into the output register format.

Execution takes the fused fast path of :mod:`repro.mxu.fused` by default
(bit-identical, dramatically faster); construct ``M3XU(fastpath=False)``
or set ``REPRO_FASTPATH=0`` to force the legacy reference pipeline, which
is kept callable for cross-validation and benchmarking.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..arith.accumulator import aligned_sum
from ..types.formats import FP32, FP64, FloatFormat
from ..types.quantize import quantize
from .config import M3XU_CONFIG, MXUConfig
from .dataflow import lane_products, resolve_parts
from .fused import accumulate_mma, default_fastpath
from .modes import MXUMode, step_plan

__all__ = ["M3XU"]


class M3XU:
    """The multi-mode MXU. See module docstring.

    Parameters
    ----------
    config:
        Hardware configuration (non-pipelined M3XU by default; the
        pipelined variant is numerically identical and differs only in the
        performance/synthesis models).
    fastpath:
        Use the fused/BLAS execution path (bit-identical to the legacy
        pipeline). ``None`` consults ``REPRO_FASTPATH`` (default on);
        ``False`` pins this instance to the legacy reference pipeline.
    """

    def __init__(
        self, config: MXUConfig = M3XU_CONFIG, fastpath: bool | None = None
    ) -> None:
        self.config = config
        self.fastpath = default_fastpath() if fastpath is None else bool(fastpath)

    # ------------------------------------------------------------------
    def supported_modes(self) -> frozenset[MXUMode]:
        return self.config.modes

    def steps(self, mode: MXUMode) -> int:
        """Steps (cycles) one MMA takes in *mode* — 1/1/1/2/4/4."""
        return step_plan(mode).n_steps

    def output_format(self, mode: MXUMode) -> FloatFormat:
        return FP64 if mode is MXUMode.FP64 else FP32

    # ------------------------------------------------------------------
    def mma(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray | float,
        mode: MXUMode,
    ) -> np.ndarray:
        """One multi-step MMA instruction: ``D = round(A @ B + C)``.

        Real modes take float64 arrays carrying format-representable
        values; FP32C takes complex128 arrays whose components are FP32
        values and returns complex128 FP32-component results.
        """
        if not self.config.supports(mode):
            raise ValueError(f"{self.config.name} does not support {mode.value}")
        if mode is MXUMode.FP32C:
            a = np.asarray(a, dtype=np.complex128)
            b = np.asarray(b, dtype=np.complex128)
        else:
            a = np.asarray(a, dtype=np.float64)
            b = np.asarray(b, dtype=np.float64)
        if a.shape[-1] != b.shape[-2]:
            raise ValueError(f"K mismatch: A{a.shape} @ B{b.shape}")
        if not self.fastpath:
            if mode is MXUMode.FP32C:
                return self._mma_complex_legacy(a, b, c)
            return self._mma_real_legacy(a, b, c, mode)
        return self.mma_parts(
            a, b, resolve_parts(a, mode), resolve_parts(b, mode), c, mode
        )

    # Convenience wrappers mirroring the kernel names of Table II ---------
    def mma_fp32(self, a: np.ndarray, b: np.ndarray, c: np.ndarray | float) -> np.ndarray:
        """Native FP32 MMA (the M3XU_sgemm building block)."""
        return self.mma(a, b, c, MXUMode.FP32)

    def mma_fp32c(self, a: np.ndarray, b: np.ndarray, c: np.ndarray | float) -> np.ndarray:
        """Native FP32-complex MMA (the M3XU_cgemm building block)."""
        return self.mma(a, b, c, MXUMode.FP32C)

    def mma_fp64(self, a: np.ndarray, b: np.ndarray, c: np.ndarray | float) -> np.ndarray:
        """FP64 MMA per the Section IV-C extension sketch."""
        return self.mma(a, b, c, MXUMode.FP64)

    # ------------------------------------------------------------------
    def mma_parts(
        self,
        a: np.ndarray,
        b: np.ndarray,
        a_parts: Mapping[str, np.ndarray],
        b_parts: Mapping[str, np.ndarray],
        c: np.ndarray | float,
        mode: MXUMode,
        *,
        c_quantized: bool = False,
    ) -> np.ndarray:
        """One MMA over pre-split operands (the plan-driven entry point).

        *a*/*b* are the dense quantised operand slices, *a_parts*/*b_parts*
        their :func:`~repro.mxu.dataflow.resolve_parts` decomposition —
        typically views served by a :class:`~repro.gemm.plan.GemmPlan`, so
        the split work is paid once per GEMM instead of once per K-chunk.
        ``c_quantized=True`` skips the (idempotent) re-quantisation of an
        accumulator that is already in register format, as it always is
        between the chained MMAs of a K-chunk loop.
        """
        if not self.config.supports(mode):
            raise ValueError(f"{self.config.name} does not support {mode.value}")
        if mode is MXUMode.FP32C:
            return self._mma_complex_parts(a, b, a_parts, b_parts, c, c_quantized)
        return self._mma_real_parts(a, b, a_parts, b_parts, c, mode, c_quantized)

    def _mma_real_parts(
        self,
        a: np.ndarray,
        b: np.ndarray,
        a_parts: Mapping[str, np.ndarray],
        b_parts: Mapping[str, np.ndarray],
        c: np.ndarray | float,
        mode: MXUMode,
        c_quantized: bool,
    ) -> np.ndarray:
        out_fmt = self.output_format(mode)
        c_arr = np.asarray(c, dtype=np.float64)
        c_q = c_arr if c_quantized else quantize(c_arr, out_fmt)
        # FP64 mode's 54-bit lane products exceed the 48-bit path; its
        # accumulation registers are FP64, modelled by the float64 path.
        acc_bits = None if mode is MXUMode.FP64 else self.config.acc_bits
        if "X" in a_parts:
            # Single-step modes multiply the input-format-quantised operand,
            # not the raw register value; the fast-path dot must match.
            a, b = a_parts["X"], b_parts["X"]
        return accumulate_mma(
            [(a, b, False)],
            a_parts,
            b_parts,
            mode,
            "real",
            c_q,
            acc_bits,
            self.config.acc_rounding,
            out_fmt,
            fast=self.fastpath,
        )

    def _mma_complex_parts(
        self,
        a: np.ndarray,
        b: np.ndarray,
        a_parts: Mapping[str, np.ndarray],
        b_parts: Mapping[str, np.ndarray],
        c: np.ndarray | complex,
        c_quantized: bool,
    ) -> np.ndarray:
        c_arr = np.asarray(c, dtype=np.complex128)
        ar, ai = np.ascontiguousarray(a.real), np.ascontiguousarray(a.imag)
        br, bi = np.ascontiguousarray(b.real), np.ascontiguousarray(b.imag)
        out = {}
        # Eq. 9: Re = Ar*Br - Ai*Bi, Im = Ar*Bi + Ai*Br, each through its
        # own 48-bit accumulation register.
        for part, c_part, terms in (
            ("real", c_arr.real, [(ar, br, False), (ai, bi, True)]),
            ("imag", c_arr.imag, [(ar, bi, False), (ai, br, False)]),
        ):
            c_p = np.asarray(c_part, dtype=np.float64)
            c_q = c_p if c_quantized else quantize(c_p, FP32)
            out[part] = accumulate_mma(
                terms,
                a_parts,
                b_parts,
                MXUMode.FP32C,
                part,
                c_q,
                self.config.acc_bits,
                self.config.acc_rounding,
                FP32,
                fast=self.fastpath,
            )
        return out["real"] + 1j * out["imag"]

    # ------------------------------------------------------------------
    # Legacy reference pipeline (pre-fusion); kept callable so the fast
    # path can be cross-validated bit-for-bit and benchmarked against it.
    # ------------------------------------------------------------------
    def _mma_real_legacy(
        self, a: np.ndarray, b: np.ndarray, c: np.ndarray | float, mode: MXUMode
    ) -> np.ndarray:
        out_fmt = self.output_format(mode)
        products = lane_products(a, b, mode)["real"]
        c_q = quantize(np.asarray(c, dtype=np.float64), out_fmt)
        c_arr = np.broadcast_to(c_q, products.shape[:-1])[..., None]
        addends = np.concatenate([products, c_arr], axis=-1)
        acc_bits = None if mode is MXUMode.FP64 else self.config.acc_bits
        wide = aligned_sum(addends, axis=-1, acc_bits=acc_bits)
        return quantize(wide, out_fmt)

    def _mma_complex_legacy(
        self, a: np.ndarray, b: np.ndarray, c: np.ndarray | complex
    ) -> np.ndarray:
        grouped = lane_products(a, b, MXUMode.FP32C)
        c_arr = np.asarray(c, dtype=np.complex128)
        out = {}
        for part, c_part in (("real", c_arr.real), ("imag", c_arr.imag)):
            products = grouped[part]
            c_q = quantize(np.asarray(c_part, dtype=np.float64), FP32)
            c_full = np.broadcast_to(c_q, products.shape[:-1])[..., None]
            addends = np.concatenate([products, c_full], axis=-1)
            wide = aligned_sum(addends, axis=-1, acc_bits=self.config.acc_bits)
            out[part] = quantize(wide, FP32)
        return out["real"] + 1j * out["imag"]
