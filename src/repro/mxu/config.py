"""MXU configuration: instruction tile shapes and accumulator widths.

The baseline MXU "resembles the capability of a Tensor Core in Ampere …
as it can perform 8x8x4 matrix multiplications on FP16/BF16 input elements
and accumulates results in FP32" (Section V-A); the paper also quotes the
equivalent 8x4x8 dot-product-unit view (Section II-A). We parameterise the
native tile as (M, N, K) = (8, 4, 8) — an 8x8 A-tile times an 8x4 B-tile —
and derive the multi-step mode shapes from it:

* FP32: K halves  -> 8x4x4 per 2-step op (Section IV-A),
* FP32C: K quarters -> 8x4x2 complex per 4-step op (Section IV-B),
* FP64: K quarters -> 8x4x2 per 4-step op (Section IV-C analogy).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..arith.accumulator import M3XU_ACC_BITS, TENSORCORE_ACC_BITS
from ..types.rounding import RoundingMode
from .modes import MODE_INFO, MXUMode

__all__ = ["TileShape", "MXUConfig", "AMPERE_MXU", "M3XU_CONFIG", "M3XU_PIPELINED_CONFIG"]


@dataclass(frozen=True)
class TileShape:
    """An M x N x K matrix-multiply tile (C[MxN] += A[MxK] @ B[KxN])."""

    m: int
    n: int
    k: int

    @property
    def macs(self) -> int:
        """Multiply-accumulates in the tile."""
        return self.m * self.n * self.k

    @property
    def flops(self) -> int:
        return 2 * self.macs

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.m}x{self.n}x{self.k}"


@dataclass(frozen=True)
class MXUConfig:
    """Static configuration of one MXU instance.

    Parameters
    ----------
    name:
        Identifier used in reports.
    native_tile:
        The (M, N, K) tile of one native-precision single-step operation.
    modes:
        The modes this unit supports.
    acc_bits:
        Accumulator datapath width for multi-step modes (48 for M3XU).
        ``None`` selects the float64 wide path in the functional models.
    multiplier_mantissa_bits:
        Significand width of each multiplier input lane, hidden bit
        included (11 for baseline Tensor Cores, 12 for M3XU).
    pipelined:
        Whether the data-assignment stage is a separate pipeline stage
        (Table III design C) — affects cycle time, not function.
    acc_rounding:
        How the alignment datapath rounds shifted-out product bits.
        Reverse-engineering of Ampere Tensor Cores (Ootomo & Yokota)
        shows truncation (round-toward-zero); M3XU's extended
        accumulators round to nearest even.
    """

    name: str
    native_tile: TileShape = field(default_factory=lambda: TileShape(8, 4, 8))
    modes: frozenset[MXUMode] = frozenset(
        {MXUMode.FP16, MXUMode.BF16, MXUMode.TF32}
    )
    acc_bits: int | None = None
    multiplier_mantissa_bits: int = 11
    pipelined: bool = True
    acc_rounding: RoundingMode = RoundingMode.NEAREST_EVEN

    def supports(self, mode: MXUMode) -> bool:
        return mode in self.modes

    def tile(self, mode: MXUMode) -> TileShape:
        """Instruction tile shape in *mode* (K scales down per Corollary 1)."""
        if not self.supports(mode):
            raise ValueError(f"{self.name} does not support {mode}")
        _, k_den, _ = MODE_INFO[mode]
        if self.native_tile.k % k_den:
            raise ValueError(
                f"native K={self.native_tile.k} not divisible by {k_den} for {mode}"
            )
        return TileShape(self.native_tile.m, self.native_tile.n, self.native_tile.k // k_den)

    def steps(self, mode: MXUMode) -> int:
        """Cycles (steps) per operation in *mode* relative to native."""
        n_steps, _, _ = MODE_INFO[mode]
        return n_steps


#: The baseline Ampere-class Tensor Core (Section II-A / V-A): a finite
#: ~27-bit aligned accumulation datapath that truncates shifted-out bits —
#: the source of the "one to several bits of precision loss" the software
#: emulation schemes inherit (Section V-B).
AMPERE_MXU = MXUConfig(
    name="ampere_tensor_core",
    acc_bits=TENSORCORE_ACC_BITS,
    acc_rounding=RoundingMode.TOWARD_ZERO,
)

#: The full M3XU: baseline modes + FP32, FP32C, FP64 sketch.
M3XU_CONFIG = MXUConfig(
    name="m3xu",
    modes=frozenset(
        {
            MXUMode.FP16,
            MXUMode.BF16,
            MXUMode.TF32,
            MXUMode.FP32,
            MXUMode.FP32C,
            MXUMode.FP64,
        }
    ),
    acc_bits=M3XU_ACC_BITS,
    multiplier_mantissa_bits=12,
    pipelined=False,
)

#: Table III design C: pipelined data-assignment stage (same function,
#: baseline cycle time, more area).
M3XU_PIPELINED_CONFIG = MXUConfig(
    name="m3xu_pipelined",
    modes=M3XU_CONFIG.modes,
    acc_bits=M3XU_ACC_BITS,
    multiplier_mantissa_bits=12,
    pipelined=True,
)
