"""Fault injection into the M3XU datapath (validation tooling).

The paper validates its RTL with ModelSim; the software analogue is
fault-injection: flip one bit somewhere in the datapath and check that
the output corruption is what the microarchitecture predicts. Beyond
validating the model, the study quantifies a design property the
bit-level structure makes precise: a single-event upset in a *low-slice*
buffer entry perturbs the result by at most ``2^-12`` of the operand's
magnitude, while one in a *high-slice* entry (or the sign/exponent
fields) can corrupt the full value — the data-assignment buffers are not
uniformly critical.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..types.bits import decode, encode
from ..types.formats import FP32

__all__ = ["FaultSite", "inject_operand_fault", "slice_fault_study", "FaultImpact"]


class FaultSite(enum.Enum):
    """Where in the data-assignment buffer entry the upset lands."""

    SIGN = "sign"
    EXPONENT = "exponent"
    HIGH_SLICE = "high_slice"   # mantissa bits m[22:12] (or the hidden-1 wiring)
    LOW_SLICE = "low_slice"     # mantissa bits m[11:0]


def inject_operand_fault(
    x: np.ndarray,
    index: tuple[int, ...],
    site: FaultSite,
    bit: int,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Flip one stored bit of one FP32 operand element.

    Parameters
    ----------
    x:
        FP32-representable operand array (float64 storage).
    index:
        Which element to corrupt.
    site:
        Field the upset hits.
    bit:
        Bit offset *within the site* (0 = LSB of that field). Ranges:
        sign 0; exponent 0-7; high slice 0-10 (m[12..22]); low slice 0-11.

    Returns
    -------
    np.ndarray
        A copy of *x* with the chosen bit flipped.
    """
    x = np.array(x, dtype=np.float64, copy=True)
    limits = {
        FaultSite.SIGN: (31, 1),
        FaultSite.EXPONENT: (23, 8),
        FaultSite.HIGH_SLICE: (12, 11),
        FaultSite.LOW_SLICE: (0, 12),
    }
    base, width = limits[site]
    if not (0 <= bit < width):
        raise ValueError(f"bit {bit} out of range for {site.value} (width {width})")
    bits = encode(np.array([x[index]]), FP32)
    bits ^= np.uint64(1) << np.uint64(base + bit)
    x[index] = decode(bits, FP32)[0]
    return x


@dataclass(frozen=True)
class FaultImpact:
    """Aggregate impact of upsets at one site."""

    site: FaultSite
    max_rel_output_error: float
    mean_rel_output_error: float


def slice_fault_study(
    m: int = 8,
    k: int = 4,
    n: int = 4,
    trials: int = 30,
    seed: int = 31,
) -> list[FaultImpact]:
    """Monte-Carlo single-bit upsets per site through a real M3XU MMA.

    Returns per-site impact statistics (relative error of the worst
    output element vs the fault-free MMA).
    """
    from .m3xu import M3XU
    from ..types.quantize import quantize

    rng = np.random.default_rng(seed)
    unit = M3XU()
    out: list[FaultImpact] = []
    for site in FaultSite:
        errs = []
        for _ in range(trials):
            a = quantize(rng.uniform(0.5, 2.0, size=(m, k)), FP32)
            b = quantize(rng.uniform(0.5, 2.0, size=(k, n)), FP32)
            clean = unit.mma_fp32(a, b, 0.0)
            idx = (int(rng.integers(m)), int(rng.integers(k)))
            width = {FaultSite.SIGN: 1, FaultSite.EXPONENT: 8,
                     FaultSite.HIGH_SLICE: 11, FaultSite.LOW_SLICE: 12}[site]
            bit = int(rng.integers(width))
            a_bad = inject_operand_fault(a, idx, site, bit)
            dirty = unit.mma_fp32(a_bad, b, 0.0)
            denom = np.maximum(np.abs(clean), 1e-30)
            rel = np.abs(dirty - clean) / denom
            errs.append(float(np.max(rel[np.isfinite(rel)], initial=0.0)))
        out.append(
            FaultImpact(
                site=site,
                max_rel_output_error=max(errs),
                mean_rel_output_error=float(np.mean(errs)),
            )
        )
    return out
