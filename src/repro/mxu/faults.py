"""Fault injection into the M3XU datapath (validation tooling).

The paper validates its RTL with ModelSim; the software analogue is
fault-injection: flip one bit somewhere in the datapath and check that
the output corruption is what the microarchitecture predicts. Beyond
validating the model, the study quantifies a design property the
bit-level structure makes precise: a single-event upset in a *low-slice*
buffer entry perturbs the result by at most ``2^-12`` of the operand's
magnitude, while one in a *high-slice* entry (or the sign/exponent
fields) can corrupt the full value — the data-assignment buffers are not
uniformly critical.

Two layers of tooling live here:

* **Bit-level injectors** — :func:`inject_operand_fault` flips one bit
  of one operand-buffer entry (the original study);
  :func:`inject_register_fault`, :func:`inject_shift_align_fault` and
  :func:`inject_sign_flip_fault` extend the reach to the accumulation
  register, the shift-align stage (an upset in the alignment shift
  count leaves a result off by a power of two) and the sign-flip
  datapath of the complex mode (Fig. 3(c)).
* **:class:`FaultyM3XU`** — a transparent MXU wrapper that arms one
  :class:`FaultSpec` and fires it on a chosen MMA invocation, modelling
  a transient single-event upset inside a longer GEMM. It drives the
  randomized campaigns of :mod:`repro.resilience.campaign` and the
  ABFT inject→detect→recover demonstrations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Mapping

import numpy as np

from ..types.bits import decode, encode
from ..types.formats import FP32, FloatFormat
from .config import MXUConfig
from .modes import MXUMode

if TYPE_CHECKING:
    from .m3xu import M3XU
    from .vectorized import BitLevelMXU

__all__ = [
    "FaultSite",
    "FaultStage",
    "FaultSpec",
    "FaultyM3XU",
    "inject_operand_fault",
    "inject_register_fault",
    "inject_shift_align_fault",
    "inject_sign_flip_fault",
    "slice_fault_study",
    "FaultImpact",
]


class FaultSite(enum.Enum):
    """Where in the data-assignment buffer entry the upset lands."""

    SIGN = "sign"
    EXPONENT = "exponent"
    HIGH_SLICE = "high_slice"   # mantissa bits m[22:12] (or the hidden-1 wiring)
    LOW_SLICE = "low_slice"     # mantissa bits m[11:0]


def inject_operand_fault(
    x: np.ndarray,
    index: tuple[int, ...],
    site: FaultSite,
    bit: int,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Flip one stored bit of one FP32 operand element.

    Parameters
    ----------
    x:
        FP32-representable operand array (float64 storage).
    index:
        Which element to corrupt.
    site:
        Field the upset hits.
    bit:
        Bit offset *within the site* (0 = LSB of that field). Ranges:
        sign 0; exponent 0-7; high slice 0-10 (m[12..22]); low slice 0-11.

    Returns
    -------
    np.ndarray
        A copy of *x* with the chosen bit flipped.
    """
    x = np.array(x, dtype=np.float64, copy=True)
    limits = {
        FaultSite.SIGN: (31, 1),
        FaultSite.EXPONENT: (23, 8),
        FaultSite.HIGH_SLICE: (12, 11),
        FaultSite.LOW_SLICE: (0, 12),
    }
    base, width = limits[site]
    if not (0 <= bit < width):
        raise ValueError(f"bit {bit} out of range for {site.value} (width {width})")
    bits = encode(np.array([x[index]]), FP32)
    bits ^= np.uint64(1) << np.uint64(base + bit)
    x[index] = decode(bits, FP32)[0]
    return x


class FaultStage(enum.Enum):
    """Which datapath stage the upset lands in.

    ``OPERAND`` hits a data-assignment buffer entry before the multiply
    (the original study's site); the other three model upsets later in
    the pipeline, expressed as their predicted effect on the MMA output:
    an ``ACCUMULATOR`` register bit flip, a ``SHIFT_ALIGN`` shift-count
    upset (result scaled by a power of two), and a ``SIGN_FLIP`` stage
    fault (result negated — the complex mode's subtract path firing, or
    failing to fire, spuriously).

    ``PRODUCT`` flips one bit of one 12x12-bit multiplier lane's 24-bit
    product *inside* the datapath, addressed by flat slot index
    (:class:`~repro.mxu.vectorized.ProductFault`). It requires a
    bit-level capable unit (:class:`~repro.mxu.vectorized.BitLevelMXU`)
    — the value-level model has no product significands to corrupt — and
    the corruption propagates through the true shifted 48-bit
    accumulation, not through an output-side prediction.
    """

    OPERAND = "operand"
    ACCUMULATOR = "accumulator"
    SHIFT_ALIGN = "shift_align"
    SIGN_FLIP = "sign_flip"
    PRODUCT = "product"


def inject_register_fault(
    x: np.ndarray,
    index: tuple[int, ...],
    bit: int,
    fmt: FloatFormat = FP32,
) -> np.ndarray:
    """Flip one stored bit of one register-format element of *x*.

    Models a single-event upset in an accumulation/output register: the
    element is re-encoded in *fmt* (FP32 by default — the M3XU output
    register format), the chosen bit (0 = LSB) is flipped, and the
    corrupted encoding is decoded back.
    """
    total = 1 + fmt.exponent_bits + fmt.mantissa_bits
    if not (0 <= bit < total):
        raise ValueError(f"bit {bit} out of range for {fmt.name} (width {total})")
    x = np.array(x, dtype=np.float64, copy=True)
    bits = encode(np.array([x[index]]), fmt)
    bits ^= np.uint64(1) << np.uint64(bit)
    x[index] = decode(bits, fmt)[0]
    return x


def inject_shift_align_fault(
    x: np.ndarray, index: tuple[int, ...], shift: int
) -> np.ndarray:
    """Scale one element by ``2**shift`` — the predicted corruption of an
    upset in the shift-align stage's shift count."""
    x = np.array(x, copy=True)
    x[index] = np.ldexp(1.0, shift) * x[index]
    return x


def inject_sign_flip_fault(x: np.ndarray, index: tuple[int, ...]) -> np.ndarray:
    """Negate one element — a stuck/spurious sign-flip stage."""
    x = np.array(x, copy=True)
    x[index] = -x[index]
    return x


@dataclass(frozen=True)
class FaultSpec:
    """One armed transient fault for :class:`FaultyM3XU`.

    Fields left ``None`` are resolved uniformly at random (element
    coordinates, operand site, bit offset) from the spec's seed when the
    fault fires, so one spec describes a reproducible randomized trial.
    """

    stage: FaultStage
    call_index: int = 0  #: which MMA invocation (0-based) the upset hits
    element: tuple[int, ...] | None = None
    site: "FaultSite | None" = None  #: operand-stage field (random if None)
    bit: int | None = None  #: bit offset within the site/register/product
    shift: int | None = None  #: shift-align scale exponent (random ±1..8)
    seed: int = 0
    slot: int | None = None  #: product-stage flat slot index (random if None)

    @classmethod
    def random(
        cls,
        rng: np.random.Generator,
        stage: FaultStage,
        n_calls: int = 1,
    ) -> "FaultSpec":
        """A fully randomized spec hitting one of *n_calls* MMAs."""
        return cls(
            stage=stage,
            call_index=int(rng.integers(max(n_calls, 1))),
            seed=int(rng.integers(2**31 - 1)),
        )

    def describe(self) -> str:
        parts = [self.stage.value, f"call={self.call_index}"]
        if self.site is not None:
            parts.append(self.site.value)
        if self.bit is not None:
            parts.append(f"bit={self.bit}")
        if self.shift is not None:
            parts.append(f"shift={self.shift}")
        if self.slot is not None:
            parts.append(f"slot={self.slot}")
        return " ".join(parts)


_SITE_WIDTH = {
    FaultSite.SIGN: 1,
    FaultSite.EXPONENT: 8,
    FaultSite.HIGH_SLICE: 11,
    FaultSite.LOW_SLICE: 12,
}


class FaultyM3XU:
    """An MXU wrapper that injects one transient fault, then runs clean.

    Wraps any MXU functional model exposing the ``mma``/``mma_parts``
    contract and passes every call through unchanged except the one the
    armed :class:`FaultSpec` names, where the configured upset is
    applied: operand-stage faults corrupt the A operand (and re-derive
    its slice decomposition, as the corrupted buffer entry feeds the
    data-assignment stage); the later-stage faults corrupt the MMA
    output according to the microarchitectural prediction for their
    stage. The fault fires exactly once — the transient-upset model —
    so a recomputation of the affected region observes a clean unit.

    The wrapper is stateful (call counter, one-shot flag), so drivers
    that fan work out across processes must keep it on the serial path:
    each worker would otherwise run its own pickled copy, firing the
    fault once per worker against worker-local indices.
    """

    #: Stateful unit — batch/shard drivers must not fan it out.
    requires_serial = True

    def __init__(self, spec: FaultSpec, unit: "M3XU | BitLevelMXU | None" = None):
        from .m3xu import M3XU

        self.unit = unit if unit is not None else M3XU()
        self.spec = spec
        self.calls = 0
        self.fired = False
        self.injected: FaultSpec | None = None  #: spec with randomness resolved
        self._rng = np.random.default_rng(spec.seed)

    # -- delegation ----------------------------------------------------
    @property
    def config(self) -> MXUConfig:
        return self.unit.config

    @property
    def fastpath(self) -> bool:
        return getattr(self.unit, "fastpath", False)

    @property
    def bitlevel(self) -> bool:
        """Whether the wrapped unit runs the bit-level datapath."""
        return bool(getattr(self.unit, "bitlevel", False))

    def supported_modes(self) -> frozenset[MXUMode]:
        return self.unit.supported_modes()

    def steps(self, mode: MXUMode) -> int:
        return self.unit.steps(mode)

    def output_format(self, mode: MXUMode) -> FloatFormat:
        return self.unit.output_format(mode)

    # -- fault machinery -----------------------------------------------
    def _should_fire(self) -> bool:
        fire = not self.fired and self.calls == self.spec.call_index
        self.calls += 1
        return fire

    def _pick_element(self, shape: tuple[int, ...]) -> tuple[int, ...]:
        if self.spec.element is not None:
            return self.spec.element
        return tuple(int(self._rng.integers(n)) for n in shape)

    def _corrupt_operand(
        self, a: np.ndarray, mode: MXUMode
    ) -> tuple[np.ndarray, FaultSpec]:
        site = self.spec.site
        if site is None:
            site = list(FaultSite)[int(self._rng.integers(len(FaultSite)))]
        bit = self.spec.bit
        if bit is None:
            bit = int(self._rng.integers(_SITE_WIDTH[site]))
        idx = self._pick_element(a.shape)
        if np.iscomplexobj(a):
            re, im = np.array(a.real, copy=True), np.array(a.imag, copy=True)
            if int(self._rng.integers(2)):
                im = inject_operand_fault(im, idx, site, bit)
            else:
                re = inject_operand_fault(re, idx, site, bit)
            bad = re + 1j * im
        else:
            bad = inject_operand_fault(a, idx, site, bit)
        return bad, replace(self.spec, element=idx, site=site, bit=bit)

    def _corrupt_output(
        self, out: np.ndarray, mode: MXUMode
    ) -> tuple[np.ndarray, FaultSpec]:
        idx = self._pick_element(out.shape)
        stage = self.spec.stage
        resolved = self.spec

        def corrupt(component: np.ndarray) -> np.ndarray:
            nonlocal resolved
            resolved = replace(self.spec, element=idx)
            if stage is FaultStage.ACCUMULATOR:
                fmt = self.unit.output_format(mode)
                bit = self.spec.bit
                if bit is None:
                    width = 1 + fmt.exponent_bits + fmt.mantissa_bits
                    bit = int(self._rng.integers(width))
                resolved = replace(resolved, bit=bit)
                return inject_register_fault(component, idx, bit, fmt)
            if stage is FaultStage.SHIFT_ALIGN:
                shift = self.spec.shift
                if shift is None:
                    magnitude = int(self._rng.integers(1, 9))
                    shift = magnitude if int(self._rng.integers(2)) else -magnitude
                resolved = replace(resolved, shift=shift)
                return inject_shift_align_fault(component, idx, shift)
            if stage is FaultStage.SIGN_FLIP:
                return inject_sign_flip_fault(component, idx)
            raise ValueError(f"not an output-stage fault: {stage}")

        if np.iscomplexobj(out):
            # The real and imaginary accumulation registers are distinct
            # hardware; the upset hits one of them.
            re = np.array(out.real, dtype=np.float64, copy=True)
            im = np.array(out.imag, dtype=np.float64, copy=True)
            if int(self._rng.integers(2)):
                im = corrupt(im)
            else:
                re = corrupt(re)
            return re + 1j * im, resolved
        return corrupt(np.asarray(out, dtype=np.float64)), resolved

    def _resolve_product(
        self, a: np.ndarray, b: np.ndarray, mode: MXUMode
    ) -> tuple[object, FaultSpec]:
        """Resolve a PRODUCT-stage spec into a concrete ProductFault."""
        from .vectorized import PRODUCT_BITS, ProductFault, product_slot_count

        if not self.bitlevel:
            raise ValueError(
                "product-stage faults require a bit-level MXU model "
                "(BitLevelMXU / TiledGEMM(fused=False)); the value-level "
                "model has no product significands to corrupt"
            )
        idx = self._pick_element((a.shape[0], b.shape[1]))
        n_slots = product_slot_count(mode, a.shape[1])
        slot = self.spec.slot
        if slot is None:
            slot = int(self._rng.integers(n_slots))
        bit = self.spec.bit
        if bit is None:
            bit = int(self._rng.integers(PRODUCT_BITS))
        fault = ProductFault(slot=slot, element=(int(idx[0]), int(idx[1])), bit=bit)
        return fault, replace(self.spec, element=idx, slot=slot, bit=bit)

    # -- MMA entry points ----------------------------------------------
    def mma(
        self, a: np.ndarray, b: np.ndarray, c: np.ndarray | float, mode: MXUMode
    ) -> np.ndarray:
        fire = self._should_fire()
        if fire and self.spec.stage is FaultStage.OPERAND:
            self.fired = True
            a, self.injected = self._corrupt_operand(np.asarray(a), mode)
        if fire and self.spec.stage is FaultStage.PRODUCT:
            self.fired = True
            a = np.asarray(a)
            b = np.asarray(b)
            fault, self.injected = self._resolve_product(a, b, mode)
            return self.unit.mma(a, b, c, mode, product_fault=fault)
        out = self.unit.mma(a, b, c, mode)
        if fire and self.spec.stage is not FaultStage.OPERAND:
            self.fired = True
            out, self.injected = self._corrupt_output(out, mode)
        return out

    def mma_parts(
        self,
        a: np.ndarray,
        b: np.ndarray,
        a_parts: Mapping[str, np.ndarray],
        b_parts: Mapping[str, np.ndarray],
        c: np.ndarray | float,
        mode: MXUMode,
        *,
        c_quantized: bool = False,
    ) -> np.ndarray:
        fire = self._should_fire()
        if fire and self.spec.stage is FaultStage.OPERAND:
            from .dataflow import resolve_parts

            self.fired = True
            a, self.injected = self._corrupt_operand(np.asarray(a), mode)
            a_parts = resolve_parts(a, mode)  # the bad entry feeds data-assignment
        if fire and self.spec.stage is FaultStage.PRODUCT:
            self.fired = True
            a = np.asarray(a)
            b = np.asarray(b)
            fault, self.injected = self._resolve_product(a, b, mode)
            return self.unit.mma_parts(
                a,
                b,
                a_parts,
                b_parts,
                c,
                mode,
                c_quantized=c_quantized,
                product_fault=fault,
            )
        out = self.unit.mma_parts(
            a, b, a_parts, b_parts, c, mode, c_quantized=c_quantized
        )
        if fire and self.spec.stage is not FaultStage.OPERAND:
            self.fired = True
            out, self.injected = self._corrupt_output(out, mode)
        return out

    def mma_fp32(self, a: np.ndarray, b: np.ndarray, c: np.ndarray | float) -> np.ndarray:
        return self.mma(a, b, c, MXUMode.FP32)

    def mma_fp32c(self, a: np.ndarray, b: np.ndarray, c: np.ndarray | float) -> np.ndarray:
        return self.mma(a, b, c, MXUMode.FP32C)


@dataclass(frozen=True)
class FaultImpact:
    """Aggregate impact of upsets at one site."""

    site: FaultSite
    max_rel_output_error: float
    mean_rel_output_error: float


def slice_fault_study(
    m: int = 8,
    k: int = 4,
    n: int = 4,
    trials: int = 30,
    seed: int = 31,
) -> list[FaultImpact]:
    """Monte-Carlo single-bit upsets per site through a real M3XU MMA.

    Returns per-site impact statistics (relative error of the worst
    output element vs the fault-free MMA).
    """
    from .m3xu import M3XU
    from ..types.quantize import quantize

    rng = np.random.default_rng(seed)
    unit = M3XU()
    out: list[FaultImpact] = []
    for site in FaultSite:
        errs = []
        for _ in range(trials):
            a = quantize(rng.uniform(0.5, 2.0, size=(m, k)), FP32)
            b = quantize(rng.uniform(0.5, 2.0, size=(k, n)), FP32)
            clean = unit.mma_fp32(a, b, 0.0)
            idx = (int(rng.integers(m)), int(rng.integers(k)))
            width = {FaultSite.SIGN: 1, FaultSite.EXPONENT: 8,
                     FaultSite.HIGH_SLICE: 11, FaultSite.LOW_SLICE: 12}[site]
            bit = int(rng.integers(width))
            a_bad = inject_operand_fault(a, idx, site, bit)
            dirty = unit.mma_fp32(a_bad, b, 0.0)
            denom = np.maximum(np.abs(clean), 1e-30)
            # repro: allow[XF505] offline diagnostic: the relative-error
            # metric over fault-injected MMA outputs is deliberately lossy
            # float math and never feeds back into the datapath.
            rel = np.abs(dirty - clean) / denom
            errs.append(float(np.max(rel[np.isfinite(rel)], initial=0.0)))
        out.append(
            FaultImpact(
                site=site,
                max_rel_output_error=max(errs),
                mean_rel_output_error=float(np.mean(errs)),
            )
        )
    return out
