"""Content-addressed operand split cache.

M3XU's cost model amortises the decomposition of each FP32 operand into
12-bit lanes across the MMA steps of one instruction, but a *workload*
amortises it much further: the serving pattern is fixed weights times
streaming activations, and the batched/sweep entry points stack the same
matrix many times. Re-deriving the split (``resolve_parts`` /
``split_fp32_fields``) for a matrix whose bytes were split moments ago
is pure waste — hashing 2 MB costs a tenth of splitting it.

This module provides the process-wide store those paths share:

* keys are :func:`operand_digest` — ``stable_digest`` (the same
  canonical SHA-256 the result cache uses) over the operand's bytes,
  dtype, shape and the consumer's mode/kind tags, so two byte-identical
  matrices collide on purpose and nothing else ever does;
* values are whatever pre-split artefact the consumer stores — a
  value-level :class:`~repro.gemm.plan.OperandSplit`, the vector
  engine's packed lane fields, a quantised dense operand — held in a
  bounded LRU (:class:`SplitCache`) capped by entry count *and* bytes;
* every cached array is frozen read-only (:func:`freeze_arrays`): cache
  hits hand out shared references, and the bit-identity contract dies
  the moment a consumer can scribble on one.

``REPRO_SPLIT_CACHE`` gates the whole thing (default **on**; ``0`` /
``false`` / ``off`` disables). The cold path is bit-identical by
construction: a hit returns exactly what the splitting code produced
for the same bytes, and a disabled cache runs exactly the pre-cache
code. Malformed environment values warn and fall back to the default,
mirroring ``REPRO_WORKERS``.
"""

from __future__ import annotations

import os
import threading
import warnings
from collections import OrderedDict
from typing import Any, Iterable

import numpy as np

from ..cache import stable_digest

__all__ = [
    "SPLIT_CACHE_ENV",
    "SPLIT_CACHE_MIN_BYTES",
    "DEFAULT_SPLIT_CACHE_ENTRIES",
    "DEFAULT_SPLIT_CACHE_BYTES",
    "resolve_split_cache",
    "operand_digest",
    "freeze_arrays",
    "SplitCache",
    "DEFAULT_SPLIT_CACHE",
    "split_cache_probe",
]

#: Environment variable gating the split cache (``0``/``false``/``off``).
SPLIT_CACHE_ENV = "REPRO_SPLIT_CACHE"

#: Operands below this many bytes are never cached: the digest+bookkeeping
#: overhead rivals the split itself, and tiny tiles churn the LRU.
SPLIT_CACHE_MIN_BYTES = 1 << 12

#: Default LRU entry bound.
DEFAULT_SPLIT_CACHE_ENTRIES = 64

#: Default LRU byte bound (sum over cached arrays). An FP32 split of a
#: 512x512 operand is ~6 MB (dense + hi + lo), so the default holds a few
#: dozen serving-sized weight matrices.
DEFAULT_SPLIT_CACHE_BYTES = 256 << 20

_TRUE = ("1", "true", "on", "yes")
_FALSE = ("0", "false", "off", "no")


def resolve_split_cache(enabled: bool | None = None) -> bool:
    """Whether the operand split cache is enabled.

    Explicit ``enabled`` wins; otherwise ``REPRO_SPLIT_CACHE`` is
    consulted; otherwise **on**. An unrecognised environment value warns
    and falls back to the default, mirroring ``REPRO_WORKERS``.
    """
    if enabled is not None:
        return bool(enabled)
    raw = os.environ.get(SPLIT_CACHE_ENV, "").strip().lower()
    if not raw or raw in _TRUE:
        return True
    if raw in _FALSE:
        return False
    warnings.warn(
        f"{SPLIT_CACHE_ENV}={raw!r} is not a boolean; split cache stays enabled",
        RuntimeWarning,
        stacklevel=2,
    )
    return True


def operand_digest(x: np.ndarray, *tags: Any) -> str:
    """Content address of one operand: bytes + dtype + shape + *tags*.

    Byte-identical operands (same dtype/shape) collide on purpose; the
    tags keep different consumers (mode, artefact kind) apart.
    """
    return stable_digest("split-cache-v1", np.asarray(x), *tags)


def freeze_arrays(value: Any) -> Any:
    """Mark every ndarray reachable through *value* read-only (in place).

    Cache hits share references; a writable cached plane would let one
    caller corrupt every later hit. Arrays that do not own their base
    (views, broadcasts) are left as-is — they are already read-only or
    their owner is frozen alongside them.
    """
    if isinstance(value, np.ndarray):
        if value.base is None:
            value.flags.writeable = False
        return value
    if isinstance(value, dict):
        for v in value.values():
            freeze_arrays(v)
        return value
    if isinstance(value, (tuple, list)):
        for v in value:
            freeze_arrays(v)
        return value
    for name in getattr(value, "__dataclass_fields__", ()):
        freeze_arrays(getattr(value, name))
    return value


def _value_nbytes(value: Any) -> int:
    """Total ndarray bytes reachable through *value* (views count once
    per reference — good enough for a bound, not an allocator)."""
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, dict):
        return sum(_value_nbytes(v) for v in value.values())
    if isinstance(value, (tuple, list)):
        return sum(_value_nbytes(v) for v in value)
    fields: Iterable[str] = getattr(value, "__dataclass_fields__", ())
    return sum(_value_nbytes(getattr(value, name)) for name in fields)


class SplitCache:
    """Bounded in-memory LRU for pre-split operand artefacts.

    Unlike :class:`repro.cache.ResultCache` the values are *not* pickled:
    hits share the stored (frozen, read-only) arrays, because sharing is
    the entire point — the split planes feed the MMA datapath as-is.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_SPLIT_CACHE_ENTRIES,
        max_bytes: int = DEFAULT_SPLIT_CACHE_BYTES,
    ):
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._mem: OrderedDict[str, tuple[Any, int]] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()

    def get(self, key: str) -> Any:
        """The cached artefact for *key* (shared reference) or ``None``."""
        with self._lock:
            hit = self._mem.get(key)
            if hit is None:
                self.misses += 1
                return None
            self._mem.move_to_end(key)
            self.hits += 1
            return hit[0]

    def put(self, key: str, value: Any) -> Any:
        """Store *value* (frozen first) under *key*; returns *value*.

        Oversized values (beyond the byte bound on their own) are frozen
        but not stored — the caller keeps a usable artefact either way.
        """
        freeze_arrays(value)
        nbytes = _value_nbytes(value)
        if nbytes > self.max_bytes:
            return value
        with self._lock:
            old = self._mem.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._mem[key] = (value, nbytes)
            self._bytes += nbytes
            while self._mem and (
                len(self._mem) > self.max_entries or self._bytes > self.max_bytes
            ):
                _, (_, dropped) = self._mem.popitem(last=False)
                self._bytes -= dropped
                self.evictions += 1
        return value

    def clear(self) -> None:
        with self._lock:
            self._mem.clear()
            self._bytes = 0
            self.hits = self.misses = self.evictions = 0

    def info(self) -> dict[str, Any]:
        with self._lock:
            return {
                "enabled": resolve_split_cache(),
                "entries": len(self._mem),
                "bytes": self._bytes,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


#: The process-wide split cache every pre-split consumer shares.
DEFAULT_SPLIT_CACHE = SplitCache()


def split_cache_probe(_item: Any = None) -> dict[str, Any]:
    """Module-level (pickleable) task fn returning the *executing*
    process's :data:`DEFAULT_SPLIT_CACHE` stats.

    Pool workers keep their own resident split caches (forked state plus
    whatever their jobs split); ship this through
    :func:`repro.parallel.parallel_map` to observe them from the parent —
    test/benchmark support, mirroring ``repro.parallel._arena_probe``.
    """
    return DEFAULT_SPLIT_CACHE.info()
