"""Functional model of the baseline Tensor Core MXU (Section II-A).

One MMA instruction multiplies low-precision operand tiles and accumulates
into FP32: products are formed exactly by the dot-product units, aligned
and summed through the wide internal datapath, and rounded once into the
FP32 accumulator (together with the C operand).

The baseline supports FP16, BF16 and TF32 inputs only — "Current Tensor
Cores provide no hardware support for true FP32 arithmetic or complex
numbers". Feeding FP32 data in TF32 mode silently drops 13 mantissa bits,
which is exactly the precision loss the software baselines must repair.
"""

from __future__ import annotations

import numpy as np

from ..arith.accumulator import aligned_sum
from ..types.formats import FP32
from ..types.quantize import quantize
from .config import AMPERE_MXU, MXUConfig
from .dataflow import lane_products
from .modes import MXUMode

__all__ = ["TensorCoreMXU"]


class TensorCoreMXU:
    """Baseline Ampere-class Tensor Core: FP16/BF16/TF32 MMA, FP32 accumulate.

    Parameters
    ----------
    config:
        Hardware configuration; defaults to the Ampere baseline.

    Notes
    -----
    ``mma`` accepts arbitrary (batched) operand shapes. The *numerical*
    contract of one hardware instruction — exact products, one wide
    accumulation, one FP32 rounding — is honoured for whatever K is passed;
    GEMM drivers in :mod:`repro.gemm` chop K into instruction-sized chunks
    so that the inter-instruction FP32 rounding is modelled faithfully.
    """

    def __init__(self, config: MXUConfig = AMPERE_MXU) -> None:
        self.config = config

    def supported_modes(self) -> frozenset[MXUMode]:
        return self.config.modes

    def mma(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray | float,
        mode: MXUMode,
    ) -> np.ndarray:
        """One MMA: ``D = round_fp32(A @ B + C)`` with mode-format inputs.

        Inputs are quantised to the mode's input format on the way in
        (modelling the register-file conversion; pre-quantised data passes
        through unchanged).
        """
        if not self.config.supports(mode):
            raise ValueError(
                f"{self.config.name} has no hardware support for {mode.value}; "
                f"supported: {sorted(m.value for m in self.config.modes)}"
            )
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if a.shape[-1] != b.shape[-2]:
            raise ValueError(f"K mismatch: A{a.shape} @ B{b.shape}")
        products = lane_products(a, b, mode)["real"]
        c_arr = np.broadcast_to(
            quantize(np.asarray(c, dtype=np.float64), FP32), products.shape[:-1]
        )[..., None]
        addends = np.concatenate([products, c_arr], axis=-1)
        wide = aligned_sum(
            addends,
            axis=-1,
            acc_bits=self.config.acc_bits,
            mode=self.config.acc_rounding,
        )
        return quantize(wide, FP32)
