"""Functional model of the baseline Tensor Core MXU (Section II-A).

One MMA instruction multiplies low-precision operand tiles and accumulates
into FP32: products are formed exactly by the dot-product units, aligned
and summed through the wide internal datapath, and rounded once into the
FP32 accumulator (together with the C operand).

The baseline supports FP16, BF16 and TF32 inputs only — "Current Tensor
Cores provide no hardware support for true FP32 arithmetic or complex
numbers". Feeding FP32 data in TF32 mode silently drops 13 mantissa bits,
which is exactly the precision loss the software baselines must repair.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..arith.accumulator import aligned_sum
from ..types.formats import FP32
from ..types.quantize import quantize
from .config import AMPERE_MXU, MXUConfig
from .dataflow import lane_products, resolve_parts
from .fused import accumulate_mma, default_fastpath
from .modes import MXUMode

__all__ = ["TensorCoreMXU"]


class TensorCoreMXU:
    """Baseline Ampere-class Tensor Core: FP16/BF16/TF32 MMA, FP32 accumulate.

    Parameters
    ----------
    config:
        Hardware configuration; defaults to the Ampere baseline.
    fastpath:
        Use the fused execution path of :mod:`repro.mxu.fused`
        (bit-identical). ``None`` consults ``REPRO_FASTPATH``; ``False``
        pins this instance to the legacy reference pipeline. The Ampere
        27-bit window stays below the float64-proof threshold, so the fast
        path here is the fused grouped reduction (no BLAS shortcut).

    Notes
    -----
    ``mma`` accepts arbitrary (batched) operand shapes. The *numerical*
    contract of one hardware instruction — exact products, one wide
    accumulation, one FP32 rounding — is honoured for whatever K is passed;
    GEMM drivers in :mod:`repro.gemm` chop K into instruction-sized chunks
    so that the inter-instruction FP32 rounding is modelled faithfully.
    """

    def __init__(
        self, config: MXUConfig = AMPERE_MXU, fastpath: bool | None = None
    ) -> None:
        self.config = config
        self.fastpath = default_fastpath() if fastpath is None else bool(fastpath)

    def supported_modes(self) -> frozenset[MXUMode]:
        return self.config.modes

    def mma(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray | float,
        mode: MXUMode,
    ) -> np.ndarray:
        """One MMA: ``D = round_fp32(A @ B + C)`` with mode-format inputs.

        Inputs are quantised to the mode's input format on the way in
        (modelling the register-file conversion; pre-quantised data passes
        through unchanged).
        """
        self._check_mode(mode)
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if a.shape[-1] != b.shape[-2]:
            raise ValueError(f"K mismatch: A{a.shape} @ B{b.shape}")
        if not self.fastpath:
            return self._mma_legacy(a, b, c, mode)
        return self.mma_parts(
            a, b, resolve_parts(a, mode), resolve_parts(b, mode), c, mode
        )

    def mma_parts(
        self,
        a: np.ndarray,
        b: np.ndarray,
        a_parts: Mapping[str, np.ndarray],
        b_parts: Mapping[str, np.ndarray],
        c: np.ndarray | float,
        mode: MXUMode,
        *,
        c_quantized: bool = False,
    ) -> np.ndarray:
        """One MMA over pre-split operands (the plan-driven entry point).

        See :meth:`repro.mxu.m3xu.M3XU.mma_parts`; for the baseline modes
        the single part ``X`` is the input-format-quantised operand.
        """
        self._check_mode(mode)
        c_arr = np.asarray(c, dtype=np.float64)
        c_q = c_arr if c_quantized else quantize(c_arr, FP32)
        return accumulate_mma(
            [(a_parts["X"], b_parts["X"], False)],
            a_parts,
            b_parts,
            mode,
            "real",
            c_q,
            self.config.acc_bits,
            self.config.acc_rounding,
            FP32,
            fast=self.fastpath,
        )

    def _check_mode(self, mode: MXUMode) -> None:
        if not self.config.supports(mode):
            raise ValueError(
                f"{self.config.name} has no hardware support for {mode.value}; "
                f"supported: {sorted(m.value for m in self.config.modes)}"
            )

    # Legacy reference pipeline (pre-fusion); kept callable so the fused
    # path can be cross-validated bit-for-bit and benchmarked against it.
    def _mma_legacy(
        self, a: np.ndarray, b: np.ndarray, c: np.ndarray | float, mode: MXUMode
    ) -> np.ndarray:
        products = lane_products(a, b, mode)["real"]
        c_arr = np.broadcast_to(
            quantize(np.asarray(c, dtype=np.float64), FP32), products.shape[:-1]
        )[..., None]
        addends = np.concatenate([products, c_arr], axis=-1)
        wide = aligned_sum(
            addends,
            axis=-1,
            acc_bits=self.config.acc_bits,
            mode=self.config.acc_rounding,
        )
        return quantize(wide, FP32)
