"""The MMA instruction set and the paper's emulation arithmetic (§V-B).

The paper evaluates M3XU by instrumenting real Tensor-Core kernels so
that three quantities match what M3XU hardware would execute:

(a) **MMA latency** — an M3XU FP32 MMA takes 2x the cycles of an FP16
    MMA, an FP32C MMA 4x;
(b) **instruction count** — each M3XU FP32 MMA computes a 16x8x8 tile
    (half an FP16 m16n8k16), so an FP32 GEMM issues 2x the MMA
    instructions of the same-shape FP16 GEMM; FP32C issues 4x;
(c) **memory behaviour** — per-MMA traffic equals an FP16 MMA's, so the
    total traffic is 2x (FP32) / 4x (FP32C) the FP16 GEMM's.

This module encodes the instruction descriptors and derives (a)-(c) for
arbitrary problems, so tests can verify the paper's emulation identities
hold in the models, and the Table II kernel list can be generated rather
than transcribed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .modes import MXUMode

__all__ = ["MmaDescriptor", "MMA_DESCRIPTORS", "EmulationCosts", "emulation_costs"]


@dataclass(frozen=True)
class MmaDescriptor:
    """One warp-level MMA instruction shape and cost.

    ``m/n/k`` are the per-instruction tile extents (complex elements in
    FP32C); ``steps`` the dot-product-unit steps (= FP16-MMA latency
    multiples); ``operand_bytes`` the A+B register bytes one instruction
    consumes (equal across modes by construction — requirement (c)).
    """

    mode: MXUMode
    m: int
    n: int
    k: int
    steps: int

    @property
    def macs(self) -> int:
        return self.m * self.n * self.k

    @property
    def operand_bytes(self) -> int:
        # Storage per element: FP16/BF16 2 B; TF32 occupies a full 32-bit
        # register; FP32 4 B; FP32C/FP64 8 B.
        elem = {
            MXUMode.FP16: 2,
            MXUMode.BF16: 2,
            MXUMode.TF32: 4,
            MXUMode.FP32: 4,
            MXUMode.FP32C: 8,
            MXUMode.FP64: 8,
        }[self.mode]
        return (self.m * self.k + self.k * self.n) * elem

    @property
    def name(self) -> str:
        return f"mma.{self.mode.value}.m{self.m}n{self.n}k{self.k}"


#: The warp-level MMA shapes of Section V-B1: FP16 m16n8k16 as the unit,
#: M3XU FP32 as m16n8k8 at 2 steps, M3XU FP32C as m16n8k4 (complex) at 4.
MMA_DESCRIPTORS: dict[MXUMode, MmaDescriptor] = {
    MXUMode.FP16: MmaDescriptor(MXUMode.FP16, 16, 8, 16, steps=1),
    MXUMode.BF16: MmaDescriptor(MXUMode.BF16, 16, 8, 16, steps=1),
    MXUMode.TF32: MmaDescriptor(MXUMode.TF32, 16, 8, 8, steps=1),
    MXUMode.FP32: MmaDescriptor(MXUMode.FP32, 16, 8, 8, steps=2),
    MXUMode.FP32C: MmaDescriptor(MXUMode.FP32C, 16, 8, 4, steps=4),
    MXUMode.FP64: MmaDescriptor(MXUMode.FP64, 16, 8, 4, steps=4),
}


@dataclass(frozen=True)
class EmulationCosts:
    """The (a)/(b)/(c) quantities for one GEMM problem in one mode."""

    mode: MXUMode
    mma_instructions: float
    latency_units: float     # total steps, in FP16-MMA latency multiples
    operand_traffic_bytes: float

    def ratio_to(self, other: "EmulationCosts") -> tuple[float, float, float]:
        """(instruction, latency, traffic) ratios vs another mode."""
        return (
            self.mma_instructions / other.mma_instructions,
            self.latency_units / other.latency_units,
            self.operand_traffic_bytes / other.operand_traffic_bytes,
        )


def emulation_costs(m: int, n: int, k: int, mode: MXUMode) -> EmulationCosts:
    """Instruction/latency/traffic totals for an ``m x n x k`` GEMM.

    ``k`` counts complex elements for FP32C (the paper's "problem shape
    of M x K x N ... launches M x K x N x 2 or x 4" scaling emerges from
    the per-instruction K shrinkage).
    """
    if min(m, n, k) < 1:
        raise ValueError("problem dimensions must be positive")
    d = MMA_DESCRIPTORS[mode]
    tiles = (
        math.ceil(m / d.m) * math.ceil(n / d.n) * math.ceil(k / d.k)
    )
    return EmulationCosts(
        mode=mode,
        mma_instructions=float(tiles),
        latency_units=float(tiles * d.steps),
        operand_traffic_bytes=float(tiles * d.operand_bytes),
    )
