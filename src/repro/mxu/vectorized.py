"""Array-at-a-time bit-level M3XU datapath (the vectorized engine).

:mod:`repro.mxu.bitlevel` executes the RTL-fidelity FP32/FP32C datapath
one scalar dot product at a time — perfect as an oracle, far too slow for
campaign-scale work. This module re-implements the same datapath on whole
tiles, bit-identically:

* **Splitting** (Fig. 3a, Eq. 3-8) — the sign/exponent/mantissa fields of
  every FP32 operand are read in one shot through a ``uint32`` bit view
  (:func:`fp32_bit_fields`), and the 12-bit H/L slices are pure integer
  shifts/masks of those arrays. Subnormals (no hidden bit), ±0 and the
  finiteness/representability contract are handled by masks and upfront
  checks, exactly as the scalar :func:`~repro.mxu.bitlevel.split_fp32_bits`.
* **Multiplying** — every 12x12-bit multiplier lane of one MMA becomes a
  single elementwise *float32* product over the ``(M, N, K)`` tile
  (exact: the pre-signed slices carry at most 12 bits each), written
  straight into a strided column view of one preallocated ``(M, N,
  slots+1)`` buffer ordered exactly as the scalar loop visits the slots
  (k-major, lane-minor; the last column holds the C operand).
* **Shifted 48-bit accumulation** (Fig. 3b) — the packed slot sequence
  feeds :func:`~repro.arith.accumulator.segmented_windowed_sum_f32`, the
  segmented exact reformulation of the
  :class:`~repro.mxu.bitlevel.BitAccumulator` discipline (masked-cummax
  anchor trajectory, exact per-segment sums via a float64 ``reduceat``,
  re-round-on-anchor-raise merge), proven bit-identical to the
  sequential :func:`~repro.arith.accumulator.sequential_windowed_sum`
  oracle by the property suite (accumulations too deep for the packed
  kernel's exactness bound unpack to the general integer
  :func:`~repro.arith.accumulator.segmented_windowed_sum`). The single-anchor
  :func:`~repro.arith.accumulator.aligned_sum_groups` kernel is *not*
  reused for this: it rounds each addend against the final anchor, which
  diverges from the sequential discipline once the exponent span exceeds
  the 48-bit window, and the acceptance bar here is strict bit-identity
  with the scalar oracle.
* **Complex sign flips** (Eq. 9) — the imag*imag subtraction is a sign
  mask XORed onto the product-sign tensor of the real accumulator.

Engine selection: ``REPRO_BITLEVEL=vector`` (default) or ``scalar``
(:func:`resolve_bitlevel_engine`); the scalar functions here walk the
same slot ordering through :class:`~repro.mxu.bitlevel.BitAccumulator`
and are retained as the oracle the property suite compares against.
:class:`BitLevelMXU` packages either engine behind the ``mma``/
``mma_parts`` contract so ``TiledGEMM(fused=False)``, ABFT tile
recomputation and the fault campaigns run it unchanged, and both engines
accept a :class:`ProductFault` — a bit flip in one multiplier-lane
product, addressed by flat slot index — for campaign injection.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..arith.accumulator import (
    _ANCHOR_SENTINEL,
    _rne_shift_positive,
    int_window_to_float,
    segmented_windowed_sum,
    segmented_windowed_sum_f32,
)
from ..types.formats import FP32, FloatFormat
from ..types.quantize import quantize, quantize_complex
from ..types.rounding import RoundingMode, round_significand
from .config import M3XU_CONFIG, MXUConfig
from .modes import MXUMode, step_plan

__all__ = [
    "BITLEVEL_ENV",
    "NonFiniteOperandError",
    "resolve_bitlevel_engine",
    "fp32_bit_fields",
    "split_fp32_fields",
    "ProductFault",
    "product_slot_count",
    "PRODUCT_BITS",
    "fp32_lane_fields",
    "vector_mma_fp32",
    "vector_mma_fp32c",
    "chained_vector_fp32",
    "scalar_mma_fp32",
    "scalar_mma_fp32c",
    "BitLevelMXU",
]

#: Environment switch: ``REPRO_BITLEVEL=scalar`` pins the scalar oracle.
BITLEVEL_ENV = "REPRO_BITLEVEL"


class NonFiniteOperandError(ValueError):
    """A bit-level MMA was handed a non-finite operand.

    The split/multiply/shift/accumulate datapath is defined on finite
    FP32 values only — infinities and NaNs have no slice encoding, so
    both engines reject them upfront (:func:`fp32_bit_fields`). The
    distinct type exists for the fault campaigns: an injected upset can
    legitimately drive a chunk result to ±inf/NaN, and the next chunk's
    rejection of that operand is a *detected* unrecoverable outcome
    (:class:`repro.resilience.campaign.Outcome` ``CRASH``), not a bug.
    """

_FIELD_SHIFT_EXP = 23
_FIELD_SHIFT_SIGN = 31
_MANT_MASK = 0x7FFFFF
_EXP_MASK = 0xFF
_LO_MASK = 0xFFF

#: (a slice, b slice, accumulator weight shift) — 0 = H, 1 = L. Identical
#: to the scalar reference's schedule: step 1 is H*H (shift 24) and L*L
#: (shift 0), step 2 the cross products (shift 12).
_LANE_SCHEDULE = ((0, 0, 24), (1, 1, 0), (0, 1, 12), (1, 0, 12))

#: FP32C component schedule (Fig. 3c): (a component, b component, negate,
#: accumulator) — rr and the negated ii feed the real register, ri/ir the
#: imaginary one. Order matters: it fixes the global product-slot index.
_COMPONENT_SCHEDULE = (
    ("real", "real", 0, "real"),
    ("imag", "imag", 1, "real"),
    ("real", "imag", 0, "imag"),
    ("imag", "real", 0, "imag"),
)

_LANES_PER_PAIR = len(_LANE_SCHEDULE)  # product slots per (a, b) element pair
PRODUCT_BITS = 24  # a 12x12-bit multiplier lane result


def resolve_bitlevel_engine(engine: str | None = None) -> str:
    """Resolve the bit-level engine name: explicit arg > env > "vector"."""
    raw = engine if engine is not None else os.environ.get(BITLEVEL_ENV, "")
    value = raw.strip().lower() or "vector"
    if value not in ("vector", "scalar"):
        raise ValueError(
            f"unknown bit-level engine {value!r} "
            f"({BITLEVEL_ENV} takes 'vector' or 'scalar')"
        )
    return value


# ---------------------------------------------------------------------------
# Vectorized FP32 field splitting (the uint32 bit view)
# ---------------------------------------------------------------------------


def fp32_bit_fields(x: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(sign, biased_exponent, mantissa)`` int64 arrays of FP32 values.

    The vector path's data-assignment front end: one float32 store and a
    ``uint32`` bit view replace the per-element ``encode`` round trip.
    Raises :class:`NonFiniteOperandError` for non-finite input (the
    bit-level model is defined on finite operands) and plain
    :class:`ValueError` for finite values that are not exactly
    FP32-representable (quantise first — same contract as
    :func:`repro.types.bits.encode`).
    """
    x64 = np.asarray(x, dtype=np.float64)
    if not bool(np.all(np.isfinite(x64))):
        raise NonFiniteOperandError("bit-level model handles finite operands")
    # The float32 round trip is the intended storage narrowing of the FP32
    # register file, checked exact below.
    x32 = x64.astype(np.float32)  # repro: allow[PS105]
    if not bool(np.all(x32.astype(np.float64) == x64)):
        raise ValueError("input contains values not representable in FP32")
    bits = np.atleast_1d(x32).view(np.uint32).reshape(x32.shape)
    sign = (bits >> np.uint32(_FIELD_SHIFT_SIGN)).astype(np.int64)
    biased = ((bits >> np.uint32(_FIELD_SHIFT_EXP)) & np.uint32(_EXP_MASK)).astype(
        np.int64
    )
    mant = (bits & np.uint32(_MANT_MASK)).astype(np.int64)
    return sign, biased, mant


def split_fp32_fields(
    x: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized Fig. 3(a) wiring: ``(sign, biased_exp, hi_sig, lo_sig)``.

    The high slice is ``hidden | m[22:12]`` (hidden bit only for normal
    values), the low slice ``m[11:0]``; both share the operand's sign and
    exponent fields, exactly like the scalar
    :func:`~repro.mxu.bitlevel.split_fp32_bits`.
    """
    sign, biased, mant = fp32_bit_fields(x)
    hidden = (biased != 0).astype(np.int64)
    hi = (hidden << 11) | (mant >> 12)
    lo = mant & np.int64(_LO_MASK)
    return sign, biased, hi, lo


def _effective_exp(biased: np.ndarray) -> np.ndarray:
    """Unbiased slice exponent: biased - 127, or the subnormal -126."""
    return np.where(biased > 0, biased - 127, np.int64(-126))


def _c_slot(c: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The C operand as one accumulator slot: (sign, 24-bit sig, LSB exp)."""
    sign, biased, mant = fp32_bit_fields(c)
    sig = np.where(biased > 0, mant | np.int64(1 << 23), mant)
    lsb = _effective_exp(biased) - 23
    return sign, sig, lsb


# ---------------------------------------------------------------------------
# Product-stage fault injection (campaign support)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ProductFault:
    """A bit flip in one 12x12-bit multiplier lane product.

    ``slot`` is the flat product index in scalar execution order —
    k-major, then (for FP32C) component-schedule order, then lane — so
    ``slot = k*4 + lane`` for FP32 and ``slot = k*16 + component*4 +
    lane`` for FP32C (see :func:`product_slot_count`). ``element`` is the
    output element whose dot-product unit the upset hits, and ``bit``
    (0..23) the flipped bit of the 24-bit product significand.
    """

    slot: int
    element: tuple[int, int]
    bit: int

    def __post_init__(self) -> None:
        if not (0 <= self.bit < PRODUCT_BITS):
            raise ValueError(f"product bit must be in [0, {PRODUCT_BITS})")
        if self.slot < 0:
            raise ValueError("product slot must be non-negative")


def product_slot_count(mode: MXUMode, k: int) -> int:
    """Number of multiplier-lane products one output element sees per MMA."""
    if mode is MXUMode.FP32:
        return _LANES_PER_PAIR * int(k)
    if mode is MXUMode.FP32C:
        return _LANES_PER_PAIR * len(_COMPONENT_SCHEDULE) * int(k)
    raise ValueError(f"bit-level engines model fp32/fp32c only, not {mode.value}")


def _check_fault(
    fault: ProductFault, n_slots: int, out_shape: tuple[int, int]
) -> None:
    if fault.slot >= n_slots:
        raise ValueError(f"product slot {fault.slot} out of range ({n_slots} slots)")
    m, n = fault.element
    if not (0 <= m < out_shape[0] and 0 <= n < out_shape[1]):
        raise ValueError(f"fault element {fault.element} outside output {out_shape}")


# ---------------------------------------------------------------------------
# Vector engine
# ---------------------------------------------------------------------------


def _require_tile(a: np.ndarray, b: np.ndarray) -> tuple[int, int, int]:
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("bit-level MMA takes 2-D operand tiles")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"K mismatch: A{a.shape} @ B{b.shape}")
    return a.shape[0], a.shape[1], b.shape[1]


def _alloc_slots(m: int, n: int, n_cols: int) -> tuple[np.ndarray, np.ndarray]:
    """Preallocated packed ``(signed sig, lsb)`` slot buffers.

    One ``(M, N, slots+1)`` allocation per tensor — the product lanes are
    written straight into strided column views and the C operand into the
    last column, so no ``stack``/``concatenate`` copies the slot tensors
    a second time. Significands are *signed float32*: a 12x12-bit lane
    product is at most 24 bits, which float32 carries exactly together
    with its sign (the sign of an IEEE product is the XOR of the operand
    signs even for zeros, so no separate sign tensor is needed), and the
    float multiply is the cheapest SIMD path numpy has. LSB weights live
    in int16 — FP32 slice exponents span a few hundred either way.
    """
    return (
        np.empty((m, n, n_cols), dtype=np.float32),
        np.empty((m, n, n_cols), dtype=np.int16),
    )


def _signed_parts(
    sign: np.ndarray, hi: np.ndarray, lo: np.ndarray, negate: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """The 12-bit slices as sign-carrying float32 (exact: < 2**12)."""
    factor = np.int64(1) - (np.int64(2) * (sign ^ np.int64(negate)))
    return (
        (hi * factor).astype(np.float32),  # repro: allow[PS105]
        (lo * factor).astype(np.float32),  # repro: allow[PS105]
    )


def fp32_lane_fields(
    x: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One operand's multiplier-lane fields: ``(hi, lo, exp)``.

    ``hi``/``lo`` are the pre-signed float32 12-bit slices
    (:func:`_signed_parts`) and ``exp`` the int16 effective slice
    exponent — everything :func:`_fill_lane_slots` needs, derived once.
    This is the artefact the operand split cache stores for the vector
    engine: the fields depend only on the operand's bytes, so a cached
    copy is bit-identical to a fresh split by construction.
    """
    sign, biased, hi, lo = split_fp32_fields(x)
    hi_signed, lo_signed = _signed_parts(sign, hi, lo)
    return hi_signed, lo_signed, _effective_exp(biased).astype(np.int16)


def _fill_lane_slots(
    sig: np.ndarray,
    lsb: np.ndarray,
    a_fields: tuple[np.ndarray, np.ndarray, np.ndarray],
    b_fields: tuple[np.ndarray, np.ndarray, np.ndarray],
    base: int,
    stride: int,
    negate: int = 0,
) -> None:
    """Write one (A, B) component pairing's multiplier lanes into the slot
    buffers at columns ``base + lane + k*stride`` (k-major, lane-minor —
    the scalar loop's visit order). Operands arrive as precomputed
    :func:`fp32_lane_fields`.

    Each 12x12-bit lane is a single broadcast float32 multiply
    ``(M, 1, K) x (1, N, K)`` evaluated directly into the strided column
    view — exact, since both slices carry at most 12 bits — with the
    product sign folded into the pre-signed slices (``negate`` flips the
    B side, implementing the FP32C imag*imag subtraction; negating the
    pre-signed slice is bit-identical to re-signing the raw slice, IEEE
    multiply signs being XORs even for zeros); every lane's product LSB
    sits at ``2^(Ea + Eb - 46 + shift)``.
    """
    ah, al, ae = a_fields
    bh, bl, be = b_fields
    a_parts = (ah, al)
    b_parts = (np.negative(bh), np.negative(bl)) if negate else (bh, bl)
    k = ah.shape[1]
    pair_exp = ae[:, None, :] + be.T[None, :, :]
    for lane, (ia, ib, shift) in enumerate(_LANE_SCHEDULE):
        col = slice(base + lane, base + stride * k, stride)
        np.multiply(
            a_parts[ia][:, None, :], b_parts[ib].T[None, :, :], out=sig[:, :, col]
        )
        np.add(pair_exp, np.int16(shift - 46), out=lsb[:, :, col])


def _packed_c_slot(c: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """The C operand as one packed slot: (signed float32 sig, LSB exp)."""
    cs, csig, clsb = _c_slot(c)
    packed = np.where(cs != 0, -csig, csig).astype(np.float32)  # repro: allow[PS105]
    return packed, clsb.astype(np.int16)


def _flip_product_bit(sig: np.ndarray, element: tuple[int, int], slot: int, bit: int) -> None:
    """XOR one bit of a packed slot's 24-bit product significand."""
    em, en = element
    val = float(sig[em, en, slot])
    mag = int(abs(val)) ^ (1 << bit)
    sig[em, en, slot] = np.float32(-mag if np.signbit(val) else mag)


def _windowed_sum_packed(
    sig: np.ndarray,
    lsb: np.ndarray,
    acc_bits: int,
    rounding: RoundingMode,
) -> tuple[np.ndarray, np.ndarray]:
    """Dispatch packed slots to the fastest bit-identical reduction.

    The float32 kernel needs ``slots * 2**acc_bits`` inside the exact
    float64 range; unusually deep accumulations (huge K at full 48-bit
    width) unpack to the general integer kernel instead.
    """
    if sig.shape[-1] * (1 << acc_bits) <= (1 << 53):
        return segmented_windowed_sum_f32(sig, lsb, acc_bits=acc_bits, mode=rounding)
    return segmented_windowed_sum(
        np.signbit(sig).astype(np.int8),
        np.abs(sig).astype(np.int64),
        lsb,
        acc_bits=acc_bits,
        mode=rounding,
    )


def vector_mma_fp32(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | float = 0.0,
    *,
    acc_bits: int = 48,
    rounding: RoundingMode = RoundingMode.NEAREST_EVEN,
    product_fault: ProductFault | None = None,
) -> np.ndarray:
    """One FP32 MMA tile through the vectorized bit-level datapath.

    Bit-identical to running :func:`~repro.mxu.bitlevel.bit_level_fp32_dot`
    per output element (asserted by the property suite). Operands must be
    finite FP32-representable float64 arrays: A ``(M, K)``, B ``(K, N)``,
    C scalar or ``(M, N)``.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    m_dim, k_dim, n_dim = _require_tile(a, b)
    slots = _LANES_PER_PAIR * k_dim
    sig, lsb = _alloc_slots(m_dim, n_dim, slots + 1)
    _fill_lane_slots(
        sig, lsb, fp32_lane_fields(a), fp32_lane_fields(b),
        base=0, stride=_LANES_PER_PAIR,
    )
    if product_fault is not None:
        _check_fault(product_fault, slots, (m_dim, n_dim))
        _flip_product_bit(
            sig, product_fault.element, product_fault.slot, product_fault.bit
        )

    c_arr = np.broadcast_to(np.asarray(c, dtype=np.float64), (m_dim, n_dim))
    csig, clsb = _packed_c_slot(c_arr)
    sig[..., slots] = csig
    lsb[..., slots] = clsb

    value, window_lsb = _windowed_sum_packed(sig, lsb, acc_bits, rounding)
    return int_window_to_float(value, window_lsb, FP32)


def _chain_c_merge(
    value_p: np.ndarray,
    anchor_p: np.ndarray,
    c: np.ndarray,
    acc_bits: int,
    rounding: RoundingMode,
) -> np.ndarray:
    """Fold the C operand into a chunk's precomputed product reduction.

    ``value_p``/``anchor_p`` are the windowed sum and final anchor of the
    chunk's *product* slots (``_ANCHOR_SENTINEL`` where all products were
    zero). The C operand is the last slot of the accumulation order, so
    finishing the chunk is one more step of the sequential discipline:
    align C against ``max(anchor_p, c_top)`` (below-window addends round
    like any other slot), re-round the product partial iff C raises a
    non-empty anchor (an empty partial is zero, so its re-round is a
    no-op) — same shift clamps as the segmented merge — add, then round
    the window to FP32.
    """
    cs, csig, clsb = _c_slot(c)
    nzc = csig > 0
    # bit_length via frexp: C significands are < 2**24, exact in float64.
    ctop = clsb + np.frexp(csig.astype(np.float64))[1] - 1
    ctop = np.where(nzc, ctop, _ANCHOR_SENTINEL)
    anchor = np.maximum(anchor_p, ctop)
    rel = clsb - anchor + (acc_bits - 1)
    aligned = np.zeros_like(csig)
    pos = nzc & (rel >= 0)
    np.copyto(aligned, csig << np.clip(rel, 0, 63), where=pos)
    below = nzc & ~pos
    if np.any(below):
        aligned[below] = round_significand(csig[below], -rel[below], rounding)
    np.negative(aligned, out=aligned, where=cs != 0)

    value = np.array(value_p)
    fix = np.flatnonzero(
        ((ctop > anchor_p) & (anchor_p != _ANCHOR_SENTINEL)).reshape(-1)
    )
    if fix.size:
        flat = value.reshape(-1)
        partial = flat[fix]
        neg = partial < 0
        mag = np.where(neg, -partial, partial)
        # Magnitudes stay below 2**53, so shift 62 (the reference's
        # everything-rounds-away point) maps to 63 under RNE and is
        # already exact under truncation.
        shift = np.clip((ctop - anchor_p).reshape(-1)[fix], 1, 63)
        if rounding is RoundingMode.NEAREST_EVEN:
            np.copyto(shift, np.int64(63), where=shift >= 62)
            mag = _rne_shift_positive(mag, shift)
        else:
            mag = mag >> shift
        np.negative(mag, out=mag, where=neg)
        flat[fix] = mag
    value += aligned
    # anchor is _ANCHOR_SENTINEL exactly when both sides were empty, which
    # is also the sentinel window convention — no special case needed.
    window = anchor - (acc_bits - 1)
    return int_window_to_float(value, window, FP32)


def chained_vector_fp32(
    a: np.ndarray | None,
    b: np.ndarray,
    c: np.ndarray | float = 0.0,
    *,
    k_chunk: int = 4,
    acc_bits: int = 48,
    rounding: RoundingMode = RoundingMode.NEAREST_EVEN,
    block: int = 64,
    group: int = 2,
    a_fields: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
) -> np.ndarray:
    """A whole FP32 K-chain of MMAs with one batched product reduction.

    Bit-identical to chaining :func:`vector_mma_fp32` ``k_chunk`` columns
    at a time (the property suite asserts it), but restructured around
    the observation that the C operand is the *last* slot of every
    chunk's accumulation order: the 16 product slots of a chunk depend
    only on A and B, so their windowed sums and anchor trajectories are
    precomputed in batched :func:`segmented_windowed_sum_f32` calls —
    ``block`` output columns x ``group`` chunks per call, sized to keep
    the slot buffers cache-resident — and the sequential part of the
    chain (fold in C, round to FP32, feed the next chunk) touches one
    full-width ``(M, N)`` slot per chunk (:func:`_chain_c_merge`)
    instead of re-reducing all ``4*k_chunk + 1`` slots. ``block`` and
    ``group`` are pure performance knobs; no setting changes a bit.

    The operand split that feeds the multiplier lanes is derived *once*
    per whole operand — A up front (or taken precomputed from
    ``a_fields``, the split cache's artefact, in which case ``a`` may be
    ``None``), B once per column block — and sliced per chunk group.
    Splitting commutes with slicing elementwise, and a ragged tail's
    zero-padding maps to field padding of ``hi = lo = 0``, ``exp =
    -126`` — exactly what splitting a zero yields — so this is
    bit-identical to splitting each group slice, which is what the
    per-MMA path does.

    No fault hook: campaign runs inject into per-MMA calls, which is why
    the sharded driver only routes fault-free chains here.
    """
    if k_chunk < 1:
        raise ValueError("k_chunk must be >= 1")
    b = np.asarray(b, dtype=np.float64)
    if a_fields is None:
        if a is None:
            raise ValueError("chained_vector_fp32 needs a or a_fields")
        a = np.asarray(a, dtype=np.float64)
        m_dim, k_total, n_dim = _require_tile(a, b)
        a_fields = fp32_lane_fields(a)
    else:
        if b.ndim != 2:
            raise ValueError("bit-level MMA takes 2-D operand tiles")
        m_dim, k_total = a_fields[0].shape
        n_dim = b.shape[1]
        if b.shape[0] != k_total:
            raise ValueError(
                f"K mismatch: A fields ({m_dim}, {k_total}) @ B{b.shape}"
            )
    c_arr = np.broadcast_to(np.asarray(c, dtype=np.float64), (m_dim, n_dim))
    if k_total == 0 or n_dim == 0 or m_dim == 0:
        return c_arr.copy()
    block = max(int(block), 1)
    group = max(int(group), 1)
    spc = _LANES_PER_PAIR * k_chunk  # product slots per chunk
    n_chunks = -(-k_total // k_chunk)
    # Chunk-major layout: the sequential merge loop walks whole (M, N)
    # planes, so keep each plane contiguous.
    value_p = np.empty((n_chunks, m_dim, n_dim), dtype=np.int64)
    anchor_p = np.empty((n_chunks, m_dim, n_dim), dtype=np.int64)
    for j0 in range(0, n_dim, block):
        j1 = min(n_dim, j0 + block)
        b_fields = fp32_lane_fields(np.ascontiguousarray(b[:, j0:j1]))
        for g0 in range(0, n_chunks, group):
            n_g = min(group, n_chunks - g0)
            kg0 = g0 * k_chunk
            kg1 = min(k_total, (g0 + n_g) * k_chunk)
            af_g = tuple(f[:, kg0:kg1] for f in a_fields)
            bf_g = tuple(f[kg0:kg1, :] for f in b_fields)
            if kg1 - kg0 < n_g * k_chunk:
                # Ragged tail: zero-pad to a whole chunk. Zero products
                # are non-events in the window discipline, so a padded
                # chunk is bit-identical to the short one; a zero's
                # fields are hi = lo = 0 with effective exponent -126.
                pad = n_g * k_chunk - (kg1 - kg0)
                af_g = (
                    np.pad(af_g[0], ((0, 0), (0, pad))),
                    np.pad(af_g[1], ((0, 0), (0, pad))),
                    np.pad(af_g[2], ((0, 0), (0, pad)), constant_values=-126),
                )
                bf_g = (
                    np.pad(bf_g[0], ((0, pad), (0, 0))),
                    np.pad(bf_g[1], ((0, pad), (0, 0))),
                    np.pad(bf_g[2], ((0, pad), (0, 0)), constant_values=-126),
                )
            sig, lsb = _alloc_slots(m_dim, j1 - j0, n_g * spc)
            _fill_lane_slots(sig, lsb, af_g, bf_g, base=0, stride=_LANES_PER_PAIR)
            vp, wp = _windowed_sum_packed(
                sig.reshape(m_dim, j1 - j0, n_g, spc),
                lsb.reshape(m_dim, j1 - j0, n_g, spc),
                acc_bits,
                rounding,
            )
            value_p[g0 : g0 + n_g, :, j0:j1] = vp.transpose(2, 0, 1)
            # The f32 kernel's sentinel window maps back to the sentinel
            # anchor exactly, so this recovers the product anchors.
            anchor_p[g0 : g0 + n_g, :, j0:j1] = wp.transpose(2, 0, 1) + (acc_bits - 1)
    acc = c_arr
    for j in range(n_chunks):
        acc = _chain_c_merge(value_p[j], anchor_p[j], acc, acc_bits, rounding)
    return acc


def _fp32c_component_slots(
    a: np.ndarray,
    b: np.ndarray,
    accumulator: str,
) -> tuple[np.ndarray, np.ndarray]:
    """Slot buffers ``(M, N, 8K + 1)`` for one FP32C accumulation register.

    Columns 0..8K-1 hold the register's product slots in k-major,
    component, lane order — the exact subsequence this register sees in
    the scalar loop — written through strided views (stride 8, component
    base 0 or 4); the final column is left for the C operand.
    """
    # Fields per component are derived once and shared by both pairings
    # that consume them (each component feeds two of the four products).
    comps = {
        "real": (
            fp32_lane_fields(np.ascontiguousarray(a.real)),
            fp32_lane_fields(np.ascontiguousarray(b.real)),
        ),
        "imag": (
            fp32_lane_fields(np.ascontiguousarray(a.imag)),
            fp32_lane_fields(np.ascontiguousarray(b.imag)),
        ),
    }
    m_dim, k_dim, n_dim = a.shape[0], a.shape[1], b.shape[1]
    stride = 2 * _LANES_PER_PAIR
    sig, lsb = _alloc_slots(m_dim, n_dim, stride * k_dim + 1)
    local = 0
    for ca, cb, negate, acc in _COMPONENT_SCHEDULE:
        if acc != accumulator:
            continue
        _fill_lane_slots(
            sig,
            lsb,
            comps[ca][0],
            comps[cb][1],
            base=local * _LANES_PER_PAIR,
            stride=stride,
            negate=negate,
        )
        local += 1
    return sig, lsb


def _fp32c_local_fault(
    fault: ProductFault, accumulator: str
) -> ProductFault | None:
    """Map a global FP32C product slot onto one register's local slots."""
    per_k = _LANES_PER_PAIR * len(_COMPONENT_SCHEDULE)
    k, rem = divmod(fault.slot, per_k)
    comp, lane = divmod(rem, _LANES_PER_PAIR)
    target = _COMPONENT_SCHEDULE[comp][3]
    if target != accumulator:
        return None
    local_comp = comp if comp < 2 else comp - 2
    local = k * (2 * _LANES_PER_PAIR) + local_comp * _LANES_PER_PAIR + lane
    return ProductFault(slot=local, element=fault.element, bit=fault.bit)


def vector_mma_fp32c(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | complex = 0.0,
    *,
    acc_bits: int = 48,
    rounding: RoundingMode = RoundingMode.NEAREST_EVEN,
    product_fault: ProductFault | None = None,
) -> np.ndarray:
    """One FP32C MMA tile through the vectorized bit-level datapath.

    Fig. 3(c)'s 4-step schedule with the imag*imag sign flip as a mask;
    bit-identical per element to
    :func:`~repro.mxu.bitlevel.bit_level_fp32c_dot`.
    """
    a = np.asarray(a, dtype=np.complex128)
    b = np.asarray(b, dtype=np.complex128)
    m_dim, k_dim, n_dim = _require_tile(a, b)
    if product_fault is not None:
        _check_fault(
            product_fault,
            product_slot_count(MXUMode.FP32C, k_dim),
            (m_dim, n_dim),
        )
    c_arr = np.broadcast_to(np.asarray(c, dtype=np.complex128), (m_dim, n_dim))

    out = {}
    slots = 2 * _LANES_PER_PAIR * k_dim
    for accumulator, c_part in (("real", c_arr.real), ("imag", c_arr.imag)):
        sig, lsb = _fp32c_component_slots(a, b, accumulator)
        if product_fault is not None:
            local = _fp32c_local_fault(product_fault, accumulator)
            if local is not None:
                _flip_product_bit(sig, local.element, local.slot, local.bit)
        csig, clsb = _packed_c_slot(np.ascontiguousarray(c_part))
        sig[..., slots] = csig
        lsb[..., slots] = clsb
        value, window_lsb = _windowed_sum_packed(sig, lsb, acc_bits, rounding)
        out[accumulator] = int_window_to_float(value, window_lsb, FP32)
    # Component-wise assembly: ``re + 1j*im`` would turn an overflowed
    # ±inf register into NaN via the complex multiply's 0*inf terms.
    result = np.empty(out["real"].shape, dtype=np.complex128)
    result.real = out["real"]
    result.imag = out["imag"]
    return result


# ---------------------------------------------------------------------------
# Scalar oracle engine (BitAccumulator, same slot order, same fault hook)
# ---------------------------------------------------------------------------


def scalar_mma_fp32(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | float = 0.0,
    *,
    acc_bits: int = 48,
    rounding: RoundingMode = RoundingMode.NEAREST_EVEN,
    product_fault: ProductFault | None = None,
) -> np.ndarray:
    """The FP32 MMA tile through per-element :class:`BitAccumulator` runs.

    The oracle the vector engine is validated against; same signature,
    same slot ordering, same fault hook.
    """
    from .bitlevel import BitAccumulator

    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    m_dim, k_dim, n_dim = _require_tile(a, b)
    if product_fault is not None:
        _check_fault(
            product_fault, product_slot_count(MXUMode.FP32, k_dim), (m_dim, n_dim)
        )
    sa, ea, ah, al = split_fp32_fields(a)
    sb, eb, bh, bl = split_fp32_fields(b)
    ea_eff = _effective_exp(ea)
    eb_eff = _effective_exp(eb)
    a_parts = (ah, al)
    b_parts = (bh, bl)
    c_arr = np.broadcast_to(np.asarray(c, dtype=np.float64), (m_dim, n_dim))
    cs, csig, clsb = _c_slot(c_arr)

    out = np.zeros((m_dim, n_dim), dtype=np.float64)
    for m in range(m_dim):
        for n in range(n_dim):
            acc = BitAccumulator(width=acc_bits, mode=rounding)
            slot = 0
            for k in range(k_dim):
                pair_exp = int(ea_eff[m, k] + eb_eff[k, n]) - 46
                sign_mk = int(sa[m, k] ^ sb[k, n])
                for ia, ib, shift in _LANE_SCHEDULE:
                    sig = int(a_parts[ia][m, k]) * int(b_parts[ib][k, n])
                    if (
                        product_fault is not None
                        and product_fault.element == (m, n)
                        and product_fault.slot == slot
                    ):
                        sig ^= 1 << product_fault.bit
                    slot += 1
                    if sig:
                        acc.add(sign_mk, sig, pair_exp + shift)
            acc.add(int(cs[m, n]), int(csig[m, n]), int(clsb[m, n]))
            out[m, n] = acc.to_float()
    return out


def scalar_mma_fp32c(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | complex = 0.0,
    *,
    acc_bits: int = 48,
    rounding: RoundingMode = RoundingMode.NEAREST_EVEN,
    product_fault: ProductFault | None = None,
) -> np.ndarray:
    """The FP32C MMA tile through per-element :class:`BitAccumulator` runs."""
    from .bitlevel import BitAccumulator

    a = np.asarray(a, dtype=np.complex128)
    b = np.asarray(b, dtype=np.complex128)
    m_dim, k_dim, n_dim = _require_tile(a, b)
    if product_fault is not None:
        _check_fault(
            product_fault, product_slot_count(MXUMode.FP32C, k_dim), (m_dim, n_dim)
        )
    fields = {
        ("a", "real"): split_fp32_fields(np.ascontiguousarray(a.real)),
        ("a", "imag"): split_fp32_fields(np.ascontiguousarray(a.imag)),
        ("b", "real"): split_fp32_fields(np.ascontiguousarray(b.real)),
        ("b", "imag"): split_fp32_fields(np.ascontiguousarray(b.imag)),
    }
    c_arr = np.broadcast_to(np.asarray(c, dtype=np.complex128), (m_dim, n_dim))
    c_slots = {
        "real": _c_slot(np.ascontiguousarray(c_arr.real)),
        "imag": _c_slot(np.ascontiguousarray(c_arr.imag)),
    }

    out = np.zeros((m_dim, n_dim), dtype=np.complex128)
    for m in range(m_dim):
        for n in range(n_dim):
            accs = {
                "real": BitAccumulator(width=acc_bits, mode=rounding),
                "imag": BitAccumulator(width=acc_bits, mode=rounding),
            }
            slot = 0
            for k in range(k_dim):
                for ca, cb, negate, reg in _COMPONENT_SCHEDULE:
                    fsa, fea, fah, fal = fields[("a", ca)]
                    fsb, feb, fbh, fbl = fields[("b", cb)]
                    pair_exp = (
                        int(_effective_exp(fea[m : m + 1, k])[0])
                        + int(_effective_exp(feb[k : k + 1, n])[0])
                        - 46
                    )
                    sign_mk = int(fsa[m, k] ^ fsb[k, n]) ^ negate
                    pa = (int(fah[m, k]), int(fal[m, k]))
                    pb = (int(fbh[k, n]), int(fbl[k, n]))
                    for ia, ib, shift in _LANE_SCHEDULE:
                        sig = pa[ia] * pb[ib]
                        if (
                            product_fault is not None
                            and product_fault.element == (m, n)
                            and product_fault.slot == slot
                        ):
                            sig ^= 1 << product_fault.bit
                        slot += 1
                        if sig:
                            accs[reg].add(sign_mk, sig, pair_exp + shift)
            for reg in ("real", "imag"):
                rs, rsig, rlsb = c_slots[reg]
                accs[reg].add(int(rs[m, n]), int(rsig[m, n]), int(rlsb[m, n]))
            out[m, n] = complex(accs["real"].to_float(), accs["imag"].to_float())
    return out


# ---------------------------------------------------------------------------
# The MXU-shaped wrapper
# ---------------------------------------------------------------------------

_ENGINES = {
    "vector": {MXUMode.FP32: vector_mma_fp32, MXUMode.FP32C: vector_mma_fp32c},
    "scalar": {MXUMode.FP32: scalar_mma_fp32, MXUMode.FP32C: scalar_mma_fp32c},
}


class BitLevelMXU:
    """The bit-level datapath behind the ``mma``/``mma_parts`` contract.

    Drop-in MXU model for :class:`~repro.gemm.tiled.TiledGEMM` (and thus
    for ABFT-guarded runs and fault campaigns): every MMA executes the
    true split -> 12x12 multiply -> shifted 48-bit accumulate pipeline,
    with the engine (vectorized or scalar oracle) chosen per
    :func:`resolve_bitlevel_engine`. FP32 and FP32C only; the value-level
    parts handed to :meth:`mma_parts` are ignored — this model re-derives
    the slices from the operand bits, which is the point.
    """

    #: Marks bit-level capability for drivers and fault injectors.
    bitlevel = True
    #: Never takes the BLAS shortcut; attribute kept for driver parity.
    fastpath = False

    def __init__(
        self,
        engine: str | None = None,
        config: MXUConfig = M3XU_CONFIG,
        acc_bits: int | None = None,
        rounding: RoundingMode | None = None,
    ) -> None:
        self.engine = resolve_bitlevel_engine(engine)
        self.config = config
        width = acc_bits if acc_bits is not None else config.acc_bits
        self.acc_bits = int(width if width is not None else 48)
        self.rounding = rounding if rounding is not None else config.acc_rounding

    # -- contract ------------------------------------------------------
    def supported_modes(self) -> frozenset[MXUMode]:
        return frozenset({MXUMode.FP32, MXUMode.FP32C})

    def steps(self, mode: MXUMode) -> int:
        return step_plan(mode).n_steps

    def output_format(self, mode: MXUMode) -> FloatFormat:
        return FP32

    # -- MMA entry points ----------------------------------------------
    def mma(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray | float,
        mode: MXUMode,
        *,
        product_fault: ProductFault | None = None,
    ) -> np.ndarray:
        if mode not in self.supported_modes():
            raise ValueError(
                f"bit-level engines model fp32/fp32c only, not {mode.value}"
            )
        if mode is MXUMode.FP32C:
            aq = quantize_complex(np.asarray(a, dtype=np.complex128), FP32)
            bq = quantize_complex(np.asarray(b, dtype=np.complex128), FP32)
            cq = quantize_complex(np.asarray(c, dtype=np.complex128), FP32)
        else:
            aq = quantize(np.asarray(a, dtype=np.float64), FP32)
            bq = quantize(np.asarray(b, dtype=np.float64), FP32)
            cq = quantize(np.asarray(c, dtype=np.float64), FP32)
        fn = _ENGINES[self.engine][mode]
        return fn(
            aq,
            bq,
            cq,
            acc_bits=self.acc_bits,
            rounding=self.rounding,
            product_fault=product_fault,
        )

    def mma_parts(
        self,
        a: np.ndarray,
        b: np.ndarray,
        a_parts: Mapping[str, np.ndarray],
        b_parts: Mapping[str, np.ndarray],
        c: np.ndarray | float,
        mode: MXUMode,
        *,
        c_quantized: bool = False,
        product_fault: ProductFault | None = None,
    ) -> np.ndarray:
        """Plan-driven entry: dense slices are used, value parts ignored."""
        if mode not in self.supported_modes():
            raise ValueError(
                f"bit-level engines model fp32/fp32c only, not {mode.value}"
            )
        if mode is MXUMode.FP32C:
            cq = (
                np.asarray(c, dtype=np.complex128)
                if c_quantized
                else quantize_complex(np.asarray(c, dtype=np.complex128), FP32)
            )
        else:
            cq = (
                np.asarray(c, dtype=np.float64)
                if c_quantized
                else quantize(np.asarray(c, dtype=np.float64), FP32)
            )
        fn = _ENGINES[self.engine][mode]
        return fn(
            np.asarray(a),
            np.asarray(b),
            cq,
            acc_bits=self.acc_bits,
            rounding=self.rounding,
            product_fault=product_fault,
        )

    # Convenience wrappers mirroring the M3XU API ----------------------
    def mma_fp32(
        self, a: np.ndarray, b: np.ndarray, c: np.ndarray | float
    ) -> np.ndarray:
        return self.mma(a, b, c, MXUMode.FP32)

    def mma_fp32c(
        self, a: np.ndarray, b: np.ndarray, c: np.ndarray | float
    ) -> np.ndarray:
        return self.mma(a, b, c, MXUMode.FP32C)
