"""Fused MMA accumulation and the float64 (BLAS) fast path.

The legacy MMA pipeline materialised every multiplier-lane product into
one ``(..., M, N, parts*K + 1)`` addends tensor (``np.concatenate``) and
ran the full alignment machinery (``frexp``/``ldexp``/``rint``) over it on
every K-chunk. This module replaces that with two coordinated pieces,
both bit-identical to the legacy results:

1. **Fused windowed accumulation** — lane products are reduced
   group-by-group into one preallocated int64 accumulator
   (:func:`~repro.arith.accumulator.aligned_sum_groups`); the giant
   concatenation never exists.

2. **Float64 fast path** — for wide accumulators (M3XU's 48-bit
   registers) the MMA result is first computed as a plain BLAS
   ``matmul`` in float64. A vectorised soundness check then proves, per
   output element, that the 48-bit windowed path could not round to a
   different FP32 value: both the windowed sum and the float64 sum lie
   within a rigorous error radius ``err`` of the exact sum, so whenever
   ``quantize(fast - err) == quantize(fast + err)`` (quantisation is
   monotonic) every value in between — the windowed sum included —
   quantises identically. Elements that fail the check (results near an
   FP32 rounding boundary, heavy cancellation, non-finite data, exact
   zeros whose sign the window model canonicalises) are recomputed
   through the exact windowed path, gathered element-by-element.

The error radius is anchored on an upper bound of the largest addend:
``bound = rowmax(|A|) * colmax(|B|)`` (an outer product — O(MK + KN + MN)
instead of O(MNK)) joined with ``|C|``. Per-addend alignment rounding is
at most one window-LSB ``2**(2 - acc_bits) * bound``, and float64
summation of ``t*K + 1`` terms obeys the standard ``(n*u)``-style bound;
both are inflated 4x for slack. The equivalence property suite
(``tests/properties/test_fastpath_equivalence.py``) asserts bit-identity
against the legacy implementation across modes and edge inputs.
"""

from __future__ import annotations

import os
from typing import Mapping, Sequence

import numpy as np

from ..arith.accumulator import aligned_sum_groups
from ..types.formats import FloatFormat
from ..types.quantize import quantize
from ..types.rounding import RoundingMode
from .modes import MXUMode, step_plan

__all__ = [
    "FASTPATH_ENV",
    "FAST_MIN_ACC_BITS",
    "default_fastpath",
    "grouped_lane_products",
    "accumulate_mma",
]

#: Environment switch: set ``REPRO_FASTPATH=0`` to force the legacy path.
FASTPATH_ENV = "REPRO_FASTPATH"

#: Narrower accumulation windows (the baseline Tensor Core's ~27 bits)
#: round nearly every reduction, so the float64 proof almost never fires;
#: below this width the fused windowed path is used unconditionally.
FAST_MIN_ACC_BITS = 40


def default_fastpath() -> bool:
    """Fast path default: on unless ``REPRO_FASTPATH=0``."""
    return os.environ.get(FASTPATH_ENV, "1").strip() != "0"


def grouped_lane_products(
    a_parts: Mapping[str, np.ndarray],
    b_parts: Mapping[str, np.ndarray],
    mode: MXUMode,
    accumulator: str,
) -> list[np.ndarray]:
    """The lane-product groups one accumulator receives, in step order.

    Concatenating the returned list along the last axis reproduces
    ``lane_products(a, b, mode)[accumulator]`` exactly — this is the same
    routing loop, minus the concatenation.
    """
    groups: list[np.ndarray] = []
    for step in step_plan(mode).steps:
        for prod in step.products:
            if prod.accumulator != accumulator:
                continue
            pa = a_parts[prod.a_part][..., :, None, :]  # (..., M, 1, K)
            pb = np.swapaxes(b_parts[prod.b_part], -1, -2)[..., None, :, :]
            p = pa * pb
            if prod.negate:
                p = -p
            groups.append(p)
    return groups


def _lanes_per_k(mode: MXUMode, accumulator: str) -> int:
    return sum(
        1
        for step in step_plan(mode).steps
        for prod in step.products
        if prod.accumulator == accumulator
    )


def _fallback_windowed(
    a_parts: Mapping[str, np.ndarray],
    b_parts: Mapping[str, np.ndarray],
    mode: MXUMode,
    accumulator: str,
    c_q: np.ndarray,
    out_shape: tuple[int, ...],
    idx: tuple[np.ndarray, ...],
    acc_bits: int,
    rounding: RoundingMode,
) -> np.ndarray:
    """Exact windowed sums for the selected output elements only.

    *idx* is an ``np.nonzero``-style index tuple over the output shape;
    the lane products of just those (m, n) pairs are gathered as
    ``(n_selected, K)`` panels and reduced through the same grouped
    windowed accumulation as the full-tensor path (which is invariant to
    element order), so each value is bit-identical to what the legacy
    full-tensor reduction produces for that element.
    """
    lead, mi, ni = idx[:-2], idx[-2], idx[-1]
    groups: list[np.ndarray] = []
    for step in step_plan(mode).steps:
        for prod in step.products:
            if prod.accumulator != accumulator:
                continue
            pa = a_parts[prod.a_part][lead + (mi,)]  # (F, K)
            pb = np.swapaxes(b_parts[prod.b_part], -1, -2)[lead + (ni,)]
            p = pa * pb
            if prod.negate:
                p = -p
            groups.append(p)
    c_sel = np.broadcast_to(c_q, out_shape)[idx]
    groups.append(c_sel[:, None])
    return aligned_sum_groups(groups, acc_bits=acc_bits, mode=rounding)


def _fast_windowed(
    terms: Sequence[tuple[np.ndarray, np.ndarray, bool]],
    a_parts: Mapping[str, np.ndarray],
    b_parts: Mapping[str, np.ndarray],
    mode: MXUMode,
    accumulator: str,
    c_q: np.ndarray,
    out_shape: tuple[int, ...],
    acc_bits: int,
    rounding: RoundingMode,
    out_fmt: FloatFormat,
) -> np.ndarray:
    """BLAS fast path with per-element windowed fallback (see module doc)."""
    k = terms[0][0].shape[-1]

    with np.errstate(invalid="ignore", over="ignore"):
        dot: np.ndarray | None = None
        for a_t, b_t, negate in terms:
            p = np.matmul(a_t, b_t)
            if dot is None:
                dot = -p if negate else p
            elif negate:
                dot = dot - p
            else:
                dot = dot + p
        assert dot is not None
        fast = dot + c_q

        # Anchor bound: no lane product can exceed the row/column operand
        # maxima; C is an addend of the same reduction.
        arow: np.ndarray | None = None
        bcol: np.ndarray | None = None
        for a_t, b_t, _ in terms:
            am = np.abs(a_t).max(axis=-1)
            bm = np.abs(b_t).max(axis=-2)
            arow = am if arow is None else np.maximum(arow, am)
            bcol = bm if bcol is None else np.maximum(bcol, bm)
        bound = arow[..., :, None] * bcol[..., None, :]  # type: ignore[index]
        bound = np.maximum(bound, np.abs(c_q))

        n_addends = _lanes_per_k(mode, accumulator) * k + 1
        slack = 4.0 * n_addends * 2.0 ** (2 - acc_bits)
        slack += 4.0 * (len(terms) * k + 4) ** 2 * 2.0**-53
        err = bound * slack

        lo = quantize(fast - err, out_fmt)
        hi = quantize(fast + err, out_fmt)
        # lo != 0 forces exact zeros through the fallback: the windowed
        # model canonicalises the sign of a zero sum, which the interval
        # test cannot distinguish from a tiny non-zero of either sign.
        ok = np.isfinite(fast) & np.isfinite(err) & (lo == hi) & (lo != 0.0)

    out = lo
    if not ok.all():
        idx = np.nonzero(~ok)
        wide = _fallback_windowed(
            a_parts, b_parts, mode, accumulator, c_q, out_shape, idx, acc_bits, rounding
        )
        out[idx] = quantize(wide, out_fmt)
    return out


def accumulate_mma(
    terms: Sequence[tuple[np.ndarray, np.ndarray, bool]],
    a_parts: Mapping[str, np.ndarray],
    b_parts: Mapping[str, np.ndarray],
    mode: MXUMode,
    accumulator: str,
    c_q: np.ndarray,
    acc_bits: int | None,
    rounding: RoundingMode,
    out_fmt: FloatFormat,
    fast: bool,
) -> np.ndarray:
    """One accumulator's MMA output, rounded into *out_fmt*.

    Parameters
    ----------
    terms:
        ``(a_dense, b_dense, negate)`` operand pairs whose (exact) summed
        dot products equal the accumulator's lane products — used only by
        the float64 fast path (one pair for real modes; the two component
        pairs of Eq. 9 for FP32C).
    a_parts / b_parts:
        Pre-split operand slices (:func:`~repro.mxu.dataflow.resolve_parts`).
    c_q:
        The C operand, already quantised to *out_fmt*.
    acc_bits / rounding:
        Accumulation window; ``None`` selects the float64 wide path.
    fast:
        Enables the BLAS fast path where the window is wide enough.
    """
    a0, b0 = terms[0][0], terms[0][1]
    out_shape = np.broadcast_shapes(a0.shape[:-2], b0.shape[:-2]) + (
        a0.shape[-2],
        b0.shape[-1],
    )
    use_fast = (
        fast
        and acc_bits is not None
        and acc_bits >= FAST_MIN_ACC_BITS
        and a0.shape[-1] >= 1
        and a0.shape[:-2] == b0.shape[:-2]  # fallback gather needs equal batches
    )
    if use_fast:
        return _fast_windowed(
            terms, a_parts, b_parts, mode, accumulator, c_q, out_shape,
            acc_bits, rounding, out_fmt,
        )
    groups = grouped_lane_products(a_parts, b_parts, mode, accumulator)
    c_b = np.broadcast_to(c_q, out_shape)[..., None]
    if acc_bits is None:
        # FP64-mode accumulation registers are FP64; keep the legacy plain
        # float64 sum (bit-identical ordering included).
        # repro: allow[XF503] this .sum() IS the FP64-mode reference
        # semantics: fixed left-to-right float64 accumulation, bit-identical
        # to the scalar oracle — the windowed integer path has no FP64 mode.
        wide = np.concatenate(groups + [c_b], axis=-1).sum(axis=-1)
    else:
        wide = aligned_sum_groups(groups + [c_b], acc_bits=acc_bits, mode=rounding)
    return quantize(wide, out_fmt)
