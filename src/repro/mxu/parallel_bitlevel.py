"""Sharded bit-level GEMM: the vector engine composed with the pool.

The bit-level datapath (:mod:`repro.mxu.vectorized`) evaluates one MMA
tile at a time; a GEMM is a chain of such tiles along K with an FP32
rounding point between chunks (:mod:`repro.gemm.tiled`). Because every
output column's K-chain is independent of every other column's — the
slot-order accumulation discipline never mixes columns — the GEMM can be
sharded into column blocks and each block's *entire* K-chain evaluated
independently, in any order, on any worker, and the concatenated result
is bit-identical to the serial driver. This module does exactly that:

* :func:`sharded_bitlevel_gemm` splits the N dimension into blocks of
  ``REPRO_BITLEVEL_CHUNK`` columns (default 64 — also the cache-blocking
  sweet spot for the vector engine's slot buffers) and dispatches the
  blocks through :func:`repro.parallel.parallel_map`, so operands ride
  the shared-memory transport above ``REPRO_SHM_MIN_BYTES`` and the
  persistent fork-safe pool provides the workers;
* worker count follows ``REPRO_WORKERS`` (or the explicit argument);
  ``workers<=1`` — and any call made from *inside* a pool worker — runs
  the same block loop serially in-process, so nested calls can never
  deadlock the pool;
* every worker count produces the same bits: blocks are column-disjoint,
  results are reassembled in submission order, and the per-block chain
  is the unmodified engine code.

**Operand split cache + arena.** The A operand is shared by every column
block, so with the split cache enabled (``REPRO_SPLIT_CACHE``, default
on) the FP32 vector path derives A's multiplier-lane fields
(:func:`~repro.mxu.vectorized.fp32_lane_fields`) once per *content
digest* instead of once per call, and FP32C/scalar paths cache the
quantised dense operand. Parallel dispatch publishes the cached planes
into the :mod:`repro.parallel` operand arena so task payloads carry an
:class:`~repro.parallel.ArenaHandle` — a digest, not arrays — and a
repeated-A workload skips both the split and the per-task transport.
Workers attach lazily and keep their own digest → segment LRU. Every
shortcut is bit-identical: a cache hit returns exactly the planes a
fresh split of the same bytes produces, and nested in-worker calls take
the plain serial path untouched.

The column block size is a pure performance knob; it is *not* a rounding
boundary (those remain the K-chunk seams of the tiled driver).
"""

from __future__ import annotations

import os
import warnings
from typing import Any

import numpy as np

from ..parallel import (
    ArenaHandle,
    arena_fetch,
    arena_pin,
    arena_publish,
    arena_unpin,
    in_worker,
    parallel_map,
    resolve_workers,
)
from ..types.formats import FP32
from ..types.quantize import quantize, quantize_complex
from ..types.rounding import RoundingMode
from .config import M3XU_CONFIG
from .modes import MXUMode
from .split_cache import (
    DEFAULT_SPLIT_CACHE,
    SPLIT_CACHE_MIN_BYTES,
    operand_digest,
    resolve_split_cache,
)
from .vectorized import (
    _ENGINES,
    chained_vector_fp32,
    fp32_lane_fields,
    resolve_bitlevel_engine,
)

__all__ = [
    "BITLEVEL_CHUNK_ENV",
    "DEFAULT_BITLEVEL_CHUNK",
    "resolve_bitlevel_chunk",
    "sharded_bitlevel_gemm",
]

#: Environment variable overriding the column block size.
BITLEVEL_CHUNK_ENV = "REPRO_BITLEVEL_CHUNK"

#: Default output-column block size. 64 columns keeps the vector engine's
#: slot buffers (m x 64 x 17 float32 + int16) inside L2 while leaving
#: enough blocks per GEMM to feed several workers.
DEFAULT_BITLEVEL_CHUNK = 64


def resolve_bitlevel_chunk(chunk: int | None = None) -> int:
    """Effective column block size for sharded bit-level GEMMs.

    Explicit ``chunk`` wins; otherwise ``REPRO_BITLEVEL_CHUNK`` is
    consulted; otherwise :data:`DEFAULT_BITLEVEL_CHUNK`. An explicit
    value below 1 is rejected (the block size only affects speed, never
    bits, so there is no "disable" setting — use the serial engines
    directly if sharding is unwanted); a malformed or out-of-range
    *environment* value warns and falls back to the default, mirroring
    ``REPRO_WORKERS``.
    """
    if chunk is None:
        raw = os.environ.get(BITLEVEL_CHUNK_ENV)
        if raw is not None:
            try:
                env_chunk = int(raw)
            except ValueError:
                env_chunk = None
            if env_chunk is None or env_chunk < 1:
                warnings.warn(
                    f"{BITLEVEL_CHUNK_ENV}={raw!r} is not a positive integer; "
                    f"using the default ({DEFAULT_BITLEVEL_CHUNK})",
                    RuntimeWarning,
                    stacklevel=2,
                )
            else:
                chunk = env_chunk
    if chunk is None:
        return DEFAULT_BITLEVEL_CHUNK
    if chunk < 1:
        raise ValueError("bit-level column chunk must be >= 1")
    return int(chunk)


def _resolve_a_entry(a_entry: Any) -> tuple[np.ndarray | None, tuple | None]:
    """Unpack a task payload's A operand: ``(dense, lane fields)``.

    The payload carries one of a dense ndarray (the legacy form), a
    ``("fields", hi, lo, exp)`` tuple (pre-split, in-process), or an
    :class:`~repro.parallel.ArenaHandle` naming published planes
    (pre-split or dense, fetched from the worker's segment LRU).
    """
    if isinstance(a_entry, ArenaHandle):
        planes = arena_fetch(a_entry)
        if "dense" in planes:
            return planes["dense"], None
        return None, (planes["hi"], planes["lo"], planes["exp"])
    if isinstance(a_entry, tuple) and a_entry and a_entry[0] == "fields":
        return None, a_entry[1:]
    return a_entry, None


def _chain_columns(payload: tuple) -> np.ndarray:
    """Run one column block's full K-chain through a bit-level engine.

    Module-level (pickleable) task function for :func:`parallel_map`. The
    payload is a flat tuple so the shared-memory transport can walk it
    and route each operand array individually; the A slot additionally
    admits the pre-split forms of :func:`_resolve_a_entry`.
    """
    a_entry, b_cols, c_cols, mode_value, engine, acc_bits, rounding_value, k_chunk = (
        payload
    )
    mode = MXUMode(mode_value)
    rounding = RoundingMode(rounding_value)
    a, a_fields = _resolve_a_entry(a_entry)
    if engine == "vector" and mode is MXUMode.FP32:
        # Fault-free FP32 chains take the batched whole-chain kernel
        # (bit-identical to the per-MMA loop below; property-tested).
        return chained_vector_fp32(
            a,
            b_cols,
            c_cols,
            k_chunk=k_chunk,
            acc_bits=acc_bits,
            rounding=rounding,
            a_fields=a_fields,
        )
    if a is None:  # pragma: no cover - dispatcher never pairs these
        raise ValueError(f"engine {engine!r}/{mode.value} needs a dense A operand")
    fn = _ENGINES[engine][mode]
    acc = c_cols
    for k0 in range(0, a.shape[1], k_chunk):
        acc = fn(
            a[:, k0 : k0 + k_chunk],
            b_cols[k0 : k0 + k_chunk, :],
            acc,
            acc_bits=acc_bits,
            rounding=rounding,
        )
    # First chunk may hand back the (possibly read-only, shm-backed) C
    # block untouched when K == 0; return an owned copy in that case.
    if acc is c_cols:
        return np.array(acc, copy=True)
    return acc


def _cached_a_operand(
    a64: np.ndarray, mode: MXUMode, engine: str
) -> tuple[np.ndarray | None, tuple | None, str | None]:
    """Resolve the A operand through the split cache.

    Returns ``(dense, lane fields, digest key)``. The FP32 vector path
    caches the multiplier-lane fields (``dense`` stays ``None`` — the
    whole-chain kernel never touches dense A); every other engine/mode
    caches the quantised dense operand. A cache hit skips quantisation
    and splitting entirely; both artefacts are keyed by the *raw*
    operand's bytes, so pre- and post-quantised callers share entries.
    """
    fields_path = engine == "vector" and mode is MXUMode.FP32
    key = operand_digest(
        a64, mode.value, "fp32-fields" if fields_path else "bitlevel-dense"
    )
    hit = DEFAULT_SPLIT_CACHE.get(key)
    if hit is not None:
        if fields_path:
            return None, hit, key
        return hit, None, key
    if mode is MXUMode.FP32C:
        aq = quantize_complex(a64, FP32)
    else:
        aq = quantize(a64, FP32)
    if fields_path:
        fields = DEFAULT_SPLIT_CACHE.put(key, fp32_lane_fields(aq))
        return None, fields, key
    return DEFAULT_SPLIT_CACHE.put(key, aq), None, key


def sharded_bitlevel_gemm(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | float | complex = 0.0,
    mode: MXUMode = MXUMode.FP32,
    *,
    engine: str | None = None,
    acc_bits: int | None = None,
    rounding: RoundingMode | None = None,
    k_chunk: int | None = None,
    workers: int | None = None,
    chunk: int | None = None,
) -> np.ndarray:
    """``A @ B + C`` through the bit-level datapath, sharded over columns.

    Semantically identical — bit for bit, at every worker count, cached
    or cold — to chaining :meth:`BitLevelMXU.mma
    <repro.mxu.vectorized.BitLevelMXU.mma>` K-chunk by K-chunk over the
    whole matrices, because output columns never interact inside the
    accumulation discipline.

    Parameters
    ----------
    a, b, c:
        GEMM operands; quantised to FP32 registers on the way in exactly
        as the tiled driver does (idempotent for pre-quantised inputs).
        A repeated A operand hits the split cache (and, in parallel
        runs, the shared-memory arena) instead of being re-split and
        re-shipped — see the module docstring.
    mode:
        :data:`~repro.mxu.modes.MXUMode.FP32` or ``FP32C``.
    engine:
        Bit-level engine name (defaults to ``REPRO_BITLEVEL``).
    acc_bits, rounding:
        Accumulator width / rounding discipline (M3XU defaults).
    k_chunk:
        K elements per MMA instruction (defaults to the M3XU tile K for
        the mode) — the FP32 rounding seam, so it *does* change bits.
    workers:
        Worker count (defaults to ``REPRO_WORKERS``); ``<=1`` runs the
        block loop serially in-process.
    chunk:
        Output-column block size (defaults to ``REPRO_BITLEVEL_CHUNK``) —
        a pure performance knob, never a rounding boundary.
    """
    if mode not in (MXUMode.FP32, MXUMode.FP32C):
        raise ValueError(f"bit-level engines model fp32/fp32c only, not {mode.value}")
    engine_name = resolve_bitlevel_engine(engine)
    width = acc_bits if acc_bits is not None else M3XU_CONFIG.acc_bits
    acc_width = int(width if width is not None else 48)
    rmode = rounding if rounding is not None else M3XU_CONFIG.acc_rounding
    step = int(k_chunk) if k_chunk is not None else M3XU_CONFIG.tile(mode).k
    if step < 1:
        raise ValueError("k_chunk must be >= 1")

    if mode is MXUMode.FP32C:
        a64 = np.asarray(a, dtype=np.complex128)
        bq = quantize_complex(np.asarray(b, dtype=np.complex128), FP32)
        cq = quantize_complex(np.asarray(c, dtype=np.complex128), FP32)
    else:
        a64 = np.asarray(a, dtype=np.float64)
        bq = quantize(np.asarray(b, dtype=np.float64), FP32)
        cq = quantize(np.asarray(c, dtype=np.float64), FP32)
    if a64.ndim != 2 or bq.ndim != 2:
        raise ValueError(f"operands must be 2-D, got A{a64.shape} B{bq.shape}")
    if bq.shape[0] != a64.shape[1]:
        raise ValueError(f"K mismatch: A{a64.shape} @ B{bq.shape}")

    # Nested in-worker calls run the plain serial path without touching
    # the cache or the arena (the worker's pool-lifetime state stays
    # bounded by its own attach LRU, not by per-call splits).
    use_cache = (
        resolve_split_cache()
        and not in_worker()
        and a64.nbytes >= SPLIT_CACHE_MIN_BYTES
    )
    aq: np.ndarray | None = None
    a_fields: tuple | None = None
    a_key: str | None = None
    if use_cache:
        aq, a_fields, a_key = _cached_a_operand(a64, mode, engine_name)
    else:
        if mode is MXUMode.FP32C:
            aq = quantize_complex(a64, FP32)
        else:
            aq = quantize(a64, FP32)

    n = bq.shape[1]
    acc0 = np.broadcast_to(cq, (a64.shape[0], n))
    if n == 0:
        return acc0.copy()

    # Column blocks are the *parallel* grain; a serial run hands the whole
    # width to one chain so the kernel's internal cache blocking sets the
    # pace (bit-identical either way — columns never interact).
    blk = n if resolve_workers(workers) <= 1 else resolve_bitlevel_chunk(chunk)

    a_entry: Any
    handle: ArenaHandle | None = None
    if a_fields is not None:
        a_entry = ("fields",) + tuple(a_fields)
        if blk < n and a_key is not None:
            handle = arena_publish(
                a_key,
                {"hi": a_fields[0], "lo": a_fields[1], "exp": a_fields[2]},
            )
    else:
        a_entry = aq
        if use_cache and blk < n and a_key is not None and aq is not None:
            handle = arena_publish(a_key, {"dense": aq})
    if handle is not None:
        a_entry = handle
        arena_pin(handle)
    try:
        tasks = [
            (
                a_entry,
                np.ascontiguousarray(bq[:, j0 : j0 + blk]),
                np.ascontiguousarray(acc0[:, j0 : j0 + blk]),
                mode.value,
                engine_name,
                acc_width,
                rmode.value,
                step,
            )
            for j0 in range(0, n, blk)
        ]
        results = parallel_map(_chain_columns, tasks, workers=workers)
    finally:
        if handle is not None:
            arena_unpin(handle)
    if len(results) == 1:
        return results[0]
    return np.concatenate(results, axis=1)
