"""Sharded bit-level GEMM: the vector engine composed with the pool.

The bit-level datapath (:mod:`repro.mxu.vectorized`) evaluates one MMA
tile at a time; a GEMM is a chain of such tiles along K with an FP32
rounding point between chunks (:mod:`repro.gemm.tiled`). Because every
output column's K-chain is independent of every other column's — the
slot-order accumulation discipline never mixes columns — the GEMM can be
sharded into column blocks and each block's *entire* K-chain evaluated
independently, in any order, on any worker, and the concatenated result
is bit-identical to the serial driver. This module does exactly that:

* :func:`sharded_bitlevel_gemm` splits the N dimension into blocks of
  ``REPRO_BITLEVEL_CHUNK`` columns (default 64 — also the cache-blocking
  sweet spot for the vector engine's slot buffers) and dispatches the
  blocks through :func:`repro.parallel.parallel_map`, so operands ride
  the shared-memory transport above ``REPRO_SHM_MIN_BYTES`` and the
  persistent fork-safe pool provides the workers;
* worker count follows ``REPRO_WORKERS`` (or the explicit argument);
  ``workers<=1`` — and any call made from *inside* a pool worker — runs
  the same block loop serially in-process, so nested calls can never
  deadlock the pool;
* every worker count produces the same bits: blocks are column-disjoint,
  results are reassembled in submission order, and the per-block chain
  is the unmodified engine code.

The column block size is a pure performance knob; it is *not* a rounding
boundary (those remain the K-chunk seams of the tiled driver).
"""

from __future__ import annotations

import os

import numpy as np

from ..parallel import parallel_map, resolve_workers
from ..types.formats import FP32
from ..types.quantize import quantize, quantize_complex
from ..types.rounding import RoundingMode
from .config import M3XU_CONFIG
from .modes import MXUMode
from .vectorized import _ENGINES, chained_vector_fp32, resolve_bitlevel_engine

__all__ = [
    "BITLEVEL_CHUNK_ENV",
    "DEFAULT_BITLEVEL_CHUNK",
    "resolve_bitlevel_chunk",
    "sharded_bitlevel_gemm",
]

#: Environment variable overriding the column block size.
BITLEVEL_CHUNK_ENV = "REPRO_BITLEVEL_CHUNK"

#: Default output-column block size. 64 columns keeps the vector engine's
#: slot buffers (m x 64 x 17 float32 + int16) inside L2 while leaving
#: enough blocks per GEMM to feed several workers.
DEFAULT_BITLEVEL_CHUNK = 64


def resolve_bitlevel_chunk(chunk: int | None = None) -> int:
    """Effective column block size for sharded bit-level GEMMs.

    Explicit ``chunk`` wins; otherwise ``REPRO_BITLEVEL_CHUNK`` is
    consulted; otherwise :data:`DEFAULT_BITLEVEL_CHUNK`. Values below 1
    are rejected (the block size only affects speed, never bits, so
    there is no "disable" setting — use the serial engines directly if
    sharding is unwanted).
    """
    if chunk is None:
        raw = os.environ.get(BITLEVEL_CHUNK_ENV)
        if raw is not None:
            try:
                chunk = int(raw)
            except ValueError as exc:
                raise ValueError(
                    f"{BITLEVEL_CHUNK_ENV} must be an integer, got {raw!r}"
                ) from exc
    if chunk is None:
        return DEFAULT_BITLEVEL_CHUNK
    if chunk < 1:
        raise ValueError("bit-level column chunk must be >= 1")
    return int(chunk)


def _chain_columns(
    payload: tuple[np.ndarray, np.ndarray, np.ndarray, str, str, int, str, int],
) -> np.ndarray:
    """Run one column block's full K-chain through a bit-level engine.

    Module-level (pickleable) task function for :func:`parallel_map`. The
    payload is a flat tuple so the shared-memory transport can walk it
    and route each operand array individually.
    """
    a, b_cols, c_cols, mode_value, engine, acc_bits, rounding_value, k_chunk = payload
    mode = MXUMode(mode_value)
    rounding = RoundingMode(rounding_value)
    if engine == "vector" and mode is MXUMode.FP32:
        # Fault-free FP32 chains take the batched whole-chain kernel
        # (bit-identical to the per-MMA loop below; property-tested).
        return chained_vector_fp32(
            a, b_cols, c_cols, k_chunk=k_chunk, acc_bits=acc_bits, rounding=rounding
        )
    fn = _ENGINES[engine][mode]
    acc = c_cols
    for k0 in range(0, a.shape[1], k_chunk):
        acc = fn(
            a[:, k0 : k0 + k_chunk],
            b_cols[k0 : k0 + k_chunk, :],
            acc,
            acc_bits=acc_bits,
            rounding=rounding,
        )
    # First chunk may hand back the (possibly read-only, shm-backed) C
    # block untouched when K == 0; return an owned copy in that case.
    if acc is c_cols:
        return np.array(acc, copy=True)
    return acc


def sharded_bitlevel_gemm(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | float | complex = 0.0,
    mode: MXUMode = MXUMode.FP32,
    *,
    engine: str | None = None,
    acc_bits: int | None = None,
    rounding: RoundingMode | None = None,
    k_chunk: int | None = None,
    workers: int | None = None,
    chunk: int | None = None,
) -> np.ndarray:
    """``A @ B + C`` through the bit-level datapath, sharded over columns.

    Semantically identical — bit for bit, at every worker count — to
    chaining :meth:`BitLevelMXU.mma <repro.mxu.vectorized.BitLevelMXU.mma>`
    K-chunk by K-chunk over the whole matrices, because output columns
    never interact inside the accumulation discipline.

    Parameters
    ----------
    a, b, c:
        GEMM operands; quantised to FP32 registers on the way in exactly
        as the tiled driver does (idempotent for pre-quantised inputs).
    mode:
        :data:`~repro.mxu.modes.MXUMode.FP32` or ``FP32C``.
    engine:
        Bit-level engine name (defaults to ``REPRO_BITLEVEL``).
    acc_bits, rounding:
        Accumulator width / rounding discipline (M3XU defaults).
    k_chunk:
        K elements per MMA instruction (defaults to the M3XU tile K for
        the mode) — the FP32 rounding seam, so it *does* change bits.
    workers:
        Worker count (defaults to ``REPRO_WORKERS``); ``<=1`` runs the
        block loop serially in-process.
    chunk:
        Output-column block size (defaults to ``REPRO_BITLEVEL_CHUNK``) —
        a pure performance knob, never a rounding boundary.
    """
    if mode not in (MXUMode.FP32, MXUMode.FP32C):
        raise ValueError(f"bit-level engines model fp32/fp32c only, not {mode.value}")
    engine_name = resolve_bitlevel_engine(engine)
    width = acc_bits if acc_bits is not None else M3XU_CONFIG.acc_bits
    acc_width = int(width if width is not None else 48)
    rmode = rounding if rounding is not None else M3XU_CONFIG.acc_rounding
    step = int(k_chunk) if k_chunk is not None else M3XU_CONFIG.tile(mode).k
    if step < 1:
        raise ValueError("k_chunk must be >= 1")

    if mode is MXUMode.FP32C:
        aq = quantize_complex(np.asarray(a, dtype=np.complex128), FP32)
        bq = quantize_complex(np.asarray(b, dtype=np.complex128), FP32)
        cq = quantize_complex(np.asarray(c, dtype=np.complex128), FP32)
    else:
        aq = quantize(np.asarray(a, dtype=np.float64), FP32)
        bq = quantize(np.asarray(b, dtype=np.float64), FP32)
        cq = quantize(np.asarray(c, dtype=np.float64), FP32)
    if aq.ndim != 2 or bq.ndim != 2:
        raise ValueError(f"operands must be 2-D, got A{aq.shape} B{bq.shape}")
    if bq.shape[0] != aq.shape[1]:
        raise ValueError(f"K mismatch: A{aq.shape} @ B{bq.shape}")

    n = bq.shape[1]
    acc0 = np.broadcast_to(cq, (aq.shape[0], n))
    if n == 0:
        return acc0.copy()

    # Column blocks are the *parallel* grain; a serial run hands the whole
    # width to one chain so the kernel's internal cache blocking sets the
    # pace (bit-identical either way — columns never interact).
    blk = n if resolve_workers(workers) <= 1 else resolve_bitlevel_chunk(chunk)
    tasks = [
        (
            aq,
            np.ascontiguousarray(bq[:, j0 : j0 + blk]),
            np.ascontiguousarray(acc0[:, j0 : j0 + blk]),
            mode.value,
            engine_name,
            acc_width,
            rmode.value,
            step,
        )
        for j0 in range(0, n, blk)
    ]
    results = parallel_map(_chain_columns, tasks, workers=workers)
    if len(results) == 1:
        return results[0]
    return np.concatenate(results, axis=1)
