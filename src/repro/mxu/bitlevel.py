"""Bit-level (RTL-fidelity) model of the M3XU FP32 datapath.

The value-level model in :mod:`repro.mxu.m3xu` carries operand slices as
float64 values, so the Fig. 3(b) accumulator shifts are implicit. This
module re-implements one FP32 dot-product-unit operation the way the
hardware does it — on integer bit fields — and is cross-validated against
the value-level model in tests. It makes the paper's bookkeeping concrete:

* the data-assignment stage wires the operand's sign and 8-bit exponent
  to *both* slice buffer entries, attaches the hidden 1 to the high
  slice, and packs mantissa bits ``m[22:12]`` / ``m[11:0]`` (Fig. 3a);
* the low slice's exponent is therefore "artificially small ... the
  hardware must later correct for this, post-multiplication": in this
  model the correction is the per-lane ``weight_shift`` — H*H products
  enter the accumulator shifted 24 bits left of L*L, cross products 12 —
  exactly the step plan's shift column;
* products are integer multiplications of 12-bit significands (24-bit
  results), aligned to a shared exponent reference and summed in an
  arbitrary-width integer accumulator model (48 bits in M3XU), then
  normalised and rounded once to FP32.

It is scalar and slow — the point is bit-exactness, not speed. It is the
innermost oracle in the verification chain: the vectorised engines in
:mod:`repro.mxu.vectorized` are held bit-identical to it, and the sharded
parallel driver in :mod:`repro.mxu.parallel_bitlevel` is in turn held
bit-identical to the serial engines at every worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..types.formats import FP32
from ..types.rounding import RoundingMode, round_significand_scalar
from .vectorized import NonFiniteOperandError, fp32_bit_fields, split_fp32_fields

__all__ = [
    "SliceBits",
    "split_fp32_bits",
    "bit_level_fp32_dot",
    "bit_level_fp32c_dot",
    "BitAccumulator",
]

_SLICE_BITS = 12  # multiplier input significand width (Section IV-A)


@dataclass(frozen=True)
class SliceBits:
    """One data-assignment buffer entry: sign, 8-bit exponent, 12-bit
    significand (hidden bit already materialised)."""

    sign: int
    biased_exp: int
    significand: int  # 12-bit integer, hidden bit included for the H slice

    def __post_init__(self) -> None:
        if not (0 <= self.significand < (1 << _SLICE_BITS)):
            raise ValueError("slice significand must fit 12 bits")
        if not (0 <= self.biased_exp < 256):
            raise ValueError("biased exponent must fit 8 bits")


def split_fp32_bits(x: float) -> tuple[SliceBits, SliceBits]:
    """The Fig. 3(a) wiring, at the bit level.

    Returns the (high, low) buffer entries for one finite FP32 value.
    The high slice holds ``hidden | m[22:12]``; the low slice holds
    ``m[11:0]`` with no hidden bit; both carry the operand's sign and
    exponent fields verbatim. Field extraction goes through the same
    uint32 bit view as the vectorized engine
    (:func:`repro.mxu.vectorized.split_fp32_fields`) — no Python-float
    promotion or per-element encode round trip.
    """
    rows = _slice_rows(np.array([x], dtype=np.float64))
    return rows[0]


def _slice_rows(vec: np.ndarray) -> list[tuple[SliceBits, SliceBits]]:
    """(high, low) buffer entries for a whole operand vector at once."""
    sign, biased, hi, lo = split_fp32_fields(np.asarray(vec, dtype=np.float64))
    return [
        (SliceBits(s, e, h), SliceBits(s, e, lw))
        for s, e, h, lw in zip(sign.tolist(), biased.tolist(), hi.tolist(), lo.tolist())
    ]


def _c_bits(val: float) -> tuple[int, int, int]:
    """C operand as an accumulator addend: ``(sign, 24-bit sig, LSB exp)``."""
    sign, biased, mant = (int(f[0]) for f in fp32_bit_fields(np.array([val], dtype=np.float64)))
    sig = mant | (1 << 23) if biased else mant
    e = (biased - 127) if biased else -126
    return sign, sig, e - 23


class BitAccumulator:
    """A W-bit shifted integer accumulator with a shared exponent anchor.

    Products arrive as ``(sign, product_significand, lane_shift,
    pair_exponent)``; the accumulator aligns each to its anchor (the
    maximum effective exponent seen) and adds/subtracts integers, exactly
    like the Fig. 3(b) accumulation registers. Alignment drops bits below
    the window with the configured rounding.
    """

    def __init__(self, width: int = 48, mode: RoundingMode = RoundingMode.NEAREST_EVEN):
        if width < 8:
            raise ValueError("accumulator width must be >= 8 bits")
        self.width = width
        self.mode = mode
        self.value = 0  # integer, scaled by 2**(anchor - width + guard)
        self.anchor: int | None = None  # exponent of the MSB of the window

    def _rescale(self, new_anchor: int) -> None:
        assert self.anchor is not None
        shift = new_anchor - self.anchor
        if shift <= 0:
            return
        neg = self.value < 0
        mag = -self.value if neg else self.value
        mag = round_significand_scalar(mag, shift, self.mode)
        self.value = -mag if neg else mag
        self.anchor = new_anchor

    def add(self, sign: int, significand: int, exponent: int) -> None:
        """Add ``(-1)^sign * significand * 2**exponent`` to the window.

        ``exponent`` is the binary weight of the significand's LSB.
        """
        if significand == 0:
            return
        msb = significand.bit_length() - 1
        top = exponent + msb  # exponent of the addend's MSB
        if self.anchor is None:
            self.anchor = top
        if top > self.anchor:
            self._rescale(top)
        # Position of the addend's LSB relative to the window's LSB.
        window_lsb = self.anchor - self.width + 1
        rel = exponent - window_lsb
        if rel >= 0:
            addend = significand << rel
        else:
            addend = round_significand_scalar(significand, -rel, self.mode)
        self.value += -addend if sign else addend

    def to_float(self) -> float:
        """Normalise and round the window to FP32 (returned as float64)."""
        if self.anchor is None or self.value == 0:
            return 0.0
        window_lsb = self.anchor - self.width + 1
        return _round_int_scaled_to_fp32(self.value, window_lsb)


def _round_int_scaled_to_fp32(value: int, lsb_exp: int) -> float:
    """Correctly round ``value * 2**lsb_exp`` to FP32 via exact arithmetic."""
    from fractions import Fraction

    from ..arith.exact import round_fraction

    frac = Fraction(value) * Fraction(2) ** lsb_exp
    return round_fraction(frac, FP32)


def bit_level_fp32_dot(
    a: np.ndarray,
    b: np.ndarray,
    c: float = 0.0,
    acc_bits: int = 48,
) -> float:
    """One FP32 dot product through the bit-level M3XU datapath.

    Executes the two-step schedule explicitly:

    * step 1: ``H*H`` lanes (accumulator shift 24) and ``L*L`` lanes
      (shift 0),
    * step 2: the B-side slice assignment flips — ``H*L`` and ``L*H``
      lanes, both at shift 12,

    with every product formed as a 12x12-bit integer multiplication and
    accumulated in a :class:`BitAccumulator`.

    Parameters
    ----------
    a, b:
        1-D float64 arrays of FP32-representable finite values (length K).
    c:
        FP32 accumulator input.
    acc_bits:
        Accumulation window width (48 in M3XU).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("a and b must be equal-length vectors")

    acc = BitAccumulator(width=acc_bits)
    slices_a = _slice_rows(a)
    slices_b = _slice_rows(b)

    # (a_part, b_part, lane weight shift) per the FP32 step plan. The
    # shift column is relative to the L*L lane, matching Fig. 3(b)'s
    # "shift the H*H result by 24 bits / the step-2 results by [12] bits".
    schedule = [
        (0, 0, 24),  # step 1: H*H
        (1, 1, 0),   # step 1: L*L
        (0, 1, 12),  # step 2: H*L
        (1, 0, 12),  # step 2: L*H
    ]
    for (ha, la), (hb, lb) in zip(slices_a, slices_b):
        parts_a = (ha, la)
        parts_b = (hb, lb)
        for ia, ib, shift in schedule:
            pa, pb = parts_a[ia], parts_b[ib]
            sig = pa.significand * pb.significand  # exact 24-bit product
            if sig == 0:
                continue
            sign = pa.sign ^ pb.sign
            # In hardware every lane produces its 24-bit significand at
            # the same nominal scale 2^(Ea + Eb - 46) (both slices stored
            # under the shared operand exponents), and the Fig. 3(b)
            # muxes shift the H*H lane up 24 bits and the cross lanes up
            # 12 before accumulation. The nominal scale plus the lane
            # shift is exactly the product's true LSB weight:
            # 2^(Ea + Eb - 46 + shift).
            ea = (pa.biased_exp - 127) if pa.biased_exp else -126
            eb = (pb.biased_exp - 127) if pb.biased_exp else -126
            lsb_exp = ea + eb - 46 + shift
            acc.add(sign, sig, lsb_exp)

    # C joins the wide accumulation (the 48-bit accumulation registers).
    if c != 0.0:
        if not np.isfinite(c):
            raise NonFiniteOperandError("bit-level model handles finite C")
        acc.add(*_c_bits(c))
    return acc.to_float()


def bit_level_fp32c_dot(
    a: np.ndarray,
    b: np.ndarray,
    c: complex = 0.0,
    acc_bits: int = 48,
) -> complex:
    """One FP32C dot product through the bit-level 4-step datapath.

    Executes Fig. 3(c)'s schedule: steps 1-2 accumulate the real part
    (with the sign bit of the imaginary*imaginary lanes flipped — the
    subtraction of Eq. 9), steps 3-4 the imaginary part. Each step is the
    FP32 two-step machinery over one (component_a, component_b) pairing.

    Parameters
    ----------
    a, b:
        1-D complex arrays whose components are FP32-representable.
    c:
        Complex FP32 accumulator input.
    acc_bits:
        Width of each of the two accumulation registers.
    """
    a = np.asarray(a, dtype=np.complex128)
    b = np.asarray(b, dtype=np.complex128)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("a and b must be equal-length vectors")

    re_acc = BitAccumulator(width=acc_bits)
    im_acc = BitAccumulator(width=acc_bits)

    # (a component, b component, negate, accumulator) per Fig. 3(c).
    component_schedule = [
        ("real", "real", False, re_acc),
        ("imag", "imag", True, re_acc),
        ("real", "imag", False, im_acc),
        ("imag", "real", False, im_acc),
    ]
    lane_schedule = [(0, 0, 24), (1, 1, 0), (0, 1, 12), (1, 0, 12)]

    # Whole-vector field extraction through the shared uint32 bit view —
    # one pass per operand component instead of a Python-float round trip
    # per element.
    rows = {
        "a": {
            "real": _slice_rows(np.ascontiguousarray(a.real)),
            "imag": _slice_rows(np.ascontiguousarray(a.imag)),
        },
        "b": {
            "real": _slice_rows(np.ascontiguousarray(b.real)),
            "imag": _slice_rows(np.ascontiguousarray(b.imag)),
        },
    }
    for k in range(a.shape[0]):
        comps = {
            "a": {"real": rows["a"]["real"][k], "imag": rows["a"]["imag"][k]},
            "b": {"real": rows["b"]["real"][k], "imag": rows["b"]["imag"][k]},
        }
        for ca, cb, negate, acc in component_schedule:
            parts_a = comps["a"][ca]
            parts_b = comps["b"][cb]
            for ia, ib, shift in lane_schedule:
                pa, pb = parts_a[ia], parts_b[ib]
                sig = pa.significand * pb.significand
                if sig == 0:
                    continue
                sign = pa.sign ^ pb.sign ^ (1 if negate else 0)
                ea = (pa.biased_exp - 127) if pa.biased_exp else -126
                eb = (pb.biased_exp - 127) if pb.biased_exp else -126
                acc.add(sign, sig, ea + eb - 46 + shift)

    for val, acc in ((complex(c).real, re_acc), (complex(c).imag, im_acc)):
        if val == 0.0:
            continue
        if not np.isfinite(val):
            raise NonFiniteOperandError("bit-level model handles finite C")
        acc.add(*_c_bits(val))
    return complex(re_acc.to_float(), im_acc.to_float())
