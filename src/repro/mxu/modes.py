"""MXU operating modes and their multi-step execution plans.

Section IV specifies each M3XU mode as a sequence of *steps*; on every step
the data-assignment stage picks which part (high/low mantissa slice, or
real/imaginary component) of each operand feeds each multiplier, whether
the product's sign is flipped (complex ``i*i = -1``), and at which binary
weight the product joins the 48-bit accumulator. :class:`StepPlan`
captures that schedule declaratively; both the functional model
(:mod:`repro.mxu.m3xu`) and the instruction-count performance model read it.

Part labels: ``H``/``L`` = high/low 12-bit mantissa slice; in complex mode
each of the real (``R``) and imaginary (``I``) components is itself split,
giving parts like ``RH`` (real-high). ``accumulator`` names the output the
step feeds (``"real"``/``"imag"``; plain modes use ``"real"``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..types.formats import BF16, FP16, FP32, FP64, TF32, FloatFormat

__all__ = ["MXUMode", "StepProduct", "Step", "StepPlan", "step_plan", "MODE_INFO"]


class MXUMode(enum.Enum):
    """Input data type / operating mode of the (M3)XU."""

    FP16 = "fp16"
    BF16 = "bf16"
    TF32 = "tf32"
    FP32 = "fp32"
    FP32C = "fp32c"
    FP64 = "fp64"


@dataclass(frozen=True)
class StepProduct:
    """One multiplier assignment within a step.

    ``a_part``/``b_part`` name the operand slice routed to the multiplier,
    ``negate`` models the sign-bit flip of Fig. 3(c), ``weight_shift`` is
    the left-shift (in bits) applied when the product joins the
    accumulator — the "shift by 24 / 16 bits" muxes of Fig. 3(b), expressed
    here relative to the least-significant (L*L) product lane.
    """

    a_part: str
    b_part: str
    negate: bool = False
    weight_shift: int = 0
    accumulator: str = "real"


@dataclass(frozen=True)
class Step:
    """One cycle of a multi-step MMA: the products issued concurrently."""

    products: tuple[StepProduct, ...]


@dataclass(frozen=True)
class StepPlan:
    """Full execution schedule of one MMA instruction in a given mode."""

    mode: MXUMode
    input_format: FloatFormat
    steps: tuple[Step, ...]
    #: K extent of one instruction relative to the native (FP16) K.
    k_scale_den: int

    @property
    def n_steps(self) -> int:
        return len(self.steps)

    @property
    def products_per_k(self) -> int:
        """Partial products generated per logical (a_k, b_k) operand pair."""
        return sum(len(s.products) for s in self.steps)


def _plain(mode: MXUMode, fmt: FloatFormat) -> StepPlan:
    """Native single-step modes: one product per pair, no reassignment."""
    return StepPlan(
        mode=mode,
        input_format=fmt,
        steps=(Step((StepProduct("X", "X"),)),),
        k_scale_den=1,
    )


def _fp32_plan() -> StepPlan:
    """Observation 1/2: two steps; step 1 pairs like parts (H*H at weight
    2^24, L*L at 2^0), step 2 flips the B assignment for the cross terms
    (both at weight 2^12). Weights are relative to the L*L lane; 12 is the
    mantissa-slice width."""
    return StepPlan(
        mode=MXUMode.FP32,
        input_format=FP32,
        steps=(
            Step((StepProduct("H", "H", weight_shift=24), StepProduct("L", "L", weight_shift=0))),
            Step((StepProduct("H", "L", weight_shift=12), StepProduct("L", "H", weight_shift=12))),
        ),
        k_scale_den=2,
    )


def _fp32c_plan() -> StepPlan:
    """Observation 3 + Section IV-B: four steps. Steps 1-2 produce the real
    part (imag*imag products negated), steps 3-4 the imaginary part; each
    pair of steps is an FP32 two-step multiply over the component split."""
    real = []
    for a_c, b_c, neg in (("R", "R", False), ("I", "I", True)):
        real.append(
            Step(
                (
                    StepProduct(a_c + "H", b_c + "H", neg, 24, "real"),
                    StepProduct(a_c + "L", b_c + "L", neg, 0, "real"),
                )
            )
        )
        real.append(
            Step(
                (
                    StepProduct(a_c + "H", b_c + "L", neg, 12, "real"),
                    StepProduct(a_c + "L", b_c + "H", neg, 12, "real"),
                )
            )
        )
    imag = []
    for a_c, b_c in (("R", "I"), ("I", "R")):
        imag.append(
            Step(
                (
                    StepProduct(a_c + "H", b_c + "H", False, 24, "imag"),
                    StepProduct(a_c + "L", b_c + "L", False, 0, "imag"),
                )
            )
        )
        imag.append(
            Step(
                (
                    StepProduct(a_c + "H", b_c + "L", False, 12, "imag"),
                    StepProduct(a_c + "L", b_c + "H", False, 12, "imag"),
                )
            )
        )
    # The hardware fuses each (like, cross) pair of sub-steps into a single
    # step by doubling the multiplier lanes fed per pair — 4 architectural
    # steps total (Fig. 3c). We keep the fused view: 4 steps, 4 products each.
    fused = []
    for i in range(0, 4, 2):
        fused.append(Step(real[i].products + real[i + 1].products))
    for i in range(0, 4, 2):
        fused.append(Step(imag[i].products + imag[i + 1].products))
    return StepPlan(
        mode=MXUMode.FP32C,
        input_format=FP32,
        steps=tuple(fused),
        k_scale_den=4,
    )


def _fp64_plan() -> StepPlan:
    """Section IV-C sketch: four steps over the high/low split of each FP64
    operand (high-high, high-low, low-high, low-low), same swapping policy
    as FP32C but without sign flips. Weights relative to the L*L lane for a
    27-bit slice width (the generic split width used by the FP64 model)."""
    return StepPlan(
        mode=MXUMode.FP64,
        input_format=FP64,
        steps=(
            Step((StepProduct("H", "H", weight_shift=54),)),
            Step((StepProduct("H", "L", weight_shift=27),)),
            Step((StepProduct("L", "H", weight_shift=27),)),
            Step((StepProduct("L", "L", weight_shift=0),)),
        ),
        k_scale_den=4,
    )


_PLANS: dict[MXUMode, StepPlan] = {
    MXUMode.FP16: _plain(MXUMode.FP16, FP16),
    MXUMode.BF16: _plain(MXUMode.BF16, BF16),
    MXUMode.TF32: _plain(MXUMode.TF32, TF32),
    MXUMode.FP32: _fp32_plan(),
    MXUMode.FP32C: _fp32c_plan(),
    MXUMode.FP64: _fp64_plan(),
}


def step_plan(mode: MXUMode) -> StepPlan:
    """The execution plan of one MMA instruction in *mode*."""
    return _PLANS[mode]


#: Quick-reference mode table: (steps, K divisor, supported by baseline TC).
MODE_INFO: dict[MXUMode, tuple[int, int, bool]] = {
    MXUMode.FP16: (1, 1, True),
    MXUMode.BF16: (1, 1, True),
    MXUMode.TF32: (1, 1, True),
    MXUMode.FP32: (2, 2, False),
    MXUMode.FP32C: (4, 4, False),
    MXUMode.FP64: (4, 4, False),
}
