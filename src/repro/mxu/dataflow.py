"""The data-assignment stage: operand-part routing for multi-step MMAs.

This is the functional model of Fig. 3(a)/(c): it splits each register
operand into the slices a mode's :class:`~repro.mxu.modes.StepPlan` calls
for and routes the right slice pair (with the right sign) to every
multiplier lane on every step.

Value-level modelling note: in hardware the low mantissa slice is stored
with the operand's *shared* exponent, which is "artificially small … the
hardware must later correct for this, post-multiplication" via the 24/16/
12-bit accumulator shifts of Fig. 3(b). Our slices are float64 *values*
that already carry their true binary weight, so no post-multiplication
shift is needed — the `weight_shift` recorded in the step plan documents
the hardware bookkeeping and is checked for consistency by
:func:`verify_plan_weights`, not applied a second time.
"""

from __future__ import annotations

import numpy as np

from ..types.decompose import split_complex, split_fp32_m3xu, split_n_parts
from ..types.quantize import quantize
from .modes import MXUMode, StepPlan, step_plan

__all__ = ["resolve_parts", "lane_products", "verify_plan_weights", "FP64_PART_BITS"]

#: Slice width of the FP64 two-way split (Section IV-C, generic multiplier
#: option). 27 + 26 explicit bits cover the 53-bit FP64 significand.
FP64_PART_BITS = 27


def resolve_parts(x: np.ndarray, mode: MXUMode) -> dict[str, np.ndarray]:
    """Split one operand matrix into the named slices used by *mode*.

    Returns a mapping from part label (as used in the mode's step plan) to
    a float64 array of the operand's shape.
    """
    if mode in (MXUMode.FP16, MXUMode.BF16, MXUMode.TF32):
        return {"X": quantize(np.asarray(x, dtype=np.float64), step_plan(mode).input_format)}
    if mode is MXUMode.FP32:
        hi, lo = split_fp32_m3xu(np.asarray(x, dtype=np.float64))
        return {"H": hi, "L": lo}
    if mode is MXUMode.FP32C:
        re, im = split_complex(np.asarray(x, dtype=np.complex128))
        rh, rl = split_fp32_m3xu(re)
        ih, il = split_fp32_m3xu(im)
        return {"RH": rh, "RL": rl, "IH": ih, "IL": il}
    if mode is MXUMode.FP64:
        hi, lo = split_n_parts(np.asarray(x, dtype=np.float64), FP64_PART_BITS, 2)
        return {"H": hi, "L": lo}
    raise ValueError(f"unknown mode {mode}")


def lane_products(
    a: np.ndarray, b: np.ndarray, mode: MXUMode
) -> dict[str, np.ndarray]:
    """All multiplier-lane products of one MMA, grouped by accumulator.

    Parameters
    ----------
    a:
        Operand A, shape ``(..., M, K)``.
    b:
        Operand B, shape ``(..., K, N)``.
    mode:
        Operating mode; complex inputs are expected for FP32C.

    Returns
    -------
    dict
        ``accumulator -> products`` where products has shape
        ``(..., M, N, K * lanes_per_pair)``: every partial product that the
        mode's step plan feeds into that accumulator, sign flips applied.
        Summing that axis through the accumulator model and rounding yields
        the MMA result.
    """
    plan: StepPlan = step_plan(mode)
    a_parts = resolve_parts(a, mode)
    b_parts = resolve_parts(b, mode)

    grouped: dict[str, list[np.ndarray]] = {}
    for step in plan.steps:
        for prod in step.products:
            pa = a_parts[prod.a_part][..., :, None, :]  # (..., M, 1, K)
            pb = np.swapaxes(b_parts[prod.b_part], -1, -2)[..., None, :, :]  # (...,1,N,K)
            p = pa * pb
            if prod.negate:
                p = -p
            grouped.setdefault(prod.accumulator, []).append(p)
    return {
        acc: np.concatenate(parts, axis=-1) for acc, parts in grouped.items()
    }


def verify_plan_weights(mode: MXUMode) -> None:
    """Consistency check tying the value-level model to the hardware shifts.

    For each lane the step plan records the accumulator left-shift the
    hardware applies (relative to the least-significant lane). In the
    value-level model that shift is implicit in the slice magnitudes:
    slicing a unit-magnitude operand, the product of lane ``(a_part,
    b_part)`` must be ``2**(weight_shift - max_shift)`` times the
    highest-weight lane's product. Raises ``AssertionError`` on mismatch.
    """
    plan = step_plan(mode)
    if mode in (MXUMode.FP16, MXUMode.BF16, MXUMode.TF32):
        return  # single lane, nothing to check

    # Probe operands whose every slice is an exact power of two so lane
    # magnitudes expose their binary weights directly.
    if mode is MXUMode.FP32C:
        slice_width = 12
        probe = (1.0 + 2.0**-slice_width) * (1 + 1j)
    elif mode is MXUMode.FP32:
        slice_width = 12
        probe = 1.0 + 2.0**-slice_width
    else:  # FP64
        slice_width = FP64_PART_BITS
        probe = 1.0 + 2.0**-slice_width

    x = np.array([[probe]])
    a_parts = resolve_parts(x, mode)
    b_parts = resolve_parts(x, mode)
    shifts = [p.weight_shift for s in plan.steps for p in s.products]
    max_shift = max(shifts)
    for step in plan.steps:
        for prod in step.products:
            pa = abs(float(a_parts[prod.a_part][0, 0]))
            pb = abs(float(b_parts[prod.b_part][0, 0]))
            got = pa * pb
            want = 2.0 ** (prod.weight_shift - max_shift)
            assert got == want, (
                f"{mode}: lane ({prod.a_part},{prod.b_part}) has magnitude "
                f"{got}, but weight_shift={prod.weight_shift} implies {want}"
            )
