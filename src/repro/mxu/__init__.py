"""Hardware functional models: baseline Tensor Core MXU and M3XU."""

from .baseline import TensorCoreMXU
from .bitlevel import (
    BitAccumulator,
    bit_level_fp32_dot,
    bit_level_fp32c_dot,
    split_fp32_bits,
)
from .config import (
    AMPERE_MXU,
    M3XU_CONFIG,
    M3XU_PIPELINED_CONFIG,
    MXUConfig,
    TileShape,
)
from .dataflow import lane_products, resolve_parts, verify_plan_weights
from .faults import (
    FaultImpact,
    FaultSite,
    FaultSpec,
    FaultStage,
    FaultyM3XU,
    inject_operand_fault,
    inject_register_fault,
    inject_shift_align_fault,
    inject_sign_flip_fault,
    slice_fault_study,
)
from .extension import DesignPoint, MultiStepScheme, composed_gemm, design_space
from .isa import MMA_DESCRIPTORS, EmulationCosts, MmaDescriptor, emulation_costs
from .m3xu import M3XU
from .modes import MODE_INFO, MXUMode, Step, StepPlan, StepProduct, step_plan
from .parallel_bitlevel import (
    BITLEVEL_CHUNK_ENV,
    resolve_bitlevel_chunk,
    sharded_bitlevel_gemm,
)
from .vectorized import (
    BITLEVEL_ENV,
    BitLevelMXU,
    NonFiniteOperandError,
    ProductFault,
    fp32_bit_fields,
    product_slot_count,
    resolve_bitlevel_engine,
    scalar_mma_fp32,
    scalar_mma_fp32c,
    split_fp32_fields,
    vector_mma_fp32,
    vector_mma_fp32c,
)

__all__ = [
    "TensorCoreMXU",
    "BitAccumulator",
    "bit_level_fp32_dot",
    "bit_level_fp32c_dot",
    "split_fp32_bits",
    "BITLEVEL_CHUNK_ENV",
    "BITLEVEL_ENV",
    "BitLevelMXU",
    "resolve_bitlevel_chunk",
    "sharded_bitlevel_gemm",
    "NonFiniteOperandError",
    "ProductFault",
    "fp32_bit_fields",
    "product_slot_count",
    "resolve_bitlevel_engine",
    "scalar_mma_fp32",
    "scalar_mma_fp32c",
    "split_fp32_fields",
    "vector_mma_fp32",
    "vector_mma_fp32c",
    "MultiStepScheme",
    "composed_gemm",
    "design_space",
    "DesignPoint",
    "MmaDescriptor",
    "MMA_DESCRIPTORS",
    "EmulationCosts",
    "emulation_costs",
    "FaultSite",
    "FaultStage",
    "FaultSpec",
    "FaultyM3XU",
    "FaultImpact",
    "inject_operand_fault",
    "inject_register_fault",
    "inject_shift_align_fault",
    "inject_sign_flip_fault",
    "slice_fault_study",
    "M3XU",
    "MXUConfig",
    "TileShape",
    "AMPERE_MXU",
    "M3XU_CONFIG",
    "M3XU_PIPELINED_CONFIG",
    "MXUMode",
    "MODE_INFO",
    "StepPlan",
    "Step",
    "StepProduct",
    "step_plan",
    "lane_products",
    "resolve_parts",
    "verify_plan_weights",
]
