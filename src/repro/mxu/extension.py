"""Section IV-C: extending the M3XU approach to higher bitwidths.

"The M3XU approach ... extends effectively to even higher bitwidth
floating-point formats. ... Furthermore, the original arithmetic unit
requirements remain flexible, accommodating options like 8-bit or 32-bit
multipliers for composing higher bitwidth datatypes, thereby broadening
the design exploration space."

This module generalises the two-step FP32 scheme to an arbitrary
``(multiplier significand width) x (target significand width)`` pair:

* operands split into ``ceil(target_bits / slice_bits)`` truncated slices,
* every slice-pair product executes on the narrow multipliers,
* an optional product-pruning threshold drops cross terms whose weight
  falls below the target precision (the CUTLASS-3xTF32 trick, offered
  here as an accuracy/steps trade-off),
* products accumulate in a wide (float64-modelled) path and round once.

:func:`design_space` tabulates the resulting steps-per-MMA / throughput /
accuracy trade-offs for the paper's suggested design points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..types.decompose import split_n_parts
from ..types.errors import matching_bits
from ..types.formats import FP32, FP64, FloatFormat
from ..types.quantize import quantize

__all__ = ["MultiStepScheme", "composed_gemm", "design_space", "DesignPoint"]


@dataclass(frozen=True)
class MultiStepScheme:
    """A multi-slice composition of a wide GEMM on narrow multipliers.

    Parameters
    ----------
    target:
        The emulated format (e.g. FP64).
    slice_bits:
        Significand width of one multiplier input (12 for M3XU's units;
        8 or 32 for the Section IV-C alternatives).
    prune_below:
        Drop slice-product terms whose combined weight is more than this
        many bits below the leading term (None = keep all — exact).
    """

    target: FloatFormat
    slice_bits: int
    prune_below: int | None = None

    def __post_init__(self) -> None:
        if self.slice_bits < 4:
            raise ValueError("slice_bits must be >= 4")

    @property
    def n_slices(self) -> int:
        return math.ceil(self.target.significand_bits / self.slice_bits)

    @property
    def kept_products(self) -> int:
        """Slice-product terms retained per operand pair."""
        n = self.n_slices
        if self.prune_below is None:
            return n * n
        kept = 0
        for i in range(n):
            for j in range(n):
                if (i + j) * self.slice_bits <= self.prune_below:
                    kept += 1
        return kept

    @property
    def steps(self) -> int:
        """Steps per MMA: each step drives every lane once, so the step
        count equals the kept product terms per pair divided by the
        lanes-per-pair the unit provides (2 in M3XU's K-halving layout);
        conservatively we count one step per kept diagonal pair-group,
        matching Corollary 1's 2-step FP32 (4 products / 2 lanes)."""
        return max(1, math.ceil(self.kept_products / 2))

    @property
    def throughput_fraction(self) -> float:
        """MAC throughput vs the native narrow mode (Corollary 2
        generalised): K shrinks by n_slices and the op takes `steps`."""
        return 1.0 / (self.n_slices * self.steps)


def composed_gemm(
    a: np.ndarray,
    b: np.ndarray,
    scheme: MultiStepScheme,
) -> np.ndarray:
    """Functional multi-slice GEMM under *scheme* (wide accumulation).

    Models the arithmetic of the generalised data-assignment stage: exact
    slice products (float64 carries up to 24-bit x 24-bit exactly; wider
    slices document their modelling error), pruned per the scheme, summed
    in the wide path, rounded to the target format.
    """
    a = quantize(np.asarray(a, dtype=np.float64), scheme.target)
    b = quantize(np.asarray(b, dtype=np.float64), scheme.target)
    n = scheme.n_slices
    a_parts = split_n_parts(a, scheme.slice_bits, n)
    b_parts = split_n_parts(b, scheme.slice_bits, n)
    acc = np.zeros((a.shape[0], b.shape[1]))
    for i in range(n):
        for j in range(n):
            if (
                scheme.prune_below is not None
                and (i + j) * scheme.slice_bits > scheme.prune_below
            ):
                continue
            acc = acc + a_parts[i] @ b_parts[j]
    return quantize(acc, scheme.target)


@dataclass(frozen=True)
class DesignPoint:
    """One row of the Section IV-C design-space table."""

    name: str
    target: str
    slice_bits: int
    n_slices: int
    steps: int
    throughput_fraction: float
    matching_bits: float


def design_space(
    seed: int = 17, size: int = 24
) -> list[DesignPoint]:
    """Tabulate the paper's suggested design points.

    Covers FP32 and FP64 targets composed from 8-, 12-, 16- and 32-bit
    slice multipliers, with the exact (unpruned) schedule; accuracy is
    measured on a well-conditioned random GEMM against float64 (float128
    is unavailable, so FP64 targets report the bits the *model* resolves,
    capped by the float64 reference).
    """
    rng = np.random.default_rng(seed)
    a = rng.uniform(0.5, 1.5, size=(size, size))
    b = rng.uniform(0.5, 1.5, size=(size, size))
    ref = a @ b

    points = []
    for target, slices in ((FP32, (8, 12, 16)), (FP64, (12, 16, 27))):
        for sb in slices:
            scheme = MultiStepScheme(target=target, slice_bits=sb)
            got = composed_gemm(a, b, scheme)
            points.append(
                DesignPoint(
                    name=f"{target.name}@{sb}b",
                    target=target.name,
                    slice_bits=sb,
                    n_slices=scheme.n_slices,
                    steps=scheme.steps,
                    throughput_fraction=scheme.throughput_fraction,
                    matching_bits=matching_bits(got, ref),
                )
            )
    return points
