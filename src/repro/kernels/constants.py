"""Calibrated utilisation constants for the kernel performance models.

These are the *only* calibrated constants in the timing path (DESIGN.md
Section 5.4). Each models pipeline effects a throughput model cannot see —
dependency stalls, fragment shuffles, accumulator RAW chains — and is
pinned to a measurement the paper (or its cited baselines) reports:

``TC_UTIL_NATIVE`` (0.95)
    Fraction of peak MMA throughput that well-tuned CUTLASS/cuBLAS
    tensor-core kernels reach at large sizes. "Even the most optimized
    cuBLAS still cannot reach the peak throughput with the default 16-bit
    number format" (Section II-B, citing [64], [68]).

``FMA_UTIL_SIMT`` (0.97)
    FP32-pipe utilisation of large SIMT GEMMs (cuBLAS SGEMM efficiency).

``TC_UTIL_M3XU`` (0.945)
    M3XU kernels issue the same single instruction stream as native MMA
    kernels; the multi-step sequencing is internal to the unit, so they
    inherit near-native utilisation. Pinned to Figure 5(c): "M3XU SGEMM
    and CGEMM kernels reach more than 94% of the theoretical performance".

``TC_UTIL_SPLIT_TF32`` (0.93)
    CUTLASS 3xTF32 splits in registers inside one kernel; slight loss
    from the doubled operand fragments. With its 3x MMA work this caps
    the scheme at ~0.62 of the FP32 target — Figure 5(c)'s "up to 63%".

``TC_UTIL_SPLIT_BF16`` (0.58)
    The EEHC warp-level 3xBF16 scheme interleaves three dependent
    accumulator streams and extra fragment permutations per MMA; pinned
    to the paper's "excluding the data decoupling time, other
    alternatives still fall behind with a maximum speedup at 3.10x"
    (3.10x over SIMT = ~60 TFLOPS = ~0.56 of the 104 TFLOPS the 3-GEMM
    BF16 scheme could theoretically reach).

``TC_UTIL_COMPLEX_SPLIT`` (0.79)
    Additional derate for software complex GEMM: the 4-real-GEMM
    decomposition runs as separate accumulation passes that cannot fuse
    mainloops (Section VII). Pinned to Figure 4(b): software FP32C tops
    out at ~2.1x over SIMT.

``DECOUPLE_OPS_PER_ELEM`` (3.0)
    Register-level decoupling arithmetic per loaded operand element for
    the split schemes (convert-high, subtract, convert-low), per Fig. 2's
    instruction-stream comparison. Together with EEHC's explicit
    decouple pass this reproduces the "14% execution time in decoupling
    inputs on average" (Section VI-B).
"""

#: Effective fraction of HBM peak that the EEHC decouple (layout
#: transform) pass achieves: it reads FP32 operands and scatters two
#: narrow term matrices with strided access — far from streaming peak.
#: Together with DECOUPLE_OPS_PER_ELEM this pins the scheme's decoupling
#: share of runtime to the paper's "14% ... on average" (Section VI-B).
DECOUPLE_BW_EFF = 0.30

TC_UTIL_NATIVE = 0.95
FMA_UTIL_SIMT = 0.97
TC_UTIL_M3XU = 0.945
TC_UTIL_SPLIT_TF32 = 0.93
TC_UTIL_SPLIT_BF16 = 0.56
TC_UTIL_COMPLEX_SPLIT = 0.79
DECOUPLE_OPS_PER_ELEM = 3.0

#: Cycle-time ratio of the non-pipelined M3XU (Table III): the data-
#: assignment stage stretches the critical path by 21%, so the paper's
#: emulation drops the SM clock from 1170 to ~960 MHz.
NONPIPELINED_CLOCK_SCALE = 1.0 / 1.21
