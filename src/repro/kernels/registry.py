"""Kernel registry: every Table II / Table IV kernel by name."""

from __future__ import annotations

from .base import GemmKernelModel
from .cgemm import (
    baseline_mxu_cgemm,
    cutlass_simt_cgemm,
    cutlass_tensorop_cgemm,
    m3xu_cgemm,
    m3xu_cgemm_pipelined,
)
from .sgemm import (
    baseline_mxu_sgemm,
    cutlass_simt_sgemm,
    cutlass_tensorop_sgemm,
    eehc_sgemm_fp32b,
    m3xu_sgemm,
    m3xu_sgemm_pipelined,
)

__all__ = ["SGEMM_KERNELS", "CGEMM_KERNELS", "ALL_KERNELS", "get_kernel"]

SGEMM_KERNELS: dict[str, GemmKernelModel] = {
    k.name: k
    for k in (
        cutlass_simt_sgemm,
        cutlass_tensorop_sgemm,
        eehc_sgemm_fp32b,
        m3xu_sgemm,
        m3xu_sgemm_pipelined,
        baseline_mxu_sgemm,
    )
}

CGEMM_KERNELS: dict[str, GemmKernelModel] = {
    k.name: k
    for k in (
        cutlass_simt_cgemm,
        cutlass_tensorop_cgemm,
        m3xu_cgemm,
        m3xu_cgemm_pipelined,
        baseline_mxu_cgemm,
    )
}

ALL_KERNELS: dict[str, GemmKernelModel] = {**SGEMM_KERNELS, **CGEMM_KERNELS}


def get_kernel(name: str) -> GemmKernelModel:
    """Look up a kernel model by its paper name."""
    try:
        return ALL_KERNELS[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; known: {sorted(ALL_KERNELS)}"
        ) from None
