"""FP32-complex GEMM kernel models (Table IV FP32C kernels + Table II).

A complex problem of logical size M x N x K performs 4*M*N*K real MACs.
SIMT executes them as FP32 FMAs; the software tensor-core baseline
decomposes into 4 real GEMMs each emulated with 3xTF32 (12 real-GEMM
volumes total); M3XU executes complex MACs natively at 1/16 of the 16-bit
unit rate (Corollary 3).
"""

from __future__ import annotations

from ..gemm.reference import cgemm_simt
from ..gemm.schemes import tensorop_cgemm_3xtf32
from ..gemm.tiled import mxu_cgemm
from ..gpusim.config import GPUSpec
from ..gpusim.kernelmodel import KernelSpec
from ..gpusim.tiling import TileConfig
from .base import GemmKernelModel, GemmProblem, adaptive_gemm_spec
from .constants import (
    DECOUPLE_OPS_PER_ELEM,
    FMA_UTIL_SIMT,
    NONPIPELINED_CLOCK_SCALE,
    TC_UTIL_COMPLEX_SPLIT,
    TC_UTIL_M3XU,
    TC_UTIL_NATIVE,
    TC_UTIL_SPLIT_TF32,
)

__all__ = [
    "cutlass_simt_cgemm",
    "cutlass_tensorop_cgemm",
    "m3xu_cgemm",
    "m3xu_cgemm_pipelined",
    "baseline_mxu_cgemm",
]

_TC_TILE = TileConfig(tb_m=128, tb_n=128, tb_k=32, warps=8, stages=3)
_SIMT_TILE = TileConfig(tb_m=64, tb_n=128, tb_k=8, warps=8, stages=2)
_SPLIT_TILE = TileConfig(tb_m=64, tb_n=64, tb_k=32, warps=8, stages=3)


def _require_complex(problem: GemmProblem) -> None:
    if not problem.complex:
        raise ValueError("cgemm kernel models require a complex GemmProblem")


def _simt_build(problem: GemmProblem, gpu: GPUSpec) -> list[KernelSpec]:
    """cutlass_simt_cgemm: 4 FP32 FMAs per complex MAC in one kernel."""
    _require_complex(problem)
    spec = adaptive_gemm_spec(
        "cutlass_simt_cgemm",
        problem,
        gpu,
        base_tile=_SIMT_TILE,
        tc_mode="fp16",
        tc_macs=0.0,
        macs_per_mma=1.0,
        tc_util=1.0,
        fma_lane_ops=4.0 * problem.macs,
        fma_util=FMA_UTIL_SIMT,
        element_bytes=8,
        out_bytes=8,
    )
    return [spec]


def _tensorop_build(problem: GemmProblem, gpu: GPUSpec) -> list[KernelSpec]:
    """cutlass_tensorop_cgemm: 4 real GEMMs (planarised complex), each via
    the 3xTF32 split -> 12 real GEMM volumes + planarise/combine passes."""
    _require_complex(problem)
    real = GemmProblem(problem.m, problem.n, problem.k, complex=False)
    specs: list[KernelSpec] = []
    for i in range(4):
        specs.append(
            adaptive_gemm_spec(
                f"tensorop_cgemm_pass{i}",
                real,
                gpu,
                base_tile=_SPLIT_TILE,
                tc_mode="tf32",
                tc_macs=3.0 * real.macs,
                macs_per_mma=16 * 8 * 8,
                tc_util=TC_UTIL_SPLIT_TF32 * TC_UTIL_COMPLEX_SPLIT,
                aux_lane_ops_per_loaded_elem=DECOUPLE_OPS_PER_ELEM,
                fma_util=FMA_UTIL_SIMT,
            )
        )
    return specs


def _m3xu_build_factory(pipelined: bool):
    clock_scale = 1.0 if pipelined else NONPIPELINED_CLOCK_SCALE
    name = "M3XU_cgemm_pipelined" if pipelined else "M3XU_cgemm"

    def build(problem: GemmProblem, gpu: GPUSpec) -> list[KernelSpec]:
        _require_complex(problem)
        spec = adaptive_gemm_spec(
            name,
            problem,
            gpu,
            base_tile=_TC_TILE,
            tc_mode="m3xu_fp32c",
            tc_macs=problem.macs,  # complex MACs; the mode rate is 1/16
            macs_per_mma=16 * 8 * 2,  # one FP32C MMA covers 16x8x2 complex
            tc_util=TC_UTIL_M3XU,
            clock_scale=clock_scale,
            element_bytes=8,
            out_bytes=8,
        )
        return [spec]

    return build


def _fp32c_mxu_build(problem: GemmProblem, gpu: GPUSpec) -> list[KernelSpec]:
    """baseline_MXU_cgemm: full-width FP32 MXU running the 4-real-GEMM
    complex decomposition at FP16 MAC rate (energy reference in Fig. 5b)."""
    _require_complex(problem)
    spec = adaptive_gemm_spec(
        "baseline_MXU_cgemm",
        problem,
        gpu,
        base_tile=_TC_TILE,
        tc_mode="fp32c_mxu",
        tc_macs=problem.macs,
        macs_per_mma=16 * 8 * 4,
        tc_util=TC_UTIL_NATIVE,
        element_bytes=8,
        out_bytes=8,
    )
    return [spec]


cutlass_simt_cgemm = GemmKernelModel(
    name="cutlass_simt_cgemm",
    build=_simt_build,
    functional=cgemm_simt,
    description="cutlass fp32 complex gemm kernel using CUDA cores",
)

cutlass_tensorop_cgemm = GemmKernelModel(
    name="cutlass_tensorop_cgemm",
    build=_tensorop_build,
    functional=tensorop_cgemm_3xtf32,
    description="cutlass software emulation fp32 complex gemm using 3 tf32 gemms",
)

m3xu_cgemm = GemmKernelModel(
    name="M3XU_cgemm",
    build=_m3xu_build_factory(pipelined=False),
    functional=mxu_cgemm,
    description="FP32 complex GEMM kernel with controlled clock frequency",
    energy_mode_override="m3xu_fp32c_np",
)

m3xu_cgemm_pipelined = GemmKernelModel(
    name="M3XU_cgemm_pipelined",
    build=_m3xu_build_factory(pipelined=True),
    functional=mxu_cgemm,
    description="FP32 complex GEMM kernel, pipelined data-assignment stage",
)

baseline_mxu_cgemm = GemmKernelModel(
    name="baseline_MXU_cgemm",
    build=_fp32c_mxu_build,
    functional=cgemm_simt,
    description="hypothetical full-bit-width FP32 MXU complex GEMM (energy reference)",
)
