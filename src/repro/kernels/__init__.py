"""GEMM kernel models (performance + functional) for the evaluation."""

from .base import GemmKernelModel, GemmProblem, gemm_kernel_spec
from .cgemm import (
    baseline_mxu_cgemm,
    cutlass_simt_cgemm,
    cutlass_tensorop_cgemm,
    m3xu_cgemm,
    m3xu_cgemm_pipelined,
)
from .registry import ALL_KERNELS, CGEMM_KERNELS, SGEMM_KERNELS, get_kernel
from .shapes import SHAPE_FAMILIES, ShapeFamily, family_speedups
from .sgemm import (
    baseline_mxu_sgemm,
    cutlass_simt_sgemm,
    cutlass_tensorop_sgemm,
    eehc_sgemm_fp32b,
    m3xu_sgemm,
    m3xu_sgemm_pipelined,
)

__all__ = [
    "GemmProblem",
    "GemmKernelModel",
    "gemm_kernel_spec",
    "SGEMM_KERNELS",
    "CGEMM_KERNELS",
    "ALL_KERNELS",
    "get_kernel",
    "ShapeFamily",
    "SHAPE_FAMILIES",
    "family_speedups",
    "cutlass_simt_sgemm",
    "cutlass_tensorop_sgemm",
    "eehc_sgemm_fp32b",
    "m3xu_sgemm",
    "m3xu_sgemm_pipelined",
    "baseline_mxu_sgemm",
    "cutlass_simt_cgemm",
    "cutlass_tensorop_cgemm",
    "m3xu_cgemm",
    "m3xu_cgemm_pipelined",
    "baseline_mxu_cgemm",
]
