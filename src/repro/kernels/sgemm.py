"""FP32 GEMM kernel models (Table IV FP32 kernels + Table II M3XU kernels).

Five performance models plus the hypothetical full-width FP32-MXU used as
the energy reference in Figure 5. Each pairs with its functional
implementation from :mod:`repro.gemm` where numerics matter.
"""

from __future__ import annotations

from ..gemm.reference import sgemm_simt
from ..gemm.schemes import eehc_sgemm_3xbf16, tensorop_sgemm_3xtf32
from ..gemm.tiled import mxu_sgemm
from ..gpusim.config import GPUSpec
from ..gpusim.kernelmodel import KernelSpec, PipeWork
from ..gpusim.tiling import TileConfig
from .base import GemmKernelModel, GemmProblem, adaptive_gemm_spec
from .constants import (
    DECOUPLE_BW_EFF,
    DECOUPLE_OPS_PER_ELEM,
    FMA_UTIL_SIMT,
    NONPIPELINED_CLOCK_SCALE,
    TC_UTIL_M3XU,
    TC_UTIL_NATIVE,
    TC_UTIL_SPLIT_BF16,
    TC_UTIL_SPLIT_TF32,
)

__all__ = [
    "cutlass_simt_sgemm",
    "cutlass_tensorop_sgemm",
    "eehc_sgemm_fp32b",
    "m3xu_sgemm",
    "m3xu_sgemm_pipelined",
    "baseline_mxu_sgemm",
]

_TC_TILE = TileConfig(tb_m=128, tb_n=128, tb_k=32, warps=8, stages=3)
_SIMT_TILE = TileConfig(tb_m=128, tb_n=128, tb_k=8, warps=8, stages=2)
# Software split schemes double the operand register/smem footprint, which
# forces a smaller threadblock tile (more DRAM traffic per flop).
_SPLIT_TILE = TileConfig(tb_m=128, tb_n=64, tb_k=32, warps=8, stages=3)


def _simt_build(problem: GemmProblem, gpu: GPUSpec) -> list[KernelSpec]:
    """cutlass_simt_sgemm: every MAC is one FFMA lane op."""
    spec = adaptive_gemm_spec(
        "cutlass_simt_sgemm",
        problem,
        gpu,
        base_tile=_SIMT_TILE,
        tc_mode="fp16",
        tc_macs=0.0,
        macs_per_mma=1.0,
        tc_util=1.0,
        fma_lane_ops=problem.macs,
        fma_util=FMA_UTIL_SIMT,
    )
    return [spec]


def _tensorop_3xtf32_build(problem: GemmProblem, gpu: GPUSpec) -> list[KernelSpec]:
    """cutlass_tensorop_sgemm: 3 TF32 GEMMs fused in one kernel, operands
    split in registers (3 decouple ops per loaded element)."""
    spec = adaptive_gemm_spec(
        "cutlass_tensorop_sgemm",
        problem,
        gpu,
        base_tile=_SPLIT_TILE,
        tc_mode="tf32",
        tc_macs=3.0 * problem.macs,
        macs_per_mma=16 * 8 * 8,
        tc_util=TC_UTIL_SPLIT_TF32,
        aux_lane_ops_per_loaded_elem=DECOUPLE_OPS_PER_ELEM,
        fma_util=FMA_UTIL_SIMT,
    )
    return [spec]


def _eehc_build(problem: GemmProblem, gpu: GPUSpec) -> list[KernelSpec]:
    """EEHC_sgemm_fp32B: an explicit decouple pass materialising two BF16
    term matrices, then a 3-GEMM warp-level BF16 kernel."""
    elems = float(problem.m * problem.k + problem.k * problem.n)
    # Read FP32 operands (4 B), write two term matrices with headroom
    # scaling (8 B); strided layout keeps the pass at DECOUPLE_BW_EFF of
    # HBM peak, modelled as inflated effective traffic.
    decouple = KernelSpec(
        name="eehc_decouple",
        work=PipeWork(
            fma_lane_ops=0.0,
            aux_lane_ops=DECOUPLE_OPS_PER_ELEM * elems,
            warp_instructions=(DECOUPLE_OPS_PER_ELEM + 2) * elems / 32.0,
            dram_bytes=elems * (4.0 + 8.0) / DECOUPLE_BW_EFF,
        ),
        tile=TileConfig(tb_m=256, tb_n=1, tb_k=1, warps=8, stages=1),
        n_ctas=max(1, int(elems // (256 * 32))),
        fma_util=FMA_UTIL_SIMT,
    )
    gemm = adaptive_gemm_spec(
        "eehc_3xbf16_gemm",
        problem,
        gpu,
        base_tile=_SPLIT_TILE,
        tc_mode="bf16",
        tc_macs=3.0 * problem.macs,
        macs_per_mma=16 * 8 * 16,
        tc_util=TC_UTIL_SPLIT_BF16,
        element_bytes=4,  # two BF16 terms per logical element
        fma_util=FMA_UTIL_SIMT,
    )
    return [decouple, gemm]


def _m3xu_build_factory(pipelined: bool):
    clock_scale = 1.0 if pipelined else NONPIPELINED_CLOCK_SCALE
    name = "M3XU_sgemm_pipelined" if pipelined else "M3XU_sgemm"

    def build(problem: GemmProblem, gpu: GPUSpec) -> list[KernelSpec]:
        spec = adaptive_gemm_spec(
            name,
            problem,
            gpu,
            base_tile=_TC_TILE,
            tc_mode="m3xu_fp32",
            tc_macs=problem.macs,
            macs_per_mma=16 * 8 * 8,  # each M3XU FP32 MMA is m16n8k8 (§V-B1b)
            tc_util=TC_UTIL_M3XU,
            clock_scale=clock_scale,
        )
        return [spec]

    return build


def _fp32_mxu_build(problem: GemmProblem, gpu: GPUSpec) -> list[KernelSpec]:
    """baseline_MXU_sgemm: the naive full-width FP32 MXU (Section II-B)
    with doubled front-end bandwidth — FP16-rate FP32 MMAs."""
    spec = adaptive_gemm_spec(
        "baseline_MXU_sgemm",
        problem,
        gpu,
        base_tile=_TC_TILE,
        tc_mode="fp32_mxu",
        tc_macs=problem.macs,
        macs_per_mma=16 * 8 * 16,
        tc_util=TC_UTIL_NATIVE,
    )
    return [spec]


cutlass_simt_sgemm = GemmKernelModel(
    name="cutlass_simt_sgemm",
    build=_simt_build,
    functional=sgemm_simt,
    description="cutlass fp32 gemm kernel using CUDA cores",
)

cutlass_tensorop_sgemm = GemmKernelModel(
    name="cutlass_tensorop_sgemm",
    build=_tensorop_3xtf32_build,
    functional=tensorop_sgemm_3xtf32,
    description="cutlass software emulation fp32 gemm kernel using 3 tf32 gemm",
)

eehc_sgemm_fp32b = GemmKernelModel(
    name="EEHC_sgemm_fp32B",
    build=_eehc_build,
    functional=eehc_sgemm_3xbf16,
    description="prior software emulation using three bf16 warp level gemm",
)

m3xu_sgemm = GemmKernelModel(
    name="M3XU_sgemm",
    build=_m3xu_build_factory(pipelined=False),
    functional=mxu_sgemm,
    description="FP32 GEMM kernel with controlled clock frequency (non-pipelined M3XU)",
    energy_mode_override="m3xu_fp32_np",
)

m3xu_sgemm_pipelined = GemmKernelModel(
    name="M3XU_sgemm_pipelined",
    build=_m3xu_build_factory(pipelined=True),
    functional=mxu_sgemm,
    description="FP32 GEMM kernel, pipelined data-assignment stage",
)

baseline_mxu_sgemm = GemmKernelModel(
    name="baseline_MXU_sgemm",
    build=_fp32_mxu_build,
    functional=sgemm_simt,  # numerically an FP32 FMA-tree unit
    description="hypothetical full-bit-width FP32 MXU (energy reference)",
)
