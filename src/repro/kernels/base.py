"""Kernel-model scaffolding shared by the Table II / Table IV kernels.

A :class:`GemmKernelModel` turns a GEMM problem into the
:class:`~repro.gpusim.kernelmodel.KernelSpec` sequence the timing/energy
models consume. The instruction/byte accounting follows the CUTLASS
hierarchical-GEMM structure (Section V-B2); the per-family utilisation
constants live in :mod:`repro.kernels.constants` with their calibration
rationale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..gpusim.config import GPUSpec
from ..gpusim.kernelmodel import KernelSpec, PipeWork, estimate_time, sequence_time
from ..gpusim.tiling import TileConfig, dram_bytes_wave_model, plan_grid

__all__ = ["GemmProblem", "GemmKernelModel", "gemm_kernel_spec", "adaptive_tiles", "best_spec"]


@dataclass(frozen=True)
class GemmProblem:
    """One GEMM problem instance. For complex problems the dimensions
    count complex elements."""

    m: int
    n: int
    k: int
    complex: bool = False

    @property
    def macs(self) -> float:
        """Logical MACs (complex MACs count 1; they expand per datapath)."""
        return float(self.m) * self.n * self.k

    @property
    def flops(self) -> float:
        return self.macs * (8.0 if self.complex else 2.0)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        tag = "c" if self.complex else ""
        return f"{self.m}x{self.n}x{self.k}{tag}"


def gemm_kernel_spec(
    name: str,
    problem: GemmProblem,
    gpu: GPUSpec,
    *,
    tile: TileConfig,
    tc_mode: str,
    tc_macs: float,
    macs_per_mma: float,
    tc_util: float,
    fma_lane_ops: float = 0.0,
    aux_lane_ops_per_loaded_elem: float = 0.0,
    fma_util: float = 1.0,
    clock_scale: float = 1.0,
    element_bytes: int = 4,
    out_bytes: int = 4,
    dram_scale: float = 1.0,
    split_k: int = 1,
) -> KernelSpec:
    """Assemble a KernelSpec for one hierarchical GEMM launch.

    Accounting (all totals for the whole launch):

    * MMA warp instructions: ``tc_macs / macs_per_mma``.
    * Shared-memory: each mainloop stage stores the A/B tiles once and the
      warps read each A element across the warp columns (and B across warp
      rows); a 4x2 warp grid is assumed for 8-warp tiles.
    * Global loads/stores: 128-byte warp transactions over the wave-reuse
      DRAM traffic model.
    * ``aux_lane_ops_per_loaded_elem`` charges the software schemes'
      decouple arithmetic per operand element brought into registers.
    """
    grid = plan_grid(problem.m, problem.n, problem.k, tile)
    iters = grid.mainloop_iters
    # Split-K: K-slices run on separate CTAs and their partial outputs are
    # reduced through global memory (the CUTLASS parallel-split-K pattern).
    split_k = max(1, min(split_k, iters))
    ctas = grid.n_ctas * split_k

    # Shared-memory traffic per CTA mainloop iteration.
    tile_bytes = (tile.tb_m * tile.tb_k + tile.tb_k * tile.tb_n) * element_bytes
    warp_cols, warp_rows = 2, max(1, tile.warps // 2)
    smem_reads = (
        tile.tb_m * tile.tb_k * warp_cols + tile.tb_k * tile.tb_n * warp_rows
    ) * element_bytes
    smem_bytes = float(ctas) * iters * (tile_bytes + smem_reads)

    dram_bytes = dram_scale * dram_bytes_wave_model(grid, gpu, element_bytes, out_bytes)
    if split_k > 1:
        # Partial accumulators written then re-read by the reduction pass.
        dram_bytes += 2.0 * split_k * problem.m * problem.n * out_bytes

    mma_instr = tc_macs / macs_per_mma
    ldsm_instr = 2.5 * mma_instr  # ldmatrix A/B fragments (+ reuse misses)
    ldg_instr = float(ctas) * iters * tile_bytes / 128.0
    sts_instr = ldg_instr
    epilogue_instr = problem.m * problem.n * out_bytes / 128.0
    loaded_elems = float(ctas) * iters * (tile.tb_m + tile.tb_n) * tile.tb_k
    aux_ops = aux_lane_ops_per_loaded_elem * loaded_elems
    fma_warp_instr = fma_lane_ops / 32.0
    aux_warp_instr = aux_ops / 32.0
    bookkeeping = 0.15 * (ldg_instr + sts_instr + ldsm_instr)
    warp_instructions = (
        mma_instr
        + ldsm_instr
        + ldg_instr
        + sts_instr
        + epilogue_instr
        + fma_warp_instr
        + aux_warp_instr
        + bookkeeping
    )

    work = PipeWork(
        tc_macs=tc_macs,
        tc_mode=tc_mode,
        fma_lane_ops=fma_lane_ops,
        aux_lane_ops=aux_ops,
        warp_instructions=warp_instructions,
        smem_bytes=smem_bytes,
        dram_bytes=dram_bytes,
    )
    return KernelSpec(
        name=name,
        work=work,
        tile=tile,
        n_ctas=ctas,
        tc_util=tc_util,
        fma_util=fma_util,
        clock_scale=clock_scale,
    )


def adaptive_tiles(base: TileConfig) -> list[TileConfig]:
    """Tile candidates a library heuristic would consider for one kernel.

    cuBLAS/CUTLASS pick smaller threadblock tiles for small problems to
    keep the device occupied; the model mirrors that by evaluating the
    base tile plus its halved-M/N variants and keeping the fastest.
    """
    from dataclasses import replace

    cands = [base]
    if base.tb_n >= 2 * 32:
        cands.append(replace(base, tb_n=base.tb_n // 2))
    if base.tb_m >= 2 * 32:
        cands.append(replace(base, tb_m=base.tb_m // 2))
    if base.tb_m >= 2 * 32 and base.tb_n >= 2 * 32:
        cands.append(replace(base, tb_m=base.tb_m // 2, tb_n=base.tb_n // 2, warps=max(4, base.warps // 2)))
    return cands


def best_spec(specs: Sequence[KernelSpec], gpu: GPUSpec) -> KernelSpec:
    """The fastest candidate under the timing model (tile heuristic)."""
    return min(specs, key=lambda s: estimate_time(s, gpu).total_s)


def adaptive_gemm_spec(
    name: str,
    problem: GemmProblem,
    gpu: GPUSpec,
    base_tile: TileConfig,
    **kwargs,
) -> KernelSpec:
    """Build one GEMM KernelSpec, letting the tile heuristic pick the
    fastest threadblock shape for this problem size."""
    cands = []
    for t in adaptive_tiles(base_tile):
        for split_k in (1, 4, 16, 64):
            cands.append(
                gemm_kernel_spec(name, problem, gpu, tile=t, split_k=split_k, **kwargs)
            )
    return best_spec(cands, gpu)


@dataclass
class GemmKernelModel:
    """A named kernel with a perf model and (optionally) a functional run.

    Parameters
    ----------
    name:
        Table II / Table IV kernel name.
    build:
        ``(problem, gpu) -> [KernelSpec, ...]`` — the launch sequence.
    functional:
        Optional numerical implementation ``(a, b, c) -> d`` used by the
        accuracy studies (None for perf-only designs like the hypothetical
        FP32-MXU which is numerically identical to SIMT FP32).
    description:
        One-line description matching the paper's kernel table.
    """

    name: str
    build: Callable[[GemmProblem, GPUSpec], Sequence[KernelSpec]]
    functional: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray] | None = None
    description: str = ""
    energy_mode_override: str | None = field(default=None)

    def time(self, problem: GemmProblem, gpu: GPUSpec) -> float:
        """Modelled execution time (seconds) for *problem* on *gpu*."""
        return sequence_time(list(self.build(problem, gpu)), gpu)

    def tflops(self, problem: GemmProblem, gpu: GPUSpec) -> float:
        """Achieved TFLOPS under the model."""
        return problem.flops / self.time(problem, gpu) / 1e12

    def breakdowns(self, problem: GemmProblem, gpu: GPUSpec):
        """Per-launch TimeBreakdowns (for limiter analysis)."""
        return [estimate_time(s, gpu) for s in self.build(problem, gpu)]
