"""GEMM shape families beyond the Figure 4 cubes.

The paper sweeps square problems; real workloads are rectangular. These
families — motivated by the application studies — let the benchmark
harness characterise where M3XU's advantage holds, shrinks or inverts:

* ``square``       — the Figure 4 sweep itself,
* ``tall_skinny``  — kNN/attention-style (huge M, small N),
* ``wide_k``       — wgrad-style reductions (small M*N, huge K),
* ``small_batch``  — FC layers at inference batch sizes,
* ``conv_like``    — im2col shapes from the CNN layer tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpusim.config import GPUSpec, a100_emulation
from .base import GemmProblem
from .registry import SGEMM_KERNELS

__all__ = ["ShapeFamily", "SHAPE_FAMILIES", "family_speedups"]


@dataclass(frozen=True)
class ShapeFamily:
    """A named list of GEMM problems."""

    name: str
    description: str
    problems: tuple[GemmProblem, ...]


SHAPE_FAMILIES: dict[str, ShapeFamily] = {
    "square": ShapeFamily(
        "square",
        "the Figure 4 cubes",
        tuple(GemmProblem(s, s, s) for s in (1024, 4096, 16384)),
    ),
    "tall_skinny": ShapeFamily(
        "tall_skinny",
        "huge M, narrow N (kNN distance panels, attention scores)",
        (
            GemmProblem(262144, 128, 512),
            GemmProblem(1048576, 64, 256),
            GemmProblem(65536, 256, 1024),
        ),
    ),
    "wide_k": ShapeFamily(
        "wide_k",
        "small output, huge reduction (weight gradients)",
        (
            GemmProblem(576, 64, 802816),
            GemmProblem(2304, 256, 200704),
            GemmProblem(4608, 512, 50176),
        ),
    ),
    "small_batch": ShapeFamily(
        "small_batch",
        "FC layers at small batch (latency-bound inference)",
        (
            GemmProblem(8, 4096, 4096),
            GemmProblem(32, 4096, 1024),
            GemmProblem(64, 1000, 2048),
        ),
    ),
    "conv_like": ShapeFamily(
        "conv_like",
        "im2col forward shapes from the CNN tables",
        (
            GemmProblem(200704, 64, 576),
            GemmProblem(50176, 128, 1152),
            GemmProblem(12544, 256, 2304),
        ),
    ),
}


def family_speedups(
    family: str, gpu: GPUSpec | None = None
) -> list[tuple[GemmProblem, float]]:
    """M3XU-pipelined speedup over SIMT for every problem in a family."""
    gpu = gpu or a100_emulation()
    try:
        fam = SHAPE_FAMILIES[family]
    except KeyError:
        raise KeyError(
            f"unknown family {family!r}; known: {sorted(SHAPE_FAMILIES)}"
        ) from None
    base = SGEMM_KERNELS["cutlass_simt_sgemm"]
    ours = SGEMM_KERNELS["M3XU_sgemm_pipelined"]
    return [
        (p, base.time(p, gpu) / ours.time(p, gpu)) for p in fam.problems
    ]
