"""DNN training case study (Figure 7)."""

from .layers import ConvLayer, FcLayer, Layer, layer_gemms
from .models import NETWORKS, alexnet, resnet50, vgg16
from .training import TrainingLatency, figure7, training_latency

__all__ = [
    "ConvLayer",
    "FcLayer",
    "Layer",
    "layer_gemms",
    "alexnet",
    "vgg16",
    "resnet50",
    "NETWORKS",
    "TrainingLatency",
    "training_latency",
    "figure7",
]
