"""Network definitions: AlexNet, VGG-16 and ResNet-50 layer tables.

Shapes follow the standard ImageNet configurations (what Nebula's full-
size networks model). ResNet-50 is expressed with its bottleneck blocks
expanded into individual convolutions.
"""

from __future__ import annotations

from .layers import ConvLayer, FcLayer, Layer

__all__ = ["alexnet", "vgg16", "resnet50", "NETWORKS"]


def alexnet() -> list[Layer]:
    return [
        ConvLayer("conv1", 3, 64, 11, 224, stride=4, padding=2),
        ConvLayer("conv2", 64, 192, 5, 27, padding=2),
        ConvLayer("conv3", 192, 384, 3, 13, padding=1),
        ConvLayer("conv4", 384, 256, 3, 13, padding=1),
        ConvLayer("conv5", 256, 256, 3, 13, padding=1),
        FcLayer("fc6", 256 * 6 * 6, 4096),
        FcLayer("fc7", 4096, 4096),
        FcLayer("fc8", 4096, 1000),
    ]


def vgg16() -> list[Layer]:
    cfg = [
        (3, 64, 224), (64, 64, 224),
        (64, 128, 112), (128, 128, 112),
        (128, 256, 56), (256, 256, 56), (256, 256, 56),
        (256, 512, 28), (512, 512, 28), (512, 512, 28),
        (512, 512, 14), (512, 512, 14), (512, 512, 14),
    ]
    layers: list[Layer] = [
        ConvLayer(f"conv{i+1}", ic, oc, 3, hw, padding=1)
        for i, (ic, oc, hw) in enumerate(cfg)
    ]
    layers += [
        FcLayer("fc14", 512 * 7 * 7, 4096),
        FcLayer("fc15", 4096, 4096),
        FcLayer("fc16", 4096, 1000),
    ]
    return layers


def _bottleneck(name: str, in_ch: int, mid: int, hw: int, stride: int = 1) -> list[Layer]:
    out_ch = mid * 4
    layers: list[Layer] = [
        ConvLayer(f"{name}.conv1", in_ch, mid, 1, hw, padding=0),
        ConvLayer(f"{name}.conv2", mid, mid, 3, hw, stride=stride, padding=1),
        ConvLayer(f"{name}.conv3", mid, out_ch, 1, hw // stride, padding=0),
    ]
    if stride != 1 or in_ch != out_ch:
        layers.append(
            ConvLayer(f"{name}.down", in_ch, out_ch, 1, hw, stride=stride, padding=0)
        )
    return layers


def resnet50() -> list[Layer]:
    layers: list[Layer] = [ConvLayer("conv1", 3, 64, 7, 224, stride=2, padding=3)]
    hw = 56
    in_ch = 64
    for stage, (mid, blocks, stride) in enumerate(
        [(64, 3, 1), (128, 4, 2), (256, 6, 2), (512, 3, 2)], start=2
    ):
        for b in range(blocks):
            s = stride if b == 0 else 1
            layers += _bottleneck(f"res{stage}.{b}", in_ch, mid, hw, s)
            if b == 0:
                hw //= stride
            in_ch = mid * 4
    layers.append(FcLayer("fc", 2048, 1000))
    return layers


NETWORKS = {"AlexNet": alexnet, "VGG16": vgg16, "ResNet50": resnet50}
