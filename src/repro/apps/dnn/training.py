"""Single-iteration training latency model (Figure 7).

The paper's baseline is PyTorch-style mixed-precision training: the
forward pass runs FP16 Tensor-Core GEMMs, while the backward pass — which
needs true FP32 — runs SIMT kernels ("the existing implementation only
applies SIMT-based kernels to mixed precision training due to the absence
of FP32 Tensor Core instructions"). M3XU replaces exactly those backward
GEMMs with native FP32 MMA, leaving everything else untouched — "3.6x
speedup for a backward pass that the existing mixed-precision method
cannot improve", 1.65x end-to-end on average.

Per network the model composes:

* forward GEMM time — FP16 tensor-core kernel model per layer,
* backward GEMM time — 2x each forward volume (dgrad + wgrad) on the
  FP32 SIMT kernel model (baseline) or the M3XU FP32 kernel (ours),
* non-GEMM time — activation/optimizer element traffic (``OTHER_BYTES``
  passes over the FP16 activations), identical for both designs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...gpusim.config import GPUSpec, a100_emulation
from ...kernels.registry import SGEMM_KERNELS
from .layers import Layer
from .models import NETWORKS

__all__ = ["TrainingLatency", "training_latency", "figure7", "PAPER_BWD_FRACTION"]

#: Backward-pass share of baseline mixed-precision runtime measured by the
#: paper on Nebula (Section VI-C2): "the backward pass that accounts for
#: 39.6%, 39.1%, and 46.5% runtime in VGG, ResNet, and AlexNet". The
#: non-GEMM time of the latency model is calibrated so the baseline
#: reproduces these fractions (the paper's own Amdahl decomposition).
PAPER_BWD_FRACTION = {"VGG16": 0.396, "ResNet50": 0.391, "AlexNet": 0.465}

#: Fallback non-GEMM model for networks without a measured profile:
#: effective passes over the activation footprint (normalisation,
#: activations, optimizer step, gradient copies) at streaming efficiency.
OTHER_PASSES = 9.0
OTHER_BW_EFF = 0.7

#: Batch size of one training iteration (Nebula full-size defaults).
DEFAULT_BATCH = 64


@dataclass(frozen=True)
class TrainingLatency:
    """Modelled one-iteration latency decomposition (seconds)."""

    network: str
    forward_s: float
    backward_s: float
    other_s: float

    @property
    def total_s(self) -> float:
        return self.forward_s + self.backward_s + self.other_s

    @property
    def backward_fraction(self) -> float:
        return self.backward_s / self.total_s


def _fp16_tc_gemm_time(problem, gpu: GPUSpec) -> float:
    """Forward-pass FP16 tensor-core GEMM time for one layer."""
    from ...gpusim.kernelmodel import estimate_time
    from ...gpusim.tiling import TileConfig
    from ...kernels.base import adaptive_gemm_spec
    from ...kernels.constants import TC_UTIL_NATIVE

    spec = adaptive_gemm_spec(
        "fp16_tc_gemm",
        problem,
        gpu,
        base_tile=TileConfig(tb_m=128, tb_n=128, tb_k=32, warps=8, stages=3),
        tc_mode="fp16",
        tc_macs=problem.macs,
        macs_per_mma=16 * 8 * 16,
        tc_util=TC_UTIL_NATIVE,
        element_bytes=2,
        out_bytes=2,
    )
    return estimate_time(spec, gpu).total_s


def training_latency(
    network: str,
    backward_kernel: str = "cutlass_simt_sgemm",
    batch: int = DEFAULT_BATCH,
    gpu: GPUSpec | None = None,
) -> TrainingLatency:
    """One-iteration latency with the given backward-pass GEMM kernel.

    ``backward_kernel`` is a Table IV FP32 kernel name —
    ``cutlass_simt_sgemm`` for the mixed-precision baseline,
    ``M3XU_sgemm_pipelined`` for the M3XU system.
    """
    gpu = gpu or a100_emulation()
    layers: list[Layer] = NETWORKS[network]()
    bwd_model = SGEMM_KERNELS[backward_kernel]
    baseline_model = SGEMM_KERNELS["cutlass_simt_sgemm"]

    from ...kernels.base import GemmProblem

    fwd = 0.0
    bwd = 0.0
    bwd_baseline = 0.0
    act_bytes = 0.0
    for layer in layers:
        p = layer.gemm(batch)
        fwd += _fp16_tc_gemm_time(p, gpu)
        # dgrad: dX[M, K] = dY[M, N] @ W^T[N, K]; wgrad: dW[K, N] = X^T @ dY.
        dgrad = GemmProblem(m=p.m, n=p.k, k=p.n)
        wgrad = GemmProblem(m=p.k, n=p.n, k=p.m)
        for q in (dgrad, wgrad):
            bwd += bwd_model.time(q, gpu)
            bwd_baseline += baseline_model.time(q, gpu)
        act_bytes += layer.activation_bytes(batch)

    # Non-GEMM time: calibrated to the paper's measured backward share of
    # the *baseline* run where available, else the activation-pass model.
    frac = PAPER_BWD_FRACTION.get(network)
    if frac is not None:
        other = max(0.0, bwd_baseline * (1.0 / frac - 1.0) - fwd)
    else:
        other = OTHER_PASSES * act_bytes / (gpu.dram_bw_gbs * 1e9 * OTHER_BW_EFF)
    return TrainingLatency(network=network, forward_s=fwd, backward_s=bwd, other_s=other)


def figure7(
    batch: int = DEFAULT_BATCH, gpu: GPUSpec | None = None
) -> dict[str, dict[str, TrainingLatency]]:
    """Figure 7 data: per network, baseline vs M3XU latency."""
    gpu = gpu or a100_emulation()
    out: dict[str, dict[str, TrainingLatency]] = {}
    for net in NETWORKS:
        out[net] = {
            "mixed_precision": training_latency(net, "cutlass_simt_sgemm", batch, gpu),
            "m3xu": training_latency(net, "M3XU_sgemm_pipelined", batch, gpu),
        }
    return out
