"""CNN layer shapes and their im2col GEMM problems.

The DNN case study (Section VI-C2, Figure 7) measures single-iteration
training latency of AlexNet, VGG and ResNet from the Nebula benchmark.
Convolutions lower to GEMMs:

* forward:  ``[B*OH*OW, OC] = [B*OH*OW, IC*KH*KW] @ [IC*KH*KW, OC]``
* dgrad:    same volume against the transposed filter,
* wgrad:    ``[IC*KH*KW, OC]`` accumulated over ``B*OH*OW``.

Each conv therefore contributes one forward GEMM and two backward GEMMs
of equal MAC volume; fully-connected layers are plain GEMMs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ...kernels.base import GemmProblem

__all__ = ["ConvLayer", "FcLayer", "Layer", "layer_gemms"]


@dataclass(frozen=True)
class ConvLayer:
    """One 2-D convolution layer."""

    name: str
    in_ch: int
    out_ch: int
    kernel: int
    in_hw: int
    stride: int = 1
    padding: int | None = None  # None = "same"-ish (kernel//2)

    @property
    def out_hw(self) -> int:
        pad = self.kernel // 2 if self.padding is None else self.padding
        return (self.in_hw + 2 * pad - self.kernel) // self.stride + 1

    def gemm(self, batch: int) -> GemmProblem:
        m = batch * self.out_hw * self.out_hw
        k = self.in_ch * self.kernel * self.kernel
        return GemmProblem(m=m, n=self.out_ch, k=k)

    def activation_bytes(self, batch: int) -> float:
        """FP16 activation traffic of the layer (in + out feature maps)."""
        inb = batch * self.in_ch * self.in_hw * self.in_hw * 2
        outb = batch * self.out_ch * self.out_hw * self.out_hw * 2
        return float(inb + outb)


@dataclass(frozen=True)
class FcLayer:
    """One fully-connected layer."""

    name: str
    in_features: int
    out_features: int

    def gemm(self, batch: int) -> GemmProblem:
        return GemmProblem(m=batch, n=self.out_features, k=self.in_features)

    def activation_bytes(self, batch: int) -> float:
        return float(batch * (self.in_features + self.out_features) * 2)


Layer = ConvLayer | FcLayer


def layer_gemms(layers: list[Layer], batch: int) -> list[GemmProblem]:
    """Forward GEMM problem per layer (backward doubles each volume)."""
    return [layer.gemm(batch) for layer in layers]


def total_macs(layers: list[Layer], batch: int) -> float:
    return float(sum(p.macs for p in layer_gemms(layers, batch)))


def round_up_pow2(x: int) -> int:
    """Pad a GEMM dimension to the tile-friendly next power of two."""
    return 1 << max(0, math.ceil(math.log2(max(x, 1))))
