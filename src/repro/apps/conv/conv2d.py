"""2-D convolution on the MXU stack (the paper's third critical kernel).

Section VI opens with "critical kernels, including GEMM, 2D-convolution,
and FFT". GPU convolutions lower to GEMM via im2col; this module provides
that lowering with an injectable SGEMM so the convolution runs on the
M3XU functional model, the SIMT reference, or any software scheme — plus
an FFT-domain convolution built on the GEMM-FFT, connecting the two
non-GEMM kernels the paper highlights.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["im2col", "conv2d_im2col", "conv2d_direct", "conv2d_fft"]

SGemmFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _out_hw(h: int, w: int, kh: int, kw: int, stride: int, padding: int) -> tuple[int, int]:
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (w + 2 * padding - kw) // stride + 1
    if oh < 1 or ow < 1:
        raise ValueError("kernel does not fit the padded input")
    return oh, ow


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Lower NCHW activations to the im2col matrix.

    Parameters
    ----------
    x:
        Activations, shape ``(N, C, H, W)``.
    kh, kw:
        Kernel extent.
    stride, padding:
        Convolution geometry (symmetric padding).

    Returns
    -------
    np.ndarray
        Shape ``(N * OH * OW, C * KH * KW)`` — one row per output pixel,
        one column per weight element, matching the forward-GEMM shape
        used by :mod:`repro.apps.dnn.layers`.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 4:
        raise ValueError("expected NCHW input")
    n, c, h, w = x.shape
    oh, ow = _out_hw(h, w, kh, kw, stride, padding)
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    # Gather all (kh, kw) shifted views; stride via slicing.
    cols = np.empty((n, c, kh, kw, oh, ow), dtype=np.float64)
    for i in range(kh):
        for j in range(kw):
            cols[:, :, i, j] = xp[
                :, :, i : i + stride * oh : stride, j : j + stride * ow : stride
            ]
    # (N, OH, OW, C, KH, KW) -> rows
    return cols.transpose(0, 4, 5, 1, 2, 3).reshape(n * oh * ow, c * kh * kw)


def conv2d_im2col(
    x: np.ndarray,
    weight: np.ndarray,
    stride: int = 1,
    padding: int = 0,
    sgemm: SGemmFn | None = None,
) -> np.ndarray:
    """2-D convolution as one GEMM: ``im2col(x) @ weight_matrix``.

    Parameters
    ----------
    x:
        ``(N, C, H, W)`` activations.
    weight:
        ``(OC, C, KH, KW)`` filters.
    sgemm:
        GEMM callable executing the lowered product (defaults to float64).

    Returns
    -------
    np.ndarray
        ``(N, OC, OH, OW)`` outputs.
    """
    if sgemm is None:
        sgemm = lambda a, b: a @ b  # noqa: E731
    x = np.asarray(x, dtype=np.float64)
    weight = np.asarray(weight, dtype=np.float64)
    if weight.ndim != 4:
        raise ValueError("expected OIHW weights")
    oc, c, kh, kw = weight.shape
    if x.shape[1] != c:
        raise ValueError(f"channel mismatch: x has {x.shape[1]}, weight has {c}")
    n = x.shape[0]
    oh, ow = _out_hw(x.shape[2], x.shape[3], kh, kw, stride, padding)
    cols = im2col(x, kh, kw, stride, padding)
    wmat = weight.reshape(oc, c * kh * kw).T  # (CKK, OC)
    out = sgemm(cols, wmat)  # (N*OH*OW, OC)
    return np.asarray(out).reshape(n, oh, ow, oc).transpose(0, 3, 1, 2)


def conv2d_direct(
    x: np.ndarray, weight: np.ndarray, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Straightforward nested-loop reference convolution (float64)."""
    x = np.asarray(x, dtype=np.float64)
    weight = np.asarray(weight, dtype=np.float64)
    n, c, h, w = x.shape
    oc, _, kh, kw = weight.shape
    oh, ow = _out_hw(h, w, kh, kw, stride, padding)
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out = np.zeros((n, oc, oh, ow))
    for i in range(oh):
        for j in range(ow):
            patch = xp[:, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
            out[:, :, i, j] = np.einsum("nckl,ockl->no", patch, weight)
    return out


def conv2d_fft(
    x: np.ndarray,
    weight: np.ndarray,
    cgemm: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
) -> np.ndarray:
    """'Same'-size stride-1 convolution in the Fourier domain.

    Uses the GEMM-based FFT (:mod:`repro.apps.fft`) along each image axis,
    so with an M3XU CGEMM injected the whole transform chain exercises the
    FP32C datapath — the frequency-domain-training motivation cited in
    Section I ([42]). Kernel extents must be odd; sizes are padded to the
    next power of two internally.

    Note: this computes *convolution* (kernel flipped), matching
    ``scipy.signal.convolve2d(..., mode="same")`` per channel-sum; the
    im2col path computes cross-correlation as deep-learning frameworks do.
    """
    from ..fft.gemmfft import gemm_fft

    x = np.asarray(x, dtype=np.float64)
    weight = np.asarray(weight, dtype=np.float64)
    n, c, h, w = x.shape
    oc, _, kh, kw = weight.shape
    if kh % 2 == 0 or kw % 2 == 0:
        raise ValueError("conv2d_fft requires odd kernel extents")

    size_h = 1 << int(np.ceil(np.log2(h + kh - 1)))
    size_w = 1 << int(np.ceil(np.log2(w + kw - 1)))

    def fft2(arr: np.ndarray) -> np.ndarray:
        step1 = gemm_fft(arr, cgemm=cgemm)
        return np.swapaxes(gemm_fft(np.swapaxes(step1, -1, -2), cgemm=cgemm), -1, -2)

    def ifft2(arr: np.ndarray) -> np.ndarray:
        step1 = gemm_fft(arr, cgemm=cgemm, inverse=True)
        out = np.swapaxes(
            gemm_fft(np.swapaxes(step1, -1, -2), cgemm=cgemm, inverse=True), -1, -2
        )
        return out / (arr.shape[-1] * arr.shape[-2])

    xf = np.zeros((n, c, size_h, size_w), dtype=complex)
    xf[:, :, :h, :w] = x
    wf = np.zeros((oc, c, size_h, size_w), dtype=complex)
    wf[:, :, :kh, :kw] = weight

    Xf = fft2(xf)
    Wf = fft2(wf)
    Yf = np.einsum("nchw,ochw->nohw", Xf, Wf)
    y = ifft2(Yf).real
    # 'same' window: centred on the kernel anchor.
    oh0, ow0 = kh // 2, kw // 2
    return y[:, :, oh0 : oh0 + h, ow0 : ow0 + w]
