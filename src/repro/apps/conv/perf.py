"""Convolution performance on the kernel models.

The paper evaluates 2-D convolution alongside GEMM; within its framework
a convolution *is* its im2col GEMM, so the model reuses the Table IV
kernels over the lowered shape, adding the im2col lowering traffic for
kernels that materialise the column matrix (the SIMT baseline path) vs
implicit-GEMM addressing for tensor-core kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...gpusim.config import GPUSpec, a100_emulation
from ...kernels.base import GemmProblem
from ...kernels.registry import SGEMM_KERNELS

__all__ = ["ConvShape", "conv_time", "conv_speedups"]


@dataclass(frozen=True)
class ConvShape:
    """One convolution problem (NCHW / OIHW)."""

    n: int
    c: int
    h: int
    w: int
    oc: int
    kh: int
    kw: int
    stride: int = 1
    padding: int = 1

    @property
    def oh(self) -> int:
        return (self.h + 2 * self.padding - self.kh) // self.stride + 1

    @property
    def ow(self) -> int:
        return (self.w + 2 * self.padding - self.kw) // self.stride + 1

    def gemm(self) -> GemmProblem:
        return GemmProblem(
            m=self.n * self.oh * self.ow,
            n=self.oc,
            k=self.c * self.kh * self.kw,
        )


def conv_time(
    shape: ConvShape,
    kernel: str = "M3XU_sgemm_pipelined",
    gpu: GPUSpec | None = None,
) -> float:
    """Modelled forward-convolution time with the given GEMM kernel.

    SIMT kernels materialise the im2col matrix (one extra streaming write of
    the column matrix; its reads are the GEMM's A reads); tensor-core
    kernels use implicit GEMM (no extra traffic).
    """
    gpu = gpu or a100_emulation()
    p = shape.gemm()
    t = SGEMM_KERNELS[kernel].time(p, gpu)
    if "simt" in kernel:
        cols_bytes = 1.0 * p.m * p.k * 4.0
        t += cols_bytes / (gpu.dram_bw_gbs * 1e9 * 0.8)
    return t


def conv_speedups(
    shapes: list[ConvShape] | None = None, gpu: GPUSpec | None = None
) -> list[tuple[ConvShape, float]]:
    """M3XU speedup over the SIMT convolution per shape."""
    gpu = gpu or a100_emulation()
    shapes = shapes or [
        ConvShape(32, 64, 56, 56, 64, 3, 3),
        ConvShape(32, 128, 28, 28, 128, 3, 3),
        ConvShape(32, 256, 14, 14, 256, 3, 3),
        ConvShape(32, 512, 7, 7, 512, 3, 3),
    ]
    out = []
    for s in shapes:
        base = conv_time(s, "cutlass_simt_sgemm", gpu)
        ours = conv_time(s, "M3XU_sgemm_pipelined", gpu)
        out.append((s, base / ours))
    return out
