"""2-D convolution on the MXU stack (im2col, direct, FFT-domain)."""

from .conv2d import conv2d_direct, conv2d_fft, conv2d_im2col, im2col
from .perf import ConvShape, conv_speedups, conv_time

__all__ = [
    "im2col",
    "conv2d_im2col",
    "conv2d_direct",
    "conv2d_fft",
    "ConvShape",
    "conv_time",
    "conv_speedups",
]
