"""Case-study applications: FFT, DNN training, MRF, kNN, quantum."""

from . import conv, dnn, fft, knn, mrf, quantum, scientific

__all__ = ["fft", "dnn", "mrf", "knn", "quantum", "conv", "scientific"]
