"""Scientific-computing case study: FP32-sensitive iterative solvers."""

from .cg import CgResult, conjugate_gradient, diffusion_2d, poisson_1d

__all__ = ["CgResult", "conjugate_gradient", "poisson_1d", "diffusion_2d"]
