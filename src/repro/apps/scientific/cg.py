"""Conjugate-gradient solver: the scientific-computing motivation.

Section I motivates native FP32 with "scientific applications ... are
sensitive to numerical errors and most existing implementations must rely
on IEEE 754 standard single-precision floating-point numbers to function
correctly" (citing, among others, GPU preconditioned CG [29]). This case
study makes the sensitivity concrete: a CG solve whose matrix products run
through an injectable GEMM converges normally on the M3XU FP32 model and
stalls (or diverges) when the products drop to FP16 tensor-core precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["CgResult", "conjugate_gradient", "poisson_1d", "diffusion_2d"]

MatVecGemm = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass(frozen=True)
class CgResult:
    """Outcome of one CG solve.

    ``residual_history`` tracks the *recurrence* residual CG maintains
    internally; ``true_residual`` is ``||b - A x|| / ||b||`` recomputed in
    float64 at exit. Low-precision mat-vecs make the two diverge — the
    recurrence claims convergence while the actual solution has stalled,
    the silent failure mode that forces scientific codes onto FP32.
    """

    x: np.ndarray
    iterations: int
    converged: bool
    residual_history: tuple[float, ...]
    true_residual: float

    @property
    def final_residual(self) -> float:
        """Final recurrence residual (what the solver believes)."""
        return self.residual_history[-1]

    @property
    def silently_wrong(self) -> bool:
        """Converged by its own account, but the true residual disagrees
        by more than an order of magnitude."""
        return self.converged and self.true_residual > 10 * self.final_residual


def poisson_1d(n: int) -> np.ndarray:
    """The 1-D Poisson (tridiagonal [-1, 2, -1]) SPD matrix, dense."""
    a = 2.0 * np.eye(n)
    idx = np.arange(n - 1)
    a[idx, idx + 1] = -1.0
    a[idx + 1, idx] = -1.0
    return a


def diffusion_2d(n: int) -> np.ndarray:
    """The 2-D 5-point Laplacian on an n x n grid (SPD, size n^2)."""
    one_d = poisson_1d(n)
    eye = np.eye(n)
    return np.kron(one_d, eye) + np.kron(eye, one_d)


def conjugate_gradient(
    a: np.ndarray,
    b: np.ndarray,
    gemm: MatVecGemm | None = None,
    tol: float = 1e-5,
    max_iter: int | None = None,
) -> CgResult:
    """Solve ``A x = b`` (SPD ``A``) by CG, mat-vecs through *gemm*.

    The matrix-vector products — the GEMM-shaped work a GPU implementation
    offloads — run through the injected GEMM callable; the scalar
    recurrences stay in float64 (they are negligible work and isolating
    the product precision is the point of the study).
    """
    if gemm is None:
        gemm = lambda m, v: m @ v  # noqa: E731
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n = b.shape[0]
    if a.shape != (n, n):
        raise ValueError(f"A must be {n}x{n}, got {a.shape}")
    max_iter = max_iter or 4 * n

    def _finish(x, it, converged, history):
        true_res = float(np.linalg.norm(b - a @ x)) / b_norm
        return CgResult(x, it, converged, tuple(history), true_res)

    x = np.zeros(n)
    r = b.copy()
    p = r.copy()
    rs = float(r @ r)
    b_norm = float(np.linalg.norm(b)) or 1.0
    history = [float(np.sqrt(rs)) / b_norm]

    for it in range(1, max_iter + 1):
        ap = np.asarray(gemm(a, p[:, None]))[:, 0]
        denom = float(p @ ap)
        if denom <= 0 or not np.isfinite(denom):
            # Lost positive-definiteness to rounding: hard failure.
            return _finish(x, it, False, history)
        alpha = rs / denom
        x = x + alpha * p
        r = r - alpha * ap
        rs_new = float(r @ r)
        history.append(float(np.sqrt(rs_new)) / b_norm)
        if history[-1] < tol:
            return _finish(x, it, True, history)
        p = r + (rs_new / rs) * p
        rs = rs_new
    return _finish(x, max_iter, False, history)
