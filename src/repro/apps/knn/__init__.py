"""kNN / K-Means case study: GEMM-based statistical learning (Fig. 9)."""

from .kmeans import KMeansResult, cluster_quality, kmeans
from .knn import knn_search, pairwise_sq_distances, recall_at_k
from .perf import KnnPerf, figure9, knn_time

__all__ = [
    "pairwise_sq_distances",
    "knn_search",
    "recall_at_k",
    "KnnPerf",
    "knn_time",
    "figure9",
    "kmeans",
    "KMeansResult",
    "cluster_quality",
]
