"""kNN performance model: the Figure 9 speedup heatmap.

Runtime decomposes into the distance SGEMM (n_query x n_ref x dim) and
the per-candidate selection pass (kNN-CUDA's modified insertion sort
reading the distance matrix back). M3XU accelerates only the GEMM, so
the speedup tracks the GEMM's share of runtime — "as the portion of
runtime contributed by GEMM increases along with input sizes, M3XU
reveals more performance gain and tops at 1.8x for large input sizes."
"""

from __future__ import annotations

from dataclasses import dataclass

from ...gpusim.config import GPUSpec, a100_emulation
from ...kernels.base import GemmProblem
from ...kernels.registry import SGEMM_KERNELS

__all__ = ["KnnPerf", "knn_time", "figure9"]

#: Selection-pass cost per distance-matrix candidate (seconds). kNN-CUDA
#: runs one thread per query sweeping its distance column with a modified
#: insertion sort — an uncoalesced, serialisation-heavy pass. The constant
#: is calibrated so the GEMM share of runtime at the largest Figure 9
#: configuration (65536 points, dim 4096) reproduces the paper's 1.8x
#: ceiling (GEMM ~= 60% of baseline runtime there).
_SELECT_S_PER_ENTRY = 0.35e-9


@dataclass(frozen=True)
class KnnPerf:
    n_points: int
    dim: int
    k: int
    baseline_s: float
    m3xu_s: float

    @property
    def speedup(self) -> float:
        return self.baseline_s / self.m3xu_s


def knn_time(
    n_points: int,
    dim: int,
    k: int = 16,
    use_m3xu: bool = False,
    gpu: GPUSpec | None = None,
) -> float:
    """Modelled kNN time: n_points/2 queries against n_points/2 references
    (the paper's "total reference and query points")."""
    gpu = gpu or a100_emulation()
    nq = nr = max(1, n_points // 2)
    problem = GemmProblem(m=nq, n=nr, k=dim)
    kernel = SGEMM_KERNELS["M3XU_sgemm_pipelined" if use_m3xu else "cutlass_simt_sgemm"]
    gemm_s = kernel.time(problem, gpu)

    entries = float(nq) * nr
    # Scale the per-entry cost with the clock of the modelled GPU so the
    # calibration (done at the A100 emulation clock) transfers.
    select_s = _SELECT_S_PER_ENTRY * entries * (1.17 / gpu.clock_ghz)
    return gemm_s + select_s + gpu.launch_overhead_s


def figure9(
    point_counts: list[int] | None = None,
    dims: list[int] | None = None,
    k: int = 16,
    gpu: GPUSpec | None = None,
) -> list[KnnPerf]:
    """The Figure 9 heatmap: speedup per (total points, dimension)."""
    gpu = gpu or a100_emulation()
    point_counts = point_counts or [2048, 8192, 16384, 65536]
    dims = dims or [512, 1024, 2048, 4096]
    out = []
    for n in point_counts:
        for d in dims:
            base = knn_time(n, d, k, use_m3xu=False, gpu=gpu)
            ours = knn_time(n, d, k, use_m3xu=True, gpu=gpu)
            out.append(KnnPerf(n_points=n, dim=d, k=k, baseline_s=base, m3xu_s=ours))
    return out
