"""K-Means clustering via the GEMM distance trick (statistical learning).

Section VI-C4: "Conventional statistical learning methods, like
K-Nearest Neighbor (KNN) and K-Means, are also SGEMM intensive but
precision-sensitive." The assignment step of Lloyd's algorithm is the
same ``|x|^2 + |c|^2 - 2 x.c`` GEMM as kNN; this implementation routes it
through an injectable SGEMM so the clustering runs on the M3XU model —
and exposes the same small-magnitude failure of FP16 tensor cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .knn import pairwise_sq_distances

__all__ = ["KMeansResult", "kmeans", "cluster_quality"]

SGemmFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of one K-Means run."""

    centroids: np.ndarray
    labels: np.ndarray
    inertia: float
    iterations: int
    converged: bool


def kmeans(
    x: np.ndarray,
    k: int,
    sgemm: SGemmFn | None = None,
    max_iter: int = 100,
    tol: float = 1e-6,
    seed: int = 0,
) -> KMeansResult:
    """Lloyd's algorithm with GEMM-based assignment.

    Parameters
    ----------
    x:
        (N, D) points.
    k:
        Cluster count (k-means++-style farthest-point init, deterministic
        per *seed*).
    sgemm:
        GEMM callable for the assignment distances (float64 default).
    """
    x = np.asarray(x, dtype=np.float64)
    n, _ = x.shape
    if not (1 <= k <= n):
        raise ValueError("k must be in [1, n_points]")
    rng = np.random.default_rng(seed)

    # k-means++ seeding (distances in float64; the study targets the
    # iteration loop's GEMMs, not the init).
    centroids = [x[rng.integers(n)]]
    for _ in range(1, k):
        d2 = np.min(
            ((x[:, None, :] - np.array(centroids)[None, :, :]) ** 2).sum(-1), axis=1
        )
        total = d2.sum()
        if total <= 0:
            centroids.append(x[rng.integers(n)])
            continue
        centroids.append(x[rng.choice(n, p=d2 / total)])
    c = np.array(centroids)

    labels = np.zeros(n, dtype=int)
    inertia = np.inf
    for it in range(1, max_iter + 1):
        d = pairwise_sq_distances(x, c, sgemm)
        labels = np.argmin(d, axis=1)
        new_inertia = float(d[np.arange(n), labels].sum())
        new_c = np.empty_like(c)
        for j in range(k):
            members = x[labels == j]
            new_c[j] = members.mean(axis=0) if len(members) else x[rng.integers(n)]
        moved = float(np.max(np.abs(new_c - c)))
        c = new_c
        if abs(inertia - new_inertia) <= tol * max(abs(inertia), 1.0) or moved <= tol:
            return KMeansResult(c, labels, new_inertia, it, True)
        inertia = new_inertia
    return KMeansResult(c, labels, inertia, max_iter, False)


def cluster_quality(labels: np.ndarray, truth: np.ndarray) -> float:
    """Best-case label agreement (purity): the fraction of points whose
    cluster's majority true class matches their own."""
    labels = np.asarray(labels)
    truth = np.asarray(truth)
    if labels.shape != truth.shape:
        raise ValueError("shapes must match")
    correct = 0
    for lab in np.unique(labels):
        members = truth[labels == lab]
        if members.size:
            counts = np.bincount(members)
            correct += counts.max()
    return correct / truth.size
