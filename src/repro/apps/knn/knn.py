"""k-nearest-neighbour search via the SGEMM distance trick.

The kNN-CUDA baseline of Section VI-C4 computes all query-reference
squared Euclidean distances as

``D[q, r] = |Q_q|^2 + |R_r|^2 - 2 * (Q @ R^T)[q, r]``

— one big ``cublas_sgemm`` plus norm broadcasts — then selects the K
smallest per query. The GEMM is precision-critical: for data with very
small magnitudes, FP16 tensor-core GEMM underflows/cancels and "will
produce meaningless computation results", which is why the baseline stays
on FP32 CUDA cores and why M3XU's lossless FP32 MMA can step in.

Any SGEMM callable can be injected so the same search runs on the SIMT
reference, the FP16 tensor core, or the M3XU functional model.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["pairwise_sq_distances", "knn_search", "recall_at_k"]

SGemmFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


def pairwise_sq_distances(
    queries: np.ndarray,
    refs: np.ndarray,
    sgemm: SGemmFn | None = None,
) -> np.ndarray:
    """Squared Euclidean distance matrix (Q x R) via the GEMM identity."""
    if sgemm is None:
        sgemm = lambda a, b: a @ b  # noqa: E731
    q = np.asarray(queries, dtype=np.float64)
    r = np.asarray(refs, dtype=np.float64)
    if q.shape[1] != r.shape[1]:
        raise ValueError("queries and references must share the feature dim")
    cross = sgemm(q, r.T)
    qn = np.sum(q * q, axis=1)[:, None]
    rn = np.sum(r * r, axis=1)[None, :]
    # Clamp tiny negatives produced by cancellation in low-precision GEMMs.
    return np.maximum(qn + rn - 2.0 * cross, 0.0)


def knn_search(
    queries: np.ndarray,
    refs: np.ndarray,
    k: int = 16,
    sgemm: SGemmFn | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Indices and squared distances of the K nearest references per query.

    Returns ``(indices, distances)`` of shape (Q, k), nearest first.
    """
    if k < 1 or k > refs.shape[0]:
        raise ValueError("k must be in [1, n_refs]")
    d = pairwise_sq_distances(queries, refs, sgemm)
    part = np.argpartition(d, k - 1, axis=1)[:, :k]
    rows = np.arange(d.shape[0])[:, None]
    order = np.argsort(d[rows, part], axis=1)
    idx = part[rows, order]
    return idx, d[rows, idx]


def recall_at_k(found: np.ndarray, truth: np.ndarray) -> float:
    """Fraction of true K-neighbours recovered (set overlap per query)."""
    if found.shape != truth.shape:
        raise ValueError("shapes must match")
    hits = 0
    for f, t in zip(found, truth):
        hits += len(set(f.tolist()) & set(t.tolist()))
    return hits / truth.size
