"""Statevector quantum-circuit simulation via complex GEMM.

Section I motivates FP32C with quantum simulation: "simulating quantum
computing needs complex matrix multiplications to represent qubits and
their operations". This module is the corresponding extension workload
(not part of the paper's evaluation): gate application is expressed as a
batched complex matrix multiply, so the whole simulator runs on any
injected CGEMM — including the M3XU functional model.

Applying a k-qubit gate U (2^k x 2^k) to qubits Q of an n-qubit state:
reshape the 2^n amplitudes so the target-qubit axes are contiguous, view
them as a (2^k, 2^(n-k)) matrix, and left-multiply by U — one CGEMM.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = ["Statevector", "apply_gate"]

CGemmFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


def apply_gate(
    state: np.ndarray,
    gate: np.ndarray,
    qubits: Sequence[int],
    cgemm: CGemmFn | None = None,
) -> np.ndarray:
    """Apply a k-qubit gate to the given qubits of an n-qubit statevector.

    Qubit 0 is the least-significant amplitude index bit.
    """
    if cgemm is None:
        cgemm = lambda a, b: a @ b  # noqa: E731
    state = np.asarray(state, dtype=np.complex128)
    n_amp = state.shape[0]
    n = n_amp.bit_length() - 1
    if 1 << n != n_amp:
        raise ValueError("state length must be a power of two")
    k = len(qubits)
    if gate.shape != (1 << k, 1 << k):
        raise ValueError(f"gate must be {1 << k}x{1 << k} for {k} qubits")
    if len(set(qubits)) != k or any(q < 0 or q >= n for q in qubits):
        raise ValueError("invalid qubit indices")

    # Move the target-qubit axes to the front. Tensor axes are reversed
    # relative to bit indices (axis 0 = most significant bit).
    tensor = state.reshape([2] * n)
    axes = [n - 1 - q for q in qubits]
    rest = [a for a in range(n) if a not in axes]
    perm = axes + rest
    moved = np.transpose(tensor, perm).reshape(1 << k, -1)
    out = cgemm(np.asarray(gate, dtype=np.complex128), moved)
    # Undo the permutation.
    out_t = out.reshape([2] * n)
    inv = np.argsort(perm)
    return np.transpose(out_t, inv).reshape(-1)


class Statevector:
    """A mutable n-qubit statevector with CGEMM-backed gate application."""

    #: Common gates.
    H = np.array([[1, 1], [1, -1]], dtype=np.complex128) / np.sqrt(2)
    X = np.array([[0, 1], [1, 0]], dtype=np.complex128)
    Z = np.array([[1, 0], [0, -1]], dtype=np.complex128)
    S = np.array([[1, 0], [0, 1j]], dtype=np.complex128)
    CNOT = np.array(
        [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]],
        dtype=np.complex128,
    )

    def __init__(self, n_qubits: int, cgemm: CGemmFn | None = None) -> None:
        if n_qubits < 1 or n_qubits > 24:
            raise ValueError("n_qubits must be in [1, 24]")
        self.n_qubits = n_qubits
        self.cgemm = cgemm
        self.state = np.zeros(1 << n_qubits, dtype=np.complex128)
        self.state[0] = 1.0

    def apply(self, gate: np.ndarray, *qubits: int) -> "Statevector":
        self.state = apply_gate(self.state, gate, qubits, self.cgemm)
        return self

    def h(self, q: int) -> "Statevector":
        return self.apply(self.H, q)

    def x(self, q: int) -> "Statevector":
        return self.apply(self.X, q)

    def z(self, q: int) -> "Statevector":
        return self.apply(self.Z, q)

    def cnot(self, control: int, target: int) -> "Statevector":
        # CNOT's matrix uses |control, target> ordering: the control is
        # the most-significant gate bit, which is qubits[0] in apply().
        return self.apply(self.CNOT, control, target)

    def probabilities(self) -> np.ndarray:
        return np.abs(self.state) ** 2

    def norm(self) -> float:
        return float(np.linalg.norm(self.state))
