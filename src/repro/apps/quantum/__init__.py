"""Quantum statevector simulation on complex GEMM (Section I motivation)."""

from .statevector import Statevector, apply_gate

__all__ = ["Statevector", "apply_gate"]
