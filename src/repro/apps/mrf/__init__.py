"""MRF case study: EPG dictionary generation + CGEMM matching (Figure 8)."""

from .dictionary import AtomGrid, MrfDictionary, generate_dictionary, match_fingerprints
from .epg import EpgSimulator, FispSequence, rf_rotation_matrix
from .perf import MrfPerf, dictgen_time, figure8

__all__ = [
    "EpgSimulator",
    "FispSequence",
    "rf_rotation_matrix",
    "AtomGrid",
    "MrfDictionary",
    "generate_dictionary",
    "match_fingerprints",
    "MrfPerf",
    "dictgen_time",
    "figure8",
]
