"""MRF dictionary generation and matching (the SnapMRF pipeline).

Dictionary generation simulates one EPG signal per (T1, T2) atom; the
matching phase correlates measured voxel signals against every atom with
a complex GEMM (normalised inner products) and takes the argmax — the
``cublas_cgemm`` call the paper's Figure 8 baseline spends 22% of its
dictionary-generation runtime in (SnapMRF fuses generation and
compression, which is where its CGEMM sits; we expose the same knob via
the perf model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .epg import EpgSimulator, FispSequence

__all__ = ["AtomGrid", "generate_dictionary", "match_fingerprints", "MrfDictionary"]

CGemmFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass(frozen=True)
class AtomGrid:
    """The (T1, T2) parameter grid of a dictionary."""

    t1_ms: np.ndarray
    t2_ms: np.ndarray

    @staticmethod
    def standard(n_t1: int = 40, n_t2: int = 40) -> "AtomGrid":
        """Log-spaced grid over physiological ranges, T2 < T1 enforced."""
        t1 = np.geomspace(100.0, 5000.0, n_t1)
        t2 = np.geomspace(10.0, 500.0, n_t2)
        tt1, tt2 = np.meshgrid(t1, t2, indexing="ij")
        mask = tt2 < tt1
        return AtomGrid(t1_ms=tt1[mask], t2_ms=tt2[mask])

    @property
    def n_atoms(self) -> int:
        return len(self.t1_ms)


@dataclass
class MrfDictionary:
    """A generated dictionary: atoms x timepoints signals + parameters."""

    grid: AtomGrid
    signals: np.ndarray  # (A, T) complex, L2-normalised rows

    @property
    def n_atoms(self) -> int:
        return self.signals.shape[0]

    @property
    def n_timepoints(self) -> int:
        return self.signals.shape[1]


def generate_dictionary(
    grid: AtomGrid,
    seq: FispSequence | None = None,
    n_states: int = 21,
) -> MrfDictionary:
    """Simulate and row-normalise the dictionary."""
    seq = seq or FispSequence.standard()
    sim = EpgSimulator(n_states=n_states)
    sig = sim.simulate(grid.t1_ms, grid.t2_ms, seq)
    norms = np.linalg.norm(sig, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return MrfDictionary(grid=grid, signals=sig / norms)


def match_fingerprints(
    dictionary: MrfDictionary,
    voxels: np.ndarray,
    cgemm: CGemmFn | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dictionary matching: argmax of |<atom, voxel>| over atoms.

    Parameters
    ----------
    dictionary:
        The normalised dictionary.
    voxels:
        (V, T) complex measured fingerprints.
    cgemm:
        Complex GEMM callable used for the correlation matrix (inject the
        M3XU functional CGEMM to exercise the hardware path); float64
        matmul by default.

    Returns
    -------
    (t1_ms, t2_ms, score):
        Matched parameters and correlation magnitude per voxel.
    """
    if cgemm is None:
        cgemm = lambda a, b: a @ b  # noqa: E731
    voxels = np.asarray(voxels, dtype=np.complex128)
    vn = voxels / np.maximum(np.linalg.norm(voxels, axis=1, keepdims=True), 1e-30)
    # Correlation: (A, T) @ (T, V) with the conjugated dictionary.
    corr = cgemm(np.conj(dictionary.signals), vn.T)
    scores = np.abs(corr)
    best = np.argmax(scores, axis=0)
    v_idx = np.arange(voxels.shape[0])
    return (
        dictionary.grid.t1_ms[best],
        dictionary.grid.t2_ms[best],
        scores[best, v_idx],
    )
