"""MRF dictionary-generation performance model (Figure 8).

The paper: "the dictionary generation phase takes 98.2% of total run
time. CGEMM accounts for 22% of the runtime in the dictionary generation
phase. ... M3XU achieves up to 1.26x speedup in end-to-end latency of
dictionary generation phase over the cublas_cgemm-based baseline."

The model composes the phase from its two parts:

* the EPG state-evolution work (elementwise complex arithmetic on SIMT,
  identical for both systems), and
* the CGEMM work (state compression / SVD projection products), whose
  share grows with dictionary size from ~18% to ~28% around the measured
  22% midpoint — larger dictionaries amortise the per-TR elementwise
  overhead over wider GEMMs.

M3XU accelerates only the CGEMM share, at the Figure 4(b) kernel ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...gpusim.config import GPUSpec, a100_emulation
from ...kernels.base import GemmProblem
from ...kernels.registry import CGEMM_KERNELS

__all__ = ["MrfPerf", "dictgen_time", "figure8"]

#: EPG elementwise lane-ops per atom per TR per retained state: complex
#: 3x3 mix (36 real MACs) + relaxation/shift overheads.
_EPG_OPS_PER_STATE = 85.0
_N_STATES = 21


@dataclass(frozen=True)
class MrfPerf:
    n_atoms: int
    n_tr: int
    baseline_s: float
    m3xu_s: float
    cgemm_fraction: float

    @property
    def speedup(self) -> float:
        return self.baseline_s / self.m3xu_s


def _cgemm_problem(n_atoms: int, n_tr: int) -> GemmProblem:
    """The compression CGEMM: atoms x rank projection over timepoints.

    SnapMRF projects the dictionary onto a rank-r SVD basis (r ~ n_tr/2)
    while generating it."""
    rank = max(32, n_tr // 2)
    return GemmProblem(m=n_atoms, n=rank, k=n_tr, complex=True)


def dictgen_time(
    n_atoms: int,
    n_tr: int = 500,
    use_m3xu: bool = False,
    gpu: GPUSpec | None = None,
) -> tuple[float, float]:
    """(total seconds, cgemm fraction of the baseline) for one dictionary."""
    gpu = gpu or a100_emulation()
    # EPG elementwise time on SIMT (identical for both systems).
    lane_rate = gpu.n_sms * gpu.fp32_cores_per_sm * gpu.clock_ghz * 1e9 * 0.6
    # One fused EPG-step kernel launch per TR dominates small dictionaries.
    epg_s = (
        _EPG_OPS_PER_STATE * _N_STATES * n_atoms * n_tr / lane_rate
        + n_tr * gpu.launch_overhead_s
    )

    problem = _cgemm_problem(n_atoms, n_tr)
    kernel = CGEMM_KERNELS["M3XU_cgemm_pipelined" if use_m3xu else "cutlass_simt_cgemm"]
    cgemm_s = kernel.time(problem, gpu)

    base_cgemm_s = CGEMM_KERNELS["cutlass_simt_cgemm"].time(problem, gpu)
    frac = base_cgemm_s / (base_cgemm_s + epg_s)
    return epg_s + cgemm_s, frac


def figure8(
    atom_counts: list[int] | None = None,
    n_tr: int = 500,
    gpu: GPUSpec | None = None,
) -> list[MrfPerf]:
    """Figure 8 series: dictionary-generation speedup vs dictionary size."""
    gpu = gpu or a100_emulation()
    atom_counts = atom_counts or [2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000]
    out = []
    for a in atom_counts:
        base, frac = dictgen_time(a, n_tr, use_m3xu=False, gpu=gpu)
        ours, _ = dictgen_time(a, n_tr, use_m3xu=True, gpu=gpu)
        out.append(
            MrfPerf(n_atoms=a, n_tr=n_tr, baseline_s=base, m3xu_s=ours, cgemm_fraction=frac)
        )
    return out
