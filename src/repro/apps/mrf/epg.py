"""Extended-phase-graph (EPG) signal simulation for MRF.

Magnetic-resonance fingerprinting (Section VI-C3) generates a dictionary
of signal evolutions, one per (T1, T2) tissue-parameter pair, by
simulating the spin response to a pseudo-random pulse sequence. SnapMRF
does this with the EPG formalism: the magnetisation is a set of complex
configuration states (F+, F-, Z) evolved per repetition (TR) through

1. an RF-pulse mixing step — a complex 3x3 rotation applied across all
   states (complex matrix arithmetic, the CGEMM-heavy part),
2. T1/T2 relaxation — elementwise exponential decays,
3. gradient dephasing — a shift of the F-state ladder.

The implementation is vectorised over the whole (T1, T2) atom grid, so a
dictionary of thousands of atoms simulates in one pass per TR.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["EpgSimulator", "rf_rotation_matrix", "FispSequence"]


def rf_rotation_matrix(flip_rad: float, phase_rad: float = 0.0) -> np.ndarray:
    """The 3x3 complex EPG mixing matrix of an RF pulse (Weigel 2015).

    Acts on the state vector (F+_k, F-_k, Z_k) for every dephasing order k.
    """
    a = flip_rad
    p = phase_rad
    ei = np.exp(1j * p)
    return np.array(
        [
            [np.cos(a / 2) ** 2, ei**2 * np.sin(a / 2) ** 2, -1j * ei * np.sin(a)],
            [np.conj(ei) ** 2 * np.sin(a / 2) ** 2, np.cos(a / 2) ** 2, 1j * np.conj(ei) * np.sin(a)],
            [-0.5j * np.conj(ei) * np.sin(a), 0.5j * ei * np.sin(a), np.cos(a)],
        ],
        dtype=np.complex128,
    )


@dataclass(frozen=True)
class FispSequence:
    """A FISP-MRF pulse sequence: per-TR flip angles and timings (ms)."""

    flip_deg: np.ndarray
    tr_ms: float = 12.0
    te_ms: float = 4.0

    @staticmethod
    def standard(n_tr: int = 500, seed: int = 7) -> "FispSequence":
        """The usual smoothly-varying pseudo-random flip-angle train."""
        rng = np.random.default_rng(seed)
        t = np.arange(n_tr)
        base = 10.0 + 50.0 * np.abs(np.sin(2 * np.pi * t / 250.0))
        jitter = rng.normal(0.0, 2.0, size=n_tr)
        return FispSequence(flip_deg=np.clip(base + jitter, 1.0, 80.0))

    @property
    def n_tr(self) -> int:
        return len(self.flip_deg)


class EpgSimulator:
    """Vectorised EPG simulation over an atom grid.

    Parameters
    ----------
    n_states:
        Dephasing orders retained (the F/Z ladder depth). 20-30 suffices
        for FISP sequences.
    """

    def __init__(self, n_states: int = 21) -> None:
        if n_states < 2:
            raise ValueError("need at least 2 EPG states")
        self.n_states = n_states

    def simulate(
        self,
        t1_ms: np.ndarray,
        t2_ms: np.ndarray,
        seq: FispSequence,
    ) -> np.ndarray:
        """Signal evolutions for every (T1, T2) atom.

        Parameters
        ----------
        t1_ms, t2_ms:
            1-D arrays of equal length A (atom count). Values must be
            positive; the physical constraint T2 <= T1 is the caller's
            business (dictionaries usually enforce it).

        Returns
        -------
        np.ndarray
            complex128 array of shape (A, n_tr): the F0 echo amplitude at
            each TR — the dictionary rows (unnormalised).
        """
        t1 = np.asarray(t1_ms, dtype=np.float64)
        t2 = np.asarray(t2_ms, dtype=np.float64)
        if t1.shape != t2.shape or t1.ndim != 1:
            raise ValueError("t1_ms and t2_ms must be 1-D arrays of equal length")
        if np.any(t1 <= 0) or np.any(t2 <= 0):
            raise ValueError("relaxation times must be positive")
        n_atoms = t1.shape[0]
        k = self.n_states

        # State tensors: (A, 3, K) — F+, F-, Z ladders per atom.
        state = np.zeros((n_atoms, 3, k), dtype=np.complex128)
        state[:, 2, 0] = 1.0  # equilibrium Mz

        e1_tr = np.exp(-seq.tr_ms / t1)[:, None]
        e2_tr = np.exp(-seq.tr_ms / t2)[:, None]

        out = np.empty((n_atoms, seq.n_tr), dtype=np.complex128)
        for t, flip in enumerate(np.deg2rad(seq.flip_deg)):
            # RF mixing: one 3x3 complex matrix applied to all states of
            # all atoms — a batched CGEMM (3 x 3K per atom).
            rot = rf_rotation_matrix(flip, phase_rad=np.pi / 2 if t % 2 == 0 else -np.pi / 2)
            state = np.einsum("ij,ajk->aik", rot, state)
            # Echo: the F0+ state at TE (T2 decay to the echo time).
            out[:, t] = state[:, 0, 0] * np.exp(-seq.te_ms / t2)
            # Relaxation over the TR.
            state[:, 0, :] *= e2_tr
            state[:, 1, :] *= e2_tr
            state[:, 2, :] *= e1_tr
            state[:, 2, 0] += 1.0 - e1_tr[:, 0]  # Mz regrowth
            # Gradient dephasing: shift the transverse ladders.
            state[:, 0, 1:] = state[:, 0, :-1]
            state[:, 0, 0] = np.conj(state[:, 1, 1])
            state[:, 1, :-1] = state[:, 1, 1:]
            state[:, 1, -1] = 0.0
        return out
