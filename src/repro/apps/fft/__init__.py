"""GEMM-based FFT: functional transform + Figure 6 performance models."""

from .gemmfft import CGemmFn, dft_matrix, fft_forward, gemm_fft
from .perf import FftPerf, cufft_time, fft_speedups, m3xu_fft_time, tcfft_time
from .utils import batch_fft, fft2, ifft, ifft2, irfft, rfft

__all__ = [
    "dft_matrix",
    "gemm_fft",
    "fft_forward",
    "CGemmFn",
    "FftPerf",
    "cufft_time",
    "tcfft_time",
    "m3xu_fft_time",
    "fft_speedups",
    "fft2",
    "ifft2",
    "rfft",
    "irfft",
    "ifft",
    "batch_fft",
]
