"""Higher-level transforms on top of the GEMM-FFT core.

Batched, 2-D, real-input and inverse conveniences, all built on
:func:`~repro.apps.fft.gemmfft.gemm_fft` so any injected CGEMM (M3XU,
software schemes, reference) drives every variant.
"""

from __future__ import annotations

import numpy as np

from .gemmfft import CGemmFn, gemm_fft

__all__ = ["fft2", "ifft2", "rfft", "irfft", "ifft", "batch_fft"]


def ifft(x: np.ndarray, cgemm: CGemmFn | None = None) -> np.ndarray:
    """Normalised inverse FFT along the last axis."""
    x = np.asarray(x, dtype=np.complex128)
    return gemm_fft(x, cgemm=cgemm, inverse=True) / x.shape[-1]


def batch_fft(x: np.ndarray, cgemm: CGemmFn | None = None) -> np.ndarray:
    """FFT along the last axis of an arbitrary-rank batch (alias with an
    explicit name; ``gemm_fft`` already batches)."""
    return gemm_fft(x, cgemm=cgemm)


def fft2(x: np.ndarray, cgemm: CGemmFn | None = None) -> np.ndarray:
    """2-D FFT over the last two axes (both power-of-two)."""
    x = np.asarray(x, dtype=np.complex128)
    step = gemm_fft(x, cgemm=cgemm)
    return np.swapaxes(gemm_fft(np.swapaxes(step, -1, -2), cgemm=cgemm), -1, -2)


def ifft2(x: np.ndarray, cgemm: CGemmFn | None = None) -> np.ndarray:
    """Normalised 2-D inverse FFT over the last two axes."""
    x = np.asarray(x, dtype=np.complex128)
    step = gemm_fft(x, cgemm=cgemm, inverse=True)
    out = np.swapaxes(gemm_fft(np.swapaxes(step, -1, -2), cgemm=cgemm, inverse=True), -1, -2)
    return out / (x.shape[-1] * x.shape[-2])


def rfft(x: np.ndarray, cgemm: CGemmFn | None = None) -> np.ndarray:
    """Real-input FFT: returns the ``n//2 + 1`` non-redundant bins.

    Uses the standard packing trick: an N-point real signal becomes an
    N/2-point complex signal, one complex FFT plus an O(N) untangling
    stage — halving the CGEMM work versus a complex transform.
    """
    x = np.asarray(x, dtype=np.float64)
    n = x.shape[-1]
    if n & (n - 1) or n < 2:
        raise ValueError("rfft requires power-of-two length >= 2")
    z = x[..., 0::2] + 1j * x[..., 1::2]
    zf = gemm_fft(z, cgemm=cgemm)
    half = n // 2
    k = np.arange(half + 1)
    # Unpack: X[k] = (Z[k] + conj(Z[-k]))/2 - i/2 * e^{-2pi i k/N} (Z[k] - conj(Z[-k]))
    zf_ext = np.concatenate([zf, zf[..., :1]], axis=-1)  # Z[half] = Z[0]
    z_k = zf_ext[..., k]
    z_nk = np.conj(zf_ext[..., (half - k) % half])
    even = 0.5 * (z_k + z_nk)
    odd = -0.5j * (z_k - z_nk)
    tw = np.exp(-2j * np.pi * k / n)
    return even + tw * odd


def irfft(spec: np.ndarray, cgemm: CGemmFn | None = None) -> np.ndarray:
    """Inverse of :func:`rfft` (length inferred as ``2*(bins-1)``)."""
    spec = np.asarray(spec, dtype=np.complex128)
    n = 2 * (spec.shape[-1] - 1)
    full = np.concatenate(
        [spec, np.conj(spec[..., -2:0:-1])], axis=-1
    )
    return ifft(full, cgemm=cgemm).real[..., :n]
