"""FFT performance models (Figure 6).

Large 1-D FFTs on GPUs are pass-dominated: every stage streams the whole
signal through HBM, and a shared-memory-resident sub-transform of ~2^10
points bounds how much work one pass can fuse. What separates the three
contenders is (a) how efficiently each pass's memory access pattern uses
HBM and (b) whether the per-pass compute hides under the stream:

* **cuFFT** — SIMT butterflies. The first pass is unit-stride, but the
  Cooley-Tukey decomposition makes every later pass access the signal at
  large strides (the implicit transposes of the four-step algorithm),
  which HBM serves at a fraction of peak.
* **M3XU FFT** — the CGEMM formulation stages tiles through shared memory
  exactly like a GEMM mainloop, so every pass streams at near-peak
  efficiency, and the 64-point DFT matmuls run on the FP32C datapath at
  4x the SIMT rate — fully hidden under the stream. The win is therefore
  the strided-vs-tiled bandwidth ratio, approached as the pass count
  grows (up to ~2x) and diluted at small sizes where a single fused pass
  plus launch overhead dominates — the paper's "up to 1.99x, average
  1.52x" shape.
* **tcFFT (TF32-extended)** — inherits the tiled access but pays "4x more
  operations on Tensor Core" per complex GEMM plus fragment-layout
  shuffles; its passes are compute-bound and the paper finds it "does
  not improve performance over cuFFT".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ...gpusim.config import GPUSpec, a100_emulation
from ...kernels.constants import FMA_UTIL_SIMT, TC_UTIL_M3XU
from ...mxu.modes import MXUMode

__all__ = ["FftPerf", "cufft_time", "tcfft_time", "m3xu_fft_time", "fft_speedups"]

#: Points of sub-transform one pass keeps resident in shared memory.
_SMEM_POINTS_LOG2 = 10
#: HBM efficiency of unit-stride streaming passes.
_BW_EFF_STREAM = 0.85
#: HBM efficiency of the strided (transpose-pattern) passes of SIMT FFTs.
#: Large-stride gather/scatter wastes most of each DRAM burst.
_BW_EFF_STRIDED = 0.35
#: SIMT lane operations per point per pass (twiddle + butterfly FMAs +
#: addressing for a fused radix-2^10 shared-memory stage).
_CUFFT_OPS_PER_PT = 55.0
#: Extra fragment-shuffle / layout lane ops per point for tcFFT.
_TCFFT_SHUFFLE_OPS = 30.0


@dataclass(frozen=True)
class FftPerf:
    """Modelled times (seconds) for one FFT size."""

    n: int
    cufft_s: float
    tcfft_s: float
    m3xu_s: float

    @property
    def m3xu_speedup(self) -> float:
        return self.cufft_s / self.m3xu_s

    @property
    def tcfft_speedup(self) -> float:
        return self.cufft_s / self.tcfft_s


def _n_passes(n: int) -> int:
    return max(1, math.ceil(math.log2(n) / _SMEM_POINTS_LOG2))


def _lane_rate(gpu: GPUSpec) -> float:
    return gpu.n_sms * gpu.fp32_cores_per_sm * gpu.clock_ghz * 1e9 * FMA_UTIL_SIMT


def cufft_time(n: int, gpu: GPUSpec | None = None) -> float:
    """cuFFT: fused smem passes; later passes are stride-crippled."""
    gpu = gpu or a100_emulation()
    passes = _n_passes(n)
    total = 0.0
    compute = _CUFFT_OPS_PER_PT * n / _lane_rate(gpu)
    for p in range(passes):
        eff = _BW_EFF_STREAM if p == 0 else _BW_EFF_STRIDED
        mem = 16.0 * n / (gpu.dram_bw_gbs * 1e9 * eff)
        total += max(mem, compute) + gpu.launch_overhead_s
    return total


def m3xu_fft_time(n: int, gpu: GPUSpec | None = None) -> float:
    """M3XU FFT: CGEMM passes, tiled streaming on every pass; the 64-point
    DFT matmuls (64 complex MACs per point per pass) run on the FP32C
    datapath under the memory stream."""
    gpu = gpu or a100_emulation()
    passes = _n_passes(n)
    cmac_rate = (
        gpu.n_sms * gpu.sm_m3xu_macs(MXUMode.FP32C) * gpu.clock_ghz * 1e9 * TC_UTIL_M3XU
    )
    compute = 64.0 * n / cmac_rate  # per pass
    total = 0.0
    for _ in range(passes):
        mem = 16.0 * n / (gpu.dram_bw_gbs * 1e9 * _BW_EFF_STREAM)
        total += max(mem, compute) + gpu.launch_overhead_s
    return total


def tcfft_time(n: int, gpu: GPUSpec | None = None) -> float:
    """tcFFT extended to TF32: tiled access, but 4x real-GEMM operation
    count (12x TF32 volumes after the 3xTF32 emulation) and fragment
    shuffles make every pass compute-bound."""
    gpu = gpu or a100_emulation()
    passes = _n_passes(n)
    mac_rate = gpu.n_sms * gpu.sm_tf32_tc_macs * gpu.clock_ghz * 1e9 * 0.7
    tensor = 12.0 * 64.0 * n / mac_rate  # 4 real GEMMs x 3xTF32 emulation
    shuffle = _TCFFT_SHUFFLE_OPS * n / _lane_rate(gpu)
    compute = tensor + shuffle
    total = 0.0
    for _ in range(passes):
        mem = 16.0 * n / (gpu.dram_bw_gbs * 1e9 * _BW_EFF_STREAM)
        total += max(mem, compute) + gpu.launch_overhead_s
    return total


def fft_speedups(
    sizes: list[int] | None = None, gpu: GPUSpec | None = None
) -> list[FftPerf]:
    """Figure 6 series: speedup over cuFFT per FFT size."""
    gpu = gpu or a100_emulation()
    sizes = sizes or [2**k for k in range(14, 28)]
    return [
        FftPerf(
            n=n,
            cufft_s=cufft_time(n, gpu),
            tcfft_s=tcfft_time(n, gpu),
            m3xu_s=m3xu_fft_time(n, gpu),
        )
        for n in sizes
    ]
