"""FFT built from complex GEMMs (the tcFFT/M3XU formulation).

Section VI-C1: "M3XU can directly compute FFT using its FP32C mode". The
GEMM formulation is the Bailey/four-step factorisation: an N-point DFT
with N = N1 * N2 becomes

1. reshape x into an (N1, N2) matrix (index n = n1 * N2 + n2),
2. DFT along columns:   Y = F_{N1} @ X          (CGEMM, N1 x N2 x N1)
3. twiddle:             Y *= W_N^{k1 * n2}
4. DFT along rows:      Z = Y @ F_{N2}^T        (CGEMM, N1 x N2 x N2)
5. output index k = k2 * N1 + k1 (transpose read-out).

Applied recursively this reduces the whole FFT to complex GEMMs against
small DFT matrices — exactly the work M3XU's FP32C mode executes
natively. Any CGEMM callable can be injected, so the same FFT runs on the
M3XU functional model, the FP16/TF32 software schemes, or float64.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["dft_matrix", "gemm_fft", "fft_forward", "CGemmFn"]

CGemmFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


def dft_matrix(n: int, inverse: bool = False) -> np.ndarray:
    """The dense n-point DFT matrix ``F[j, k] = exp(-2 pi i j k / n)``."""
    if n < 1:
        raise ValueError("n must be >= 1")
    sign = 2.0j if inverse else -2.0j
    jk = np.outer(np.arange(n), np.arange(n))
    return np.exp(sign * np.pi * jk / n)


def _split(n: int, base: int) -> tuple[int, int]:
    """Factor n = n1 * n2 with n1 <= base, preferring n1 = base."""
    n1 = base
    while n % n1:
        n1 //= 2
        if n1 < 2:
            raise ValueError(f"cannot factor {n} over radix base {base}")
    return n1, n // n1


def gemm_fft(
    x: np.ndarray,
    cgemm: CGemmFn | None = None,
    base_radix: int = 16,
    inverse: bool = False,
) -> np.ndarray:
    """1-D FFT of the last axis via recursive four-step CGEMM factorisation.

    Parameters
    ----------
    x:
        complex input, shape ``(..., N)``; N must factor into powers of 2
        (any power-of-two N works).
    cgemm:
        Complex GEMM callable ``(a, b) -> a @ b`` executing each DFT-matrix
        multiplication (e.g. the M3XU functional CGEMM). ``None`` uses
        float64 matmul (reference).
    base_radix:
        Largest DFT handled by a single dense-matrix CGEMM. 16-64 mirrors
        the tile sizes an MXU digests.
    inverse:
        Compute the inverse DFT (unscaled; callers divide by N).
    """
    if cgemm is None:
        cgemm = lambda a, b: a @ b  # noqa: E731 - reference path
    x = np.asarray(x, dtype=np.complex128)
    n = x.shape[-1]
    if n & (n - 1):
        raise ValueError("gemm_fft requires power-of-two sizes")
    batch = x.reshape(-1, n)
    out = np.empty_like(batch)
    for i, row in enumerate(batch):
        out[i] = _fft_recursive(row, cgemm, base_radix, inverse)
    return out.reshape(x.shape)


def _fft_recursive(
    x: np.ndarray, cgemm: CGemmFn, base: int, inverse: bool
) -> np.ndarray:
    n = x.shape[0]
    if n <= base:
        return cgemm(dft_matrix(n, inverse), x[:, None])[:, 0]
    n1, n2 = _split(n, base)
    mat = x.reshape(n1, n2)  # n = n1*N2 + n2 row-major
    # Column DFT over n1 (a single CGEMM against the small DFT matrix).
    y = cgemm(dft_matrix(n1, inverse), mat)
    # Twiddle factors W_N^{k1 * n2}.
    sign = 2.0j if inverse else -2.0j
    k1 = np.arange(n1)[:, None]
    n2i = np.arange(n2)[None, :]
    y = y * np.exp(sign * np.pi * k1 * n2i / n)
    # Row DFTs over n2, recursively (columns of y are independent
    # n2-point transforms -> recurse on each row of y^T in one batch).
    z = np.empty_like(y)
    for r in range(n1):
        z[r] = _fft_recursive(y[r], cgemm, base, inverse)
    # Output index k = k2 * n1 + k1.
    return z.T.reshape(-1)


def fft_forward(x: np.ndarray, cgemm: CGemmFn | None = None) -> np.ndarray:
    """Convenience forward FFT matching ``np.fft.fft`` conventions."""
    return gemm_fft(x, cgemm=cgemm, inverse=False)
