"""Component inventories of the synthesised designs.

Each design is a bag of :class:`Component` entries (area in NAND2-eq
gates, switched capacitance in activity-weighted gates) plus a critical
path. Inventories follow the microarchitecture descriptions of Sections
II-A and IV; one dot-product unit (DPU) is modelled and all designs scale
by the same DPU count, so ratios are per-DPU ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .gates import CAL, GateCosts

__all__ = ["Component", "Inventory"]


@dataclass(frozen=True)
class Component:
    """One inventory line item."""

    name: str
    area: float
    cap: float  # switched capacitance (area x activity), per cycle at f=1

    def scaled(self, count: float) -> "Component":
        return Component(self.name, self.area * count, self.cap * count)


@dataclass
class Inventory:
    """A design's components and critical-path delay (gate delays)."""

    name: str
    components: list[Component] = field(default_factory=list)
    critical_path: float = 0.0
    costs: GateCosts = field(default_factory=lambda: CAL)

    # -- builders ------------------------------------------------------
    #: residual switching of operand-gated logic (clock tree + leakage
    #: shadow) relative to its active-mode capacitance.
    GATED_RESIDUAL = 0.1

    def add(
        self, name: str, area: float, activity: float, count: float = 1,
        gated: bool = False,
    ) -> None:
        """Add *count* copies of a component.

        ``gated=True`` marks logic exercised only by the FP32/FP32C modes;
        Table III power characterises the designs on the *native* FP16
        workload (like-for-like with the baseline), where such logic is
        operand-gated and contributes only residual switching.
        """
        cap = area * activity * count
        if gated:
            cap *= self.GATED_RESIDUAL
        self.components.append(Component(name, area * count, cap))

    def add_multipliers(self, width: int, count: int, active_width: int | None = None) -> None:
        """Multiplier array. ``active_width`` is the significand width
        toggling in the characterised (FP16) mode: M3XU's 12th mantissa
        bit is zero-padded in FP16 mode, so it adds area but almost no
        switching."""
        c = self.costs
        aw = active_width or width
        self.components.append(
            Component(
                f"mult{width}x{width}",
                c.multiplier_area(width) * count,
                c.multiplier_cap(aw) * count,
            )
        )

    def add_adders(self, width: int, count: int, name: str = "adder", gated: bool = False) -> None:
        c = self.costs
        self.add(f"{name}{width}", c.adder_area(width), c.activity_adder, count, gated)

    def add_shifters(
        self, width: int, max_shift: int, count: int, name: str = "shift",
        gated: bool = False,
    ) -> None:
        c = self.costs
        self.add(
            f"{name}{width}",
            c.shifter_area(width, max_shift),
            c.activity_shifter,
            count,
            gated,
        )

    def add_registers(self, bits: float, count: float = 1, name: str = "reg", gated: bool = False) -> None:
        c = self.costs
        self.add(name, c.register_area(bits), c.activity_register, count, gated)

    def add_latches(self, bits: float, count: float = 1, name: str = "latch", gated: bool = False) -> None:
        c = self.costs
        self.add(name, c.latch_area(bits), c.activity_latch, count, gated)

    def add_muxes(self, bits: float, ways: int, count: float, name: str = "mux", gated: bool = False) -> None:
        c = self.costs
        self.add(name, c.mux_area(bits, ways), c.activity_mux, count, gated)

    def add_xors(self, bits: float, count: float, name: str = "sgnflip", gated: bool = False) -> None:
        c = self.costs
        self.add(name, c.xor_area(bits), c.activity_mux, count, gated)

    # -- results -------------------------------------------------------
    @property
    def area(self) -> float:
        return sum(c.area for c in self.components)

    @property
    def cap(self) -> float:
        return sum(c.cap for c in self.components)

    def power(self, freq_rel: float = 1.0) -> float:
        """Relative power at a relative frequency.

        Dynamic power follows ``C * f * V(f)^2`` with an (approximately)
        linear DVFS voltage curve ``V ~ f_rel`` near the nominal point —
        a lower clock permits a proportionally lower supply on the 45 nm
        node; leakage scales with area.
        """
        v = freq_rel
        dyn = self.cap * freq_rel * v * v
        leak = self.costs.leakage_frac * self.area
        return dyn + leak

    def breakdown(self) -> dict[str, float]:
        """Area by component name (merged)."""
        out: dict[str, float] = {}
        for c in self.components:
            out[c.name] = out.get(c.name, 0.0) + c.area
        return out
