"""Table III: relative area / cycle time / power of the five designs."""

from __future__ import annotations

from dataclasses import dataclass

from .designs import all_designs
from .gates import CAL, GateCosts

__all__ = [
    "SynthesisRow",
    "synthesis_table",
    "PAPER_TABLE3",
    "sm_area_overhead",
    "absolute_frequency_mhz",
]

#: FO4-equivalent gate delay at the FreePDK45 node (ps). 45 nm FO4 is
#: ~20-25 ps; datapath cells with wire load land nearer 30.
_GATE_DELAY_PS = 30.0

#: Table III as published (relative to the baseline FP16 MXU).
PAPER_TABLE3: dict[str, dict[str, float]] = {
    "baseline_mxu": {"area": 1.00, "cycle": 1.00, "power": 1.00},
    "fp32_mxu": {"area": 3.55, "cycle": 1.00, "power": 7.97},
    "m3xu_no_complex": {"area": 1.37, "cycle": 1.21, "power": 0.66},
    "m3xu": {"area": 1.41, "cycle": 1.21, "power": 0.69},
    "m3xu_pipelined": {"area": 1.47, "cycle": 1.00, "power": 1.07},
}


@dataclass(frozen=True)
class SynthesisRow:
    design: str
    area: float
    cycle: float
    power: float


def synthesis_table(costs: GateCosts = CAL) -> list[SynthesisRow]:
    """Compute the model's Table III, normalised to the baseline MXU.

    The non-pipelined M3XU variants run at the frequency their stretched
    cycle allows (f = 1/cycle), which is how the paper reports their
    power ("the lowered frequencies ... allow the resulting M3XUs to
    operate at 31% or 34% lower power").
    """
    designs = all_designs(costs)
    base = designs["baseline_mxu"]
    rows: list[SynthesisRow] = []
    for name, inv in designs.items():
        cycle = inv.critical_path / base.critical_path
        freq_rel = 1.0 / cycle
        rows.append(
            SynthesisRow(
                design=name,
                area=inv.area / base.area,
                cycle=cycle,
                power=inv.power(freq_rel) / base.power(1.0),
            )
        )
    return rows


def absolute_frequency_mhz(costs: GateCosts = CAL) -> dict[str, float]:
    """Rough absolute clock estimate per design at FreePDK45.

    Critical-path gate delays x the node's effective gate delay give a
    cycle time; the baseline lands in the ~0.5 GHz range typical of
    multi-stage datapaths synthesised on the educational FreePDK45
    library, and the ratios between designs are Table III's cycle column
    by construction.
    """
    designs = all_designs(costs)
    return {
        name: 1e6 / (inv.critical_path * _GATE_DELAY_PS)
        for name, inv in designs.items()
    }


def sm_area_overhead(design_area_ratio: float, mxu_sm_fraction: float = 0.085) -> float:
    """Overhead at the SM level given the MXU's share of SM area.

    The paper reports the FP32-MXU's 3.55x unit overhead as an 11% SM
    increase and M3XU-pipelined's 1.47x as 4%, implying tensor cores
    occupy roughly 8-9% of SM area; we use 8.5%.
    """
    return (design_area_ratio - 1.0) * mxu_sm_fraction
