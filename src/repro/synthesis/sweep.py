"""Synthesis design sweeps (Section VI-A's secondary claims).

Two quantities beyond Table III's cells:

* :func:`m3xu_overhead_vs_baseline_mantissa` — "If we extend an MXU that
  already supports 12-bit mantissas, the area-overhead of supporting FP32
  in M3XU is only 16%": the M3XU delta split into the multiplier-widening
  part and the M3XU-specific part (buffers, muxes, 48-bit accumulation).
* :func:`area_vs_multiplier_width` — how the naive full-width approach
  scales with target precision, the quadratic wall of Section II-B.
"""

from __future__ import annotations

from dataclasses import dataclass

from .components import Inventory
from .designs import _DP_ELEMS, _compute_path, m3xu_no_complex
from .gates import CAL, GateCosts

__all__ = [
    "MantissaSweepPoint",
    "m3xu_overhead_vs_baseline_mantissa",
    "area_vs_multiplier_width",
]


@dataclass(frozen=True)
class MantissaSweepPoint:
    """M3XU overhead relative to a baseline with the given mantissa width."""

    baseline_significand_bits: int
    m3xu_area_ratio: float


def _baseline_with_width(w: int, costs: GateCosts) -> Inventory:
    """A baseline MXU whose multiplier lanes carry ``w``-bit significands."""
    inv = Inventory(f"baseline_{w}b", costs=costs)
    tree = 2 * w + 6
    inv.add_multipliers(w, _DP_ELEMS)
    inv.add_adders(8, _DP_ELEMS, name="expadd")
    inv.add_shifters(tree, 32, _DP_ELEMS, name="align")
    inv.add_adders(tree, _DP_ELEMS - 1, name="tree")
    inv.add_adders(tree + 4, 1, name="accadd")
    inv.add_shifters(32, 32, 1, name="normalize")
    inv.add_registers(32, 1, name="accreg")
    inv.add_latches((1 + 8 + w) * 2, _DP_ELEMS, name="operand_stage")
    inv.critical_path = _compute_path(costs, w, tree)
    return inv


def m3xu_overhead_vs_baseline_mantissa(
    widths: tuple[int, ...] = (11, 12),
    costs: GateCosts = CAL,
) -> list[MantissaSweepPoint]:
    """M3XU (FP32-only) area ratio vs baselines of different widths.

    For the 11-bit baseline the ratio reproduces Table III's 1.37; for a
    12-bit baseline the multiplier-widening share of the overhead
    vanishes and only the M3XU-specific logic remains — the paper's
    "only 16%" claim.
    """
    out = []
    m3xu = m3xu_no_complex(costs)
    for w in widths:
        base = _baseline_with_width(w, costs)
        out.append(
            MantissaSweepPoint(
                baseline_significand_bits=w + 1,  # incl. hidden bit
                m3xu_area_ratio=m3xu.area / base.area,
            )
        )
    return out


def area_vs_multiplier_width(
    widths: tuple[int, ...] = (11, 14, 18, 24, 53),
    costs: GateCosts = CAL,
) -> dict[int, float]:
    """Naive full-width MXU area vs significand width, relative to 11-bit.

    The quadratic multiplier wall: the FP64-capable point (53-bit) lands
    more than an order of magnitude above the baseline, the reason the
    multi-step reuse approach exists at all.
    """
    base = _baseline_with_width(11, costs).area
    return {w: _baseline_with_width(w, costs).area / base for w in widths}
