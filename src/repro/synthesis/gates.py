"""Gate-level cost primitives for the synthesis model (Table III substitute).

The paper synthesises SystemVerilog with Synopsys DC on FreePDK45; we
cannot run that toolchain, so DESIGN.md substitutes a component-inventory
cost model. Costs are expressed in NAND2-equivalent gates (area), gate
delays (cycle time) and normalised switched capacitance (power).

Scaling rules (standard results for datapath synthesis):

* array/Booth multiplier area grows quadratically with significand width,
  and its switched capacitance grows super-quadratically (glitch activity
  in the partial-product array) — ``POWER_EXP`` models that;
* adders, shifters, registers and muxes are linear in width;
* multiplier delay grows with ``log2`` of the width (Wallace tree depth).

``CAL`` collects the calibration constants. They are fitted once against
the published Table III anchor (the naive FP32-MXU at 3.55x area / 7.97x
power) and then *reused unchanged* for every other design, so the M3XU
columns are genuine predictions of the inventory model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["GateCosts", "CAL"]


@dataclass(frozen=True)
class GateCosts:
    """Area / delay / switched-capacitance of datapath primitives."""

    #: gates per bit^2 of multiplier array.
    mult_area_per_bit2: float = 7.0
    #: multiplier switched-capacitance exponent (area ~ w^2, power ~ w^POWER_EXP).
    mult_power_exp: float = 2.6
    adder_area_per_bit: float = 9.0
    shifter_area_per_bit_stage: float = 3.5
    register_area_per_bit: float = 7.0
    latch_area_per_bit: float = 0.9
    mux2_area_per_bit: float = 1.2
    xor_area_per_bit: float = 2.5
    #: relative switching activity per gate, by component class.
    activity_mult: float = 1.00
    activity_adder: float = 0.55
    activity_shifter: float = 0.35
    activity_register: float = 0.25
    activity_latch: float = 0.20
    activity_mux: float = 0.30
    #: leakage power per gate relative to a fully-active gate.
    leakage_frac: float = 0.08
    #: wiring/congestion area factor per multiplier input bit beyond the
    #: 11-bit baseline (wide multipliers route poorly at 45 nm).
    wire_factor_per_bit: float = 0.01
    #: serial delay (gate delays) of the unpipelined data-assignment
    #: stage: buffer read + part-select mux + routing. Calibrated so the
    #: stage stretches the cycle by the synthesised 21% (Table III).
    assign_stage_delay: float = 10.0

    # ------------------------------------------------------------------
    def multiplier_area(self, w: int) -> float:
        wire = 1.0 + self.wire_factor_per_bit * max(0, w - 11)
        return self.mult_area_per_bit2 * w * w * wire

    def multiplier_cap(self, w: int) -> float:
        """Switched capacitance (normalised gates x activity)."""
        wire = 1.0 + self.wire_factor_per_bit * max(0, w - 11)
        return self.mult_area_per_bit2 * w**self.mult_power_exp * wire * self.activity_mult

    def multiplier_delay(self, w: int) -> float:
        """Gate delays through the partial-product tree + final CPA."""
        return 4.0 * math.log2(max(w, 2)) + 0.45 * w

    def adder_area(self, w: int) -> float:
        return self.adder_area_per_bit * w

    def adder_delay(self, w: int) -> float:
        return 2.0 * math.log2(max(w, 2)) + 2.0

    def shifter_area(self, w: int, max_shift: int) -> float:
        stages = max(1, math.ceil(math.log2(max(max_shift, 2))))
        return self.shifter_area_per_bit_stage * w * stages

    def shifter_delay(self, max_shift: int) -> float:
        return 1.2 * max(1, math.ceil(math.log2(max(max_shift, 2))))

    def register_area(self, bits: float) -> float:
        return self.register_area_per_bit * bits

    def latch_area(self, bits: float) -> float:
        return self.latch_area_per_bit * bits

    def mux_area(self, bits: float, ways: int = 2) -> float:
        return self.mux2_area_per_bit * bits * max(1, ways - 1)

    def xor_area(self, bits: float) -> float:
        return self.xor_area_per_bit * bits


#: The calibrated primitive costs used throughout the synthesis model.
CAL = GateCosts()
