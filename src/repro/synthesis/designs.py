"""The five Table III designs as component inventories.

All designs model one 4-element dot-product unit (DPU) with its share of
accumulation and operand-staging logic. The microarchitectural content
follows Section II-A (baseline), Section II-B (naive FP32-MXU) and
Section IV (M3XU variants). Power is characterised on the native FP16
workload (like-for-like with the baseline, as Table III compares designs
running their common modes): mode-specific logic is operand-gated and the
M3XU multiplier's 12th mantissa bit is zero in FP16 mode.
"""

from __future__ import annotations

from .components import Inventory
from .gates import CAL, GateCosts

__all__ = [
    "baseline_mxu",
    "fp32_mxu",
    "m3xu_no_complex",
    "m3xu_full",
    "m3xu_pipelined",
    "all_designs",
]

_DP_ELEMS = 4  # dot-product width of one unit (Fig. 1)
_ENTRY_BITS = 1 + 8 + 12  # data-assignment buffer entry (Section IV-A)


def _compute_path(costs: GateCosts, mant_bits: int, tree_width: int) -> float:
    """Multiply -> align -> 2-level add tree -> accumulate critical path."""
    return (
        costs.multiplier_delay(mant_bits)
        + costs.shifter_delay(tree_width)
        + 2 * costs.adder_delay(tree_width)
        + costs.adder_delay(tree_width + 4)
    )


def baseline_mxu(costs: GateCosts = CAL) -> Inventory:
    """Ampere-class Tensor Core DPU: 11-bit significand multipliers,
    8-bit exponent adders, FP32 accumulation (Section II-A)."""
    inv = Inventory("baseline_mxu", costs=costs)
    w = 11
    tree = 2 * w + 6  # aligned product window + carries
    inv.add_multipliers(w, _DP_ELEMS)
    inv.add_adders(8, _DP_ELEMS, name="expadd")
    inv.add_shifters(tree, 32, _DP_ELEMS, name="align")
    inv.add_adders(tree, _DP_ELEMS - 1, name="tree")
    inv.add_adders(tree + 4, 1, name="accadd")
    inv.add_shifters(32, 32, 1, name="normalize")
    inv.add_registers(32, 1, name="accreg")
    inv.add_latches((1 + 8 + w) * 2, _DP_ELEMS, name="operand_stage")
    inv.critical_path = _compute_path(costs, w, tree)
    return inv


def fp32_mxu(costs: GateCosts = CAL) -> Inventory:
    """Naive FP32-MXU (Section II-B): 24-bit significand multipliers at
    the same MAC rate, doubled operand front-end. Synthesised with an
    extra pipeline stage to hold the baseline clock (its Table III cycle
    time is 1.00), whose staging registers are included."""
    inv = Inventory("fp32_mxu", costs=costs)
    w = 24
    tree = 2 * w + 6
    inv.add_multipliers(w, _DP_ELEMS)
    inv.add_adders(8, _DP_ELEMS, name="expadd")
    inv.add_shifters(tree, 64, _DP_ELEMS, name="align")
    inv.add_adders(tree, _DP_ELEMS - 1, name="tree")
    inv.add_adders(tree + 4, 1, name="accadd")
    inv.add_shifters(32, 64, 1, name="normalize")
    inv.add_registers(32, 1, name="accreg")
    # Doubled front-end: 32-bit operands staged for every lane at twice
    # the baseline input bandwidth.
    inv.add_latches(32 * 2, _DP_ELEMS * 2, name="operand_stage")
    # Mid-datapath pipeline registers (product register per lane).
    inv.add_registers(tree, _DP_ELEMS, name="pipe_regs")
    inv.critical_path = _compute_path(costs, 11, 2 * 11 + 6)  # retimed
    return inv


def _m3xu_core(inv: Inventory) -> tuple[int, int]:
    """Shared M3XU arithmetic (Section IV-A requirements 2-4): 12-bit
    multipliers (+1 mantissa bit over the baseline), weight-shift muxes at
    the multiplier outputs, 48-bit shifted accumulation."""
    w = 12
    tree = 2 * w + 6
    inv.add_multipliers(w, _DP_ELEMS, active_width=11)
    inv.add_adders(8, _DP_ELEMS, name="expadd")
    inv.add_shifters(tree, 32, _DP_ELEMS, name="align")
    inv.add_adders(tree, _DP_ELEMS - 1, name="tree")
    inv.add_muxes(tree, 2, _DP_ELEMS, name="shiftmux", gated=True)
    inv.add_adders(48, 1, name="accadd48")
    inv.add_shifters(48, 32, 1, name="accshift", gated=True)
    inv.add_registers(48, 1, name="accreg48")
    inv.add_shifters(32, 64, 1, name="normalize")
    return w, tree


def m3xu_no_complex(costs: GateCosts = CAL) -> Inventory:
    """M3XU supporting FP16/BF16/TF32 + FP32 only (Table III col 4).

    Data-assignment stage: 2 x m x s buffer entries per DPU (m=4 lanes,
    s=2 steps -> 16 entries of 21 bits, Section IV-A) plus input muxes.
    """
    inv = Inventory("m3xu_no_complex", costs=costs)
    w, tree = _m3xu_core(inv)
    inv.add_latches(_ENTRY_BITS, 2 * _DP_ELEMS * 2, name="assign_buffers")
    inv.add_muxes(_ENTRY_BITS, 2, 2 * _DP_ELEMS, name="assign_mux")
    inv.add("assign_ctrl", 220, 0.3)
    inv.critical_path = _compute_path(costs, w, tree) + costs.assign_stage_delay
    return inv


def m3xu_full(costs: GateCosts = CAL) -> Inventory:
    """Complete M3XU with FP32C (Table III col 5): 4-step buffers (twice
    the FP32 buffer depth), sign-flip logic, wider mux selects."""
    inv = Inventory("m3xu", costs=costs)
    w, tree = _m3xu_core(inv)
    inv.add_latches(_ENTRY_BITS, 2 * _DP_ELEMS * 2, name="assign_buffers")
    inv.add_latches(_ENTRY_BITS, 2 * _DP_ELEMS * 2, name="assign_buffers_cplx", gated=True)
    inv.add_muxes(_ENTRY_BITS, 2, 2 * _DP_ELEMS, name="assign_mux")
    inv.add_muxes(_ENTRY_BITS, 2, 2 * _DP_ELEMS, name="assign_mux_cplx", gated=True)
    inv.add_xors(1, 2 * _DP_ELEMS, name="sgnflip", gated=True)
    inv.add("assign_ctrl", 300, 0.3)
    inv.critical_path = _compute_path(costs, w, tree) + costs.assign_stage_delay
    return inv


def m3xu_pipelined(costs: GateCosts = CAL) -> Inventory:
    """Pipelined M3XU (Table III col 6): the data-assignment stage gets
    its own pipeline stage — staging registers on every multiplier input
    plus retimed control — restoring (nearly) the baseline cycle time."""
    inv = m3xu_full(costs)
    inv.name = "m3xu_pipelined"
    # Only the re-muxed B-side inputs need staging (Fig. 3: the step-2
    # reassignment flips one input vector); A-side buffers already hold
    # their values across steps.
    inv.add_registers(_ENTRY_BITS, _DP_ELEMS, name="pipe_regs")
    inv.add_registers(24, 1, name="pipe_ctrl")
    # The assignment muxing overlaps compute; the cycle is set by the
    # (slightly deeper) 12-bit compute path.
    inv.critical_path = _compute_path(costs, 12, 2 * 12 + 6)
    return inv


def all_designs(costs: GateCosts = CAL) -> dict[str, Inventory]:
    return {
        d.name: d
        for d in (
            baseline_mxu(costs),
            fp32_mxu(costs),
            m3xu_no_complex(costs),
            m3xu_full(costs),
            m3xu_pipelined(costs),
        )
    }
