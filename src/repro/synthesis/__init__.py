"""Synthesis cost model: Table III area / cycle-time / power."""

from .components import Component, Inventory
from .designs import (
    all_designs,
    baseline_mxu,
    fp32_mxu,
    m3xu_full,
    m3xu_no_complex,
    m3xu_pipelined,
)
from .gates import CAL, GateCosts
from .report import (
    PAPER_TABLE3,
    SynthesisRow,
    absolute_frequency_mhz,
    sm_area_overhead,
    synthesis_table,
)
from .sweep import (
    MantissaSweepPoint,
    area_vs_multiplier_width,
    m3xu_overhead_vs_baseline_mantissa,
)

__all__ = [
    "GateCosts",
    "CAL",
    "Component",
    "Inventory",
    "baseline_mxu",
    "fp32_mxu",
    "m3xu_no_complex",
    "m3xu_full",
    "m3xu_pipelined",
    "all_designs",
    "synthesis_table",
    "SynthesisRow",
    "PAPER_TABLE3",
    "sm_area_overhead",
    "absolute_frequency_mhz",
    "MantissaSweepPoint",
    "m3xu_overhead_vs_baseline_mantissa",
    "area_vs_multiplier_width",
]
