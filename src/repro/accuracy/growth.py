"""Error-growth studies: how each GEMM implementation degrades with K.

Classical rounding analysis predicts the forward error of an FP32 FMA
chain grows linearly in K (bound ~ K * u * sum|a||b| with u = 2^-24),
while a wide-accumulator MXU defers all rounding to one point per K-chunk
chain — so its error grows with the number of *chunks*, K / k_mma, with
the same constant. These studies measure both, giving the quantitative
backing for the paper's exactness discussion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..gemm.reference import sgemm_simt
from ..gemm.schemes import eehc_sgemm_3xbf16, tensorop_sgemm_3xtf32
from ..gemm.tiled import mxu_sgemm
from ..types.formats import FP32
from ..types.quantize import quantize

__all__ = ["GrowthPoint", "error_growth_vs_k", "dynamic_range_sweep", "GROWTH_IMPLS"]

GROWTH_IMPLS: dict[str, Callable] = {
    "fp32_simt": sgemm_simt,
    "m3xu_fp32": mxu_sgemm,
    "3xtf32": tensorop_sgemm_3xtf32,
    "3xbf16": eehc_sgemm_3xbf16,
}


@dataclass(frozen=True)
class GrowthPoint:
    """Mean absolute ulp-level error of one implementation at one K."""

    impl: str
    k: int
    mean_rel_error: float


def error_growth_vs_k(
    ks: list[int] | None = None,
    m: int = 24,
    n: int = 24,
    seed: int = 23,
    impls: dict[str, Callable] | None = None,
) -> list[GrowthPoint]:
    """Mean relative error vs reduction length, positive operands.

    Positive uniform operands make |sum| ~ sum|.|, so the relative error
    directly exposes the accumulated rounding (no cancellation noise).
    """
    rng = np.random.default_rng(seed)
    ks = ks or [16, 64, 256, 1024]
    out: list[GrowthPoint] = []
    for k in ks:
        a = quantize(rng.uniform(0.1, 1.0, size=(m, k)), FP32)
        b = quantize(rng.uniform(0.1, 1.0, size=(k, n)), FP32)
        ref = a @ b
        for name, fn in (impls or GROWTH_IMPLS).items():
            got = fn(a, b, np.zeros((m, n)))
            rel = float(np.mean(np.abs(got - ref) / ref))
            out.append(GrowthPoint(impl=name, k=k, mean_rel_error=rel))
    return out


def dynamic_range_sweep(
    range_pows: list[int] | None = None,
    m: int = 24,
    n: int = 24,
    k: int = 64,
    seed: int = 29,
    impls: dict[str, Callable] | None = None,
) -> dict[str, list[float]]:
    """Max relative error vs operand dynamic range (10^±p magnitudes).

    Wide dynamic range stresses the split schemes: residual terms whose
    exponents differ greatly from the leading term get rounded harder by
    narrow base formats (most visible for BF16's 8-bit mantissa).
    """
    rng = np.random.default_rng(seed)
    range_pows = range_pows or [0, 2, 4, 6]
    out: dict[str, list[float]] = {name: [] for name in (impls or GROWTH_IMPLS)}
    for p in range_pows:
        mag_a = 10.0 ** rng.uniform(-p, p, size=(m, k))
        mag_b = 10.0 ** rng.uniform(-p, p, size=(k, n))
        a = quantize(rng.uniform(0.5, 1.5, size=(m, k)) * mag_a, FP32)
        b = quantize(rng.uniform(0.5, 1.5, size=(k, n)) * mag_b, FP32)
        ref = a @ b
        for name, fn in (impls or GROWTH_IMPLS).items():
            got = fn(a, b, np.zeros((m, n)))
            out[name].append(float(np.max(np.abs(got - ref) / np.abs(ref))))
    return out
