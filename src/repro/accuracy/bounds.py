"""Theoretical forward-error bounds for each GEMM scheme, with checkers.

Standard model of floating-point error (Higham): a length-K inner product
evaluated by a chain of roundings at unit roundoff ``u`` satisfies

``|fl(a.b) - a.b| <= gamma_K * sum(|a_i||b_i|)``, ``gamma_K = K*u/(1-K*u)``.

Per implementation:

* FP32 SIMT chain:     u = 2^-24, one rounding per element  -> gamma_K.
* M3XU (k_mma = 4):    exact within each MMA; one FP32 rounding per
                       chunk -> gamma_{K/4}.
* 3xTF32:              the residual split leaves a representation error
                       ~2^-22 per operand plus the dropped lo*lo term
                       ~2^-42, on top of the chunked TC accumulation.
* 3xBF16:              representation error ~2^-16 per operand dominates.

:func:`scheme_error_bound` returns the elementwise bound;
tests verify every implementation respects its bound empirically.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gamma", "scheme_error_bound", "BOUND_PARAMS"]

_U32 = 2.0**-24  # FP32 unit roundoff

#: (roundings per K elements factor, representation error per operand)
BOUND_PARAMS: dict[str, tuple[float, float]] = {
    "fp32_simt": (1.0, 0.0),
    "m3xu_fp32": (0.25, 0.0),          # one rounding per K=4 chunk
    "3xtf32": (0.125, 2.0**-21),       # TC chunk K=8; 2-term split residual
    "3xbf16": (0.125, 2.0**-15),       # 2-term BF16 split residual
}


def gamma(n: float, u: float = _U32) -> float:
    """Higham's gamma_n = n*u / (1 - n*u)."""
    nu = n * u
    if nu >= 1.0:
        raise ValueError("error bound diverges: n*u >= 1")
    return nu / (1.0 - nu)


def scheme_error_bound(
    scheme: str, abs_a: np.ndarray, abs_b: np.ndarray
) -> np.ndarray:
    """Elementwise forward-error bound for ``A @ B`` under *scheme*.

    Parameters
    ----------
    scheme:
        A key of :data:`BOUND_PARAMS`.
    abs_a, abs_b:
        |A| (m x k) and |B| (k x n).

    Returns
    -------
    np.ndarray
        (m x n) array bounding |computed - exact| elementwise.
    """
    try:
        round_factor, rep_err = BOUND_PARAMS[scheme]
    except KeyError:
        raise KeyError(f"unknown scheme {scheme!r}; known: {sorted(BOUND_PARAMS)}") from None
    abs_a = np.asarray(abs_a, dtype=np.float64)
    abs_b = np.asarray(abs_b, dtype=np.float64)
    k = abs_a.shape[1]
    mag = abs_a @ abs_b  # sum |a||b| per output
    # Accumulation rounding...
    bound = gamma(max(1.0, round_factor * k)) * mag
    # ...plus representation error of the split operands: first order,
    # 2 * rep_err per product (each operand off by rep_err relatively).
    bound += 2.0 * rep_err * mag
    return bound
