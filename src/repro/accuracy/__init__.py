"""Accuracy studies for the paper's numerical claims."""

from .bounds import BOUND_PARAMS, gamma, scheme_error_bound
from .growth import (
    GROWTH_IMPLS,
    GrowthPoint,
    dynamic_range_sweep,
    error_growth_vs_k,
)
from .study import (
    BITLEVEL_CGEMM_IMPLS,
    BITLEVEL_SGEMM_IMPLS,
    CGEMM_IMPLS,
    SGEMM_IMPLS,
    AccuracyResult,
    bitlevel_cgemm,
    bitlevel_sgemm,
    cgemm_accuracy_study,
    sgemm_accuracy_study,
)

__all__ = [
    "AccuracyResult",
    "sgemm_accuracy_study",
    "cgemm_accuracy_study",
    "SGEMM_IMPLS",
    "CGEMM_IMPLS",
    "BITLEVEL_SGEMM_IMPLS",
    "BITLEVEL_CGEMM_IMPLS",
    "bitlevel_sgemm",
    "bitlevel_cgemm",
    "GrowthPoint",
    "error_growth_vs_k",
    "dynamic_range_sweep",
    "GROWTH_IMPLS",
    "gamma",
    "scheme_error_bound",
    "BOUND_PARAMS",
]
