"""Accuracy studies: the numerical claims of Sections II-C and V-B.

Two claims are quantified here:

1. **M3XU loses nothing**: its FP32(-complex) GEMM results are at least
   as accurate as FP32 FMA chains on CUDA cores (in fact, each MMA is the
   correctly-rounded dot product thanks to the 48-bit accumulators).
2. **Software schemes lose bits**: 3xTF32 and 3xBF16 emulations retain
   "between one and several bits" less than FP32 — measured here as
   matching significand bits against a float64 reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..cache import memoize
from ..gemm.reference import cgemm_fp64, cgemm_simt, gemm_fp64, sgemm_simt
from ..gemm.schemes import (
    eehc_sgemm_3xbf16,
    fp16_tensorcore_sgemm,
    markidis_sgemm_4xfp16,
    tensorop_cgemm_3xtf32,
    tensorop_sgemm_3xtf32,
)
from ..gemm.tiled import mxu_cgemm, mxu_sgemm
from ..parallel import parallel_map
from ..types.errors import matching_bits, max_relative_error
from ..types.formats import FP32
from ..types.quantize import quantize, quantize_complex

__all__ = [
    "AccuracyResult",
    "sgemm_accuracy_study",
    "cgemm_accuracy_study",
    "SGEMM_IMPLS",
    "CGEMM_IMPLS",
    "BITLEVEL_SGEMM_IMPLS",
    "BITLEVEL_CGEMM_IMPLS",
    "bitlevel_sgemm",
    "bitlevel_cgemm",
]

SGEMM_IMPLS: dict[str, Callable] = {
    "fp32_simt": sgemm_simt,
    "m3xu_fp32": mxu_sgemm,
    "3xtf32": tensorop_sgemm_3xtf32,
    "3xbf16": eehc_sgemm_3xbf16,
    "4xfp16": markidis_sgemm_4xfp16,
    "fp16_tc": fp16_tensorcore_sgemm,
}

CGEMM_IMPLS: dict[str, Callable] = {
    "fp32c_simt": cgemm_simt,
    "m3xu_fp32c": mxu_cgemm,
    "3xtf32_c": tensorop_cgemm_3xtf32,
}


def bitlevel_sgemm(a: np.ndarray, b: np.ndarray, c: np.ndarray | float = 0.0) -> np.ndarray:
    """FP32 GEMM through the bit-level datapath (``REPRO_BITLEVEL`` engine).

    Module-level so it pickles into :func:`~repro.parallel.parallel_map`
    workers like the other study implementations.
    """
    return mxu_sgemm(a, b, c, fused=False)


def bitlevel_cgemm(a: np.ndarray, b: np.ndarray, c: np.ndarray | complex = 0.0) -> np.ndarray:
    """FP32C GEMM through the bit-level datapath (``REPRO_BITLEVEL`` engine)."""
    return mxu_cgemm(a, b, c, fused=False)


#: Study rosters that run the true split/multiply/shift/accumulate
#: datapath. Kept separate from the value-level defaults so headline
#: snapshots and memoised studies keyed on the default rosters are
#: untouched; pass ``impls={**SGEMM_IMPLS, **BITLEVEL_SGEMM_IMPLS}`` to
#: compare both in one study.
BITLEVEL_SGEMM_IMPLS: dict[str, Callable] = {"m3xu_fp32_bitlevel": bitlevel_sgemm}
BITLEVEL_CGEMM_IMPLS: dict[str, Callable] = {"m3xu_fp32c_bitlevel": bitlevel_cgemm}


@dataclass(frozen=True)
class AccuracyResult:
    """Error of one implementation against the float64 reference."""

    name: str
    max_rel_error: float
    matching_bits: float
    mean_abs_error: float


def _well_conditioned(rng: np.ndarray, m: int, n: int, k: int) -> tuple:
    """Positive-mean operands: dot products do not catastrophically cancel,
    so errors measure rounding, not conditioning."""
    a = quantize(rng.uniform(0.5, 1.5, size=(m, k)), FP32)
    b = quantize(rng.uniform(0.5, 1.5, size=(k, n)), FP32)
    c = quantize(rng.uniform(-0.5, 0.5, size=(m, n)), FP32)
    return a, b, c


def _apply_impl(args: tuple[Callable, np.ndarray, np.ndarray, np.ndarray]) -> np.ndarray:
    """Module-level (picklable) worker: run one GEMM implementation."""
    fn, a, b, c = args
    return fn(a, b, c)


@memoize(ignore=("workers",))
def sgemm_accuracy_study(
    m: int = 48, n: int = 48, k: int = 96, seed: int = 11,
    impls: dict[str, Callable] | None = None,
    workers: int | None = None,
) -> list[AccuracyResult]:
    """Error of every FP32 GEMM implementation vs float64 (well-conditioned).

    *workers* fans the (independent) implementations out across processes;
    the result list is identical for every worker count — which is why
    *workers* is excluded from the memoisation key. Repeated studies on
    the same (m, n, k, seed, impls) replay the cached result; pass
    ``use_cache=False`` to force recomputation.
    """
    rng = np.random.default_rng(seed)
    a, b, c = _well_conditioned(rng, m, n, k)
    ref = gemm_fp64(a, b, c)
    impls = impls or SGEMM_IMPLS
    outputs = parallel_map(
        _apply_impl, [(fn, a, b, c) for fn in impls.values()],
        workers=workers, chunk_size=1,
    )
    results = []
    for name, got in zip(impls, outputs):
        results.append(
            AccuracyResult(
                name=name,
                max_rel_error=max_relative_error(got, ref),
                matching_bits=matching_bits(got, ref),
                mean_abs_error=float(np.mean(np.abs(got - ref))),
            )
        )
    return results


@memoize(ignore=("workers",))
def cgemm_accuracy_study(
    m: int = 32, n: int = 32, k: int = 64, seed: int = 13,
    impls: dict[str, Callable] | None = None,
    workers: int | None = None,
) -> list[AccuracyResult]:
    """Error of every FP32C GEMM implementation vs complex128 (memoised
    like :func:`sgemm_accuracy_study`)."""
    rng = np.random.default_rng(seed)
    a = quantize_complex(
        rng.uniform(0.5, 1.5, size=(m, k)) + 1j * rng.uniform(0.5, 1.5, size=(m, k)), FP32
    )
    b = quantize_complex(
        rng.uniform(0.5, 1.5, size=(k, n)) + 1j * rng.uniform(0.5, 1.5, size=(k, n)), FP32
    )
    c = np.zeros((m, n), dtype=np.complex128)
    ref = cgemm_fp64(a, b, c)
    impls = impls or CGEMM_IMPLS
    outputs = parallel_map(
        _apply_impl, [(fn, a, b, c) for fn in impls.values()],
        workers=workers, chunk_size=1,
    )
    results = []
    for name, got in zip(impls, outputs):
        rel = np.abs(got - ref) / np.maximum(np.abs(ref), 1e-300)
        mx = float(np.max(rel))
        results.append(
            AccuracyResult(
                name=name,
                max_rel_error=mx,
                matching_bits=float(min(53.0, -np.log2(mx))) if mx > 0 else 53.0,
                mean_abs_error=float(np.mean(np.abs(got - ref))),
            )
        )
    return results
