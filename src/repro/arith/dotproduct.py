"""Vectorised dot-product-unit and FMA-chain models.

Two accumulation disciplines appear throughout the paper:

* **Dot-product units** (Tensor Cores, M3XU): all partial products of one
  MMA step are multiplied exactly, aligned, summed through a wide datapath
  (:func:`~repro.arith.accumulator.aligned_sum`) and rounded once into the
  accumulator format.
* **FMA chains** (CUDA/SIMT cores): one rounding to FP32 after *every*
  multiply-add.

Exactness note (why float64 carries the products): the multiplier inputs
are at most 24-bit significands (FP32 split parts are <= 12 bits; FP16/
BF16/TF32 are <= 11 bits; full FP32 is 24 bits), so every product has at
most 48 significant bits and is exact in float64.
"""

from __future__ import annotations

import numpy as np

from ..types.formats import FloatFormat
from ..types.quantize import quantize
from .accumulator import aligned_sum

__all__ = ["dot_product_unit", "fma_chain_dot", "pairwise_tree_dot"]

_MAX_SIG_BITS = 24  # largest multiplier input significand in any mode


def _check_product_exactness(a: np.ndarray, b: np.ndarray) -> None:
    """Guard: inputs wider than 24-bit significands would make float64
    products inexact and silently corrupt the model."""
    # Cheap structural check on a sample (full check would quantise twice).
    for arr in (a, b):
        flat = arr.reshape(-1)
        sample = flat[:: max(1, flat.size // 64)]
        finite = sample[np.isfinite(sample) & (sample != 0.0)]
        if finite.size == 0:
            continue
        m, _ = np.frexp(np.abs(finite))
        sig = np.ldexp(m, _MAX_SIG_BITS)
        if not np.all(sig == np.rint(sig)):
            raise ValueError(
                "dot_product_unit inputs must have <= 24-bit significands "
                "(quantise or split operands first)"
            )


def dot_product_unit(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | float = 0.0,
    *,
    out_fmt: FloatFormat,
    acc_bits: int | None = None,
    include_c_in_wide_sum: bool = True,
    check_inputs: bool = False,
) -> np.ndarray:
    """One dot-product-unit reduction: ``round(sum_k a_k*b_k [+ c])``.

    Parameters
    ----------
    a, b:
        Broadcast-compatible float64 arrays; the reduction runs over the
        **last axis**. Elements must carry at most 24 significand bits.
    c:
        Accumulator input (shape of ``a``/``b`` without the last axis).
    out_fmt:
        Format of the result register (FP32 for every mode in the paper).
    acc_bits:
        Finite adder-tree width; ``None`` = float64 wide path (default for
        performance; see :mod:`repro.arith.accumulator`).
    include_c_in_wide_sum:
        If True the C operand joins the aligned wide sum (the M3XU
        behaviour — C is held in the 48-bit accumulation register). If
        False the wide product sum is rounded to *out_fmt* first and C is
        added with a second *out_fmt* rounding (a stricter model of units
        whose C path is a plain FP32 adder).
    check_inputs:
        Enable the significand-width guard (used by tests).

    Returns
    -------
    np.ndarray
        float64 values exactly representable in *out_fmt*.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if check_inputs:
        _check_product_exactness(a, b)
    products = a * b  # exact by the significand-width precondition

    if include_c_in_wide_sum:
        c_arr = np.broadcast_to(
            np.asarray(c, dtype=np.float64), products.shape[:-1]
        )[..., None]
        addends = np.concatenate(
            [products, c_arr], axis=-1
        ) if products.shape[-1] else c_arr
        wide = aligned_sum(addends, axis=-1, acc_bits=acc_bits)
        return quantize(wide, out_fmt)

    wide = aligned_sum(products, axis=-1, acc_bits=acc_bits)
    partial = quantize(wide, out_fmt)
    return quantize(partial + np.asarray(c, dtype=np.float64), out_fmt)


def fma_chain_dot(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | float,
    fmt: FloatFormat,
) -> np.ndarray:
    """Dot product over the last axis as a chain of *fmt*-rounded FMAs.

    The SIMT/CUDA-core model: each step performs one fused multiply-add
    with a single rounding to *fmt* (products of *fmt* values are exact in
    float64, so ``quantize(acc + a*b)`` is a true FMA for fmt <= FP32).
    Vectorised over all leading axes; the K loop is sequential, as it is
    in the hardware.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    a, b = np.broadcast_arrays(a, b)
    acc = np.broadcast_to(
        quantize(np.asarray(c, dtype=np.float64), fmt), a.shape[:-1]
    ).copy()
    for k in range(a.shape[-1]):
        acc = quantize(acc + a[..., k] * b[..., k], fmt)
    return acc


def pairwise_tree_dot(
    a: np.ndarray,
    b: np.ndarray,
    fmt: FloatFormat,
) -> np.ndarray:
    """Dot product over the last axis via a balanced binary add tree with
    *fmt* rounding at every node.

    Models reduction trees used by SIMT kernels that accumulate partial
    sums across threads (e.g. split-K epilogues); error grows like
    ``log2(K)`` ulps instead of ``K`` ulps for the sequential chain.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    vals = quantize(a * b, fmt)
    while vals.shape[-1] > 1:
        n = vals.shape[-1]
        even = vals[..., 0 : n - (n % 2) : 2]
        odd = vals[..., 1::2]
        paired = quantize(even + odd, fmt)
        if n % 2:
            paired = np.concatenate([paired, vals[..., -1:]], axis=-1)
        vals = paired
    return vals[..., 0]
