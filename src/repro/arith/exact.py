"""Arbitrary-precision exact reference arithmetic.

This is the ground truth against which every vectorised hardware model in
:mod:`repro.arith` and :mod:`repro.mxu` is validated. Values are carried
as exact rationals (:class:`fractions.Fraction`); rounding to a target
format is performed once, with explicit round-to-nearest-even on the real
result — i.e. *correct rounding*.

It is deliberately scalar and slow; tests use it on small operands.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence

import numpy as np

from ..types.formats import FloatFormat
from ..types.rounding import RoundingMode

__all__ = [
    "to_fraction",
    "round_fraction",
    "exact_dot",
    "fma_round",
    "sequential_fma_dot",
    "chunked_dot",
]


def to_fraction(x: float) -> Fraction:
    """Convert a finite float64 to an exact rational."""
    if not np.isfinite(x):
        raise ValueError("exact arithmetic is defined for finite values only")
    return Fraction(float(x))


def round_fraction(
    value: Fraction, fmt: FloatFormat, mode: RoundingMode = RoundingMode.NEAREST_EVEN
) -> float:
    """Correctly round an exact rational to *fmt*, returned as float64.

    Overflow saturates to ±inf under RNE (matching IEEE conversions) and to
    ±max_value under truncation.
    """
    if value == 0:
        return 0.0
    sign = -1.0 if value < 0 else 1.0
    mag = -value if value < 0 else value

    # Find unbiased exponent e with mag in [2^e, 2^(e+1)).
    e = mag.numerator.bit_length() - mag.denominator.bit_length()
    if mag >= Fraction(2) ** (e + 1):
        e += 1
    elif mag < Fraction(2) ** e:
        e -= 1
    assert Fraction(2) ** e <= mag < Fraction(2) ** (e + 1)

    e_eff = max(e, fmt.emin)  # subnormal grid floor
    grid_exp = e_eff - fmt.mantissa_bits
    scaled = mag / Fraction(2) ** grid_exp

    # Round the exact rational to an integer on the grid.
    n, d = scaled.numerator, scaled.denominator
    q, r = divmod(n, d)
    if mode is RoundingMode.NEAREST_EVEN:
        if 2 * r > d or (2 * r == d and q % 2 == 1):
            q += 1
    # Exact despite routing through Python floats: q <= 2**(mantissa_bits
    # + 1) <= 2**53 (float(q) lossless), 2.0**grid_exp is a power of two,
    # and q * 2**grid_exp is representable in fmt (subset of float64) by
    # construction, so each multiply rounds to an exact result.
    # repro: allow[PS101] proven exact; regression: test_round_fraction_float_path_exact
    result = float(sign) * float(q) * 2.0**grid_exp

    if abs(result) > fmt.max_value:
        if mode is RoundingMode.NEAREST_EVEN:
            return float(np.copysign(np.inf, sign))
        return float(np.copysign(fmt.max_value, sign))
    return result


def exact_dot(
    a: Sequence[float],
    b: Sequence[float],
    c: float,
    out_fmt: FloatFormat,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> float:
    """Correctly-rounded dot product: ``round(sum(a*b) + c)``.

    The single-rounding ideal — the most accurate result any hardware could
    produce. M3XU's wide accumulators approach this; FP32 FMA chains and
    the software schemes fall short of it.
    """
    acc = to_fraction(c)
    for x, y in zip(a, b, strict=True):
        acc += to_fraction(x) * to_fraction(y)
    return round_fraction(acc, out_fmt, mode)


def fma_round(a: float, b: float, c: float, fmt: FloatFormat) -> float:
    """A single fused multiply-add with one correct rounding to *fmt*."""
    return round_fraction(to_fraction(a) * to_fraction(b) + to_fraction(c), fmt)


def sequential_fma_dot(
    a: Iterable[float], b: Iterable[float], c: float, fmt: FloatFormat
) -> float:
    """Dot product as a chain of format-rounded FMAs (the SIMT-core model).

    ``acc = fma(a_k, b_k, acc)`` with *fmt* rounding at every step — exactly
    what one CUDA-core thread does when accumulating a K-loop in FP32.
    """
    acc = float(c)
    for x, y in zip(a, b):
        acc = fma_round(float(x), float(y), acc, fmt)
    return acc


def chunked_dot(
    a: Sequence[float],
    b: Sequence[float],
    c: float,
    chunk: int,
    acc_fmt: FloatFormat,
    out_fmt: FloatFormat,
) -> float:
    """Dot product accumulated in exact chunks with *acc_fmt* rounding between.

    Models an MXU that computes each K-``chunk`` exactly in a wide internal
    path, rounds the running total to *acc_fmt* after every chunk (the
    accumulator register format), and finally rounds to *out_fmt*. With
    ``acc_fmt == FP32`` and ``chunk == K_mma`` this is the tensor-core GEMM
    accumulation model; with ``acc_fmt == FP64`` it approximates M3XU's
    48-bit accumulation registers.
    """
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    acc = to_fraction(c)
    n = len(a)
    for start in range(0, n, chunk):
        part = Fraction(0)
        for x, y in zip(a[start : start + chunk], b[start : start + chunk], strict=True):
            part += to_fraction(x) * to_fraction(y)
        acc = to_fraction(round_fraction(acc + part, acc_fmt))
    return round_fraction(acc, out_fmt)
