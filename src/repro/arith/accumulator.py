"""Finite-width alignment-based accumulation (the dot-product-unit adder tree).

Hardware dot-product units do not sum floating-point numbers pairwise with
per-add rounding. They align all partial products to a common anchor
exponent, truncate each to the adder-tree width, and add as integers — one
rounding *region* per reduction, not per element. M3XU's contribution on
this axis is simply *wider* registers: "slight extensions to accumulators
to accumulate numbers in correct double-precision formats" with "48-bit
registers for the accumulation results" (Section IV-A).

:func:`aligned_sum` models exactly that: reduce along an axis with
configurable datapath width.

Two accumulation disciplines live here:

* :func:`aligned_sum` / :func:`aligned_sum_groups` — **single-anchor**
  alignment: the anchor is the maximum exponent over the whole reduction
  group, known before any addition. Every addend is rounded once against
  that final window. This is what the fused MMA fast path uses.
* :func:`sequential_windowed_sum` — **sequential** alignment, the
  bit-level RTL discipline of
  :class:`~repro.mxu.bitlevel.BitAccumulator`: the anchor is the running
  maximum, and whenever a later addend raises it, the *partial sum
  accumulated so far* is re-rounded by the shift. The two disciplines are
  bit-identical unless the exponent span exceeds the window width (then
  single-anchor rounds each small addend individually while the
  sequential path rounds their sum), so the vectorized bit-level engine
  must replicate the sequential discipline rather than reuse the
  single-anchor kernels.
* :func:`segmented_windowed_sum` — the same sequential discipline
  reformulated as a **segmented** exact reduction: the anchor trajectory
  is a masked cummax (known up front), rounding happens only at the
  slots that raise the anchor, the slots between two raises form
  segments whose contributions sum *exactly* (integer addition is
  associative), and the per-segment partial sums — one segmented
  ``reduceat`` over the aligned addends — are merged with the same
  re-round-on-anchor-raise
  rule. Provably bit-identical to :func:`sequential_windowed_sum` (the
  retained oracle). :func:`segmented_windowed_sum_f32` is its packed
  fast path — signed float32 slots carrying exact 24-bit integers —
  and is what the hot bit-level engine runs on.
"""

from __future__ import annotations

import numpy as np

from ..types.formats import FloatFormat
from ..types.rounding import RoundingMode, round_significand

__all__ = [
    "aligned_sum",
    "aligned_sum_groups",
    "sequential_windowed_sum",
    "segmented_windowed_sum",
    "segmented_windowed_sum_f32",
    "int_window_to_float",
]

#: Width of the M3XU accumulation registers (Section IV-A).
M3XU_ACC_BITS = 48

#: Effective internal alignment width attributed to baseline Tensor Core
#: dot-product units by reverse-engineering studies (products are aligned
#: and summed with around 24+ carry bits before the FP32 round).
TENSORCORE_ACC_BITS = 27


def aligned_sum(
    products: np.ndarray,
    axis: int = -1,
    acc_bits: int | None = M3XU_ACC_BITS,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> np.ndarray:
    """Sum *products* along *axis* through a finite-width aligned datapath.

    Parameters
    ----------
    products:
        float64 partial products (each individually exact — the multiplier
        outputs). Non-finite values propagate to the result.
    axis:
        Reduction axis.
    acc_bits:
        Datapath width W. Every addend is aligned to the largest exponent
        in its reduction group and rounded to W significant bits relative
        to that anchor before the integer add. ``None`` selects the
        float64 fast path (W = 53, adequate for M3XU's 48-bit claim and
        used by the large-scale models; the finite-width path validates it).
    mode:
        Rounding applied during alignment (hardware truncates or RNEs the
        shifted-out bits; both are supported).

    Returns
    -------
    np.ndarray
        float64 sums with the axis reduced.

    Notes
    -----
    With ``acc_bits = W`` the integer representation of each addend is
    ``round(p * 2**(W-2-Emax))`` — the largest addend occupies W-1 bits, so
    a 64-bit integer holds sums of up to ~2**5 addends headroom-free. The
    reduction length must keep ``W + log2(K) + 2 <= 63``.
    """
    products = np.asarray(products, dtype=np.float64)
    if acc_bits is None:
        return products.sum(axis=axis)
    k = products.shape[axis]
    if acc_bits + int(np.ceil(np.log2(max(k, 1)))) + 2 > 63:
        raise ValueError(
            f"acc_bits={acc_bits} with K={k} overflows the int64 adder model"
        )

    moved = np.moveaxis(products, axis, -1)
    # Non-finite inputs are the exception; skip the mask + masked copy (two
    # full-size temporaries) when everything is finite.
    if np.isfinite(moved).all():
        bad = None
        safe = moved
    else:
        bad = ~np.isfinite(moved)
        safe = np.where(bad, 0.0, moved)

    # Anchor: the largest magnitude exponent in each reduction group.
    absval = np.abs(safe)
    amax = absval.max(axis=-1, keepdims=True)
    nonzero = amax > 0.0
    _, e = np.frexp(np.where(nonzero, amax, 1.0))
    anchor = e.astype(np.int64) - 1  # amax in [2^anchor, 2^(anchor+1))

    scale = acc_bits - 2 - anchor
    scaled = np.ldexp(safe, scale)
    if mode is RoundingMode.NEAREST_EVEN:
        ints = np.rint(scaled).astype(np.int64)
    else:
        ints = np.trunc(scaled).astype(np.int64)
    total = ints.sum(axis=-1)
    out = np.ldexp(total.astype(np.float64), -scale[..., 0])
    out = np.where(nonzero[..., 0], out, 0.0)

    if bad is not None:
        # IEEE-style propagation: any NaN -> NaN; inf of one sign -> inf;
        # mixed infs -> NaN.
        nan_in = np.isnan(moved).any(axis=-1)
        pinf = np.isposinf(moved).any(axis=-1)
        ninf = np.isneginf(moved).any(axis=-1)
        out = np.where(pinf & ~ninf, np.inf, out)
        out = np.where(ninf & ~pinf, -np.inf, out)
        out = np.where(nan_in | (pinf & ninf), np.nan, out)
    return out


def aligned_sum_groups(
    groups: list[np.ndarray],
    acc_bits: int | None = M3XU_ACC_BITS,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> np.ndarray:
    """Windowed reduction of pre-grouped addends along their shared last axis.

    Bit-identical to ``aligned_sum(np.concatenate(groups, axis=-1), axis=-1)``
    without materialising the concatenation: the anchor is the running
    maximum of the per-group maxima (max is associative), each group is
    aligned and rounded against that anchor exactly as the monolithic path
    would, and the integer partial sums accumulate into one preallocated
    int64 register (integer addition is exact and commutative). This is the
    reduction the fused MMA path uses: one group per multiplier-lane
    assignment plus one for the C operand, no ``(M, N, parts*K+1)`` tensor.

    Parameters
    ----------
    groups:
        float64 arrays broadcast-compatible except along the last axis,
        which is reduced across all groups jointly.
    acc_bits / mode:
        As for :func:`aligned_sum`.
    """
    groups = [np.asarray(g, dtype=np.float64) for g in groups]
    if acc_bits is None:
        return np.concatenate(groups, axis=-1).sum(axis=-1)
    k_total = sum(g.shape[-1] for g in groups)
    lead_shape = np.broadcast_shapes(*(g.shape[:-1] for g in groups))
    groups = [g for g in groups if g.shape[-1] > 0]
    if not groups:
        return np.zeros(lead_shape, dtype=np.float64)
    if acc_bits + int(np.ceil(np.log2(max(k_total, 1)))) + 2 > 63:
        raise ValueError(
            f"acc_bits={acc_bits} with K={k_total} overflows the int64 adder model"
        )
    if not all(np.isfinite(g).all() for g in groups):
        # Non-finite propagation is the slow corner; defer to the reference.
        return aligned_sum(
            np.concatenate(groups, axis=-1), axis=-1, acc_bits=acc_bits, mode=mode
        )

    amax: np.ndarray | None = None
    for g in groups:
        gmax = np.abs(g).max(axis=-1)
        amax = gmax if amax is None else np.maximum(amax, gmax)
    assert amax is not None
    nonzero = amax > 0.0
    _, e = np.frexp(np.where(nonzero, amax, 1.0))
    anchor = e.astype(np.int64) - 1  # amax in [2^anchor, 2^(anchor+1))

    scale = acc_bits - 2 - anchor
    total = np.zeros(lead_shape, dtype=np.int64)
    for g in groups:
        scaled = np.ldexp(g, scale[..., None])
        if mode is RoundingMode.NEAREST_EVEN:
            ints = np.rint(scaled).astype(np.int64)
        else:
            ints = np.trunc(scaled).astype(np.int64)
        total += ints.sum(axis=-1)
    out = np.ldexp(total.astype(np.float64), -scale)
    return np.where(nonzero, out, 0.0)


# ---------------------------------------------------------------------------
# Sequential windowed accumulation (the BitAccumulator discipline, as arrays)
# ---------------------------------------------------------------------------

#: Anchor value of an accumulator that has seen no nonzero addend yet. Far
#: below any exponent a finite-format product can produce, yet small enough
#: that ``top - _ANCHOR_SENTINEL`` cannot overflow int64 for |top| < 2**61.
_ANCHOR_SENTINEL = np.int64(-(1 << 52))


def _bit_length_int64(x: np.ndarray) -> np.ndarray:
    """Exact bit length of positive int64 values (vectorized).

    ``frexp`` of the float64 cast gives the bit length except when a value
    just below a power of two rounds *up* across it (possible above 2**53);
    the integer shift check corrects that overestimate.
    """
    _, e = np.frexp(x.astype(np.float64))
    e64 = e.astype(np.int64)
    over = (x >> np.minimum(e64 - 1, np.int64(63))) == 0
    return e64 - over.astype(np.int64)


def sequential_windowed_sum(
    sign: np.ndarray,
    sig: np.ndarray,
    lsb_exp: np.ndarray,
    acc_bits: int = M3XU_ACC_BITS,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> tuple[np.ndarray, np.ndarray]:
    """Accumulate addend slots along the last axis with a running anchor.

    Each slot ``s`` contributes ``(-1)**sign[..., s] * sig[..., s] *
    2**lsb_exp[..., s]`` to a W-bit shifted integer window, in slot order,
    exactly as :class:`~repro.mxu.bitlevel.BitAccumulator` would process
    the same sequence element by element: zero significands are skipped,
    a slot whose MSB exceeds the running anchor re-rounds the partial sum
    by the anchor shift, and every addend is aligned to the current window
    LSB with *mode* rounding. The slot loop is sequential (the discipline
    demands it) but each step is vectorized over all leading axes.

    Parameters
    ----------
    sign:
        0/1 addend signs (1 = negative), broadcastable against *sig*.
    sig:
        Non-negative int64 addend significands; shape ``(..., S)``.
    lsb_exp:
        Binary weight of each significand's LSB. Magnitudes must stay
        below ``2**50`` so anchor arithmetic cannot overflow.
    acc_bits:
        Window width W (48 in M3XU). ``acc_bits + ceil(log2(S)) + 1`` must
        stay <= 63 so the int64 partial sums cannot overflow.
    mode:
        Rounding applied to alignment and rescale shifts.

    Returns
    -------
    tuple[np.ndarray, np.ndarray]
        ``(value, window_lsb)``: the signed int64 window contents and the
        binary weight of the window's LSB, per element. The represented
        result is ``value * 2**window_lsb``.
    """
    sig_arr = np.asarray(sig, dtype=np.int64)
    sign_arr = np.asarray(sign, dtype=np.int64)
    lsb_arr = np.asarray(lsb_exp, dtype=np.int64)
    sign_arr, sig_arr, lsb_arr = np.broadcast_arrays(sign_arr, sig_arr, lsb_arr)
    if sig_arr.ndim == 0:
        raise ValueError("addend slots must have at least one axis")
    if acc_bits < 8:
        raise ValueError("accumulator width must be >= 8 bits")
    n_slots = sig_arr.shape[-1]
    if acc_bits + int(np.ceil(np.log2(max(n_slots, 1)))) + 1 > 63:
        raise ValueError(
            f"acc_bits={acc_bits} with {n_slots} slots overflows the int64 window"
        )
    if np.any(sig_arr < 0):
        raise ValueError("significands must be non-negative")

    nz = sig_arr != 0
    msb = _bit_length_int64(np.where(nz, sig_arr, 1)) - 1
    top = np.where(nz, lsb_arr + msb, _ANCHOR_SENTINEL)
    # The running anchor is a masked cumulative max, so the whole anchor
    # trajectory — and with it every alignment shift — is known up front;
    # only the value recursion (whose rescale *rounds* the partial sum)
    # stays sequential.
    anchor = np.maximum.accumulate(top, axis=-1)
    prev = np.concatenate(
        [
            np.full(anchor.shape[:-1] + (1,), _ANCHOR_SENTINEL, dtype=np.int64),
            anchor[..., :-1],
        ],
        axis=-1,
    )
    rescale = anchor - prev

    window_lsb = anchor - acc_bits + 1
    rel = lsb_arr - window_lsb
    # For nonzero slots rel <= acc_bits - 1 - msb, so the left shift stays
    # inside 63 bits; zero slots may carry arbitrary rel and are masked.
    aligned = np.where(
        rel >= 0,
        sig_arr << np.clip(rel, 0, 63),
        round_significand(sig_arr, np.maximum(-rel, 0), mode),
    )
    addend = np.where(nz, np.where(sign_arr != 0, -aligned, aligned), 0)

    value = np.zeros(sig_arr.shape[:-1], dtype=np.int64)
    for s in range(n_slots):
        shift = rescale[..., s]
        if bool(np.any(shift > 0)):
            neg = value < 0
            mag = np.where(neg, -value, value)
            mag = round_significand(mag, shift, mode)
            value = np.where(neg, -mag, mag)
        value = value + addend[..., s]
    return value, window_lsb[..., -1] if n_slots else np.full(
        sig_arr.shape[:-1], _ANCHOR_SENTINEL - acc_bits + 1, dtype=np.int64
    )


def _rne_shift_positive(sig: np.ndarray, shift: np.ndarray) -> np.ndarray:
    """Round-half-even of ``sig >> shift`` for ``sig >= 0``, ``1 <= shift``.

    The fused three-term form of the RNE decision table: with
    ``half = 2**(shift-1)`` and ``b = (sig >> shift) & 1`` (the quotient's
    parity), ``(sig + half - 1 + b) >> shift`` rounds up exactly when the
    remainder exceeds ``half``, or ties with an odd quotient — one shift
    chain instead of the mask/compare cascade of
    :func:`~repro.types.rounding.round_significand`. Valid in any integer
    width as long as ``sig + 2**(shift-1)`` has headroom and ``shift``
    stays below the bit width; callers pre-clamp the shifts so both hold.
    """
    one = sig.dtype.type(1)
    b = (sig >> shift) & one
    bias = ((one << (shift - one)) - one) + b
    return (sig + bias) >> shift


def _merge_segments(
    aligned_flat: np.ndarray,
    rescale_flat: np.ndarray,
    n_slots: int,
    n_rows: int,
    mode: RoundingMode,
) -> np.ndarray:
    """Merge constant-anchor segments row by row, re-rounding at raises.

    ``aligned_flat`` holds the signed window-aligned addends of ``n_rows``
    reduction rows laid out contiguously (``n_slots`` per row); a positive
    ``rescale_flat`` entry marks an anchor raise. Segment totals come from
    one :func:`np.add.reduceat` over the flat buffer — a segment may spill
    past its row's end into the *leading* slots of the next row, but those
    sit before that row's first anchor raise and are therefore exactly
    zero, so the spill adds nothing. Float32 addends are reduced with a
    float64 accumulator: every addend is an integer below ``2**48`` and
    row totals stay below ``2**53``, so the sums are exact.

    Events are then merged rank by rank (a row's e-th anchor raise) on
    compacted index lists with the re-round-on-anchor-raise rule; total
    merge work is proportional to the event count. The first event of
    every row merges into a zero partial sum — rounding zero is a no-op,
    which is what makes the oracle's sentinel-relative first shift
    irrelevant here.
    """
    mask = rescale_flat > 0
    event_idx = np.flatnonzero(mask)
    value = np.zeros(n_rows, dtype=np.int64)
    if not event_idx.size:
        return value
    if aligned_flat.dtype == np.float32:
        seg = np.add.reduceat(aligned_flat, event_idx, dtype=np.float64)
        seg = seg.astype(np.int64)
    else:
        seg = np.add.reduceat(aligned_flat, event_idx)
    shifts = rescale_flat[event_idx].astype(np.int64, copy=False)
    # Events are row-grouped (flatnonzero returns sorted indices), so a
    # row's e-th event sits at ``starts[row] + e`` in the compacted
    # arrays. Merging rank by rank then needs no sort and no per-event
    # rescans: iteration ``e`` selects the rows with more than ``e``
    # events — total work is the event count, not n_rows * e_max.
    # Per-row event counts from the (sorted) event stream — a bincount
    # over 2ish events/row beats a boolean reduction over every slot.
    counts = np.bincount(event_idx // n_slots, minlength=n_rows)
    ends = np.cumsum(counts)
    starts = ends - counts
    e_max = int(counts.max())
    rne = mode is RoundingMode.NEAREST_EVEN
    # Same clamps as the alignment pass, hoisted over the whole event
    # stream: magnitudes stay below 2**53, so shift 62 (the reference's
    # everything-rounds-away point) maps to 63 under RNE and is already
    # exact under truncation.
    if e_max > 1:
        np.clip(shifts, 1, 63, out=shifts)
        if rne:
            np.copyto(shifts, np.int64(63), where=shifts >= 62)
    # A row's rank-0 event merges into a zero partial sum, so its shift
    # is skipped outright.
    rows0 = np.flatnonzero(counts)
    value[rows0] = seg[starts[rows0]]
    for e in range(1, e_max):
        r = np.flatnonzero(counts > e)
        sel = starts[r] + e
        partial = value[r]
        neg = partial < 0
        mag = np.abs(partial)
        if rne:
            mag = _rne_shift_positive(mag, shifts[sel])
        else:
            mag = mag >> shifts[sel]
        np.negative(mag, out=mag, where=neg)
        value[r] = mag + seg[sel]
    return value


def segmented_windowed_sum(
    sign: np.ndarray,
    sig: np.ndarray,
    lsb_exp: np.ndarray,
    acc_bits: int = M3XU_ACC_BITS,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> tuple[np.ndarray, np.ndarray]:
    """Blocked/segmented exact reduction of the sequential window discipline.

    Bit-identical to :func:`sequential_windowed_sum` on every input (the
    property suite sweeps adversarial anchor trajectories), but the slot
    walk is replaced by a segmented reduction whose step count is the
    number of *anchor raises*, not the number of slots:

    1. The anchor trajectory is the masked running maximum of the slot
       MSB exponents (a cummax — the same observation the sequential
       kernel already exploits for alignment).
    2. The partial sum is re-rounded **only** at slots that raise the
       anchor (``rescale > 0``); everywhere else the discipline adds
       already-aligned integers, which is associative. Each maximal run
       of constant anchor is therefore a *segment* whose net contribution
       is an exact integer: one segmented reduction (``np.add.reduceat``
       at the anchor-raising slots) recovers every segment total without
       walking the slots in Python.
    3. Segment totals are merged in order with the same
       re-round-on-anchor-raise rule the scalar
       :class:`~repro.mxu.bitlevel.BitAccumulator` applies: ``value =
       round(value, rescale) + segment``. Elements with fewer raises are
       padded with no-op merges (shift 0, segment 0).

    Random operands raise the anchor O(log S) times per element, so the
    merge loop is much shorter than the slot loop; all heavy tensors run
    in the narrowest safe integer dtype (the alignment rounding fits
    int32 whenever significands stay below 2**30, exponent-side arrays
    fit int32 whenever LSB weights stay within 2**28 — both always true
    for the 24-bit products of the bit-level engine).

    Parameters and return value match :func:`sequential_windowed_sum`;
    ``sig`` additionally accepts any integer dtype (converted exactly),
    and ``lsb_exp``/``sign`` may be narrow integer types.
    """
    sign_arr = np.asarray(sign)
    sig_in = np.asarray(sig)
    lsb_in = np.asarray(lsb_exp)
    if lsb_in.dtype.kind != "i":
        lsb_in = lsb_in.astype(np.int64)
    shape = np.broadcast_shapes(sign_arr.shape, sig_in.shape, lsb_in.shape)
    if not shape:
        raise ValueError("addend slots must have at least one axis")
    if acc_bits < 8:
        raise ValueError("accumulator width must be >= 8 bits")
    n_slots = shape[-1]
    if acc_bits + int(np.ceil(np.log2(max(n_slots, 1)))) + 1 > 63:
        raise ValueError(
            f"acc_bits={acc_bits} with {n_slots} slots overflows the int64 window"
        )
    lead = shape[:-1]
    if n_slots == 0:
        return (
            np.zeros(lead, dtype=np.int64),
            np.full(lead, _ANCHOR_SENTINEL - acc_bits + 1, dtype=np.int64),
        )
    sig_arr = np.broadcast_to(sig_in.astype(np.int64, copy=False), shape)
    lsb_arr = np.broadcast_to(lsb_in, shape)
    if np.any(sig_arr < 0):
        raise ValueError("significands must be non-negative")
    sig_max = int(sig_arr.max()) if sig_arr.size else 0

    # Exponent-side dtype: int32 whenever the LSB range provably fits
    # (always true for the engine's int16 slot buffers); otherwise int64
    # with the full sentinel. The merge algebra is dtype-independent —
    # the first-slot rescale differs from the oracle's (sentinel offset)
    # but both land in the everything-rounds-away regime on a zero
    # partial sum, and the returned window LSB is fixed up below.
    if lsb_arr.size == 0 or lsb_arr.dtype.itemsize <= 2:
        small_exp = True
    elif lsb_arr.dtype == np.int64 or lsb_arr.dtype.itemsize == 4:
        lo, hi = int(lsb_arr.min()), int(lsb_arr.max())
        small_exp = -(1 << 28) <= lo and hi <= (1 << 28)
    else:
        small_exp = False
    exp_dt = np.int32 if small_exp else np.int64
    sentinel = exp_dt(-(1 << 30)) if small_exp else _ANCHOR_SENTINEL

    # Slot MSB exponents -> masked-cummax anchor trajectory. frexp of the
    # float32 cast is the cheap exact bit length below 2**24; the general
    # path goes through the correction in _bit_length_int64.
    nz = sig_arr != 0
    if sig_max < (1 << 24):
        f32 = sig_arr.astype(np.float32)  # repro: allow[PS105]
        e = np.frexp(f32)[1]
        top = np.add(lsb_arr, e, dtype=exp_dt)
        top -= exp_dt(1)
    else:
        bl = _bit_length_int64(np.where(nz, sig_arr, 1))
        top = np.add(lsb_arr, bl, dtype=exp_dt)
        top -= exp_dt(1)
    top = np.where(nz, top, sentinel)
    anchor = np.maximum.accumulate(top, axis=-1)
    rescale = np.empty_like(anchor)
    rescale[..., 0] = anchor[..., 0] - sentinel
    np.subtract(anchor[..., 1:], anchor[..., :-1], out=rescale[..., 1:])

    # Alignment against each slot's window: left shifts are exact; the
    # rounded right shifts are patched in afterwards (disjoint masks), in
    # int32 when the significands allow.
    window_lo = anchor - exp_dt(acc_bits - 1)
    rel = np.subtract(lsb_arr, window_lo, dtype=exp_dt)
    aligned = sig_arr << np.clip(rel, 0, 63)
    # Shift clamps, chosen so the shift stays below the working bit width
    # and matches the reference's shift>=62 -> 0 rule exactly: in int32
    # (sig < 2**30) every shift >= 31 genuinely rounds to 0, so clamping
    # at 31 is lossless; in int64 a shift of exactly 62 must *also* give
    # 0 (the reference clamps there), so 62 is mapped up to 63.
    need_round = rel < 0
    if bool(np.any(need_round)):
        nrel = np.negative(rel)
        if sig_max < (1 << 30):
            x: np.ndarray = sig_arr.astype(np.int32)
            s = np.clip(nrel, 1, 31).astype(np.int32, copy=False)
        else:
            x = np.asarray(sig_arr)
            s = np.clip(nrel, 1, 63).astype(np.int64, copy=False)
            if mode is RoundingMode.NEAREST_EVEN:
                np.copyto(s, np.int64(63), where=s >= 62)
        if mode is RoundingMode.NEAREST_EVEN:
            rounded = _rne_shift_positive(x, s)
        else:
            rounded = x >> s
        np.copyto(aligned, rounded, where=need_round, casting="same_kind")

    # Signed addends (zero slots align to 0, so no explicit mask is
    # needed); segment totals and the ordered merge live in the shared
    # helper.
    np.negative(aligned, out=aligned, where=np.broadcast_to(sign_arr != 0, shape))
    n_rows = aligned.size // n_slots
    value = _merge_segments(
        np.ascontiguousarray(aligned).reshape(-1),
        np.ascontiguousarray(rescale).reshape(-1),
        n_slots,
        n_rows,
        mode,
    ).reshape(lead)

    last = anchor[..., -1]
    window_last = np.where(last == sentinel, _ANCHOR_SENTINEL, last) - (
        acc_bits - 1
    )
    return value, window_last.astype(np.int64, copy=False)


#: Sentinel for the packed-float32 path's int16 exponent arrays.
_SENTINEL_I16 = np.int16(-(1 << 14))

#: Largest |LSB weight| the packed-float32 path accepts; keeps every
#: exponent-side intermediate (top, rescale, rel) inside int16 next to
#: the ``-2**14`` sentinel.
_F32_LSB_LIMIT = 1 << 13


def segmented_windowed_sum_f32(
    signed_sig: np.ndarray,
    lsb_exp: np.ndarray,
    acc_bits: int = M3XU_ACC_BITS,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> tuple[np.ndarray, np.ndarray]:
    """Packed-operand fast path of :func:`segmented_windowed_sum`.

    The bit-level engine's partial products are at most 24-bit integers
    (12-bit operand halves), so a *signed float32* carries each addend
    exactly — sign, significand and (via the exponent field) its own bit
    length — in half the bytes of the split int64/int8 representation:

    * the slot MSB exponent is read straight out of the IEEE exponent
      bits (biased exponent minus 127 is the bit length minus one for
      any positive integer, and the field ignores the sign bit);
    * exact alignment is one :func:`np.ldexp` (``sig * 2**rel`` with
      ``|sig| < 2**24`` and ``rel <= acc_bits - 1`` never leaves float32's
      exact-integer range);
    * the few slots that shift *down* (``rel < 0``) are rounded on a
      compacted index list in int32 and patched back;
    * segment totals are reduced with a float64 accumulator (exact below
      ``2**53``) and merged by :func:`_merge_segments`.

    Bit-identical to :func:`sequential_windowed_sum` applied to the
    unpacked (sign, |sig|, lsb) triple — the property suite drives both
    through the same adversarial trajectories.

    Parameters
    ----------
    signed_sig:
        ``float32`` array, each element an integer with ``|sig| < 2**24``
        (negative zero is treated as zero). Last axis is the slot axis.
    lsb_exp:
        Integer LSB weights, ``|lsb_exp| <= 2**13``, same shape.
    acc_bits, mode:
        As in :func:`sequential_windowed_sum`.
    """
    sig_arr = np.asarray(signed_sig)
    lsb_in = np.asarray(lsb_exp)
    if sig_arr.dtype != np.float32:
        raise TypeError("packed significands must be float32")
    if sig_arr.shape != lsb_in.shape:
        raise ValueError("signed_sig and lsb_exp must have identical shapes")
    if not sig_arr.ndim:
        raise ValueError("addend slots must have at least one axis")
    if acc_bits < 8:
        raise ValueError("accumulator width must be >= 8 bits")
    n_slots = sig_arr.shape[-1]
    # Aligned addends stay below 2**acc_bits, so a segment total (and
    # every float64 intermediate while reducing it) stays below
    # n_slots * 2**acc_bits; exactness needs that under 2**53.
    if n_slots * (1 << acc_bits) > (1 << 53):
        raise ValueError(
            f"acc_bits={acc_bits} with {n_slots} slots overflows the exact "
            "float64 segment accumulator"
        )
    lead = sig_arr.shape[:-1]
    if n_slots == 0:
        return (
            np.zeros(lead, dtype=np.int64),
            np.full(lead, _ANCHOR_SENTINEL - acc_bits + 1, dtype=np.int64),
        )
    lsb_arr = lsb_in.astype(np.int16, copy=False)
    if lsb_arr.size and (
        int(lsb_arr.min()) < -_F32_LSB_LIMIT or int(lsb_arr.max()) > _F32_LSB_LIMIT
    ):
        raise ValueError("packed path requires |lsb_exp| <= 2**13")
    sig2 = np.ascontiguousarray(sig_arr).reshape(-1, n_slots)
    lsb2 = np.ascontiguousarray(lsb_arr).reshape(-1, n_slots)

    # MSB exponents from the IEEE exponent field; +-0 maps to the
    # sentinel so zero slots never move the anchor.
    nz = sig2 != 0
    biased = (sig2.view(np.int32) >> 23) & np.int32(0xFF)
    top = lsb2 + biased.astype(np.int16)
    top -= np.int16(127)
    top = np.where(nz, top, _SENTINEL_I16)
    if n_slots <= 32:
        # Slot-major running maximum: ufunc accumulate walks a scalar
        # inner loop per row, but with few slots and many rows the
        # transposed walk is a handful of full-width SIMD passes.
        top_t = np.ascontiguousarray(top.T)
        for k in range(1, n_slots):
            np.maximum(top_t[k], top_t[k - 1], out=top_t[k])
        anchor = np.ascontiguousarray(top_t.T)
    else:
        anchor = np.maximum.accumulate(top, axis=-1)
    rescale = np.empty_like(anchor)
    rescale[:, 0] = anchor[:, 0] - _SENTINEL_I16
    np.subtract(anchor[:, 1:], anchor[:, :-1], out=rescale[:, 1:])

    # Window-relative alignment. Left shifts stay exact in float32; the
    # upward clip only ever fires on zero slots (a nonzero slot has
    # anchor >= top, hence rel <= acc_bits - 1), where ldexp keeps +-0.
    rel = np.subtract(lsb2, anchor, dtype=np.int16)
    rel += np.int16(acc_bits - 1)
    aligned = np.ldexp(sig2, np.maximum(rel, np.int16(0)).astype(np.int32))
    need = np.flatnonzero((rel < 0).reshape(-1))
    if need.size:
        # Compact rounding of the downward shifts: |sig| < 2**24 keeps
        # the fused RNE bias inside int32, and every shift >= 31 rounds
        # the whole addend away, so the clamp at 31 is lossless.
        f_flat = sig2.reshape(-1)[need]
        neg = f_flat < 0
        mag = np.abs(f_flat).astype(np.int32)
        shift = np.clip(
            -rel.reshape(-1)[need].astype(np.int32), np.int32(1), np.int32(31)
        )
        if mode is RoundingMode.NEAREST_EVEN:
            rounded = _rne_shift_positive(mag, shift)
        else:
            rounded = mag >> shift
        patched = rounded.astype(np.float32)  # repro: allow[PS105]
        np.negative(patched, out=patched, where=neg)
        aligned.reshape(-1)[need] = patched

    n_rows = sig2.shape[0]
    value = _merge_segments(
        aligned.reshape(-1), rescale.reshape(-1), n_slots, n_rows, mode
    ).reshape(lead)
    last = anchor[:, -1]
    window_last = np.where(
        last == _SENTINEL_I16, _ANCHOR_SENTINEL, last.astype(np.int64)
    ) - (acc_bits - 1)
    return value, window_last.reshape(lead)


def int_window_to_float(
    value: np.ndarray,
    window_lsb: np.ndarray,
    fmt: FloatFormat,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> np.ndarray:
    """Round ``value * 2**window_lsb`` to *fmt*, vectorized and bit-exact.

    The array counterpart of rounding the window contents through
    :func:`~repro.arith.exact.round_fraction`: one integer rounding onto
    the format's (subnormal-floored) grid, an exact ``ldexp``, and the
    format's overflow saturation. ``value == 0`` yields +0.0 (the
    canonical zero of the bit-level accumulator); a nonzero value that
    rounds away returns a signed zero, matching the exact reference.
    """
    value_arr = np.asarray(value, dtype=np.int64)
    lsb_arr = np.asarray(window_lsb, dtype=np.int64)
    value_arr, lsb_arr = np.broadcast_arrays(value_arr, lsb_arr)
    neg = value_arr < 0
    mag = np.abs(value_arr)
    zero = mag == 0
    # Bit length inline (zero slots borrow length 1; their output is
    # forced to +0.0 below): frexp is exact under 2**53, and the
    # round-up-across-a-power-of-two correction of _bit_length_int64 only
    # fires above that, so it is skipped when no value can need it.
    bl = np.frexp((mag + zero).astype(np.float64))[1].astype(np.int64)
    if int(mag.max(initial=0)) >= (1 << 53):
        bl -= (mag + zero) >> np.minimum(bl - 1, np.int64(63)) == 0
    msb_exp = lsb_arr + bl - 1
    grid = np.maximum(msb_exp, fmt.emin) - fmt.mantissa_bits
    drop = grid - lsb_arr
    # drop <= 0 means the window LSB already sits on or above the grid:
    # mag then carries at most mantissa_bits + 1 bits and is exact below.
    # The fused shifts reproduce round_significand bit for bit: shift 0
    # passes mag through, shifts >= 62 round everything away (mag < 2**62,
    # so an RNE shift of 63 is exactly 0), and the in-between shifts are
    # the standard add-half-minus-one-plus-parity form.
    dropc = np.maximum(drop, 0)
    if mode is RoundingMode.NEAREST_EVEN:
        s = np.where(dropc >= 62, np.int64(63), dropc)
        mag_r = np.where(s > 0, _rne_shift_positive(mag, np.maximum(s, 1)), mag)
    else:
        mag_r = np.where(dropc >= 62, 0, mag >> np.minimum(dropc, np.int64(61)))
    exp_r = np.where(drop > 0, grid, lsb_arr)
    with np.errstate(over="ignore"):
        out = np.asarray(np.ldexp(mag_r.astype(np.float64), exp_r))
    # mag_r >= 0, so overflow is one-sided and the sign is applied last.
    over = out > fmt.max_value
    if mode is RoundingMode.NEAREST_EVEN:
        np.copyto(out, np.inf, where=over)
    else:
        np.copyto(out, fmt.max_value, where=over)
    np.negative(out, out=out, where=neg)
    np.copyto(out, 0.0, where=zero)
    return out
