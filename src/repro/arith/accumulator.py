"""Finite-width alignment-based accumulation (the dot-product-unit adder tree).

Hardware dot-product units do not sum floating-point numbers pairwise with
per-add rounding. They align all partial products to a common anchor
exponent, truncate each to the adder-tree width, and add as integers — one
rounding *region* per reduction, not per element. M3XU's contribution on
this axis is simply *wider* registers: "slight extensions to accumulators
to accumulate numbers in correct double-precision formats" with "48-bit
registers for the accumulation results" (Section IV-A).

:func:`aligned_sum` models exactly that: reduce along an axis with
configurable datapath width.

Two accumulation disciplines live here:

* :func:`aligned_sum` / :func:`aligned_sum_groups` — **single-anchor**
  alignment: the anchor is the maximum exponent over the whole reduction
  group, known before any addition. Every addend is rounded once against
  that final window. This is what the fused MMA fast path uses.
* :func:`sequential_windowed_sum` — **sequential** alignment, the
  bit-level RTL discipline of
  :class:`~repro.mxu.bitlevel.BitAccumulator`: the anchor is the running
  maximum, and whenever a later addend raises it, the *partial sum
  accumulated so far* is re-rounded by the shift. The two disciplines are
  bit-identical unless the exponent span exceeds the window width (then
  single-anchor rounds each small addend individually while the
  sequential path rounds their sum), so the vectorized bit-level engine
  must replicate the sequential discipline rather than reuse the
  single-anchor kernels.
"""

from __future__ import annotations

import numpy as np

from ..types.formats import FloatFormat
from ..types.rounding import RoundingMode, round_significand

__all__ = [
    "aligned_sum",
    "aligned_sum_groups",
    "sequential_windowed_sum",
    "int_window_to_float",
]

#: Width of the M3XU accumulation registers (Section IV-A).
M3XU_ACC_BITS = 48

#: Effective internal alignment width attributed to baseline Tensor Core
#: dot-product units by reverse-engineering studies (products are aligned
#: and summed with around 24+ carry bits before the FP32 round).
TENSORCORE_ACC_BITS = 27


def aligned_sum(
    products: np.ndarray,
    axis: int = -1,
    acc_bits: int | None = M3XU_ACC_BITS,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> np.ndarray:
    """Sum *products* along *axis* through a finite-width aligned datapath.

    Parameters
    ----------
    products:
        float64 partial products (each individually exact — the multiplier
        outputs). Non-finite values propagate to the result.
    axis:
        Reduction axis.
    acc_bits:
        Datapath width W. Every addend is aligned to the largest exponent
        in its reduction group and rounded to W significant bits relative
        to that anchor before the integer add. ``None`` selects the
        float64 fast path (W = 53, adequate for M3XU's 48-bit claim and
        used by the large-scale models; the finite-width path validates it).
    mode:
        Rounding applied during alignment (hardware truncates or RNEs the
        shifted-out bits; both are supported).

    Returns
    -------
    np.ndarray
        float64 sums with the axis reduced.

    Notes
    -----
    With ``acc_bits = W`` the integer representation of each addend is
    ``round(p * 2**(W-2-Emax))`` — the largest addend occupies W-1 bits, so
    a 64-bit integer holds sums of up to ~2**5 addends headroom-free. The
    reduction length must keep ``W + log2(K) + 2 <= 63``.
    """
    products = np.asarray(products, dtype=np.float64)
    if acc_bits is None:
        return products.sum(axis=axis)
    k = products.shape[axis]
    if acc_bits + int(np.ceil(np.log2(max(k, 1)))) + 2 > 63:
        raise ValueError(
            f"acc_bits={acc_bits} with K={k} overflows the int64 adder model"
        )

    moved = np.moveaxis(products, axis, -1)
    # Non-finite inputs are the exception; skip the mask + masked copy (two
    # full-size temporaries) when everything is finite.
    if np.isfinite(moved).all():
        bad = None
        safe = moved
    else:
        bad = ~np.isfinite(moved)
        safe = np.where(bad, 0.0, moved)

    # Anchor: the largest magnitude exponent in each reduction group.
    absval = np.abs(safe)
    amax = absval.max(axis=-1, keepdims=True)
    nonzero = amax > 0.0
    _, e = np.frexp(np.where(nonzero, amax, 1.0))
    anchor = e.astype(np.int64) - 1  # amax in [2^anchor, 2^(anchor+1))

    scale = acc_bits - 2 - anchor
    scaled = np.ldexp(safe, scale)
    if mode is RoundingMode.NEAREST_EVEN:
        ints = np.rint(scaled).astype(np.int64)
    else:
        ints = np.trunc(scaled).astype(np.int64)
    total = ints.sum(axis=-1)
    out = np.ldexp(total.astype(np.float64), -scale[..., 0])
    out = np.where(nonzero[..., 0], out, 0.0)

    if bad is not None:
        # IEEE-style propagation: any NaN -> NaN; inf of one sign -> inf;
        # mixed infs -> NaN.
        nan_in = np.isnan(moved).any(axis=-1)
        pinf = np.isposinf(moved).any(axis=-1)
        ninf = np.isneginf(moved).any(axis=-1)
        out = np.where(pinf & ~ninf, np.inf, out)
        out = np.where(ninf & ~pinf, -np.inf, out)
        out = np.where(nan_in | (pinf & ninf), np.nan, out)
    return out


def aligned_sum_groups(
    groups: list[np.ndarray],
    acc_bits: int | None = M3XU_ACC_BITS,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> np.ndarray:
    """Windowed reduction of pre-grouped addends along their shared last axis.

    Bit-identical to ``aligned_sum(np.concatenate(groups, axis=-1), axis=-1)``
    without materialising the concatenation: the anchor is the running
    maximum of the per-group maxima (max is associative), each group is
    aligned and rounded against that anchor exactly as the monolithic path
    would, and the integer partial sums accumulate into one preallocated
    int64 register (integer addition is exact and commutative). This is the
    reduction the fused MMA path uses: one group per multiplier-lane
    assignment plus one for the C operand, no ``(M, N, parts*K+1)`` tensor.

    Parameters
    ----------
    groups:
        float64 arrays broadcast-compatible except along the last axis,
        which is reduced across all groups jointly.
    acc_bits / mode:
        As for :func:`aligned_sum`.
    """
    groups = [np.asarray(g, dtype=np.float64) for g in groups]
    if acc_bits is None:
        return np.concatenate(groups, axis=-1).sum(axis=-1)
    k_total = sum(g.shape[-1] for g in groups)
    lead_shape = np.broadcast_shapes(*(g.shape[:-1] for g in groups))
    groups = [g for g in groups if g.shape[-1] > 0]
    if not groups:
        return np.zeros(lead_shape, dtype=np.float64)
    if acc_bits + int(np.ceil(np.log2(max(k_total, 1)))) + 2 > 63:
        raise ValueError(
            f"acc_bits={acc_bits} with K={k_total} overflows the int64 adder model"
        )
    if not all(np.isfinite(g).all() for g in groups):
        # Non-finite propagation is the slow corner; defer to the reference.
        return aligned_sum(
            np.concatenate(groups, axis=-1), axis=-1, acc_bits=acc_bits, mode=mode
        )

    amax: np.ndarray | None = None
    for g in groups:
        gmax = np.abs(g).max(axis=-1)
        amax = gmax if amax is None else np.maximum(amax, gmax)
    assert amax is not None
    nonzero = amax > 0.0
    _, e = np.frexp(np.where(nonzero, amax, 1.0))
    anchor = e.astype(np.int64) - 1  # amax in [2^anchor, 2^(anchor+1))

    scale = acc_bits - 2 - anchor
    total = np.zeros(lead_shape, dtype=np.int64)
    for g in groups:
        scaled = np.ldexp(g, scale[..., None])
        if mode is RoundingMode.NEAREST_EVEN:
            ints = np.rint(scaled).astype(np.int64)
        else:
            ints = np.trunc(scaled).astype(np.int64)
        total += ints.sum(axis=-1)
    out = np.ldexp(total.astype(np.float64), -scale)
    return np.where(nonzero, out, 0.0)


# ---------------------------------------------------------------------------
# Sequential windowed accumulation (the BitAccumulator discipline, as arrays)
# ---------------------------------------------------------------------------

#: Anchor value of an accumulator that has seen no nonzero addend yet. Far
#: below any exponent a finite-format product can produce, yet small enough
#: that ``top - _ANCHOR_SENTINEL`` cannot overflow int64 for |top| < 2**61.
_ANCHOR_SENTINEL = np.int64(-(1 << 52))


def _bit_length_int64(x: np.ndarray) -> np.ndarray:
    """Exact bit length of positive int64 values (vectorized).

    ``frexp`` of the float64 cast gives the bit length except when a value
    just below a power of two rounds *up* across it (possible above 2**53);
    the integer shift check corrects that overestimate.
    """
    _, e = np.frexp(x.astype(np.float64))
    e64 = e.astype(np.int64)
    over = (x >> np.minimum(e64 - 1, np.int64(63))) == 0
    return e64 - over.astype(np.int64)


def sequential_windowed_sum(
    sign: np.ndarray,
    sig: np.ndarray,
    lsb_exp: np.ndarray,
    acc_bits: int = M3XU_ACC_BITS,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> tuple[np.ndarray, np.ndarray]:
    """Accumulate addend slots along the last axis with a running anchor.

    Each slot ``s`` contributes ``(-1)**sign[..., s] * sig[..., s] *
    2**lsb_exp[..., s]`` to a W-bit shifted integer window, in slot order,
    exactly as :class:`~repro.mxu.bitlevel.BitAccumulator` would process
    the same sequence element by element: zero significands are skipped,
    a slot whose MSB exceeds the running anchor re-rounds the partial sum
    by the anchor shift, and every addend is aligned to the current window
    LSB with *mode* rounding. The slot loop is sequential (the discipline
    demands it) but each step is vectorized over all leading axes.

    Parameters
    ----------
    sign:
        0/1 addend signs (1 = negative), broadcastable against *sig*.
    sig:
        Non-negative int64 addend significands; shape ``(..., S)``.
    lsb_exp:
        Binary weight of each significand's LSB. Magnitudes must stay
        below ``2**50`` so anchor arithmetic cannot overflow.
    acc_bits:
        Window width W (48 in M3XU). ``acc_bits + ceil(log2(S)) + 1`` must
        stay <= 63 so the int64 partial sums cannot overflow.
    mode:
        Rounding applied to alignment and rescale shifts.

    Returns
    -------
    tuple[np.ndarray, np.ndarray]
        ``(value, window_lsb)``: the signed int64 window contents and the
        binary weight of the window's LSB, per element. The represented
        result is ``value * 2**window_lsb``.
    """
    sig_arr = np.asarray(sig, dtype=np.int64)
    sign_arr = np.asarray(sign, dtype=np.int64)
    lsb_arr = np.asarray(lsb_exp, dtype=np.int64)
    sign_arr, sig_arr, lsb_arr = np.broadcast_arrays(sign_arr, sig_arr, lsb_arr)
    if sig_arr.ndim == 0:
        raise ValueError("addend slots must have at least one axis")
    if acc_bits < 8:
        raise ValueError("accumulator width must be >= 8 bits")
    n_slots = sig_arr.shape[-1]
    if acc_bits + int(np.ceil(np.log2(max(n_slots, 1)))) + 1 > 63:
        raise ValueError(
            f"acc_bits={acc_bits} with {n_slots} slots overflows the int64 window"
        )
    if np.any(sig_arr < 0):
        raise ValueError("significands must be non-negative")

    nz = sig_arr != 0
    msb = _bit_length_int64(np.where(nz, sig_arr, 1)) - 1
    top = np.where(nz, lsb_arr + msb, _ANCHOR_SENTINEL)
    # The running anchor is a masked cumulative max, so the whole anchor
    # trajectory — and with it every alignment shift — is known up front;
    # only the value recursion (whose rescale *rounds* the partial sum)
    # stays sequential.
    anchor = np.maximum.accumulate(top, axis=-1)
    prev = np.concatenate(
        [
            np.full(anchor.shape[:-1] + (1,), _ANCHOR_SENTINEL, dtype=np.int64),
            anchor[..., :-1],
        ],
        axis=-1,
    )
    rescale = anchor - prev

    window_lsb = anchor - acc_bits + 1
    rel = lsb_arr - window_lsb
    # For nonzero slots rel <= acc_bits - 1 - msb, so the left shift stays
    # inside 63 bits; zero slots may carry arbitrary rel and are masked.
    aligned = np.where(
        rel >= 0,
        sig_arr << np.clip(rel, 0, 63),
        round_significand(sig_arr, np.maximum(-rel, 0), mode),
    )
    addend = np.where(nz, np.where(sign_arr != 0, -aligned, aligned), 0)

    value = np.zeros(sig_arr.shape[:-1], dtype=np.int64)
    for s in range(n_slots):
        shift = rescale[..., s]
        if bool(np.any(shift > 0)):
            neg = value < 0
            mag = np.where(neg, -value, value)
            mag = round_significand(mag, shift, mode)
            value = np.where(neg, -mag, mag)
        value = value + addend[..., s]
    return value, window_lsb[..., -1] if n_slots else np.full(
        sig_arr.shape[:-1], _ANCHOR_SENTINEL - acc_bits + 1, dtype=np.int64
    )


def int_window_to_float(
    value: np.ndarray,
    window_lsb: np.ndarray,
    fmt: FloatFormat,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> np.ndarray:
    """Round ``value * 2**window_lsb`` to *fmt*, vectorized and bit-exact.

    The array counterpart of rounding the window contents through
    :func:`~repro.arith.exact.round_fraction`: one integer rounding onto
    the format's (subnormal-floored) grid, an exact ``ldexp``, and the
    format's overflow saturation. ``value == 0`` yields +0.0 (the
    canonical zero of the bit-level accumulator); a nonzero value that
    rounds away returns a signed zero, matching the exact reference.
    """
    value_arr = np.asarray(value, dtype=np.int64)
    lsb_arr = np.asarray(window_lsb, dtype=np.int64)
    value_arr, lsb_arr = np.broadcast_arrays(value_arr, lsb_arr)
    zero = value_arr == 0
    neg = value_arr < 0
    mag = np.where(neg, -value_arr, value_arr)
    bl = _bit_length_int64(np.where(zero, 1, mag))
    msb_exp = lsb_arr + bl - 1
    grid = np.maximum(msb_exp, fmt.emin) - fmt.mantissa_bits
    drop = grid - lsb_arr
    # drop <= 0 means the window LSB already sits on or above the grid:
    # mag then carries at most mantissa_bits + 1 bits and is exact below.
    mag_r = round_significand(mag, np.maximum(drop, 0), mode)
    exp_r = np.where(drop > 0, grid, lsb_arr)
    with np.errstate(over="ignore"):
        out = np.ldexp(mag_r.astype(np.float64), exp_r)
    over = np.abs(out) > fmt.max_value
    if mode is RoundingMode.NEAREST_EVEN:
        out = np.where(over, np.inf, out)
    else:
        out = np.where(over, fmt.max_value, out)
    out = np.where(neg, -out, out)
    return np.where(zero, 0.0, out)
