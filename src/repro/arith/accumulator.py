"""Finite-width alignment-based accumulation (the dot-product-unit adder tree).

Hardware dot-product units do not sum floating-point numbers pairwise with
per-add rounding. They align all partial products to a common anchor
exponent, truncate each to the adder-tree width, and add as integers — one
rounding *region* per reduction, not per element. M3XU's contribution on
this axis is simply *wider* registers: "slight extensions to accumulators
to accumulate numbers in correct double-precision formats" with "48-bit
registers for the accumulation results" (Section IV-A).

:func:`aligned_sum` models exactly that: reduce along an axis with
configurable datapath width.
"""

from __future__ import annotations

import numpy as np

from ..types.rounding import RoundingMode

__all__ = ["aligned_sum"]

#: Width of the M3XU accumulation registers (Section IV-A).
M3XU_ACC_BITS = 48

#: Effective internal alignment width attributed to baseline Tensor Core
#: dot-product units by reverse-engineering studies (products are aligned
#: and summed with around 24+ carry bits before the FP32 round).
TENSORCORE_ACC_BITS = 27


def aligned_sum(
    products: np.ndarray,
    axis: int = -1,
    acc_bits: int | None = M3XU_ACC_BITS,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> np.ndarray:
    """Sum *products* along *axis* through a finite-width aligned datapath.

    Parameters
    ----------
    products:
        float64 partial products (each individually exact — the multiplier
        outputs). Non-finite values propagate to the result.
    axis:
        Reduction axis.
    acc_bits:
        Datapath width W. Every addend is aligned to the largest exponent
        in its reduction group and rounded to W significant bits relative
        to that anchor before the integer add. ``None`` selects the
        float64 fast path (W = 53, adequate for M3XU's 48-bit claim and
        used by the large-scale models; the finite-width path validates it).
    mode:
        Rounding applied during alignment (hardware truncates or RNEs the
        shifted-out bits; both are supported).

    Returns
    -------
    np.ndarray
        float64 sums with the axis reduced.

    Notes
    -----
    With ``acc_bits = W`` the integer representation of each addend is
    ``round(p * 2**(W-2-Emax))`` — the largest addend occupies W-1 bits, so
    a 64-bit integer holds sums of up to ~2**5 addends headroom-free. The
    reduction length must keep ``W + log2(K) + 2 <= 63``.
    """
    products = np.asarray(products, dtype=np.float64)
    if acc_bits is None:
        return products.sum(axis=axis)
    k = products.shape[axis]
    if acc_bits + int(np.ceil(np.log2(max(k, 1)))) + 2 > 63:
        raise ValueError(
            f"acc_bits={acc_bits} with K={k} overflows the int64 adder model"
        )

    moved = np.moveaxis(products, axis, -1)
    bad = ~np.isfinite(moved)
    safe = np.where(bad, 0.0, moved)

    # Anchor: the largest magnitude exponent in each reduction group.
    absval = np.abs(safe)
    amax = absval.max(axis=-1, keepdims=True)
    nonzero = amax > 0.0
    _, e = np.frexp(np.where(nonzero, amax, 1.0))
    anchor = e.astype(np.int64) - 1  # amax in [2^anchor, 2^(anchor+1))

    scale = acc_bits - 2 - anchor
    scaled = np.ldexp(safe, scale)
    if mode is RoundingMode.NEAREST_EVEN:
        ints = np.rint(scaled).astype(np.int64)
    else:
        ints = np.trunc(scaled).astype(np.int64)
    total = ints.sum(axis=-1)
    out = np.ldexp(total.astype(np.float64), -scale[..., 0])
    out = np.where(nonzero[..., 0], out, 0.0)

    if np.any(bad):
        # IEEE-style propagation: any NaN -> NaN; inf of one sign -> inf;
        # mixed infs -> NaN.
        nan_in = np.isnan(moved).any(axis=-1)
        pinf = np.isposinf(moved).any(axis=-1)
        ninf = np.isneginf(moved).any(axis=-1)
        out = np.where(pinf & ~ninf, np.inf, out)
        out = np.where(ninf & ~pinf, -np.inf, out)
        out = np.where(nan_in | (pinf & ninf), np.nan, out)
    return out
