"""Finite-width alignment-based accumulation (the dot-product-unit adder tree).

Hardware dot-product units do not sum floating-point numbers pairwise with
per-add rounding. They align all partial products to a common anchor
exponent, truncate each to the adder-tree width, and add as integers — one
rounding *region* per reduction, not per element. M3XU's contribution on
this axis is simply *wider* registers: "slight extensions to accumulators
to accumulate numbers in correct double-precision formats" with "48-bit
registers for the accumulation results" (Section IV-A).

:func:`aligned_sum` models exactly that: reduce along an axis with
configurable datapath width.
"""

from __future__ import annotations

import numpy as np

from ..types.rounding import RoundingMode

__all__ = ["aligned_sum", "aligned_sum_groups"]

#: Width of the M3XU accumulation registers (Section IV-A).
M3XU_ACC_BITS = 48

#: Effective internal alignment width attributed to baseline Tensor Core
#: dot-product units by reverse-engineering studies (products are aligned
#: and summed with around 24+ carry bits before the FP32 round).
TENSORCORE_ACC_BITS = 27


def aligned_sum(
    products: np.ndarray,
    axis: int = -1,
    acc_bits: int | None = M3XU_ACC_BITS,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> np.ndarray:
    """Sum *products* along *axis* through a finite-width aligned datapath.

    Parameters
    ----------
    products:
        float64 partial products (each individually exact — the multiplier
        outputs). Non-finite values propagate to the result.
    axis:
        Reduction axis.
    acc_bits:
        Datapath width W. Every addend is aligned to the largest exponent
        in its reduction group and rounded to W significant bits relative
        to that anchor before the integer add. ``None`` selects the
        float64 fast path (W = 53, adequate for M3XU's 48-bit claim and
        used by the large-scale models; the finite-width path validates it).
    mode:
        Rounding applied during alignment (hardware truncates or RNEs the
        shifted-out bits; both are supported).

    Returns
    -------
    np.ndarray
        float64 sums with the axis reduced.

    Notes
    -----
    With ``acc_bits = W`` the integer representation of each addend is
    ``round(p * 2**(W-2-Emax))`` — the largest addend occupies W-1 bits, so
    a 64-bit integer holds sums of up to ~2**5 addends headroom-free. The
    reduction length must keep ``W + log2(K) + 2 <= 63``.
    """
    products = np.asarray(products, dtype=np.float64)
    if acc_bits is None:
        return products.sum(axis=axis)
    k = products.shape[axis]
    if acc_bits + int(np.ceil(np.log2(max(k, 1)))) + 2 > 63:
        raise ValueError(
            f"acc_bits={acc_bits} with K={k} overflows the int64 adder model"
        )

    moved = np.moveaxis(products, axis, -1)
    # Non-finite inputs are the exception; skip the mask + masked copy (two
    # full-size temporaries) when everything is finite.
    if np.isfinite(moved).all():
        bad = None
        safe = moved
    else:
        bad = ~np.isfinite(moved)
        safe = np.where(bad, 0.0, moved)

    # Anchor: the largest magnitude exponent in each reduction group.
    absval = np.abs(safe)
    amax = absval.max(axis=-1, keepdims=True)
    nonzero = amax > 0.0
    _, e = np.frexp(np.where(nonzero, amax, 1.0))
    anchor = e.astype(np.int64) - 1  # amax in [2^anchor, 2^(anchor+1))

    scale = acc_bits - 2 - anchor
    scaled = np.ldexp(safe, scale)
    if mode is RoundingMode.NEAREST_EVEN:
        ints = np.rint(scaled).astype(np.int64)
    else:
        ints = np.trunc(scaled).astype(np.int64)
    total = ints.sum(axis=-1)
    out = np.ldexp(total.astype(np.float64), -scale[..., 0])
    out = np.where(nonzero[..., 0], out, 0.0)

    if bad is not None:
        # IEEE-style propagation: any NaN -> NaN; inf of one sign -> inf;
        # mixed infs -> NaN.
        nan_in = np.isnan(moved).any(axis=-1)
        pinf = np.isposinf(moved).any(axis=-1)
        ninf = np.isneginf(moved).any(axis=-1)
        out = np.where(pinf & ~ninf, np.inf, out)
        out = np.where(ninf & ~pinf, -np.inf, out)
        out = np.where(nan_in | (pinf & ninf), np.nan, out)
    return out


def aligned_sum_groups(
    groups: list[np.ndarray],
    acc_bits: int | None = M3XU_ACC_BITS,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> np.ndarray:
    """Windowed reduction of pre-grouped addends along their shared last axis.

    Bit-identical to ``aligned_sum(np.concatenate(groups, axis=-1), axis=-1)``
    without materialising the concatenation: the anchor is the running
    maximum of the per-group maxima (max is associative), each group is
    aligned and rounded against that anchor exactly as the monolithic path
    would, and the integer partial sums accumulate into one preallocated
    int64 register (integer addition is exact and commutative). This is the
    reduction the fused MMA path uses: one group per multiplier-lane
    assignment plus one for the C operand, no ``(M, N, parts*K+1)`` tensor.

    Parameters
    ----------
    groups:
        float64 arrays broadcast-compatible except along the last axis,
        which is reduced across all groups jointly.
    acc_bits / mode:
        As for :func:`aligned_sum`.
    """
    groups = [np.asarray(g, dtype=np.float64) for g in groups]
    if acc_bits is None:
        return np.concatenate(groups, axis=-1).sum(axis=-1)
    k_total = sum(g.shape[-1] for g in groups)
    lead_shape = np.broadcast_shapes(*(g.shape[:-1] for g in groups))
    groups = [g for g in groups if g.shape[-1] > 0]
    if not groups:
        return np.zeros(lead_shape, dtype=np.float64)
    if acc_bits + int(np.ceil(np.log2(max(k_total, 1)))) + 2 > 63:
        raise ValueError(
            f"acc_bits={acc_bits} with K={k_total} overflows the int64 adder model"
        )
    if not all(np.isfinite(g).all() for g in groups):
        # Non-finite propagation is the slow corner; defer to the reference.
        return aligned_sum(
            np.concatenate(groups, axis=-1), axis=-1, acc_bits=acc_bits, mode=mode
        )

    amax: np.ndarray | None = None
    for g in groups:
        gmax = np.abs(g).max(axis=-1)
        amax = gmax if amax is None else np.maximum(amax, gmax)
    assert amax is not None
    nonzero = amax > 0.0
    _, e = np.frexp(np.where(nonzero, amax, 1.0))
    anchor = e.astype(np.int64) - 1  # amax in [2^anchor, 2^(anchor+1))

    scale = acc_bits - 2 - anchor
    total = np.zeros(lead_shape, dtype=np.int64)
    for g in groups:
        scaled = np.ldexp(g, scale[..., None])
        if mode is RoundingMode.NEAREST_EVEN:
            ints = np.rint(scaled).astype(np.int64)
        else:
            ints = np.trunc(scaled).astype(np.int64)
        total += ints.sum(axis=-1)
    out = np.ldexp(total.astype(np.float64), -scale)
    return np.where(nonzero, out, 0.0)
