"""Exact and hardware-modelled arithmetic primitives."""

from .accumulator import (
    M3XU_ACC_BITS,
    TENSORCORE_ACC_BITS,
    aligned_sum,
    aligned_sum_groups,
)
from .dotproduct import dot_product_unit, fma_chain_dot, pairwise_tree_dot
from .exact import (
    chunked_dot,
    exact_dot,
    fma_round,
    round_fraction,
    sequential_fma_dot,
    to_fraction,
)

__all__ = [
    "aligned_sum",
    "aligned_sum_groups",
    "M3XU_ACC_BITS",
    "TENSORCORE_ACC_BITS",
    "dot_product_unit",
    "fma_chain_dot",
    "pairwise_tree_dot",
    "exact_dot",
    "fma_round",
    "round_fraction",
    "sequential_fma_dot",
    "chunked_dot",
    "to_fraction",
]
