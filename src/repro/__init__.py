"""M3XU reproduction: multi-mode MXUs for FP32/FP32C GEMM on low-precision hardware.

Public API tour
---------------
* ``repro.types`` — floating-point formats, quantisation, operand splits.
* ``repro.mxu`` — the hardware functional models (``TensorCoreMXU``, ``M3XU``).
* ``repro.gemm`` — GEMM drivers: SIMT references, M3XU tiled GEMM, software
  emulation schemes (3xTF32, 3xBF16, ...).
* ``repro.gpusim`` — the analytic GPU performance/energy model.
* ``repro.kernels`` — the Table II / Table IV kernel zoo.
* ``repro.synthesis`` — the Table III area/cycle/power cost model.
* ``repro.apps`` — FFT, DNN training, MRF, kNN, quantum case studies.
* ``repro.eval`` — one runner per paper table/figure.
* ``repro.parallel`` / ``repro.cache`` — the execution engine: persistent
  worker pool with zero-copy operand transfer, and the content-addressed
  result cache (see ``docs/performance.md``).
* ``repro.resilience`` — fault tolerance: ABFT checksum guards for GEMM,
  checkpoint/resume journaling, retry policies and the fault-injection
  campaign engine (see ``docs/robustness.md``).
"""

from .mxu import M3XU, MXUMode, TensorCoreMXU
from .gemm import mxu_cgemm, mxu_sgemm
from .types import FP16, FP32, BF16, TF32, FloatFormat, quantize

__version__ = "1.0.0"

__all__ = [
    "M3XU",
    "TensorCoreMXU",
    "MXUMode",
    "mxu_sgemm",
    "mxu_cgemm",
    "FloatFormat",
    "FP16",
    "BF16",
    "TF32",
    "FP32",
    "quantize",
    "__version__",
]
