"""Dynamic-instruction comparison of software vs hardware FP32 solutions.

Figure 2 of the paper contrasts the instruction streams: "the software
solution needs additional instructions to compute, shift, and split the
exponent, mantissa parts, and flipping sign bits before feeding data into
MXUs ... hardware solutions can perform the same computation within a
single stream, with fewer loads/stores and fewer instructions."

:func:`tile_instruction_breakdown` counts the warp-level instructions each
approach issues to compute one warp-tile MMA worth of FP32 GEMM, by
category. These counts also feed the kernel models' issue/vector pipes.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["InstructionBreakdown", "tile_instruction_breakdown", "APPROACHES"]


@dataclass(frozen=True)
class InstructionBreakdown:
    """Warp instructions per logical 16x8x8 FP32 warp-tile MMA."""

    approach: str
    loads: float          # global + shared loads of operands
    stores: float         # stores of decoupled operands / results
    split_arith: float    # cvt/sub/shift/sign ops decoupling operands
    mma: float            # MMA instructions issued
    other: float          # address/bookkeeping

    @property
    def total(self) -> float:
        return sum(
            getattr(self, f.name)
            for f in fields(self)
            if f.name != "approach"
        )


def tile_instruction_breakdown(approach: str) -> InstructionBreakdown:
    """Instruction mix per logical FP32 m16n8k8 MMA (128 A + 64 B elements).

    Counts are warp-level (32 lanes/instruction):

    * operand elements: A 16x8=128, B 8x8=64 -> 6 x 32-lane register
      fragments; loading them once is 6 ``ldmatrix``-equivalents.
    * ``m3xu``: hardware splits operands in the data-assignment stage —
      1 MMA, no split arithmetic (Section II-C.1).
    * ``simt``: no MXU; the 1024 MACs are 1024/32 = 32 FFMA warp
      instructions plus operand loads.
    * 2-term split schemes (``3xtf32``, ``3xbf16``): each of the 6 operand
      fragments costs a round-to-base conversion, a subtract and a second
      conversion (3 ops), results live in twice the registers (extra
      moves), and 3 MMAs replace 1; EEHC additionally stores/reloads the
      split terms through shared memory (+6 stores, +6 loads).
    """
    if approach == "m3xu":
        return InstructionBreakdown("m3xu", loads=6, stores=0, split_arith=0, mma=1, other=2)
    if approach == "simt":
        return InstructionBreakdown("simt", loads=6, stores=0, split_arith=0, mma=0, other=34)
    if approach == "3xtf32":
        return InstructionBreakdown(
            "3xtf32", loads=6, stores=0, split_arith=18, mma=3, other=6
        )
    if approach == "3xbf16":
        return InstructionBreakdown(
            "3xbf16", loads=12, stores=6, split_arith=18, mma=3, other=6
        )
    if approach == "fp32_mxu":
        return InstructionBreakdown(
            "fp32_mxu", loads=12, stores=0, split_arith=0, mma=1, other=2
        )
    raise ValueError(f"unknown approach {approach!r}")


APPROACHES = ("simt", "3xtf32", "3xbf16", "m3xu", "fp32_mxu")
