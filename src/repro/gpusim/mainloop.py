"""Cycle-approximate simulation of a software-pipelined GEMM mainloop.

The analytic model (:mod:`repro.gpusim.kernelmodel`) assumes perfect
overlap between pipes and charges only the busiest one. This simulator is
its finer-grained cross-check: it walks one threadblock's mainloop
iteration by iteration through a ``stages``-deep software pipeline —

    global load -> shared store -> shared load -> MMA

— with explicit buffer occupancy, so prologue fill, steady-state overlap
and epilogue drain fall out of the dynamics instead of being assumed.
With enough stages the steady state converges to the analytic
``max(pipe times)``; with ``stages = 1`` every iteration serialises all
four phases — the ablation that justifies multi-stage pipelining (and,
microcosmically, Table III's pipelined data-assignment stage).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .config import GPUSpec
from .tiling import TileConfig, occupancy_ctas_per_sm, plan_grid

__all__ = ["MainloopParams", "MainloopResult", "simulate_mainloop", "simulate_gemm_cta"]


@dataclass(frozen=True)
class MainloopParams:
    """Per-iteration phase costs (cycles) of one threadblock's mainloop."""

    ldg_cycles: float      # global -> registers (bandwidth share incl. latency amortisation)
    sts_cycles: float      # registers -> shared
    lds_cycles: float      # shared -> register fragments
    mma_cycles: float      # tensor-pipe time of the iteration's MMAs
    stages: int = 3        # software-pipeline depth (buffer count)
    ldg_latency: float = 400.0  # DRAM round-trip exposed on the critical path when unbuffered

    def __post_init__(self) -> None:
        if self.stages < 1:
            raise ValueError("pipeline needs at least one stage")


@dataclass(frozen=True)
class MainloopResult:
    """Outcome of one simulated mainloop."""

    total_cycles: float
    prologue_cycles: float
    steady_cycles_per_iter: float
    iterations: int

    @property
    def efficiency(self) -> float:
        """MMA-pipe utilisation implied by the simulated schedule."""
        return self.iterations and min(
            1.0, self.iterations * self._mma / max(self.total_cycles, 1e-9)
        )

    _mma: float = 0.0  # stashed by the simulator


def simulate_mainloop(params: MainloopParams, iterations: int) -> MainloopResult:
    """Run the pipeline dynamics for *iterations* mainloop steps.

    Event-driven over two resources (memory path, MMA path) and a ring of
    ``stages`` tile buffers:

    * the memory path fetches tile ``i`` (ldg + sts) as soon as a buffer
      is free; the first fetch additionally exposes the DRAM latency;
    * the MMA path consumes tile ``i`` (lds + mma) once it is resident;
    * a buffer frees when its tile's MMA completes.
    """
    if iterations < 1:
        raise ValueError("need at least one iteration")
    p = params
    # ldmatrix (shared -> fragments) dual-issues with the tensor pipe, so
    # it rides the memory path together with the tile fill; only the MMA
    # itself occupies the consume path.
    fetch_cost = p.ldg_cycles + p.sts_cycles + p.lds_cycles
    use_cost = p.mma_cycles

    buffer_free_at = [0.0] * p.stages   # when each ring slot frees
    mem_free_at = 0.0                   # memory path availability
    mma_free_at = 0.0                   # MMA path availability
    first_mma_start = None

    for i in range(iterations):
        slot = i % p.stages
        start_fetch = max(mem_free_at, buffer_free_at[slot])
        if i == 0:
            start_fetch += p.ldg_latency  # cold DRAM round-trip
        tile_ready = start_fetch + fetch_cost
        mem_free_at = tile_ready
        start_use = max(mma_free_at, tile_ready)
        if first_mma_start is None:
            first_mma_start = start_use
        done = start_use + use_cost
        mma_free_at = done
        buffer_free_at[slot] = done

    steady = (
        (mma_free_at - first_mma_start) / iterations if iterations else 0.0
    )
    result = MainloopResult(
        total_cycles=mma_free_at,
        prologue_cycles=first_mma_start or 0.0,
        steady_cycles_per_iter=steady,
        iterations=iterations,
    )
    object.__setattr__(result, "_mma", p.mma_cycles)
    return result


def simulate_gemm_cta(
    m: int,
    n: int,
    k: int,
    gpu: GPUSpec,
    tile: TileConfig | None = None,
    tc_mode_rate: float | None = None,
    stages: int | None = None,
) -> tuple[MainloopResult, float]:
    """Simulate one CTA's mainloop of an M3XU FP32 GEMM and extrapolate
    the device time.

    Returns ``(cta_result, device_seconds)``. The extrapolation multiplies
    the CTA's cycles by the number of CTA waves each SM executes — the
    same wave arithmetic as the analytic model, so differences between
    the two models isolate pipeline effects.
    """
    tile = tile or TileConfig()
    grid = plan_grid(m, n, k, tile)
    rate = tc_mode_rate or gpu.sm_fp16_tc_macs / 4.0  # m3xu_fp32 MACs/cycle/SM

    occ = occupancy_ctas_per_sm(tile, gpu)
    # Per-iteration costs for one CTA (the SM's pipes are shared by `occ`
    # resident CTAs, so each sees 1/occ of the throughput).
    tile_macs = tile.tb_m * tile.tb_n * tile.tb_k
    mma = tile_macs / (rate / occ)
    tile_bytes = (tile.tb_m * tile.tb_k + tile.tb_k * tile.tb_n) * tile.element_bytes
    dram_per_sm = gpu.dram_bw_gbs * 1e9 / gpu.n_sms / (gpu.clock_ghz * 1e9)  # B/cyc/SM
    # L2 reuse: the wave model's traffic over the cold per-tile traffic
    # gives the fraction of tile bytes each fetch actually pulls from DRAM.
    from .tiling import dram_bytes_wave_model

    cold = float(grid.n_ctas) * grid.mainloop_iters * tile_bytes
    actual = dram_bytes_wave_model(grid, gpu, tile.element_bytes, tile.element_bytes)
    l2_factor = min(1.0, actual / max(cold, 1.0))
    ldg = tile_bytes * l2_factor / (dram_per_sm / occ)
    smem_rate = gpu.smem_bytes_per_cycle / occ
    sts = tile_bytes / smem_rate
    lds = 2.0 * tile_bytes / smem_rate  # fragments re-read across warps

    params = MainloopParams(
        ldg_cycles=ldg,
        sts_cycles=sts,
        lds_cycles=lds,
        mma_cycles=mma,
        stages=stages if stages is not None else tile.stages,
    )
    res = simulate_mainloop(params, grid.mainloop_iters)

    waves = math.ceil(grid.n_ctas / (occ * gpu.n_sms))
    device_s = res.total_cycles * waves / (gpu.clock_ghz * 1e9)
    return res, device_s
