"""Energy model for kernel executions (Figure 5a/b).

Energy is composed per pipe: ``E = sum_class ops * e_class + P_static * t``.
The MXU MAC energies are tied to the synthesis model's power ratios
(Table III): a design with relative power ``P`` at relative MAC rate ``R``
spends ``P / R`` baseline-MAC-energies per MAC.

Constants are order-of-magnitude literature values for a 40-45 nm-class
datapath (the paper synthesises at FreePDK45); only *ratios* between
designs matter for Figure 5 and those come from Table III's power column.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import GPUSpec
from .kernelmodel import KernelSpec, TimeBreakdown, estimate_time

__all__ = ["EnergyModel", "EnergyBreakdown", "DESIGN_POWER", "estimate_energy"]

#: (relative power, relative native-cycle rate) per MXU design, from the
#: synthesis model (Table III). "rate" is MAC throughput relative to the
#: baseline FP16 MXU *for the data type the kernel runs*.
DESIGN_POWER: dict[str, tuple[float, float]] = {
    # tc_mode -> (power vs baseline FP16 MXU, MACs/cycle vs baseline)
    "fp16": (1.00, 1.0),
    "bf16": (1.00, 1.0),
    "tf32": (1.00, 0.5),
    "m3xu_fp32": (1.07, 0.25),       # pipelined M3XU, Table III col 5
    "m3xu_fp32c": (1.07, 0.0625),
    "m3xu_fp64": (1.07, 0.0625),
    # Non-pipelined variants: the rate column includes the 1/1.21 clock
    # derate, so power/rate is the true per-MAC energy at the operating
    # point (Table III power is quoted at the lowered frequency).
    "m3xu_fp32_np": (0.69, 0.25 / 1.21),
    "m3xu_fp32c_np": (0.69, 0.0625 / 1.21),
    "fp32_mxu": (7.97, 1.0),         # naive full-width FP32 MXU
    "fp32c_mxu": (7.97, 0.25),
}


@dataclass(frozen=True)
class EnergyModel:
    """Per-operation energies (picojoules) and static power (watts)."""

    e_fp16_mac_pj: float = 0.8       # baseline MXU FP16 MAC (incl. operand feed)
    e_lane_op_pj: float = 1.2        # FP32 vector lane op
    e_warp_instr_pj: float = 6.0     # fetch/decode/issue per warp instruction
    e_smem_byte_pj: float = 1.0
    e_dram_byte_pj: float = 14.0     # HBM2e access + PHY
    static_w: float = 25.0           # leakage (dynamic power is per-op above)
    #: Fraction of active power an MXU burns during dependency-stall
    #: cycles (clock network + partially-gated datapath). Kernels with low
    #: tensor-pipe utilisation pay for the idle cycles too.
    stall_burn: float = 0.7

    def mxu_mac_energy_pj(self, tc_mode: str) -> float:
        """Energy per MAC on the MXU for a mode/design (pJ)."""
        try:
            power, rate = DESIGN_POWER[tc_mode]
        except KeyError:
            raise KeyError(f"unknown tc_mode {tc_mode!r}") from None
        return self.e_fp16_mac_pj * power / rate


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules by component."""

    mxu_j: float
    vector_j: float
    issue_j: float
    smem_j: float
    dram_j: float
    static_j: float

    @property
    def total_j(self) -> float:
        return (
            self.mxu_j
            + self.vector_j
            + self.issue_j
            + self.smem_j
            + self.dram_j
            + self.static_j
        )


def estimate_energy(
    spec: KernelSpec,
    gpu: GPUSpec,
    model: EnergyModel | None = None,
    time: TimeBreakdown | None = None,
    tc_mode_override: str | None = None,
) -> EnergyBreakdown:
    """Energy of one kernel launch.

    ``tc_mode_override`` lets callers charge the non-pipelined M3XU rates
    (``*_np``) while the timing spec carries the plain mode key.
    """
    model = model or EnergyModel()
    time = time or estimate_time(spec, gpu)
    w = spec.work
    mode = tc_mode_override or w.tc_mode
    # Note: complex modes' per-MAC energy already reflects their 16x unit
    # cycle cost through the DESIGN_POWER rate column. Stall cycles
    # (1 - tc_util of the kernel) burn stall_burn of active power.
    util = max(min(spec.tc_util, 1.0), 1e-3)
    stall_factor = (util + model.stall_burn * (1.0 - util)) / util
    mxu_j = w.tc_macs * model.mxu_mac_energy_pj(mode) * stall_factor * 1e-12
    vector_j = (w.fma_lane_ops + w.aux_lane_ops) * model.e_lane_op_pj * 1e-12
    issue_j = w.warp_instructions * model.e_warp_instr_pj * 1e-12
    smem_j = w.smem_bytes * model.e_smem_byte_pj * 1e-12
    dram_j = w.dram_bytes * model.e_dram_byte_pj * 1e-12
    static_j = model.static_w * time.total_s
    return EnergyBreakdown(mxu_j, vector_j, issue_j, smem_j, dram_j, static_j)
