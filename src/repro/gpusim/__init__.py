"""Analytic GPU performance/energy model (the evaluation substrate)."""

from .config import (
    GPUSpec,
    a100,
    a100_emulation,
    h100,
    mi100,
    required_feed_bandwidth,
)
from .energy import DESIGN_POWER, EnergyBreakdown, EnergyModel, estimate_energy
from .instrmix import APPROACHES, InstructionBreakdown, tile_instruction_breakdown
from .mainloop import MainloopParams, MainloopResult, simulate_gemm_cta, simulate_mainloop
from .roofline import RooflinePoint, ascii_roofline, ridge_intensity, roofline_point
from .kernelmodel import (
    KernelSpec,
    PipeWork,
    TimeBreakdown,
    estimate_time,
    sequence_time,
)
from .tiling import GemmGrid, TileConfig, dram_bytes_wave_model, plan_grid

__all__ = [
    "GPUSpec",
    "a100",
    "a100_emulation",
    "h100",
    "mi100",
    "required_feed_bandwidth",
    "KernelSpec",
    "PipeWork",
    "TimeBreakdown",
    "estimate_time",
    "sequence_time",
    "TileConfig",
    "GemmGrid",
    "plan_grid",
    "dram_bytes_wave_model",
    "EnergyModel",
    "EnergyBreakdown",
    "estimate_energy",
    "DESIGN_POWER",
    "InstructionBreakdown",
    "tile_instruction_breakdown",
    "APPROACHES",
    "RooflinePoint",
    "roofline_point",
    "ridge_intensity",
    "ascii_roofline",
    "MainloopParams",
    "MainloopResult",
    "simulate_mainloop",
    "simulate_gemm_cta",
]
