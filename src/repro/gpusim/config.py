"""GPU hardware specifications for the performance model.

The paper's testbed is an NVIDIA A100 (Ampere) in a DGX Station; Section
III-C also argues peaks for Hopper and AMD MI100/MI250. The spec captures
exactly the quantities the paper reasons with: SM/tensor-core counts,
clocks, per-clock MAC rates per data path, and the memory hierarchy.

Peak-throughput arithmetic reproduces Table I, and
:func:`required_feed_bandwidth` reproduces the Section II-B bandwidth
formula (B = (M*K + K*N + M*N) * p/8 * F * X = 156 TB/s for A100 at 16-bit).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..mxu.modes import MXUMode

__all__ = [
    "GPUSpec",
    "a100",
    "a100_emulation",
    "h100",
    "mi100",
    "required_feed_bandwidth",
]


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one GPU for the analytic performance model."""

    name: str
    n_sms: int
    tensor_cores_per_sm: int
    fp32_cores_per_sm: int
    clock_ghz: float
    #: MACs per cycle per tensor core at 16-bit input (8x4x8 tile = 256).
    tc_macs_per_cycle: int
    #: TF32 MACs per cycle per tensor core (half the 16-bit rate on A100).
    tc_tf32_macs_per_cycle: int
    #: Vector-pipe FLOP rate multipliers relative to the FP32 FMA rate.
    fp16_vector_ratio: float = 4.0   # A100: 78 / 19.5
    bf16_vector_ratio: float = 2.0   # A100: 39 / 19.5
    warp_schedulers_per_sm: int = 4
    warp_width: int = 32
    dram_bw_gbs: float = 1555.0
    l2_bytes: int = 40 * 2**20
    smem_per_sm_bytes: int = 164 * 1024
    regfile_per_sm_bytes: int = 256 * 1024
    max_threads_per_sm: int = 2048
    max_ctas_per_sm: int = 32
    #: Shared-memory bandwidth per SM (bytes/cycle): 32 banks x 4 B.
    smem_bytes_per_cycle: float = 128.0
    #: Fixed kernel-launch + tail latency (seconds).
    launch_overhead_s: float = 4.0e-6

    # ------------------------------------------------------------------
    # Per-SM MAC rates (MACs / cycle / SM)
    # ------------------------------------------------------------------
    @property
    def sm_fp16_tc_macs(self) -> float:
        return self.tensor_cores_per_sm * self.tc_macs_per_cycle

    @property
    def sm_tf32_tc_macs(self) -> float:
        return self.tensor_cores_per_sm * self.tc_tf32_macs_per_cycle

    @property
    def sm_fp32_simt_macs(self) -> float:
        return float(self.fp32_cores_per_sm)

    def sm_m3xu_macs(self, mode: MXUMode) -> float:
        """M3XU MAC rate per SM per cycle in a multi-step mode.

        Corollary 2: FP32 runs at 1/4 of the 16-bit MAC rate (2 steps and
        half the K per op). Corollary 3: FP32C complex-MACs at 1/16 of the
        16-bit rate (each complex MAC = 4 real MACs on the unit).
        """
        if mode is MXUMode.FP32:
            return self.sm_fp16_tc_macs / 4.0
        if mode is MXUMode.FP32C:
            return self.sm_fp16_tc_macs / 16.0
        if mode is MXUMode.FP64:
            return self.sm_fp16_tc_macs / 16.0
        return self.sm_fp16_tc_macs

    # ------------------------------------------------------------------
    # Device peaks (Table I)
    # ------------------------------------------------------------------
    def peak_tflops(self, what: str) -> float:
        """Peak TFLOPS by datapath name, reproducing Table I.

        Accepted names: ``fp32``, ``fp16``, ``bf16`` (vector pipes),
        ``fp16_tc``, ``bf16_tc``, ``tf32_tc`` (tensor cores),
        ``m3xu_fp32``, ``m3xu_fp32c`` (M3XU modes; FP32C counts the 8
        real flops of each complex MAC).
        """
        base = self.n_sms * self.clock_ghz * 1e9 / 1e12  # cycles/s in T-units
        table = {
            "fp32": self.sm_fp32_simt_macs * 2,
            "fp16": self.sm_fp32_simt_macs * 2 * self.fp16_vector_ratio,
            "bf16": self.sm_fp32_simt_macs * 2 * self.bf16_vector_ratio,
            "fp16_tc": self.sm_fp16_tc_macs * 2,
            "bf16_tc": self.sm_fp16_tc_macs * 2,
            "tf32_tc": self.sm_tf32_tc_macs * 2,
            "m3xu_fp32": self.sm_m3xu_macs(MXUMode.FP32) * 2,
            "m3xu_fp32c": self.sm_m3xu_macs(MXUMode.FP32C) * 8,
        }
        try:
            return base * table[what]
        except KeyError:
            raise KeyError(f"unknown datapath {what!r}; known: {sorted(table)}") from None

    def with_clock(self, clock_ghz: float) -> "GPUSpec":
        """Copy of this spec at a different SM clock (frequency derating)."""
        return replace(self, name=f"{self.name}@{clock_ghz:.3f}GHz", clock_ghz=clock_ghz)


def a100() -> GPUSpec:
    """NVIDIA A100-40GB (Ampere), the paper's testbed GPU."""
    return GPUSpec(
        name="a100",
        n_sms=108,
        tensor_cores_per_sm=4,
        fp32_cores_per_sm=64,
        clock_ghz=1.41,
        tc_macs_per_cycle=256,
        tc_tf32_macs_per_cycle=128,
        dram_bw_gbs=1555.0,
    )


def a100_emulation() -> GPUSpec:
    """The paper's emulation clock: Tensor-core frequency locked to 1170 MHz
    (Section V-C). Used when reproducing the emulated experiments."""
    return a100().with_clock(1.17)


def h100() -> GPUSpec:
    """NVIDIA H100 SXM (Hopper) for the Section III-C projection
    (M3XU FP32 peak ~248 TFLOPS)."""
    return GPUSpec(
        name="h100",
        n_sms=132,
        tensor_cores_per_sm=4,
        fp32_cores_per_sm=128,
        clock_ghz=1.83,
        tc_macs_per_cycle=512,
        tc_tf32_macs_per_cycle=256,
        dram_bw_gbs=3350.0,
        l2_bytes=50 * 2**20,
    )


def mi100() -> GPUSpec:
    """AMD MI100 (CDNA) for the Section III-C projection: Matrix Core TOPS
    are 8x the SIMT cores, so M3XU FP32 retains a 2x advantage."""
    return GPUSpec(
        name="mi100",
        n_sms=120,  # compute units
        tensor_cores_per_sm=4,
        fp32_cores_per_sm=64,
        clock_ghz=1.502,
        tc_macs_per_cycle=128,  # 8x SIMT FMA rate total
        tc_tf32_macs_per_cycle=64,
        dram_bw_gbs=1228.8,
        l2_bytes=8 * 2**20,
    )


def required_feed_bandwidth(
    gpu: GPUSpec, m: int, n: int, k: int, bits: int
) -> float:
    """Section II-B: bytes/second needed to keep every MXU fed.

    ``B = (M*K + K*N + M*N) * p/8 * F * X`` with X the tensor-core count
    and the per-cycle tile (M, N, K). For the A100 at 16-bit this is
    156 TB/s — two orders of magnitude above HBM.
    """
    elements = m * k + k * n + m * n
    bytes_per_cycle = elements * bits / 8
    x = gpu.n_sms * gpu.tensor_cores_per_sm
    return bytes_per_cycle * gpu.clock_ghz * 1e9 * x
