"""Roofline analysis for the kernel models.

Section I frames MXUs as having "lifted the roofline of core neural
network operations to the memory bandwidth"; Section II-B derives the
memory wall quantitatively. This module provides the standard roofline
quantities for any kernel spec or GEMM problem — operational intensity,
the ridge point per datapath, and the roofline-limited throughput — plus
a plain-text roofline chart for reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import GPUSpec
from .kernelmodel import KernelSpec

__all__ = ["RooflinePoint", "roofline_point", "ridge_intensity", "ascii_roofline"]


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position in roofline space."""

    name: str
    flops: float
    dram_bytes: float
    peak_tflops: float

    @property
    def intensity(self) -> float:
        """Operational intensity (FLOP per DRAM byte)."""
        return self.flops / max(self.dram_bytes, 1.0)

    def attainable_tflops(self, gpu: GPUSpec) -> float:
        """min(peak, BW * intensity), the roofline bound."""
        bw_tflops = gpu.dram_bw_gbs * 1e9 * self.intensity / 1e12
        return min(self.peak_tflops, bw_tflops)

    def memory_bound(self, gpu: GPUSpec) -> bool:
        return self.intensity < ridge_intensity(gpu, self.peak_tflops)


def ridge_intensity(gpu: GPUSpec, peak_tflops: float) -> float:
    """Intensity at which the compute roof meets the bandwidth roof."""
    return peak_tflops * 1e12 / (gpu.dram_bw_gbs * 1e9)


def roofline_point(
    spec: KernelSpec, gpu: GPUSpec, flops: float, peak_path: str
) -> RooflinePoint:
    """Place one kernel launch in roofline space.

    ``flops`` is the useful arithmetic (the caller knows the semantics);
    ``peak_path`` a :meth:`GPUSpec.peak_tflops` key for the compute roof.
    """
    return RooflinePoint(
        name=spec.name,
        flops=flops,
        dram_bytes=spec.work.dram_bytes,
        peak_tflops=gpu.peak_tflops(peak_path) * spec.clock_scale,
    )


def ascii_roofline(
    points: list[RooflinePoint], gpu: GPUSpec, width: int = 64, height: int = 16
) -> str:
    """A log-log text roofline with the points marked by index.

    Intensity spans 2^-2..2^12 FLOP/B; throughput 2^-2..2^9 TFLOPS —
    covering everything an A100-class device can reach.
    """
    import math

    x_lo, x_hi = -2.0, 12.0   # log2 intensity
    y_lo, y_hi = -2.0, 9.0    # log2 TFLOPS
    grid = [[" "] * width for _ in range(height)]

    def to_col(x: float) -> int:
        return int((x - x_lo) / (x_hi - x_lo) * (width - 1))

    def to_row(y: float) -> int:
        return height - 1 - int((y - y_lo) / (y_hi - y_lo) * (height - 1))

    bw = gpu.dram_bw_gbs * 1e9 / 1e12  # TFLOP per unit intensity
    peak = max((p.peak_tflops for p in points), default=gpu.peak_tflops("fp16_tc"))
    for col in range(width):
        xi = x_lo + col / (width - 1) * (x_hi - x_lo)
        roof = min(peak, bw * 2.0**xi)
        row = to_row(math.log2(max(roof, 2.0**y_lo)))
        if 0 <= row < height:
            grid[row][col] = "-" if roof >= peak else "/"

    for i, p in enumerate(points):
        col = to_col(math.log2(max(p.intensity, 2.0**x_lo)))
        tf = p.flops and p.attainable_tflops(gpu)
        row = to_row(math.log2(max(tf, 2.0**y_lo)))
        if 0 <= row < height and 0 <= col < width:
            grid[row][col] = str(i % 10)

    lines = ["".join(r) for r in grid]
    legend = "  ".join(f"{i}:{p.name}" for i, p in enumerate(points))
    return "\n".join(lines) + f"\n[x: log2 FLOP/B {x_lo}..{x_hi}] {legend}"
