"""Analytic kernel timing: the performance-emulation engine.

The paper evaluates M3XU by *emulation*: it instruments real Tensor-Core
kernels so that instruction counts, MMA latencies and memory traffic match
what M3XU hardware would execute (Section V-B1 a-c), then measures time.
This model computes time from the same quantities directly:

``time = max(pipe times) * wave quantisation + launch overhead``

with one pipe time per hardware resource an SM arbitrates:

* tensor pipe   — MAC throughput of the MXU in the kernel's mode,
* FP32/vector pipe — FMA-equivalent lane operations (SIMT math,
  decoupling/conversion arithmetic of the software schemes),
* issue         — warp instructions against scheduler slots,
* shared memory — bytes against bank bandwidth,
* DRAM          — bytes against HBM bandwidth.

Utilisation factors (documented per kernel in :mod:`repro.kernels`)
derate the tensor/vector pipes for dependency stalls the throughput model
cannot see; they are the only calibrated constants in the timing path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from .config import GPUSpec
from .tiling import TileConfig

__all__ = ["PipeWork", "KernelSpec", "TimeBreakdown", "estimate_time", "sequence_time"]


@dataclass(frozen=True)
class PipeWork:
    """Total work of one kernel, bucketed by SM pipe."""

    #: MACs executed on the MXU (complex MACs count as 1 in FP32C mode).
    tc_macs: float = 0.0
    #: MAC rate key resolving the per-SM tensor throughput (see
    #: GPUSpec / ``_tc_rate``): "fp16", "bf16", "tf32", "m3xu_fp32",
    #: "m3xu_fp32c", or "fp32_mxu" (the naive full-width FP32 MXU).
    tc_mode: str = "fp16"
    #: FMA-equivalent lane operations on the FP32/vector pipe.
    fma_lane_ops: float = 0.0
    #: Other vector-lane operations (conversions, shuffles, address math).
    aux_lane_ops: float = 0.0
    #: Warp-level instructions issued (all classes).
    warp_instructions: float = 0.0
    #: Shared-memory bytes moved (loads + stores).
    smem_bytes: float = 0.0
    #: DRAM bytes moved.
    dram_bytes: float = 0.0


@dataclass(frozen=True)
class KernelSpec:
    """Everything the timing model needs about one kernel launch."""

    name: str
    work: PipeWork
    tile: TileConfig = field(default_factory=TileConfig)
    n_ctas: int = 1
    #: Tensor-pipe utilisation (dependency stalls, fragment shuffles).
    tc_util: float = 1.0
    #: Vector-pipe utilisation.
    fma_util: float = 1.0
    #: SM clock multiplier for this kernel (e.g. 960/1170 for the
    #: non-pipelined M3XU whose cycle time is 1.21x — Table III).
    clock_scale: float = 1.0

    def scaled(self, **changes) -> "KernelSpec":
        return replace(self, **changes)


@dataclass(frozen=True)
class TimeBreakdown:
    """Per-limiter times (seconds) and the resulting kernel time."""

    tensor_s: float
    vector_s: float
    issue_s: float
    smem_s: float
    dram_s: float
    wave_factor: float
    launch_s: float
    total_s: float

    @property
    def limiter(self) -> str:
        pairs = {
            "tensor": self.tensor_s,
            "vector": self.vector_s,
            "issue": self.issue_s,
            "smem": self.smem_s,
            "dram": self.dram_s,
        }
        return max(pairs, key=pairs.get)  # type: ignore[arg-type]


def _tc_rate(gpu: GPUSpec, mode: str) -> float:
    """Per-SM MAC/cycle rate of the tensor pipe for a mode key."""
    rates = {
        "fp16": gpu.sm_fp16_tc_macs,
        "bf16": gpu.sm_fp16_tc_macs,
        "tf32": gpu.sm_tf32_tc_macs,
        "m3xu_fp32": gpu.sm_fp16_tc_macs / 4.0,
        "m3xu_fp32c": gpu.sm_fp16_tc_macs / 16.0,
        "m3xu_fp64": gpu.sm_fp16_tc_macs / 16.0,
        # The naive FP32-MXU alternative of Section II-B: full-width
        # multipliers matching the FP16 MAC rate.
        "fp32_mxu": gpu.sm_fp16_tc_macs,
        "fp32c_mxu": gpu.sm_fp16_tc_macs / 4.0,
    }
    try:
        return rates[mode]
    except KeyError:
        raise KeyError(f"unknown tc_mode {mode!r}; known: {sorted(rates)}") from None


def estimate_time(spec: KernelSpec, gpu: GPUSpec) -> TimeBreakdown:
    """Model the execution time of one kernel launch on *gpu*."""
    clock = gpu.clock_ghz * 1e9 * spec.clock_scale
    w = spec.work

    tensor_cycles = 0.0
    if w.tc_macs:
        rate = _tc_rate(gpu, w.tc_mode) * gpu.n_sms * max(spec.tc_util, 1e-9)
        tensor_cycles = w.tc_macs / rate
    vector_cycles = 0.0
    if w.fma_lane_ops or w.aux_lane_ops:
        rate = gpu.fp32_cores_per_sm * gpu.n_sms * max(spec.fma_util, 1e-9)
        vector_cycles = (w.fma_lane_ops + w.aux_lane_ops) / rate
    issue_cycles = w.warp_instructions / (gpu.warp_schedulers_per_sm * gpu.n_sms)
    smem_cycles = w.smem_bytes / (gpu.smem_bytes_per_cycle * gpu.n_sms)

    tensor_s = tensor_cycles / clock
    vector_s = vector_cycles / clock
    issue_s = issue_cycles / clock
    smem_s = smem_cycles / clock
    dram_s = w.dram_bytes / (gpu.dram_bw_gbs * 1e9)

    busy = max(tensor_s, vector_s, issue_s, smem_s, dram_s)

    # Wave quantisation: CTAs distribute round-robin over SMs; a grid that
    # does not fill a whole number of SM-waves leaves SMs idle for part of
    # the kernel, so the device runs at n_ctas / (ceil-waves * n_sms)
    # utilisation of the throughput assumed by the busy times above.
    sm_waves = max(1, math.ceil(spec.n_ctas / gpu.n_sms))
    wave_factor = sm_waves * gpu.n_sms / max(spec.n_ctas, 1)

    total = busy * wave_factor + gpu.launch_overhead_s
    return TimeBreakdown(
        tensor_s=tensor_s,
        vector_s=vector_s,
        issue_s=issue_s,
        smem_s=smem_s,
        dram_s=dram_s,
        wave_factor=wave_factor,
        launch_s=gpu.launch_overhead_s,
        total_s=total,
    )


def sequence_time(specs: list[KernelSpec], gpu: GPUSpec) -> float:
    """Total time of a dependent kernel sequence (software-scheme pattern:
    decouple pass, several GEMM launches, combine epilogues)."""
    return float(sum(estimate_time(s, gpu).total_s for s in specs))
