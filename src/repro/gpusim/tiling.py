"""CUTLASS-style GEMM tiling and grid/occupancy arithmetic.

Every GEMM kernel in the evaluation is a hierarchical blocked kernel
(Section V-B2: "Our framework utilizes CUTLASS to efficiently implement
hierarchical blocked GEMM kernels"). The performance model needs the
tiling to derive instruction counts, shared-memory traffic, DRAM traffic
(with L2 reuse inside a CTA wave) and occupancy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .config import GPUSpec

__all__ = ["TileConfig", "GemmGrid", "plan_grid", "dram_bytes_wave_model"]


@dataclass(frozen=True)
class TileConfig:
    """One kernel's tile hierarchy.

    ``tb_*`` are the threadblock-tile extents; ``warps`` the warp count per
    threadblock; ``stages`` the software-pipeline depth (multiplies the
    shared-memory footprint); ``element_bytes`` the storage size of one
    operand element in shared memory.
    """

    tb_m: int = 128
    tb_n: int = 128
    tb_k: int = 32
    warps: int = 8
    stages: int = 3
    element_bytes: int = 4

    @property
    def threads(self) -> int:
        return self.warps * 32

    @property
    def smem_bytes(self) -> int:
        """Double/triple-buffered A and B tile storage per CTA."""
        per_stage = (self.tb_m * self.tb_k + self.tb_k * self.tb_n) * self.element_bytes
        return per_stage * self.stages

    def regs_per_thread(self, accum_bytes: int = 4) -> int:
        """Accumulator-dominated register estimate per thread."""
        accum = self.tb_m * self.tb_n // self.threads  # outputs per thread
        # accumulator registers + operand fragments + addressing (~24)
        return min(255, accum * accum_bytes // 4 + 24)


@dataclass(frozen=True)
class GemmGrid:
    """Grid decomposition of one GEMM problem under a tile config."""

    m: int
    n: int
    k: int
    tile: TileConfig

    @property
    def ctas_m(self) -> int:
        return math.ceil(self.m / self.tile.tb_m)

    @property
    def ctas_n(self) -> int:
        return math.ceil(self.n / self.tile.tb_n)

    @property
    def n_ctas(self) -> int:
        return self.ctas_m * self.ctas_n

    @property
    def mainloop_iters(self) -> int:
        return math.ceil(self.k / self.tile.tb_k)


def plan_grid(m: int, n: int, k: int, tile: TileConfig) -> GemmGrid:
    """Build the grid plan for a problem under *tile*."""
    if min(m, n, k) < 1:
        raise ValueError("problem dimensions must be positive")
    return GemmGrid(m, n, k, tile)


def occupancy_ctas_per_sm(tile: TileConfig, gpu: GPUSpec) -> int:
    """CTAs resident per SM, limited by threads, smem and registers."""
    by_threads = gpu.max_threads_per_sm // tile.threads
    by_smem = max(1, gpu.smem_per_sm_bytes // max(tile.smem_bytes, 1))
    regs = tile.regs_per_thread() * tile.threads * 4  # bytes
    by_regs = max(1, gpu.regfile_per_sm_bytes // max(regs, 1))
    return max(1, min(by_threads, by_smem, by_regs, gpu.max_ctas_per_sm))


def dram_bytes_wave_model(
    grid: GemmGrid, gpu: GPUSpec, element_bytes: int, out_bytes: int
) -> float:
    """DRAM traffic of a tiled GEMM with L2 reuse inside each CTA wave.

    CTAs resident at the same time form a roughly square window of the
    output tile grid; within the window each A row-panel and B col-panel
    is fetched from DRAM once and re-used through L2. The output is
    written once. This is the standard wave-reuse traffic model; it
    reduces to perfect reuse for single-wave problems and to the
    (M*K*N/tb_n + K*N*M/tb_m) cold model when the window is 1x1.
    """
    tile = grid.tile
    resident = occupancy_ctas_per_sm(tile, gpu) * gpu.n_sms
    wave = max(1, min(resident, grid.n_ctas))
    # Shape the wave window like the CTA grid so narrow problems behave.
    aspect = grid.ctas_m / grid.ctas_n
    wave_m = min(grid.ctas_m, max(1, round(math.sqrt(wave * aspect))))
    wave_n = min(grid.ctas_n, max(1, math.ceil(wave / wave_m)))
    n_waves = grid.n_ctas / (wave_m * wave_n)

    a_panel = tile.tb_m * grid.k * element_bytes
    b_panel = tile.tb_n * grid.k * element_bytes
    per_wave = wave_m * a_panel + wave_n * b_panel
    traffic = n_waves * per_wave + grid.m * grid.n * out_bytes
    # L2 cannot help if even one wave's panels exceed it: fall back to the
    # cold reload model, bounded by compulsory traffic.
    if per_wave > gpu.l2_bytes:
        spill = min(per_wave / gpu.l2_bytes, 4.0)
        traffic *= spill ** 0.5  # partial-thrash derate
    compulsory = (grid.m * grid.k + grid.k * grid.n) * element_bytes + grid.m * grid.n * out_bytes
    return max(traffic, compulsory)
