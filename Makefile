# Convenience targets for the M3XU reproduction.

PY ?= python

.PHONY: install test lint lint-graph lint-sarif bench bench-check report examples clean

install:
	pip install -e . --no-build-isolation

test:
	$(PY) -m pytest tests/

# The repo's own analyzer (stdlib-only); ruff/mypy run too when installed.
# tests/ is excluded on purpose: the lint fixture corpus is known-bad.
lint:
	$(PY) -m repro lint src benchmarks examples
	-command -v ruff >/dev/null && ruff check src benchmarks examples
	-command -v mypy >/dev/null && mypy src/repro/types src/repro/arith \
		src/repro/mxu src/repro/parallel.py src/repro/cache.py \
		src/repro/resilience src/repro/analysis

# Dump the interprocedural call graph (symbol table + typed edges).
lint-graph:
	$(PY) -m repro lint --graph lint-graph.json src benchmarks examples

# SARIF 2.1.0 export for CI annotation / code-scanning upload.
lint-sarif:
	$(PY) -m repro lint --sarif lint.sarif src benchmarks examples

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

# Gate fresh BENCH_*.json tables against the committed baselines.
bench-check:
	$(PY) benchmarks/bench_regression.py

report:
	$(PY) examples/paper_report.py

examples:
	for ex in examples/*.py; do echo "== $$ex =="; $(PY) $$ex || exit 1; done

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +; rm -rf .pytest_cache .benchmarks
