# Convenience targets for the M3XU reproduction.

PY ?= python

.PHONY: install test bench report examples clean

install:
	pip install -e . --no-build-isolation

test:
	$(PY) -m pytest tests/

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

report:
	$(PY) examples/paper_report.py

examples:
	for ex in examples/*.py; do echo "== $$ex =="; $(PY) $$ex || exit 1; done

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +; rm -rf .pytest_cache .benchmarks
