#!/usr/bin/env python
"""MR fingerprinting end to end on the M3XU stack.

Simulates an EPG dictionary over a (T1, T2) grid, synthesises noisy
"voxel" measurements, and reconstructs the tissue parameters by CGEMM
dictionary matching running on the M3XU FP32C functional model — the
Section VI-C3 case study in miniature. Ends with the Figure 8 projection.
"""

import numpy as np

from repro.apps.mrf import (
    AtomGrid,
    FispSequence,
    figure8,
    generate_dictionary,
    match_fingerprints,
)
from repro.gemm import mxu_cgemm


def main() -> None:
    rng = np.random.default_rng(3)

    print("Generating EPG dictionary (20x20 T1/T2 grid, 200 TRs)...")
    grid = AtomGrid.standard(20, 20)
    seq = FispSequence.standard(200)
    d = generate_dictionary(grid, seq)
    print(f"  {d.n_atoms} atoms x {d.n_timepoints} timepoints")

    # Synthesise voxels from known tissue parameters + noise.
    n_voxels = 40
    idx = rng.integers(0, d.n_atoms, size=n_voxels)
    density = rng.uniform(0.5, 2.0, size=(n_voxels, 1))
    voxels = d.signals[idx] * density
    voxels += 0.01 * (rng.normal(size=voxels.shape) + 1j * rng.normal(size=voxels.shape))

    print("Matching on the M3XU FP32C model...")
    t1, t2, score = match_fingerprints(d, voxels, cgemm=lambda a, b: mxu_cgemm(a, b))

    true_t1 = d.grid.t1_ms[idx]
    true_t2 = d.grid.t2_ms[idx]
    t1_err = np.median(np.abs(t1 - true_t1) / true_t1)
    t2_err = np.median(np.abs(t2 - true_t2) / true_t2)
    exact = np.mean((t1 == true_t1) & (t2 == true_t2))
    print(f"  exact-atom matches : {exact * 100:.0f}%")
    print(f"  median T1 error    : {t1_err * 100:.1f}%")
    print(f"  median T2 error    : {t2_err * 100:.1f}%")
    print(f"  mean match score   : {score.mean():.4f}")

    print("\nFigure 8: dictionary-generation speedup with M3XU CGEMM")
    for r in figure8():
        print(
            f"  {r.n_atoms:7d} atoms: {r.speedup:4.2f}x "
            f"(CGEMM is {r.cgemm_fraction * 100:4.1f}% of baseline runtime)"
        )


if __name__ == "__main__":
    main()
