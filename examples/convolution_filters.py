#!/usr/bin/env python
"""Image filtering with 2-D convolution on the M3XU stack.

Builds a synthetic test image, applies classic filters (Gaussian blur,
Sobel edges, sharpen) through the im2col GEMM path running on the M3XU
functional model, cross-checks the FFT-domain path, and reports the
modelled speedup of convolution layers over the SIMT baseline.
"""

import numpy as np

from repro.apps.conv import conv2d_direct, conv2d_fft, conv2d_im2col, conv_speedups
from repro.gemm import mxu_sgemm


def test_image(size: int = 64) -> np.ndarray:
    """A synthetic image with edges and texture (1 x 1 x H x W)."""
    y, x = np.mgrid[0:size, 0:size] / size
    img = np.sin(8 * np.pi * x) * 0.3 + (y > 0.5) * 0.7 + 0.1 * np.cos(20 * np.pi * x * y)
    return img[None, None, :, :]


FILTERS = {
    "gaussian": np.array([[1, 2, 1], [2, 4, 2], [1, 2, 1]]) / 16.0,
    "sobel_x": np.array([[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]], dtype=float),
    "sharpen": np.array([[0, -1, 0], [-1, 5, -1], [0, -1, 0]], dtype=float),
}


def main() -> None:
    img = test_image()
    weights = np.stack([f for f in FILTERS.values()])[:, None, :, :]

    out_m3xu = conv2d_im2col(img, weights, padding=1, sgemm=lambda a, b: mxu_sgemm(a, b))
    out_ref = conv2d_direct(img, weights, padding=1)
    # FFT path computes convolution (flipped kernel) - compare on the
    # symmetric Gaussian where the two coincide.
    out_fft = conv2d_fft(img, weights[:1])

    print("64x64 image, 3 classic filters, M3XU FP32 GEMM path:")
    for i, name in enumerate(FILTERS):
        err = np.max(np.abs(out_m3xu[0, i] - out_ref[0, i]))
        print(f"  {name:9s} max |err| vs float64 direct conv: {err:.2e}")
    sym_err = np.max(np.abs(out_fft[0, 0] - out_ref[0, 0]))
    print(f"  gaussian via GEMM-FFT (symmetric kernel): {sym_err:.2e}")

    print("\nConv-layer speedups (M3XU vs SIMT im2col, batch 32):")
    for s, sp in conv_speedups():
        print(f"  {s.c:4d} ch @ {s.h:2d}x{s.w:<2d}: {sp:4.2f}x")


if __name__ == "__main__":
    main()
