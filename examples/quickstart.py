#!/usr/bin/env python
"""Quickstart: M3XU in five minutes.

Walks the public API end to end:

1. quantise data to FP32 and split it the way the hardware does,
2. run one bit-accurate M3XU MMA and check it against exact arithmetic,
3. run full FP32 and complex GEMMs on the M3XU functional model,
4. ask the performance model how fast that would be on an A100,
5. print the synthesis cost of the hardware (Table III).
"""

import numpy as np

from repro import M3XU, MXUMode
from repro.arith import exact_dot
from repro.gemm import mxu_cgemm, mxu_sgemm, sgemm_simt
from repro.gpusim import a100_emulation
from repro.kernels import SGEMM_KERNELS, GemmProblem
from repro.synthesis import synthesis_table
from repro.types import FP32, quantize, split_fp32_m3xu


def main() -> None:
    rng = np.random.default_rng(42)

    # --- 1. Quantisation and the hardware operand split -----------------
    x = quantize(rng.normal(size=4), FP32)
    hi, lo = split_fp32_m3xu(x)
    print("FP32 values      :", x)
    print("high 12-bit parts:", hi)
    print("low 12-bit parts :", lo)
    print("exact recombine  :", np.array_equal(hi + lo, x))

    # --- 2. One MMA instruction is correctly rounded ---------------------
    unit = M3XU()
    a = quantize(rng.normal(size=(8, 4)), FP32)
    b = quantize(rng.normal(size=(4, 4)), FP32)
    c = np.zeros((8, 4))
    d = unit.mma(a, b, c, MXUMode.FP32)
    ref = exact_dot(list(a[0]), list(b[:, 0]), 0.0, FP32)
    print(f"\nM3XU MMA d[0,0] = {d[0, 0]!r}")
    print(f"exact rounding  = {ref!r}  (equal: {d[0, 0] == ref})")

    # --- 3. Full GEMMs on the functional model ---------------------------
    A = rng.normal(size=(64, 128))
    B = rng.normal(size=(128, 64))
    d_m3xu = mxu_sgemm(A, B)
    d_simt = sgemm_simt(A, B)
    ref64 = quantize(A, FP32) @ quantize(B, FP32)
    print("\nFP32 GEMM max |err| vs float64:")
    print(f"  M3XU      : {np.max(np.abs(d_m3xu - ref64)):.3e}")
    print(f"  FP32 SIMT : {np.max(np.abs(d_simt - ref64)):.3e}")

    Z = rng.normal(size=(32, 32)) + 1j * rng.normal(size=(32, 32))
    W = rng.normal(size=(32, 32)) + 1j * rng.normal(size=(32, 32))
    d_c = mxu_cgemm(Z, W)
    print(f"  FP32C GEMM rel err: {np.max(np.abs(d_c - Z @ W) / np.abs(Z @ W)):.3e}")

    # --- 4. Performance on an A100 --------------------------------------
    gpu = a100_emulation()
    p = GemmProblem(8192, 8192, 8192)
    t_simt = SGEMM_KERNELS["cutlass_simt_sgemm"].time(p, gpu)
    t_m3xu = SGEMM_KERNELS["M3XU_sgemm_pipelined"].time(p, gpu)
    print(f"\n8K^3 SGEMM on {gpu.name}:")
    print(f"  CUDA cores : {t_simt * 1e3:7.2f} ms")
    print(f"  M3XU       : {t_m3xu * 1e3:7.2f} ms  ({t_simt / t_m3xu:.2f}x speedup)")

    # --- 5. What the hardware costs --------------------------------------
    print("\nSynthesis model (relative to the baseline FP16 MXU):")
    for row in synthesis_table():
        print(
            f"  {row.design:18s} area={row.area:4.2f}  cycle={row.cycle:4.2f}  "
            f"power={row.power:4.2f}"
        )


if __name__ == "__main__":
    main()
