#!/usr/bin/env python
"""The Section V-B numerical story, end to end.

Prints (1) the exactness study (matching significand bits per GEMM
implementation), (2) error growth with reduction length K, (3) the
dynamic-range sweep, and (4) the Higham-style forward-error bounds with
their empirical headroom — the quantitative backing for "M3XU introduces
no additional error while software schemes lose one to several bits".
"""

import numpy as np

from repro.accuracy import (
    GROWTH_IMPLS,
    cgemm_accuracy_study,
    dynamic_range_sweep,
    error_growth_vs_k,
    scheme_error_bound,
    sgemm_accuracy_study,
)
from repro.types import FP32, quantize


def main() -> None:
    print("== Matching significand bits vs float64 (well-conditioned GEMM) ==")
    for r in sgemm_accuracy_study():
        print(f"  {r.name:12s} {r.matching_bits:5.1f} bits   max rel {r.max_rel_error:.2e}")
    print("  -- complex --")
    for r in cgemm_accuracy_study():
        print(f"  {r.name:12s} {r.matching_bits:5.1f} bits   max rel {r.max_rel_error:.2e}")

    print("\n== Mean relative error vs reduction length K ==")
    points = error_growth_vs_k(ks=[16, 64, 256, 1024])
    impls = sorted({p.impl for p in points})
    ks = sorted({p.k for p in points})
    print(f"  {'impl':12s} " + "".join(f"K={k:<10d}" for k in ks))
    for impl in impls:
        vals = [p.mean_rel_error for p in points if p.impl == impl]
        print(f"  {impl:12s} " + "".join(f"{v:<12.2e}" for v in vals))

    print("\n== Max relative error vs operand dynamic range (10^±p) ==")
    sweep = dynamic_range_sweep(range_pows=[0, 2, 4, 6])
    for impl, vals in sweep.items():
        print(f"  {impl:12s} " + "".join(f"{v:<12.2e}" for v in vals))

    print("\n== Forward-error bounds (Higham-style) and empirical headroom ==")
    rng = np.random.default_rng(41)
    a = quantize(rng.uniform(0.1, 1.0, size=(16, 128)), FP32)
    b = quantize(rng.uniform(0.1, 1.0, size=(128, 16)), FP32)
    ref = a @ b
    for scheme, fn in GROWTH_IMPLS.items():
        got = fn(a, b, np.zeros((16, 16)))
        err = float(np.max(np.abs(got - ref)))
        bound = float(np.max(scheme_error_bound(scheme, np.abs(a), np.abs(b))))
        print(f"  {scheme:12s} worst err {err:.2e}  bound {bound:.2e}  "
              f"headroom {bound / max(err, 1e-300):6.1f}x")


if __name__ == "__main__":
    main()
