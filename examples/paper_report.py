#!/usr/bin/env python
"""Regenerate every table and figure of the paper and print the full
paper-vs-measured report (the source of EXPERIMENTS.md).

Usage:
    python examples/paper_report.py            # everything (takes a while)
    python examples/paper_report.py fig4 fig6  # selected experiments
"""

import sys

from repro.eval import ALL_EXPERIMENTS, render_report, run_all


def main() -> None:
    only = [a for a in sys.argv[1:] if a in ALL_EXPERIMENTS] or None
    unknown = [a for a in sys.argv[1:] if a not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments {unknown}; available: {sorted(ALL_EXPERIMENTS)}")
        raise SystemExit(1)
    print(render_report(run_all(only)))


if __name__ == "__main__":
    main()
