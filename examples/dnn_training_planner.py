#!/usr/bin/env python
"""Training-latency planner: what M3XU buys a CNN training run.

Walks the Figure 7 case study: per-network single-iteration latency under
mixed-precision training with SIMT-FP32 backward passes versus M3XU
native-FP32 backward passes, with the per-layer GEMM breakdown of the
heaviest layers.
"""

from repro.apps.dnn import NETWORKS, figure7
from repro.gpusim import a100_emulation
from repro.kernels import SGEMM_KERNELS


def main() -> None:
    gpu = a100_emulation()
    data = figure7(batch=64, gpu=gpu)

    print("Single-iteration training latency (batch 64, A100 @ 1.17 GHz)\n")
    print(f"{'network':10s} {'baseline':>10s} {'m3xu':>10s} {'speedup':>8s} "
          f"{'bwd share':>10s} {'bwd speedup':>12s}")
    for net, d in data.items():
        base, ours = d["mixed_precision"], d["m3xu"]
        print(
            f"{net:10s} {base.total_s * 1e3:8.1f}ms {ours.total_s * 1e3:8.1f}ms "
            f"{base.total_s / ours.total_s:7.2f}x {base.backward_fraction * 100:9.1f}% "
            f"{base.backward_s / ours.backward_s:11.2f}x"
        )

    # Per-layer view of where the backward-pass time goes for one network.
    net = "ResNet50"
    print(f"\nHeaviest {net} layers (forward GEMM shape and backward speedup):")
    layers = NETWORKS[net]()
    simt = SGEMM_KERNELS["cutlass_simt_sgemm"]
    m3xu = SGEMM_KERNELS["M3XU_sgemm_pipelined"]
    rows = []
    for layer in layers:
        p = layer.gemm(64)
        t_simt = simt.time(p, gpu)
        rows.append((t_simt, layer.name, p, t_simt / m3xu.time(p, gpu)))
    rows.sort(reverse=True)
    for t, name, p, sp in rows[:8]:
        print(f"  {name:14s} {str(p):>22s}  simt {t * 1e3:6.2f} ms  m3xu {sp:4.2f}x")


if __name__ == "__main__":
    main()
