#!/usr/bin/env python
"""Roofline view of the kernel zoo.

Places the Figure 4 kernels (at 8K^3) and the FFT/kNN workloads in
roofline space on the A100 and renders a text roofline — showing at a
glance why M3XU's 4x compute advantage materialises for GEMM (far right
of the ridge) but compresses for the memory-shadowed case studies.
"""

from repro.gpusim import (
    RooflinePoint,
    a100_emulation,
    ascii_roofline,
    estimate_time,
    ridge_intensity,
)
from repro.kernels import SGEMM_KERNELS, GemmProblem


def main() -> None:
    gpu = a100_emulation()
    size = 8192
    p = GemmProblem(size, size, size)

    points = []
    for name, peak in (
        ("cutlass_simt_sgemm", "fp32"),
        ("M3XU_sgemm_pipelined", "m3xu_fp32"),
    ):
        spec = SGEMM_KERNELS[name].build(p, gpu)[0]
        points.append(
            RooflinePoint(
                name=name,
                flops=p.flops,
                dram_bytes=spec.work.dram_bytes,
                peak_tflops=gpu.peak_tflops(peak),
            )
        )
    # A memory-shadowed workload for contrast: one FFT pass.
    n_fft = 1 << 22
    points.append(
        RooflinePoint(
            name="fft_pass",
            flops=64 * 8 * n_fft,
            dram_bytes=16.0 * n_fft,
            peak_tflops=gpu.peak_tflops("m3xu_fp32c"),
        )
    )

    print(f"A100 roofline (DRAM {gpu.dram_bw_gbs / 1000:.2f} TB/s)\n")
    print(ascii_roofline(points, gpu))
    print()
    for pt in points:
        ridge = ridge_intensity(gpu, pt.peak_tflops)
        where = "memory-bound" if pt.memory_bound(gpu) else "compute-bound"
        print(
            f"  {pt.name:22s} intensity {pt.intensity:8.1f} FLOP/B "
            f"(ridge {ridge:6.1f})  -> {where}, attainable "
            f"{pt.attainable_tflops(gpu):6.1f} TFLOPS"
        )

    t_simt = estimate_time(SGEMM_KERNELS["cutlass_simt_sgemm"].build(p, gpu)[0], gpu)
    t_m3xu = estimate_time(SGEMM_KERNELS["M3XU_sgemm_pipelined"].build(p, gpu)[0], gpu)
    print(
        f"\n8K^3 SGEMM limiters: SIMT -> {t_simt.limiter}, "
        f"M3XU -> {t_m3xu.limiter} (speedup {t_simt.total_s / t_m3xu.total_s:.2f}x)"
    )


if __name__ == "__main__":
    main()
