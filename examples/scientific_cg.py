#!/usr/bin/env python
"""Conjugate gradient on M3XU: why scientific codes need true FP32.

Solves a 2-D diffusion system with CG whose matrix-vector products run on
(a) float64, (b) the M3XU FP32 model, (c) FP16 tensor cores. The FP16
solver *believes* it converged — its recurrence residual hits the
tolerance — while the true residual ||b - Ax||/||b|| stalls orders of
magnitude higher: the silent failure mode Section I's scientific-
computing motivation is about. M3XU tracks float64 convergence exactly.
"""

import numpy as np

from repro.apps.scientific import conjugate_gradient, diffusion_2d
from repro.gemm import fp16_tensorcore_sgemm, mxu_sgemm, sgemm_simt


def main() -> None:
    rng = np.random.default_rng(9)
    n_grid = 14
    a = diffusion_2d(n_grid) * 0.37  # entries off the FP16 grid
    b = rng.normal(size=a.shape[0])
    tol = 1e-7

    backends = {
        "float64": None,
        "M3XU FP32": lambda m, v: mxu_sgemm(m, v),
        "FP32 SIMT": lambda m, v: sgemm_simt(m, v),
        "FP16 tensor core": lambda m, v: fp16_tensorcore_sgemm(m, v),
    }

    print(f"CG on {a.shape[0]}x{a.shape[0]} diffusion system, tol {tol:.0e}\n")
    print(f"{'backend':18s} {'iters':>6s} {'claimed res':>12s} {'TRUE res':>10s}  verdict")
    for name, gemm in backends.items():
        res = conjugate_gradient(a, b, gemm=gemm, tol=tol, max_iter=3000)
        verdict = (
            "SILENTLY WRONG" if res.silently_wrong
            else ("ok" if res.converged else "did not converge")
        )
        print(
            f"{name:18s} {res.iterations:6d} {res.final_residual:12.2e} "
            f"{res.true_residual:10.2e}  {verdict}"
        )


if __name__ == "__main__":
    main()
