#!/usr/bin/env python
"""Spectral analysis on M3XU: recover tones from a noisy signal via the
GEMM-based FFT running on the FP32C functional model.

Demonstrates the Section VI-C1 case study: the same Cooley-Tukey-as-CGEMM
transform runs on (a) float64 reference CGEMM, (b) the bit-accurate M3XU
FP32C model, and (c) an FP16 tensor-core emulation (the tcFFT base
precision) — and only (c) degrades the recovered spectrum. Ends with the
Figure 6 performance projection.
"""

import numpy as np

from repro.apps.fft import fft_speedups, gemm_fft
from repro.gemm import cgemm_via_4_real, fp16_tensorcore_sgemm, mxu_cgemm


def make_signal(n: int, rng: np.random.Generator) -> tuple[np.ndarray, list[int]]:
    """A few tones of very different amplitudes + noise."""
    t = np.arange(n)
    tones = [(37, 1.0), (191, 0.05), (401, 0.002)]
    x = sum(amp * np.exp(2j * np.pi * f * t / n) for f, amp in tones)
    x = x + 0.0005 * (rng.normal(size=n) + 1j * rng.normal(size=n))
    return x, [f for f, _ in tones]


def top_peaks(spectrum: np.ndarray, k: int) -> list[int]:
    return sorted(np.argsort(np.abs(spectrum))[-k:].tolist())


def main() -> None:
    rng = np.random.default_rng(7)
    n = 1024
    x, true_freqs = make_signal(n, rng)

    def fp16_cgemm(a, b):
        return cgemm_via_4_real(a, b, 0.0, lambda p, q, r: fp16_tensorcore_sgemm(p, q, r))

    runs = {
        "float64 reference": gemm_fft(x),
        "M3XU FP32C": gemm_fft(x, cgemm=lambda a, b: mxu_cgemm(a, b)),
        "FP16 tensor core": gemm_fft(x, cgemm=fp16_cgemm),
    }
    ref = np.fft.fft(x)

    print(f"{n}-point FFT, tones at bins {true_freqs} (amplitudes 1, 0.05, 0.002)")
    for name, spec in runs.items():
        err = np.max(np.abs(spec - ref)) / np.max(np.abs(ref))
        peaks = top_peaks(spec, 3)
        found = sorted(set(peaks) & set(true_freqs))
        print(
            f"  {name:18s} rel err {err:.2e}   tones recovered: "
            f"{len(found)}/3 {found}"
        )

    print("\nFigure 6 projection (speedup over cuFFT):")
    for r in fft_speedups([2**14, 2**18, 2**22, 2**26]):
        print(
            f"  N=2^{r.n.bit_length() - 1:2d}: M3XU {r.m3xu_speedup:4.2f}x, "
            f"tcFFT {r.tcfft_speedup:4.2f}x"
        )


if __name__ == "__main__":
    main()
