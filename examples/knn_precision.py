#!/usr/bin/env python
"""kNN precision study: why FP16 tensor cores break statistical learning.

Reproduces the Section VI-C4 motivation: feature vectors with extremely
small magnitudes (common after normalisation/whitening of physical data)
make FP16 GEMM distances meaningless, while M3XU's exact FP32 GEMM keeps
the search correct — at tensor-core speed. Finishes with the Figure 9
speedup heatmap.
"""

import numpy as np

from repro.apps.knn import figure9, knn_search, recall_at_k
from repro.gemm import fp16_tensorcore_sgemm, mxu_sgemm, sgemm_simt


def main() -> None:
    rng = np.random.default_rng(11)
    n_ref, n_query, dim, k = 512, 64, 32, 8

    print("kNN recall vs data magnitude (k=8, 512 refs, dim 32)")
    print(f"{'scale':>10s} {'fp16_tc':>9s} {'m3xu':>7s} {'fp32_simt':>10s}")
    for scale in (1.0, 1e-4, 1e-6, 1e-8):
        q = rng.normal(size=(n_query, dim)) * scale
        r = rng.normal(size=(n_ref, dim)) * scale
        truth, _ = knn_search(q, r, k=k)
        recalls = {}
        for name, fn in (
            ("fp16_tc", fp16_tensorcore_sgemm),
            ("m3xu", mxu_sgemm),
            ("fp32_simt", sgemm_simt),
        ):
            idx, _ = knn_search(q, r, k=k, sgemm=lambda a, b, f=fn: f(a, b))
            recalls[name] = recall_at_k(idx, truth)
        print(
            f"{scale:10.0e} {recalls['fp16_tc']:9.3f} {recalls['m3xu']:7.3f} "
            f"{recalls['fp32_simt']:10.3f}"
        )

    print("\nFigure 9: M3XU speedup over cublas_sgemm-based kNN (K=16)")
    rows = figure9()
    dims = sorted({r.dim for r in rows})
    print(f"{'points':>8s} " + " ".join(f"d={d:<6d}" for d in dims))
    by_n: dict[int, dict[int, float]] = {}
    for r in rows:
        by_n.setdefault(r.n_points, {})[r.dim] = r.speedup
    for n, row in sorted(by_n.items()):
        print(f"{n:8d} " + " ".join(f"{row[d]:6.2f}x" for d in dims))


if __name__ == "__main__":
    main()
