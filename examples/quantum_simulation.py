#!/usr/bin/env python
"""Quantum-circuit simulation on complex GEMM (the Section I motivation).

Builds a GHZ state and a small random circuit on the statevector
simulator, once with float64 CGEMM and once with the bit-accurate M3XU
FP32C model, and compares the resulting state fidelity — quantum
simulation is exactly the kind of FP32C workload M3XU targets.
"""

import numpy as np

from repro.apps.quantum import Statevector
from repro.gemm import mxu_cgemm


def build_circuit(sv: Statevector, rng: np.random.Generator) -> Statevector:
    """GHZ prep + a layer of random single-qubit rotations + entanglers."""
    n = sv.n_qubits
    sv.h(0)
    for q in range(1, n):
        sv.cnot(0, q)
    for q in range(n):
        theta = rng.uniform(0, np.pi)
        rot = np.array(
            [
                [np.cos(theta / 2), -1j * np.sin(theta / 2)],
                [-1j * np.sin(theta / 2), np.cos(theta / 2)],
            ]
        )
        sv.apply(rot, q)
    for q in range(n - 1):
        sv.cnot(q, q + 1)
    return sv


def main() -> None:
    n = 10
    rng_seed = 5

    ref = build_circuit(Statevector(n), np.random.default_rng(rng_seed))
    m3 = build_circuit(
        Statevector(n, cgemm=lambda a, b: mxu_cgemm(a, b)),
        np.random.default_rng(rng_seed),
    )

    fidelity = abs(np.vdot(ref.state, m3.state)) ** 2
    print(f"{n}-qubit circuit ({2**n} amplitudes)")
    print(f"  norm (float64) : {ref.norm():.12f}")
    print(f"  norm (M3XU)    : {m3.norm():.12f}")
    print(f"  fidelity       : {fidelity:.12f}")
    print(f"  max amp error  : {np.max(np.abs(ref.state - m3.state)):.3e}")

    probs = ref.probabilities()
    top = np.argsort(probs)[-4:][::-1]
    print("  top basis states:", {f"|{i:0{n}b}>": round(float(probs[i]), 4) for i in top})


if __name__ == "__main__":
    main()
