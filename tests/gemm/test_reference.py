"""SIMT reference GEMMs."""

import numpy as np
import pytest

from repro.arith import sequential_fma_dot
from repro.gemm import cgemm_fp64, cgemm_simt, gemm_fp64, sgemm_simt
from repro.types import FP32, quantize
from tests.conftest import fp32_array, fp32c_array


class TestFp64Reference:
    def test_gemm_matches_numpy(self, rng):
        a, b, c = rng.normal(size=(8, 5)), rng.normal(size=(5, 7)), rng.normal(size=(8, 7))
        np.testing.assert_array_equal(gemm_fp64(a, b, c), a @ b + c)

    def test_cgemm_matches_numpy(self, rng):
        a = rng.normal(size=(4, 3)) + 1j * rng.normal(size=(4, 3))
        b = rng.normal(size=(3, 5)) + 1j * rng.normal(size=(3, 5))
        np.testing.assert_array_equal(cgemm_fp64(a, b, 0.0), a @ b)


class TestSgemmSimt:
    def test_matches_scalar_fma_chain(self, rng):
        m, n, k = 4, 3, 9
        a = fp32_array(rng, (m, k))
        b = fp32_array(rng, (k, n))
        c = fp32_array(rng, (m, n))
        d = sgemm_simt(a, b, c)
        for i in range(m):
            for j in range(n):
                assert d[i, j] == sequential_fma_dot(
                    list(a[i]), list(b[:, j]), float(c[i, j]), FP32
                )

    def test_quantizes_inputs(self, rng):
        a = rng.normal(size=(2, 4))  # raw float64
        b = rng.normal(size=(4, 2))
        d = sgemm_simt(a, b, 0.0)
        dq = sgemm_simt(quantize(a, FP32), quantize(b, FP32), 0.0)
        np.testing.assert_array_equal(d, dq)

    def test_close_to_fp64(self, rng):
        a = fp32_array(rng, (16, 64))
        b = fp32_array(rng, (64, 16))
        d = sgemm_simt(a, b, 0.0)
        np.testing.assert_allclose(d, a @ b, rtol=1e-5, atol=1e-6)

    def test_scalar_c_broadcast(self, rng):
        d = sgemm_simt(fp32_array(rng, (3, 2)), fp32_array(rng, (2, 3)), 0.0)
        assert d.shape == (3, 3)


class TestCgemmSimt:
    def test_close_to_complex128(self, rng):
        a = fp32c_array(rng, (8, 16))
        b = fp32c_array(rng, (16, 8))
        d = cgemm_simt(a, b, 0.0)
        ref = a @ b
        assert np.max(np.abs(d - ref) / np.abs(ref)) < 1e-5

    def test_components_fp32(self, rng):
        from repro.types import representable

        d = cgemm_simt(fp32c_array(rng, (4, 4)), fp32c_array(rng, (4, 4)), 0.0)
        assert np.all(representable(d.real, FP32))
        assert np.all(representable(d.imag, FP32))

    def test_pure_real_reduces_to_sgemm_schedule(self, rng):
        ar = fp32_array(rng, (4, 8))
        br = fp32_array(rng, (8, 4))
        dc = cgemm_simt(ar.astype(complex), br.astype(complex), 0.0)
        np.testing.assert_array_equal(dc.imag, 0.0)
        # real part: the complex schedule does re += ar*br then re -= 0,
        # so it matches the plain FMA chain exactly.
        dr = sgemm_simt(ar, br, 0.0)
        np.testing.assert_array_equal(dc.real, dr)
