"""The K-chunked tiled GEMM driver."""

import numpy as np
import pytest

from repro.gemm import TiledGEMM, mxu_cgemm, mxu_sgemm, tensorcore_gemm
from repro.mxu import M3XU, MXUMode, TensorCoreMXU
from repro.types import FP16, FP32, quantize
from tests.conftest import fp32_array, fp32c_array


class TestChunking:
    def test_default_chunk_is_instruction_k(self):
        d = TiledGEMM(M3XU(), MXUMode.FP32)
        assert d.k_chunk == 4
        d16 = TiledGEMM(M3XU(), MXUMode.FP16)
        assert d16.k_chunk == 8
        dc = TiledGEMM(M3XU(), MXUMode.FP32C)
        assert dc.k_chunk == 2

    def test_matches_manual_chunk_loop(self, rng):
        m, n, k = 8, 8, 16
        a = fp32_array(rng, (m, k))
        b = fp32_array(rng, (k, n))
        u = M3XU()
        got = mxu_sgemm(a, b, 0.0, u)
        acc = np.zeros((m, n))
        for k0 in range(0, k, 4):
            acc = u.mma_fp32(a[:, k0 : k0 + 4], b[k0 : k0 + 4, :], acc)
        np.testing.assert_array_equal(got, acc)

    def test_chunk_size_changes_rounding(self, rng):
        # Different chunk boundaries -> different inter-instruction FP32
        # roundings; results must be close but generally not identical.
        m = n = 16
        k = 256
        a = fp32_array(rng, (m, k))
        b = fp32_array(rng, (k, n))
        d4 = TiledGEMM(M3XU(), MXUMode.FP32, k_chunk=4).run(a, b, 0.0)
        d64 = TiledGEMM(M3XU(), MXUMode.FP32, k_chunk=64).run(a, b, 0.0)
        np.testing.assert_allclose(d4, d64, rtol=5e-5, atol=1e-5)
        assert np.any(d4 != d64)

    def test_ragged_k(self, rng):
        a = fp32_array(rng, (4, 7))  # 7 not divisible by 4
        b = fp32_array(rng, (7, 4))
        d = mxu_sgemm(a, b, 0.0)
        np.testing.assert_allclose(d, a @ b, rtol=1e-6)

    def test_k_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            mxu_sgemm(np.zeros((2, 4)), np.zeros((5, 2)), 0.0)

    def test_invalid_chunk(self):
        with pytest.raises(ValueError):
            TiledGEMM(M3XU(), MXUMode.FP32, k_chunk=0)


class TestQuantisationBoundary:
    def test_fp32_mode_quantizes_raw_float64(self, rng):
        a = rng.normal(size=(4, 8))
        b = rng.normal(size=(8, 4))
        got = mxu_sgemm(a, b, 0.0)
        want = mxu_sgemm(quantize(a, FP32), quantize(b, FP32), 0.0)
        np.testing.assert_array_equal(got, want)

    def test_complex_mode_quantizes(self, rng):
        a = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        b = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        got = mxu_cgemm(a, b, 0.0)
        from repro.types import quantize_complex

        want = mxu_cgemm(quantize_complex(a, FP32), quantize_complex(b, FP32), 0.0)
        np.testing.assert_array_equal(got, want)


class TestAccuracyVsReference:
    def test_sgemm_close_to_fp64(self, rng):
        a = fp32_array(rng, (32, 64))
        b = fp32_array(rng, (64, 32))
        d = mxu_sgemm(a, b, 0.0)
        np.testing.assert_allclose(d, a @ b, rtol=1e-4, atol=1e-6)

    def test_cgemm_close_to_complex128(self, rng):
        a = fp32c_array(rng, (16, 32))
        b = fp32c_array(rng, (32, 16))
        d = mxu_cgemm(a, b, 0.0)
        ref = a @ b
        assert np.max(np.abs(d - ref) / np.abs(ref)) < 1e-5

    def test_tensorcore_gemm_fp16(self, rng):
        a = quantize(rng.normal(size=(16, 32)), FP16)
        b = quantize(rng.normal(size=(32, 16)), FP16)
        d = tensorcore_gemm(a, b, 0.0, MXUMode.FP16)
        np.testing.assert_allclose(d, a @ b, rtol=1e-5, atol=1e-5)

    def test_tensorcore_rejects_fp32_mode(self, rng):
        with pytest.raises(ValueError):
            tensorcore_gemm(np.zeros((2, 2)), np.zeros((2, 2)), 0.0, MXUMode.FP32)
