"""Software emulation schemes: functionality and precision ordering."""

import numpy as np
import pytest

from repro.gemm import (
    cgemm_via_4_real,
    eehc_sgemm_3xbf16,
    fp16_tensorcore_sgemm,
    gemm_fp64,
    markidis_sgemm_4xfp16,
    mxu_sgemm,
    split_gemm,
    tensorop_cgemm_3xtf32,
    tensorop_sgemm_3xtf32,
)
from repro.types import BF16, FP32, matching_bits, quantize
from tests.conftest import fp32_array, fp32c_array


def _bits(fn, a, b, ref):
    return matching_bits(fn(a, b, np.zeros((a.shape[0], b.shape[1]))), ref)


class TestPrecisionOrdering:
    def test_hierarchy(self, rng):
        m = n = 24
        k = 48
        a = quantize(rng.uniform(0.5, 1.5, (m, k)), FP32)
        b = quantize(rng.uniform(0.5, 1.5, (k, n)), FP32)
        ref = gemm_fp64(a, b, np.zeros((m, n)))
        bits = {
            "m3xu": _bits(mxu_sgemm, a, b, ref),
            "3xtf32": _bits(tensorop_sgemm_3xtf32, a, b, ref),
            "3xbf16": _bits(eehc_sgemm_3xbf16, a, b, ref),
            "fp16_tc": _bits(fp16_tensorcore_sgemm, a, b, ref),
        }
        # M3XU >= every software scheme; BF16 split worse than TF32 split;
        # plain FP16 far worse than everything.
        assert bits["m3xu"] >= bits["3xtf32"] - 0.5
        assert bits["m3xu"] >= bits["3xbf16"] + 1.0
        assert bits["3xtf32"] > bits["3xbf16"]
        assert bits["3xbf16"] > bits["fp16_tc"]

    def test_3xtf32_recovers_most_fp32_bits(self, rng):
        a = quantize(rng.uniform(0.5, 1.5, (16, 32)), FP32)
        b = quantize(rng.uniform(0.5, 1.5, (32, 16)), FP32)
        ref = gemm_fp64(a, b, np.zeros((16, 16)))
        assert _bits(tensorop_sgemm_3xtf32, a, b, ref) > 17.0

    def test_fp16_4x_range_failure(self, rng):
        # FP16's 5-bit exponent can't carry large-magnitude splits.
        a = quantize(rng.normal(size=(8, 8)) * 1e6, FP32)
        b = quantize(rng.normal(size=(8, 8)) * 1e6, FP32)
        ref = gemm_fp64(a, b, np.zeros((8, 8)))
        got = markidis_sgemm_4xfp16(a, b, 0.0)
        assert not np.allclose(got, ref, rtol=1e-3)  # inf/garbage
        # ...while the BF16 split (8-bit exponent) survives the range.
        got_bf = eehc_sgemm_3xbf16(a, b, 0.0)
        assert np.all(np.isfinite(got_bf))


class TestSplitGemm:
    def test_four_gemms_at_least_as_accurate_as_three(self, rng):
        from repro.mxu import MXUMode

        a = quantize(rng.uniform(0.5, 1.5, (12, 24)), FP32)
        b = quantize(rng.uniform(0.5, 1.5, (24, 12)), FP32)
        ref = gemm_fp64(a, b, np.zeros((12, 12)))
        three = split_gemm(a, b, 0.0, BF16, MXUMode.BF16, 3)
        four = split_gemm(a, b, 0.0, BF16, MXUMode.BF16, 4)
        assert matching_bits(four, ref) >= matching_bits(three, ref) - 0.1

    def test_invalid_n_gemms(self):
        from repro.mxu import MXUMode

        with pytest.raises(ValueError):
            split_gemm(np.ones((2, 2)), np.ones((2, 2)), 0.0, BF16, MXUMode.BF16, 2)


class TestComplexDecomposition:
    def test_4_real_matches_direct(self, rng):
        # With an exact real GEMM the 4-multiplication decomposition is
        # exactly the complex product.
        a = fp32c_array(rng, (6, 10))
        b = fp32c_array(rng, (10, 6))
        got = cgemm_via_4_real(a, b, 0.0, lambda x, y, z: x @ y + z)
        np.testing.assert_allclose(got, a @ b, rtol=1e-14)

    def test_tensorop_cgemm_accuracy(self, rng):
        a = fp32c_array(rng, (8, 16))
        b = fp32c_array(rng, (16, 8))
        got = tensorop_cgemm_3xtf32(a, b, 0.0)
        ref = a @ b
        rel = np.max(np.abs(got - ref) / np.abs(ref))
        assert rel < 1e-4  # TF32-split level, not FP16 level

    def test_subtraction_sign(self):
        # (i)(i) = -1 must come out of the negated accumulation.
        a = np.array([[1j]])
        b = np.array([[1j]])
        got = cgemm_via_4_real(a, b, 0.0, lambda x, y, z: x @ y + z)
        assert got[0, 0] == -1.0 + 0.0j
