"""Batched GEMM entry points."""

import numpy as np
import pytest

from repro.gemm import batched_mxu_cgemm, batched_mxu_sgemm, mxu_cgemm, mxu_sgemm, strided_batch_view
from repro.types import FP32, quantize


class TestBatchedSgemm:
    def test_each_batch_matches_single(self, rng):
        a = quantize(rng.normal(size=(3, 8, 12)), FP32)
        b = quantize(rng.normal(size=(3, 12, 8)), FP32)
        d = batched_mxu_sgemm(a, b)
        for i in range(3):
            np.testing.assert_array_equal(d[i], mxu_sgemm(a[i], b[i]))

    def test_shape_checks(self, rng):
        with pytest.raises(ValueError):
            batched_mxu_sgemm(np.zeros((2, 4, 4)), np.zeros((3, 4, 4)))
        with pytest.raises(ValueError):
            batched_mxu_sgemm(np.zeros((2, 4, 5)), np.zeros((2, 4, 4)))
        with pytest.raises(ValueError):
            batched_mxu_sgemm(np.zeros((4, 4)), np.zeros((4, 4)))


class TestBatchedCgemm:
    def test_each_batch_matches_single(self, rng):
        a = rng.normal(size=(2, 4, 6)) + 1j * rng.normal(size=(2, 4, 6))
        b = rng.normal(size=(2, 6, 4)) + 1j * rng.normal(size=(2, 6, 4))
        d = batched_mxu_cgemm(a, b)
        for i in range(2):
            np.testing.assert_array_equal(d[i], mxu_cgemm(a[i], b[i]))


class TestEngineVariants:
    """Every engine configuration is bit-identical to serial."""

    def test_workers_and_pool_modes_identical(self, rng):
        a = rng.normal(size=(5, 6, 10))
        b = rng.normal(size=(5, 10, 4))
        want = batched_mxu_sgemm(a, b, workers=1)
        for kwargs in (
            {"workers": 2},
            {"workers": 8},            # more workers than matrices
            {"workers": 2, "fresh_pool": True},
        ):
            got = batched_mxu_sgemm(a, b, **kwargs)
            assert got.tobytes() == want.tobytes(), kwargs

    def test_shm_path_identical(self, rng, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "64")  # force shm transfer
        a = rng.normal(size=(4, 5, 8)) + 1j * rng.normal(size=(4, 5, 8))
        b = rng.normal(size=(4, 8, 5)) + 1j * rng.normal(size=(4, 8, 5))
        want = batched_mxu_cgemm(a, b, workers=1)
        got = batched_mxu_cgemm(a, b, workers=3)
        assert got.tobytes() == want.tobytes()


class TestStridedView:
    def test_no_copy(self):
        x = np.arange(24.0)
        v = strided_batch_view(x, 2, 3)
        assert v.shape == (4, 2, 3)
        assert v.base is not None  # a view, not a copy

    def test_rejects_partial(self):
        with pytest.raises(ValueError):
            strided_batch_view(np.arange(10.0), 3, 2)
