"""The BLAS-style front-end."""

import numpy as np
import pytest

from repro.gemm import cgemm, sgemm
from repro.types import FP32, quantize
from tests.conftest import fp32_array, fp32c_array


class TestSgemm:
    def test_plain(self, rng):
        a = fp32_array(rng, (8, 12))
        b = fp32_array(rng, (12, 8))
        d = sgemm(a, b)
        np.testing.assert_allclose(d, a @ b, rtol=1e-5, atol=1e-6)

    def test_transposes(self, rng):
        a = fp32_array(rng, (12, 8))
        b = fp32_array(rng, (8, 12))
        d = sgemm(a, b, transa="T", transb="T")
        np.testing.assert_allclose(d, a.T @ b.T, rtol=1e-5, atol=1e-6)

    def test_alpha_beta(self, rng):
        a = fp32_array(rng, (4, 4))
        b = fp32_array(rng, (4, 4))
        c = fp32_array(rng, (4, 4))
        d = sgemm(a, b, c, alpha=2.0, beta=-0.5)
        np.testing.assert_allclose(d, 2 * (a @ b) - 0.5 * c, rtol=1e-5, atol=1e-5)

    def test_beta_zero_ignores_c(self, rng):
        a = fp32_array(rng, (4, 4))
        b = fp32_array(rng, (4, 4))
        c = np.full((4, 4), np.pi)
        d = sgemm(a, b, c, beta=0.0)
        np.testing.assert_allclose(d, a @ b, rtol=1e-5, atol=1e-6)

    def test_backends_agree_closely(self, rng):
        a = fp32_array(rng, (8, 16))
        b = fp32_array(rng, (16, 8))
        d1 = sgemm(a, b, backend="m3xu")
        d2 = sgemm(a, b, backend="simt")
        np.testing.assert_allclose(d1, d2, rtol=1e-5, atol=1e-6)

    def test_invalid_flags(self, rng):
        with pytest.raises(ValueError):
            sgemm(np.ones((2, 2)), np.ones((2, 2)), transa="C")
        with pytest.raises(KeyError):
            sgemm(np.ones((2, 2)), np.ones((2, 2)), backend="cublas")

    def test_result_fp32(self, rng):
        from repro.types import representable

        d = sgemm(fp32_array(rng, (4, 4)), fp32_array(rng, (4, 4)), alpha=1.7)
        assert np.all(representable(d, FP32))


class TestCgemm:
    def test_conjugate_transpose(self, rng):
        a = fp32c_array(rng, (6, 4))
        b = fp32c_array(rng, (6, 4))
        d = cgemm(a, b, transa="C")
        np.testing.assert_allclose(d, np.conj(a.T) @ b, rtol=1e-5, atol=1e-5)

    def test_complex_alpha(self, rng):
        a = fp32c_array(rng, (4, 4))
        b = fp32c_array(rng, (4, 4))
        d = cgemm(a, b, alpha=1j)
        np.testing.assert_allclose(d, 1j * (a @ b), rtol=1e-5, atol=1e-5)

    def test_hermitian_product(self, rng):
        # A^H A is Hermitian positive semidefinite.
        a = fp32c_array(rng, (8, 5))
        d = cgemm(a, a, transa="C")
        np.testing.assert_allclose(d, np.conj(d.T), rtol=1e-4, atol=1e-5)
        eig = np.linalg.eigvalsh((d + np.conj(d.T)) / 2)
        assert np.all(eig > -1e-4)
