"""Step plans, tile arithmetic and the data-assignment stage."""

import numpy as np
import pytest

from repro.mxu import (
    AMPERE_MXU,
    M3XU_CONFIG,
    MODE_INFO,
    MXUMode,
    TileShape,
    lane_products,
    resolve_parts,
    step_plan,
    verify_plan_weights,
)
from repro.types import FP32, quantize, quantize_complex


class TestStepPlans:
    def test_native_modes_single_step(self):
        for mode in (MXUMode.FP16, MXUMode.BF16, MXUMode.TF32):
            assert step_plan(mode).n_steps == 1
            assert step_plan(mode).products_per_k == 1

    def test_fp32_two_steps_four_products(self):
        # Observation 1: two steps cover all 4 hi/lo cross products.
        plan = step_plan(MXUMode.FP32)
        assert plan.n_steps == 2
        assert plan.products_per_k == 4
        pairs = {(p.a_part, p.b_part) for s in plan.steps for p in s.products}
        assert pairs == {("H", "H"), ("L", "L"), ("H", "L"), ("L", "H")}

    def test_fp32_step2_flips_b_assignment(self):
        # "the data-assignment stage signals the multiplexers to flip the
        # assignment of one of the input vectors".
        plan = step_plan(MXUMode.FP32)
        step1 = {(p.a_part, p.b_part) for p in plan.steps[0].products}
        step2 = {(p.a_part, p.b_part) for p in plan.steps[1].products}
        assert step1 == {("H", "H"), ("L", "L")}
        assert step2 == {("H", "L"), ("L", "H")}

    def test_fp32c_four_steps_sixteen_products(self):
        plan = step_plan(MXUMode.FP32C)
        assert plan.n_steps == 4
        assert plan.products_per_k == 16

    def test_fp32c_only_imag_imag_negated(self):
        plan = step_plan(MXUMode.FP32C)
        for step in plan.steps:
            for p in step.products:
                imag_imag = p.a_part.startswith("I") and p.b_part.startswith("I")
                assert p.negate == imag_imag

    def test_fp32c_accumulator_split(self):
        # Steps 1-2 feed the real accumulator; steps 3-4 the imaginary.
        plan = step_plan(MXUMode.FP32C)
        accs = [sorted({p.accumulator for p in s.products}) for s in plan.steps]
        assert accs == [["real"], ["real"], ["imag"], ["imag"]]

    def test_fp32_weights(self):
        plan = step_plan(MXUMode.FP32)
        weights = {
            (p.a_part, p.b_part): p.weight_shift
            for s in plan.steps
            for p in s.products
        }
        assert weights[("H", "H")] == 24
        assert weights[("L", "L")] == 0
        assert weights[("H", "L")] == weights[("L", "H")] == 12

    @pytest.mark.parametrize("mode", list(MXUMode))
    def test_weight_consistency_with_values(self, mode):
        verify_plan_weights(mode)

    def test_mode_info_matches_plans(self):
        for mode, (steps, k_den, baseline) in MODE_INFO.items():
            assert step_plan(mode).n_steps == steps
            assert step_plan(mode).k_scale_den == k_den
            assert AMPERE_MXU.supports(mode) == baseline


class TestTileArithmetic:
    def test_corollary1_fp32_tile(self):
        # Corollary 1: 2p-bit GEMM of M x N x K/2 per 2 steps.
        t = M3XU_CONFIG.tile(MXUMode.FP32)
        assert (t.m, t.n, t.k) == (8, 4, 4)

    def test_fp32c_tile(self):
        # Section IV-B: "FP32C matrix multiplication of size 8x4x2 in a
        # single 4-step operation".
        t = M3XU_CONFIG.tile(MXUMode.FP32C)
        assert (t.m, t.n, t.k) == (8, 4, 2)

    def test_corollary2_throughput_quarter(self):
        # FP32 MACs per cycle = native/4: (8*4*4 per 2 cycles) vs 8*4*8/1.
        native = M3XU_CONFIG.tile(MXUMode.FP16)
        fp32 = M3XU_CONFIG.tile(MXUMode.FP32)
        rate_native = native.macs / M3XU_CONFIG.steps(MXUMode.FP16)
        rate_fp32 = fp32.macs / M3XU_CONFIG.steps(MXUMode.FP32)
        assert rate_fp32 == rate_native / 4

    def test_corollary3_complex_sixteenth(self):
        native = M3XU_CONFIG.tile(MXUMode.FP16)
        c = M3XU_CONFIG.tile(MXUMode.FP32C)
        rate = c.macs / M3XU_CONFIG.steps(MXUMode.FP32C)
        assert rate == native.macs / 16

    def test_tileshape_str(self):
        assert str(TileShape(8, 4, 8)) == "8x4x8"

    def test_unsupported_mode_raises(self):
        with pytest.raises(ValueError):
            AMPERE_MXU.tile(MXUMode.FP32)


class TestResolveParts:
    def test_fp32_parts_sum(self, rng):
        x = quantize(rng.normal(size=(4, 4)), FP32)
        parts = resolve_parts(x, MXUMode.FP32)
        np.testing.assert_array_equal(parts["H"] + parts["L"], x)

    def test_fp32c_parts_reassemble(self, rng):
        z = quantize_complex(rng.normal(size=(3, 3)) + 1j * rng.normal(size=(3, 3)), FP32)
        p = resolve_parts(z, MXUMode.FP32C)
        re = p["RH"] + p["RL"]
        im = p["IH"] + p["IL"]
        np.testing.assert_array_equal(re + 1j * im, z)

    def test_native_mode_quantizes(self, rng):
        from repro.types import FP16

        x = rng.normal(size=(2, 2))
        parts = resolve_parts(x, MXUMode.FP16)
        np.testing.assert_array_equal(parts["X"], quantize(x, FP16))


class TestLaneProducts:
    def test_fp32_shape(self, rng):
        a = quantize(rng.normal(size=(8, 4)), FP32)
        b = quantize(rng.normal(size=(4, 4)), FP32)
        prods = lane_products(a, b, MXUMode.FP32)
        assert set(prods) == {"real"}
        assert prods["real"].shape == (8, 4, 16)  # K=4 x 4 lanes

    def test_fp32c_shapes(self, rng):
        a = quantize_complex(rng.normal(size=(8, 2)) * (1 + 1j), FP32)
        b = quantize_complex(rng.normal(size=(2, 4)) * (1 + 1j), FP32)
        prods = lane_products(a, b, MXUMode.FP32C)
        assert set(prods) == {"real", "imag"}
        assert prods["real"].shape == (8, 4, 16)  # K=2 x 8 lanes

    def test_fp32_products_sum_to_full_product(self, rng):
        # The 4 lane products of one (a, b) pair sum exactly to a*b.
        a = quantize(rng.normal(size=(1, 1)), FP32)
        b = quantize(rng.normal(size=(1, 1)), FP32)
        prods = lane_products(a, b, MXUMode.FP32)["real"]
        assert prods.sum() == a[0, 0] * b[0, 0]
