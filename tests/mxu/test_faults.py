"""Fault injection: the data-assignment buffers are not uniformly critical."""

import numpy as np
import pytest

from repro.mxu import (
    FaultSite,
    FaultSpec,
    FaultStage,
    FaultyM3XU,
    M3XU,
    inject_operand_fault,
    inject_register_fault,
    inject_shift_align_fault,
    inject_sign_flip_fault,
    slice_fault_study,
)
from repro.types import FP32, quantize


class TestInjection:
    def test_flip_is_involution(self, rng):
        x = quantize(rng.normal(size=(3, 3)), FP32)
        once = inject_operand_fault(x, (1, 2), FaultSite.LOW_SLICE, 5)
        twice = inject_operand_fault(once, (1, 2), FaultSite.LOW_SLICE, 5)
        np.testing.assert_array_equal(twice, x)

    def test_only_target_element_changes(self, rng):
        x = quantize(rng.normal(size=(4, 4)), FP32)
        bad = inject_operand_fault(x, (0, 0), FaultSite.HIGH_SLICE, 3)
        assert bad[0, 0] != x[0, 0]
        np.testing.assert_array_equal(bad[1:], x[1:])

    def test_sign_flip_negates(self):
        x = np.array([[2.5]])
        bad = inject_operand_fault(x, (0, 0), FaultSite.SIGN, 0)
        assert bad[0, 0] == -2.5

    def test_low_slice_perturbation_bounded(self, rng):
        # A low-slice upset moves the value by < 2^-11 of its magnitude.
        x = quantize(np.abs(rng.normal(size=(8,))) + 0.5, FP32)
        for bit in range(12):
            bad = inject_operand_fault(x, (3,), FaultSite.LOW_SLICE, bit)
            assert abs(bad[3] - x[3]) < abs(x[3]) * 2.0**-11

    def test_exponent_flip_catastrophic(self):
        x = np.array([1.0])
        bad = inject_operand_fault(x, (0,), FaultSite.EXPONENT, 7)
        assert abs(bad[0]) != 1.0 and (abs(bad[0]) > 1e30 or abs(bad[0]) < 1e-30)

    def test_bit_range_validation(self):
        with pytest.raises(ValueError):
            inject_operand_fault(np.array([1.0]), (0,), FaultSite.SIGN, 1)
        with pytest.raises(ValueError):
            inject_operand_fault(np.array([1.0]), (0,), FaultSite.LOW_SLICE, 12)


class TestStudy:
    @pytest.fixture(scope="class")
    def impacts(self):
        return {fi.site: fi for fi in slice_fault_study(trials=12)}

    def test_criticality_ordering(self, impacts):
        # sign/exponent upsets dwarf high-slice upsets, which dwarf
        # low-slice ones (low exponent bits flip the value by only ~2x,
        # so the exponent/sign order between themselves is draw-dependent).
        hi = impacts[FaultSite.HIGH_SLICE].max_rel_output_error
        lo = impacts[FaultSite.LOW_SLICE].max_rel_output_error
        assert impacts[FaultSite.EXPONENT].max_rel_output_error > hi
        assert impacts[FaultSite.SIGN].max_rel_output_error > hi
        assert hi > lo

    def test_low_slice_upsets_negligible(self, impacts):
        # Bounded by the slice's 2^-12 positional weight (times K-way
        # dilution in the dot product).
        assert impacts[FaultSite.LOW_SLICE].max_rel_output_error < 1e-3

    def test_all_sites_reported(self, impacts):
        assert set(impacts) == set(FaultSite)


class TestStageInjectors:
    """The new datapath-stage injectors behind the campaign engine."""

    def test_register_fault_is_involution(self, rng):
        x = quantize(rng.normal(size=(3, 3)), FP32)
        once = inject_register_fault(x, (2, 1), 7)
        twice = inject_register_fault(once, (2, 1), 7)
        np.testing.assert_array_equal(twice, x)
        assert once[2, 1] != x[2, 1]
        np.testing.assert_array_equal(once[:2], x[:2])

    def test_register_fault_bit_range_validated(self):
        x = np.array([1.0])
        with pytest.raises(ValueError):
            inject_register_fault(x, (0,), 32)  # FP32 is 32 bits wide: 0..31
        with pytest.raises(ValueError):
            inject_register_fault(x, (0,), -1)
        # top bit (31) is the sign in FP32
        assert inject_register_fault(x, (0,), 31)[0] == -1.0

    def test_register_fault_respects_format(self):
        # In FP64 the sign lives at bit 63, not 31.
        x = np.array([1.0])
        from repro.types import FP64

        assert inject_register_fault(x, (0,), 63, FP64)[0] == -1.0
        assert inject_register_fault(x, (0,), 31, FP64)[0] != -1.0

    def test_shift_align_fault_scales_by_power_of_two(self, rng):
        x = quantize(rng.normal(size=(4,)), FP32)
        for shift in (-3, -1, 1, 4):
            bad = inject_shift_align_fault(x, (2,), shift)
            assert bad[2] == x[2] * 2.0**shift
            np.testing.assert_array_equal(bad[:2], x[:2])

    def test_sign_flip_fault_negates_only_target(self, rng):
        x = quantize(rng.normal(size=(4,)), FP32)
        bad = inject_sign_flip_fault(x, (1,))
        assert bad[1] == -x[1]
        np.testing.assert_array_equal(bad[2:], x[2:])


class TestFaultyM3XU:
    def test_fires_exactly_once_at_call_index(self, rng):
        a = quantize(rng.normal(size=(4, 4)), FP32)
        b = quantize(rng.normal(size=(4, 4)), FP32)
        clean = M3XU().mma_fp32(a, b, 0.0)
        spec = FaultSpec(stage=FaultStage.SIGN_FLIP, call_index=1, seed=5)
        faulty = FaultyM3XU(spec)
        first = faulty.mma_fp32(a, b, 0.0)   # call 0: clean
        second = faulty.mma_fp32(a, b, 0.0)  # call 1: corrupted
        third = faulty.mma_fp32(a, b, 0.0)   # call 2: clean again
        np.testing.assert_array_equal(first, clean)
        np.testing.assert_array_equal(third, clean)
        assert not np.array_equal(second, clean)
        assert faulty.fired and faulty.calls == 3

    def test_injected_spec_resolves_randomness(self, rng):
        a = quantize(rng.normal(size=(3, 3)), FP32)
        b = quantize(rng.normal(size=(3, 3)), FP32)
        spec = FaultSpec(stage=FaultStage.OPERAND, seed=9)
        faulty = FaultyM3XU(spec)
        assert faulty.injected is None
        faulty.mma_fp32(a, b, 0.0)
        resolved = faulty.injected
        assert resolved is not None
        assert resolved.element is not None and resolved.site is not None
        assert resolved.bit is not None
        assert "call=0" in resolved.describe()

    def test_operand_fault_is_deterministic_per_seed(self, rng):
        a = quantize(rng.normal(size=(4, 4)), FP32)
        b = quantize(rng.normal(size=(4, 4)), FP32)
        spec = FaultSpec(stage=FaultStage.OPERAND, seed=17)
        one = FaultyM3XU(spec).mma_fp32(a, b, 0.0)
        two = FaultyM3XU(spec).mma_fp32(a, b, 0.0)
        np.testing.assert_array_equal(one, two)

    def test_accumulator_fault_corrupts_single_output(self, rng):
        a = quantize(rng.normal(size=(4, 4)), FP32)
        b = quantize(rng.normal(size=(4, 4)), FP32)
        clean = M3XU().mma_fp32(a, b, 0.0)
        spec = FaultSpec(
            stage=FaultStage.ACCUMULATOR, element=(1, 2), bit=30, seed=3
        )
        dirty = FaultyM3XU(spec).mma_fp32(a, b, 0.0)
        diff = dirty != clean
        assert diff[1, 2] and diff.sum() == 1

    def test_shift_align_fault_through_mma(self, rng):
        a = quantize(rng.normal(size=(4, 4)), FP32)
        b = quantize(rng.normal(size=(4, 4)), FP32)
        clean = M3XU().mma_fp32(a, b, 0.0)
        spec = FaultSpec(
            stage=FaultStage.SHIFT_ALIGN, element=(0, 0), shift=2, seed=3
        )
        dirty = FaultyM3XU(spec).mma_fp32(a, b, 0.0)
        assert dirty[0, 0] == clean[0, 0] * 4.0
        np.testing.assert_array_equal(dirty[1:], clean[1:])

    def test_delegates_configuration(self):
        unit = M3XU()
        faulty = FaultyM3XU(FaultSpec(stage=FaultStage.OPERAND), unit)
        assert faulty.config is unit.config
        assert faulty.supported_modes() == unit.supported_modes()
        from repro.mxu import MXUMode

        assert faulty.steps(MXUMode.FP32) == unit.steps(MXUMode.FP32)
        assert faulty.output_format(MXUMode.FP32) is unit.output_format(MXUMode.FP32)

    def test_complex_mode_corruption(self, rng):
        a = quantize(rng.normal(size=(4, 4)), FP32) + 1j * quantize(
            rng.normal(size=(4, 4)), FP32
        )
        b = quantize(rng.normal(size=(4, 4)), FP32) + 1j * quantize(
            rng.normal(size=(4, 4)), FP32
        )
        clean = M3XU().mma_fp32c(a, b, 0.0)
        spec = FaultSpec(stage=FaultStage.SIGN_FLIP, element=(2, 3), seed=11)
        dirty = FaultyM3XU(spec).mma_fp32c(a, b, 0.0)
        diff = dirty != clean
        assert diff[2, 3] and diff.sum() == 1
