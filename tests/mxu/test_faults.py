"""Fault injection: the data-assignment buffers are not uniformly critical."""

import numpy as np
import pytest

from repro.mxu import FaultSite, M3XU, inject_operand_fault, slice_fault_study
from repro.types import FP32, quantize


class TestInjection:
    def test_flip_is_involution(self, rng):
        x = quantize(rng.normal(size=(3, 3)), FP32)
        once = inject_operand_fault(x, (1, 2), FaultSite.LOW_SLICE, 5)
        twice = inject_operand_fault(once, (1, 2), FaultSite.LOW_SLICE, 5)
        np.testing.assert_array_equal(twice, x)

    def test_only_target_element_changes(self, rng):
        x = quantize(rng.normal(size=(4, 4)), FP32)
        bad = inject_operand_fault(x, (0, 0), FaultSite.HIGH_SLICE, 3)
        assert bad[0, 0] != x[0, 0]
        np.testing.assert_array_equal(bad[1:], x[1:])

    def test_sign_flip_negates(self):
        x = np.array([[2.5]])
        bad = inject_operand_fault(x, (0, 0), FaultSite.SIGN, 0)
        assert bad[0, 0] == -2.5

    def test_low_slice_perturbation_bounded(self, rng):
        # A low-slice upset moves the value by < 2^-11 of its magnitude.
        x = quantize(np.abs(rng.normal(size=(8,))) + 0.5, FP32)
        for bit in range(12):
            bad = inject_operand_fault(x, (3,), FaultSite.LOW_SLICE, bit)
            assert abs(bad[3] - x[3]) < abs(x[3]) * 2.0**-11

    def test_exponent_flip_catastrophic(self):
        x = np.array([1.0])
        bad = inject_operand_fault(x, (0,), FaultSite.EXPONENT, 7)
        assert abs(bad[0]) != 1.0 and (abs(bad[0]) > 1e30 or abs(bad[0]) < 1e-30)

    def test_bit_range_validation(self):
        with pytest.raises(ValueError):
            inject_operand_fault(np.array([1.0]), (0,), FaultSite.SIGN, 1)
        with pytest.raises(ValueError):
            inject_operand_fault(np.array([1.0]), (0,), FaultSite.LOW_SLICE, 12)


class TestStudy:
    @pytest.fixture(scope="class")
    def impacts(self):
        return {fi.site: fi for fi in slice_fault_study(trials=12)}

    def test_criticality_ordering(self, impacts):
        # sign/exponent upsets dwarf high-slice upsets, which dwarf
        # low-slice ones (low exponent bits flip the value by only ~2x,
        # so the exponent/sign order between themselves is draw-dependent).
        hi = impacts[FaultSite.HIGH_SLICE].max_rel_output_error
        lo = impacts[FaultSite.LOW_SLICE].max_rel_output_error
        assert impacts[FaultSite.EXPONENT].max_rel_output_error > hi
        assert impacts[FaultSite.SIGN].max_rel_output_error > hi
        assert hi > lo

    def test_low_slice_upsets_negligible(self, impacts):
        # Bounded by the slice's 2^-12 positional weight (times K-way
        # dilution in the dot product).
        assert impacts[FaultSite.LOW_SLICE].max_rel_output_error < 1e-3

    def test_all_sites_reported(self, impacts):
        assert set(impacts) == set(FaultSite)
