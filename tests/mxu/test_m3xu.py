"""The core claim: M3XU's multi-step MMA is exact FP32 / FP32C arithmetic."""

import numpy as np
import pytest

from repro.arith import exact_dot
from repro.mxu import M3XU, M3XU_CONFIG, M3XU_PIPELINED_CONFIG, MXUMode
from repro.types import FP32, FP64, quantize, quantize_complex
from tests.conftest import fp32_array, fp32c_array


@pytest.fixture
def unit() -> M3XU:
    return M3XU()


class TestFp32Mma:
    def test_correctly_rounded_vs_exact(self, rng, unit):
        m, n, k = 8, 4, 4
        a = fp32_array(rng, (m, k))
        b = fp32_array(rng, (k, n))
        c = fp32_array(rng, (m, n))
        d = unit.mma_fp32(a, b, c)
        for i in range(m):
            for j in range(n):
                ref = exact_dot(list(a[i]), list(b[:, j]), float(c[i, j]), FP32)
                assert d[i, j] == ref, (i, j)

    def test_wide_dynamic_range(self, rng, unit):
        a = fp32_array(rng, (4, 4)) * np.float64(2.0) ** rng.integers(-60, 60, (4, 4))
        a = quantize(a, FP32)
        b = fp32_array(rng, (4, 4))
        d = unit.mma_fp32(a, b, 0.0)
        for i in range(4):
            for j in range(4):
                assert d[i, j] == exact_dot(list(a[i]), list(b[:, j]), 0.0, FP32)

    def test_cancellation_exact(self, unit):
        # a*b terms that cancel to the last bit: the 48-bit accumulator
        # must preserve what per-product FP32 rounding would destroy.
        eps = 2.0**-23
        a = np.array([[1.0 + eps, -1.0]])
        b = np.array([[1.0], [1.0]])
        d = unit.mma_fp32(a, b, 0.0)
        assert d[0, 0] == eps

    def test_at_least_as_accurate_as_simt_chain(self, rng, unit):
        from repro.arith import sequential_fma_dot

        k = 4
        worse = 0
        for _ in range(100):
            a = fp32_array(rng, (1, k))
            b = fp32_array(rng, (k, 1))
            exact = exact_dot(list(a[0]), list(b[:, 0]), 0.0, FP64)
            m3 = float(unit.mma_fp32(a, b, 0.0)[0, 0])
            simt = sequential_fma_dot(list(a[0]), list(b[:, 0]), 0.0, FP32)
            if abs(m3 - exact) > abs(simt - exact):
                worse += 1
        assert worse == 0  # correctly rounded can never be beaten

    def test_batched(self, rng, unit):
        a = fp32_array(rng, (3, 8, 4))
        b = fp32_array(rng, (3, 4, 4))
        d = unit.mma_fp32(a, b, 0.0)
        assert d.shape == (3, 8, 4)
        d0 = unit.mma_fp32(a[0], b[0], 0.0)
        np.testing.assert_array_equal(d[0], d0)

    def test_result_fp32_representable(self, rng, unit):
        from repro.types import representable

        d = unit.mma_fp32(fp32_array(rng, (8, 4)), fp32_array(rng, (4, 4)), 0.0)
        assert np.all(representable(d, FP32))

    def test_zero_inputs(self, unit):
        d = unit.mma_fp32(np.zeros((2, 4)), np.zeros((4, 2)), 0.0)
        np.testing.assert_array_equal(d, 0.0)

    def test_subnormal_operands(self, unit):
        a = quantize(np.full((1, 2), 2.0**-130), FP32)
        b = quantize(np.full((2, 1), 2.0), FP32)
        d = unit.mma_fp32(a, b, 0.0)
        assert d[0, 0] == exact_dot(list(a[0]), list(b[:, 0]), 0.0, FP32)

    def test_k_mismatch_raises(self, rng, unit):
        with pytest.raises(ValueError):
            unit.mma_fp32(np.zeros((2, 3)), np.zeros((4, 2)), 0.0)


class TestFp32cMma:
    def test_correctly_rounded_real_and_imag(self, rng, unit):
        m, n, k = 8, 4, 2
        a = fp32c_array(rng, (m, k))
        b = fp32c_array(rng, (k, n))
        c = fp32c_array(rng, (m, n))
        d = unit.mma_fp32c(a, b, c)
        for i in range(m):
            for j in range(n):
                # Eq. 9: real = sum aR*bR - aI*bI + cR (one accumulation).
                re = exact_dot(
                    list(a[i].real) + list(-a[i].imag),
                    list(b[:, j].real) + list(b[:, j].imag),
                    float(c[i, j].real),
                    FP32,
                )
                im = exact_dot(
                    list(a[i].real) + list(a[i].imag),
                    list(b[:, j].imag) + list(b[:, j].real),
                    float(c[i, j].imag),
                    FP32,
                )
                assert d[i, j].real == re and d[i, j].imag == im

    def test_sign_flip_subtracts_imaginary_products(self, unit):
        # (0 + 1i) * (0 + 1i) = -1: pure imaginary inputs exercise exactly
        # the sign-flip datapath of Fig. 3(c).
        a = np.array([[1j, 0]])
        b = np.array([[1j], [0j]])
        d = unit.mma_fp32c(a, b, 0.0)
        assert d[0, 0] == -1.0 + 0.0j

    def test_pure_real_matches_fp32_mode(self, rng, unit):
        ar = fp32_array(rng, (4, 2))
        br = fp32_array(rng, (2, 4))
        dc = unit.mma_fp32c(ar.astype(complex), br.astype(complex), 0.0)
        dr = unit.mma_fp32(ar, br, 0.0)
        np.testing.assert_array_equal(dc.real, dr)
        np.testing.assert_array_equal(dc.imag, 0.0)

    def test_components_fp32_representable(self, rng, unit):
        from repro.types import representable

        d = unit.mma_fp32c(fp32c_array(rng, (4, 2)), fp32c_array(rng, (2, 4)), 0.0)
        assert np.all(representable(d.real, FP32))
        assert np.all(representable(d.imag, FP32))


class TestFp64Mode:
    def test_near_fp64_accuracy(self, rng, unit):
        a = rng.normal(size=(8, 2))
        b = rng.normal(size=(2, 4))
        c = rng.normal(size=(8, 4))
        d = unit.mma_fp64(a, b, c)
        ref = a @ b + c
        np.testing.assert_allclose(d, ref, rtol=2.0**-48)

    def test_much_better_than_fp32(self, rng, unit):
        a = rng.normal(size=(4, 2))
        b = rng.normal(size=(2, 4))
        ref = a @ b
        d64 = unit.mma_fp64(a, b, 0.0)
        d32 = unit.mma_fp32(quantize(a, FP32), quantize(b, FP32), 0.0)
        assert np.max(np.abs(d64 - ref)) < np.max(np.abs(d32 - ref))


class TestModesAndConfig:
    def test_supports_all_modes(self, unit):
        assert unit.supported_modes() == M3XU_CONFIG.modes
        for mode in MXUMode:
            assert unit.config.supports(mode)

    def test_step_counts(self, unit):
        assert unit.steps(MXUMode.FP16) == 1
        assert unit.steps(MXUMode.FP32) == 2
        assert unit.steps(MXUMode.FP32C) == 4
        assert unit.steps(MXUMode.FP64) == 4

    def test_pipelined_numerically_identical(self, rng):
        a = fp32_array(rng, (8, 4))
        b = fp32_array(rng, (4, 4))
        d1 = M3XU(M3XU_CONFIG).mma_fp32(a, b, 0.0)
        d2 = M3XU(M3XU_PIPELINED_CONFIG).mma_fp32(a, b, 0.0)
        np.testing.assert_array_equal(d1, d2)

    def test_backward_compatible_fp16(self, rng, unit):
        # "The same M3XU remains the support of the original functions."
        from repro.mxu import TensorCoreMXU
        from repro.types import FP16

        a = quantize(rng.normal(size=(8, 8)), FP16)
        b = quantize(rng.normal(size=(8, 4)), FP16)
        c = fp32_array(rng, (8, 4))
        ours = unit.mma(a, b, c, MXUMode.FP16)
        # M3XU's wider RNE accumulator is at least as accurate as the
        # baseline's truncating one; both are valid FP16 MMAs.
        ref = np.float32(a.astype(np.float64) @ b.astype(np.float64) + c)
        np.testing.assert_allclose(ours, ref, rtol=1e-6)

    def test_output_formats(self, unit):
        assert unit.output_format(MXUMode.FP32) is FP32
        assert unit.output_format(MXUMode.FP64) is FP64
